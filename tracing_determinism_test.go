package repro

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/solve"
)

// TestTracingDeterminism pins the central contract of the observability
// layer: recording spans and counters must not perturb scheduling. PA,
// seeded PA-R and IS-1 are each run with a live trace and without one, and
// the schedules must be deeply equal — the trace only *observes* the run.
// It also asserts the traced PA run actually recorded what the layer
// promises: all eight phases, the attempt hierarchy and the floorplan
// invocations.
func TestTracingDeterminism(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})
	a := arch.ZedBoard()

	assertEqual := func(name string, plain, traced *schedule.Schedule) {
		t.Helper()
		if errs := schedule.Check(traced); len(errs) > 0 {
			t.Fatalf("%s traced run produced an invalid schedule: %v", name, errs[0])
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Errorf("%s: tracing changed the schedule (makespan %d vs %d)",
				name, plain.Makespan, traced.Makespan)
		}
	}

	// PA.
	plain, _, err := sched.Schedule(g, a, sched.Options{})
	if err != nil {
		t.Fatalf("PA untraced: %v", err)
	}
	paTrace := obs.New()
	traced, _, err := sched.Schedule(g, a, sched.Options{Trace: paTrace})
	if err != nil {
		t.Fatalf("PA traced: %v", err)
	}
	assertEqual("PA", plain, traced)

	// Seeded PA-R with an iteration cap, so both runs do identical work.
	rOpts := sched.RandomOptions{MaxIterations: 40, Seed: 7}
	plainR, _, err := sched.RSchedule(g, a, rOpts)
	if err != nil {
		t.Fatalf("PA-R untraced: %v", err)
	}
	rOpts.Trace = obs.New()
	tracedR, _, err := sched.RSchedule(g, a, rOpts)
	if err != nil {
		t.Fatalf("PA-R traced: %v", err)
	}
	assertEqual("PA-R", plainR, tracedR)

	// IS-1 (the baseline is instrumented too).
	plainI, _, err := isk.Schedule(g, a, isk.Options{K: 1, ModuleReuse: true})
	if err != nil {
		t.Fatalf("IS-1 untraced: %v", err)
	}
	iskTrace := obs.New()
	tracedI, _, err := isk.Schedule(g, a, isk.Options{K: 1, ModuleReuse: true, Trace: iskTrace})
	if err != nil {
		t.Fatalf("IS-1 traced: %v", err)
	}
	assertEqual("IS-1", plainI, tracedI)

	// The PA trace must contain the full span taxonomy: run → attempt →
	// the eight phases, with the floorplan solver invocation nested under
	// phase 8.
	snap := paTrace.Snapshot()
	count := map[string]int{}
	for _, sp := range snap.Spans {
		count[sp.Name]++
	}
	for _, want := range []string{
		"pa.run", "pa.attempt",
		"pa.phase1.implselect", "pa.phase2.criticalpath", "pa.phase3.regions",
		"pa.phase4.swbalance", "pa.phase5.starttimes", "pa.phase6.swmap",
		"pa.phase7.reconf", "pa.phase8.floorplan", "floorplan.solve",
	} {
		if count[want] == 0 {
			t.Errorf("PA trace is missing span %q (got %v)", want, count)
		}
	}
	if snap.Counters["floorplan.calls"] < 1 {
		t.Errorf("PA trace recorded %d floorplan.calls, want >= 1", snap.Counters["floorplan.calls"])
	}
	// Hierarchy: every span except the roots must have a parent, and the
	// phase spans must sit under an attempt.
	for _, sp := range snap.Spans {
		if sp.Name == "pa.phase3.regions" {
			if sp.Parent < 0 || snap.Spans[sp.Parent].Name != "pa.attempt" {
				t.Errorf("phase span %q not nested under pa.attempt", sp.Name)
			}
		}
	}

	// The PA-R trace must tag every iteration with an outcome.
	rsnap := rOpts.Trace.Snapshot()
	iters := 0
	for _, sp := range rsnap.Spans {
		if sp.Name != "par.iteration" {
			continue
		}
		iters++
		outcome := ""
		for _, arg := range sp.Args {
			if arg.Key == "outcome" {
				outcome, _ = arg.Val.(string)
			}
		}
		switch outcome {
		case "improved", "not-improving", "infeasible":
		default:
			t.Errorf("par.iteration span carries outcome %q, want improved/not-improving/infeasible", outcome)
		}
	}
	if iters != 40 {
		t.Errorf("PA-R trace recorded %d iteration spans, want 40", iters)
	}

	// The IS-1 trace must carry window spans matching the counter.
	isnap := iskTrace.Snapshot()
	windows := 0
	for _, sp := range isnap.Spans {
		if sp.Name == "isk.window" {
			windows++
		}
	}
	if windows == 0 || int64(windows) != isnap.Counters["isk.windows"] {
		t.Errorf("IS-1 trace has %d window spans but counter says %d",
			windows, isnap.Counters["isk.windows"])
	}

	// obs v2: the traces must also carry the value distributions the layer
	// promises — PA's attempt/reconfiguration histograms, PA-R's
	// per-iteration latency stream, IS-1's per-window node distribution.
	for name, want := range map[string]int64{"pa.attempts": 1, "pa.reconfigurations": 1} {
		if h := snap.Histograms[name]; h.Count != want {
			t.Errorf("PA trace histogram %s count = %d, want %d", name, h.Count, want)
		}
	}
	if h := rsnap.Histograms["par.iteration_us"]; h.Count != 40 {
		t.Errorf("PA-R trace par.iteration_us count = %d, want 40", h.Count)
	}
	if len(rsnap.Events) == 0 || rsnap.Events[0].Name != "par.improved" {
		t.Errorf("PA-R flight recorder empty or wrong: %+v", rsnap.Events)
	}
	if h := isnap.Histograms["isk.window_nodes"]; h.Count != int64(windows) {
		t.Errorf("IS-1 trace isk.window_nodes count = %d, want %d (one per window)", h.Count, windows)
	}
}

// TestTracingDeterminismViaRegistry repeats the determinism contract
// through the solve registry, which now auto-instruments every solver: the
// decorator's histograms, counters and spans must not perturb schedules
// either. Covers PA, PA-R and IS-1 — the solvers of the original contract.
func TestTracingDeterminismViaRegistry(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})
	a := arch.ZedBoard()
	for _, name := range []string{"pa", "par", "is1"} {
		s, err := solve.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		opts := solve.Options{Seed: 7, MaxIterations: 40, Workers: 1, ModuleReuse: name == "is1"}
		plain, err := s.Solve(&solve.Request{Graph: g, Arch: a, Options: opts})
		if err != nil {
			t.Fatalf("%s untraced: %v", name, err)
		}
		tr := obs.New()
		opts.Trace = tr
		traced, err := s.Solve(&solve.Request{Graph: g, Arch: a, Options: opts})
		if err != nil {
			t.Fatalf("%s traced: %v", name, err)
		}
		if !reflect.DeepEqual(plain.Schedule, traced.Schedule) {
			t.Errorf("%s: registry auto-instrumentation changed the schedule (makespan %d vs %d)",
				name, plain.Schedule.Makespan, traced.Schedule.Makespan)
		}
		snap := tr.Snapshot()
		if h := snap.Histograms["solve."+name+".latency_us"]; h.Count != 1 {
			t.Errorf("%s: registry latency histogram count = %d, want 1", name, h.Count)
		}
	}
}

// TestObsSnapshotDeterminism pins the snapshot side of the contract: two
// repetitions of the same seeded workload must record identical canonical
// snapshots (histograms, events, counters, gauges — reflect.DeepEqual) at
// any worker count. Canonical strips exactly what legitimately varies
// (span/event wall-clock times, the values inside "_us" histograms); every
// remaining bit is covered by the comparison.
func TestObsSnapshotDeterminism(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})
	a := arch.ZedBoard()
	s, err := solve.Get("par")
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		runOnce := func() obs.Snapshot {
			tr := obs.New()
			if _, err := s.Solve(&solve.Request{Graph: g, Arch: a, Options: solve.Options{
				Seed: 7, MaxIterations: 40, Workers: workers, Trace: tr,
			}}); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			return tr.Snapshot().Canonical()
		}
		first, second := runOnce(), runOnce()
		if !reflect.DeepEqual(first, second) {
			t.Errorf("workers=%d: canonical snapshots differ between identical runs:\n%+v\nvs\n%+v",
				workers, first, second)
		}
		if first.Histograms["par.iteration_us"].Count != 40 {
			t.Errorf("workers=%d: par.iteration_us count = %d, want 40",
				workers, first.Histograms["par.iteration_us"].Count)
		}
		var improved int64
		for _, ev := range first.Events {
			if ev.Name == "par.improved" {
				improved++
			}
		}
		if improved == 0 || improved != first.Counters["par.improvements"] {
			t.Errorf("workers=%d: %d par.improved events, counter says %d",
				workers, improved, first.Counters["par.improvements"])
		}
	}
}
