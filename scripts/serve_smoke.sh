#!/bin/sh
# serve_smoke.sh — end-to-end exercise of the serving tier:
#
#   1. build paschedd, paschedload and obscheck
#   2. start the daemon on an ephemeral port with a deterministic fault
#      profile armed (forced queue-full admissions + forced floorplan
#      infeasibility), so the load run crosses the 429 retry path and the
#      robust degradation ladder, not just the happy path
#   3. fire the seeded load generator at it and write the benchjson report
#   4. fire a second, cache-heavy session (repeat + perturb mix against a
#      small graph pool) so the schedule cache's exact-hit and warm-start
#      paths both run
#   5. replay a seeded arrival trace through the rolling-horizon session
#      API (paschedsim -daemon-addr-file): open, stream jobs, close — the
#      online engine runs inside the daemon and its counters land in the
#      daemon's metrics flush
#   6. SIGTERM the daemon and require a clean graceful drain (exit 0 and
#      the "drained" log line)
#   7. validate the flushed trace/metrics/events artefacts with obscheck,
#      requiring the cache.hits, cache.warm_starts, online.epochs and
#      online.prefetch_hits counters to be live
#
# Every knob is deterministic (fixed seed, counted faults), so two runs on
# the same tree produce the same request outcomes. Artefacts land in
# SERVE_SMOKE_DIR (default serve-smoke/, gitignored) for CI upload.
#
# Env overrides: SERVE_SMOKE_DIR, LOAD_N, LOAD_C, CACHE_N, BENCH_OUT.
set -eu

DIR="${SERVE_SMOKE_DIR:-serve-smoke}"
LOAD_N="${LOAD_N:-60}"
LOAD_C="${LOAD_C:-4}"
CACHE_N="${CACHE_N:-40}"
BENCH_OUT="${BENCH_OUT:-$DIR/BENCH_serve.json}"
GO="${GO:-go}"

mkdir -p "$DIR/bin"
$GO build -o "$DIR/bin/paschedd" ./cmd/paschedd
$GO build -o "$DIR/bin/paschedload" ./cmd/paschedload
$GO build -o "$DIR/bin/obscheck" ./cmd/obscheck
$GO build -o "$DIR/bin/paschedsim" ./cmd/paschedsim

rm -f "$DIR/addr"
"$DIR/bin/paschedd" \
    -addr 127.0.0.1:0 -addr-file "$DIR/addr" \
    -workers 2 -queue 8 \
    -fault-queue-full 5 -fault-floorplan-infeasible 3 \
    -trace "$DIR/trace.json" -metrics "$DIR/metrics.json" \
    -events "$DIR/events.json" \
    2> "$DIR/paschedd.log" &
DAEMON=$!

# The addr file appears once the listener is bound.
i=0
while [ ! -s "$DIR/addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "serve-smoke: daemon never bound; log:" >&2
        cat "$DIR/paschedd.log" >&2
        kill "$DAEMON" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
echo "serve-smoke: daemon on $(cat "$DIR/addr")"

if ! "$DIR/bin/paschedload" -addr-file "$DIR/addr" \
    -n "$LOAD_N" -c "$LOAD_C" -seed 1 -tasks 24 -graphs 4 \
    -o "$BENCH_OUT"; then
    echo "serve-smoke: load run failed; daemon log:" >&2
    cat "$DIR/paschedd.log" >&2
    kill "$DAEMON" 2>/dev/null || true
    exit 1
fi

# Cache session: half the tickets repeat a base body (exact hits), a
# quarter send a near-miss perturbation (warm starts). The armed fault
# counters are depleted by the first run, so this one sees clean paths.
if ! "$DIR/bin/paschedload" -addr-file "$DIR/addr" \
    -n "$CACHE_N" -c 4 -seed 7 -tasks 20 -graphs 2 \
    -repeat-frac 0.5 -perturb-frac 0.25 \
    -o "$DIR/BENCH_cache.json"; then
    echo "serve-smoke: cache load run failed; daemon log:" >&2
    cat "$DIR/paschedd.log" >&2
    kill "$DAEMON" 2>/dev/null || true
    exit 1
fi

# Session leg: one rolling-horizon trace through the daemon's session API.
# The seed is chosen so prefetching fires with hits, keeping the
# online.prefetch_hits counter assertion below meaningful.
if ! "$DIR/bin/paschedsim" -daemon-addr-file "$DIR/addr" \
    -seed 3 -jobs 4 -tasks 8 -mean-gap 800 -comm-max 30 \
    > "$DIR/session.log"; then
    echo "serve-smoke: session replay failed; daemon log:" >&2
    cat "$DIR/paschedd.log" >&2
    cat "$DIR/session.log" >&2
    kill "$DAEMON" 2>/dev/null || true
    exit 1
fi
grep -q "session closed" "$DIR/session.log" || {
    echo "serve-smoke: session never closed:" >&2
    cat "$DIR/session.log" >&2
    kill "$DAEMON" 2>/dev/null || true
    exit 1
}

kill -TERM "$DAEMON"
if ! wait "$DAEMON"; then
    echo "serve-smoke: daemon exited non-zero; log:" >&2
    cat "$DIR/paschedd.log" >&2
    exit 1
fi
grep -q "drained" "$DIR/paschedd.log" || {
    echo "serve-smoke: no clean-drain log line:" >&2
    cat "$DIR/paschedd.log" >&2
    exit 1
}

"$DIR/bin/obscheck" \
    -require-counters cache.hits,cache.warm_starts,online.epochs,online.prefetch_hits \
    "$DIR/trace.json" "$DIR/metrics.json" "$DIR/events.json"
echo "serve-smoke: ok — report in $BENCH_OUT, artefacts in $DIR/"
