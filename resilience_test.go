package repro

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/isk"
	"resched/internal/sched"
	"resched/internal/schedule"
)

// TestCancelledSearchesReturnPromptly is the cancellation-latency
// guarantee: Cancel on the shared budget, arriving from another goroutine
// mid-search, makes a 100-task PA-R run and an IS-5 run return — with the
// best-so-far schedule or a typed budget error — within 100ms. The budget
// is polled per node inside the floorplanner and at every phase and
// iteration boundary, so the reaction time is bounded by one uninterrupted
// stretch of pipeline work, not by the full search.
func TestCancelledSearchesReturnPromptly(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 100, Seed: 2024})
	a := arch.ZedBoard()

	check := func(t *testing.T, solve func(*budget.Budget) (*schedule.Schedule, error)) {
		t.Helper()
		bud := budget.New(budget.Options{})
		cancelled := make(chan time.Time, 1)
		go func() {
			time.Sleep(10 * time.Millisecond)
			bud.Cancel()
			cancelled <- time.Now()
		}()
		sch, err := solve(bud)
		returned := time.Now()
		cancelAt := <-cancelled

		switch {
		case err == nil:
			// Finished before the cancel, or the cancel landed after an
			// incumbent existed: either way the schedule must be valid.
			if violations := schedule.Check(sch); len(violations) > 0 {
				t.Fatalf("returned schedule invalid: %v", violations[0])
			}
		case errors.Is(err, sched.ErrBudgetExhausted):
			// No incumbent yet: the typed budget error is the contract.
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
		if lag := returned.Sub(cancelAt); lag > 100*time.Millisecond {
			t.Errorf("solver returned %v after Cancel, want within 100ms", lag)
		}
	}

	t.Run("PA-R", func(t *testing.T) {
		check(t, func(bud *budget.Budget) (*schedule.Schedule, error) {
			// No iteration cap and no time budget: only the cancel stops it.
			s, _, err := sched.RSchedule(g, a, sched.RandomOptions{
				Seed: 1, ModuleReuse: true, Budget: bud,
			})
			return s, err
		})
	})
	t.Run("IS-5", func(t *testing.T) {
		check(t, func(bud *budget.Budget) (*schedule.Schedule, error) {
			s, _, err := isk.Schedule(g, a, isk.Options{
				K: 5, ModuleReuse: true, Budget: bud,
			})
			return s, err
		})
	})
}

// TestBudgetedRunsStayDeterministic supplies a generous fake-clock budget
// and verifies the schedulers produce byte-identical schedules with and
// without it: threading a budget through the pipeline must be
// observationally free until it actually trips (companion guarantee to
// TestSchedulerDeterminism).
func TestBudgetedRunsStayDeterministic(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 424242})
	a := arch.ZedBoard()
	generous := func() *budget.Budget {
		clk := faultinject.NewClock()
		return budget.New(budget.Options{
			Deadline: clk.Now().Add(time.Hour), MaxNodes: 1 << 40, Clock: clk.Now,
		})
	}

	plainPA, _, err := sched.Schedule(g, a, sched.Options{ModuleReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	budgetedPA, _, err := sched.Schedule(g, a, sched.Options{ModuleReuse: true, Budget: generous()})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainPA, budgetedPA) {
		t.Error("PA: schedule differs under a generous budget")
	}

	par := sched.RandomOptions{MaxIterations: 20, Seed: 7, ModuleReuse: true}
	plainPAR, _, err := sched.RSchedule(g, a, par)
	if err != nil {
		t.Fatal(err)
	}
	par.Budget = generous()
	budgetedPAR, _, err := sched.RSchedule(g, a, par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plainPAR, budgetedPAR) {
		t.Error("PA-R: schedule differs under a generous budget")
	}
}
