// Quickstart: build a small task graph, schedule it on the ZedBoard with
// the deterministic PA scheduler, validate the result and print a Gantt
// chart. This is the smallest end-to-end use of the library.
package main

import (
	"fmt"
	"log"
	"os"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func main() {
	// An application with four tasks: load → {filter, transform} → store.
	// Every task has a software implementation and one or two hardware
	// implementations trading execution time against FPGA area.
	g := taskgraph.New("quickstart")
	load := g.AddTask("load",
		taskgraph.Implementation{Name: "load_sw", Kind: taskgraph.SW, Time: 900},
		taskgraph.Implementation{Name: "load_hw", Kind: taskgraph.HW, Time: 200, Res: resources.Vec(400, 4, 0)},
	)
	filter := g.AddTask("filter",
		taskgraph.Implementation{Name: "filter_sw", Kind: taskgraph.SW, Time: 2500},
		taskgraph.Implementation{Name: "filter_hw_fast", Kind: taskgraph.HW, Time: 300, Res: resources.Vec(1200, 8, 16)},
		taskgraph.Implementation{Name: "filter_hw_small", Kind: taskgraph.HW, Time: 700, Res: resources.Vec(500, 4, 8)},
	)
	transform := g.AddTask("transform",
		taskgraph.Implementation{Name: "transform_sw", Kind: taskgraph.SW, Time: 1800},
		taskgraph.Implementation{Name: "transform_hw", Kind: taskgraph.HW, Time: 400, Res: resources.Vec(800, 0, 24)},
	)
	store := g.AddTask("store",
		taskgraph.Implementation{Name: "store_sw", Kind: taskgraph.SW, Time: 600},
		taskgraph.Implementation{Name: "store_hw", Kind: taskgraph.HW, Time: 250, Res: resources.Vec(300, 6, 0)},
	)
	mustEdge(g, load.ID, filter.ID)
	mustEdge(g, load.ID, transform.ID)
	mustEdge(g, filter.ID, store.ID)
	mustEdge(g, transform.ID, store.ID)

	// Schedule on the paper's evaluation platform: a ZedBoard (dual-core
	// ARM + XC7Z020 FPGA). PA also floorplans the resulting regions.
	a := arch.ZedBoard()
	sch, stats, err := sched.Schedule(g, a, sched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Valid(sch); err != nil {
		log.Fatal(err)
	}

	fmt.Println(sch.Summary())
	for t, as := range sch.Tasks {
		fmt.Printf("  %-10s %-17s [%4d,%4d) on %v %d\n",
			g.Tasks[t].Name, sch.Impl(t).Name, as.Start, as.End, as.Target.Kind, as.Target.Index)
	}
	fmt.Printf("floorplan: %d regions placed (search took %v)\n\n", len(stats.Placements), stats.FloorplanTime)
	if err := sch.WriteGantt(os.Stdout, 80); err != nil {
		log.Fatal(err)
	}
}

// mustEdge adds a dependency, exiting on the (impossible for these literal
// graphs) construction error instead of panicking.
func mustEdge(g *taskgraph.Graph, from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		log.Fatal(err)
	}
}
