// Multicontroller demonstrates the ref [8] extension: scheduling the same
// reconfiguration-heavy workload on a ZedBoard with one and with two
// reconfiguration controllers, and executing both schedules on the
// discrete-event platform simulator. With one ICAP the reconfigurations
// serialize; a second controller lets them pair up.
package main

import (
	"fmt"
	"log"
	"os"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/sim"
)

func main() {
	// A contended 30-task instance: many region time-shares, so the
	// reconfiguration controller is a real bottleneck.
	g, err := benchgen.Generate(benchgen.Config{Tasks: 30, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}

	for _, controllers := range []int{1, 2} {
		a := arch.ZedBoard()
		a.Reconfigurators = controllers

		sch, _, err := sched.Schedule(g, a, sched.Options{SkipFloorplan: true})
		if err != nil {
			log.Fatal(err)
		}
		if err := schedule.Valid(sch); err != nil {
			log.Fatal(err)
		}
		ex, err := sim.Execute(sch)
		if err != nil {
			log.Fatal(err)
		}
		st := schedule.ComputeStats(sch)
		fmt.Printf("%d controller(s): makespan %5d µs, %2d reconfigurations (%5d µs, %2.0f%% controller load), simulated %5d µs\n",
			controllers, sch.Makespan, st.Reconfigurations, st.ReconfTime,
			100*st.ReconfiguratorUtil/float64(controllers), ex.Makespan)
		if controllers == 2 {
			fmt.Println()
			if err := sch.WriteGantt(os.Stdout, 90); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nThe paper's architecture has a single ICAP; ref [8] (Redaelli et al.)")
	fmt.Println("generalises to several controllers, which this library models as an")
	fmt.Println("extension (arch.Architecture.Reconfigurators).")
}
