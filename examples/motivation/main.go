// Motivation reproduces the Figure 1 scenario of §IV: task t1 offers a
// fast-but-large hardware implementation (t1_1) and a slower
// resource-efficient one (t1_2); t2 and t3 depend on t1. On a small device,
// greedily selecting t1_1 monopolises the reconfigurable logic, while the
// resource-efficient t1_2 leaves room for a second region — locally slower,
// globally faster.
//
// The example contrasts PA (eq. (3) picks t1_2) against the IS-1 baseline
// (greedy earliest finish picks t1_1), printing both schedules.
package main

import (
	"fmt"
	"log"
	"os"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

func buildGraph() *taskgraph.Graph {
	g := taskgraph.New("figure1")
	g.AddTask("t1",
		taskgraph.Implementation{Name: "t1_sw", Kind: taskgraph.SW, Time: 100000},
		taskgraph.Implementation{Name: "t1_1", Kind: taskgraph.HW, Time: 300, Res: resources.Vec(900, 0, 0)},
		taskgraph.Implementation{Name: "t1_2", Kind: taskgraph.HW, Time: 500, Res: resources.Vec(450, 0, 0)},
	)
	g.AddTask("t2",
		taskgraph.Implementation{Name: "t2_sw", Kind: taskgraph.SW, Time: 100000},
		taskgraph.Implementation{Name: "t2_hw", Kind: taskgraph.HW, Time: 400, Res: resources.Vec(500, 0, 0)},
	)
	g.AddTask("t3",
		taskgraph.Implementation{Name: "t3_sw", Kind: taskgraph.SW, Time: 100000},
		taskgraph.Implementation{Name: "t3_hw", Kind: taskgraph.HW, Time: 400, Res: resources.Vec(500, 0, 0)},
	)
	mustEdge(g, 0, 1)
	mustEdge(g, 0, 2)
	return g
}

func main() {
	// A small device: 1000 slices (plus token BRAM/DSP so the scarcity
	// weights of eq. (4) are defined). Both t1_1+anything and three
	// parallel regions exceed it; only t1_2 + one 500-slice region fits.
	a := &arch.Architecture{
		Name:       "fig1-device",
		Processors: 1,
		RecFreq:    3200,
		Bits:       resources.DefaultBits,
		MaxRes:     resources.Vec(1000, 10, 10),
	}

	g := buildGraph()
	pa := mustSolve("pa", g, a)
	is1 := mustSolve("is1", g, a)
	for _, sch := range []*schedule.Schedule{pa, is1} {
		if err := schedule.Valid(sch); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s selects %s for t1 → makespan %d ticks\n",
			sch.Algorithm, sch.Impl(0).Name, sch.Makespan)
		if err := sch.WriteGantt(os.Stdout, 80); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Println("PA's resource-efficient choice for t1 frees device area for the")
	fmt.Println("dependent tasks; the greedy baseline's locally-fastest choice")
	fmt.Println("forces them into software (§IV of the paper).")
}

// mustSolve dispatches one registered solver with floorplanning skipped (the
// synthetic fig1-device has no fabric geometry), exiting on error.
func mustSolve(name string, g *taskgraph.Graph, a *arch.Architecture) *schedule.Schedule {
	s, err := solve.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.Solve(&solve.Request{
		Graph:   g,
		Arch:    a,
		Options: solve.Options{SkipFloorplan: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	return r.Schedule
}

// mustEdge adds a dependency, exiting on the (impossible for these literal
// graphs) construction error instead of panicking.
func mustEdge(g *taskgraph.Graph, from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		log.Fatal(err)
	}
}
