// Sdr schedules a software-defined-radio receiver chain under heavy FPGA
// contention: two concurrent channels share one small reconfigurable
// device, forcing the scheduler to time-share regions through partial
// reconfiguration. The randomized PA-R scheduler is given a short budget
// and its anytime improvements are reported.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// dsp adds one DSP block with a software fallback and two HLS variants.
func dsp(g *taskgraph.Graph, name string, swT, hwT int64, clb, bram, dspc int) *taskgraph.Task {
	return g.AddTask(name,
		taskgraph.Implementation{Name: name + "_sw", Kind: taskgraph.SW, Time: swT},
		taskgraph.Implementation{Name: name + "_hw", Kind: taskgraph.HW, Time: hwT,
			Res: resources.Vec(clb, bram, dspc)},
		taskgraph.Implementation{Name: name + "_hw_lite", Kind: taskgraph.HW, Time: hwT * 5 / 2,
			Res: resources.Vec(clb*3/10, bram*3/10+1, dspc*3/10+1)},
	)
}

// channel builds one receive chain: ddc → fir → fft → demod → decode.
// Both channels share implementation names, so module reuse (when enabled)
// can skip reconfigurations between them.
func channel(g *taskgraph.Graph, src *taskgraph.Task) *taskgraph.Task {
	ddc := dsp(g, "ddc", 2600, 380, 900, 4, 24)
	fir := dsp(g, "fir", 3100, 410, 1100, 2, 40)
	fft := dsp(g, "fft", 4400, 520, 1300, 18, 32)
	demod := dsp(g, "demod", 2100, 340, 700, 2, 12)
	decode := dsp(g, "decode", 3600, 600, 1500, 10, 8)
	mustEdge(g, src.ID, ddc.ID)
	mustEdge(g, ddc.ID, fir.ID)
	mustEdge(g, fir.ID, fft.ID)
	mustEdge(g, fft.ID, demod.ID)
	mustEdge(g, demod.ID, decode.ID)
	return decode
}

func main() {
	g := taskgraph.New("sdr")
	acquire := g.AddTask("acquire",
		taskgraph.Implementation{Name: "acquire_sw", Kind: taskgraph.SW, Time: 500})
	d1 := channel(g, acquire)
	d2 := channel(g, acquire)
	sink := g.AddTask("combine",
		taskgraph.Implementation{Name: "combine_sw", Kind: taskgraph.SW, Time: 700})
	mustEdge(g, d1.ID, sink.ID)
	mustEdge(g, d2.ID, sink.ID)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	a := arch.ZedBoard()
	sch, stats, err := sched.RSchedule(g, a, sched.RandomOptions{
		TimeBudget: 300 * time.Millisecond,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := schedule.Valid(sch); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("PA-R explored %d orderings in %v (%d floorplanned, %d discarded)\n",
		stats.Iterations, stats.Elapsed.Round(time.Millisecond), stats.FloorplanCalls, stats.Discarded)
	fmt.Println("anytime improvements:")
	for _, h := range stats.History {
		fmt.Printf("  after %8v (iteration %4d): makespan %d µs\n",
			h.Elapsed.Round(time.Microsecond), h.Iteration, h.Makespan)
	}
	fmt.Println()
	fmt.Println(sch.Summary())
	if err := sch.WriteGantt(os.Stdout, 90); err != nil {
		log.Fatal(err)
	}
}

// mustEdge adds a dependency, exiting on the (impossible for these literal
// graphs) construction error instead of panicking.
func mustEdge(g *taskgraph.Graph, from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		log.Fatal(err)
	}
}
