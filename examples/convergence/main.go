// Convergence demonstrates the anytime behaviour of the randomized PA-R
// scheduler (the Figure 6 experiment of the paper): on a 60-task synthetic
// instance, the best schedule execution time is tracked against the
// algorithm's running time and rendered as an ASCII curve.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/sched"
)

func main() {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 60, Seed: 2016})
	if err != nil {
		log.Fatal(err)
	}
	a := arch.ZedBoard()

	budget := 3 * time.Second
	sch, stats, err := sched.RSchedule(g, a, sched.RandomOptions{TimeBudget: budget, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %s (%d tasks), budget %v\n", g.Name, g.N(), budget)
	fmt.Printf("iterations: %d, improvements: %d, final makespan: %d µs\n\n",
		stats.Iterations, len(stats.History), sch.Makespan)

	if len(stats.History) == 0 {
		fmt.Println("no feasible improvement found within the budget")
		return
	}
	// ASCII convergence curve: x = log-ish time, y = makespan.
	first := stats.History[0].Makespan
	last := stats.History[len(stats.History)-1].Makespan
	span := first - last
	if span == 0 {
		span = 1
	}
	fmt.Println("improvement curve (each row is one accepted improvement):")
	for _, h := range stats.History {
		frac := float64(h.Makespan-last) / float64(span)
		bar := int(50 * frac)
		fmt.Printf("%10v  %7d µs |%s\n",
			h.Elapsed.Round(time.Millisecond), h.Makespan,
			strings.Repeat("█", 3+bar))
	}
	gain := 100 * float64(first-last) / float64(first)
	fmt.Printf("\nPA-R improved its first feasible schedule by %.1f%% within the budget.\n", gain)
	fmt.Println("(The paper's Figure 6 runs the same experiment for 1200 s per instance;")
	fmt.Println("use cmd/experiments -exp fig6 to regenerate the full curves.)")
}
