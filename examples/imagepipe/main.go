// Imagepipe schedules a realistic image-processing pipeline — the kind of
// workload the paper's introduction motivates for FPGA acceleration — and
// compares PA against the IS-1 baseline on the ZedBoard.
//
// The application processes one camera frame: capture feeds demosaicing,
// which fans out to a denoiser and a luminance path; features (corners +
// edges) are extracted, fused, and the annotated frame is encoded while
// statistics are collected for the auto-exposure loop.
package main

import (
	"fmt"
	"log"
	"os"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// stage adds a pipeline stage with a software implementation and up to two
// hardware variants (fast/large and slow/small), mimicking HLS results for
// different unroll factors.
func stage(g *taskgraph.Graph, name string, swT, hwT int64, clb, bram, dsp int) *taskgraph.Task {
	impls := []taskgraph.Implementation{
		{Name: name + "_sw", Kind: taskgraph.SW, Time: swT},
	}
	if hwT > 0 {
		impls = append(impls,
			taskgraph.Implementation{Name: name + "_hw", Kind: taskgraph.HW, Time: hwT,
				Res: resources.Vec(clb, bram, dsp)},
			taskgraph.Implementation{Name: name + "_hw_small", Kind: taskgraph.HW, Time: hwT * 2,
				Res: resources.Vec(clb/2, (bram+1)/2, (dsp+1)/2)},
		)
	}
	return g.AddTask(name, impls...)
}

func main() {
	g := taskgraph.New("imagepipe")
	capture := stage(g, "capture", 800, 0, 0, 0, 0) // sensor readout: CPU only
	demosaic := stage(g, "demosaic", 4200, 520, 1400, 12, 24)
	denoise := stage(g, "denoise", 5100, 640, 1600, 16, 32)
	luma := stage(g, "luma", 1500, 230, 500, 2, 8)
	corners := stage(g, "corners", 3800, 560, 1200, 8, 28)
	edges := stage(g, "edges", 3300, 480, 1100, 6, 20)
	fuse := stage(g, "fuse", 1400, 310, 700, 4, 10)
	encode := stage(g, "encode", 6200, 900, 1900, 20, 16)
	stats := stage(g, "stats", 900, 260, 400, 2, 4)

	mustEdge(g, capture.ID, demosaic.ID)
	mustEdge(g, demosaic.ID, denoise.ID)
	mustEdge(g, demosaic.ID, luma.ID)
	mustEdge(g, luma.ID, corners.ID)
	mustEdge(g, luma.ID, edges.ID)
	mustEdge(g, corners.ID, fuse.ID)
	mustEdge(g, edges.ID, fuse.ID)
	mustEdge(g, denoise.ID, encode.ID)
	mustEdge(g, fuse.ID, encode.ID)
	mustEdge(g, luma.ID, stats.ID)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	a := arch.ZedBoard()
	paRes := mustSolve("pa", g, a, solve.Options{})
	is1 := mustSolve("is1", g, a, solve.Options{ModuleReuse: true}).Schedule
	// All-software reference on the dual-core CPU.
	swOnly := g.Clone()
	for _, task := range swOnly.Tasks {
		task.Impls = task.Impls[:1]
	}
	swRef := mustSolve("pa", swOnly, a, solve.Options{SkipFloorplan: true}).Schedule

	pa := paRes.Schedule
	fmt.Printf("frame latency, all software (2 cores): %6d µs\n", swRef.Makespan)
	fmt.Printf("frame latency, IS-1                  : %6d µs\n", is1.Makespan)
	fmt.Printf("frame latency, PA                    : %6d µs  (%d regions, %d reconfigurations)\n",
		pa.Makespan, len(pa.Regions), len(pa.Reconfs))
	fmt.Printf("speedup over software: ×%.1f\n\n", float64(swRef.Makespan)/float64(pa.Makespan))

	for _, sch := range []*schedule.Schedule{pa, is1} {
		if err := schedule.Valid(sch); err != nil {
			log.Fatal(err)
		}
		if err := sch.WriteGantt(os.Stdout, 90); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Printf("floorplan for PA's regions (%d placements):\n", len(paRes.Placements))
	for i, p := range paRes.Placements {
		fmt.Printf("  region %d: %v at %v\n", i, pa.Regions[i].Res, p)
	}
}

// mustSolve dispatches one registered solver, exiting on error.
func mustSolve(name string, g *taskgraph.Graph, a *arch.Architecture, opts solve.Options) *solve.Result {
	s, err := solve.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.Solve(&solve.Request{Graph: g, Arch: a, Options: opts})
	if err != nil {
		log.Fatal(err)
	}
	return r
}

// mustEdge adds a dependency, exiting on the (impossible for these literal
// graphs) construction error instead of panicking.
func mustEdge(g *taskgraph.Graph, from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		log.Fatal(err)
	}
}
