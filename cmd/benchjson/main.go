// Command benchjson converts `go test -bench` text output (read on stdin)
// into a structured JSON document, so benchmark results can be committed
// and diffed across PRs. `make bench` pipes the BenchmarkTable1* suite
// through it to produce BENCH_table1.json.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTable1' -benchmem . | benchjson -o BENCH_table1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds any additional custom metrics (e.g. "makespan" from
	// b.ReportMetric), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the JSON document layout.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(doc.Benchmarks))
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg/cpu)
// followed by result lines of the form
//
//	BenchmarkName/sub-8   100   123456 ns/op   512 B/op   7 allocs/op
//
// Non-benchmark lines (PASS, ok, test log output) are ignored.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// parseLine parses one benchmark result line into its metrics.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = val
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
