// Command benchjson converts `go test -bench` text output (read on stdin)
// into a structured JSON document, so benchmark results can be committed
// and diffed across PRs. `make bench` pipes the BenchmarkTable1* suite
// through it to produce BENCH_table1.json.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkTable1' -benchmem . | benchjson -o BENCH_table1.json
//	benchjson -compare [-threshold 15] old.json new.json
//
// -compare prints per-benchmark ns/op and allocs/op deltas between two
// documents (matching names with the GOMAXPROCS suffix stripped, so
// results from machines with different core counts still pair up) and
// exits non-zero when any benchmark regressed by more than -threshold
// percent on either metric — the regression gate `make benchcmp` runs
// before a PR.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds any additional custom metrics (e.g. "makespan" from
	// b.ReportMetric), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Doc is the JSON document layout.
type Doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.Bool("compare", false, "compare two benchmark JSON files: benchjson -compare old.json new.json")
	threshold := flag.Float64("threshold", 15, "with -compare: fail when ns/op or allocs/op regresses by more than this percentage")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two arguments: old.json new.json"))
		}
		failed, err := runCompare(os.Stdout, flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			fatal(err)
		}
		if failed {
			os.Exit(1)
		}
		return
	}

	doc, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d benchmarks\n", len(doc.Benchmarks))
}

// parse reads `go test -bench` output: header lines (goos/goarch/pkg/cpu)
// followed by result lines of the form
//
//	BenchmarkName/sub-8   100   123456 ns/op   512 B/op   7 allocs/op
//
// Non-benchmark lines (PASS, ok, test log output) are ignored.
func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	return doc, sc.Err()
}

// parseLine parses one benchmark result line into its metrics.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, iterations, value, unit.
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			// go test reports mean ns/op, which is fractional for fast
			// benchmarks; a nanosecond is already below timer resolution,
			// so round to integer ns to keep the JSON stable and diffable.
			b.NsPerOp = math.Round(val)
		case "B/op":
			b.BytesPerOp = int64(val)
		case "allocs/op":
			b.AllocsPerOp = int64(val)
		default:
			if b.Extra == nil {
				b.Extra = map[string]float64{}
			}
			b.Extra[unit] = val
		}
	}
	return b, true
}

// normalizeName strips the trailing -N GOMAXPROCS suffix go test appends
// (BenchmarkFoo/sub-8 → BenchmarkFoo/sub), so documents produced on
// machines with different core counts still pair up.
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	suffix := name[i+1:]
	if suffix == "" {
		return name
	}
	for _, r := range suffix {
		if r < '0' || r > '9' {
			return name
		}
	}
	return name[:i]
}

// loadDoc reads a benchmark JSON document written by this command.
func loadDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// pctDelta returns the relative change in percent; a zero baseline with a
// non-zero new value counts as +100% (an appearance is a regression).
func pctDelta(oldV, newV float64) float64 {
	if oldV == 0 {
		if newV == 0 {
			return 0
		}
		return 100
	}
	return 100 * (newV - oldV) / oldV
}

// runCompare prints the per-benchmark deltas between two documents and
// reports whether any benchmark regressed beyond the threshold.
func runCompare(w io.Writer, oldPath, newPath string, threshold float64) (failed bool, err error) {
	oldDoc, err := loadDoc(oldPath)
	if err != nil {
		return false, err
	}
	newDoc, err := loadDoc(newPath)
	if err != nil {
		return false, err
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldDoc.Benchmarks {
		oldBy[normalizeName(b.Name)] = b
	}
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta")
	matched := map[string]bool{}
	for _, nb := range newDoc.Benchmarks {
		key := normalizeName(nb.Name)
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %10s %10d %8s\n",
				key, "-", nb.NsPerOp, "new", "-", nb.AllocsPerOp, "new")
			continue
		}
		matched[key] = true
		nsDelta := pctDelta(ob.NsPerOp, nb.NsPerOp)
		allocDelta := pctDelta(float64(ob.AllocsPerOp), float64(nb.AllocsPerOp))
		mark := ""
		if nsDelta > threshold || allocDelta > threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%% %10d %10d %+7.1f%%%s\n",
			key, ob.NsPerOp, nb.NsPerOp, nsDelta, ob.AllocsPerOp, nb.AllocsPerOp, allocDelta, mark)
	}
	for _, ob := range oldDoc.Benchmarks {
		key := normalizeName(ob.Name)
		if !matched[key] {
			fmt.Fprintf(w, "%-44s %14.0f %14s %8s %10d %10s %8s\n",
				key, ob.NsPerOp, "-", "gone", ob.AllocsPerOp, "-", "gone")
		}
	}
	if failed {
		fmt.Fprintf(w, "FAIL: at least one benchmark regressed more than %.0f%%\n", threshold)
	}
	return failed, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
