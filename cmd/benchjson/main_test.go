package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: resched
cpu: AMD EPYC 7B13
BenchmarkTable1PA/tasks=10-8         	    2690	    427950 ns/op	  137801 B/op	    1511 allocs/op
BenchmarkTable1PA/tasks=100-8        	      66	  17585235 ns/op	 4633766 B/op	   49366 allocs/op
BenchmarkAblationOrdering/efficiency-8 	    1892	    611999 ns/op	     14279 makespan	  178722 B/op
PASS
ok  	resched	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "resched" {
		t.Errorf("header = %q/%q/%q, want linux/amd64/resched", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkTable1PA/tasks=10-8" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 2690 || b.NsPerOp != 427950 || b.BytesPerOp != 137801 || b.AllocsPerOp != 1511 {
		t.Errorf("metrics = %+v", b)
	}
	// Custom metric (b.ReportMetric) lands in Extra keyed by unit.
	if got := doc.Benchmarks[2].Extra["makespan"]; got != 14279 {
		t.Errorf("makespan extra = %v, want 14279", got)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("random output\nBenchmark broken line\nok resched 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(doc.Benchmarks))
	}
}

func TestNormalizeName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkTable1PA/tasks=10-8", "BenchmarkTable1PA/tasks=10"},
		{"BenchmarkTable1PA/tasks=10-16", "BenchmarkTable1PA/tasks=10"},
		{"BenchmarkPAR/workers=4-1", "BenchmarkPAR/workers=4"},
		{"BenchmarkFoo", "BenchmarkFoo"},
		{"BenchmarkFoo-", "BenchmarkFoo-"},
		{"BenchmarkFoo-x8", "BenchmarkFoo-x8"},
	}
	for _, c := range cases {
		if got := normalizeName(c.in); got != c.want {
			t.Errorf("normalizeName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPctDelta(t *testing.T) {
	cases := []struct{ oldV, newV, want float64 }{
		{100, 110, 10},
		{100, 80, -20},
		{0, 0, 0},
		{0, 5, 100},
	}
	for _, c := range cases {
		if got := pctDelta(c.oldV, c.newV); got != c.want {
			t.Errorf("pctDelta(%v, %v) = %v, want %v", c.oldV, c.newV, got, c.want)
		}
	}
}

// writeDoc marshals a Doc into a temp file and returns its path.
func writeDoc(t *testing.T, doc *Doc) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCompare(t *testing.T) {
	// Old document produced on an 8-core machine, new on a 1-core machine:
	// the GOMAXPROCS suffixes differ but the rows must still pair up.
	oldDoc := &Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkTable1PA/tasks=10-8", NsPerOp: 1000, AllocsPerOp: 100},
		{Name: "BenchmarkTable1PA/tasks=20-8", NsPerOp: 2000, AllocsPerOp: 200},
		{Name: "BenchmarkOld/gone-8", NsPerOp: 10, AllocsPerOp: 1},
	}}
	newDoc := &Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkTable1PA/tasks=10-1", NsPerOp: 1050, AllocsPerOp: 90},
		{Name: "BenchmarkTable1PA/tasks=20-1", NsPerOp: 2600, AllocsPerOp: 200},
		{Name: "BenchmarkPAR/workers=4-1", NsPerOp: 5, AllocsPerOp: 2},
	}}
	oldPath, newPath := writeDoc(t, oldDoc), writeDoc(t, newDoc)

	var buf strings.Builder
	failed, err := runCompare(&buf, oldPath, newPath, 15)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// tasks=20 is +30% on ns/op: over the 15% threshold.
	if !failed {
		t.Errorf("runCompare failed=false, want true; output:\n%s", out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "FAIL:") {
		t.Errorf("output missing regression markers:\n%s", out)
	}
	if !strings.Contains(out, "new") || !strings.Contains(out, "gone") {
		t.Errorf("output missing new/gone rows:\n%s", out)
	}

	// A looser threshold passes the same pair of documents.
	buf.Reset()
	failed, err = runCompare(&buf, oldPath, newPath, 50)
	if err != nil {
		t.Fatal(err)
	}
	if failed {
		t.Errorf("runCompare failed=true at threshold 50; output:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("unexpected REGRESSION mark at threshold 50:\n%s", buf.String())
	}
}

func TestRunCompareAllocRegression(t *testing.T) {
	// An allocs/op regression alone must fail the gate even when ns/op
	// improved — the allocation diet is guarded independently.
	oldPath := writeDoc(t, &Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkTable1PA/tasks=20-8", NsPerOp: 2000, AllocsPerOp: 100},
	}})
	newPath := writeDoc(t, &Doc{Benchmarks: []Benchmark{
		{Name: "BenchmarkTable1PA/tasks=20-8", NsPerOp: 1500, AllocsPerOp: 150},
	}})
	var buf strings.Builder
	failed, err := runCompare(&buf, oldPath, newPath, 15)
	if err != nil {
		t.Fatal(err)
	}
	if !failed {
		t.Errorf("alloc regression not flagged; output:\n%s", buf.String())
	}
}

// TestParseRoundsFractionalNsPerOp: go test emits mean ns/op with a
// fractional tail for fast benchmarks (e.g. 96702534.46666667); the JSON
// must carry whole nanoseconds so refreshed BENCH_*.json files diff
// cleanly run to run.
func TestParseRoundsFractionalNsPerOp(t *testing.T) {
	cases := []struct {
		line string
		want float64
	}{
		{"BenchmarkServeLoad-8   15   96702534.46666667 ns/op", 96702534},
		{"BenchmarkFast-8   1000000   12.5 ns/op", 13}, // round half away from zero
		{"BenchmarkWhole-8   100   5000 ns/op", 5000},
	}
	for _, tc := range cases {
		b, ok := parseLine(tc.line)
		if !ok {
			t.Fatalf("parseLine(%q) rejected", tc.line)
		}
		if b.NsPerOp != tc.want {
			t.Errorf("parseLine(%q).NsPerOp = %v, want %v", tc.line, b.NsPerOp, tc.want)
		}
	}
}

// TestServeLoadReportShape pins the wire contract with cmd/paschedload,
// which emits this Doc layout with hand-mirrored structs: a paschedload
// report (including the cache-mode extras) must decode losslessly into our
// Doc, so `benchjson -compare` can diff serve-load runs.
func TestServeLoadReportShape(t *testing.T) {
	sample := `{
	 "goos": "linux",
	 "goarch": "amd64",
	 "pkg": "resched/cmd/paschedload",
	 "benchmarks": [{
	  "name": "ServeLoad/robust/c=6",
	  "iterations": 120,
	  "ns_per_op": 96702534,
	  "extra": {
	   "p50_ns": 91000000,
	   "p99_ns": 180000000,
	   "req_per_sec": 61.5,
	   "requests": 120,
	   "retries": 4,
	   "shed_responses": 2,
	   "terminal_errors": 0,
	   "cache_hits": 40,
	   "cache_warm_starts": 18,
	   "cache_misses": 62,
	   "cache_hit_ratio": 0.3333333333333333
	  }
	 }]
	}`
	doc := &Doc{}
	if err := json.Unmarshal([]byte(sample), doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d, want 1", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "ServeLoad/robust/c=6" || b.Iterations != 120 || b.NsPerOp != 96702534 {
		t.Fatalf("core fields mangled: %+v", b)
	}
	for _, key := range []string{
		"p50_ns", "p99_ns", "req_per_sec", "requests", "retries",
		"shed_responses", "terminal_errors",
		"cache_hits", "cache_warm_starts", "cache_misses", "cache_hit_ratio",
	} {
		if _, ok := b.Extra[key]; !ok {
			t.Fatalf("extra metric %q lost in decode", key)
		}
	}
	// And back out: a re-encode must keep the extras (compare reads them).
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"cache_hit_ratio"`) {
		t.Fatal("re-encode dropped the cache extras")
	}
}
