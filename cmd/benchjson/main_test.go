package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: resched
cpu: AMD EPYC 7B13
BenchmarkTable1PA/tasks=10-8         	    2690	    427950 ns/op	  137801 B/op	    1511 allocs/op
BenchmarkTable1PA/tasks=100-8        	      66	  17585235 ns/op	 4633766 B/op	   49366 allocs/op
BenchmarkAblationOrdering/efficiency-8 	    1892	    611999 ns/op	     14279 makespan	  178722 B/op
PASS
ok  	resched	12.3s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "resched" {
		t.Errorf("header = %q/%q/%q, want linux/amd64/resched", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if doc.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", doc.CPU)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}
	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkTable1PA/tasks=10-8" {
		t.Errorf("name = %q", b.Name)
	}
	if b.Iterations != 2690 || b.NsPerOp != 427950 || b.BytesPerOp != 137801 || b.AllocsPerOp != 1511 {
		t.Errorf("metrics = %+v", b)
	}
	// Custom metric (b.ReportMetric) lands in Extra keyed by unit.
	if got := doc.Benchmarks[2].Extra["makespan"]; got != 14279 {
		t.Errorf("makespan extra = %v, want 14279", got)
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	doc, err := parse(strings.NewReader("random output\nBenchmark broken line\nok resched 1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from noise, want 0", len(doc.Benchmarks))
	}
}
