package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sync"
	"testing"

	"resched/internal/arch"
	"resched/internal/obs"
	"resched/internal/obs/obshttp"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// TestServeDebugDuringLiveSolve exercises the -serve-debug wiring
// in-process: the debug surface is mounted on the solve's trace, solves run
// against it, and /metrics and /debug/trace are fetched while the trace is
// live (between and during solves), asserting the responses reflect the
// solver's recorded work. This is the acceptance path for watching a long
// run from outside the process.
func TestServeDebugDuringLiveSolve(t *testing.T) {
	f, err := os.Open("../../examples/graphs/tg60.json")
	if err != nil {
		t.Fatal(err)
	}
	g, err := taskgraph.Read(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}

	trace := obs.New()
	srv, err := obshttp.Serve("127.0.0.1:0", trace)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	solver, err := solve.Get("par")
	if err != nil {
		t.Fatal(err)
	}
	req := &solve.Request{Graph: g, Arch: arch.ZedBoard(), Options: solve.Options{
		Seed: 1, MaxIterations: 25, Workers: 1, Trace: trace,
	}}

	// Poll the live surface from a second goroutine while the solve runs;
	// every response observed mid-solve must be valid JSON (snapshots are
	// consistent under concurrent recording).
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := http.Get(srv.URL() + "/metrics")
			if err != nil {
				return // server closed under us; the main checks decide
			}
			body, rerr := io.ReadAll(res.Body)
			res.Body.Close()
			if rerr != nil {
				continue
			}
			var doc map[string]any
			if jerr := json.Unmarshal(body, &doc); jerr != nil {
				t.Errorf("mid-solve /metrics is not valid JSON: %v", jerr)
				return
			}
		}
	}()
	if _, err := solver.Solve(req); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// After the solve, the surface must expose the solver's work.
	res, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var metrics struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("/metrics: %v\n%s", err, body)
	}
	if metrics.Counters["solve.par.requests"] != 1 {
		t.Errorf("solve.par.requests = %d, want 1", metrics.Counters["solve.par.requests"])
	}
	if _, ok := metrics.Histograms["solve.par.latency_us"]; !ok {
		t.Errorf("no solve.par.latency_us histogram in /metrics: %v", metrics.Histograms)
	}

	res, err = http.Get(srv.URL() + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("/debug/trace: %v", err)
	}
	var sawRun bool
	for _, ev := range chrome.TraceEvents {
		if ev.Name == "par.run" && ev.Ph == "X" {
			sawRun = true
		}
	}
	if !sawRun {
		t.Error("/debug/trace lacks the par.run span")
	}
}
