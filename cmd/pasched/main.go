// Command pasched schedules a task-graph JSON file on a reconfigurable
// architecture using any solver registered in the unified solve engine
// (internal/solve) — the paper's PA and PA-R schedulers, the IS-k baseline,
// the exhaustive reference and the robust degradation ladder — and prints
// the resulting schedule.
//
// Usage:
//
//	pasched -graph app.json [-algo pa|par|is1|is5|exact|robust]
//	        [-budget 2s] [-iterations 0] [-reuse] [-gantt] [-dot out.dot]
//	        [-seed 1] [-workers 0] [-timeout 0] [-maxnodes 0]
//	        [-fault-floorplan-infeasible N] [-fault-milp-limit N]
//	        [-trace trace.json] [-metrics metrics.json] [-events events.json]
//	        [-serve-debug :8080]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The -algo values are exactly the registered solver names (solve.List);
// a new solver registered with solve.Register becomes reachable here with
// no dispatch change. -budget bounds PA-R's wall-clock search and
// -iterations caps its inner runs (also the ladder's PA-R rung); use
// -budget 0 -iterations N for a deterministic, machine-independent run.
//
// With -trace the run is recorded as a Chrome trace-event file (open it in
// Perfetto or chrome://tracing); -metrics writes the flat counters, span
// aggregates and histogram quantiles as JSON and prints a summary table to
// stderr; -events dumps the flight recorder. -serve-debug mounts the same
// exporters live on an HTTP address for the duration of the run (GET
// /metrics, /debug/trace, /debug/events, /debug/summary, /debug/pprof/) —
// see internal/obs/obshttp.
//
// -robust (equivalently -algo robust) runs the degradation ladder
// (PA → PA-R → all-software) and reports which rung produced the schedule.
// -timeout and -maxnodes bound the whole run through the unified budget;
// the -fault-* flags deterministically inject solver failures, which is how
// the resilience paths are exercised from the command line.
//
// Exit codes: 0 success, 1 generic failure, 2 usage, 3 no floorplan-
// feasible schedule, 4 budget exhausted, 5 no all-software fallback.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/obs/obshttp"
	"resched/internal/sched"
	"resched/internal/schedcache"
	"resched/internal/schedule"
	"resched/internal/sim"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pasched:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the typed failure classes of the resilience layer onto
// distinct exit codes so scripts can react without parsing stderr.
func exitCode(err error) int {
	switch {
	case errors.Is(err, sched.ErrNoSoftwareFallback):
		return 5
	case errors.Is(err, sched.ErrBudgetExhausted):
		return 4
	case errors.Is(err, sched.ErrFloorplanInfeasible):
		return 3
	}
	return 1
}

// run holds the whole command so error returns unwind through the deferred
// profile/trace finalisers; os.Exit in main would skip them.
func run() (retErr error) {
	var (
		graphPath   = flag.String("graph", "", "task-graph JSON file (required)")
		algo        = flag.String("algo", "pa", "solver: "+strings.Join(solve.List(), ", "))
		parBudget   = flag.Duration("budget", 2*time.Second, "PA-R time budget")
		iterations  = flag.Int("iterations", 0, "PA-R iteration cap (0 = unlimited; with -budget 0 the run is deterministic)")
		seed        = flag.Int64("seed", 1, "PA-R random seed")
		workers     = flag.Int("workers", 0, "PA-R search goroutines (0 = GOMAXPROCS, 1 = sequential)")
		reuse       = flag.Bool("reuse", false, "enable module reuse")
		gantt       = flag.Bool("gantt", false, "print a textual Gantt chart")
		simulate    = flag.Bool("sim", false, "execute the schedule on the discrete-event platform model")
		utilization = flag.Bool("stats", false, "print a utilisation report")
		width       = flag.Int("width", 100, "Gantt chart width in cells")
		dotPath     = flag.String("dot", "", "also write the task graph as Graphviz DOT")
		outPath     = flag.String("out", "", "write the schedule as JSON")
		svgPath     = flag.String("svg", "", "write the schedule as an SVG Gantt chart")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metricsPath = flag.String("metrics", "", "write flat counters, span aggregates and histograms as JSON")
		eventsPath  = flag.String("events", "", "write the flight-recorder events as JSON")
		serveDebug  = flag.String("serve-debug", "", "serve /metrics, /debug/trace, /debug/events and pprof on this address while the run lasts (e.g. :8080)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile (runtime/pprof)")

		robust   = flag.Bool("robust", false, "run the degradation ladder (equivalent to -algo robust)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
		maxNodes = flag.Int64("maxnodes", 0, "search-node budget across all solves (0 = unlimited)")
		faultFP  = flag.Int("fault-floorplan-infeasible", 0, "inject: force the next N floorplan solves infeasible (-1 = all)")
		faultML  = flag.Int("fault-milp-limit", 0, "inject: force the next N MILP solves to stop at their limit (-1 = all)")

		cacheEntries = flag.Int("cache-entries", 0, "schedule-cache capacity (0 = no caching); repeated identical runs return the cached result, near-misses warm-start the solver")
	)
	flag.Parse()
	if *robust {
		*algo = "robust"
	}
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *cacheEntries > 0 {
		// Install before Get so the resolved solver is cache-decorated.
		schedcache.Install(schedcache.New(*cacheEntries))
	}
	solver, err := solve.Get(*algo)
	if err != nil {
		return err
	}

	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			_ = cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = cf.Close()
		}()
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := taskgraph.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(df); err != nil {
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
	}

	// One trace serves every export and the live surface; it stays nil — a
	// true no-op — unless observability output was requested.
	var trace *obs.Trace
	if *tracePath != "" || *metricsPath != "" || *eventsPath != "" || *serveDebug != "" {
		trace = obs.New()
	}
	// Deferred so the artefacts are written on failure too: a budget-exhausted
	// or faulted run is exactly when the flight recorder matters most.
	defer func() {
		if err := writeObservability(trace, *tracePath, *metricsPath, *eventsPath); err != nil && retErr == nil {
			retErr = err
		}
	}()
	if *serveDebug != "" {
		srv, err := obshttp.Serve(*serveDebug, trace)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "debug surface on %s\n", srv.URL())
	}

	// The unified budget and fault set thread through every scheduler layer;
	// both stay nil (= unlimited / no faults) unless requested. Both feed
	// the flight recorder: budget exhaustion and injected faults show up in
	// -events and /debug/events.
	var bud *budget.Budget
	if *timeout > 0 || *maxNodes > 0 {
		bud = budget.New(budget.Options{Timeout: *timeout, MaxNodes: *maxNodes, Trace: trace})
	}
	var faults *faultinject.Set
	if *faultFP != 0 || *faultML != 0 {
		faults = faultinject.New()
		faults.SetTrace(trace)
		if *faultFP != 0 {
			faults.ForceFloorplanInfeasible(*faultFP)
		}
		if *faultML != 0 {
			faults.ForceMILPLimit(*faultML)
		}
	}

	req := &solve.Request{
		Graph: g,
		Arch:  arch.ZedBoard(),
		Options: solve.Options{
			ModuleReuse:   *reuse,
			Seed:          *seed,
			Workers:       *workers,
			TimeBudget:    *parBudget,
			MaxIterations: *iterations,
			Budget:        bud,
			Faults:        faults,
			Trace:         trace,
		},
	}
	start := time.Now()
	res, err := solver.Solve(req)
	if err != nil {
		return err
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Microsecond))
	sch := res.Schedule
	if errs := schedule.Check(sch); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid schedule:", e)
		}
		return fmt.Errorf("schedule failed validation (%d errors)", len(errs))
	}
	fmt.Println(sch.Summary())
	for _, r := range sch.Regions {
		fmt.Printf("  region %d: %v (reconf %d ticks)\n", r.ID, r.Res, r.ReconfTime)
	}
	if *gantt {
		if err := sch.WriteGantt(os.Stdout, *width); err != nil {
			return err
		}
	}
	if *utilization {
		if err := schedule.ComputeStats(sch).WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := sch.WriteJSON(of); err != nil {
			return err
		}
		if err := of.Close(); err != nil {
			return err
		}
	}
	if *svgPath != "" {
		sf, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := sch.WriteSVG(sf); err != nil {
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}
	if *simulate {
		res, err := sim.Execute(sch)
		if err != nil {
			return err
		}
		fmt.Printf("simulated: makespan %d ticks (%d ticks of static slack recovered), %d events\n",
			res.Makespan, res.Slack(sch), res.Events)
	}
	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeObservability exports the trace-event, metrics and events files and
// prints the summary table (spans, histograms, counters, event tail) to
// stderr when tracing was enabled.
func writeObservability(trace *obs.Trace, tracePath, metricsPath, eventsPath string) error {
	if trace == nil {
		return nil
	}
	writeFile := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(tracePath, trace.WriteChromeTrace); err != nil {
		return err
	}
	if err := writeFile(metricsPath, trace.WriteMetricsJSON); err != nil {
		return err
	}
	if err := writeFile(eventsPath, trace.WriteEventsJSON); err != nil {
		return err
	}
	return trace.WriteSummary(os.Stderr)
}
