// Command pasched schedules a task-graph JSON file on a reconfigurable
// architecture using the paper's PA or PA-R schedulers (or the IS-k
// baseline for comparison) and prints the resulting schedule.
//
// Usage:
//
//	pasched -graph app.json [-algo pa|par|is1|is5] [-budget 2s]
//	        [-reuse] [-gantt] [-dot out.dot] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"resched/internal/arch"
	"resched/internal/isk"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/sim"
	"resched/internal/taskgraph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "task-graph JSON file (required)")
		algo      = flag.String("algo", "pa", "scheduler: pa, par, is1 or is5")
		budget    = flag.Duration("budget", 2*time.Second, "PA-R time budget")
		seed      = flag.Int64("seed", 1, "PA-R random seed")
		reuse     = flag.Bool("reuse", false, "enable module reuse")
		gantt     = flag.Bool("gantt", false, "print a textual Gantt chart")
		simulate  = flag.Bool("sim", false, "execute the schedule on the discrete-event platform model")
		stats     = flag.Bool("stats", false, "print a utilisation report")
		width     = flag.Int("width", 100, "Gantt chart width in cells")
		dotPath   = flag.String("dot", "", "also write the task graph as Graphviz DOT")
		outPath   = flag.String("out", "", "write the schedule as JSON")
		svgPath   = flag.String("svg", "", "write the schedule as an SVG Gantt chart")
	)
	flag.Parse()
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := taskgraph.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fatal(err)
	}
	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			fatal(err)
		}
		if err := g.WriteDOT(df); err != nil {
			fatal(err)
		}
		if err := df.Close(); err != nil {
			fatal(err)
		}
	}

	a := arch.ZedBoard()
	var sch *schedule.Schedule
	start := time.Now()
	switch *algo {
	case "pa":
		var stats *sched.Stats
		sch, stats, err = sched.Schedule(g, a, sched.Options{ModuleReuse: *reuse})
		if err == nil {
			fmt.Printf("scheduling %v, floorplanning %v, retries %d\n",
				stats.SchedulingTime.Round(time.Microsecond),
				stats.FloorplanTime.Round(time.Microsecond), stats.Retries)
		}
	case "par":
		var stats *sched.RandomStats
		sch, stats, err = sched.RSchedule(g, a, sched.RandomOptions{
			TimeBudget: *budget, Seed: *seed, ModuleReuse: *reuse,
		})
		if err == nil {
			fmt.Printf("iterations %d, floorplan calls %d, discarded %d\n",
				stats.Iterations, stats.FloorplanCalls, stats.Discarded)
		}
	case "is1", "is5":
		k := 1
		if *algo == "is5" {
			k = 5
		}
		var stats *isk.Stats
		sch, stats, err = isk.Schedule(g, a, isk.Options{K: k, ModuleReuse: *reuse})
		if err == nil {
			fmt.Printf("windows %d, nodes %d, retries %d\n", stats.Windows, stats.Nodes, stats.Retries)
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("total %v\n", time.Since(start).Round(time.Microsecond))
	if errs := schedule.Check(sch); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid schedule:", e)
		}
		os.Exit(1)
	}
	fmt.Println(sch.Summary())
	for _, r := range sch.Regions {
		fmt.Printf("  region %d: %v (reconf %d ticks)\n", r.ID, r.Res, r.ReconfTime)
	}
	if *gantt {
		if err := sch.WriteGantt(os.Stdout, *width); err != nil {
			fatal(err)
		}
	}
	if *stats {
		if err := schedule.ComputeStats(sch).WriteReport(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := sch.WriteJSON(of); err != nil {
			fatal(err)
		}
		if err := of.Close(); err != nil {
			fatal(err)
		}
	}
	if *svgPath != "" {
		sf, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		if err := sch.WriteSVG(sf); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
	}
	if *simulate {
		res, err := sim.Execute(sch)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("simulated: makespan %d ticks (%d ticks of static slack recovered), %d events\n",
			res.Makespan, res.Slack(sch), res.Events)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pasched:", err)
	os.Exit(1)
}
