// Command pasched schedules a task-graph JSON file on a reconfigurable
// architecture using the paper's PA or PA-R schedulers (or the IS-k
// baseline for comparison) and prints the resulting schedule.
//
// Usage:
//
//	pasched -graph app.json [-algo pa|par|is1|is5|robust] [-budget 2s]
//	        [-reuse] [-gantt] [-dot out.dot] [-seed 7] [-workers 0]
//	        [-timeout 0] [-maxnodes 0]
//	        [-fault-floorplan-infeasible N] [-fault-milp-limit N]
//	        [-trace trace.json] [-metrics metrics.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -trace the run is recorded as a Chrome trace-event file (open it in
// Perfetto or chrome://tracing); -metrics writes the flat counters/span
// aggregates as JSON and prints a span summary table to stderr.
//
// -robust (equivalently -algo robust) runs the degradation ladder
// (PA → PA-R → all-software) and reports which rung produced the schedule.
// -timeout and -maxnodes bound the whole run through the unified budget;
// the -fault-* flags deterministically inject solver failures, which is how
// the resilience paths are exercised from the command line.
//
// Exit codes: 0 success, 1 generic failure, 2 usage, 3 no floorplan-
// feasible schedule, 4 budget exhausted, 5 no all-software fallback.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/isk"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/sim"
	"resched/internal/taskgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pasched:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode maps the typed failure classes of the resilience layer onto
// distinct exit codes so scripts can react without parsing stderr.
func exitCode(err error) int {
	switch {
	case errors.Is(err, sched.ErrNoSoftwareFallback):
		return 5
	case errors.Is(err, sched.ErrBudgetExhausted):
		return 4
	case errors.Is(err, sched.ErrFloorplanInfeasible):
		return 3
	}
	return 1
}

// run holds the whole command so error returns unwind through the deferred
// profile/trace finalisers; os.Exit in main would skip them.
func run() error {
	var (
		graphPath   = flag.String("graph", "", "task-graph JSON file (required)")
		algo        = flag.String("algo", "pa", "scheduler: pa, par, is1 or is5")
		parBudget   = flag.Duration("budget", 2*time.Second, "PA-R time budget")
		seed        = flag.Int64("seed", 1, "PA-R random seed")
		workers     = flag.Int("workers", 0, "PA-R search goroutines (0 = GOMAXPROCS, 1 = sequential)")
		reuse       = flag.Bool("reuse", false, "enable module reuse")
		gantt       = flag.Bool("gantt", false, "print a textual Gantt chart")
		simulate    = flag.Bool("sim", false, "execute the schedule on the discrete-event platform model")
		utilization = flag.Bool("stats", false, "print a utilisation report")
		width       = flag.Int("width", 100, "Gantt chart width in cells")
		dotPath     = flag.String("dot", "", "also write the task graph as Graphviz DOT")
		outPath     = flag.String("out", "", "write the schedule as JSON")
		svgPath     = flag.String("svg", "", "write the schedule as an SVG Gantt chart")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metricsPath = flag.String("metrics", "", "write flat counters and span aggregates as JSON")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile (runtime/pprof)")

		robust   = flag.Bool("robust", false, "run the degradation ladder (equivalent to -algo robust)")
		timeout  = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
		maxNodes = flag.Int64("maxnodes", 0, "search-node budget across all solves (0 = unlimited)")
		faultFP  = flag.Int("fault-floorplan-infeasible", 0, "inject: force the next N floorplan solves infeasible (-1 = all)")
		faultML  = flag.Int("fault-milp-limit", 0, "inject: force the next N MILP solves to stop at their limit (-1 = all)")
	)
	flag.Parse()
	if *robust {
		*algo = "robust"
	}
	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			_ = cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = cf.Close()
		}()
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	g, err := taskgraph.Read(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if *dotPath != "" {
		df, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(df); err != nil {
			return err
		}
		if err := df.Close(); err != nil {
			return err
		}
	}

	// One trace serves both exports; it stays nil — a true no-op — unless
	// observability output was requested.
	var trace *obs.Trace
	if *tracePath != "" || *metricsPath != "" {
		trace = obs.New()
	}

	// The unified budget and fault set thread through every scheduler layer;
	// both stay nil (= unlimited / no faults) unless requested.
	var bud *budget.Budget
	if *timeout > 0 || *maxNodes > 0 {
		bud = budget.New(budget.Options{Timeout: *timeout, MaxNodes: *maxNodes})
	}
	var faults *faultinject.Set
	if *faultFP != 0 || *faultML != 0 {
		faults = faultinject.New()
		if *faultFP != 0 {
			faults.ForceFloorplanInfeasible(*faultFP)
		}
		if *faultML != 0 {
			faults.ForceMILPLimit(*faultML)
		}
	}

	a := arch.ZedBoard()
	var sch *schedule.Schedule
	report := struct {
		scheduling, floorplanning time.Duration
		retries, iterations       int
	}{}
	start := time.Now()
	switch *algo {
	case "pa":
		var paStats *sched.Stats
		sch, paStats, err = sched.Schedule(g, a, sched.Options{ModuleReuse: *reuse, Trace: trace, Budget: bud, Faults: faults})
		if err == nil {
			report.scheduling = paStats.SchedulingTime
			report.floorplanning = paStats.FloorplanTime
			report.retries = paStats.Retries
			report.iterations = paStats.Attempts
		}
	case "par":
		var parStats *sched.RandomStats
		sch, parStats, err = sched.RSchedule(g, a, sched.RandomOptions{
			TimeBudget: *parBudget, Seed: *seed, Workers: *workers,
			ModuleReuse: *reuse, Trace: trace,
			Budget: bud, Faults: faults,
		})
		if err == nil {
			report.scheduling = parStats.SchedulingTime
			report.floorplanning = parStats.FloorplanTime
			report.retries = parStats.Discarded
			report.iterations = parStats.Iterations
			fmt.Printf("floorplan calls %d, discarded %d, improvements %d\n",
				parStats.FloorplanCalls, parStats.Discarded, len(parStats.History))
		}
	case "is1", "is5":
		k := 1
		if *algo == "is5" {
			k = 5
		}
		var iskStats *isk.Stats
		sch, iskStats, err = isk.Schedule(g, a, isk.Options{K: k, ModuleReuse: *reuse, Trace: trace, Budget: bud, Faults: faults})
		if err == nil {
			report.scheduling = iskStats.SchedulingTime
			report.floorplanning = iskStats.FloorplanTime
			report.retries = iskStats.Retries
			report.iterations = iskStats.Windows
			fmt.Printf("windows %d, nodes %d\n", iskStats.Windows, iskStats.Nodes)
		}
	case "robust":
		var res *sched.Result
		res, err = sched.Robust(g, a, sched.RobustOptions{
			ModuleReuse: *reuse, RandomTime: *parBudget, RandomSeed: *seed,
			Budget: bud, Faults: faults, Trace: trace,
		})
		if err == nil {
			sch = res.Schedule
			fmt.Printf("rung: %s\n", res.Rung)
			if s := res.ReasonSummary(); s != "" {
				fmt.Printf("degraded: %s\n", s)
			}
			if res.Stats != nil {
				report.scheduling = res.Stats.SchedulingTime
				report.floorplanning = res.Stats.FloorplanTime
				report.retries = res.Stats.Retries
				report.iterations = res.Stats.Attempts
			}
		}
	default:
		return fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		return err
	}
	fmt.Printf("scheduling %v, floorplanning %v, retries %d, iterations %d\n",
		report.scheduling.Round(time.Microsecond),
		report.floorplanning.Round(time.Microsecond),
		report.retries, report.iterations)
	fmt.Printf("total %v\n", time.Since(start).Round(time.Microsecond))
	if errs := schedule.Check(sch); len(errs) > 0 {
		for _, e := range errs {
			fmt.Fprintln(os.Stderr, "invalid schedule:", e)
		}
		return fmt.Errorf("schedule failed validation (%d errors)", len(errs))
	}
	fmt.Println(sch.Summary())
	for _, r := range sch.Regions {
		fmt.Printf("  region %d: %v (reconf %d ticks)\n", r.ID, r.Res, r.ReconfTime)
	}
	if *gantt {
		if err := sch.WriteGantt(os.Stdout, *width); err != nil {
			return err
		}
	}
	if *utilization {
		if err := schedule.ComputeStats(sch).WriteReport(os.Stdout); err != nil {
			return err
		}
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := sch.WriteJSON(of); err != nil {
			return err
		}
		if err := of.Close(); err != nil {
			return err
		}
	}
	if *svgPath != "" {
		sf, err := os.Create(*svgPath)
		if err != nil {
			return err
		}
		if err := sch.WriteSVG(sf); err != nil {
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}
	if *simulate {
		res, err := sim.Execute(sch)
		if err != nil {
			return err
		}
		fmt.Printf("simulated: makespan %d ticks (%d ticks of static slack recovered), %d events\n",
			res.Makespan, res.Slack(sch), res.Events)
	}
	if err := writeObservability(trace, *tracePath, *metricsPath); err != nil {
		return err
	}
	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// writeObservability exports the trace-event and metrics files and prints
// the span summary table to stderr when tracing was enabled.
func writeObservability(trace *obs.Trace, tracePath, metricsPath string) error {
	if trace == nil {
		return nil
	}
	if tracePath != "" {
		tf, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := trace.WriteChromeTrace(tf); err != nil {
			return err
		}
		if err := tf.Close(); err != nil {
			return err
		}
	}
	if metricsPath != "" {
		mf, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := trace.WriteMetricsJSON(mf); err != nil {
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
	}
	return trace.WriteSummary(os.Stderr)
}
