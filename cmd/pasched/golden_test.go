package main

import (
	"bytes"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"testing"

	"resched/internal/solve"
)

// update regenerates the golden files from the current binary:
//
//	go test ./cmd/pasched -run TestGoldenCLI -update
var update = flag.Bool("update", false, "rewrite the golden CLI outputs")

// durRe matches Go duration literals ("25.197ms", "0s", "1m20s") so the
// only nondeterministic tokens in the report — wall-clock readings — can be
// replaced by a stable placeholder before comparison.
var durRe = regexp.MustCompile(`([0-9]+(\.[0-9]+)?(ns|µs|us|ms|s|m|h))+`)

func normalize(b []byte) []byte { return durRe.ReplaceAll(b, []byte("DUR")) }

// TestGoldenCLI locks the user-visible output of every registered -algo
// value. The pa, par, is1, is5 and robust goldens were captured from the
// CLI as it existed before the unified solve engine (par via the identical
// pre-refactor code path with an iteration cap, the semantics -iterations
// now exposes), so a passing run proves the registry refactor changed zero
// bytes of user-visible output; exact joined the CLI with the registry and
// its golden pins the format from its first release. Durations are the one
// machine-dependent token and are normalized away on both sides.
func TestGoldenCLI(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "pasched")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pasched: %v\n%s", err, out)
	}

	cases := []struct {
		algo string
		args []string
	}{
		{"pa", []string{"-graph", "../../examples/graphs/tg60.json", "-algo", "pa"}},
		// -budget 0 -iterations 40 -workers 1: a deterministic sequential
		// search, so the iteration and improvement counts are stable.
		{"par", []string{"-graph", "../../examples/graphs/tg60.json", "-algo", "par",
			"-budget", "0", "-iterations", "40", "-workers", "1"}},
		{"is1", []string{"-graph", "../../examples/graphs/tg60.json", "-algo", "is1"}},
		{"is5", []string{"-graph", "../../examples/graphs/tg60.json", "-algo", "is5"}},
		{"robust", []string{"-graph", "../../examples/graphs/tg60.json", "-algo", "robust"}},
		// The exhaustive reference rejects 60-task instances; its golden
		// runs on the committed 9-task graph.
		{"exact", []string{"-graph", "../../examples/graphs/tg9.json", "-algo", "exact"}},
	}
	for _, tc := range cases {
		t.Run(tc.algo, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			cmd := exec.Command(bin, tc.args...)
			cmd.Stdout = &stdout
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				t.Fatalf("pasched %v: %v\nstderr: %s", tc.args, err, stderr.String())
			}
			if stderr.Len() > 0 {
				t.Errorf("unexpected stderr output:\n%s", stderr.String())
			}
			got := normalize(stdout.Bytes())
			goldenPath := filepath.Join("testdata", "golden", tc.algo+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}

	// Every registered solver must have a golden: a newly registered
	// solver shows up here until its CLI output is locked too.
	covered := map[string]bool{}
	for _, tc := range cases {
		covered[tc.algo] = true
	}
	for _, name := range solve.List() {
		if !covered[name] {
			t.Errorf("registered solver %q has no golden CLI case", name)
		}
	}
}
