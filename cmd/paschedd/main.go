// Command paschedd is the scheduling daemon: internal/serve behind a plain
// net/http listener, with graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	paschedd [-addr 127.0.0.1:8080] [-addr-file path]
//	         [-arch zedboard|microzed|zc706] [-workers 2] [-queue 16]
//	         [-max-budget 30s] [-drain-budget 10s] [-max-sessions 8]
//	         [-trace trace.json] [-metrics metrics.json] [-events events.json]
//	         [-fault-queue-full N] [-fault-floorplan-infeasible N]
//	         [-fault-milp-limit N]
//
// Endpoints: POST /solve for stateless instances, POST /session/open,
// /session/submit and /session/close for rolling-horizon online scheduling
// (one long-lived engine per session, jobs streaming in over time), GET
// /healthz, GET /metrics, GET /debug/* (see internal/serve).
// -addr-file writes the actually-bound address (useful
// with -addr 127.0.0.1:0) so scripts can find an ephemeral port. The
// -fault-* flags arm the deterministic chaos hooks — forced queue-full
// admissions and solver-rung failures — so a load test can exercise the
// 429/degradation paths on a healthy machine.
//
// On SIGTERM/SIGINT the daemon stops accepting (late requests get 503),
// finishes in-flight work under -drain-budget, cancels stragglers through
// the root budget, flushes the observability artefacts and exits 0. A
// second signal forces immediate exit 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paschedd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 = ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file")
	archName := flag.String("arch", "zedboard", "default board preset for requests that name none")
	workers := flag.Int("workers", 2, "solver worker pool size")
	queue := flag.Int("queue", 16, "admission queue depth")
	maxBudget := flag.Duration("max-budget", 30*time.Second, "per-request budget clamp")
	drainBudget := flag.Duration("drain-budget", 10*time.Second, "graceful-drain allowance")
	maxSessions := flag.Int("max-sessions", 8, "concurrently open rolling-horizon sessions")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON here on drain")
	metricsPath := flag.String("metrics", "", "write metrics JSON here on drain")
	eventsPath := flag.String("events", "", "write flight-recorder JSON here on drain")
	faultQF := flag.Int("fault-queue-full", 0, "force the next N admissions to shed with 429 (-1 = all)")
	faultFP := flag.Int("fault-floorplan-infeasible", 0, "force the next N floorplan solves infeasible (-1 = all)")
	faultML := flag.Int("fault-milp-limit", 0, "force the next N MILP solves to stop at their limit (-1 = all)")
	cacheEntries := flag.Int("cache-entries", 256, "schedule-cache capacity (0 = disable caching)")
	flag.Parse()

	// The wire flag reads naturally (0 = off) while the Config convention is
	// "0 = default, negative = off"; map between them here.
	cacheCfg := *cacheEntries
	if cacheCfg <= 0 {
		cacheCfg = -1
	}

	trace := obs.New()
	var faults *faultinject.Set
	if *faultQF != 0 || *faultFP != 0 || *faultML != 0 {
		faults = faultinject.New()
		faults.SetTrace(trace)
		if *faultQF != 0 {
			faults.ForceQueueFull(*faultQF)
		}
		if *faultFP != 0 {
			faults.ForceFloorplanInfeasible(*faultFP)
		}
		if *faultML != 0 {
			faults.ForceMILPLimit(*faultML)
		}
		fmt.Fprintf(os.Stderr, "paschedd: faults armed: %v\n", faults.Armed())
	}

	srv := serve.New(serve.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		MaxBudget:    *maxBudget,
		DrainBudget:  *drainBudget,
		MaxSessions:  *maxSessions,
		DefaultArch:  *archName,
		CacheEntries: cacheCfg,
		Faults:       faults,
		Trace:        trace,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			_ = ln.Close()
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "paschedd: listening on %s (arch %s, %d workers, queue %d)\n",
		ln.Addr(), *archName, *workers, *queue)

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		return err
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "paschedd: %v: draining\n", sig)
	}

	// Second signal during drain: give up immediately.
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "paschedd: second signal, aborting")
		os.Exit(1)
	}()

	rep := srv.Drain()
	_ = httpSrv.Close()
	fmt.Fprintf(os.Stderr, "paschedd: drained (queued=%d in_flight=%d forced=%v)\n",
		rep.Queued, rep.InFlight, rep.Forced)
	if err := writeObservability(trace, *tracePath, *metricsPath, *eventsPath); err != nil {
		return err
	}
	return nil
}

// writeObservability flushes the three obs artefacts on drain, mirroring
// cmd/pasched so cmd/obscheck validates both batch and serving runs.
func writeObservability(trace *obs.Trace, tracePath, metricsPath, eventsPath string) error {
	writeFile := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(tracePath, trace.WriteChromeTrace); err != nil {
		return err
	}
	if err := writeFile(metricsPath, trace.WriteMetricsJSON); err != nil {
		return err
	}
	return writeFile(eventsPath, trace.WriteEventsJSON)
}
