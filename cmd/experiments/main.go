// Command experiments regenerates the paper's evaluation artefacts:
// Table I and Figures 2–6 of §VII, over the synthetic benchmark suite.
//
// Usage:
//
//	experiments [-exp all|table1|fig2|fig3|fig4|fig5|fig6]
//	            [-per-group 10] [-seed 2016] [-fig6-budget 5s] [-quiet]
//
// A full run (-per-group 10) evaluates 100 instances × 4 algorithms; use
// -per-group 2 or 3 for a quick look.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"resched/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: all, table1, fig2, fig3, fig4, fig5, fig6, contention, parallelism or optgap")
		perGroup   = flag.Int("per-group", 10, "instances per task-count group")
		seed       = flag.Int64("seed", 2016, "benchmark suite seed")
		fig6Budget = flag.Duration("fig6-budget", 5*time.Second, "PA-R budget per Fig. 6 instance")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, PerGroup: *perGroup, Validate: true}
	want := strings.ToLower(*exp)
	needSuite := want != "fig6" && want != "contention" && want != "parallelism" && want != "optgap"

	var results []experiments.InstanceResult
	if needSuite {
		start := time.Now()
		progress := func(done, total int) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "\rinstances %d/%d (%v)", done, total, time.Since(start).Round(time.Second))
			}
		}
		var err error
		results, err = experiments.Run(cfg, progress)
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			fatal(err)
		}
	}

	show := func(name string, f func()) {
		if want == "all" || want == name {
			f()
			fmt.Println()
		}
	}
	show("table1", func() { experiments.WriteTable1(os.Stdout, results) })
	show("fig2", func() { experiments.WriteFig2(os.Stdout, results) })
	show("fig3", func() { experiments.WriteFig3(os.Stdout, results) })
	show("fig4", func() { experiments.WriteFig4(os.Stdout, results) })
	show("fig5", func() { experiments.WriteFig5(os.Stdout, results) })
	show("fig6", func() {
		points, err := experiments.RunFig6(cfg, experiments.Fig6Config{Seed: *seed, Budget: *fig6Budget})
		if err != nil {
			fatal(err)
		}
		experiments.WriteFig6(os.Stdout, points)
	})
	if want == "contention" {
		points, err := experiments.RunContention(experiments.ContentionConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		experiments.WriteContention(os.Stdout, points)
	}
	if want == "parallelism" {
		points, err := experiments.RunParallelism(experiments.ParallelismConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		experiments.WriteParallelism(os.Stdout, points)
	}
	if want == "optgap" {
		points, err := experiments.RunOptGap(experiments.OptGapConfig{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		experiments.WriteOptGap(os.Stdout, points)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
