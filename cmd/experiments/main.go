// Command experiments regenerates the paper's evaluation artefacts:
// Table I and Figures 2–6 of §VII, over the synthetic benchmark suite.
//
// Usage:
//
//	experiments [-exp all|table1|fig2|fig3|fig4|fig5|fig6]
//	            [-per-group 10] [-seed 2016] [-fig6-budget 5s] [-quiet]
//	            [-workers 1]
//	            [-trace trace.json] [-metrics metrics.json]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// A full run (-per-group 10) evaluates 100 instances × 4 algorithms; use
// -per-group 2 or 3 for a quick look. With -trace every scheduler run
// lands in one Chrome trace-event timeline (open in Perfetto); -metrics
// aggregates spans and counters as JSON and prints a summary to stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"resched/internal/budget"
	"resched/internal/experiments"
	"resched/internal/obs"
	"resched/internal/obs/obshttp"
	"resched/internal/schedcache"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run holds the whole command so error returns unwind through the deferred
// profile/trace finalisers; os.Exit in main would skip them.
func run() (retErr error) {
	var (
		exp         = flag.String("exp", "all", "experiment: all, table1, fig2, fig3, fig4, fig5, fig6, contention, parallelism or optgap")
		perGroup    = flag.Int("per-group", 10, "instances per task-count group")
		seed        = flag.Int64("seed", 2016, "benchmark suite seed")
		fig6Budget  = flag.Duration("fig6-budget", 5*time.Second, "PA-R budget per Fig. 6 instance")
		quiet       = flag.Bool("quiet", false, "suppress progress output")
		workers     = flag.Int("workers", 1, "instances evaluated concurrently (1 = sequential; >1 makes the wall-clock columns noisy and can shift the time-budgeted PA-R column)")
		timeout     = flag.Duration("timeout", 0, "wall-clock budget for the suite evaluation; on exhaustion the run stops early and reports the completed instances (0 = unlimited)")
		robust      = flag.Bool("robust", false, "additionally run the degradation ladder per instance and report the rung distribution")
		tracePath   = flag.String("trace", "", "write a Chrome trace-event JSON file (Perfetto / chrome://tracing)")
		metricsPath = flag.String("metrics", "", "write flat counters, span aggregates and histograms as JSON")
		eventsPath  = flag.String("events", "", "write the flight-recorder events as JSON")
		serveDebug  = flag.String("serve-debug", "", "serve /metrics, /debug/trace, /debug/events and pprof on this address while the sweep runs (e.g. :8080)")
		cpuProfile  = flag.String("cpuprofile", "", "write a CPU profile (runtime/pprof)")
		memProfile  = flag.String("memprofile", "", "write a heap profile (runtime/pprof)")

		cacheEntries = flag.Int("cache-entries", 0, "schedule-cache capacity (0 = no caching); deterministic solver repeats within the sweep return cached results")
	)
	flag.Parse()

	if *cacheEntries > 0 {
		// The harness dispatches every solve through the registry, so one
		// installed cache covers the whole sweep.
		schedcache.Install(schedcache.New(*cacheEntries))
	}

	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			_ = cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			_ = cf.Close()
		}()
	}

	var trace *obs.Trace
	if *tracePath != "" || *metricsPath != "" || *eventsPath != "" || *serveDebug != "" {
		trace = obs.New()
	}
	// Deferred so the artefacts are written even when the sweep fails or is
	// cut short: an exhausted or aborted run is when the recorder matters.
	defer func() {
		if err := exportObservability(trace, *tracePath, *metricsPath, *eventsPath); err != nil && retErr == nil {
			retErr = err
		}
	}()
	// The live surface is the point of -serve-debug on this command: a
	// multi-hour sweep can be watched (and pprof'd) while it runs.
	if *serveDebug != "" {
		srv, err := obshttp.Serve(*serveDebug, trace)
		if err != nil {
			return err
		}
		defer func() { _ = srv.Close() }()
		fmt.Fprintf(os.Stderr, "debug surface on %s\n", srv.URL())
	}

	cfg := experiments.Config{Seed: *seed, PerGroup: *perGroup, Validate: true, Trace: trace, Robust: *robust, Workers: *workers}
	if *timeout > 0 {
		cfg.Budget = budget.New(budget.Options{Timeout: *timeout, Trace: trace})
	}
	want := strings.ToLower(*exp)
	needSuite := want != "fig6" && want != "contention" && want != "parallelism" && want != "optgap"

	var results []experiments.InstanceResult
	if needSuite {
		start := time.Now()
		progress := func(done, total int) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "\rinstances %d/%d (%v)", done, total, time.Since(start).Round(time.Second))
			}
		}
		var err error
		results, err = experiments.Run(cfg, progress)
		if !*quiet {
			fmt.Fprintln(os.Stderr)
		}
		if err != nil {
			if len(results) == 0 {
				return err
			}
			// Budget exhausted mid-suite: aggregate what completed.
			fmt.Fprintf(os.Stderr, "warning: %v; reporting %d completed instances\n", err, len(results))
		}
		if *robust {
			rungs := map[string]int{}
			for _, r := range results {
				if r.Robust != nil && r.Robust.Err == nil {
					rungs[r.Robust.Rung.String()]++
				}
			}
			fmt.Printf("robust ladder rungs: full=%d retried=%d randomized=%d software-only=%d\n\n",
				rungs["full"], rungs["retried"], rungs["randomized"], rungs["software-only"])
		}
	}

	show := func(name string, f func()) {
		if want == "all" || want == name {
			f()
			fmt.Println()
		}
	}
	show("table1", func() { experiments.WriteTable1(os.Stdout, results) })
	show("fig2", func() { experiments.WriteFig2(os.Stdout, results) })
	show("fig3", func() { experiments.WriteFig3(os.Stdout, results) })
	show("fig4", func() { experiments.WriteFig4(os.Stdout, results) })
	show("fig5", func() { experiments.WriteFig5(os.Stdout, results) })
	var runErr error
	show("fig6", func() {
		points, err := experiments.RunFig6(cfg, experiments.Fig6Config{Seed: *seed, Budget: *fig6Budget})
		if err != nil {
			runErr = err
			return
		}
		experiments.WriteFig6(os.Stdout, points)
	})
	if runErr != nil {
		return runErr
	}
	if want == "contention" {
		points, err := experiments.RunContention(experiments.ContentionConfig{Seed: *seed})
		if err != nil {
			return err
		}
		experiments.WriteContention(os.Stdout, points)
	}
	if want == "parallelism" {
		points, err := experiments.RunParallelism(experiments.ParallelismConfig{Seed: *seed, Workers: *workers})
		if err != nil {
			return err
		}
		experiments.WriteParallelism(os.Stdout, points)
	}
	if want == "optgap" {
		points, err := experiments.RunOptGap(experiments.OptGapConfig{Seed: *seed})
		if err != nil {
			return err
		}
		experiments.WriteOptGap(os.Stdout, points)
	}

	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			return err
		}
		if err := mf.Close(); err != nil {
			return err
		}
	}
	return nil
}

// exportObservability writes the trace-event, metrics and events files and
// prints the summary to stderr when tracing was enabled; it runs deferred
// so failed or budget-cut sweeps still export what they recorded.
func exportObservability(trace *obs.Trace, tracePath, metricsPath, eventsPath string) error {
	if trace == nil {
		return nil
	}
	writeFile := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(tracePath, trace.WriteChromeTrace); err != nil {
		return err
	}
	if err := writeFile(metricsPath, trace.WriteMetricsJSON); err != nil {
		return err
	}
	if err := writeFile(eventsPath, trace.WriteEventsJSON); err != nil {
		return err
	}
	return trace.WriteSummary(os.Stderr)
}
