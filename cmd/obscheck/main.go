// Command obscheck sanity-checks the three observability artefacts a
// traced run exports — the Chrome trace-event file, the metrics document
// and the flight-recorder dump — and exits non-zero if any is malformed.
// It is the assertion half of `make obs-smoke`: the smoke run produces the
// files, obscheck proves they are well-formed and non-trivial (valid JSON,
// the expected top-level shape, at least one span / counter / histogram,
// every recorded event carrying a name and a sequence number).
//
// Usage:
//
//	obscheck [-require-counters a,b] trace.json metrics.json events.json
//
// File arguments are positional and all required, in that order.
// -require-counters names counters (comma-separated) that must be present
// in the metrics document with a value greater than zero — the smoke run
// uses it to prove specific subsystems (e.g. the schedule cache) actually
// fired, not just that some counters exist.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	required := flag.String("require-counters", "",
		"comma-separated counter names that must be present with value > 0 in metrics.json")
	flag.Parse()
	if flag.NArg() != 3 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-require-counters a,b] trace.json metrics.json events.json")
		os.Exit(2)
	}
	metricsCheck := func(data []byte) error {
		return checkMetrics(data, splitList(*required))
	}
	checks := []struct {
		path  string
		check func([]byte) error
	}{
		{flag.Arg(0), checkTrace},
		{flag.Arg(1), metricsCheck},
		{flag.Arg(2), checkEvents},
	}
	failed := false
	for _, c := range checks {
		data, err := os.ReadFile(c.path)
		if err == nil {
			err = c.check(data)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", c.path, err)
			failed = true
			continue
		}
		fmt.Printf("obscheck: %s ok\n", c.path)
	}
	if failed {
		os.Exit(1)
	}
}

// checkTrace validates the Chrome trace-event file: displayTimeUnit and a
// non-empty traceEvents array whose entries all carry a name and a phase,
// with at least one complete ("X") span among them.
func checkTrace(data []byte) error {
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.DisplayTimeUnit == "" {
		return fmt.Errorf("missing displayTimeUnit")
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("empty traceEvents")
	}
	spans := 0
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" {
			return fmt.Errorf("traceEvents[%d] missing name or ph", i)
		}
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		return fmt.Errorf("no complete (ph=X) spans among %d events", len(doc.TraceEvents))
	}
	return nil
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// checkMetrics validates the metrics document: at least one counter, one
// span aggregate and one histogram, every histogram internally consistent
// (count > 0, min <= p50 <= p99 <= max), and every required counter
// present with a positive value.
func checkMetrics(data []byte, required []string) error {
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Spans      map[string]any   `json:"spans"`
		Histograms map[string]struct {
			Count int64   `json:"count"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			P50   float64 `json:"p50"`
			P99   float64 `json:"p99"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if len(doc.Counters) == 0 {
		return fmt.Errorf("no counters")
	}
	if len(doc.Spans) == 0 {
		return fmt.Errorf("no span aggregates")
	}
	if len(doc.Histograms) == 0 {
		return fmt.Errorf("no histograms")
	}
	for _, name := range required {
		if v, ok := doc.Counters[name]; !ok {
			return fmt.Errorf("required counter %s missing", name)
		} else if v <= 0 {
			return fmt.Errorf("required counter %s is %d, want > 0", name, v)
		}
	}
	for name, h := range doc.Histograms {
		if h.Count <= 0 {
			return fmt.Errorf("histogram %s has count %d", name, h.Count)
		}
		if h.Min > h.P50 || h.P50 > h.P99 || h.P99 > h.Max {
			return fmt.Errorf("histogram %s quantiles out of order: min=%g p50=%g p99=%g max=%g",
				name, h.Min, h.P50, h.P99, h.Max)
		}
	}
	return nil
}

// checkEvents validates the flight-recorder dump: the all-time seen count
// covers the recorded slice, and the events are named and in strictly
// increasing sequence order.
func checkEvents(data []byte) error {
	var doc struct {
		Seen   int64 `json:"seen"`
		Events []struct {
			Seq  int64  `json:"seq"`
			Name string `json:"name"`
		} `json:"events"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Seen < int64(len(doc.Events)) {
		return fmt.Errorf("seen %d < %d recorded events", doc.Seen, len(doc.Events))
	}
	for i, ev := range doc.Events {
		if ev.Name == "" {
			return fmt.Errorf("events[%d] missing name", i)
		}
		if i > 0 && ev.Seq <= doc.Events[i-1].Seq {
			return fmt.Errorf("events[%d] seq %d not after %d", i, ev.Seq, doc.Events[i-1].Seq)
		}
	}
	return nil
}
