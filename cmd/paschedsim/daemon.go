package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"resched/internal/online"
	"resched/internal/serve"
)

// replayDaemon replays the trace against a running paschedd through the
// session API instead of an in-process engine: open a session with the same
// engine parameters, stream the jobs over /session/submit in arrival order,
// and finalize with /session/close. The daemon owns the engine, so the
// observability artefacts (online.* counters) land in ITS metrics flush —
// which is exactly what the serving smoke validates with obscheck.
func replayDaemon(addr string, tc online.TraceConfig, cfg online.Config) error {
	tr, err := online.GenTrace(tc)
	if err != nil {
		return err
	}
	base := "http://" + addr

	var opened serve.SessionOpenResponse
	if err := post(base+"/session/open", serve.SessionOpenRequest{
		Solver:           cfg.Solver,
		Seed:             cfg.Seed,
		Workers:          cfg.Workers,
		MaxIterations:    cfg.MaxIterations,
		ModuleReuse:      cfg.ModuleReuse,
		DisablePrefetch:  cfg.DisablePrefetch,
		EpochNodes:       cfg.EpochNodes,
		PolishIterations: cfg.PolishIterations,
	}, &opened); err != nil {
		return fmt.Errorf("session open: %w", err)
	}
	fmt.Printf("session %s on %s (solver %s, arch %s)\n", opened.Session, addr, opened.Solver, opened.Arch)

	for _, job := range tr.Jobs {
		var buf bytes.Buffer
		if err := job.Graph.Write(&buf); err != nil {
			return err
		}
		var resp serve.SessionSubmitResponse
		if err := post(base+"/session/submit", serve.SessionSubmitRequest{
			Session:  opened.Session,
			Name:     job.Name,
			Graph:    json.RawMessage(buf.Bytes()),
			Arrival:  job.Arrival,
			Deadline: job.Deadline,
		}, &resp); err != nil {
			return fmt.Errorf("submit %s: %w", job.Name, err)
		}
		fmt.Printf("  %-8s arrival %6d -> %d epochs, commit %d, makespan %d\n",
			job.Name, job.Arrival, resp.Epochs, resp.Commit, resp.Makespan)
	}

	var closed serve.SessionCloseResponse
	if err := post(base+"/session/close", serve.SessionCloseRequest{Session: opened.Session}, &closed); err != nil {
		return fmt.Errorf("session close: %w", err)
	}
	if len(closed.Epochs) == 0 || closed.Makespan <= 0 {
		return fmt.Errorf("session closed with no plan: %d epochs, makespan %d", len(closed.Epochs), closed.Makespan)
	}
	fmt.Printf("session closed: %d epochs, stitched makespan %d, %d deadline misses\n",
		len(closed.Epochs), closed.Makespan, len(closed.MissedDeadlines))
	return nil
}

// post sends one JSON request and decodes the JSON reply, surfacing non-200
// responses as errors carrying the body.
func post(url string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		return err
	}
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, r.Status, strings.TrimSpace(buf.String()))
	}
	return json.Unmarshal(buf.Bytes(), resp)
}

// daemonAddr resolves the -daemon / -daemon-addr-file flags.
func daemonAddr(addr, addrFile string) (string, error) {
	if addr != "" {
		return addr, nil
	}
	b, err := os.ReadFile(addrFile)
	if err != nil {
		return "", err
	}
	return strings.TrimSpace(string(b)), nil
}
