// Command paschedsim replays a seeded arrival trace through the
// rolling-horizon online engine (internal/online) and verifies the stitched
// result end to end: every epoch re-plans the tail from the committed
// prefix, the final schedule must pass schedule.Check, and an event-driven
// replay (internal/sim) must execute it under the arrival floors without
// beating the plan.
//
// Usage:
//
//	paschedsim [-seed 1] [-jobs 6] [-tasks 12] [-mean-gap 2000] [-comm-max 0]
//	           [-deadline-slack 0] [-arch zedboard|microzed|zc706]
//	           [-solver pa|par|is1|is5|robust] [-workers 1] [-iterations 8]
//	           [-module-reuse] [-no-prefetch] [-compare] [-epoch-nodes 0]
//	           [-polish 0] [-clairvoyant] [-fault-late-arrival N]
//	           [-fault-late-delay 1000] [-json]
//	           [-trace t.json] [-metrics m.json] [-events e.json]
//
// -compare runs the same trace twice — prefetching on and off — and reports
// how much reconfiguration stall the early issue times hid. -clairvoyant
// additionally solves the whole trace offline with every arrival known in
// advance, pricing the engine's lack of foresight. The -fault-late-arrival
// flag arms the deterministic late-arrival fault so deadline misses and
// re-plan churn are reproducible. Equal flags produce bit-identical traces,
// epoch sequences and schedules.
//
// With -daemon (or -daemon-addr-file, reading a paschedd -addr-file), the
// same trace is instead replayed against a running daemon through its
// session API (POST /session/open, /session/submit, /session/close) — the
// serving smoke uses this to exercise session mode end to end.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"resched/internal/arch"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/online"
	"resched/internal/schedule"
	"resched/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paschedsim:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 1, "trace and solver seed")
	jobs := flag.Int("jobs", 6, "arriving jobs in the trace")
	tasks := flag.Int("tasks", 12, "tasks per job")
	meanGap := flag.Int64("mean-gap", 2000, "mean inter-arrival gap (ticks)")
	commMax := flag.Int64("comm-max", 0, "max edge communication time (0 = none)")
	deadlineSlack := flag.Float64("deadline-slack", 0, "deadline = arrival + slack * critical path (0 = no deadlines)")
	archName := flag.String("arch", "zedboard", "board preset")
	solver := flag.String("solver", "pa", "epoch re-plan solver")
	workers := flag.Int("workers", 1, "in-solver parallelism")
	iterations := flag.Int("iterations", 8, "randomized-solver iteration cap per epoch")
	moduleReuse := flag.Bool("module-reuse", false, "enable module-reuse semantics")
	noPrefetch := flag.Bool("no-prefetch", false, "retime every epoch to the issue-at-dispatch baseline")
	compare := flag.Bool("compare", false, "run with and without prefetching and report the stall delta")
	epochNodes := flag.Int64("epoch-nodes", 0, "per-epoch search-node budget (0 = unbounded)")
	polish := flag.Int("polish", 0, "PA-R polish iterations on finalize (0 = off)")
	clairvoyant := flag.Bool("clairvoyant", false, "also solve offline with all arrivals known")
	faultLate := flag.Int("fault-late-arrival", 0, "delay the next N submissions (-1 = all)")
	faultDelay := flag.Int64("fault-late-delay", 1000, "late-arrival delay (ticks)")
	jsonOut := flag.Bool("json", false, "emit the run summary as JSON")
	daemon := flag.String("daemon", "", "replay against a running paschedd at this address (session API)")
	daemonFile := flag.String("daemon-addr-file", "", "read the daemon address from this file (paschedd -addr-file)")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON here")
	metricsPath := flag.String("metrics", "", "write metrics JSON here")
	eventsPath := flag.String("events", "", "write flight-recorder JSON here")
	flag.Parse()

	a, err := arch.Preset(*archName)
	if err != nil {
		return err
	}
	trace := obs.New()
	var faults *faultinject.Set
	if *faultLate != 0 {
		faults = faultinject.New()
		faults.SetTrace(trace)
		faults.ForceLateArrival(*faultLate, *faultDelay)
	}
	tc := online.TraceConfig{
		Jobs:          *jobs,
		TasksPerJob:   *tasks,
		Seed:          *seed,
		MeanGap:       *meanGap,
		CommMax:       *commMax,
		DeadlineSlack: *deadlineSlack,
	}
	cfg := online.Config{
		Arch:             a,
		Solver:           *solver,
		Workers:          *workers,
		Seed:             *seed,
		MaxIterations:    *iterations,
		ModuleReuse:      *moduleReuse,
		DisablePrefetch:  *noPrefetch,
		EpochNodes:       *epochNodes,
		PolishIterations: *polish,
		Clairvoyant:      *clairvoyant,
		Faults:           faults,
		Trace:            trace,
	}

	if *daemon != "" || *daemonFile != "" {
		addr, err := daemonAddr(*daemon, *daemonFile)
		if err != nil {
			return err
		}
		return replayDaemon(addr, tc, cfg)
	}

	res, err := replay(tc, cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		if err := writeSummary(os.Stdout, tc, cfg, res); err != nil {
			return err
		}
	} else {
		printRun(res, *solver)
	}

	if *compare {
		alt := cfg
		alt.DisablePrefetch = !cfg.DisablePrefetch
		alt.Faults = nil // the armed counts were consumed by the first run
		altRes, err := replay(tc, alt)
		if err != nil {
			return err
		}
		with, without := res, altRes
		if cfg.DisablePrefetch {
			with, without = altRes, res
		}
		fmt.Printf("\nprefetch comparison (seed %d):\n", *seed)
		fmt.Printf("  with prefetch:    makespan %6d  stall %6d  (issued %d, hits %d, misses %d)\n",
			with.Schedule.Makespan, totalStall(with), totalIssued(with), totalHits(with), totalMisses(with))
		fmt.Printf("  issue-at-dispatch: makespan %6d  stall %6d\n",
			without.Schedule.Makespan, totalStall(without))
		fmt.Printf("  stall hidden by prefetching: %d ticks\n", totalStall(without)-totalStall(with))
	}

	return writeObservability(trace, *tracePath, *metricsPath, *eventsPath)
}

// replay generates the trace, runs the engine over it, and verifies the
// stitched schedule: structural validity (schedule.Check ran inside the
// engine at every epoch) plus an event-driven execution under the arrival
// floors that must meet the planned makespan.
func replay(tc online.TraceConfig, cfg online.Config) (*online.Result, error) {
	tr, err := online.GenTrace(tc)
	if err != nil {
		return nil, err
	}
	eng, err := online.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.SubmitTrace(tr); err != nil {
		return nil, err
	}
	res, err := eng.Finalize()
	if err != nil {
		return nil, err
	}
	if res.Schedule == nil {
		return nil, fmt.Errorf("empty trace produced no schedule")
	}
	if errs := schedule.Check(res.Schedule); len(errs) > 0 {
		return nil, fmt.Errorf("stitched schedule invalid: %v", errs[0])
	}
	exec, err := sim.ExecuteFrom(res.Schedule, res.Release)
	if err != nil {
		return nil, fmt.Errorf("replay: %w", err)
	}
	if exec.Makespan > res.Schedule.Makespan {
		return nil, fmt.Errorf("replay makespan %d exceeds plan %d", exec.Makespan, res.Schedule.Makespan)
	}
	return res, nil
}

func printRun(res *online.Result, solver string) {
	fmt.Printf("online run: %d jobs, %d epochs, solver %s\n", len(res.Jobs), len(res.Epochs), solver)
	fmt.Printf("%8s %7s %7s %6s %9s %7s %6s %6s %9s\n",
		"commit", "new", "frozen", "tail", "makespan", "issued", "hits", "miss", "replan")
	for _, ep := range res.Epochs {
		deg := ""
		if ep.Degraded {
			deg = "  (degraded)"
		}
		fmt.Printf("%8d %7d %7d %6d %9d %7d %6d %6d %9s%s\n",
			ep.Commit, ep.NewJobs, ep.FrozenTasks, ep.TailTasks, ep.Makespan,
			ep.PrefetchIssued, ep.PrefetchHits, ep.PrefetchMisses, ep.ReplanTime.Round(10_000), deg)
	}
	fmt.Printf("stitched makespan %d, stall %d (hidden %d)\n",
		res.Schedule.Makespan, totalStall(res), totalHidden(res))
	for j, end := range res.JobEnds {
		late := ""
		if d := res.Jobs[j].Deadline; d > 0 && end > d {
			late = fmt.Sprintf("  MISSED deadline %d", d)
		}
		fmt.Printf("  %-12s arrival %6d  end %6d%s\n", res.Jobs[j].Name, res.Jobs[j].Arrival, end, late)
	}
	if res.LateArrivals > 0 {
		fmt.Printf("late arrivals (fault-injected): %d\n", res.LateArrivals)
	}
	if res.PolishImproved {
		fmt.Println("final polish pass improved the last epoch")
	}
	if res.ClairvoyantMakespan > 0 {
		fmt.Printf("clairvoyant makespan %d, online gap %d\n", res.ClairvoyantMakespan, res.ClairvoyantGap)
	}
}

func totalStall(r *online.Result) (n int64) {
	for _, ep := range r.Epochs {
		n += ep.Stall
	}
	return
}

func totalHidden(r *online.Result) (n int64) {
	for _, ep := range r.Epochs {
		n += ep.StallHidden
	}
	return
}

func totalIssued(r *online.Result) (n int) {
	for _, ep := range r.Epochs {
		n += ep.PrefetchIssued
	}
	return
}

func totalHits(r *online.Result) (n int) {
	for _, ep := range r.Epochs {
		n += ep.PrefetchHits
	}
	return
}

func totalMisses(r *online.Result) (n int) {
	for _, ep := range r.Epochs {
		n += ep.PrefetchMisses
	}
	return
}

// summary is the -json document: config echo plus the deterministic run
// outcome (replan wall-clock is deliberately excluded).
type summary struct {
	Seed            int64   `json:"seed"`
	Jobs            int     `json:"jobs"`
	Epochs          int     `json:"epochs"`
	Solver          string  `json:"solver"`
	Makespan        int64   `json:"makespan"`
	Stall           int64   `json:"stall"`
	StallHidden     int64   `json:"stall_hidden"`
	PrefetchIssued  int     `json:"prefetch_issued"`
	PrefetchHits    int     `json:"prefetch_hits"`
	PrefetchMisses  int     `json:"prefetch_misses"`
	JobEnds         []int64 `json:"job_ends"`
	MissedDeadlines []int   `json:"missed_deadlines,omitempty"`
	LateArrivals    int     `json:"late_arrivals,omitempty"`
	Clairvoyant     int64   `json:"clairvoyant_makespan,omitempty"`
	ClairvoyantGap  int64   `json:"clairvoyant_gap,omitempty"`
}

func writeSummary(w io.Writer, tc online.TraceConfig, cfg online.Config, res *online.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(summary{
		Seed:            tc.Seed,
		Jobs:            len(res.Jobs),
		Epochs:          len(res.Epochs),
		Solver:          cfg.Solver,
		Makespan:        res.Schedule.Makespan,
		Stall:           totalStall(res),
		StallHidden:     totalHidden(res),
		PrefetchIssued:  totalIssued(res),
		PrefetchHits:    totalHits(res),
		PrefetchMisses:  totalMisses(res),
		JobEnds:         res.JobEnds,
		MissedDeadlines: res.MissedDeadlines,
		LateArrivals:    res.LateArrivals,
		Clairvoyant:     res.ClairvoyantMakespan,
		ClairvoyantGap:  res.ClairvoyantGap,
	})
}

// writeObservability flushes the obs artefacts, mirroring cmd/pasched and
// cmd/paschedd so cmd/obscheck validates online runs the same way.
func writeObservability(trace *obs.Trace, tracePath, metricsPath, eventsPath string) error {
	writeFile := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			_ = f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeFile(tracePath, trace.WriteChromeTrace); err != nil {
		return err
	}
	if err := writeFile(metricsPath, trace.WriteMetricsJSON); err != nil {
		return err
	}
	return writeFile(eventsPath, trace.WriteEventsJSON)
}
