// Command paschedload is the deterministic load generator for paschedd: it
// fires seeded benchgen task graphs at a running daemon from a pool of
// concurrent clients, retries load-shed responses with capped exponential
// backoff plus seeded jitter, and reports client-side throughput and
// latency quantiles in the cmd/benchjson document format (committed as
// BENCH_serve.json by `make serve-bench`).
//
// Usage:
//
//	paschedload -url http://127.0.0.1:8080 [-n 200] [-c 8] [-rate 0]
//	            [-solver robust] [-arch ""] [-tasks 24] [-graphs 4]
//	            [-seed 1] [-timeout-ms 0] [-max-retries 8]
//	            [-backoff 5ms] [-backoff-cap 250ms] [-o BENCH_serve.json]
//
// Retry policy: 429 and 503 (the daemon's explicit load-shed and drain
// answers) and transport errors are retried up to -max-retries times with
// backoff min(backoff<<attempt, cap) plus jitter drawn from a per-worker
// PRNG seeded with -seed, so a given flag set replays the same retry
// schedule. The daemon's Retry-After hint is honoured when it exceeds the
// computed backoff. Any other non-200 answer (400, 422, 500, 504) is a
// terminal outcome counted per class; the command exits non-zero only when
// a request dies on the retry cap or an unexpected status, which makes a
// clean exit the "zero crashes, nothing dropped" check of the robustness
// acceptance run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/benchgen"
)

// outcome classes tallied across the run.
const (
	outOK        = iota
	outShed      // 429/503 answers that were retried
	outTerminal  // 4xx/5xx answers that end a request (422, 500, 504, ...)
	outExhausted // retry budget ran out
	outTransport // connection-level failures that were retried
	numOutcomes
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paschedload:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "daemon base URL")
	addrFile := flag.String("addr-file", "", "read the daemon address from this file (overrides -url)")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	rate := flag.Float64("rate", 0, "target request rate per second across all clients (0 = unlimited)")
	solver := flag.String("solver", "robust", "solver name to request")
	archName := flag.String("arch", "", "board preset to request (empty = daemon default)")
	tasks := flag.Int("tasks", 24, "tasks per generated graph")
	graphs := flag.Int("graphs", 4, "distinct seeded graphs cycled through")
	seed := flag.Int64("seed", 1, "seed for graph generation and retry jitter")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request budget sent to the daemon (0 = server clamp)")
	maxRetries := flag.Int("max-retries", 8, "retry cap per request for shed/transport failures")
	backoff := flag.Duration("backoff", 5*time.Millisecond, "base retry backoff")
	backoffCap := flag.Duration("backoff-cap", 250*time.Millisecond, "retry backoff ceiling")
	out := flag.String("o", "", "write the benchjson report here (default stdout)")
	flag.Parse()

	base := *url
	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			return err
		}
		base = "http://" + string(bytes.TrimSpace(b))
	}

	bodies, err := requestBodies(*graphs, *tasks, *seed, *solver, *archName, *timeoutMS)
	if err != nil {
		return err
	}

	var (
		next     atomic.Int64 // global request ticket
		counts   [numOutcomes]atomic.Int64
		retries  atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration // successful-request latencies incl. retries
		firstErr error
	)
	interval := time.Duration(0)
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker PRNG: jitter is deterministic given (-seed, -c).
			rng := rand.New(rand.NewSource(*seed + int64(worker)*7919))
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					return
				}
				if interval > 0 {
					time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
				}
				lat, err := fire(client, base, bodies[int(i)%len(bodies)], rng,
					*maxRetries, *backoff, *backoffCap, &counts, &retries)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := report(*solver, *c, *n, elapsed, lats, &counts, retries.Load())
	if err := writeDoc(doc, *out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"paschedload: %d ok, %d terminal, %d shed-retried, %d retry-exhausted in %v\n",
		counts[outOK].Load(), counts[outTerminal].Load(),
		counts[outShed].Load(), counts[outExhausted].Load(), elapsed.Round(time.Millisecond))
	if firstErr != nil {
		return firstErr
	}
	return nil
}

// requestBodies pre-encodes the POST bodies: -graphs distinct seeded
// benchgen graphs wrapped in the serve wire schema, cycled by the workers.
func requestBodies(graphs, tasks int, seed int64, solver, archName string, timeoutMS int64) ([][]byte, error) {
	if graphs < 1 {
		graphs = 1
	}
	bodies := make([][]byte, 0, graphs)
	for i := 0; i < graphs; i++ {
		g, err := benchgen.Generate(benchgen.Config{Tasks: tasks, Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		var gbuf bytes.Buffer
		if err := g.Write(&gbuf); err != nil {
			return nil, err
		}
		req := map[string]any{"solver": solver, "graph": json.RawMessage(gbuf.Bytes())}
		if archName != "" {
			req["arch"] = archName
		}
		if timeoutMS > 0 {
			req["timeout_ms"] = timeoutMS
		}
		body, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies = append(bodies, body)
	}
	return bodies, nil
}

// fire runs one logical request to completion: POST, classify, retry shed
// and transport failures under the backoff policy. The returned latency
// spans all attempts — it is the latency a real client would observe.
func fire(client *http.Client, base string, body []byte, rng *rand.Rand,
	maxRetries int, backoff, cap time.Duration,
	counts *[numOutcomes]atomic.Int64, retries *atomic.Int64) (time.Duration, error) {
	begin := time.Now()
	for attempt := 0; ; attempt++ {
		status, retryAfterMS, err := post(client, base+"/solve", body)
		switch {
		case err != nil:
			counts[outTransport].Add(1)
		case status == http.StatusOK:
			counts[outOK].Add(1)
			return time.Since(begin), nil
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			counts[outShed].Add(1)
		default:
			// 400/422/500/504: a definitive answer about this request;
			// retrying cannot change it. Terminal but not a client error.
			counts[outTerminal].Add(1)
			return 0, fmt.Errorf("terminal status %d", status)
		}
		if attempt >= maxRetries {
			counts[outExhausted].Add(1)
			return 0, fmt.Errorf("retries exhausted after %d attempts (last status %d, err %v)",
				attempt+1, status, err)
		}
		retries.Add(1)
		d := backoff << attempt
		if d > cap {
			d = cap
		}
		// Deterministic jitter in [0, backoff) decorrelates the herd.
		d += time.Duration(rng.Int63n(int64(backoff)))
		if ra := time.Duration(retryAfterMS) * time.Millisecond; ra > d {
			d = ra
		}
		time.Sleep(d)
	}
}

// post sends one attempt and extracts (status, retry_after_ms hint).
func post(client *http.Client, url string, body []byte) (status int, retryAfterMS int64, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	var parsed struct {
		RetryAfterMS int64 `json:"retry_after_ms"`
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil {
		_ = json.Unmarshal(raw, &parsed) // best-effort hint; absence is fine
	}
	return resp.StatusCode, parsed.RetryAfterMS, nil
}

// benchjson mirrors of cmd/benchjson's Doc layout (kept in sync by
// TestServeLoadReportShape there).
type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// report assembles the benchjson document: one benchmark named after the
// run shape, mean latency as ns/op, quantiles and throughput as extras.
func report(solver string, c, n int, elapsed time.Duration, lats []time.Duration,
	counts *[numOutcomes]atomic.Int64, retries int64) doc {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds())
	}
	var mean float64
	for _, l := range lats {
		mean += float64(l.Nanoseconds())
	}
	if len(lats) > 0 {
		mean /= float64(len(lats))
	}
	rps := float64(len(lats)) / elapsed.Seconds()
	return doc{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Pkg:    "resched/cmd/paschedload",
		Benchmarks: []benchmark{{
			Name:       fmt.Sprintf("ServeLoad/%s/c=%d", solver, c),
			Iterations: int64(len(lats)),
			NsPerOp:    mean,
			Extra: map[string]float64{
				"p50_ns":          quantile(0.50),
				"p99_ns":          quantile(0.99),
				"req_per_sec":     rps,
				"requests":        float64(n),
				"retries":         float64(retries),
				"shed_responses":  float64(counts[outShed].Load()),
				"terminal_errors": float64(counts[outTerminal].Load()),
			},
		}},
	}
}

func writeDoc(d doc, path string) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
