// Command paschedload is the deterministic load generator for paschedd: it
// fires seeded benchgen task graphs at a running daemon from a pool of
// concurrent clients, retries load-shed responses with capped exponential
// backoff plus seeded jitter, and reports client-side throughput and
// latency quantiles in the cmd/benchjson document format (committed as
// BENCH_serve.json by `make serve-bench`).
//
// Usage:
//
//	paschedload -url http://127.0.0.1:8080 [-n 200] [-c 8] [-rate 0]
//	            [-solver robust] [-arch ""] [-tasks 24] [-graphs 4]
//	            [-seed 1] [-timeout-ms 0] [-max-retries 8]
//	            [-backoff 5ms] [-backoff-cap 250ms] [-o BENCH_serve.json]
//	            [-repeat-frac 0] [-perturb-frac 0]
//
// Cache exercise: -repeat-frac re-sends one of the base bodies verbatim
// (the daemon's schedule cache answers with an exact hit), -perturb-frac
// sends a near-miss — one implementation time of one task bumped by a few
// ticks — which the cache warm-starts. Both draws come from a PRNG seeded
// with -seed, and the first -graphs tickets always send the base bodies in
// order (priming), so a given flag set replays the same request sequence
// and the reported cache hit ratio is reproducible.
//
// Retry policy: 429 and 503 (the daemon's explicit load-shed and drain
// answers) and transport errors are retried up to -max-retries times with
// backoff min(backoff<<attempt, cap) plus jitter drawn from a per-worker
// PRNG seeded with -seed, so a given flag set replays the same retry
// schedule. The daemon's Retry-After hint is honoured when it exceeds the
// computed backoff. Any other non-200 answer (400, 422, 500, 504) is a
// terminal outcome counted per class; the command exits non-zero only when
// a request dies on the retry cap or an unexpected status, which makes a
// clean exit the "zero crashes, nothing dropped" check of the robustness
// acceptance run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/benchgen"
	"resched/internal/taskgraph"
)

// outcome classes tallied across the run.
const (
	outOK        = iota
	outShed      // 429/503 answers that were retried
	outTerminal  // 4xx/5xx answers that end a request (422, 500, 504, ...)
	outExhausted // retry budget ran out
	outTransport // connection-level failures that were retried
	numOutcomes
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paschedload:", err)
		os.Exit(1)
	}
}

func run() error {
	url := flag.String("url", "http://127.0.0.1:8080", "daemon base URL")
	addrFile := flag.String("addr-file", "", "read the daemon address from this file (overrides -url)")
	n := flag.Int("n", 200, "total requests")
	c := flag.Int("c", 8, "concurrent clients")
	rate := flag.Float64("rate", 0, "target request rate per second across all clients (0 = unlimited)")
	solver := flag.String("solver", "robust", "solver name to request")
	archName := flag.String("arch", "", "board preset to request (empty = daemon default)")
	tasks := flag.Int("tasks", 24, "tasks per generated graph")
	graphs := flag.Int("graphs", 4, "distinct seeded graphs cycled through")
	seed := flag.Int64("seed", 1, "seed for graph generation and retry jitter")
	timeoutMS := flag.Int64("timeout-ms", 0, "per-request budget sent to the daemon (0 = server clamp)")
	maxRetries := flag.Int("max-retries", 8, "retry cap per request for shed/transport failures")
	backoff := flag.Duration("backoff", 5*time.Millisecond, "base retry backoff")
	backoffCap := flag.Duration("backoff-cap", 250*time.Millisecond, "retry backoff ceiling")
	repeatFrac := flag.Float64("repeat-frac", 0, "fraction of requests re-sending a base body verbatim (exact cache hits)")
	perturbFrac := flag.Float64("perturb-frac", 0, "fraction of requests sending a near-miss perturbation (cache warm starts)")
	out := flag.String("o", "", "write the benchjson report here (default stdout)")
	flag.Parse()

	base := *url
	if *addrFile != "" {
		b, err := os.ReadFile(*addrFile)
		if err != nil {
			return err
		}
		base = "http://" + string(bytes.TrimSpace(b))
	}

	bases, baseGraphs, err := requestBodies(*graphs, *tasks, *seed, *solver, *archName, *timeoutMS)
	if err != nil {
		return err
	}
	bodies, err := bodySequence(bases, baseGraphs, *n, *seed, *repeatFrac, *perturbFrac,
		*solver, *archName, *timeoutMS)
	if err != nil {
		return err
	}

	var (
		next     atomic.Int64 // global request ticket
		counts   [numOutcomes]atomic.Int64
		cache    cacheTally
		retries  atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration // successful-request latencies incl. retries
		firstErr error
	)
	interval := time.Duration(0)
	if *rate > 0 {
		interval = time.Duration(float64(time.Second) / *rate)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < *c; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Per-worker PRNG: jitter is deterministic given (-seed, -c).
			rng := rand.New(rand.NewSource(*seed + int64(worker)*7919))
			for {
				i := next.Add(1) - 1
				if i >= int64(*n) {
					return
				}
				if interval > 0 {
					time.Sleep(time.Until(start.Add(time.Duration(i) * interval)))
				}
				lat, err := fire(client, base, bodies[int(i)], rng,
					*maxRetries, *backoff, *backoffCap, &counts, &cache, &retries)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("request %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	doc := report(*solver, *c, *n, elapsed, lats, &counts, &cache, retries.Load())
	if err := writeDoc(doc, *out); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"paschedload: %d ok, %d terminal, %d shed-retried, %d retry-exhausted in %v\n",
		counts[outOK].Load(), counts[outTerminal].Load(),
		counts[outShed].Load(), counts[outExhausted].Load(), elapsed.Round(time.Millisecond))
	if firstErr != nil {
		return firstErr
	}
	return nil
}

// requestBodies pre-encodes the base POST bodies: -graphs distinct seeded
// benchgen graphs wrapped in the serve wire schema. The graphs themselves
// come back too so the perturbation path can derive near-misses without
// re-parsing JSON.
func requestBodies(graphs, tasks int, seed int64, solver, archName string, timeoutMS int64) ([][]byte, []*taskgraph.Graph, error) {
	if graphs < 1 {
		graphs = 1
	}
	bodies := make([][]byte, 0, graphs)
	gs := make([]*taskgraph.Graph, 0, graphs)
	for i := 0; i < graphs; i++ {
		g, err := benchgen.Generate(benchgen.Config{Tasks: tasks, Seed: seed + int64(i)})
		if err != nil {
			return nil, nil, err
		}
		body, err := wrapBody(g, solver, archName, timeoutMS)
		if err != nil {
			return nil, nil, err
		}
		bodies = append(bodies, body)
		gs = append(gs, g)
	}
	return bodies, gs, nil
}

// wrapBody encodes one graph in the serve wire schema.
func wrapBody(g *taskgraph.Graph, solver, archName string, timeoutMS int64) ([]byte, error) {
	var gbuf bytes.Buffer
	if err := g.Write(&gbuf); err != nil {
		return nil, err
	}
	req := map[string]any{"solver": solver, "graph": json.RawMessage(gbuf.Bytes())}
	if archName != "" {
		req["arch"] = archName
	}
	if timeoutMS > 0 {
		req["timeout_ms"] = timeoutMS
	}
	return json.Marshal(req)
}

// bodySequence precomputes the body for every request ticket so the mix of
// repeats, perturbations and base cycling is a pure function of the flags:
// the first len(bases) tickets send the bases in order (priming the
// daemon's cache), then each ticket draws once from a dedicated PRNG —
// repeat a random base verbatim, send a near-miss perturbation of one, or
// fall back to plain base cycling.
func bodySequence(bases [][]byte, baseGraphs []*taskgraph.Graph, n int, seed int64,
	repeatFrac, perturbFrac float64, solver, archName string, timeoutMS int64) ([][]byte, error) {
	if repeatFrac < 0 || perturbFrac < 0 || repeatFrac+perturbFrac > 1 {
		return nil, fmt.Errorf("repeat-frac %v / perturb-frac %v: need non-negative fractions summing to at most 1",
			repeatFrac, perturbFrac)
	}
	// The sequence generator is decoupled from the graph/jitter seeds so
	// adding the mix flags never changes the base graphs themselves.
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	seq := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i < len(bases) {
			seq[i] = bases[i]
			continue
		}
		switch r := rng.Float64(); {
		case r < repeatFrac:
			seq[i] = bases[rng.Intn(len(bases))]
		case r < repeatFrac+perturbFrac:
			body, err := perturbBody(baseGraphs[rng.Intn(len(baseGraphs))], rng,
				solver, archName, timeoutMS)
			if err != nil {
				return nil, err
			}
			seq[i] = body
		default:
			seq[i] = bases[i%len(bases)]
		}
	}
	return seq, nil
}

// perturbBody derives a near-miss from a base graph: one implementation
// time of one task bumped by 1–3 ticks — exactly the delta-2 signature
// perturbation the schedule cache's similarity probe accepts.
func perturbBody(g *taskgraph.Graph, rng *rand.Rand, solver, archName string, timeoutMS int64) ([]byte, error) {
	p := g.Clone()
	t := rng.Intn(len(p.Tasks))
	im := rng.Intn(len(p.Tasks[t].Impls))
	p.Tasks[t].Impls[im].Time += 1 + rng.Int63n(3)
	return wrapBody(p, solver, archName, timeoutMS)
}

// cacheTally counts the daemon's per-response cache verdicts.
type cacheTally struct {
	hits, warm, miss atomic.Int64
}

func (c *cacheTally) note(verdict string) {
	switch verdict {
	case "hit":
		c.hits.Add(1)
	case "warm":
		c.warm.Add(1)
	case "miss":
		c.miss.Add(1)
	}
}

// fire runs one logical request to completion: POST, classify, retry shed
// and transport failures under the backoff policy. The returned latency
// spans all attempts — it is the latency a real client would observe.
func fire(client *http.Client, base string, body []byte, rng *rand.Rand,
	maxRetries int, backoff, cap time.Duration,
	counts *[numOutcomes]atomic.Int64, cache *cacheTally, retries *atomic.Int64) (time.Duration, error) {
	begin := time.Now()
	for attempt := 0; ; attempt++ {
		status, retryAfterMS, verdict, err := post(client, base+"/solve", body)
		switch {
		case err != nil:
			counts[outTransport].Add(1)
		case status == http.StatusOK:
			counts[outOK].Add(1)
			cache.note(verdict)
			return time.Since(begin), nil
		case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
			counts[outShed].Add(1)
		default:
			// 400/422/500/504: a definitive answer about this request;
			// retrying cannot change it. Terminal but not a client error.
			counts[outTerminal].Add(1)
			return 0, fmt.Errorf("terminal status %d", status)
		}
		if attempt >= maxRetries {
			counts[outExhausted].Add(1)
			return 0, fmt.Errorf("retries exhausted after %d attempts (last status %d, err %v)",
				attempt+1, status, err)
		}
		retries.Add(1)
		d := backoff << attempt
		if d > cap {
			d = cap
		}
		// Deterministic jitter in [0, backoff) decorrelates the herd.
		d += time.Duration(rng.Int63n(int64(backoff)))
		if ra := time.Duration(retryAfterMS) * time.Millisecond; ra > d {
			d = ra
		}
		time.Sleep(d)
	}
}

// post sends one attempt and extracts (status, retry_after_ms hint, cache
// verdict).
func post(client *http.Client, url string, body []byte) (status int, retryAfterMS int64, cacheVerdict string, err error) {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, 0, "", err
	}
	defer func() { _ = resp.Body.Close() }()
	var parsed struct {
		RetryAfterMS int64  `json:"retry_after_ms"`
		Cache        string `json:"cache"`
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil {
		_ = json.Unmarshal(raw, &parsed) // best-effort hints; absence is fine
	}
	return resp.StatusCode, parsed.RetryAfterMS, parsed.Cache, nil
}

// benchjson mirrors of cmd/benchjson's Doc layout (kept in sync by
// TestServeLoadReportShape there).
type benchmark struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

type doc struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

// report assembles the benchjson document: one benchmark named after the
// run shape, mean latency as ns/op, quantiles and throughput as extras.
func report(solver string, c, n int, elapsed time.Duration, lats []time.Duration,
	counts *[numOutcomes]atomic.Int64, cache *cacheTally, retries int64) doc {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	quantile := func(q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(q * float64(len(lats)-1))
		return float64(lats[i].Nanoseconds())
	}
	var mean float64
	for _, l := range lats {
		mean += float64(l.Nanoseconds())
	}
	if len(lats) > 0 {
		// Whole nanoseconds, matching cmd/benchjson's rounding: the mean's
		// fractional tail is below timer resolution and churns diffs.
		mean = math.Round(mean / float64(len(lats)))
	}
	rps := float64(len(lats)) / elapsed.Seconds()
	hitRatio := 0.0
	if ok := counts[outOK].Load(); ok > 0 {
		hitRatio = float64(cache.hits.Load()) / float64(ok)
	}
	return doc{
		Goos:   runtime.GOOS,
		Goarch: runtime.GOARCH,
		Pkg:    "resched/cmd/paschedload",
		Benchmarks: []benchmark{{
			Name:       fmt.Sprintf("ServeLoad/%s/c=%d", solver, c),
			Iterations: int64(len(lats)),
			NsPerOp:    mean,
			Extra: map[string]float64{
				"p50_ns":            quantile(0.50),
				"p99_ns":            quantile(0.99),
				"req_per_sec":       rps,
				"requests":          float64(n),
				"retries":           float64(retries),
				"shed_responses":    float64(counts[outShed].Load()),
				"terminal_errors":   float64(counts[outTerminal].Load()),
				"cache_hits":        float64(cache.hits.Load()),
				"cache_warm_starts": float64(cache.warm.Load()),
				"cache_misses":      float64(cache.miss.Load()),
				"cache_hit_ratio":   hitRatio,
			},
		}},
	}
}

func writeDoc(d doc, path string) error {
	w := io.Writer(os.Stdout)
	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
