// Command reschedvet runs the repository's custom static-analysis suite
// (internal/analyze) over the module. The v1 analyzers machine-check the
// determinism invariants syntactically — maporder, globalrand, floateq,
// sortstable, errdrop, rawclock, seedshare, solvecheck — and the v2
// analyzers check flow-sensitive resource invariants on per-function
// control-flow graphs (internal/analyze/cfg): spanleak, budgetloop,
// lostcancel, goleak and arenaescape.
//
// Usage:
//
//	reschedvet [-analyzers maporder,floateq] [-list] [-json] [-workers N] [packages]
//
// The package arguments accept ./... (the whole module, the default) or
// directory paths to restrict the report. Findings are printed one per line
// as "file:line: analyzer: message", or as a machine-readable JSON report
// with -json; packages are analyzed in parallel (-workers caps the worker
// count, 0 means GOMAXPROCS) and the report is byte-identical for any
// worker count. The exit status is 1 when violations are found, 2 on usage
// or load errors. A finding is suppressed by a line comment
// `//reschedvet:ignore <analyzer>` on the flagged line or the line directly
// above it.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"resched/internal/analyze"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the analyzers and exit")
		names   = flag.String("analyzers", "", "comma-separated subset of analyzers to run (default all)")
		jsonOut = flag.Bool("json", false, "emit a machine-readable JSON report on stdout")
		workers = flag.Int("workers", 0, "package-analysis workers (0 means GOMAXPROCS)")
	)
	flag.Parse()

	if *list {
		for _, a := range analyze.All() {
			fmt.Printf("%-12s %-8s %s\n", a.Name, severityOf(a), a.Doc)
		}
		return
	}

	analyzers := analyze.All()
	if *names != "" {
		var err error
		analyzers, err = analyze.ByName(*names)
		if err != nil {
			fatal(err)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	pkgs, err := analyze.LoadModule(root)
	if err != nil {
		fatal(err)
	}
	if pkgs, err = restrict(pkgs, root, flag.Args()); err != nil {
		fatal(err)
	}

	findings := analyze.RunParallel(pkgs, analyzers, *workers)
	if *jsonOut {
		rep := analyze.BuildReport(root, analyzers, findings)
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "reschedvet: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}

// severityOf renders the analyzer's effective severity for -list.
func severityOf(a *analyze.Analyzer) analyze.Severity {
	if a.Severity == "" {
		return analyze.SevError
	}
	return a.Severity
}

// restrict filters the loaded packages down to the requested patterns:
// "./..." (or no arguments) keeps everything, "./dir/..." keeps a subtree,
// and a plain path keeps one package directory.
func restrict(pkgs []*analyze.Package, root string, args []string) ([]*analyze.Package, error) {
	if len(args) == 0 {
		return pkgs, nil
	}
	var out []*analyze.Package
	seen := map[string]bool{}
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return pkgs, nil
		}
		rec := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			arg, rec = rest, true
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range pkgs {
			if p.Dir == abs || rec && strings.HasPrefix(p.Dir, abs+string(filepath.Separator)) {
				if !seen[p.Dir] {
					seen[p.Dir] = true
					out = append(out, p)
				}
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("no packages match %q under %s", arg, root)
		}
	}
	return out, nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reschedvet:", err)
	os.Exit(2)
}
