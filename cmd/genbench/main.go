// Command genbench emits the §VII-A synthetic benchmark suite (100
// pseudo-random task graphs: 10 groups × 10 graphs, 10–100 tasks) as JSON
// files, one per instance.
//
// Usage:
//
//	genbench [-seed 2016] [-out suite/] [-single N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"resched/internal/benchgen"
)

func main() {
	var (
		seed   = flag.Int64("seed", 2016, "suite seed")
		outDir = flag.String("out", "suite", "output directory")
		single = flag.Int("single", 0, "generate a single N-task graph to stdout instead of the suite")
	)
	flag.Parse()

	if *single > 0 {
		g, err := benchgen.Generate(benchgen.Config{Tasks: *single, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		if err := g.Write(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	suite, err := benchgen.Suite(*seed)
	if err != nil {
		fatal(err)
	}
	for _, e := range suite {
		name := filepath.Join(*outDir, fmt.Sprintf("tg_n%03d_%02d.json", e.Group, e.Index))
		f, err := os.Create(name)
		if err != nil {
			fatal(err)
		}
		if err := e.Graph.Write(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %d task graphs to %s\n", len(suite), *outDir)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genbench:", err)
	os.Exit(1)
}
