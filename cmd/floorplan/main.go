// Command floorplan places a set of reconfigurable regions on the ZedBoard
// fabric and renders the result as an ASCII map of the device.
//
// Regions are given as comma-separated CLB:BRAM:DSP triples, e.g.
//
//	floorplan -regions 800:0:20,400:10:0,1200:0:0 [-method milp]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"resched/internal/arch"
	"resched/internal/floorplan"
	"resched/internal/resources"
)

func main() {
	var (
		regionsArg = flag.String("regions", "", "comma-separated CLB:BRAM:DSP region requirements (required)")
		method     = flag.String("method", "backtracking", "placement engine: backtracking or milp")
		svgPath    = flag.String("svg", "", "write the floorplan as SVG")
	)
	flag.Parse()
	if *regionsArg == "" {
		flag.Usage()
		os.Exit(2)
	}
	var regions []resources.Vector
	for _, spec := range strings.Split(*regionsArg, ",") {
		var clb, bram, dsp int
		if _, err := fmt.Sscanf(strings.TrimSpace(spec), "%d:%d:%d", &clb, &bram, &dsp); err != nil {
			fatal(fmt.Errorf("bad region spec %q: %v", spec, err))
		}
		regions = append(regions, resources.Vec(clb, bram, dsp))
	}

	opts := floorplan.Options{}
	switch *method {
	case "backtracking":
		opts.Method = floorplan.Backtracking
	case "milp":
		opts.Method = floorplan.MILP
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	a := arch.ZedBoard()
	fmt.Printf("fabric: %s (capacity %v)\n", a.Fabric, a.Fabric.Capacity())
	res, err := floorplan.Solve(a.Fabric, regions, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("feasible=%v proven=%v nodes=%d elapsed=%v\n", res.Feasible, res.Proven, res.Nodes, res.Elapsed)
	if !res.Feasible {
		os.Exit(1)
	}
	if err := floorplan.Verify(a.Fabric, regions, res.Placements); err != nil {
		fatal(err)
	}
	for i, p := range res.Placements {
		fmt.Printf("  region %d: %v → %v\n", i, regions[i], p)
	}
	printMap(a, res.Placements)
	if *svgPath != "" {
		sf, err := os.Create(*svgPath)
		if err != nil {
			fatal(err)
		}
		if err := floorplan.WriteSVG(sf, a.Fabric, regions, res.Placements); err != nil {
			fatal(err)
		}
		if err := sf.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgPath)
	}
}

// printMap draws the fabric with one character column per fabric column and
// one line per clock-region row.
func printMap(a *arch.Architecture, placements []floorplan.Placement) {
	f := a.Fabric
	glyph := func(i int) byte {
		return "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"[i%62]
	}
	fmt.Println()
	for y := 0; y < f.Rows; y++ {
		line := make([]byte, f.Width())
		for x := range line {
			switch f.Columns[x] {
			case resources.BRAM:
				line[x] = 'b'
			case resources.DSP:
				line[x] = 'd'
			default:
				line[x] = '.'
			}
		}
		for i, p := range placements {
			if y < p.Y0 || y >= p.Y1 {
				continue
			}
			for x := p.X0; x < p.X1; x++ {
				line[x] = glyph(i)
			}
		}
		fmt.Printf("row %d |%s|\n", y, line)
	}
	fmt.Println("legend: . CLB column, b BRAM column, d DSP column, digits/letters = placed regions")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "floorplan:", err)
	os.Exit(1)
}
