package repro

import (
	"testing"

	"resched/internal/analyze"
)

// TestReschedvetClean is the tier-1 wiring of the static-analysis suite: it
// parses and type-checks the whole module and fails on any violation of the
// determinism and correctness invariants (see internal/analyze). This keeps
// `go test ./...` red while a nondeterministic map iteration, a use of the
// global rand source, an exact float comparison, an unstable single-key
// sort, or a dropped I/O error exists anywhere in shipped code — and, with
// the flow-sensitive v2 analyzers (internal/analyze/cfg), while any path
// leaks an obs span, spins a solver loop without polling its budget,
// forgets a WithTimeout child's Cancel, leaves a library goroutine
// unjoined, or lets scratch-arena memory escape into a Result. All()
// returns the full suite, so newly added analyzers gate automatically.
func TestReschedvetClean(t *testing.T) {
	pkgs, err := analyze.LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	findings := analyze.Run(pkgs, analyze.All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("run `go run ./cmd/reschedvet ./...` for the same report; suppress a finding with //reschedvet:ignore <analyzer> and a reason")
	}
}
