package repro

import (
	"testing"

	"resched/internal/benchgen"
	"resched/internal/taskgraph"
)

// genGraph generates a benchmark graph or fails the test; the generator no
// longer panics on construction errors.
func genGraph(tb testing.TB, cfg benchgen.Config) *taskgraph.Graph {
	tb.Helper()
	g, err := benchgen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}
