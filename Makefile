# Pre-PR verification gate. `make verify` must pass before any change is
# merged: formatting, go vet, build, the full test suite under the race
# detector, and the repository's own static-analysis suite (reschedvet),
# which enforces the scheduler determinism invariants documented in README.md.

GO ?= go

.PHONY: verify fmt-check vet build test race reschedvet solvecheck bench bench-all benchcmp fuzz obs-smoke serve-smoke serve-bench online-smoke

verify: fmt-check vet build race reschedvet solvecheck
	@echo "verify: all gates passed"

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

reschedvet:
	$(GO) run ./cmd/reschedvet ./...

# solvecheck re-runs just the solver-dispatch analyzer as its own gate: no
# package outside the solve adapters may assemble cross-cutting option
# structs for more than one algorithm (drivers go through solve.Get).
solvecheck:
	$(GO) run ./cmd/reschedvet -analyzers solvecheck ./...

# fuzz runs each native fuzz target for a short budget (override with
# FUZZTIME=5s for a CI smoke). The checked-in seed corpora under
# testdata/fuzz also execute during the plain test suite, so regressions on
# known inputs are caught without this target.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzLoadGraphJSON -fuzztime $(FUZZTIME) ./internal/taskgraph
	$(GO) test -run '^$$' -fuzz FuzzCheckSchedule -fuzztime $(FUZZTIME) ./internal/schedule

# bench runs the Table I suite (plus the PA-R worker-scaling benchmarks and
# the nil-trace overhead guard) and records it as structured JSON, the file
# successive PRs diff to track scheduler performance over time.
BENCH_RE = BenchmarkTable1|BenchmarkPAR|BenchmarkPAParallelInstances|BenchmarkNilTrace|BenchmarkCache|BenchmarkOnline
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem . | $(GO) run ./cmd/benchjson -o BENCH_table1.json

# benchcmp is the regression gate: re-run the bench suite into a scratch
# file and compare it against the committed baseline. Any benchmark more
# than 15% worse on ns/op or allocs/op fails the target (tune with
# THRESHOLD=...). Run it before a PR; refresh the baseline with `make
# bench` when a regression is intentional and explained in the PR.
THRESHOLD ?= 15
benchcmp:
	$(GO) test -run '^$$' -bench '$(BENCH_RE)' -benchmem . | $(GO) run ./cmd/benchjson -o /tmp/BENCH_new.json
	$(GO) run ./cmd/benchjson -compare -threshold $(THRESHOLD) BENCH_table1.json /tmp/BENCH_new.json

bench-all:
	$(GO) test -bench=. -benchmem

# obs-smoke exercises the full observability export surface end-to-end:
# one traced pasched run writing all three artefacts, then a sanity pass
# over them (valid JSON, the expected top-level keys, a non-empty trace).
# Artefacts land in OBS_SMOKE_DIR (default obs-smoke/, gitignored) so CI
# can upload them.
OBS_SMOKE_DIR ?= obs-smoke
obs-smoke:
	mkdir -p $(OBS_SMOKE_DIR)
	$(GO) run ./cmd/pasched -graph examples/graphs/tg60.json -algo par \
		-budget 0 -iterations 25 -workers 1 -seed 1 \
		-trace $(OBS_SMOKE_DIR)/trace.json \
		-metrics $(OBS_SMOKE_DIR)/metrics.json \
		-events $(OBS_SMOKE_DIR)/events.json > $(OBS_SMOKE_DIR)/schedule.txt
	$(GO) run ./cmd/obscheck $(OBS_SMOKE_DIR)/trace.json $(OBS_SMOKE_DIR)/metrics.json $(OBS_SMOKE_DIR)/events.json
	@echo "obs-smoke: artefacts in $(OBS_SMOKE_DIR)/"

# serve-smoke exercises the serving tier end-to-end: paschedd with a
# deterministic fault profile, the seeded load generator against it, a
# SIGTERM graceful drain, and obscheck over the flushed artefacts (see
# scripts/serve_smoke.sh). Artefacts land in SERVE_SMOKE_DIR (default
# serve-smoke/, gitignored) so CI can upload them.
SERVE_SMOKE_DIR ?= serve-smoke
serve-smoke:
	SERVE_SMOKE_DIR=$(SERVE_SMOKE_DIR) GO=$(GO) sh scripts/serve_smoke.sh

# online-smoke exercises the rolling-horizon engine end-to-end: a seeded
# arrival trace replayed through cmd/paschedsim with the prefetch-vs-baseline
# comparison, the stitched schedule verified (Check + sim replay inside the
# tool), and the flushed artefacts validated by obscheck, which requires the
# online.epochs and online.prefetch_hits counters to be live. The daemon's
# session mode is exercised by serve-smoke (paschedsim -daemon-addr-file).
ONLINE_SMOKE_DIR ?= online-smoke
online-smoke:
	mkdir -p $(ONLINE_SMOKE_DIR)
	$(GO) run ./cmd/paschedsim -seed 3 -jobs 4 -tasks 8 -mean-gap 800 -comm-max 30 \
		-compare -fault-late-arrival 1 -fault-late-delay 1500 \
		-trace $(ONLINE_SMOKE_DIR)/trace.json \
		-metrics $(ONLINE_SMOKE_DIR)/metrics.json \
		-events $(ONLINE_SMOKE_DIR)/events.json > $(ONLINE_SMOKE_DIR)/run.txt
	$(GO) run ./cmd/obscheck -require-counters online.epochs,online.prefetch_hits \
		$(ONLINE_SMOKE_DIR)/trace.json $(ONLINE_SMOKE_DIR)/metrics.json $(ONLINE_SMOKE_DIR)/events.json
	@echo "online-smoke: artefacts in $(ONLINE_SMOKE_DIR)/"

# serve-bench refreshes the committed serving-throughput baseline: the same
# smoke pipeline but with the full request count, writing BENCH_serve.json
# at the repo root for cross-PR diffing.
serve-bench:
	SERVE_SMOKE_DIR=$(SERVE_SMOKE_DIR) GO=$(GO) LOAD_N=120 LOAD_C=6 \
		BENCH_OUT=BENCH_serve.json sh scripts/serve_smoke.sh
