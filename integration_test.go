package repro

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/floorplan"
	"resched/internal/isk"
	"resched/internal/resources"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/sim"
)

// TestEndToEndAllSchedulers is the repository-wide integration test: over a
// spread of instance sizes, shapes, communication settings and device
// presets, every scheduler must produce a schedule that
//
//  1. passes the independent checker,
//  2. executes on the discrete-event simulator without deadlock and no
//     later than its static makespan,
//  3. has floorplan-verified region placements (when floorplanned), and
//  4. survives a JSON round trip bit-exactly.
func TestEndToEndAllSchedulers(t *testing.T) {
	type platform struct {
		name string
		a    *arch.Architecture
	}
	platforms := []platform{
		{"zedboard", arch.ZedBoard()},
		{"microzed", arch.MicroZed7010()},
	}
	dual := arch.ZedBoard()
	dual.Reconfigurators = 2
	platforms = append(platforms, platform{"zedboard-2icap", dual})

	configs := []benchgen.Config{
		{Tasks: 12, Seed: 41},
		{Tasks: 30, Seed: 42, CommMax: 200},
		{Tasks: 45, Seed: 43, Layers: 20},
		{Tasks: 45, Seed: 44, Layers: 5},
	}
	for _, pl := range platforms {
		for _, cfg := range configs {
			g := genGraph(t, cfg)
			name := fmt.Sprintf("%s/n%d-s%d", pl.name, cfg.Tasks, cfg.Seed)
			t.Run(name, func(t *testing.T) {
				type run struct {
					sch        *schedule.Schedule
					placements []floorplan.Placement
				}
				var runs []run

				pa, paStats, err := sched.Schedule(g, pl.a, sched.Options{})
				if err != nil {
					t.Fatalf("PA: %v", err)
				}
				runs = append(runs, run{pa, paStats.Placements})

				par, _, err := sched.RSchedule(g, pl.a, sched.RandomOptions{MaxIterations: 6, Seed: cfg.Seed})
				if err != nil {
					t.Fatalf("PA-R: %v", err)
				}
				runs = append(runs, run{par, nil})

				is1, is1Stats, err := isk.Schedule(g, pl.a, isk.Options{K: 1, ModuleReuse: true})
				if err != nil {
					t.Fatalf("IS-1: %v", err)
				}
				runs = append(runs, run{is1, is1Stats.Placements})

				is5, _, err := isk.Schedule(g, pl.a, isk.Options{K: 5, ModuleReuse: true, Prefetch: true, SkipFloorplan: true})
				if err != nil {
					t.Fatalf("IS-5: %v", err)
				}
				runs = append(runs, run{is5, nil})

				for _, r := range runs {
					sch := r.sch
					if errs := schedule.Check(sch); len(errs) > 0 {
						t.Fatalf("%s: invalid schedule: %v", sch.Algorithm, errs[0])
					}
					ex, err := sim.Execute(sch)
					if err != nil {
						t.Fatalf("%s: simulation: %v", sch.Algorithm, err)
					}
					if ex.Makespan > sch.Makespan {
						t.Fatalf("%s: executed %d > scheduled %d", sch.Algorithm, ex.Makespan, sch.Makespan)
					}
					var buf bytes.Buffer
					if err := sch.WriteJSON(&buf); err != nil {
						t.Fatalf("%s: encode: %v", sch.Algorithm, err)
					}
					back, err := schedule.ReadJSON(&buf, g, pl.a)
					if err != nil {
						t.Fatalf("%s: decode: %v", sch.Algorithm, err)
					}
					if back.Makespan != sch.Makespan {
						t.Fatalf("%s: round trip changed makespan", sch.Algorithm)
					}
				}
				// Floorplan placements verify against the fabric.
				for _, r := range runs {
					if r.placements == nil {
						continue
					}
					regionRes := make([]resources.Vector, len(r.sch.Regions))
					for i, reg := range r.sch.Regions {
						regionRes[i] = reg.Res
					}
					if err := floorplan.Verify(pl.a.Fabric, regionRes, r.placements); err != nil {
						t.Fatalf("%s: floorplan: %v", r.sch.Algorithm, err)
					}
				}
			})
		}
	}
}

// TestBudgetedSearchImproves verifies the anytime property end to end: on a
// contended instance, a longer PA-R budget never yields a worse result.
func TestBudgetedSearchImproves(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 4040})
	a := arch.ZedBoard()
	short, _, err := sched.RSchedule(g, a, sched.RandomOptions{MaxIterations: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	long, _, err := sched.RSchedule(g, a, sched.RandomOptions{MaxIterations: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if long.Makespan > short.Makespan {
		t.Errorf("longer search worse: %d vs %d", long.Makespan, short.Makespan)
	}
}

// TestTimeBudgetRoughlyHonoured checks PA-R's wall-clock budget handling at
// the integration level.
func TestTimeBudgetRoughlyHonoured(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 50, Seed: 51})
	a := arch.ZedBoard()
	start := time.Now()
	_, stats, err := sched.RSchedule(g, a, sched.RandomOptions{TimeBudget: 150 * time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 3*time.Second {
		t.Errorf("budget of 150ms ran for %v", elapsed)
	}
	if stats.Iterations == 0 {
		t.Error("no iterations within the budget")
	}
}
