// Schedule-cache benchmarks, wired into the benchcmp regression gate
// alongside the Table I suite. BenchmarkCacheHit is the headline number of
// the content-addressed cache: serving a repeated instance from the cache
// must cost orders of magnitude less than re-running PA on it
// (BenchmarkTable1PA is the fresh-solve baseline at the same task counts).
// BenchmarkCacheKey prices the admission overhead a cache miss adds to
// every solve, and BenchmarkCacheWarmStartPAR measures the point of the
// warm-start path: a PA-R search seeded with a cached incumbent reaches the
// cached quality without re-discovering it.
package repro

import (
	"fmt"
	"testing"

	"resched/internal/arch"
	"resched/internal/schedcache"
	"resched/internal/solve"
)

// getSolver fetches a registered solver or fails the benchmark.
func getSolver(tb testing.TB, name string) solve.Solver {
	tb.Helper()
	s, err := solve.Get(name)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// BenchmarkCacheHit measures an exact cache hit across the Table I task
// counts: one primed solve, then every iteration is answered from the
// cache in O(hash) — compare against BenchmarkTable1PA at the same
// tasks=N to see the speedup.
func BenchmarkCacheHit(b *testing.B) {
	a := arch.ZedBoard()
	for _, n := range benchGroups {
		e := instance(b, n, 0)
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			cached := schedcache.Wrap(getSolver(b, "pa"), schedcache.New(64))
			if _, err := cached.Solve(&solve.Request{Graph: e.Graph, Arch: a}); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A fresh Request each iteration: the timed path covers key
				// canonicalization, lookup and the defensive result clone.
				res, err := cached.Solve(&solve.Request{Graph: e.Graph, Arch: a})
				if err != nil {
					b.Fatal(err)
				}
				if res.Cache != "hit" {
					b.Fatalf("cache = %q, want hit", res.Cache)
				}
			}
		})
	}
}

// BenchmarkCacheKey prices the canonical key computation alone — the
// fixed overhead a cache miss adds on top of the fresh solve.
func BenchmarkCacheKey(b *testing.B) {
	a := arch.ZedBoard()
	for _, n := range benchGroups {
		req := &solve.Request{Graph: instance(b, n, 0).Graph, Arch: a}
		b.Run(fmt.Sprintf("tasks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if k := schedcache.Key(req, "pa"); k == "" {
					b.Fatal("empty key")
				}
			}
		})
	}
}

// itersToQuality counts the PA-R iterations a search needed to first
// reach (or beat) the target makespan. A warm start whose incumbent
// already meets the target needs zero; a search that never got there
// reports the cap.
func itersToQuality(initial int64, res *solve.Result, target int64, cap int) int {
	if initial > 0 && initial <= target {
		return 0
	}
	if res.Search != nil {
		for _, p := range res.Search.History {
			if p.Makespan <= target {
				return p.Iteration
			}
		}
	}
	return cap
}

// BenchmarkCacheWarmStartPAR contrasts a cold PA-R search against one
// warm-started from a cached result of the same instance: both run a
// different seed than the reference, and the iters_to_cached_quality
// metric reports how many iterations each needed to reach the cached
// reference quality (the warm run starts there — zero).
func BenchmarkCacheWarmStartPAR(b *testing.B) {
	const iters = 24
	e := instance(b, 60, 0)
	a := arch.ZedBoard()
	ref, err := getSolver(b, "par").Solve(&solve.Request{
		Graph: e.Graph, Arch: a,
		Options: solve.Options{Seed: 1, Workers: 1, MaxIterations: iters},
	})
	if err != nil {
		b.Fatal(err)
	}
	target := ref.Makespan

	b.Run("cold", func(b *testing.B) {
		reached := iters
		for i := 0; i < b.N; i++ {
			res, err := getSolver(b, "par").Solve(&solve.Request{
				Graph: e.Graph, Arch: a,
				Options: solve.Options{Seed: 2, Workers: 1, MaxIterations: iters},
			})
			if err != nil {
				b.Fatal(err)
			}
			reached = itersToQuality(0, res, target, iters)
		}
		b.ReportMetric(float64(reached), "iters_to_cached_quality")
	})
	b.Run("warm", func(b *testing.B) {
		reached := iters
		for i := 0; i < b.N; i++ {
			res, err := getSolver(b, "par").Solve(&solve.Request{
				Graph: e.Graph, Arch: a,
				Options: solve.Options{
					Seed: 2, Workers: 1, MaxIterations: iters,
					InitialIncumbent: ref.Schedule.Clone(),
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res.Makespan > target {
				b.Fatalf("warm result %d worse than incumbent %d", res.Makespan, target)
			}
			reached = itersToQuality(target, res, target, iters)
		}
		b.ReportMetric(float64(reached), "iters_to_cached_quality")
	})
}
