package cpm

import (
	"testing"

	"resched/internal/taskgraph"
)

// mustEdge adds a dependency or fails the test; the library itself no longer
// panics on construction errors.
func mustEdge(tb testing.TB, g *taskgraph.Graph, from, to int) {
	tb.Helper()
	if err := g.AddEdge(from, to); err != nil {
		tb.Fatal(err)
	}
}
