package cpm

import (
	"math/rand"
	"testing"

	"resched/internal/taskgraph"
)

// chainGraph builds t0 → t1 → … → t(n-1).
func chain(n int) (succ, pred [][]int) {
	succ = make([][]int, n)
	pred = make([][]int, n)
	for i := 0; i < n-1; i++ {
		succ[i] = []int{i + 1}
		pred[i+1] = []int{i}
	}
	return
}

func TestChain(t *testing.T) {
	succ, pred := chain(3)
	r, err := Compute(3, succ, pred, []int64{5, 7, 2}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 14 {
		t.Errorf("Makespan = %d, want 14", r.Makespan)
	}
	wantEST := []int64{0, 5, 12}
	wantLFT := []int64{5, 12, 14}
	for i := range wantEST {
		if r.EST[i] != wantEST[i] || r.LFT[i] != wantLFT[i] {
			t.Errorf("task %d window [%d,%d], want [%d,%d]", i, r.EST[i], r.LFT[i], wantEST[i], wantLFT[i])
		}
		if !r.Critical(i) {
			t.Errorf("task %d on a chain must be critical", i)
		}
	}
	if got := r.CriticalTasks(); len(got) != 3 {
		t.Errorf("CriticalTasks = %v", got)
	}
}

func TestDiamondSlack(t *testing.T) {
	// 0 → {1 (long), 2 (short)} → 3. Task 2 has slack, others critical.
	succ := [][]int{{1, 2}, {3}, {3}, nil}
	pred := [][]int{nil, {0}, {0}, {1, 2}}
	r, err := Compute(4, succ, pred, []int64{1, 10, 4, 1}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 12 {
		t.Fatalf("Makespan = %d, want 12", r.Makespan)
	}
	if !r.Critical(0) || !r.Critical(1) || !r.Critical(3) {
		t.Error("critical tasks misidentified")
	}
	if r.Critical(2) {
		t.Error("task 2 should have slack")
	}
	if got := r.Slack(2); got != 6 {
		t.Errorf("Slack(2) = %d, want 6", got)
	}
	tmin, tmax := r.Window(2)
	if tmin != 1 || tmax != 11 {
		t.Errorf("Window(2) = [%d,%d], want [1,11]", tmin, tmax)
	}
}

func TestRelease(t *testing.T) {
	succ, pred := chain(2)
	r, err := Compute(2, succ, pred, []int64{3, 3}, []int64{10, 0}, -1)
	if err != nil {
		t.Fatal(err)
	}
	if r.EST[0] != 10 || r.EST[1] != 13 || r.Makespan != 16 {
		t.Errorf("release ignored: EST=%v makespan=%d", r.EST, r.Makespan)
	}
}

func TestDeadlineExtendsWindows(t *testing.T) {
	succ, pred := chain(2)
	r, err := Compute(2, succ, pred, []int64{3, 3}, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.LFT[1] != 20 || r.LFT[0] != 17 {
		t.Errorf("deadline windows wrong: LFT=%v", r.LFT)
	}
	if r.Critical(0) || r.Critical(1) {
		t.Error("slack induced by a loose deadline should clear criticality")
	}
	// Makespan reflects actual path length, not the deadline.
	if r.Makespan != 6 {
		t.Errorf("Makespan = %d, want 6", r.Makespan)
	}
}

func TestErrors(t *testing.T) {
	succ, pred := chain(2)
	if _, err := Compute(2, succ, pred, []int64{1}, nil, -1); err == nil {
		t.Error("duration length mismatch accepted")
	}
	if _, err := Compute(2, succ, pred, []int64{1, -1}, nil, -1); err == nil {
		t.Error("negative duration accepted")
	}
	if _, err := Compute(2, succ, pred, []int64{1, 1}, []int64{0}, -1); err == nil {
		t.Error("release length mismatch accepted")
	}
	cyc := [][]int{{1}, {0}}
	if _, err := Compute(2, cyc, nil, []int64{1, 1}, nil, -1); err == nil {
		t.Error("cycle accepted")
	}
}

// Property tests on random DAGs: fundamental CPM invariants.
func TestRandomDAGInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(30)
		succ := make([][]int, n)
		pred := make([][]int, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.2 {
					succ[i] = append(succ[i], j)
					pred[j] = append(pred[j], i)
				}
			}
		}
		dur := make([]int64, n)
		for i := range dur {
			dur[i] = int64(1 + rng.Intn(100))
		}
		r, err := Compute(n, succ, pred, dur, nil, -1)
		if err != nil {
			t.Fatal(err)
		}
		anyCritical := false
		for v := 0; v < n; v++ {
			// Window sanity: EST + dur ≤ LFT ≤ makespan.
			if r.EST[v]+dur[v] > r.LFT[v] {
				t.Fatalf("trial %d: task %d window inverted [%d,%d] dur %d", trial, v, r.EST[v], r.LFT[v], dur[v])
			}
			if r.LFT[v] > r.Makespan {
				t.Fatalf("trial %d: LFT beyond makespan", trial)
			}
			// Precedence: windows of dependent tasks are compatible.
			for _, w := range succ[v] {
				if r.EST[v]+dur[v] > r.EST[w] {
					t.Fatalf("trial %d: EST precedence violated %d→%d", trial, v, w)
				}
				if r.LFT[v] > r.LFT[w]-dur[w] {
					t.Fatalf("trial %d: LFT precedence violated %d→%d", trial, v, w)
				}
			}
			if r.Critical(v) {
				anyCritical = true
			}
		}
		if !anyCritical {
			t.Fatalf("trial %d: no critical task", trial)
		}
		// The critical tasks must include a source starting at 0 and a task
		// finishing exactly at the makespan.
		foundStart, foundEnd := false, false
		for _, v := range r.CriticalTasks() {
			if r.EST[v] == 0 {
				foundStart = true
			}
			if r.EST[v]+dur[v] == r.Makespan {
				foundEnd = true
			}
		}
		if !foundStart || !foundEnd {
			t.Fatalf("trial %d: critical path endpoints missing", trial)
		}
	}
}

func TestComputeGraph(t *testing.T) {
	g := taskgraph.New("g")
	sw := taskgraph.Implementation{Name: "s", Kind: taskgraph.SW, Time: 1}
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw)
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	r, err := ComputeGraph(g, []int64{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 9 {
		t.Errorf("Makespan = %d, want 9", r.Makespan)
	}
}

func TestComputeEdgesComm(t *testing.T) {
	// Chain with communication: 0 →(10)→ 1 →(20)→ 2, durations 5 each.
	succ, pred := chain(3)
	comm := func(u, v int) int64 {
		switch {
		case u == 0 && v == 1:
			return 10
		case u == 1 && v == 2:
			return 20
		}
		return 0
	}
	r, err := ComputeEdges(3, succ, pred, []int64{5, 5, 5}, nil, -1, comm)
	if err != nil {
		t.Fatal(err)
	}
	wantEST := []int64{0, 15, 40}
	for i, want := range wantEST {
		if r.EST[i] != want {
			t.Errorf("EST[%d] = %d, want %d", i, r.EST[i], want)
		}
	}
	if r.Makespan != 45 {
		t.Errorf("Makespan = %d, want 45", r.Makespan)
	}
	// Backward pass subtracts communication too: every chain task stays
	// critical.
	for i := 0; i < 3; i++ {
		if !r.Critical(i) {
			t.Errorf("task %d should be critical", i)
		}
	}
}

func TestComputeEdgesNilComm(t *testing.T) {
	succ, pred := chain(2)
	a, err := Compute(2, succ, pred, []int64{3, 4}, nil, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeEdges(2, succ, pred, []int64{3, 4}, nil, -1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.EST[1] != b.EST[1] {
		t.Error("nil comm function changed the result")
	}
}

func TestComputeEdgesCommSlack(t *testing.T) {
	// Diamond where one branch pays communication: the free branch gains
	// slack.
	succ := [][]int{{1, 2}, {3}, {3}, nil}
	pred := [][]int{nil, {0}, {0}, {1, 2}}
	comm := func(u, v int) int64 {
		if u == 1 && v == 3 {
			return 100
		}
		return 0
	}
	r, err := ComputeEdges(4, succ, pred, []int64{1, 10, 10, 1}, nil, -1, comm)
	if err != nil {
		t.Fatal(err)
	}
	// Path through 1: 1 + 10 + 100 + 1 = 112; through 2: 22.
	if r.Makespan != 112 {
		t.Fatalf("Makespan = %d, want 112", r.Makespan)
	}
	if r.Critical(2) {
		t.Error("cheap branch should have slack")
	}
	if !r.Critical(1) {
		t.Error("comm-heavy branch should be critical")
	}
	// Task 2 may finish as late as lst(3) = 111 (its edge carries no
	// communication), so slack = 111 − 1 − 10.
	if got := r.Slack(2); got != 100 {
		t.Errorf("Slack(2) = %d, want 100", got)
	}
}
