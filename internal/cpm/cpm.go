// Package cpm implements the Critical Path Method used by the scheduler's
// critical-path-extraction phase (§V-B of the paper). Given a DAG and per-
// node durations it computes, for every task t, the time window
// w_t = [T_MIN_t, T_MAX_t]: T_MIN is the earliest instant at which t can
// start, T_MAX the latest instant by which t must have completed without
// delaying the overall schedule. Tasks with zero slack form the critical
// path.
package cpm

import (
	"fmt"

	"resched/internal/taskgraph"
)

// Result holds the outcome of a CPM pass.
type Result struct {
	// Order is the topological order used for the passes.
	Order []int
	// EST[t] is T_MIN_t, the earliest start time of task t.
	EST []int64
	// LFT[t] is T_MAX_t, the latest finish time of task t that does not
	// extend the makespan (or the deadline when one was imposed).
	LFT []int64
	// Dur[t] is the duration used for task t.
	Dur []int64
	// Makespan is the length of the longest path (the critical path).
	Makespan int64
}

// Slack returns LFT[t] - EST[t] - Dur[t], the scheduling freedom of task t.
func (r *Result) Slack(t int) int64 { return r.LFT[t] - r.EST[t] - r.Dur[t] }

// Critical reports whether task t lies on a critical path (zero slack).
func (r *Result) Critical(t int) bool { return r.Slack(t) == 0 }

// CriticalTasks returns the IDs of all zero-slack tasks in topological
// order.
func (r *Result) CriticalTasks() []int {
	var out []int
	for _, t := range r.Order {
		if r.Critical(t) {
			out = append(out, t)
		}
	}
	return out
}

// Window returns w_t = [T_MIN_t, T_MAX_t].
func (r *Result) Window(t int) (tmin, tmax int64) { return r.EST[t], r.LFT[t] }

// Compute runs CPM over a DAG given as adjacency lists. pred may be nil.
// release optionally fixes a floor on each task's earliest start (use nil
// for all-zero); deadline imposes the latest finish for every sink — pass a
// negative deadline to use the computed makespan (the classic CPM backward
// pass).
func Compute(n int, succ, pred [][]int, dur []int64, release []int64, deadline int64) (*Result, error) {
	return ComputeEdges(n, succ, pred, dur, release, deadline, nil)
}

// ComputeEdges is Compute with per-edge communication delays: comm(u, v)
// ticks must elapse between u's end and v's start (nil means all-zero).
func ComputeEdges(n int, succ, pred [][]int, dur []int64, release []int64, deadline int64, comm func(u, v int) int64) (*Result, error) {
	var ws Workspace
	est, lft, makespan, err := ws.ComputeEdges(n, succ, pred, dur, release, deadline, comm)
	if err != nil {
		return nil, err
	}
	return &Result{
		Order:    append([]int(nil), ws.order...),
		EST:      est,
		LFT:      lft,
		Dur:      append([]int64(nil), dur...),
		Makespan: makespan,
	}, nil
}

// Workspace holds the working buffers of repeated CPM passes over graphs of
// (roughly) the same size, so the scheduler's hot re-timing loop — one pass
// after every sequencing edge or release change — stops reallocating the
// topological order and the timing arrays on every call. The zero value is
// ready to use; buffers grow to the largest n seen. Not safe for concurrent
// use — give each worker its own workspace.
type Workspace struct {
	topo     taskgraph.TopoScratch
	order    []int
	est, lft []int64
}

// ComputeEdges runs the same forward/backward passes as the package-level
// ComputeEdges but reuses the workspace buffers. The returned est and lft
// slices alias the workspace and are valid until the next call.
func (ws *Workspace) ComputeEdges(n int, succ, pred [][]int, dur []int64, release []int64, deadline int64, comm func(u, v int) int64) (est, lft []int64, makespan int64, err error) {
	if len(dur) != n {
		return nil, nil, 0, fmt.Errorf("cpm: %d durations for %d tasks", len(dur), n)
	}
	for t, d := range dur {
		if d < 0 {
			return nil, nil, 0, fmt.Errorf("cpm: task %d has negative duration %d", t, d)
		}
	}
	order, err := ws.topo.OrderAdj(n, succ, pred)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("cpm: %w", err)
	}
	ws.order = order
	if cap(ws.est) < n {
		ws.est = make([]int64, n)
		ws.lft = make([]int64, n)
	}
	est, lft = ws.est[:n], ws.lft[:n]
	// Forward pass: EST[t] = max(release[t], max_{p∈pred} EST[p]+dur[p]).
	if release != nil {
		if len(release) != n {
			return nil, nil, 0, fmt.Errorf("cpm: %d release times for %d tasks", len(release), n)
		}
		copy(est, release)
	} else {
		for i := range est {
			est[i] = 0
		}
	}
	for _, v := range order {
		for _, w := range succ[v] {
			f := est[v] + dur[v]
			if comm != nil {
				f += comm(v, w)
			}
			if f > est[w] {
				est[w] = f
			}
		}
		if f := est[v] + dur[v]; f > makespan {
			makespan = f
		}
	}
	// Backward pass: LFT[t] = min_{s∈succ} (LFT[s]-dur[s]); sinks get the
	// deadline.
	horizon := deadline
	if horizon < 0 {
		horizon = makespan
	}
	for i := range lft {
		lft[i] = horizon
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range succ[v] {
			lst := lft[w] - dur[w]
			if comm != nil {
				lst -= comm(v, w)
			}
			if lst < lft[v] {
				lft[v] = lst
			}
		}
	}
	return est, lft, makespan, nil
}

// ComputeGraph is a convenience wrapper running CPM directly over a task
// graph with the given per-task durations.
func ComputeGraph(g *taskgraph.Graph, dur []int64) (*Result, error) {
	succ := make([][]int, g.N())
	pred := make([][]int, g.N())
	for t := 0; t < g.N(); t++ {
		succ[t] = g.Succ(t)
		pred[t] = g.Pred(t)
	}
	return Compute(g.N(), succ, pred, dur, nil, -1)
}
