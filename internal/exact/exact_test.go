package exact

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/resources"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func sw(name string, t int64) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.SW, Time: t}
}

func hw(name string, t int64, clb int) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.HW, Time: t, Res: resources.Vec(clb, 0, 0)}
}

func TestRejectsLargeInstances(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 1})
	if _, _, err := Schedule(g, arch.ZedBoard(), Options{}); err == nil {
		t.Fatal("20-task instance accepted")
	}
}

func TestHandComputedOptimum(t *testing.T) {
	// Two independent tasks, device fits both regions: the optimum runs
	// them in parallel in hardware.
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1200, 0, 0),
	}
	g := taskgraph.New("g")
	g.AddTask("a", sw("a_sw", 900), hw("a_hw", 100, 600))
	g.AddTask("b", sw("b_sw", 900), hw("b_hw", 150, 600))
	sch, stats, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Proven {
		t.Fatal("two-task search did not complete")
	}
	if sch.Makespan != 150 {
		t.Errorf("optimum = %d, want 150", sch.Makespan)
	}
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("invalid: %v", errs[0])
	}
}

func TestChainOptimumWithSharing(t *testing.T) {
	// A 3-chain on a one-region device: the non-delay optimum time-shares
	// the region, paying two reconfigurations (much cheaper than SW).
	a := &arch.Architecture{
		Name: "one-region", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 0, 0),
	}
	g := taskgraph.New("g")
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("t_sw", 50000), hw("t_hw", 100, 600))
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	sch, stats, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Proven {
		t.Fatal("search did not complete")
	}
	rt := a.ReconfTime(resources.Vec(600, 0, 0))
	if want := 3*100 + 2*rt; sch.Makespan != want {
		t.Errorf("optimum = %d, want %d", sch.Makespan, want)
	}
}

// TestHeuristicsNeverBeatExact is the optimality-gap property: on small
// random instances the exhaustive reference must lower-bound (within the
// non-delay class it searches) every heuristic's makespan.
func TestHeuristicsNeverBeatExact(t *testing.T) {
	a := arch.ZedBoard()
	for seed := int64(0); seed < 6; seed++ {
		g := genGraph(t, benchgen.Config{Tasks: 7, Seed: 2000 + seed})
		ex, stats, err := Schedule(g, a, Options{ModuleReuse: true})
		if err != nil {
			t.Fatal(err)
		}
		if !stats.Proven {
			t.Logf("seed %d: node budget hit (%d nodes); comparisons still valid as bounds", seed, stats.Nodes)
		}
		if errs := schedule.Check(ex); len(errs) > 0 {
			t.Fatalf("seed %d: exact schedule invalid: %v", seed, errs[0])
		}

		pa, _, err := sched.Schedule(g, a, sched.Options{SkipFloorplan: true})
		if err != nil {
			t.Fatal(err)
		}
		i1, _, err := isk.Schedule(g, a, isk.Options{K: 1, ModuleReuse: true, SkipFloorplan: true})
		if err != nil {
			t.Fatal(err)
		}
		// IS-k and the exact search share the non-delay class and module
		// reuse settings, so IS-1 can never beat the proven optimum.
		if stats.Proven && i1.Makespan < ex.Makespan {
			t.Errorf("seed %d: IS-1 (%d) beat the exhaustive search (%d)", seed, i1.Makespan, ex.Makespan)
		}
		// PA schedules with explicit delays and without module reuse, so it
		// can only match or exceed the reference.
		if stats.Proven && pa.Makespan < ex.Makespan {
			t.Errorf("seed %d: PA (%d) beat the exhaustive search (%d)", seed, pa.Makespan, ex.Makespan)
		}
	}
}
