// Package exact provides an optimality reference for tiny instances: an
// exhaustive branch-and-bound over every scheduling decision —
// implementation selection, processor/region mapping, region creation,
// module reuse and reconfiguration placement — in a single window covering
// the whole task graph.
//
// The search space is the *non-delay* schedule class: every action starts
// as early as its resources allow given the decisions taken so far.
// Makespan-optimal schedules outside that class (which insert deliberate
// idle time) are rare on these workloads; the result is therefore a strong
// lower-bound proxy used by the optimality-gap experiment to position PA,
// PA-R and IS-k, not a certified optimum.
//
// Complexity is factorial in |T|; instances beyond ~10 tasks are rejected.
package exact

import (
	"fmt"
	"time"

	"resched/internal/arch"
	"resched/internal/isk"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// MaxTasks bounds the instance size the exhaustive search accepts.
const MaxTasks = 11

// Options tune the reference search.
type Options struct {
	// ModuleReuse and Prefetch mirror the IS-k capabilities.
	ModuleReuse bool
	Prefetch    bool
	// MaxNodes caps the search (0 = 30 000 000); on overflow the best
	// incumbent is returned and Stats.Proven is false.
	MaxNodes int
}

// Stats describes the search effort.
type Stats struct {
	// Nodes explored by the branch and bound.
	Nodes int
	// Proven is true when the search completed within the node budget.
	Proven bool
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// Schedule exhaustively searches the non-delay schedule space of a tiny
// instance and returns the best schedule found.
func Schedule(g *taskgraph.Graph, a *arch.Architecture, opts Options) (*schedule.Schedule, *Stats, error) {
	if g.N() > MaxTasks {
		return nil, nil, fmt.Errorf("exact: %d tasks exceed the exhaustive-search limit of %d", g.N(), MaxTasks)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 30_000_000
	}
	start := time.Now()
	sch, ist, err := isk.Schedule(g, a, isk.Options{
		K:              g.N(),
		Exhaustive:     true,
		ModuleReuse:    opts.ModuleReuse,
		Prefetch:       opts.Prefetch,
		MaxWindowNodes: maxNodes,
		SkipFloorplan:  true,
	})
	if err != nil {
		return nil, nil, err
	}
	sch.Algorithm = "EXACT"
	return sch, &Stats{
		Nodes:   ist.Nodes,
		Proven:  ist.Nodes < maxNodes,
		Elapsed: time.Since(start),
	}, nil
}
