package floorplan

import (
	"testing"
	"testing/quick"

	"resched/internal/arch"
	"resched/internal/resources"
)

// clampPlacement maps arbitrary quick-generated integers into a valid
// rectangle on a w×h grid.
func clampPlacement(p Placement, w, h int) Placement {
	norm := func(v, m int) int {
		v %= m
		if v < 0 {
			v += m
		}
		return v
	}
	x0, x1 := norm(p.X0, w), norm(p.X1, w)
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	x1++
	y0, y1 := norm(p.Y0, h), norm(p.Y1, h)
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	y1++
	return Placement{X0: x0, X1: x1, Y0: y0, Y1: y1}
}

// Property: Overlaps is symmetric and reflexive for non-empty rectangles.
func TestOverlapsSymmetricReflexive(t *testing.T) {
	f := func(a, b Placement) bool {
		a = clampPlacement(a, 53, 3)
		b = clampPlacement(b, 53, 3)
		if a.Overlaps(b) != b.Overlaps(a) {
			return false
		}
		return a.Overlaps(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: two rectangles overlap iff their column and row ranges both
// intersect (cross-check against the definition).
func TestOverlapsDefinition(t *testing.T) {
	f := func(a, b Placement) bool {
		a = clampPlacement(a, 53, 3)
		b = clampPlacement(b, 53, 3)
		cols := a.X0 < b.X1 && b.X0 < a.X1
		rows := a.Y0 < b.Y1 && b.Y0 < a.Y1
		return a.Overlaps(b) == (cols && rows)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Area equals the number of cells a brute-force count finds.
func TestAreaMatchesCellCount(t *testing.T) {
	f := func(p Placement) bool {
		p = clampPlacement(p, 53, 3)
		count := 0
		for x := p.X0; x < p.X1; x++ {
			for y := p.Y0; y < p.Y1; y++ {
				count++
			}
		}
		return p.Area() == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated placement of a random feasible request covers
// the request, and RectResources agrees with a per-cell summation.
func TestEnumerateCoversQuick(t *testing.T) {
	fab := arch.NewZynqFabric()
	f := func(clb, bram, dsp uint16) bool {
		req := resources.Vec(1+int(clb)%3000, int(bram)%30, int(dsp)%60)
		for _, p := range Enumerate(fab, req) {
			got := fab.RectResources(p.X0, p.X1, p.Y0, p.Y1)
			var brute resources.Vector
			for x := p.X0; x < p.X1; x++ {
				brute = brute.Add(fab.CellResources(x).Scale(p.Y1 - p.Y0))
			}
			if got != brute || !req.Fits(got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
