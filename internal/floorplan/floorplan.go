// Package floorplan decides whether a set of reconfigurable regions admits a
// placement on the FPGA fabric that complies with partial-reconfiguration
// constraints. It follows the structure of the paper's floorplanner
// (Rabozzi et al., FCCM 2015 — ref [3]): first enumerate the *feasible
// placements* of every region (axis-aligned rectangles of whole columns
// spanning whole clock-region rows that cover the region's resource
// requirement), then search for a pairwise-disjoint selection, one placement
// per region.
//
// Two selection engines are provided: a backtracking search (default, exact
// over the full placement sets) and a MILP formulation solved by the
// in-repo branch-and-bound solver, mirroring the MILP of ref [3]. As in
// §V-H of the paper, only feasibility is queried — no objective function.
package floorplan

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/resources"
)

// ErrInfeasible is the sentinel schedulers wrap when they exhaust their
// shrink-retry policy without finding a floorplan-feasible schedule. It
// lives here — the common dependency of sched and isk — and is re-exported
// as sched.ErrFloorplanInfeasible; match it with errors.Is.
var ErrInfeasible = errors.New("no floorplan-feasible schedule")

// Placement is a candidate rectangle for one region: columns [X0, X1) and
// clock-region rows [Y0, Y1).
type Placement struct {
	X0, X1, Y0, Y1 int
}

// Area returns the number of fabric cells covered.
func (p Placement) Area() int { return (p.X1 - p.X0) * (p.Y1 - p.Y0) }

// Overlaps reports whether two rectangles intersect.
func (p Placement) Overlaps(q Placement) bool {
	return p.X0 < q.X1 && q.X0 < p.X1 && p.Y0 < q.Y1 && q.Y0 < p.Y1
}

// String renders the rectangle.
func (p Placement) String() string {
	return fmt.Sprintf("cols[%d,%d) rows[%d,%d)", p.X0, p.X1, p.Y0, p.Y1)
}

// Enumerate lists the feasible placements of a region with the given
// resource requirement: for every clock-region row span and every starting
// column, the minimal-width rectangle covering the requirement. Minimal-
// width placements are sufficient for feasibility: any solution using a
// wider rectangle remains valid after shrinking it to minimal width.
func Enumerate(f *arch.Fabric, req resources.Vector) []Placement {
	var out []Placement
	if req.Zero() {
		return out
	}
	w := f.Width()
	for h := 1; h <= f.Rows; h++ {
		// For height h, the column prefix resources scale by h.
		// Two-pointer scan: for each x0 find the minimal x1.
		var acc resources.Vector
		x1 := 0
		for x0 := 0; x0 < w; x0++ {
			if x1 < x0 {
				x1 = x0
				acc = resources.Vector{}
			}
			for x1 < w && !req.Fits(acc.Scale(h)) {
				acc = acc.Add(f.CellResources(x1))
				x1++
			}
			if !req.Fits(acc.Scale(h)) {
				break // no wider rectangle from x0 helps; larger x0 neither
			}
			for y0 := 0; y0+h <= f.Rows; y0++ {
				out = append(out, Placement{X0: x0, X1: x1, Y0: y0, Y1: y0 + h})
			}
			// Slide: remove column x0 before advancing.
			acc = acc.Sub(f.CellResources(x0))
		}
	}
	return out
}

// Method selects the placement-search engine.
type Method int

const (
	// Backtracking is the exact DFS search over full placement sets.
	Backtracking Method = iota
	// MILP builds the 0/1 selection model of ref [3] and solves it with
	// the in-repo branch-and-bound solver.
	MILP
)

// String names the method.
func (m Method) String() string {
	switch m {
	case Backtracking:
		return "backtracking"
	case MILP:
		return "milp"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Options tune the search.
type Options struct {
	Method Method
	// MaxCandidates caps the number of placements considered per region
	// (0 = defaults: unlimited for backtracking, 40 for MILP). Capping
	// trades completeness for speed; an infeasible answer under a cap is
	// reported as unproven.
	MaxCandidates int
	// MaxNodes caps search nodes in this solve (0 = 200 000).
	MaxNodes int
	// Budget, when non-nil, is charged one unit per search node; exhaustion
	// (deadline, shared node cap, or cancellation) aborts the search, which
	// then reports infeasible-unproven — never Proven. Replaces the old
	// Deadline field.
	Budget *budget.Budget
	// Faults, when armed, can steal the solve: a forced floorplan fault
	// reports infeasible-unproven without searching.
	Faults *faultinject.Set
	// Trace, when non-nil, records a floorplan.solve span (method, region
	// count, outcome, node count) and feasibility counters per invocation.
	// A nil trace is a no-op.
	Trace *obs.Trace
}

// Result is the outcome of a floorplanning query.
type Result struct {
	// Feasible reports whether a valid placement assignment was found.
	Feasible bool
	// Proven is true when the answer is exact: a found assignment is
	// always proven; an infeasibility verdict is proven only if the search
	// completed without hitting a candidate cap, node cap or deadline.
	Proven bool
	// Placements holds one rectangle per region when Feasible.
	Placements []Placement
	// Nodes counts explored search nodes.
	Nodes int
	// Elapsed is the wall-clock search time.
	Elapsed time.Duration
}

// Solve searches for a disjoint placement of all regions on the fabric.
// Regions with zero requirements are rejected.
func Solve(f *arch.Fabric, regions []resources.Vector, opt Options) (*Result, error) {
	sp := opt.Trace.Start("floorplan.solve",
		obs.Str("method", opt.Method.String()), obs.Int("regions", int64(len(regions))))
	if opt.Faults.FloorplanSolve() {
		opt.Trace.Count("floorplan.calls", 1)
		opt.Trace.Count("floorplan.infeasible", 1)
		opt.Trace.Count("floorplan.faults", 1)
		sp.End(obs.Str("outcome", "fault-infeasible"))
		return &Result{}, nil
	}
	res, err := solve(f, regions, opt)
	opt.Trace.Count("floorplan.calls", 1)
	switch {
	case err != nil:
		opt.Trace.Count("floorplan.errors", 1)
		sp.End(obs.Str("outcome", "error"))
	case res.Feasible:
		opt.Trace.Count("floorplan.feasible", 1)
		opt.Trace.Count("floorplan.nodes", int64(res.Nodes))
		sp.End(obs.Str("outcome", "feasible"), obs.Int("nodes", int64(res.Nodes)))
	default:
		opt.Trace.Count("floorplan.infeasible", 1)
		opt.Trace.Count("floorplan.nodes", int64(res.Nodes))
		outcome := "infeasible"
		if !res.Proven {
			outcome = "infeasible-unproven"
		}
		sp.End(obs.Str("outcome", outcome), obs.Int("nodes", int64(res.Nodes)))
	}
	return res, err
}

// solve is the uninstrumented search behind Solve.
func solve(f *arch.Fabric, regions []resources.Vector, opt Options) (*Result, error) {
	start := time.Now()
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for i, r := range regions {
		if r.Zero() {
			return nil, fmt.Errorf("floorplan: region %d has no resource requirements", i)
		}
		if !r.NonNegative() {
			return nil, fmt.Errorf("floorplan: region %d has negative requirements %v", i, r)
		}
	}
	res := &Result{}
	if len(regions) == 0 {
		res.Feasible, res.Proven = true, true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	// Quick capacity cut: total demand exceeding the device is a proven no.
	var total resources.Vector
	for _, r := range regions {
		total = total.Add(r)
	}
	if !total.Fits(f.Capacity()) {
		res.Proven = true
		res.Elapsed = time.Since(start)
		return res, nil
	}

	cands := make([][]Placement, len(regions))
	capped := false
	for i, r := range regions {
		cands[i] = Enumerate(f, r)
		if len(cands[i]) == 0 {
			// Region does not fit the device at all: proven infeasible.
			res.Proven = true
			res.Elapsed = time.Since(start)
			return res, nil
		}
		limit := opt.MaxCandidates
		if limit == 0 && opt.Method == MILP {
			limit = 40
		}
		// Prefer small-area placements, then pack toward the bottom-left
		// corner: compact prefixes leave the largest contiguous free space
		// for the remaining regions.
		sort.Slice(cands[i], func(a, b int) bool {
			pa, pb := cands[i][a], cands[i][b]
			if pa.Area() != pb.Area() {
				return pa.Area() < pb.Area()
			}
			if pa.X0 != pb.X0 {
				return pa.X0 < pb.X0
			}
			return pa.Y0 < pb.Y0
		})
		if limit > 0 && len(cands[i]) > limit {
			cands[i] = cands[i][:limit]
			capped = true
		}
	}

	var err error
	switch opt.Method {
	case Backtracking:
		err = solveBacktracking(f, regions, cands, opt, res)
	case MILP:
		err = solveMILP(f, regions, cands, opt, res)
	default:
		return nil, fmt.Errorf("floorplan: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	if !res.Feasible && capped {
		res.Proven = false
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Verify checks that the placements cover their regions' requirements and
// are pairwise disjoint; used by tests and callers that persist solutions.
func Verify(f *arch.Fabric, regions []resources.Vector, placements []Placement) error {
	if len(placements) != len(regions) {
		return fmt.Errorf("floorplan: %d placements for %d regions", len(placements), len(regions))
	}
	for i, p := range placements {
		if p.X0 < 0 || p.X1 > f.Width() || p.Y0 < 0 || p.Y1 > f.Rows || p.X0 >= p.X1 || p.Y0 >= p.Y1 {
			return fmt.Errorf("floorplan: region %d placement %v out of fabric bounds", i, p)
		}
		got := f.RectResources(p.X0, p.X1, p.Y0, p.Y1)
		if !regions[i].Fits(got) {
			return fmt.Errorf("floorplan: region %d needs %v, placement %v provides %v", i, regions[i], p, got)
		}
		for j := 0; j < i; j++ {
			if p.Overlaps(placements[j]) {
				return fmt.Errorf("floorplan: placements of regions %d and %d overlap (%v, %v)", j, i, placements[j], p)
			}
		}
	}
	return nil
}

// PlacementFootprint estimates the device resources a region will actually
// occupy once placed: the full content of its minimal-area feasible
// placement, including resource columns the rectangle covers incidentally.
// Schedulers use it for capacity accounting so that "fits the device"
// tracks what the floorplanner can really place; it falls back to the raw
// requirement when the region does not fit the fabric at all.
func PlacementFootprint(f *arch.Fabric, req resources.Vector) resources.Vector {
	best := req
	bestArea := -1
	for _, p := range Enumerate(f, req) {
		if bestArea < 0 || p.Area() < bestArea {
			bestArea = p.Area()
			best = f.RectResources(p.X0, p.X1, p.Y0, p.Y1)
		}
	}
	return best
}
