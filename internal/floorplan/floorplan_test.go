package floorplan

import (
	"math/rand"
	"testing"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/resources"
)

func zynq() *arch.Fabric { return arch.NewZynqFabric() }

func TestEnumerateBasics(t *testing.T) {
	f := zynq()
	// 100 slices = exactly one CLB column cell.
	req := resources.Vec(100, 0, 0)
	ps := Enumerate(f, req)
	if len(ps) == 0 {
		t.Fatal("no placements for a single CLB cell")
	}
	for _, p := range ps {
		got := f.RectResources(p.X0, p.X1, p.Y0, p.Y1)
		if !req.Fits(got) {
			t.Fatalf("placement %v provides %v, needs %v", p, got, req)
		}
		if p.X0 < 0 || p.X1 > f.Width() || p.Y0 < 0 || p.Y1 > f.Rows {
			t.Fatalf("placement %v out of bounds", p)
		}
	}
	// There must be a minimal 1×1 placement starting at a CLB column.
	found := false
	for _, p := range ps {
		if p.Area() == 1 {
			found = true
		}
	}
	if !found {
		t.Error("no 1-cell placement for a 1-cell requirement")
	}
}

func TestEnumerateZeroAndHuge(t *testing.T) {
	f := zynq()
	if got := Enumerate(f, resources.Vector{}); len(got) != 0 {
		t.Errorf("zero request enumerated %d placements", len(got))
	}
	// More than the device offers: nothing.
	huge := f.Capacity().Add(resources.Vec(1, 0, 0))
	if got := Enumerate(f, huge); len(got) != 0 {
		t.Errorf("oversized request enumerated %d placements", len(got))
	}
	// Exactly the device: the full-fabric rectangle (for every h that
	// works, i.e. only h = Rows).
	ps := Enumerate(f, f.Capacity())
	if len(ps) != 1 {
		t.Fatalf("full-device request enumerated %v", ps)
	}
	if ps[0] != (Placement{0, f.Width(), 0, f.Rows}) {
		t.Errorf("full-device placement = %v", ps[0])
	}
}

func TestEnumerateMixedResources(t *testing.T) {
	f := zynq()
	// Needs BRAM and DSP: every placement must span both column types.
	req := resources.Vec(200, 5, 10)
	ps := Enumerate(f, req)
	if len(ps) == 0 {
		t.Fatal("no placements for mixed requirement")
	}
	for _, p := range ps {
		if !req.Fits(f.RectResources(p.X0, p.X1, p.Y0, p.Y1)) {
			t.Fatalf("placement %v does not cover %v", p, req)
		}
	}
}

// Minimality: no placement with the same x0 and row span is narrower.
func TestEnumerateMinimalWidth(t *testing.T) {
	f := zynq()
	req := resources.Vec(300, 10, 0)
	for _, p := range Enumerate(f, req) {
		if p.X1-p.X0 <= 1 {
			continue
		}
		if req.Fits(f.RectResources(p.X0, p.X1-1, p.Y0, p.Y1)) {
			t.Fatalf("placement %v not minimal width", p)
		}
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(zynq(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible || !res.Proven {
		t.Error("empty region set must be trivially feasible")
	}
}

func TestSolveRejectsBadRegions(t *testing.T) {
	if _, err := Solve(zynq(), []resources.Vector{{}}, Options{}); err == nil {
		t.Error("zero-requirement region accepted")
	}
	if _, err := Solve(zynq(), []resources.Vector{resources.Vec(-1, 0, 0)}, Options{}); err == nil {
		t.Error("negative-requirement region accepted")
	}
}

func TestSolveSimpleBothMethods(t *testing.T) {
	f := zynq()
	regions := []resources.Vector{
		resources.Vec(400, 0, 0),
		resources.Vec(200, 10, 0),
		resources.Vec(100, 0, 20),
		resources.Vec(600, 10, 20),
	}
	for _, m := range []Method{Backtracking, MILP} {
		res, err := Solve(f, regions, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !res.Feasible {
			t.Fatalf("%v: feasible instance reported infeasible", m)
		}
		if err := Verify(f, regions, res.Placements); err != nil {
			t.Fatalf("%v: invalid placements: %v", m, err)
		}
	}
}

func TestSolveCapacityCut(t *testing.T) {
	f := zynq()
	regions := []resources.Vector{f.Capacity(), resources.Vec(100, 0, 0)}
	res, err := Solve(f, regions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible || !res.Proven {
		t.Errorf("capacity-exceeding instance: feasible=%v proven=%v", res.Feasible, res.Proven)
	}
	if res.Nodes != 0 {
		t.Errorf("capacity cut should not search, explored %d nodes", res.Nodes)
	}
}

func TestSolveRegionTooBigForDevice(t *testing.T) {
	f := zynq()
	// Fits capacity-wise per kind? Make one that can't: more BRAM than a
	// full-height device provides in any rectangle is just more than
	// capacity, so instead ask for a shape requiring > capacity of DSP.
	regions := []resources.Vector{resources.Vec(0, 0, f.Capacity()[resources.DSP]+1)}
	res, err := Solve(f, regions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("impossible region reported feasible")
	}
}

func TestSolveTightPacking(t *testing.T) {
	// Fill the device with full-height single-column CLB regions: the Zynq
	// fabric has 44 CLB columns; request 44 regions of 300 slices each.
	f := zynq()
	var regions []resources.Vector
	for i := 0; i < 44; i++ {
		regions = append(regions, resources.Vec(300, 0, 0))
	}
	res, err := Solve(f, regions, Options{Method: Backtracking})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("tight packing reported infeasible")
	}
	if err := Verify(f, regions, res.Placements); err != nil {
		t.Fatal(err)
	}
	// One more region cannot fit (all CLB columns used, BRAM/DSP columns
	// provide no CLB).
	regions = append(regions, resources.Vec(100, 0, 0))
	res, err = Solve(f, regions, Options{Method: Backtracking})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Error("overpacked instance reported feasible")
	}
}

// Cross-check the two engines on random instances.
func TestBacktrackingVsMILP(t *testing.T) {
	f := zynq()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(5)
		var regions []resources.Vector
		for i := 0; i < n; i++ {
			regions = append(regions, resources.Vec(
				100*(1+rng.Intn(8)),
				10*rng.Intn(3),
				20*rng.Intn(2)))
		}
		bt, err := Solve(f, regions, Options{Method: Backtracking})
		if err != nil {
			t.Fatal(err)
		}
		mi, err := Solve(f, regions, Options{Method: MILP, MaxCandidates: 30})
		if err != nil {
			t.Fatal(err)
		}
		// MILP candidates are capped, so it may miss solutions the exact
		// search finds — but it must never contradict a proven verdict.
		if mi.Feasible && !bt.Feasible && bt.Proven {
			t.Fatalf("trial %d: MILP feasible but backtracking proved infeasible", trial)
		}
		if bt.Feasible != mi.Feasible && mi.Proven && bt.Proven && !mi.Feasible && bt.Feasible {
			// MILP proven infeasible under a cap is demoted to unproven by
			// Solve, so reaching here means a real contradiction.
			t.Fatalf("trial %d: engines disagree with proofs (bt=%v milp=%v)", trial, bt.Feasible, mi.Feasible)
		}
		if bt.Feasible {
			if err := Verify(f, regions, bt.Placements); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
		if mi.Feasible {
			if err := Verify(f, regions, mi.Placements); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestBudgetAbort(t *testing.T) {
	f := zynq()
	var regions []resources.Vector
	for i := 0; i < 30; i++ {
		regions = append(regions, resources.Vec(300, 0, 0))
	}
	// An expired fake-clock deadline trips on the first charged node.
	clk := faultinject.NewClock()
	bud := budget.New(budget.Options{Deadline: clk.Now().Add(-time.Second), Clock: clk.Now})
	res, err := Solve(f, regions, Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("aborted search returned placements")
	}
	if res.Proven {
		t.Error("aborted search claimed a proof")
	}
	if res.Nodes > 1 {
		t.Errorf("expired budget explored %d nodes", res.Nodes)
	}
}

func TestVerifyRejections(t *testing.T) {
	f := zynq()
	regions := []resources.Vector{resources.Vec(100, 0, 0), resources.Vec(100, 0, 0)}
	good := []Placement{{0, 1, 0, 1}, {1, 2, 0, 1}}
	if err := Verify(f, regions, good); err != nil {
		t.Fatalf("valid placements rejected: %v", err)
	}
	if err := Verify(f, regions, good[:1]); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Verify(f, regions, []Placement{{0, 1, 0, 1}, {0, 1, 0, 1}}); err == nil {
		t.Error("overlap accepted")
	}
	if err := Verify(f, regions, []Placement{{-1, 1, 0, 1}, {1, 2, 0, 1}}); err == nil {
		t.Error("out-of-bounds accepted")
	}
	// Placement over a BRAM column provides no CLB.
	bramCol := -1
	for x := 0; x < f.Width(); x++ {
		if f.CellResources(x)[resources.BRAM] > 0 {
			bramCol = x
			break
		}
	}
	if err := Verify(f, regions, []Placement{{bramCol, bramCol + 1, 0, 1}, {1, 2, 0, 1}}); err == nil {
		t.Error("insufficient placement accepted")
	}
}

func TestPlacementHelpers(t *testing.T) {
	a := Placement{0, 2, 0, 1}
	b := Placement{1, 3, 0, 2}
	c := Placement{2, 4, 0, 1}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("overlap symmetric check failed")
	}
	if a.Overlaps(c) {
		t.Error("adjacent rectangles reported overlapping")
	}
	if a.Area() != 2 {
		t.Errorf("Area = %d", a.Area())
	}
	if a.String() == "" || Backtracking.String() != "backtracking" || MILP.String() != "milp" {
		t.Error("string helpers")
	}
}

// TestBudgetMidSearchNotProven aborts the backtracking search in the middle
// of the placement tree (node cap, then cancellation) and verifies the
// verdict is demoted to unproven: an aborted search may say "no placement
// found" but never "no placement exists".
func TestBudgetMidSearchNotProven(t *testing.T) {
	f := zynq()
	// An instance the unlimited search solves, but only after more nodes
	// than the caps below allow: every complete assignment of 30 regions
	// needs at least one search node per region.
	var regions []resources.Vector
	for i := 0; i < 30; i++ {
		regions = append(regions, resources.Vec(300, 0, 0))
	}
	full, err := Solve(f, regions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Feasible || !full.Proven {
		t.Fatalf("reference solve: feasible=%v proven=%v, want proven feasible", full.Feasible, full.Proven)
	}
	if full.Nodes <= 10 {
		t.Skipf("instance too easy to abort mid-search (%d nodes)", full.Nodes)
	}

	t.Run("node cap", func(t *testing.T) {
		bud := budget.New(budget.Options{MaxNodes: 10})
		res, err := Solve(f, regions, Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			t.Error("10 nodes cannot place 30 regions, yet the search returned placements")
		}
		if res.Proven {
			t.Error("search aborted mid-tree still claimed a proof")
		}
		if res.Nodes > 11 {
			t.Errorf("explored %d nodes past a cap of 10", res.Nodes)
		}
	})

	t.Run("cancellation", func(t *testing.T) {
		bud := budget.New(budget.Options{})
		bud.Cancel()
		res, err := Solve(f, regions, Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible || res.Proven {
			t.Errorf("cancelled search: feasible=%v proven=%v, want neither", res.Feasible, res.Proven)
		}
		if res.Nodes > 1 {
			t.Errorf("cancelled budget explored %d nodes", res.Nodes)
		}
	})
}
