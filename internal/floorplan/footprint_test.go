package floorplan

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
)

func TestPlacementFootprint(t *testing.T) {
	f := arch.NewZynqFabric()
	// One CLB cell: footprint is exactly one cell's worth.
	fp := PlacementFootprint(f, resources.Vec(100, 0, 0))
	if fp != resources.Vec(100, 0, 0) {
		t.Errorf("single-cell footprint = %v", fp)
	}
	// A 450-slice request rounds up to at least 5 cells.
	fp = PlacementFootprint(f, resources.Vec(450, 0, 0))
	if fp[resources.CLB] < 500 {
		t.Errorf("450-slice footprint = %v, want ≥ 500 CLB", fp)
	}
	// A mixed request charges the incidentally covered columns too.
	req := resources.Vec(500, 0, 20)
	fp = PlacementFootprint(f, req)
	if !req.Fits(fp) {
		t.Errorf("footprint %v does not cover request %v", fp, req)
	}
	if fp[resources.DSP] < 20 {
		t.Errorf("DSP footprint = %d", fp[resources.DSP])
	}
	// An impossible request falls back to the raw requirement.
	huge := f.Capacity().Add(resources.Vec(1, 0, 0))
	if fp := PlacementFootprint(f, huge); fp != huge {
		t.Errorf("impossible footprint = %v, want raw %v", fp, huge)
	}
}

// Property: the footprint always covers the request and never exceeds the
// device, for any feasible request.
func TestPlacementFootprintCovers(t *testing.T) {
	f := arch.NewZynqFabric()
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		req := resources.Vec(1+rng.Intn(4000), rng.Intn(40), rng.Intn(80))
		fp := PlacementFootprint(f, req)
		if !req.Fits(fp) {
			t.Fatalf("trial %d: footprint %v below request %v", trial, fp, req)
		}
		if len(Enumerate(f, req)) > 0 && !fp.Fits(f.Capacity()) {
			t.Fatalf("trial %d: feasible footprint %v exceeds capacity", trial, fp)
		}
	}
}

func TestVerifyWideFabric(t *testing.T) {
	// Fabrics beyond 64 columns exercise the multi-word occupancy masks.
	a, err := arch.ScaledZedBoard(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fabric.Width() <= 64 {
		t.Skip("scaled fabric unexpectedly narrow")
	}
	var regions []resources.Vector
	for i := 0; i < 20; i++ {
		regions = append(regions, resources.Vec(600, 0, 0))
	}
	res, err := Solve(a.Fabric, regions, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("20 regions on a double-size device reported infeasible")
	}
	if err := Verify(a.Fabric, regions, res.Placements); err != nil {
		t.Fatal(err)
	}
	// Some placement must use columns beyond 64 when the left half fills:
	// not guaranteed, but the masks were exercised either way.
}

func TestWriteSVG(t *testing.T) {
	f := arch.NewZynqFabric()
	regions := []resources.Vector{
		resources.Vec(400, 0, 20),
		resources.Vec(800, 10, 0),
	}
	res, err := Solve(f, regions, Options{})
	if err != nil || !res.Feasible {
		t.Fatalf("setup: %v feasible=%v", err, res.Feasible)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, f, regions, res.Placements); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<svg", "</svg>", "region 0", "region 1", "fabric"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// Invalid placements are rejected before rendering.
	bad := []Placement{{0, 1, 0, 1}, {0, 1, 0, 1}}
	if err := WriteSVG(&buf, f, regions, bad); err == nil {
		t.Error("overlapping placements rendered")
	}
}
