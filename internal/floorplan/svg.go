package floorplan

import (
	"fmt"
	"io"
	"strings"

	"resched/internal/arch"
	"resched/internal/resources"
)

// svg layout constants (pixels).
const (
	svgCell   = 14
	svgMargin = 24
)

var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#76b7b2",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// WriteSVG renders a floorplan as an SVG device map: one cell per
// (column, clock-region row), BRAM and DSP columns shaded, and each placed
// region drawn as a coloured rectangle with a tooltip.
func WriteSVG(w io.Writer, f *arch.Fabric, regions []resources.Vector, placements []Placement) error {
	if err := Verify(f, regions, placements); err != nil {
		return err
	}
	width := svgMargin*2 + f.Width()*svgCell
	height := svgMargin*2 + f.Rows*svgCell + 18
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="10">`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="16">%d-column × %d-row fabric, %d regions placed</text>`+"\n",
		svgMargin, f.Width(), f.Rows, len(placements))
	// Background cells by column kind.
	for x := 0; x < f.Width(); x++ {
		fill := "#f4f4f6" // CLB
		switch f.Columns[x] {
		case resources.BRAM:
			fill = "#dce8f4"
		case resources.DSP:
			fill = "#f4e8dc"
		}
		for y := 0; y < f.Rows; y++ {
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#ffffff"/>`+"\n",
				svgMargin+x*svgCell, svgMargin+y*svgCell, svgCell, svgCell, fill)
		}
	}
	// Placed regions.
	for i, p := range placements {
		colour := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.8" stroke="#333333"><title>region %d: %s at %s</title></rect>`+"\n",
			svgMargin+p.X0*svgCell, svgMargin+p.Y0*svgCell,
			(p.X1-p.X0)*svgCell, (p.Y1-p.Y0)*svgCell, colour, i, regions[i], p)
		if (p.X1-p.X0)*svgCell > 16 {
			fmt.Fprintf(&b, `<text x="%d" y="%d" fill="#ffffff">%d</text>`+"\n",
				svgMargin+p.X0*svgCell+3, svgMargin+p.Y0*svgCell+11, i)
		}
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d">shading: plain = CLB column, blue = BRAM, orange = DSP</text>`+"\n",
		svgMargin, svgMargin+f.Rows*svgCell+14)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
