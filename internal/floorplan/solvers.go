package floorplan

import (
	"fmt"
	"sort"

	"resched/internal/arch"
	"resched/internal/lp"
	"resched/internal/milp"
	"resched/internal/resources"
)

const defaultMaxNodes = 200000

// solveBacktracking runs an exact DFS: regions are ordered most-constrained
// first (fewest candidate placements), and the fabric occupancy is tracked
// with one bitmask per clock-region row.
func solveBacktracking(f *arch.Fabric, regions []resources.Vector, cands [][]Placement, opt Options, res *Result) error {
	words := (f.Width() + 63) / 64
	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	// Biggest-footprint-first ordering (classic bin packing: place the hard
	// rectangles while the fabric is empty), breaking ties toward regions
	// with fewer candidate placements.
	area := make([]int, len(regions))
	for i, cs := range cands {
		if len(cs) > 0 {
			area[i] = cs[0].Area() // cands are sorted smallest-area first
		}
	}
	order := make([]int, len(regions))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if area[ia] != area[ib] {
			return area[ia] > area[ib]
		}
		if len(cands[ia]) != len(cands[ib]) {
			return len(cands[ia]) < len(cands[ib])
		}
		return ia < ib
	})

	// Per-placement multi-word column masks (fabrics may exceed 64
	// columns). One scratch buffer per DFS depth: the mask computed at
	// depth k stays live across the recursive call (it is needed again to
	// un-occupy on backtrack), while deeper levels use their own rows —
	// so a single preallocated matrix replaces the per-node allocation
	// that used to dominate the scheduler's heap profile.
	maskBuf := make([]uint64, words*len(regions))
	mask := func(k int, p Placement) []uint64 {
		m := maskBuf[k*words : (k+1)*words]
		for w := range m {
			m[w] = 0
		}
		for x := p.X0; x < p.X1; x++ {
			m[x/64] |= 1 << (x % 64)
		}
		return m
	}

	// Aggregate free-cell bound: a region needing res_k units of kind k
	// must cover at least ⌈res_k / unitsPerCell_k⌉ cells of that kind, so
	// whenever the cells still needed by the unplaced regions exceed the
	// free cells of some kind, the branch is dead. cellsNeeded is indexed
	// like order; suffixNeed[k] pre-aggregates from position k to the end.
	cellsNeeded := make([]resources.Vector, len(order))
	for k, region := range order {
		for kind, req := range regions[region] {
			if req == 0 {
				continue
			}
			per := f.UnitsPerCell[kind]
			cellsNeeded[k][kind] = (req + per - 1) / per
		}
	}
	suffixNeed := make([]resources.Vector, len(order)+1)
	for k := len(order) - 1; k >= 0; k-- {
		suffixNeed[k] = suffixNeed[k+1].Add(cellsNeeded[k])
	}
	var freeCells resources.Vector
	for x := 0; x < f.Width(); x++ {
		freeCells[f.Columns[x]] += f.Rows
	}

	occupied := make([][]uint64, f.Rows)
	for y := range occupied {
		occupied[y] = make([]uint64, words)
	}
	chosen := make([]Placement, len(regions))
	aborted := false

	var dfs func(k int) bool
	dfs = func(k int) bool {
		if k == len(order) {
			return true
		}
		if !suffixNeed[k].Fits(freeCells) {
			return false
		}
		if res.Nodes >= maxNodes {
			aborted = true
			return false
		}
		region := order[k]
		for _, p := range cands[region] {
			res.Nodes++
			// Budget is charged per node, so a cancel or deadline lands
			// within microseconds of search; an aborted run reports
			// infeasible-unproven below.
			if opt.Budget.Charge(1) != nil {
				aborted = true
				return false
			}
			m := mask(k, p)
			clash := false
			for y := p.Y0; y < p.Y1 && !clash; y++ {
				for w, bits := range m {
					if occupied[y][w]&bits != 0 {
						clash = true
						break
					}
				}
			}
			if clash {
				continue
			}
			var covered resources.Vector
			for x := p.X0; x < p.X1; x++ {
				covered[f.Columns[x]] += p.Y1 - p.Y0
			}
			for y := p.Y0; y < p.Y1; y++ {
				for w, bits := range m {
					occupied[y][w] |= bits
				}
			}
			freeCells = freeCells.Sub(covered)
			chosen[region] = p
			if dfs(k + 1) {
				return true
			}
			freeCells = freeCells.Add(covered)
			for y := p.Y0; y < p.Y1; y++ {
				for w, bits := range m {
					occupied[y][w] &^= bits
				}
			}
			if aborted {
				return false
			}
		}
		return false
	}

	if dfs(0) {
		res.Feasible, res.Proven = true, true
		res.Placements = chosen
		return nil
	}
	res.Feasible = false
	res.Proven = !aborted
	return nil
}

// solveMILP builds the 0/1 selection model of ref [3]: one binary variable
// per (region, candidate placement), an exactly-one row per region, and an
// at-most-one row per fabric cell covered by at least two candidates.
func solveMILP(f *arch.Fabric, regions []resources.Vector, cands [][]Placement, opt Options, res *Result) error {
	nvars := 0
	varOf := make([][]int, len(cands))
	for i, cs := range cands {
		varOf[i] = make([]int, len(cs))
		for j := range cs {
			varOf[i][j] = nvars
			nvars++
		}
	}
	p := milp.New(nvars)
	for v := 0; v < nvars; v++ {
		p.SetBinary(v)
	}
	p.LP.SetObjective(make([]float64, nvars), false) // pure feasibility, as in §V-H

	// Exactly one placement per region.
	for i := range cands {
		coef := make([]float64, len(varOf[i]))
		for j := range coef {
			coef[j] = 1
		}
		if err := p.LP.AddSparse(varOf[i], coef, lp.EQ, 1); err != nil {
			return err
		}
	}
	// Cell-capacity rows.
	for y := 0; y < f.Rows; y++ {
		for x := 0; x < f.Width(); x++ {
			var idx []int
			for i, cs := range cands {
				for j, pc := range cs {
					if pc.X0 <= x && x < pc.X1 && pc.Y0 <= y && y < pc.Y1 {
						idx = append(idx, varOf[i][j])
					}
				}
			}
			if len(idx) < 2 {
				continue
			}
			coef := make([]float64, len(idx))
			for k := range coef {
				coef[k] = 1
			}
			if err := p.LP.AddSparse(idx, coef, lp.LE, 1); err != nil {
				return err
			}
		}
	}

	maxNodes := opt.MaxNodes
	if maxNodes == 0 {
		maxNodes = defaultMaxNodes
	}
	sol, err := p.Solve(milp.Options{MaxNodes: maxNodes, Budget: opt.Budget, Faults: opt.Faults, FirstIncumbent: true})
	if err != nil {
		return err
	}
	res.Nodes = sol.Nodes
	switch sol.Status {
	case milp.Optimal, milp.Feasible:
		res.Feasible, res.Proven = true, true
		res.Placements = make([]Placement, len(cands))
		for i := range cands {
			found := false
			for j := range cands[i] {
				if sol.X[varOf[i][j]] > 0.5 {
					res.Placements[i] = cands[i][j]
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("floorplan: MILP solution selects no placement for region %d", i)
			}
		}
	case milp.Infeasible:
		res.Feasible, res.Proven = false, true
	default:
		res.Feasible, res.Proven = false, false
	}
	return nil
}
