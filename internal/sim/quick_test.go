package sim

import (
	"testing"
	"testing/quick"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/sched"
)

// Property (via testing/quick over generator seeds): for any synthetic
// instance, PA's schedule executes deterministically — two simulations of
// the same schedule agree event for event — and never later than the static
// plan.
func TestSimulationDeterministicQuick(t *testing.T) {
	a := arch.ZedBoard()
	f := func(seed uint8, size uint8) bool {
		n := 5 + int(size)%30
		g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(seed)})
		s, _, err := sched.Schedule(g, a, sched.Options{SkipFloorplan: true})
		if err != nil {
			return false
		}
		r1, err := Execute(s)
		if err != nil {
			return false
		}
		r2, err := Execute(s)
		if err != nil {
			return false
		}
		if r1.Makespan != r2.Makespan || r1.Makespan > s.Makespan {
			return false
		}
		for i := range r1.Start {
			if r1.Start[i] != r2.Start[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
