package sim

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// TestAssignChannelsEqualStartTieBreak pins the explicit tie-break: two
// reconfigurations with the same scheduled start must partition onto the
// controllers by reconfiguration index, independent of emission order.
func TestAssignChannelsEqualStartTieBreak(t *testing.T) {
	g := taskgraph.New("tie")
	a := arch.ZedBoard()
	a.Reconfigurators = 2
	s := schedule.New(g, a)
	s.AddRegion(resources.Vec(100, 0, 0))
	s.AddRegion(resources.Vec(100, 0, 0))
	rt := s.Regions[0].ReconfTime
	// Same start on both; emitted in DESCENDING index order on purpose.
	s.Reconfs = []schedule.Reconfiguration{
		{Region: 1, InTask: -1, OutTask: -1, Start: 10, End: 10 + rt},
		{Region: 0, InTask: -1, OutTask: -1, Start: 10, End: 10 + rt},
	}
	q := assignChannels(s)
	// Index 0 (emitted first) goes to controller 0, index 1 to controller 1.
	if len(q[0]) != 1 || q[0][0] != 0 || len(q[1]) != 1 || q[1][0] != 1 {
		t.Fatalf("equal-start partition = %v, want [[0] [1]]", q)
	}

	// Swapping the records (so emission order matches index order) must give
	// the same partition by record content: start ties resolve by index.
	s.Reconfs[0], s.Reconfs[1] = s.Reconfs[1], s.Reconfs[0]
	q2 := assignChannels(s)
	if !reflect.DeepEqual(q2, [][]int{{0}, {1}}) {
		t.Fatalf("after swap partition = %v, want [[0] [1]]", q2)
	}
}

// TestExecuteFromReleaseFloors verifies release floors hold in both the
// event-driven executor and the analytic oracle, and that they agree.
func TestExecuteFromReleaseFloors(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 9})
	s := mustPA(t, g)
	release := make([]int64, g.N())
	for v := range release {
		release[v] = int64(37 * (v%5 + 1))
	}
	ex, err := ExecuteFrom(s, release)
	if err != nil {
		t.Fatal(err)
	}
	an, err := ASAPFrom(s, release)
	if err != nil {
		t.Fatal(err)
	}
	for v := range release {
		if ex.Start[v] < release[v] {
			t.Errorf("Execute: task %d starts at %d before release %d", v, ex.Start[v], release[v])
		}
	}
	if !reflect.DeepEqual(ex.Start, an.Start) || ex.Makespan != an.Makespan {
		t.Errorf("ExecuteFrom and ASAPFrom disagree: makespans %d vs %d", ex.Makespan, an.Makespan)
	}
	checkDynamic(t, s, ex)

	// Zero floors are Execute: identical results.
	plain, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	zero, err := ExecuteFrom(s, make([]int64, g.N()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, zero) {
		t.Error("zero release floors changed the executed timeline")
	}
}
