// Package sim executes a schedule's decisions on a discrete-event model of
// the target platform: processor cores, reconfigurable regions, the single
// reconfiguration controller and inter-task communication. The simulator
// keeps the schedule's *orders* (per processor, per region, and on the
// reconfigurator) but lets every action start as early as the platform
// allows, so it both dynamically validates a schedule and measures how much
// air the static start times contain (schedulers only ever move starts
// later, never earlier).
//
// The paper's evaluation is simulation-based (§VII); this package is the
// corresponding executable model.
package sim

import (
	"container/heap"
	"fmt"
	"sort"

	"resched/internal/schedule"
)

// assignChannels partitions the schedule's reconfigurations onto the
// architecture's reconfiguration controllers: scheduled-start order, each
// reconfiguration going to the controller that frees up first (greedy
// interval partitioning, which succeeds whenever the schedule respects the
// controller capacity). The result is one queue of reconfiguration indices
// per controller.
func assignChannels(s *schedule.Schedule) [][]int {
	order := make([]int, len(s.Reconfs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ra, rb := s.Reconfs[ia], s.Reconfs[ib]
		if ra.Start != rb.Start {
			return ra.Start < rb.Start
		}
		// Equal starts tie-break on the reconfiguration index, an explicit
		// total order: channel assignment (and with it the executed timeline)
		// must not depend on the schedule's emission order.
		return ia < ib
	})
	n := s.Arch.ReconfiguratorCount()
	queues := make([][]int, n)
	free := make([]int64, n)
	for _, idx := range order {
		best := 0
		for c := 1; c < n; c++ {
			if free[c] < free[best] {
				best = c
			}
		}
		queues[best] = append(queues[best], idx)
		free[best] = s.Reconfs[idx].End
	}
	return queues
}

// Result is the executed timeline of a schedule.
type Result struct {
	// Start and End are the executed task times, indexed by task ID.
	Start, End []int64
	// ReconfStart and ReconfEnd are the executed reconfiguration times,
	// parallel to the schedule's Reconfs slice.
	ReconfStart, ReconfEnd []int64
	// Makespan is the executed completion time.
	Makespan int64
	// Events counts processed simulation events.
	Events int
}

// Slack returns the difference between the schedule's recorded makespan and
// the executed one: how much the static timing over-approximated.
func (r *Result) Slack(s *schedule.Schedule) int64 { return s.Makespan - r.Makespan }

// event is one entry of the simulation calendar.
type event struct {
	time int64
	// seq breaks ties deterministically in calendar order.
	seq  int
	kind eventKind
	id   int // task ID or reconfiguration index
}

type eventKind int

const (
	taskDone eventKind = iota
	reconfDone
	// wake re-runs the dispatcher when a data transfer lands.
	wake
)

// calendar is a min-heap of events ordered by (time, seq).
type calendar []event

func (c calendar) Len() int { return len(c) }
func (c calendar) Less(i, j int) bool {
	if c[i].time != c[j].time {
		return c[i].time < c[j].time
	}
	return c[i].seq < c[j].seq
}
func (c calendar) Swap(i, j int)   { c[i], c[j] = c[j], c[i] }
func (c *calendar) Push(x any)     { *c = append(*c, x.(event)) }
func (c *calendar) Pop() any       { old := *c; e := old[len(old)-1]; *c = old[:len(old)-1]; return e }
func (c calendar) peekTime() int64 { return c[0].time }
func (c *calendar) next() event    { return heap.Pop(c).(event) }
func (c *calendar) add(e event)    { heap.Push(c, e) }
func (c calendar) empty() bool     { return len(c) == 0 }

// Execute runs the schedule on the platform model and returns the executed
// timeline. The schedule must be structurally valid (schedule.Check); the
// simulator re-verifies the dynamic conditions as it goes and fails loudly
// on any inconsistency (a deadlock means the schedule's orders are cyclic).
func Execute(s *schedule.Schedule) (*Result, error) {
	return ExecuteFrom(s, nil)
}

// ExecuteFrom runs the schedule with per-task release floors: task t may
// not start before release[t] no matter how early the platform frees up.
// This is the arrival-driven oracle for online scheduling — a job arriving
// at time A is modelled as release A on each of its tasks — and a nil or
// short slice leaves the unmapped tasks unconstrained (Execute semantics).
func ExecuteFrom(s *schedule.Schedule, release []int64) (*Result, error) {
	n := s.Graph.N()
	res := &Result{
		Start:       make([]int64, n),
		End:         make([]int64, n),
		ReconfStart: make([]int64, len(s.Reconfs)),
		ReconfEnd:   make([]int64, len(s.Reconfs)),
	}
	for t := range res.Start {
		res.Start[t] = -1
		res.End[t] = -1
	}
	for i := range res.ReconfStart {
		res.ReconfStart[i] = -1
		res.ReconfEnd[i] = -1
	}

	// Static orders extracted from the schedule.
	procQueue := make([][]int, s.Arch.Processors)
	for p := range procQueue {
		procQueue[p] = s.ProcessorTasks(p)
	}
	regionQueue := make([][]int, len(s.Regions))
	for r := range regionQueue {
		regionQueue[r] = s.RegionTasks(r)
	}
	icapQueues := assignChannels(s)
	// reconfFor[t] is the reconfiguration index loading task t, or -1.
	reconfFor := make([]int, n)
	for t := range reconfFor {
		reconfFor[t] = -1
	}
	for i, rc := range s.Reconfs {
		if rc.OutTask >= 0 && rc.OutTask < n {
			reconfFor[rc.OutTask] = i
		}
	}

	// Mutable platform state.
	procHead := make([]int, s.Arch.Processors) // next index into procQueue
	regionHead := make([]int, len(s.Regions))
	icapHead := make([]int, len(icapQueues))
	pendingPreds := make([]int, n)
	for t := 0; t < n; t++ {
		pendingPreds[t] = len(s.Graph.Pred(t))
	}
	// dataAt[t] is the time all inputs of t have arrived (valid once
	// pendingPreds[t] == 0). Release floors seed it: arrival data is one
	// more input the dispatcher waits for.
	dataAt := make([]int64, n)
	for t := 0; t < n && t < len(release); t++ {
		dataAt[t] = release[t]
	}

	var cal calendar
	seq := 0
	now := int64(0)

	startTask := func(t int64, task int) {
		res.Start[task] = t
		end := t + s.Impl(task).Time
		res.End[task] = end
		seq++
		cal.add(event{time: end, seq: seq, kind: taskDone, id: task})
	}
	startReconf := func(t int64, idx int) {
		rc := s.Reconfs[idx]
		res.ReconfStart[idx] = t
		end := t + s.Regions[rc.Region].ReconfTime
		res.ReconfEnd[idx] = end
		seq++
		cal.add(event{time: end, seq: seq, kind: reconfDone, id: idx})
	}

	// dispatch starts everything that can start at the current time; it
	// loops because one start can enable another at the same instant.
	dispatch := func() {
		for progress := true; progress; {
			progress = false
			// Processors.
			for p := range procQueue {
				if procHead[p] >= len(procQueue[p]) {
					continue
				}
				t := procQueue[p][procHead[p]]
				if res.Start[t] >= 0 || pendingPreds[t] > 0 || dataAt[t] > now {
					continue
				}
				if procHead[p] > 0 {
					if prev := procQueue[p][procHead[p]-1]; res.End[prev] < 0 || res.End[prev] > now {
						continue
					}
				}
				procHead[p]++
				startTask(now, t)
				progress = true
			}
			// Regions.
			for r := range regionQueue {
				if regionHead[r] >= len(regionQueue[r]) {
					continue
				}
				t := regionQueue[r][regionHead[r]]
				if res.Start[t] >= 0 || pendingPreds[t] > 0 || dataAt[t] > now {
					continue
				}
				if regionHead[r] > 0 {
					if prev := regionQueue[r][regionHead[r]-1]; res.End[prev] < 0 || res.End[prev] > now {
						continue
					}
				}
				if rc := reconfFor[t]; rc >= 0 {
					if res.ReconfEnd[rc] < 0 || res.ReconfEnd[rc] > now {
						continue
					}
				}
				regionHead[r]++
				startTask(now, t)
				progress = true
			}
			// Reconfiguration controllers: each serves its queue strictly
			// in order, one reconfiguration at a time.
			for c, queue := range icapQueues {
				for icapHead[c] < len(queue) {
					idx := queue[icapHead[c]]
					rc := s.Reconfs[idx]
					if icapHead[c] > 0 {
						if prevEnd := res.ReconfEnd[queue[icapHead[c]-1]]; prevEnd < 0 || prevEnd > now {
							break
						}
					}
					// The region must have finished its previous occupant.
					if rc.InTask >= 0 {
						if res.End[rc.InTask] < 0 || res.End[rc.InTask] > now {
							break
						}
					}
					icapHead[c]++
					startReconf(now, idx)
					progress = true
				}
			}
		}
	}

	// Source tasks held only by a release floor need a wake-up: no
	// predecessor completion will ever re-run the dispatcher for them.
	for t := 0; t < n; t++ {
		if pendingPreds[t] == 0 && dataAt[t] > 0 {
			seq++
			cal.add(event{time: dataAt[t], seq: seq, kind: wake, id: t})
		}
	}

	dispatch()
	for !cal.empty() {
		now = cal.peekTime()
		for !cal.empty() && cal.peekTime() == now {
			e := cal.next()
			res.Events++
			if e.kind == taskDone {
				for _, w := range s.Graph.Succ(e.id) {
					pendingPreds[w]--
					if arrive := now + s.Graph.EdgeComm(e.id, w); arrive > dataAt[w] {
						dataAt[w] = arrive
					}
					if pendingPreds[w] == 0 && dataAt[w] > now {
						// Wake up when the last transfer lands.
						seq++
						cal.add(event{time: dataAt[w], seq: seq, kind: wake, id: w})
					}
				}
			}
		}
		dispatch()
	}

	// Completeness: every task and reconfiguration must have executed.
	for t := 0; t < n; t++ {
		if res.Start[t] < 0 {
			return nil, fmt.Errorf("sim: deadlock — task %d never became runnable (cyclic schedule orders?)", t)
		}
		if res.End[t] > res.Makespan {
			res.Makespan = res.End[t]
		}
	}
	for i := range s.Reconfs {
		if res.ReconfStart[i] < 0 {
			return nil, fmt.Errorf("sim: deadlock — reconfiguration %d never issued", i)
		}
	}
	return res, nil
}
