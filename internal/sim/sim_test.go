package sim

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/resources"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func mustPA(t *testing.T, g *taskgraph.Graph) *schedule.Schedule {
	t.Helper()
	s, _, err := sched.Schedule(g, arch.ZedBoard(), sched.Options{SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := schedule.Valid(s); err != nil {
		t.Fatal(err)
	}
	return s
}

// checkDynamic re-verifies every platform constraint on the executed
// timeline (not just the static one).
func checkDynamic(t *testing.T, s *schedule.Schedule, r *Result) {
	t.Helper()
	// Dependencies with communication.
	for _, e := range s.Graph.Edges() {
		if r.End[e[0]]+s.Graph.EdgeComm(e[0], e[1]) > r.Start[e[1]] {
			t.Errorf("edge %v violated in executed timeline", e)
		}
	}
	// Exclusivity per processor and region.
	overlap := func(a0, a1, b0, b1 int64) bool { return a0 < b1 && b0 < a1 }
	for p := 0; p < s.Arch.Processors; p++ {
		q := s.ProcessorTasks(p)
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				if overlap(r.Start[q[i]], r.End[q[i]], r.Start[q[j]], r.End[q[j]]) {
					t.Errorf("processor %d: executed tasks %d and %d overlap", p, q[i], q[j])
				}
			}
		}
	}
	for reg := range s.Regions {
		q := s.RegionTasks(reg)
		for i := 0; i < len(q); i++ {
			for j := i + 1; j < len(q); j++ {
				if overlap(r.Start[q[i]], r.End[q[i]], r.Start[q[j]], r.End[q[j]]) {
					t.Errorf("region %d: executed tasks %d and %d overlap", reg, q[i], q[j])
				}
			}
		}
	}
	// Reconfigurator exclusivity and coupling.
	for i := range s.Reconfs {
		for j := i + 1; j < len(s.Reconfs); j++ {
			if overlap(r.ReconfStart[i], r.ReconfEnd[i], r.ReconfStart[j], r.ReconfEnd[j]) {
				t.Errorf("executed reconfigurations %d and %d overlap", i, j)
			}
		}
		rc := s.Reconfs[i]
		if rc.InTask >= 0 && r.ReconfStart[i] < r.End[rc.InTask] {
			t.Errorf("reconfiguration %d starts before its ingoing task ends", i)
		}
		if r.ReconfEnd[i] > r.Start[rc.OutTask] {
			t.Errorf("reconfiguration %d ends after its outgoing task starts", i)
		}
	}
}

func TestExecuteSimpleChain(t *testing.T) {
	g := taskgraph.New("chain")
	sw := taskgraph.Implementation{Name: "s", Kind: taskgraph.SW, Time: 100}
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw)
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	s := mustPA(t, g)
	r, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 300 {
		t.Errorf("executed makespan = %d, want 300", r.Makespan)
	}
	checkDynamic(t, s, r)
}

func TestExecuteNeverWorseThanSchedule(t *testing.T) {
	for _, n := range []int{10, 25, 40, 60} {
		g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(n)})
		s := mustPA(t, g)
		r, err := Execute(s)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r.Makespan > s.Makespan {
			t.Errorf("n=%d: executed makespan %d exceeds scheduled %d", n, r.Makespan, s.Makespan)
		}
		if r.Slack(s) < 0 {
			t.Errorf("n=%d: negative slack", n)
		}
		checkDynamic(t, s, r)
	}
}

// TestExecuteAgreesWithASAP is the differential oracle: the event-driven
// simulator and the analytic longest-path execution must produce identical
// timelines on schedules from every scheduler, with and without
// communication costs.
func TestExecuteAgreesWithASAP(t *testing.T) {
	a := arch.ZedBoard()
	for _, n := range []int{10, 20, 35, 50} {
		for _, comm := range []int64{0, 400} {
			g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(900 + n), CommMax: comm})
			schedules := make([]*schedule.Schedule, 0, 3)
			pa, _, err := sched.Schedule(g, a, sched.Options{SkipFloorplan: true})
			if err != nil {
				t.Fatal(err)
			}
			schedules = append(schedules, pa)
			i1, _, err := isk.Schedule(g, a, isk.Options{K: 1, SkipFloorplan: true})
			if err != nil {
				t.Fatal(err)
			}
			schedules = append(schedules, i1)
			i5, _, err := isk.Schedule(g, a, isk.Options{K: 5, ModuleReuse: true, SkipFloorplan: true})
			if err != nil {
				t.Fatal(err)
			}
			schedules = append(schedules, i5)

			for _, s := range schedules {
				ev, err := Execute(s)
				if err != nil {
					t.Fatalf("n=%d comm=%d %s: Execute: %v", n, comm, s.Algorithm, err)
				}
				an, err := ASAP(s)
				if err != nil {
					t.Fatalf("n=%d comm=%d %s: ASAP: %v", n, comm, s.Algorithm, err)
				}
				if ev.Makespan != an.Makespan {
					t.Fatalf("n=%d comm=%d %s: Execute makespan %d != ASAP %d",
						n, comm, s.Algorithm, ev.Makespan, an.Makespan)
				}
				for task := range ev.Start {
					if ev.Start[task] != an.Start[task] {
						t.Fatalf("n=%d comm=%d %s: task %d start %d != %d",
							n, comm, s.Algorithm, task, ev.Start[task], an.Start[task])
					}
				}
				for i := range ev.ReconfStart {
					if ev.ReconfStart[i] != an.ReconfStart[i] {
						t.Fatalf("n=%d comm=%d %s: reconf %d start %d != %d",
							n, comm, s.Algorithm, i, ev.ReconfStart[i], an.ReconfStart[i])
					}
				}
				checkDynamic(t, s, ev)
			}
		}
	}
}

func TestExecuteHWWithReconfs(t *testing.T) {
	// One region time-shared by two tasks: the executed timeline must put
	// the reconfiguration strictly between them.
	small := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 5, 5),
	}
	g := taskgraph.New("hw")
	g.AddTask("a",
		taskgraph.Implementation{Name: "a_sw", Kind: taskgraph.SW, Time: 50000},
		taskgraph.Implementation{Name: "a_hw", Kind: taskgraph.HW, Time: 100, Res: resources.Vec(600, 0, 0)})
	g.AddTask("m", taskgraph.Implementation{Name: "m_sw", Kind: taskgraph.SW, Time: 2000})
	g.AddTask("b",
		taskgraph.Implementation{Name: "b_sw", Kind: taskgraph.SW, Time: 50000},
		taskgraph.Implementation{Name: "b_hw", Kind: taskgraph.HW, Time: 100, Res: resources.Vec(600, 0, 0)})
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	s, _, err := sched.Schedule(g, small, sched.Options{SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Reconfs) != 1 {
		t.Fatalf("expected one reconfiguration, got %d", len(s.Reconfs))
	}
	r, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	checkDynamic(t, s, r)
	if r.Makespan != s.Makespan {
		t.Errorf("executed %d != scheduled %d on a tight schedule", r.Makespan, s.Makespan)
	}
}

func TestExecuteDetectsCyclicOrders(t *testing.T) {
	// A hand-built schedule whose region order contradicts the dependency
	// edges deadlocks the simulator and must be reported, not hang.
	a := &arch.Architecture{
		Name: "tiny", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1000, 0, 0),
	}
	g := taskgraph.New("cyc")
	hw := taskgraph.Implementation{Name: "h", Kind: taskgraph.HW, Time: 100, Res: resources.Vec(100, 0, 0)}
	sw := taskgraph.Implementation{Name: "s", Kind: taskgraph.SW, Time: 100}
	g.AddTask("a", sw, hw)
	g.AddTask("b", sw, hw)
	mustEdge(t, g, 0, 1)
	s := schedule.New(g, a)
	r0 := s.AddRegion(resources.Vec(100, 0, 0))
	// b scheduled BEFORE a in the region although a → b: cyclic orders.
	s.Tasks[0] = schedule.Assignment{Impl: 1, Target: schedule.Target{Kind: schedule.OnRegion, Index: r0}, Start: 200, End: 300}
	s.Tasks[1] = schedule.Assignment{Impl: 1, Target: schedule.Target{Kind: schedule.OnRegion, Index: r0}, Start: 0, End: 100}
	s.ComputeMakespan()
	if _, err := Execute(s); err == nil {
		t.Fatal("cyclic schedule executed without error")
	}
	if _, err := ASAP(s); err == nil {
		t.Fatal("cyclic schedule analysed without error")
	}
}

func TestSlackReporting(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 5})
	s := mustPA(t, g)
	r, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Slack(s); got != s.Makespan-r.Makespan {
		t.Errorf("Slack = %d", got)
	}
	if r.Events == 0 {
		t.Error("no events processed")
	}
}
