package sim

import (
	"fmt"

	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// ASAP computes the same executed timeline as Execute analytically: it
// builds the dependency network implied by the schedule's decisions
// (application edges with communication delays, per-processor and
// per-region orders, reconfiguration couplings, and the reconfigurator
// queue) and takes the longest path. Execute and ASAP must agree — the
// tests use this as a differential oracle for the event-driven simulator.
func ASAP(s *schedule.Schedule) (*Result, error) {
	return ASAPFrom(s, nil)
}

// ASAPFrom is ASAP with per-task release floors, the analytic counterpart
// of ExecuteFrom: start[t] is at least release[t] before the longest-path
// pass. A nil or short slice leaves the unmapped tasks unconstrained.
func ASAPFrom(s *schedule.Schedule, release []int64) (*Result, error) {
	n := s.Graph.N()
	total := n + len(s.Reconfs)
	succ := make([][]int, total)
	weight := make(map[[2]int]int64, 4*total)
	addEdge := func(u, v int, w int64) {
		key := [2]int{u, v}
		if old, ok := weight[key]; ok {
			if w > old {
				weight[key] = w
			}
			return
		}
		weight[key] = w
		succ[u] = append(succ[u], v)
	}
	dur := make([]int64, total)
	for t := 0; t < n; t++ {
		dur[t] = s.Impl(t).Time
	}
	for i, rc := range s.Reconfs {
		dur[n+i] = s.Regions[rc.Region].ReconfTime
	}

	// Application edges with communication delays.
	for _, e := range s.Graph.Edges() {
		addEdge(e[0], e[1], s.Graph.EdgeComm(e[0], e[1]))
	}
	// Processor and region orders.
	for p := 0; p < s.Arch.Processors; p++ {
		q := s.ProcessorTasks(p)
		for i := 1; i < len(q); i++ {
			addEdge(q[i-1], q[i], 0)
		}
	}
	for r := range s.Regions {
		q := s.RegionTasks(r)
		for i := 1; i < len(q); i++ {
			addEdge(q[i-1], q[i], 0)
		}
	}
	// Reconfiguration couplings and the reconfigurator queue.
	for i, rc := range s.Reconfs {
		if rc.InTask >= 0 {
			addEdge(rc.InTask, n+i, 0)
		}
		if rc.OutTask >= 0 {
			addEdge(n+i, rc.OutTask, 0)
		}
	}
	for _, queue := range assignChannels(s) {
		for i := 1; i < len(queue); i++ {
			addEdge(n+queue[i-1], n+queue[i], 0)
		}
	}

	order, err := taskgraph.TopoOrderAdj(total, succ, nil)
	if err != nil {
		return nil, fmt.Errorf("sim: schedule orders are cyclic: %w", err)
	}
	start := make([]int64, total)
	for t := 0; t < n && t < len(release); t++ {
		start[t] = release[t]
	}
	for _, u := range order {
		for _, v := range succ[u] {
			if f := start[u] + dur[u] + weight[[2]int{u, v}]; f > start[v] {
				start[v] = f
			}
		}
	}

	res := &Result{
		Start:       start[:n:n],
		End:         make([]int64, n),
		ReconfStart: start[n:],
		ReconfEnd:   make([]int64, len(s.Reconfs)),
	}
	for t := 0; t < n; t++ {
		res.End[t] = res.Start[t] + dur[t]
		if res.End[t] > res.Makespan {
			res.Makespan = res.End[t]
		}
	}
	for i := range s.Reconfs {
		res.ReconfEnd[i] = res.ReconfStart[i] + dur[n+i]
	}
	return res, nil
}
