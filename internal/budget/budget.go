// Package budget unifies the resource limits of the scheduling pipeline —
// wall-clock deadlines, search-node caps and cooperative cancellation —
// behind a single Budget type threaded through milp.Options,
// floorplan.Options, sched.Options/RandomOptions and isk.Options.
//
// Before this package each solver rolled its own deadline idiom with direct
// time.Now() comparisons; the reschedvet rawclock analyzer now rejects that
// pattern everywhere except here, so this package is the only place in the
// module that may compare the wall clock against a deadline.
//
// A nil *Budget is a valid receiver for every method and means "unlimited"
// (the obs idiom), so hot paths charge unconditionally:
//
//	if err := opt.Budget.Charge(1); err != nil {
//		return abort(err) // cancelled, deadline passed, or node cap hit
//	}
//
// Charge is designed for branch-and-bound inner loops: the cancellation
// flag and node cap are checked on every call (a couple of atomic loads),
// while the clock — the only expensive part — is consulted once every
// clockStride charges under the real clock and on every charge under an
// injected test clock, so a Cancel lands within microseconds and a deadline
// within a few hundred nodes.
//
// Budgets form a tree: WithTimeout derives a child with a tighter deadline
// that shares the parent's node accounting and observes the parent's
// cancellation, which is how PA-R's per-call TimeBudget nests inside an
// overall pipeline budget. Cancellation flows downward only: cancelling a
// parent trips every descendant, while cancelling a child retires just its
// own subtree — so a phase that derives a scoped child can (and must, see
// the lostcancel analyzer) `defer child.Cancel()` without ending the
// pipeline it nests in.
package budget

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"resched/internal/obs"
)

// Clock supplies the current time. Production budgets use time.Now; tests
// inject a manual clock (see internal/faultinject) so deadline behaviour is
// deterministic and instantaneous.
type Clock func() time.Time

// clockStride is how many Charge calls share one real-clock read. 64 keeps
// the amortised cost of a charge at a few atomic operations while bounding
// deadline-detection latency to well under a millisecond of search.
const clockStride = 64

// Reason classifies why a budget tripped.
type Reason int

const (
	// Cancelled means Cancel was called on the budget or an ancestor.
	Cancelled Reason = iota + 1
	// DeadlinePassed means the wall-clock deadline was reached.
	DeadlinePassed
	// NodeCapReached means the cumulative node cap was exhausted.
	NodeCapReached
)

// String names the reason for error messages and span tags.
func (r Reason) String() string {
	switch r {
	case Cancelled:
		return "cancelled"
	case DeadlinePassed:
		return "deadline passed"
	case NodeCapReached:
		return "node cap reached"
	default:
		return fmt.Sprintf("reason(%d)", int(r))
	}
}

// ErrExhausted is the umbrella sentinel: every budget failure matches it
// via errors.Is, regardless of the specific Reason.
var ErrExhausted = errors.New("budget exhausted")

// Error is the typed budget failure. errors.Is(err, ErrExhausted) matches
// any budget error; errors.Is(err, ErrCancelled) (or ErrDeadline,
// ErrNodeCap) matches the specific reason.
type Error struct {
	Reason Reason
}

// Error implements the error interface.
func (e *Error) Error() string { return "budget: " + e.Reason.String() }

// Is makes every *Error match ErrExhausted and any *Error with the same
// Reason, so callers can test for either the class or the cause.
func (e *Error) Is(target error) bool {
	if target == ErrExhausted {
		return true
	}
	t, ok := target.(*Error)
	return ok && t.Reason == e.Reason
}

// Canonical instances for use as errors.Is targets.
var (
	ErrCancelled = &Error{Reason: Cancelled}
	ErrDeadline  = &Error{Reason: DeadlinePassed}
	ErrNodeCap   = &Error{Reason: NodeCapReached}
)

// Options configure a new budget. The zero value means unlimited.
type Options struct {
	// Timeout is the wall-clock allowance from creation; 0 means none.
	Timeout time.Duration
	// Deadline is an absolute cut-off; the zero time means none. When both
	// Timeout and Deadline are set the earlier instant wins.
	Deadline time.Time
	// MaxNodes caps the cumulative search nodes charged across every solver
	// sharing this budget (and its WithTimeout children); 0 means none.
	MaxNodes int64
	// Clock overrides the time source. Nil means time.Now. Injected clocks
	// are consulted on every Charge (no striding) so fake-clock tests see
	// deadline trips at the exact node where the clock advanced.
	Clock Clock
	// Trace, when non-nil, receives one "budget.exhausted" flight-recorder
	// event the first time the budget (or any WithTimeout child — the note
	// is once per tree) fails a Charge or Check, tagged with the reason.
	// Recording never alters what Charge/Check return.
	Trace *obs.Trace
}

// shared is the state common to a budget and all WithTimeout children: node
// accounting and the exhaustion note propagate across the whole tree.
type shared struct {
	nodes atomic.Int64
	ticks atomic.Int64 // Charge calls since the last clock read
	// trace and noted implement the once-per-tree exhaustion event. They
	// live here (not on Budget) because WithTimeout copies the Budget
	// struct: a per-copy flag would fire once per child.
	trace *obs.Trace
	noted atomic.Bool
}

// cancelNode is one link in the downward-only cancellation chain. Each
// budget owns a node whose parent pointer leads to the budget it was derived
// from; a budget is cancelled when any node on its chain is tripped, so a
// parent's Cancel reaches every descendant while a child's Cancel stays
// invisible to its ancestors.
type cancelNode struct {
	flag   atomic.Bool
	parent *cancelNode
}

// tripped walks the chain towards the root.
func (c *cancelNode) tripped() bool {
	for n := c; n != nil; n = n.parent {
		if n.flag.Load() {
			return true
		}
	}
	return false
}

// Budget tracks one pipeline's resource allowance. Construct with New (or
// WithTimeout on an existing budget); a nil *Budget is valid and unlimited.
// All methods are safe for concurrent use — Cancel is expected to arrive
// from another goroutine.
type Budget struct {
	s        *shared
	cancel   *cancelNode
	clock    Clock
	deadline time.Time // zero means no deadline
	maxNodes int64     // 0 means no cap
	strided  bool      // real clock: read it every clockStride charges only
}

// New builds a budget from opt.
func New(opt Options) *Budget {
	b := &Budget{
		s:        &shared{trace: opt.Trace},
		cancel:   &cancelNode{},
		clock:    opt.Clock,
		maxNodes: opt.MaxNodes,
		strided:  opt.Clock == nil,
	}
	if b.clock == nil {
		b.clock = time.Now
	}
	b.deadline = opt.Deadline
	if opt.Timeout > 0 {
		d := b.clock().Add(opt.Timeout)
		if b.deadline.IsZero() || d.Before(b.deadline) {
			b.deadline = d
		}
	}
	return b
}

// WithTimeout derives a child budget whose deadline is at most d from now,
// sharing the receiver's node accounting and clock and observing its
// cancellation: cancelling the parent trips the child, nodes charged to the
// child count against the parent's cap, but the child's own Cancel retires
// only the child (and budgets derived from it) — the parent keeps running.
// Callers own the child's lifetime and should `defer child.Cancel()`; the
// lostcancel analyzer enforces this. A non-positive d leaves the deadline
// unchanged. On a nil receiver it is equivalent to New(Options{Timeout: d}).
func (b *Budget) WithTimeout(d time.Duration) *Budget {
	if b == nil {
		if d <= 0 {
			return nil
		}
		return New(Options{Timeout: d})
	}
	child := *b
	child.cancel = &cancelNode{parent: b.cancel}
	if d > 0 {
		dl := b.clock().Add(d)
		if child.deadline.IsZero() || dl.Before(child.deadline) {
			child.deadline = dl
		}
	}
	return &child
}

// Cancel trips the budget and every budget derived from it via WithTimeout:
// their next Charge or Check returns ErrCancelled. Ancestors are unaffected.
// Idempotent and safe from any goroutine; this is the cooperative-
// cancellation entry point.
func (b *Budget) Cancel() {
	if b == nil {
		return
	}
	b.cancel.flag.Store(true)
}

// Cancelled reports whether Cancel has been called on this budget or on an
// ancestor it was derived from.
func (b *Budget) Cancelled() bool {
	return b != nil && b.cancel.tripped()
}

// Nodes returns the cumulative nodes charged so far across the budget tree.
func (b *Budget) Nodes() int64 {
	if b == nil {
		return 0
	}
	return b.s.nodes.Load()
}

// Deadline returns the effective deadline and whether one is set.
func (b *Budget) Deadline() (time.Time, bool) {
	if b == nil {
		return time.Time{}, false
	}
	return b.deadline, !b.deadline.IsZero()
}

// Remaining returns the time left until the deadline (negative once it has
// passed) and whether a deadline is set at all.
func (b *Budget) Remaining() (time.Duration, bool) {
	if b == nil || b.deadline.IsZero() {
		return 0, false
	}
	return b.deadline.Sub(b.clock()), true
}

// Charge records n search nodes against the budget and reports whether the
// budget still has headroom. It is the per-node hook for B&B inner loops:
// cancellation and the node cap are verified on every call; the clock only
// every clockStride calls under the real clock (every call under an
// injected one). A nil budget accepts every charge.
func (b *Budget) Charge(n int64) error {
	if b == nil {
		return nil
	}
	if b.cancel.tripped() {
		return b.noteExhausted(ErrCancelled)
	}
	nodes := b.s.nodes.Add(n)
	if b.maxNodes > 0 && nodes > b.maxNodes {
		return b.noteExhausted(ErrNodeCap)
	}
	if !b.deadline.IsZero() {
		if b.strided && b.s.ticks.Add(1)%clockStride != 0 {
			return nil
		}
		if !b.clock().Before(b.deadline) {
			return b.noteExhausted(ErrDeadline)
		}
	}
	return nil
}

// Check verifies the budget without charging nodes, always consulting the
// clock. Use it at phase and attempt boundaries where the extra clock read
// is immaterial; inner loops should prefer Charge.
func (b *Budget) Check() error {
	if b == nil {
		return nil
	}
	if b.cancel.tripped() {
		return b.noteExhausted(ErrCancelled)
	}
	if b.maxNodes > 0 && b.s.nodes.Load() >= b.maxNodes {
		return b.noteExhausted(ErrNodeCap)
	}
	if !b.deadline.IsZero() && !b.clock().Before(b.deadline) {
		return b.noteExhausted(ErrDeadline)
	}
	return nil
}

// noteExhausted records the first failure of the budget tree in the flight
// recorder and passes the error through unchanged. Only the error paths pay
// for it: a budget with headroom never touches the trace.
func (b *Budget) noteExhausted(err *Error) error {
	if b.s.trace != nil && b.s.noted.CompareAndSwap(false, true) {
		b.s.trace.Event("budget.exhausted", obs.Str("reason", err.Reason.String()))
	}
	return err
}
