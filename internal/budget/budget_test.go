package budget

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced time source local to these tests; pipeline
// tests use faultinject.Clock, which behaves identically.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Charge(1 << 40); err != nil {
		t.Fatalf("nil budget Charge: %v", err)
	}
	if err := b.Check(); err != nil {
		t.Fatalf("nil budget Check: %v", err)
	}
	b.Cancel() // must not panic
	if b.Cancelled() {
		t.Fatal("nil budget reports cancelled")
	}
	if n := b.Nodes(); n != 0 {
		t.Fatalf("nil budget Nodes = %d", n)
	}
	if _, ok := b.Deadline(); ok {
		t.Fatal("nil budget has a deadline")
	}
	if _, ok := b.Remaining(); ok {
		t.Fatal("nil budget has remaining time")
	}
}

func TestCancel(t *testing.T) {
	b := New(Options{})
	if err := b.Check(); err != nil {
		t.Fatalf("fresh budget: %v", err)
	}
	b.Cancel()
	if !b.Cancelled() {
		t.Fatal("Cancelled false after Cancel")
	}
	for name, err := range map[string]error{"Charge": b.Charge(1), "Check": b.Check()} {
		if !errors.Is(err, ErrCancelled) {
			t.Errorf("%s after Cancel = %v, want ErrCancelled", name, err)
		}
		if !errors.Is(err, ErrExhausted) {
			t.Errorf("%s after Cancel does not match ErrExhausted", name)
		}
	}
}

func TestNodeCap(t *testing.T) {
	b := New(Options{MaxNodes: 100})
	for i := 0; i < 100; i++ {
		if err := b.Charge(1); err != nil {
			t.Fatalf("charge %d within cap: %v", i, err)
		}
	}
	err := b.Charge(1)
	if !errors.Is(err, ErrNodeCap) || !errors.Is(err, ErrExhausted) {
		t.Fatalf("charge past cap = %v, want ErrNodeCap", err)
	}
	if b.Nodes() != 101 {
		t.Fatalf("Nodes = %d, want 101", b.Nodes())
	}
	if !errors.Is(b.Check(), ErrNodeCap) {
		t.Fatalf("Check past cap = %v, want ErrNodeCap", b.Check())
	}
}

func TestDeadlineWithFakeClock(t *testing.T) {
	clk := newFakeClock()
	b := New(Options{Timeout: time.Second, Clock: clk.Now})
	// An injected clock is consulted on every charge — no striding — so the
	// very first charge after the deadline passes must trip.
	if err := b.Charge(1); err != nil {
		t.Fatalf("charge before deadline: %v", err)
	}
	clk.Advance(999 * time.Millisecond)
	if err := b.Charge(1); err != nil {
		t.Fatalf("charge 1ms before deadline: %v", err)
	}
	clk.Advance(time.Millisecond)
	err := b.Charge(1)
	if !errors.Is(err, ErrDeadline) || !errors.Is(err, ErrExhausted) {
		t.Fatalf("charge at deadline = %v, want ErrDeadline", err)
	}
	if rem, ok := b.Remaining(); !ok || rem != 0 {
		t.Fatalf("Remaining = %v,%v, want 0,true", rem, ok)
	}
}

func TestAbsoluteDeadline(t *testing.T) {
	clk := newFakeClock()
	dl := clk.Now().Add(time.Minute)
	b := New(Options{Deadline: dl, Clock: clk.Now})
	if got, ok := b.Deadline(); !ok || !got.Equal(dl) {
		t.Fatalf("Deadline = %v,%v, want %v,true", got, ok, dl)
	}
	// Timeout and Deadline combined: the earlier instant wins.
	b2 := New(Options{Deadline: dl, Timeout: time.Second, Clock: clk.Now})
	if got, _ := b2.Deadline(); !got.Equal(clk.Now().Add(time.Second)) {
		t.Fatalf("combined deadline = %v, want timeout to win", got)
	}
	clk.Advance(2 * time.Second)
	if err := b2.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("Check past combined deadline = %v", err)
	}
	if err := b.Check(); err != nil {
		t.Fatalf("Check before absolute deadline = %v", err)
	}
}

func TestStridedRealClockDeadline(t *testing.T) {
	// Under the real clock the deadline is detected within clockStride
	// charges even when it passed before the first one.
	b := New(Options{Deadline: time.Now().Add(-time.Hour)})
	for i := 1; i <= clockStride; i++ {
		if err := b.Charge(1); err != nil {
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("charge %d: %v, want ErrDeadline", i, err)
			}
			return
		}
	}
	t.Fatalf("expired deadline not detected within %d charges", clockStride)
}

func TestWithTimeoutSharesCancelAndNodes(t *testing.T) {
	clk := newFakeClock()
	parent := New(Options{MaxNodes: 10, Clock: clk.Now})
	child := parent.WithTimeout(time.Second)

	// Nodes charged to the child count against the parent's cap.
	if err := child.Charge(8); err != nil {
		t.Fatalf("child charge: %v", err)
	}
	if parent.Nodes() != 8 {
		t.Fatalf("parent Nodes = %d, want 8", parent.Nodes())
	}

	// The child's deadline does not constrain the parent.
	clk.Advance(2 * time.Second)
	if err := child.Check(); !errors.Is(err, ErrDeadline) {
		t.Fatalf("child past timeout = %v", err)
	}
	if err := parent.Check(); errors.Is(err, ErrDeadline) {
		t.Fatal("parent inherited the child's deadline")
	}

	if err := parent.Charge(5); !errors.Is(err, ErrNodeCap) {
		t.Fatalf("parent charge past shared cap = %v", err)
	}

	// Cancel flows downward only: the child's Cancel retires the child
	// without touching the parent, so `defer child.Cancel()` is always safe.
	child.Cancel()
	if !child.Cancelled() {
		t.Fatal("child not cancelled by its own Cancel")
	}
	if parent.Cancelled() {
		t.Fatal("child Cancel leaked upward to the parent")
	}
}

func TestCancelFlowsDownward(t *testing.T) {
	parent := New(Options{})
	child := parent.WithTimeout(time.Hour)
	grandchild := child.WithTimeout(time.Hour)
	sibling := parent.WithTimeout(time.Hour)

	child.Cancel()
	if !grandchild.Cancelled() {
		t.Fatal("grandchild survived its parent's Cancel")
	}
	if sibling.Cancelled() || parent.Cancelled() {
		t.Fatal("Cancel escaped the cancelled subtree")
	}
	if err := grandchild.Check(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("grandchild Check = %v, want ErrCancelled", err)
	}
	if err := sibling.Check(); err != nil {
		t.Fatalf("sibling Check = %v, want nil", err)
	}

	parent.Cancel()
	if !sibling.Cancelled() {
		t.Fatal("root Cancel did not reach the sibling subtree")
	}
}

func TestWithTimeoutTightensOnly(t *testing.T) {
	clk := newFakeClock()
	parent := New(Options{Timeout: time.Second, Clock: clk.Now})
	loose := parent.WithTimeout(time.Hour)
	pd, _ := parent.Deadline()
	if ld, _ := loose.Deadline(); !ld.Equal(pd) {
		t.Fatalf("child deadline %v loosened past parent %v", ld, pd)
	}
	if same := parent.WithTimeout(0); func() time.Time { d, _ := same.Deadline(); return d }() != pd {
		t.Fatal("non-positive timeout changed the deadline")
	}
}

func TestWithTimeoutOnNil(t *testing.T) {
	var b *Budget
	if b.WithTimeout(0) != nil {
		t.Fatal("nil.WithTimeout(0) should stay nil (unlimited)")
	}
	child := b.WithTimeout(time.Hour)
	if child == nil {
		t.Fatal("nil.WithTimeout(1h) returned nil")
	}
	if _, ok := child.Deadline(); !ok {
		t.Fatal("derived budget has no deadline")
	}
	if err := child.Check(); err != nil {
		t.Fatalf("derived budget Check: %v", err)
	}
}

func TestErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err   error
		match error
	}{
		{ErrCancelled, ErrExhausted},
		{ErrDeadline, ErrExhausted},
		{ErrNodeCap, ErrExhausted},
		{fmt.Errorf("sched: %w", ErrCancelled), ErrCancelled},
		{fmt.Errorf("sched: %w", ErrCancelled), ErrExhausted},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.match) {
			t.Errorf("errors.Is(%v, %v) = false", c.err, c.match)
		}
	}
	if errors.Is(ErrCancelled, ErrDeadline) {
		t.Error("ErrCancelled matches ErrDeadline")
	}
	if errors.Is(ErrExhausted, ErrCancelled) {
		t.Error("bare ErrExhausted matches the specific ErrCancelled")
	}
	for _, e := range []*Error{ErrCancelled, ErrDeadline, ErrNodeCap} {
		if e.Error() == "" {
			t.Error("empty error string")
		}
	}
	if (Reason(99)).String() == "" {
		t.Error("unknown reason has empty String")
	}
}

func TestConcurrentCancelLandsQuickly(t *testing.T) {
	b := New(Options{})
	done := make(chan int64, 1)
	go func() {
		var n int64
		for b.Charge(1) == nil {
			n++
		}
		done <- n
	}()
	time.Sleep(5 * time.Millisecond)
	b.Cancel()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("worker did not observe Cancel within 1s")
	}
}
