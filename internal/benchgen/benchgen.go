// Package benchgen generates the synthetic benchmark suite of §VII-A: 100
// pseudo-random task graphs organised in 10 groups of 10, with 10–100 tasks
// per graph. Every task offers one software implementation and three
// hardware implementations with heterogeneous CLB/BRAM/DSP requirements
// trading execution time against area; different tasks may share a common
// implementation so that module reuse can be exercised.
//
// The authors' original instances are not public; this generator reproduces
// the documented recipe deterministically from a seed, sized so that the
// ZedBoard target experiences real FPGA contention for medium and large
// graphs (the regime in which the paper's effects appear).
package benchgen

import (
	"fmt"
	"math/rand"

	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// Config controls one generated task graph.
type Config struct {
	// Tasks is |T|.
	Tasks int
	// Seed drives all randomness; equal configs generate equal graphs.
	Seed int64
	// TypePool is the number of distinct module types tasks draw their
	// implementations from; tasks of the same type share implementation
	// names (module reuse). 0 derives max(4, Tasks/3).
	TypePool int
	// EdgeProb is the probability of a dependency between tasks in
	// consecutive layers (0 = default 0.45).
	EdgeProb float64
	// Layers is the DAG depth (0 = derived from Tasks for a mid-parallel
	// shape).
	Layers int
	// CommMax, when positive, annotates every dependency with a uniform
	// random communication time in [0, CommMax] ticks (the §VIII
	// future-work extension; the paper's own suite folds transfer times
	// into execution times, so the default is 0).
	CommMax int64
}

// moduleType is a reusable implementation menu shared by tasks of one type.
type moduleType struct {
	impls []taskgraph.Implementation
}

// Generate builds one pseudo-random task graph. It fails only on a config
// the recipe cannot realise (e.g. a negative CommMax would, but is treated
// as zero); the error return exists so library callers never see a panic.
func Generate(cfg Config) (*taskgraph.Graph, error) {
	if cfg.Tasks <= 0 {
		cfg.Tasks = 10
	}
	if cfg.TypePool == 0 {
		// Most tasks get a unique module; a minority share one, so module
		// reuse is exploitable but not dominant (§VII-A just requires that
		// "different tasks can share a common implementation").
		cfg.TypePool = 3 * cfg.Tasks
		if cfg.TypePool < 4 {
			cfg.TypePool = 4
		}
	}
	if cfg.EdgeProb == 0 {
		cfg.EdgeProb = 0.45
	}
	if cfg.Layers == 0 {
		// Roughly √(2n) layers: medium parallelism, neither a chain nor a
		// fully parallel bag — the paper notes both extremes compress the
		// improvement.
		cfg.Layers = 1
		for cfg.Layers*cfg.Layers < 2*cfg.Tasks {
			cfg.Layers++
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	types := make([]moduleType, cfg.TypePool)
	for i := range types {
		types[i] = makeType(rng, i)
	}

	g := taskgraph.New(fmt.Sprintf("synthetic-n%d-s%d", cfg.Tasks, cfg.Seed))
	layerOf := make([]int, cfg.Tasks)
	for t := 0; t < cfg.Tasks; t++ {
		// Spread tasks over layers; keep layer 0 non-empty.
		if t < cfg.Layers {
			layerOf[t] = t
		} else {
			layerOf[t] = rng.Intn(cfg.Layers)
		}
		ty := rng.Intn(len(types))
		g.AddTask(fmt.Sprintf("t%d", t), types[ty].impls...)
	}
	// Edges: from random tasks in earlier layers, preferring the previous
	// layer; every task in layer > 0 gets at least one predecessor so the
	// graph stays a connected pipeline rather than a bag of islands.
	byLayer := make([][]int, cfg.Layers)
	for t, l := range layerOf {
		byLayer[l] = append(byLayer[l], t)
	}
	for l := 1; l < cfg.Layers; l++ {
		prev := byLayer[l-1]
		if len(prev) == 0 {
			continue
		}
		for _, t := range byLayer[l] {
			comm := func() int64 {
				if cfg.CommMax <= 0 {
					return 0
				}
				return rng.Int63n(cfg.CommMax + 1)
			}
			var edgeErr error
			addEdge := func(from int) {
				if err := g.AddEdgeComm(from, t, comm()); err != nil && edgeErr == nil {
					edgeErr = fmt.Errorf("benchgen: %w", err)
				}
			}
			linked := false
			for _, p := range prev {
				if rng.Float64() < cfg.EdgeProb {
					addEdge(p)
					linked = true
				}
			}
			if !linked {
				addEdge(prev[rng.Intn(len(prev))])
			}
			// Occasional long-range dependency.
			if l >= 2 && rng.Float64() < 0.2 {
				ll := rng.Intn(l - 1)
				if len(byLayer[ll]) > 0 {
					addEdge(byLayer[ll][rng.Intn(len(byLayer[ll]))])
				}
			}
			if edgeErr != nil {
				return nil, edgeErr
			}
		}
	}
	return g, nil
}

// makeType builds one module type: three hardware implementations trading
// time against area (as HLS loop-unrolling factors would) plus one software
// implementation several times slower than the fastest hardware one.
func makeType(rng *rand.Rand, id int) moduleType {
	// Fast hardware variant.
	fastTime := int64(60 + rng.Intn(440)) // 60–500 µs
	clb := 300 + rng.Intn(1300)           // 300–1600 slices
	var bram, dsp int
	switch rng.Intn(3) {
	case 0: // logic-heavy
	case 1: // DSP-heavy kernel
		dsp = 8 + rng.Intn(40)
	case 2: // memory-heavy kernel
		bram = 4 + rng.Intn(16)
	}
	scale := func(f float64, v int) int {
		s := int(float64(v) * f)
		if v > 0 && s == 0 {
			s = 1
		}
		return s
	}
	mk := func(variant string, tf, rf float64) taskgraph.Implementation {
		return taskgraph.Implementation{
			Name: fmt.Sprintf("mod%d_%s", id, variant),
			Kind: taskgraph.HW,
			Time: int64(float64(fastTime) * tf),
			Res:  resources.Vec(scale(rf, clb), scale(rf, bram), scale(rf, dsp)),
		}
	}
	swFactor := 4 + rng.Float64()*4 // software 4–8× slower than fast HW
	sw := taskgraph.Implementation{
		Name: fmt.Sprintf("mod%d_sw", id),
		Kind: taskgraph.SW,
		Time: int64(float64(fastTime) * swFactor),
	}
	return moduleType{impls: []taskgraph.Implementation{
		sw,
		mk("hwfast", 1.0, 1.0),  // fastest, largest
		mk("hwmid", 1.7, 0.55),  // balanced
		mk("hwsmall", 2.6, 0.3), // slowest, most resource-efficient
	}}
}

// SuiteEntry is one instance of the 100-graph evaluation suite.
type SuiteEntry struct {
	// Group is the task count of the instance's group (10, 20, …, 100).
	Group int
	// Index is the instance index within its group (0–9).
	Index int
	// Graph is the task graph.
	Graph *taskgraph.Graph
}

// Suite generates the full §VII-A evaluation suite: 10 groups × 10 graphs,
// group g holding graphs of 10·(g+1) tasks.
func Suite(seed int64) ([]SuiteEntry, error) {
	var out []SuiteEntry
	for group := 1; group <= 10; group++ {
		for idx := 0; idx < 10; idx++ {
			cfg := Config{
				Tasks: 10 * group,
				Seed:  seed + int64(group*1000+idx),
			}
			g, err := Generate(cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, SuiteEntry{
				Group: 10 * group,
				Index: idx,
				Graph: g,
			})
		}
	}
	return out, nil
}

// Groups lists the distinct task counts of a suite in ascending order.
func Groups(entries []SuiteEntry) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range entries {
		if !seen[e.Group] {
			seen[e.Group] = true
			out = append(out, e.Group)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
