package benchgen

import (
	"resched/internal/taskgraph"

	"testing"
)

func TestGenerateValid(t *testing.T) {
	for _, n := range []int{1, 5, 10, 50, 100} {
		g := gen(t, Config{Tasks: n, Seed: 42})
		if g.N() != n {
			t.Fatalf("n=%d: got %d tasks", n, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen(t, Config{Tasks: 30, Seed: 7})
	b := gen(t, Config{Tasks: 30, Seed: 7})
	if a.N() != b.N() || len(a.Edges()) != len(b.Edges()) {
		t.Fatal("same seed, different shape")
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
	for i := range a.Tasks {
		for j := range a.Tasks[i].Impls {
			if a.Tasks[i].Impls[j] != b.Tasks[i].Impls[j] {
				t.Fatalf("task %d impl %d differs", i, j)
			}
		}
	}
	c := gen(t, Config{Tasks: 30, Seed: 8})
	if len(c.Edges()) == len(a.Edges()) {
		same := true
		ce := c.Edges()
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical edge sets")
		}
	}
}

func TestImplementationMenu(t *testing.T) {
	g := gen(t, Config{Tasks: 40, Seed: 3})
	for _, task := range g.Tasks {
		if len(task.Impls) != 4 {
			t.Fatalf("task %d has %d impls, want 4 (1 SW + 3 HW)", task.ID, len(task.Impls))
		}
		if len(task.SWImpls()) != 1 || len(task.HWImpls()) != 3 {
			t.Fatalf("task %d impl kinds wrong", task.ID)
		}
		// The HW menu trades time against area monotonically.
		hw := task.HWImpls()
		for k := 1; k < len(hw); k++ {
			a, b := task.Impls[hw[k-1]], task.Impls[hw[k]]
			if a.Time >= b.Time {
				t.Fatalf("task %d: HW times not increasing (%d, %d)", task.ID, a.Time, b.Time)
			}
			if a.Res.Total() <= b.Res.Total() {
				t.Fatalf("task %d: HW areas not decreasing", task.ID)
			}
		}
		// Software is slower than the fastest hardware.
		sw := task.Impls[task.SWImpls()[0]]
		if sw.Time <= task.Impls[hw[0]].Time {
			t.Fatalf("task %d: SW (%d) not slower than fast HW (%d)", task.ID, sw.Time, task.Impls[hw[0]].Time)
		}
	}
}

func TestSharedImplementations(t *testing.T) {
	g := gen(t, Config{Tasks: 60, Seed: 5})
	names := map[string][]int{}
	for _, task := range g.Tasks {
		for _, i := range task.HWImpls() {
			names[task.Impls[i].Name] = append(names[task.Impls[i].Name], task.ID)
		}
	}
	shared := 0
	for _, tasks := range names {
		if len(tasks) > 1 {
			shared++
		}
	}
	if shared == 0 {
		t.Error("no shared implementations; module reuse cannot be exercised")
	}
}

func TestConnectivity(t *testing.T) {
	g := gen(t, Config{Tasks: 50, Seed: 11})
	// Every non-source task has a predecessor by construction.
	depth, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 3 {
		t.Errorf("graph too shallow: depth %d", maxDepth)
	}
	// Not a chain either.
	if maxDepth >= g.N()-1 {
		t.Errorf("graph degenerated into a chain")
	}
}

func TestSuiteShape(t *testing.T) {
	suite := mustSuite(t, 2016)
	if len(suite) != 100 {
		t.Fatalf("suite has %d entries, want 100", len(suite))
	}
	counts := map[int]int{}
	for _, e := range suite {
		counts[e.Group]++
		if e.Graph.N() != e.Group {
			t.Fatalf("group %d entry has %d tasks", e.Group, e.Graph.N())
		}
		if err := e.Graph.Validate(); err != nil {
			t.Fatalf("suite graph invalid: %v", err)
		}
	}
	for g := 10; g <= 100; g += 10 {
		if counts[g] != 10 {
			t.Fatalf("group %d has %d graphs, want 10", g, counts[g])
		}
	}
	groups := Groups(suite)
	want := []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if len(groups) != len(want) {
		t.Fatalf("Groups = %v", groups)
	}
	for i := range want {
		if groups[i] != want[i] {
			t.Fatalf("Groups = %v", groups)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := gen(t, Config{})
	if g.N() != 10 {
		t.Errorf("default Tasks = %d, want 10", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// gen generates a graph or fails the test.
func gen(tb testing.TB, cfg Config) *taskgraph.Graph {
	tb.Helper()
	g, err := Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// mustSuite generates the evaluation suite or fails the test.
func mustSuite(tb testing.TB, seed int64) []SuiteEntry {
	tb.Helper()
	suite, err := Suite(seed)
	if err != nil {
		tb.Fatal(err)
	}
	return suite
}
