package experiments

import (
	"errors"
	"testing"
	"time"

	"resched/internal/budget"
	"resched/internal/obs"
)

// TestRunWorkersPreservesOrderAndResults pins the indexed fan-in: a pooled
// run must return the same instances in the same suite order as a
// sequential run, with identical makespans for the deterministic
// algorithms. (PA-R runs under a wall-clock budget, so only its success is
// checked, not its makespan.)
func TestRunWorkersPreservesOrderAndResults(t *testing.T) {
	cfg := Config{
		PerGroup:     2,
		Groups:       []int{10, 20},
		Validate:     true,
		MinParBudget: 5 * time.Millisecond,
	}
	seq, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	var calls int
	par, err := Run(cfg, func(done, total int) {
		calls++
		if total != len(seq) {
			t.Fatalf("progress total = %d, want %d", total, len(seq))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(seq) {
		t.Errorf("progress called %d times, want %d", calls, len(seq))
	}
	if len(par) != len(seq) {
		t.Fatalf("pooled run returned %d instances, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		s, p := seq[i], par[i]
		if s.Group != p.Group || s.Index != p.Index {
			t.Fatalf("slot %d: pooled order (%d,%d) differs from sequential (%d,%d)",
				i, p.Group, p.Index, s.Group, s.Index)
		}
		if s.PA.Makespan != p.PA.Makespan || s.IS1.Makespan != p.IS1.Makespan || s.IS5.Makespan != p.IS5.Makespan {
			t.Errorf("slot %d: deterministic makespans differ: seq PA/IS1/IS5 = %d/%d/%d, pooled %d/%d/%d",
				i, s.PA.Makespan, s.IS1.Makespan, s.IS5.Makespan, p.PA.Makespan, p.IS1.Makespan, p.IS5.Makespan)
		}
		for name, ar := range map[string]AlgoResult{"PA": p.PA, "PAR": p.PAR, "IS1": p.IS1, "IS5": p.IS5} {
			if ar.Err != nil {
				t.Errorf("slot %d %s: %v", i, name, ar.Err)
			}
		}
	}
}

// TestRunWorkersRootSpans asserts concurrent instances record detached root
// spans: one experiment.instance span per instance, each parentless.
func TestRunWorkersRootSpans(t *testing.T) {
	tr := obs.New()
	res, err := Run(Config{
		PerGroup: 2, Groups: []int{10}, Workers: 2,
		MinParBudget: 5 * time.Millisecond, Trace: tr,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	instances := 0
	for _, sp := range snap.Spans {
		if sp.Name != "experiment.instance" {
			continue
		}
		instances++
		if sp.Parent != -1 || sp.Depth != 0 {
			t.Errorf("concurrent instance span has parent %d depth %d, want detached root", sp.Parent, sp.Depth)
		}
	}
	if instances != len(res) {
		t.Errorf("recorded %d instance spans for %d instances", instances, len(res))
	}
}

// TestRunWorkersBudgetEarlyStop mirrors the sequential early-stop contract:
// on budget exhaustion the pooled run returns the completed prefix (possibly
// empty) and a typed error.
func TestRunWorkersBudgetEarlyStop(t *testing.T) {
	bud := budget.New(budget.Options{})
	bud.Cancel()
	res, err := Run(Config{
		PerGroup: 2, Groups: []int{10, 20}, Workers: 2,
		MinParBudget: 5 * time.Millisecond, Budget: bud,
	}, nil)
	if err == nil {
		t.Fatal("cancelled budget did not stop the run")
	}
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("error %v does not match budget.ErrExhausted", err)
	}
	if len(res) != 0 {
		t.Errorf("cancelled-before-start run returned %d instances", len(res))
	}
}

// TestRunParallelismWorkers pins that the DAG-shape sweep aggregates in
// instance order regardless of worker count: the deterministic IS-5 means
// must match between a sequential and a pooled sweep.
func TestRunParallelismWorkers(t *testing.T) {
	base := ParallelismConfig{
		Tasks: 20, Instances: 2, Layers: []int{10, 4},
		ParBudget: 5 * time.Millisecond,
	}
	seq, err := RunParallelism(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Workers = 3
	par, err := RunParallelism(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("point counts differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Layers != par[i].Layers || seq[i].MeanIS5 != par[i].MeanIS5 {
			t.Errorf("point %d: sequential (layers=%d IS5=%v) vs pooled (layers=%d IS5=%v)",
				i, seq[i].Layers, seq[i].MeanIS5, par[i].Layers, par[i].MeanIS5)
		}
	}
}
