package experiments

import (
	"fmt"
	"io"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/solve"
)

// ContentionConfig drives the contention-sweep study: the paper repeatedly
// attributes PA's gains to FPGA contention ("for applications with a small
// number of tasks, there is less contention on the FPGA and thus the
// benefits of the proposed scheduler are less evident"); this experiment
// varies the device size with the workload fixed to expose that directly.
type ContentionConfig struct {
	// Seed generates the instances (default 2016).
	Seed int64
	// Tasks is the fixed task count (default 40).
	Tasks int
	// Instances per scale factor (default 5).
	Instances int
	// Factors are the device scale factors (default 0.5, 0.75, 1, 1.5, 2).
	Factors []float64
}

// ContentionPoint is the aggregate at one device scale.
type ContentionPoint struct {
	Factor float64
	// DemandRatio is total fast-implementation CLB demand over device CLB
	// capacity — the contention proxy.
	DemandRatio float64
	// MeanPA, MeanIS1 and MeanPAR are mean makespans.
	MeanPA, MeanIS1, MeanPAR float64
	// PAvsIS1Pct and PARvsIS1Pct are mean paired improvements.
	PAvsIS1Pct, PARvsIS1Pct float64
}

// RunContention sweeps device sizes and reports improvements per scale.
func RunContention(cfg ContentionConfig) ([]ContentionPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2016
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 40
	}
	if cfg.Instances == 0 {
		cfg.Instances = 5
	}
	if len(cfg.Factors) == 0 {
		cfg.Factors = []float64{0.5, 0.75, 1.0, 1.5, 2.0}
	}
	var out []ContentionPoint
	for _, f := range cfg.Factors {
		a, err := arch.ScaledZedBoard(f)
		if err != nil {
			return nil, err
		}
		pt := ContentionPoint{Factor: f}
		var paSum, isSum, parSum, impSum, rimpSum float64
		count := 0
		for idx := 0; idx < cfg.Instances; idx++ {
			g, err := benchgen.Generate(benchgen.Config{Tasks: cfg.Tasks, Seed: cfg.Seed + int64(idx)})
			if err != nil {
				return nil, err
			}
			// Contention proxy: total fast-HW CLB demand / device CLB.
			var demand int
			for _, task := range g.Tasks {
				hw := task.HWImpls()
				if len(hw) > 0 {
					demand += task.Impls[hw[0]].Res[0]
				}
			}
			pt.DemandRatio += float64(demand) / float64(a.MaxRes[0])

			pa, err := runSolver("pa", g, a, solve.Options{})
			if err != nil {
				return nil, fmt.Errorf("contention factor %v: PA: %w", f, err)
			}
			is1, err := runSolver("is1", g, a, solve.Options{ModuleReuse: true})
			if err != nil {
				return nil, fmt.Errorf("contention factor %v: IS-1: %w", f, err)
			}
			par, err := runSolver("par", g, a, solve.Options{
				TimeBudget: 50 * time.Millisecond, Seed: cfg.Seed + int64(idx),
			})
			if err != nil {
				return nil, fmt.Errorf("contention factor %v: PA-R: %w", f, err)
			}
			paSum += float64(pa.Makespan)
			isSum += float64(is1.Makespan)
			parSum += float64(par.Makespan)
			impSum += 100 * float64(is1.Makespan-pa.Makespan) / float64(is1.Makespan)
			rimpSum += 100 * float64(is1.Makespan-par.Makespan) / float64(is1.Makespan)
			count++
		}
		n := float64(count)
		pt.DemandRatio /= n
		pt.MeanPA = paSum / n
		pt.MeanIS1 = isSum / n
		pt.MeanPAR = parSum / n
		pt.PAvsIS1Pct = impSum / n
		pt.PARvsIS1Pct = rimpSum / n
		out = append(out, pt)
	}
	return out, nil
}

// WriteContention renders the sweep.
func WriteContention(w io.Writer, points []ContentionPoint) {
	fprintf(w, "CONTENTION SWEEP — improvements vs device size (fixed workload)\n")
	fprintf(w, "%8s %10s %10s %10s %10s %12s %12s\n",
		"scale", "demand/cap", "PA", "IS-1", "PA-R", "PA vs IS-1", "PA-R vs IS-1")
	for _, p := range points {
		fprintf(w, "%8.2f %10.2f %10.0f %10.0f %10.0f %+11.1f%% %+11.1f%%\n",
			p.Factor, p.DemandRatio, p.MeanPA, p.MeanIS1, p.MeanPAR, p.PAvsIS1Pct, p.PARvsIS1Pct)
	}
}
