package experiments

import (
	"fmt"
	"io"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/solve"
)

// OptGapConfig drives the optimality-gap study: on instances small enough
// for the exhaustive reference (package exact), how far from the best
// non-delay schedule do the heuristics land? The paper cannot report this
// (its exact MILP never terminates beyond toy sizes); with the fast
// reproduction substrate the measurement becomes feasible.
type OptGapConfig struct {
	// Seed generates the instances (default 2016).
	Seed int64
	// Sizes are the task counts to sample (default 5, 7, 9).
	Sizes []int
	// Instances per size (default 4).
	Instances int
	// ParBudget is PA-R's time budget per instance (default 30 ms).
	ParBudget time.Duration
}

// OptGapPoint aggregates one instance size.
type OptGapPoint struct {
	Tasks int
	N     int
	// Proven counts instances where the reference search completed.
	Proven int
	// Mean gaps over the reference makespan, in percent (0 = optimal).
	GapPA, GapPAR, GapIS1, GapIS5 float64
}

// RunOptGap measures heuristic gaps against the exhaustive reference.
func RunOptGap(cfg OptGapConfig) ([]OptGapPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2016
	}
	if len(cfg.Sizes) == 0 {
		cfg.Sizes = []int{5, 7, 9}
	}
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if cfg.ParBudget == 0 {
		cfg.ParBudget = 30 * time.Millisecond
	}
	// The exhaustive reference advertises its instance-size ceiling through
	// the registry, so the sweep can validate sizes without importing it.
	maxTasks := 0
	if s, err := solve.Get("exact"); err == nil {
		if m, ok := s.(interface{ MaxTasks() int }); ok {
			maxTasks = m.MaxTasks()
		}
	}
	// The small MicroZed device keeps even tiny instances contended, so
	// the heuristics actually have decisions to get wrong.
	a := arch.MicroZed7010()
	var out []OptGapPoint
	for _, n := range cfg.Sizes {
		if maxTasks > 0 && n > maxTasks {
			return nil, fmt.Errorf("experiments: size %d exceeds the exact-search limit %d", n, maxTasks)
		}
		pt := OptGapPoint{Tasks: n}
		for idx := 0; idx < cfg.Instances; idx++ {
			g, err := benchgen.Generate(benchgen.Config{Tasks: n, Seed: cfg.Seed + int64(100*n+idx)})
			if err != nil {
				return nil, err
			}
			ref, err := runSolver("exact", g, a, solve.Options{ModuleReuse: true})
			if err != nil {
				return nil, fmt.Errorf("optgap n=%d: exact: %w", n, err)
			}
			if ref.Exact.Proven {
				pt.Proven++
			}
			gap := func(mk int64) float64 {
				return 100 * float64(mk-ref.Makespan) / float64(ref.Makespan)
			}
			pa, err := runSolver("pa", g, a, solve.Options{SkipFloorplan: true})
			if err != nil {
				return nil, err
			}
			par, err := runSolver("par", g, a, solve.Options{TimeBudget: cfg.ParBudget, Seed: cfg.Seed + int64(idx)})
			if err != nil {
				return nil, err
			}
			is1, err := runSolver("is1", g, a, solve.Options{ModuleReuse: true, SkipFloorplan: true})
			if err != nil {
				return nil, err
			}
			is5, err := runSolver("is5", g, a, solve.Options{ModuleReuse: true, SkipFloorplan: true})
			if err != nil {
				return nil, err
			}
			pt.GapPA += gap(pa.Makespan)
			pt.GapPAR += gap(par.Makespan)
			pt.GapIS1 += gap(is1.Makespan)
			pt.GapIS5 += gap(is5.Makespan)
			pt.N++
		}
		f := float64(pt.N)
		pt.GapPA /= f
		pt.GapPAR /= f
		pt.GapIS1 /= f
		pt.GapIS5 /= f
		out = append(out, pt)
	}
	return out, nil
}

// WriteOptGap renders the gaps.
func WriteOptGap(w io.Writer, points []OptGapPoint) {
	fprintf(w, "OPTIMALITY GAPS — heuristics vs exhaustive non-delay reference\n")
	fprintf(w, "%8s %8s %8s %10s %10s %10s %10s\n",
		"# Tasks", "N", "proven", "PA", "PA-R", "IS-1", "IS-5")
	for _, p := range points {
		fprintf(w, "%8d %8d %8d %+9.1f%% %+9.1f%% %+9.1f%% %+9.1f%%\n",
			p.Tasks, p.N, p.Proven, p.GapPA, p.GapPAR, p.GapIS1, p.GapIS5)
	}
}
