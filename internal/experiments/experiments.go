// Package experiments regenerates the paper's evaluation artefacts
// (Table I and Figures 2–6 of §VII) on the synthetic benchmark suite: it
// runs PA, PA-R, IS-1 and IS-5 over the 100-graph suite, aggregates
// per-group statistics, and renders the same rows and series the paper
// reports.
//
// Every algorithm column is dispatched through the unified solve engine
// (internal/solve): the harness names a registered solver and hands it one
// cross-cutting Options value, so adding an algorithm to the evaluation is
// a registry lookup, not a new scheduler-specific code path.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// runSolver dispatches one registered solver on an instance through the
// unified solve engine. It is the single entry point every experiment in
// this package schedules through.
func runSolver(name string, g *taskgraph.Graph, a *arch.Architecture, opts solve.Options) (*solve.Result, error) {
	s, err := solve.Get(name)
	if err != nil {
		return nil, err
	}
	return s.Solve(&solve.Request{Graph: g, Arch: a, Options: opts})
}

// Config drives a full evaluation run.
type Config struct {
	// Seed generates the benchmark suite (default 2016).
	Seed int64
	// PerGroup caps the instances evaluated per group (0 = all 10). The
	// quick mode of cmd/experiments uses a smaller value.
	PerGroup int
	// Groups restricts the task-count groups (nil = all ten).
	Groups []int
	// Arch is the target platform (nil = ZedBoard).
	Arch *arch.Architecture
	// ParBudgetFactor scales PA-R's time budget relative to the measured
	// IS-5 runtime on the same instance (default 1.0, the paper's "same
	// amount of time" protocol).
	ParBudgetFactor float64
	// MinParBudget floors PA-R's budget so tiny IS-5 runtimes still allow
	// a meaningful search (default 20ms).
	MinParBudget time.Duration
	// Validate re-checks every schedule with the independent checker.
	Validate bool
	// Budget, when non-nil, bounds the whole evaluation: it is forwarded
	// into every scheduler (so a cancel lands mid-search) and checked at
	// every instance boundary. On exhaustion Run stops early and returns
	// the instances completed so far alongside an error matching
	// budget.ErrExhausted.
	Budget *budget.Budget
	// Faults, when armed, is forwarded into every scheduler to drive
	// failure paths deterministically.
	Faults *faultinject.Set
	// Robust additionally runs the sched.Robust degradation ladder on each
	// instance and records which rung fired (InstanceResult.Robust).
	Robust bool
	// Trace, when non-nil, records one span per (instance, algorithm) pair
	// and forwards the trace into every scheduler so their attempt, phase
	// and window spans land in the same timeline. A nil trace is a no-op.
	// With Workers > 1 each instance records a detached root span instead
	// (obs.StartRoot) and the inner schedulers are not traced: the span
	// nesting stack is a single sequential chain that concurrent instances
	// would corrupt.
	Trace *obs.Trace
	// Workers bounds the number of instances evaluated concurrently
	// (0 or 1 = sequential, the historical behaviour). Results keep their
	// suite order regardless of completion order (indexed fan-in). Note
	// that concurrent instances share the machine, so the per-algorithm
	// wall-clock columns are only comparable within a run at a fixed
	// worker count — and since PA-R is an anytime search under a
	// wall-clock budget, its column can shift too (sharing cores buys
	// each instance fewer iterations). The deterministic PA and IS-k
	// columns are identical at any worker count.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 2016
	}
	if c.Arch == nil {
		c.Arch = arch.ZedBoard()
	}
	if c.ParBudgetFactor == 0 {
		c.ParBudgetFactor = 1.0
	}
	if c.MinParBudget == 0 {
		c.MinParBudget = 20 * time.Millisecond
	}
	return c
}

// InstanceResult holds the outcome of all four algorithms on one instance.
type InstanceResult struct {
	Group, Index int
	Graph        *taskgraph.Graph

	PA, PAR, IS1, IS5 AlgoResult

	// Robust is recorded only when Config.Robust is set.
	Robust *RobustResult
}

// AlgoResult is one algorithm's outcome on one instance.
type AlgoResult struct {
	Makespan int64
	// Total is the wall-clock runtime; for PA and IS-k Scheduling and
	// Floorplanning split it as in Table I.
	Total, Scheduling, Floorplanning time.Duration
	// Err records a failure (nil otherwise); failed runs are excluded
	// from aggregation.
	Err error
}

// Run executes the four algorithms over the configured slice of the suite.
// The progress callback (may be nil) is invoked after each instance.
func Run(cfg Config, progress func(done, total int)) ([]InstanceResult, error) {
	cfg = cfg.withDefaults()
	suite, err := benchgen.Suite(cfg.Seed)
	if err != nil {
		return nil, err
	}
	groups := map[int]bool{}
	for _, g := range cfg.Groups {
		groups[g] = true
	}
	var selected []benchgen.SuiteEntry
	perGroup := map[int]int{}
	for _, e := range suite {
		if len(groups) > 0 && !groups[e.Group] {
			continue
		}
		if cfg.PerGroup > 0 && perGroup[e.Group] >= cfg.PerGroup {
			continue
		}
		perGroup[e.Group]++
		selected = append(selected, e)
	}
	if cfg.Workers > 1 {
		return runParallel(cfg, selected, progress)
	}
	var out []InstanceResult
	for i, e := range selected {
		if berr := cfg.Budget.Check(); berr != nil {
			// Early stop: hand back what completed with the typed reason
			// so callers can aggregate the partial run.
			return out, fmt.Errorf("experiments: stopped after %d/%d instances: %w",
				len(out), len(selected), berr)
		}
		r, err := runInstance(cfg, e)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
		if progress != nil {
			progress(i+1, len(selected))
		}
	}
	return out, nil
}

// runParallel evaluates the selected instances on a bounded worker pool.
// Each worker claims the next undispatched instance and writes its result
// into that instance's slot, so the returned slice keeps suite order no
// matter how completions interleave. The progress callback sees completion
// counts (not suite positions) and may be called from worker goroutines.
func runParallel(cfg Config, selected []benchgen.SuiteEntry, progress func(done, total int)) ([]InstanceResult, error) {
	workers := cfg.Workers
	if workers > len(selected) {
		workers = len(selected)
	}
	// Inner schedulers must not push onto the trace's sequential nesting
	// stack from several goroutines; instances record detached root spans
	// here instead.
	innerCfg := cfg
	innerCfg.Trace = nil

	type slot struct {
		res  InstanceResult
		err  error
		done bool
	}
	slots := make([]slot, len(selected))
	var next, completed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(selected) {
					return
				}
				if cfg.Budget.Check() != nil {
					// Budget exhausted: stop claiming; the slot stays
					// undone and the fan-in reports the partial run.
					return
				}
				e := selected[i]
				inst := cfg.Trace.StartRoot("experiment.instance",
					obs.Int("group", int64(e.Group)), obs.Int("index", int64(e.Index)))
				r, err := runInstance(innerCfg, e)
				inst.End()
				slots[i] = slot{res: r, err: err, done: true}
				if err != nil {
					// A hard error poisons the run (matching the
					// sequential path); stop claiming new work.
					next.Store(int64(len(selected)))
					return
				}
				if progress != nil {
					progress(int(completed.Add(1)), len(selected))
				}
			}
		}()
	}
	wg.Wait()

	out := make([]InstanceResult, 0, len(selected))
	for i := range slots {
		if slots[i].err != nil {
			return nil, slots[i].err
		}
		if slots[i].done {
			out = append(out, slots[i].res)
		}
	}
	if len(out) < len(selected) {
		if berr := cfg.Budget.Check(); berr != nil {
			return out, fmt.Errorf("experiments: stopped after %d/%d instances: %w",
				len(out), len(selected), berr)
		}
	}
	return out, nil
}

func runInstance(cfg Config, e benchgen.SuiteEntry) (InstanceResult, error) {
	res := InstanceResult{Group: e.Group, Index: e.Index, Graph: e.Graph}
	a := cfg.Arch

	check := func(sch *schedule.Schedule) error {
		if !cfg.Validate || sch == nil {
			return nil
		}
		if errs := schedule.Check(sch); len(errs) > 0 {
			return fmt.Errorf("invalid %s schedule on group %d idx %d: %v", sch.Algorithm, e.Group, e.Index, errs[0])
		}
		return nil
	}

	inst := cfg.Trace.Start("experiment.instance",
		obs.Int("group", int64(e.Group)), obs.Int("index", int64(e.Index)))
	defer inst.End()

	// Every column shares the cross-cutting concerns; each algorithm run
	// below only adds its protocol-specific knobs on top.
	base := solve.Options{Trace: cfg.Trace, Budget: cfg.Budget, Faults: cfg.Faults}
	reuse := base
	reuse.ModuleReuse = true

	// column dispatches one registered solver and folds its Result into
	// the uniform per-algorithm column; a failed run records Err and is
	// excluded from aggregation, a checker rejection poisons the instance.
	column := func(name string, opts solve.Options) (AlgoResult, error) {
		t0 := time.Now()
		r, err := runSolver(name, e.Graph, a, opts)
		col := AlgoResult{Total: time.Since(t0), Err: err}
		if err != nil {
			return col, nil
		}
		col.Makespan = r.Makespan
		col.Scheduling = r.SchedulingTime
		col.Floorplanning = r.FloorplanTime
		return col, check(r.Schedule)
	}

	var err error
	// PA.
	if res.PA, err = column("pa", base); err != nil {
		return res, err
	}
	// IS-1 and IS-5 (module reuse enabled, §VII-A).
	if res.IS1, err = column("is1", reuse); err != nil {
		return res, err
	}
	if res.IS5, err = column("is5", reuse); err != nil {
		return res, err
	}

	// PA-R with the IS-5-matched budget (§VII-A: "PA-R was assigned a time
	// budget equal to the time used by IS-5").
	parBudget := time.Duration(float64(res.IS5.Total) * cfg.ParBudgetFactor)
	if parBudget < cfg.MinParBudget {
		parBudget = cfg.MinParBudget
	}
	parOpts := base
	parOpts.TimeBudget = parBudget
	parOpts.Seed = cfg.Seed + int64(e.Group*100+e.Index)
	if res.PAR, err = column("par", parOpts); err != nil {
		return res, err
	}

	// Degradation ladder, when requested: records which rung fired under
	// the configured budget and faults. By construction it only errors on
	// instances no rung can schedule.
	if cfg.Robust {
		ropts := reuse
		ropts.TimeBudget = parBudget
		ropts.Seed = parOpts.Seed
		t0 := time.Now()
		r, rerr := runSolver("robust", e.Graph, a, ropts)
		rr := &RobustResult{Total: time.Since(t0), Err: rerr}
		if rerr == nil {
			rr.Makespan = r.Makespan
			rr.Rung = r.Ladder.Rung
			rr.Degraded = r.Ladder.Degraded
			if err := check(r.Schedule); err != nil {
				return res, err
			}
		}
		res.Robust = rr
	}
	return res, nil
}

// RobustResult is the degradation ladder's outcome on one instance.
type RobustResult struct {
	Makespan int64
	Rung     sched.Rung
	// Degraded reports that at least one rung above the final one failed.
	Degraded bool
	Total    time.Duration
	Err      error
}

// GroupStats aggregates one algorithm over one task-count group.
type GroupStats struct {
	Group int
	N     int
	// MeanMakespan and StdMakespan summarise schedule execution times.
	MeanMakespan, StdMakespan float64
	// Mean runtimes.
	MeanTotal, MeanScheduling, MeanFloorplanning time.Duration
}

// aggregate computes group statistics for the algorithm selected by pick.
func aggregate(results []InstanceResult, pick func(*InstanceResult) *AlgoResult) []GroupStats {
	byGroup := map[int][]float64{}
	times := map[int][3]time.Duration{}
	counts := map[int]int{}
	for i := range results {
		r := pick(&results[i])
		if r.Err != nil {
			continue
		}
		g := results[i].Group
		byGroup[g] = append(byGroup[g], float64(r.Makespan))
		t := times[g]
		t[0] += r.Total
		t[1] += r.Scheduling
		t[2] += r.Floorplanning
		times[g] = t
		counts[g]++
	}
	var groups []int
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	var out []GroupStats
	for _, g := range groups {
		xs := byGroup[g]
		n := len(xs)
		mean, std := meanStd(xs)
		t := times[g]
		out = append(out, GroupStats{
			Group: g, N: n,
			MeanMakespan: mean, StdMakespan: std,
			MeanTotal:         t[0] / time.Duration(n),
			MeanScheduling:    t[1] / time.Duration(n),
			MeanFloorplanning: t[2] / time.Duration(n),
		})
	}
	return out
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		std += (x - mean) * (x - mean)
	}
	std = math.Sqrt(std / float64(len(xs)))
	return mean, std
}

// Improvement summarises, per group, the relative makespan improvement of
// algorithm A over baseline B: mean of (B − A) / B per instance.
type Improvement struct {
	Group            int
	N                int
	MeanPct, StdPct  float64
	WinCount, Losses int
}

// improvements computes per-instance paired improvements.
func improvements(results []InstanceResult, pick, base func(*InstanceResult) *AlgoResult) []Improvement {
	byGroup := map[int][]float64{}
	for i := range results {
		a, b := pick(&results[i]), base(&results[i])
		if a.Err != nil || b.Err != nil || b.Makespan == 0 {
			continue
		}
		pct := 100 * float64(b.Makespan-a.Makespan) / float64(b.Makespan)
		byGroup[results[i].Group] = append(byGroup[results[i].Group], pct)
	}
	var groups []int
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Ints(groups)
	var out []Improvement
	for _, g := range groups {
		xs := byGroup[g]
		mean, std := meanStd(xs)
		imp := Improvement{Group: g, N: len(xs), MeanPct: mean, StdPct: std}
		for _, x := range xs {
			if x > 0 {
				imp.WinCount++
			} else if x < 0 {
				imp.Losses++
			}
		}
		out = append(out, imp)
	}
	return out
}

// OverallMean returns the unweighted mean of the per-group means, the
// figure the paper quotes ("14.8% on average").
func OverallMean(imps []Improvement) float64 {
	if len(imps) == 0 {
		return 0
	}
	var s float64
	for _, im := range imps {
		s += im.MeanPct
	}
	return s / float64(len(imps))
}

// Accessor helpers for the aggregation functions.
func PickPA(r *InstanceResult) *AlgoResult  { return &r.PA }
func PickPAR(r *InstanceResult) *AlgoResult { return &r.PAR }
func PickIS1(r *InstanceResult) *AlgoResult { return &r.IS1 }
func PickIS5(r *InstanceResult) *AlgoResult { return &r.IS5 }

// Fprintln is a tiny helper so report files never silently drop write
// errors in examples.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
