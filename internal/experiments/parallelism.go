package experiments

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/solve"
)

// ParallelismConfig drives the DAG-shape study. The paper observes that
// "the improvements achieved by PA-R with respect to IS-5 are more
// restrained when either the taskgraph exposes a reduced level of
// parallelism or, at the opposite, when a great proportion of the
// application tasks can be executed in parallel"; this experiment sweeps
// the DAG depth at a fixed task count to chart that.
type ParallelismConfig struct {
	// Seed generates the instances (default 2016).
	Seed int64
	// Tasks is the fixed task count (default 40).
	Tasks int
	// Instances per shape (default 4).
	Instances int
	// Layers are the DAG depths to sweep; fewer layers = more parallelism
	// (default: near-chain to near-parallel).
	Layers []int
	// ParBudget is PA-R's time budget per instance (default 60 ms).
	ParBudget time.Duration
	// Workers bounds how many (shape, instance) evaluations run
	// concurrently (0 or 1 = sequential). Aggregation order is fixed by
	// instance index regardless of completion order, so the reported means
	// are identical at any worker count.
	Workers int
}

// ParallelismPoint is the aggregate for one DAG shape.
type ParallelismPoint struct {
	Layers int
	// WidthRatio is tasks/layers — the average parallelism degree.
	WidthRatio float64
	// Mean makespans.
	MeanPAR, MeanIS5 float64
	// PARvsIS5Pct is the mean paired improvement of PA-R over IS-5.
	PARvsIS5Pct float64
}

// RunParallelism sweeps DAG shapes and reports PA-R's improvement.
func RunParallelism(cfg ParallelismConfig) ([]ParallelismPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2016
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 40
	}
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if len(cfg.Layers) == 0 {
		cfg.Layers = []int{30, 16, 9, 4, 2}
	}
	if cfg.ParBudget == 0 {
		cfg.ParBudget = 60 * time.Millisecond
	}
	for _, layers := range cfg.Layers {
		if layers < 1 || layers > cfg.Tasks {
			return nil, fmt.Errorf("experiments: layer count %d out of [1, %d]", layers, cfg.Tasks)
		}
	}
	a := arch.ZedBoard()

	// One job per (shape, instance) pair; results land in indexed slots so
	// the sums below always accumulate in instance order, keeping the
	// reported means bit-identical at any worker count.
	type shapeResult struct {
		par, is5 int64
		err      error
	}
	jobs := len(cfg.Layers) * cfg.Instances
	results := make([]shapeResult, jobs)
	runJob := func(j int) {
		layers := cfg.Layers[j/cfg.Instances]
		idx := j % cfg.Instances
		g, err := benchgen.Generate(benchgen.Config{
			Tasks:  cfg.Tasks,
			Seed:   cfg.Seed + int64(idx),
			Layers: layers,
		})
		if err != nil {
			results[j].err = err
			return
		}
		is5, err := runSolver("is5", g, a, solve.Options{ModuleReuse: true})
		if err != nil {
			results[j].err = fmt.Errorf("parallelism layers=%d: IS-5: %w", layers, err)
			return
		}
		par, err := runSolver("par", g, a, solve.Options{
			TimeBudget: cfg.ParBudget, Seed: cfg.Seed + int64(idx),
		})
		if err != nil {
			results[j].err = fmt.Errorf("parallelism layers=%d: PA-R: %w", layers, err)
			return
		}
		results[j].par, results[j].is5 = par.Makespan, is5.Makespan
	}
	if cfg.Workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		workers := cfg.Workers
		if workers > jobs {
			workers = jobs
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					j := int(next.Add(1)) - 1
					if j >= jobs {
						return
					}
					runJob(j)
				}
			}()
		}
		wg.Wait()
	} else {
		for j := 0; j < jobs; j++ {
			runJob(j)
		}
	}

	var out []ParallelismPoint
	for li, layers := range cfg.Layers {
		pt := ParallelismPoint{Layers: layers, WidthRatio: float64(cfg.Tasks) / float64(layers)}
		var parSum, isSum, impSum float64
		for idx := 0; idx < cfg.Instances; idx++ {
			r := results[li*cfg.Instances+idx]
			if r.err != nil {
				return nil, r.err
			}
			parSum += float64(r.par)
			isSum += float64(r.is5)
			impSum += 100 * float64(r.is5-r.par) / float64(r.is5)
		}
		n := float64(cfg.Instances)
		pt.MeanPAR = parSum / n
		pt.MeanIS5 = isSum / n
		pt.PARvsIS5Pct = impSum / n
		out = append(out, pt)
	}
	return out, nil
}

// WriteParallelism renders the sweep.
func WriteParallelism(w io.Writer, points []ParallelismPoint) {
	fprintf(w, "PARALLELISM SWEEP — PA-R vs IS-5 across DAG shapes (fixed task count)\n")
	fprintf(w, "%8s %12s %12s %12s %14s\n", "layers", "width", "PA-R", "IS-5", "PA-R vs IS-5")
	for _, p := range points {
		fprintf(w, "%8d %12.1f %12.0f %12.0f %+13.1f%%\n",
			p.Layers, p.WidthRatio, p.MeanPAR, p.MeanIS5, p.PARvsIS5Pct)
	}
}
