package experiments

import (
	"fmt"
	"io"
	"time"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/sched"
)

// ParallelismConfig drives the DAG-shape study. The paper observes that
// "the improvements achieved by PA-R with respect to IS-5 are more
// restrained when either the taskgraph exposes a reduced level of
// parallelism or, at the opposite, when a great proportion of the
// application tasks can be executed in parallel"; this experiment sweeps
// the DAG depth at a fixed task count to chart that.
type ParallelismConfig struct {
	// Seed generates the instances (default 2016).
	Seed int64
	// Tasks is the fixed task count (default 40).
	Tasks int
	// Instances per shape (default 4).
	Instances int
	// Layers are the DAG depths to sweep; fewer layers = more parallelism
	// (default: near-chain to near-parallel).
	Layers []int
	// ParBudget is PA-R's time budget per instance (default 60 ms).
	ParBudget time.Duration
}

// ParallelismPoint is the aggregate for one DAG shape.
type ParallelismPoint struct {
	Layers int
	// WidthRatio is tasks/layers — the average parallelism degree.
	WidthRatio float64
	// Mean makespans.
	MeanPAR, MeanIS5 float64
	// PARvsIS5Pct is the mean paired improvement of PA-R over IS-5.
	PARvsIS5Pct float64
}

// RunParallelism sweeps DAG shapes and reports PA-R's improvement.
func RunParallelism(cfg ParallelismConfig) ([]ParallelismPoint, error) {
	if cfg.Seed == 0 {
		cfg.Seed = 2016
	}
	if cfg.Tasks == 0 {
		cfg.Tasks = 40
	}
	if cfg.Instances == 0 {
		cfg.Instances = 4
	}
	if len(cfg.Layers) == 0 {
		cfg.Layers = []int{30, 16, 9, 4, 2}
	}
	if cfg.ParBudget == 0 {
		cfg.ParBudget = 60 * time.Millisecond
	}
	a := arch.ZedBoard()
	var out []ParallelismPoint
	for _, layers := range cfg.Layers {
		if layers < 1 || layers > cfg.Tasks {
			return nil, fmt.Errorf("experiments: layer count %d out of [1, %d]", layers, cfg.Tasks)
		}
		pt := ParallelismPoint{Layers: layers, WidthRatio: float64(cfg.Tasks) / float64(layers)}
		var parSum, isSum, impSum float64
		count := 0
		for idx := 0; idx < cfg.Instances; idx++ {
			g, err := benchgen.Generate(benchgen.Config{
				Tasks:  cfg.Tasks,
				Seed:   cfg.Seed + int64(idx),
				Layers: layers,
			})
			if err != nil {
				return nil, err
			}
			is5, _, err := isk.Schedule(g, a, isk.Options{K: 5, ModuleReuse: true})
			if err != nil {
				return nil, fmt.Errorf("parallelism layers=%d: IS-5: %w", layers, err)
			}
			par, _, err := sched.RSchedule(g, a, sched.RandomOptions{
				TimeBudget: cfg.ParBudget, Seed: cfg.Seed + int64(idx),
			})
			if err != nil {
				return nil, fmt.Errorf("parallelism layers=%d: PA-R: %w", layers, err)
			}
			parSum += float64(par.Makespan)
			isSum += float64(is5.Makespan)
			impSum += 100 * float64(is5.Makespan-par.Makespan) / float64(is5.Makespan)
			count++
		}
		n := float64(count)
		pt.MeanPAR = parSum / n
		pt.MeanIS5 = isSum / n
		pt.PARvsIS5Pct = impSum / n
		out = append(out, pt)
	}
	return out, nil
}

// WriteParallelism renders the sweep.
func WriteParallelism(w io.Writer, points []ParallelismPoint) {
	fprintf(w, "PARALLELISM SWEEP — PA-R vs IS-5 across DAG shapes (fixed task count)\n")
	fprintf(w, "%8s %12s %12s %12s %14s\n", "layers", "width", "PA-R", "IS-5", "PA-R vs IS-5")
	for _, p := range points {
		fprintf(w, "%8d %12.1f %12.0f %12.0f %+13.1f%%\n",
			p.Layers, p.WidthRatio, p.MeanPAR, p.MeanIS5, p.PARvsIS5Pct)
	}
}
