package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// runSmall runs a restricted suite once per test binary (the four-algorithm
// pipeline is the expensive part).
var smallResults []InstanceResult

func small(t *testing.T) []InstanceResult {
	t.Helper()
	if smallResults != nil {
		return smallResults
	}
	cfg := Config{
		PerGroup:     2,
		Groups:       []int{10, 20},
		Validate:     true,
		MinParBudget: 5 * time.Millisecond,
	}
	var calls int
	results, err := Run(cfg, func(done, total int) {
		calls++
		if total != 4 {
			t.Fatalf("expected 4 instances, progress says %d", total)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || len(results) != 4 {
		t.Fatalf("got %d results, %d progress calls", len(results), calls)
	}
	smallResults = results
	return results
}

func TestRunProducesAllAlgorithms(t *testing.T) {
	for _, r := range small(t) {
		for name, ar := range map[string]AlgoResult{"PA": r.PA, "PAR": r.PAR, "IS1": r.IS1, "IS5": r.IS5} {
			if ar.Err != nil {
				t.Fatalf("group %d idx %d %s: %v", r.Group, r.Index, name, ar.Err)
			}
			if ar.Makespan <= 0 {
				t.Errorf("group %d idx %d %s: non-positive makespan", r.Group, r.Index, name)
			}
			if ar.Total <= 0 {
				t.Errorf("group %d idx %d %s: no runtime recorded", r.Group, r.Index, name)
			}
		}
	}
}

func TestGroupFiltering(t *testing.T) {
	groups := map[int]int{}
	for _, r := range small(t) {
		groups[r.Group]++
	}
	if len(groups) != 2 || groups[10] != 2 || groups[20] != 2 {
		t.Errorf("group distribution = %v", groups)
	}
}

func TestAggregate(t *testing.T) {
	stats := aggregate(small(t), PickPA)
	if len(stats) != 2 {
		t.Fatalf("got %d groups", len(stats))
	}
	for _, g := range stats {
		if g.N != 2 || g.MeanMakespan <= 0 {
			t.Errorf("bad group stats %+v", g)
		}
		if g.StdMakespan < 0 {
			t.Errorf("negative std %+v", g)
		}
	}
	if stats[0].Group != 10 || stats[1].Group != 20 {
		t.Errorf("groups unsorted: %+v", stats)
	}
}

func TestImprovements(t *testing.T) {
	imps := improvements(small(t), PickPAR, PickIS5)
	if len(imps) != 2 {
		t.Fatalf("got %d improvement groups", len(imps))
	}
	for _, im := range imps {
		if im.N != 2 {
			t.Errorf("group %d has %d samples", im.Group, im.N)
		}
		if im.WinCount+im.Losses > im.N {
			t.Errorf("wins+losses exceed samples: %+v", im)
		}
	}
	// Self-improvement is identically zero.
	self := improvements(small(t), PickPA, PickPA)
	for _, im := range self {
		if im.MeanPct != 0 || im.StdPct != 0 {
			t.Errorf("self improvement nonzero: %+v", im)
		}
	}
	if OverallMean(self) != 0 {
		t.Error("overall self improvement nonzero")
	}
	if OverallMean(nil) != 0 {
		t.Error("empty overall mean nonzero")
	}
}

func TestMeanStd(t *testing.T) {
	m, s := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if m != 5 || s != 2 {
		t.Errorf("meanStd = %v, %v; want 5, 2", m, s)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("empty meanStd = %v, %v", m, s)
	}
}

func TestReportWriters(t *testing.T) {
	results := small(t)
	cases := []struct {
		name  string
		write func(*bytes.Buffer)
		want  []string
	}{
		{"table1", func(b *bytes.Buffer) { WriteTable1(b, results) },
			[]string{"TABLE I", "PA sched", "IS-1", "PA-R / IS-5"}},
		{"fig2", func(b *bytes.Buffer) { WriteFig2(b, results) },
			[]string{"FIGURE 2", "PA-R", "IS-5"}},
		{"fig3", func(b *bytes.Buffer) { WriteFig3(b, results) },
			[]string{"FIGURE 3", "PA OVER IS-1", "overall average improvement"}},
		{"fig4", func(b *bytes.Buffer) { WriteFig4(b, results) },
			[]string{"FIGURE 4", "PA OVER IS-5"}},
		{"fig5", func(b *bytes.Buffer) { WriteFig5(b, results) },
			[]string{"FIGURE 5", "PA-R OVER IS-5"}},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		c.write(&buf)
		out := buf.String()
		for _, frag := range c.want {
			if !strings.Contains(out, frag) {
				t.Errorf("%s output missing %q:\n%s", c.name, frag, out)
			}
		}
		// Both groups must appear as rows.
		if !strings.Contains(out, "10") || !strings.Contains(out, "20") {
			t.Errorf("%s output missing group rows:\n%s", c.name, out)
		}
	}
}

func TestRunFig6(t *testing.T) {
	cfg := Config{Seed: 2016}
	points, err := RunFig6(cfg, Fig6Config{Budget: 50 * time.Millisecond, Groups: []int{10, 20}})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no convergence points")
	}
	// Points are grouped and improving within each group.
	last := map[int]int64{}
	for _, p := range points {
		if p.Group != 10 && p.Group != 20 {
			t.Errorf("unexpected group %d", p.Group)
		}
		if prev, ok := last[p.Group]; ok && p.Makespan >= prev {
			t.Errorf("group %d not improving: %d after %d", p.Group, p.Makespan, prev)
		}
		last[p.Group] = p.Makespan
	}
	var buf bytes.Buffer
	WriteFig6(&buf, points)
	if !strings.Contains(buf.String(), "FIGURE 6") {
		t.Error("fig6 header missing")
	}
	if _, err := RunFig6(cfg, Fig6Config{Budget: time.Millisecond, Groups: []int{999}}); err == nil {
		t.Error("unknown group accepted")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 2016 || c.Arch == nil || c.ParBudgetFactor != 1.0 || c.MinParBudget == 0 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
