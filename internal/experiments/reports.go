package experiments

import (
	"fmt"
	"io"
	"time"

	"resched/internal/benchgen"
	"resched/internal/solve"
)

// seconds renders a duration with three decimals, as in Table I; the
// formatting convention lives in the solve layer so every report agrees.
var seconds = solve.Seconds

// WriteTable1 renders the paper's Table I: per-group algorithm execution
// times, with PA split into scheduling and floorplanning.
func WriteTable1(w io.Writer, results []InstanceResult) {
	pa := aggregate(results, PickPA)
	is1 := aggregate(results, PickIS1)
	is5 := aggregate(results, PickIS5)
	par := aggregate(results, PickPAR)
	idx := func(gs []GroupStats) map[int]GroupStats {
		m := map[int]GroupStats{}
		for _, g := range gs {
			m[g.Group] = g
		}
		return m
	}
	i1, i5, pr := idx(is1), idx(is5), idx(par)
	fprintf(w, "TABLE I — ALGORITHMS EXECUTION TIME [s]\n")
	fprintf(w, "%8s %12s %14s %10s %10s %16s\n",
		"# Tasks", "PA sched", "PA floorplan", "PA total", "IS-1", "PA-R / IS-5")
	for _, g := range pa {
		fprintf(w, "%8d %12s %14s %10s %10s %8s / %s\n",
			g.Group,
			seconds(g.MeanScheduling), seconds(g.MeanFloorplanning), seconds(g.MeanTotal),
			seconds(i1[g.Group].MeanTotal),
			seconds(pr[g.Group].MeanTotal), seconds(i5[g.Group].MeanTotal))
	}
}

// WriteFig2 renders Figure 2: the average schedule execution time of each
// algorithm per task-count group.
func WriteFig2(w io.Writer, results []InstanceResult) {
	pa := aggregate(results, PickPA)
	par := aggregate(results, PickPAR)
	is1 := aggregate(results, PickIS1)
	is5 := aggregate(results, PickIS5)
	idx := func(gs []GroupStats) map[int]GroupStats {
		m := map[int]GroupStats{}
		for _, g := range gs {
			m[g.Group] = g
		}
		return m
	}
	p, r, i1, i5 := idx(pa), idx(par), idx(is1), idx(is5)
	fprintf(w, "FIGURE 2 — AVERAGE SCHEDULE EXECUTION TIME [ticks]\n")
	fprintf(w, "%8s %12s %12s %12s %12s\n", "# Tasks", "PA", "PA-R", "IS-1", "IS-5")
	for _, g := range pa {
		fprintf(w, "%8d %12.0f %12.0f %12.0f %12.0f\n", g.Group,
			p[g.Group].MeanMakespan, r[g.Group].MeanMakespan,
			i1[g.Group].MeanMakespan, i5[g.Group].MeanMakespan)
	}
}

// writeImprovement renders one of Figures 3–5: average per-group relative
// improvement (with standard deviation) of an algorithm over a baseline.
func writeImprovement(w io.Writer, title string, results []InstanceResult, pick, base func(*InstanceResult) *AlgoResult) {
	imps := improvements(results, pick, base)
	fprintf(w, "%s\n", title)
	fprintf(w, "%8s %8s %14s %10s %6s %6s\n", "# Tasks", "N", "mean impr %", "std %", "wins", "losses")
	for _, im := range imps {
		fprintf(w, "%8d %8d %14.1f %10.1f %6d %6d\n", im.Group, im.N, im.MeanPct, im.StdPct, im.WinCount, im.Losses)
	}
	fprintf(w, "overall average improvement: %.1f%%\n", OverallMean(imps))
}

// WriteFig3 renders Figure 3 (PA vs IS-1).
func WriteFig3(w io.Writer, results []InstanceResult) {
	writeImprovement(w, "FIGURE 3 — AVERAGE IMPROVEMENT OF PA OVER IS-1", results, PickPA, PickIS1)
}

// WriteFig4 renders Figure 4 (PA vs IS-5).
func WriteFig4(w io.Writer, results []InstanceResult) {
	writeImprovement(w, "FIGURE 4 — AVERAGE IMPROVEMENT OF PA OVER IS-5", results, PickPA, PickIS5)
}

// WriteFig5 renders Figure 5 (PA-R vs IS-5).
func WriteFig5(w io.Writer, results []InstanceResult) {
	writeImprovement(w, "FIGURE 5 — AVERAGE IMPROVEMENT OF PA-R OVER IS-5", results, PickPAR, PickIS5)
}

// Fig6Config drives the anytime-convergence experiment.
type Fig6Config struct {
	// Seed matches the suite seed.
	Seed int64
	// Budget is the extended PA-R time limit per instance (the paper used
	// 1200 s and plotted the first 500 s; scale down for quick runs).
	Budget time.Duration
	// Groups lists the task counts to sample (default 20,40,60,80,100 —
	// the paper's selection).
	Groups []int
}

// Fig6Point is one sample of the convergence curve.
type Fig6Point struct {
	Group     int
	Elapsed   time.Duration
	Iteration int
	Makespan  int64
}

// RunFig6 reproduces Figure 6: PA-R's best schedule execution time as a
// function of its running time, on one representative graph per group.
func RunFig6(cfg Config, fcfg Fig6Config) ([]Fig6Point, error) {
	cfg = cfg.withDefaults()
	if fcfg.Seed == 0 {
		fcfg.Seed = cfg.Seed
	}
	if fcfg.Budget == 0 {
		fcfg.Budget = 5 * time.Second
	}
	if len(fcfg.Groups) == 0 {
		fcfg.Groups = []int{20, 40, 60, 80, 100}
	}
	suite, err := benchgen.Suite(fcfg.Seed)
	if err != nil {
		return nil, err
	}
	var out []Fig6Point
	for _, group := range fcfg.Groups {
		var entry *benchgen.SuiteEntry
		for i := range suite {
			if suite[i].Group == group && suite[i].Index == 0 {
				entry = &suite[i]
				break
			}
		}
		if entry == nil {
			return nil, fmt.Errorf("experiments: no suite entry for group %d", group)
		}
		r, err := runSolver("par", entry.Graph, cfg.Arch, solve.Options{
			TimeBudget: fcfg.Budget,
			Seed:       fcfg.Seed + int64(group),
		})
		if err != nil {
			return nil, err
		}
		for _, h := range r.Search.History {
			out = append(out, Fig6Point{Group: group, Elapsed: h.Elapsed, Iteration: h.Iteration, Makespan: h.Makespan})
		}
	}
	return out, nil
}

// WriteFig6 renders the convergence samples.
func WriteFig6(w io.Writer, points []Fig6Point) {
	fprintf(w, "FIGURE 6 — PA-R SOLUTION IMPROVEMENT OVER TIME\n")
	fprintf(w, "%8s %12s %10s %12s\n", "# Tasks", "elapsed [s]", "iteration", "makespan")
	for _, p := range points {
		fprintf(w, "%8d %12.3f %10d %12d\n", p.Group, p.Elapsed.Seconds(), p.Iteration, p.Makespan)
	}
}
