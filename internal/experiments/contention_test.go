package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRunContention(t *testing.T) {
	points, err := RunContention(ContentionConfig{
		Tasks:     15,
		Instances: 2,
		Factors:   []float64{0.5, 2.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	// Demand ratio decreases as the device grows.
	if points[0].DemandRatio <= points[1].DemandRatio {
		t.Errorf("demand ratio not decreasing: %v then %v", points[0].DemandRatio, points[1].DemandRatio)
	}
	for _, p := range points {
		if p.MeanPA <= 0 || p.MeanIS1 <= 0 || p.MeanPAR <= 0 {
			t.Errorf("empty means at factor %v: %+v", p.Factor, p)
		}
	}
	var buf bytes.Buffer
	WriteContention(&buf, points)
	for _, frag := range []string{"CONTENTION SWEEP", "demand/cap", "0.50", "2.00"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("report missing %q:\n%s", frag, buf.String())
		}
	}
}

func TestRunContentionRejectsBadFactor(t *testing.T) {
	if _, err := RunContention(ContentionConfig{Factors: []float64{-1}}); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestRunParallelism(t *testing.T) {
	points, err := RunParallelism(ParallelismConfig{
		Tasks:     12,
		Instances: 2,
		Layers:    []int{8, 2},
		ParBudget: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points", len(points))
	}
	if points[0].WidthRatio >= points[1].WidthRatio {
		t.Errorf("width not increasing: %v then %v", points[0].WidthRatio, points[1].WidthRatio)
	}
	for _, p := range points {
		if p.MeanPAR <= 0 || p.MeanIS5 <= 0 {
			t.Errorf("empty means: %+v", p)
		}
	}
	var buf bytes.Buffer
	WriteParallelism(&buf, points)
	if !strings.Contains(buf.String(), "PARALLELISM SWEEP") {
		t.Error("report header missing")
	}
	if _, err := RunParallelism(ParallelismConfig{Tasks: 5, Layers: []int{99}}); err == nil {
		t.Error("excessive layer count accepted")
	}
}

func TestRunOptGap(t *testing.T) {
	points, err := RunOptGap(OptGapConfig{
		Sizes:     []int{4},
		Instances: 2,
		ParBudget: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 || points[0].N != 2 {
		t.Fatalf("points = %+v", points)
	}
	// Gaps against a proven reference are never negative for schedulers
	// confined to the same non-delay class.
	if points[0].Proven == points[0].N {
		if points[0].GapIS1 < -1e-9 || points[0].GapIS5 < -1e-9 {
			t.Errorf("negative IS-k gap: %+v", points[0])
		}
	}
	var buf bytes.Buffer
	WriteOptGap(&buf, points)
	if !strings.Contains(buf.String(), "OPTIMALITY GAPS") {
		t.Error("report header missing")
	}
	if _, err := RunOptGap(OptGapConfig{Sizes: []int{50}}); err == nil {
		t.Error("oversized instance accepted")
	}
}
