package resources

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{CLB: "CLB", BRAM: "BRAM", DSP: "DSP", Kind(9): "Kind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestKindsOrder(t *testing.T) {
	ks := Kinds()
	if len(ks) != int(NumKinds) {
		t.Fatalf("Kinds() has %d entries, want %d", len(ks), NumKinds)
	}
	for i, k := range ks {
		if int(k) != i {
			t.Errorf("Kinds()[%d] = %v, want kind %d", i, k, i)
		}
	}
}

func TestVecAccessors(t *testing.T) {
	v := Vec(10, 2, 3)
	if v[CLB] != 10 || v[BRAM] != 2 || v[DSP] != 3 {
		t.Fatalf("Vec(10,2,3) = %v", v)
	}
	if v.Zero() {
		t.Error("non-zero vector reported Zero")
	}
	if !(Vector{}).Zero() {
		t.Error("zero vector not reported Zero")
	}
}

func TestVectorArithmetic(t *testing.T) {
	a, b := Vec(5, 1, 2), Vec(3, 4, 0)
	if got, want := a.Add(b), Vec(8, 5, 2); got != want {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := a.Sub(b), Vec(2, -3, 2); got != want {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := a.Scale(3), Vec(15, 3, 6); got != want {
		t.Errorf("Scale = %v, want %v", got, want)
	}
	if got, want := a.Max(b), Vec(5, 4, 2); got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
	if a.Sub(b).NonNegative() {
		t.Error("Sub with negative component reported NonNegative")
	}
	if !a.NonNegative() {
		t.Error("non-negative vector misreported")
	}
	if got := a.Total(); got != 8 {
		t.Errorf("Total = %d, want 8", got)
	}
}

func TestFits(t *testing.T) {
	cap := Vec(10, 5, 5)
	if !Vec(10, 5, 5).Fits(cap) {
		t.Error("equal vector should fit")
	}
	if !Vec(0, 0, 0).Fits(cap) {
		t.Error("zero vector should fit")
	}
	if Vec(11, 0, 0).Fits(cap) {
		t.Error("CLB overflow should not fit")
	}
	if Vec(0, 6, 0).Fits(cap) {
		t.Error("BRAM overflow should not fit")
	}
}

func TestVectorString(t *testing.T) {
	if got, want := Vec(1, 2, 3).String(), "CLB:1 BRAM:2 DSP:3"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: Add is commutative and associative, Sub inverts Add.
func TestVectorAlgebraProperties(t *testing.T) {
	comm := func(a, b Vector) bool { a, b = clamp(a), clamp(b); return a.Add(b) == b.Add(a) }
	if err := quick.Check(comm, nil); err != nil {
		t.Error(err)
	}
	assoc := func(a, b, c Vector) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		return a.Add(b).Add(c) == a.Add(b.Add(c))
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Error(err)
	}
	inv := func(a, b Vector) bool { a, b = clamp(a), clamp(b); return a.Add(b).Sub(b) == a }
	if err := quick.Check(inv, nil); err != nil {
		t.Error(err)
	}
}

// clamp maps arbitrary quick-generated components into [0, 4096) so that
// vector arithmetic in the properties cannot overflow int64.
func clamp(v Vector) Vector {
	for k := range v {
		c := v[k] % 4096
		if c < 0 {
			c = -c
		}
		v[k] = c
	}
	return v
}

// Property: Fits is a partial order compatible with Add of non-negative
// deltas.
func TestFitsMonotone(t *testing.T) {
	f := func(a, d Vector) bool {
		a, d = clamp(a), clamp(d)
		return a.Fits(a.Add(d))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitstreamBits(t *testing.T) {
	bp := BitsPerUnit{CLB: 10, BRAM: 100, DSP: 1000}
	if got := bp.BitstreamBits(Vec(1, 2, 3)); got != 10+200+3000 {
		t.Errorf("BitstreamBits = %d, want 3210", got)
	}
	if got := bp.BitstreamBits(Vector{}); got != 0 {
		t.Errorf("BitstreamBits(zero) = %d, want 0", got)
	}
}

// Property: bitstream size is additive over region requirements (eq. (1) is
// linear), which the schedulers rely on when merging requirements.
func TestBitstreamAdditive(t *testing.T) {
	f := func(a, b Vector) bool {
		a, b = clamp(a), clamp(b)
		bp := DefaultBits
		return bp.BitstreamBits(a)+bp.BitstreamBits(b) == bp.BitstreamBits(a.Add(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightsFor(t *testing.T) {
	// Zynq-like capacities: CLB abundant, BRAM and DSP scarce.
	w := WeightsFor(Vec(13300, 140, 220))
	if !(w[BRAM] > w[CLB] && w[DSP] > w[CLB]) {
		t.Errorf("scarce kinds should weigh more: %v", w)
	}
	// Weights must stay in [0,1] and sum to |R|-1 by construction of eq. (4).
	sum := 0.0
	for _, x := range w {
		if x < 0 || x > 1 {
			t.Errorf("weight out of range: %v", w)
		}
		sum += x
	}
	if math.Abs(sum-float64(NumKinds-1)) > 1e-9 {
		t.Errorf("weights sum to %v, want %d", sum, NumKinds-1)
	}
}

func TestWeightsForZeroDevice(t *testing.T) {
	w := WeightsFor(Vector{})
	if w != (Weights{}) {
		t.Errorf("WeightsFor(zero) = %v, want zero weights", w)
	}
}

func TestWeighted(t *testing.T) {
	w := Weights{CLB: 0.5, BRAM: 1, DSP: 0}
	if got := w.Weighted(Vec(4, 3, 100)); got != 5 {
		t.Errorf("Weighted = %v, want 5", got)
	}
}

// Property: the weighted footprint is monotone in each resource component.
func TestWeightedMonotone(t *testing.T) {
	w := WeightsFor(Vec(13300, 140, 220))
	f := func(a Vector, extra uint8, kind uint8) bool {
		a = clamp(a)
		b := a
		b[int(kind)%int(NumKinds)] += int(extra)
		return w.Weighted(b) >= w.Weighted(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
