// Package resources models the reconfigurable resources of an FPGA device
// (the set R of the paper: CLB slices, block RAMs, DSP blocks), fixed-size
// resource vectors, and the bitstream-size estimation of eq. (1).
//
// All quantities are integers. Time is expressed in ticks (1 tick = 1 µs by
// convention) throughout the module; bitstream sizes are in bits.
package resources

import (
	"fmt"
	"strings"
)

// Kind identifies a reconfigurable resource type r ∈ R.
type Kind int

// The resource kinds of a Xilinx 7-series style device. The scheduler is
// generic in |R|; these three cover the devices used in the paper.
const (
	CLB  Kind = iota // slice of configurable logic (CLB slice)
	BRAM             // 36 Kb block RAM
	DSP              // DSP48 block
	NumKinds
)

// String returns the conventional short name of the resource kind.
func (k Kind) String() string {
	switch k {
	case CLB:
		return "CLB"
	case BRAM:
		return "BRAM"
	case DSP:
		return "DSP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds lists all resource kinds in declaration order.
func Kinds() []Kind { return []Kind{CLB, BRAM, DSP} }

// Vector is a resource requirement or availability indexed by Kind
// (res_{i,r} or maxRes_r in the paper).
type Vector [NumKinds]int

// Vec builds a Vector from per-kind counts.
func Vec(clb, bram, dsp int) Vector { return Vector{clb, bram, dsp} }

// Zero reports whether all components are zero.
func (v Vector) Zero() bool { return v == Vector{} }

// Add returns the component-wise sum v + w.
func (v Vector) Add(w Vector) Vector {
	for k := range v {
		v[k] += w[k]
	}
	return v
}

// Sub returns the component-wise difference v - w.
func (v Vector) Sub(w Vector) Vector {
	for k := range v {
		v[k] -= w[k]
	}
	return v
}

// Scale returns the component-wise product v * n.
func (v Vector) Scale(n int) Vector {
	for k := range v {
		v[k] *= n
	}
	return v
}

// Fits reports whether v fits within w component-wise (v ≤ w).
func (v Vector) Fits(w Vector) bool {
	for k := range v {
		if v[k] > w[k] {
			return false
		}
	}
	return true
}

// Max returns the component-wise maximum of v and w.
func (v Vector) Max(w Vector) Vector {
	for k := range v {
		if w[k] > v[k] {
			v[k] = w[k]
		}
	}
	return v
}

// NonNegative reports whether every component is ≥ 0.
func (v Vector) NonNegative() bool {
	for _, c := range v {
		if c < 0 {
			return false
		}
	}
	return true
}

// Total returns the plain sum of all components (Σ_r v_r).
func (v Vector) Total() int {
	t := 0
	for _, c := range v {
		t += c
	}
	return t
}

// String renders the vector as "CLB:n BRAM:n DSP:n".
func (v Vector) String() string {
	var b strings.Builder
	for _, k := range Kinds() {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s:%d", k, v[k])
	}
	return b.String()
}

// BitsPerUnit gives bit_r of eq. (1): the average number of configuration
// bits needed to (re)configure one unit of resource kind r. The values are
// derived from Xilinx 7-series configuration-frame geometry (a frame is
// 101 words × 32 bits = 3 232 bits):
//
//   - a CLB column spans 50 slices and takes 36 frames → ~2 327 bits/slice;
//   - a BRAM column spans 10 RAMB36 and takes 28 interconnect frames plus
//     the content frames shared per column → ~26 400 bits/BRAM36;
//   - a DSP column spans 20 DSP48 and takes 28 frames → ~3 780 bits/DSP48.
//
// Following Vipin & Fahmy (ref [14] of the paper) these are averages over a
// tile, adequate for the scheduler's reconfiguration-time estimate.
type BitsPerUnit [NumKinds]int64

// DefaultBits is the 7-series derived bit_r table described above.
var DefaultBits = BitsPerUnit{
	CLB:  2327,
	BRAM: 26400,
	DSP:  3780,
}

// BitstreamBits implements eq. (1): the estimated partial-bitstream size of
// a reconfigurable region with resource requirements v.
func (bp BitsPerUnit) BitstreamBits(v Vector) int64 {
	var bits int64
	for k, c := range v {
		bits += int64(c) * bp[k]
	}
	return bits
}

// Weights holds weightRes_r of eq. (4): the relative scarcity weight of each
// resource kind on a device with capacity maxRes.
type Weights [NumKinds]float64

// WeightsFor computes eq. (4) for the given device capacity:
//
//	weightRes_r = 1 - maxRes_r / Σ_{r'} maxRes_{r'}
//
// Scarce kinds (few units) receive weights close to 1, abundant kinds
// receive lower weights, steering implementation costs toward sparing the
// scarce resources.
func WeightsFor(maxRes Vector) Weights {
	var w Weights
	total := maxRes.Total()
	if total == 0 {
		return w
	}
	for k := range w {
		w[k] = 1 - float64(maxRes[k])/float64(total)
	}
	return w
}

// Weighted returns Σ_r v_r · w_r, the weighted resource footprint used by
// both the implementation cost (eq. (3)) and the efficiency index (eq. (5)).
func (w Weights) Weighted(v Vector) float64 {
	var s float64
	for k, c := range v {
		s += float64(c) * w[k]
	}
	return s
}
