package analyze_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"resched/internal/analyze"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestReportJSONGolden pins the machine-readable report format: the JSON
// emitted for the spanleak fixture package must match the golden file
// byte-for-byte (root-relative slash paths, stable field order, severity
// counts). Regenerate with `go test ./internal/analyze -run ReportJSON
// -update` after an intentional format or fixture change.
func TestReportJSONGolden(t *testing.T) {
	dir := filepath.Join("testdata", "spanleak")
	pkg, err := analyze.LoadDir(dir, "fixture/spanleak")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	analyzers := []*analyze.Analyzer{analyze.SpanLeak}
	findings := analyze.Run([]*analyze.Package{pkg}, analyzers)
	if len(findings) == 0 {
		t.Fatal("spanleak fixture produced no findings; the golden proves nothing")
	}

	rep := analyze.BuildReport("testdata", analyzers, findings)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("encoding report: %v", err)
	}

	golden := filepath.Join("testdata", "report.golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create it): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON report drifted from golden.\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestRunParallelDeterministic proves the parallel driver's total order: the
// findings of the full suite over every fixture package must be identical —
// same order, same content — for any worker count and any interleaving.
func TestRunParallelDeterministic(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*analyze.Package
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg, err := analyze.LoadDir(filepath.Join("testdata", e.Name()), "fixture/"+e.Name())
		if err != nil {
			t.Fatalf("loading fixture %s: %v", e.Name(), err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) < 2 {
		t.Fatal("need several fixture packages to exercise the merge")
	}

	baseline := analyze.RunParallel(pkgs, analyze.All(), 1)
	if len(baseline) == 0 {
		t.Fatal("fixtures produced no findings; determinism check proves nothing")
	}
	for _, workers := range []int{2, 3, 4, 8, 0} {
		for rep := 0; rep < 3; rep++ {
			got := analyze.RunParallel(pkgs, analyze.All(), workers)
			if !reflect.DeepEqual(got, baseline) {
				t.Fatalf("workers=%d repetition %d: findings diverge from the single-worker order", workers, rep)
			}
		}
	}
}

// BenchmarkLoadModule measures whole-module parse + type-check with the
// shared cache (each internal package checked exactly once); this is the
// fixed cost of every reschedvet run.
func BenchmarkLoadModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pkgs, err := analyze.LoadModule("../..")
		if err != nil {
			b.Fatal(err)
		}
		if len(pkgs) == 0 {
			b.Fatal("no packages loaded")
		}
	}
}

// BenchmarkRunParallel measures the analysis proper (the module is loaded
// once outside the timer), comparing the serial and parallel drivers.
func BenchmarkRunParallel(b *testing.B) {
	pkgs, err := analyze.LoadModule("../..")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 0} {
		name := "workers=max"
		if workers == 1 {
			name = "workers=1"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				analyze.RunParallel(pkgs, analyze.All(), workers)
			}
		})
	}
}
