// Package cfg constructs per-function control-flow graphs from go/ast for
// the flow-sensitive analyzers in internal/analyze (standard library only,
// like the rest of the analysis framework).
//
// The graph is statement-granular: every block holds the statements (and
// the branch conditions) it executes in order, and edges follow the
// possible transfers of control — if/else joins, loop back edges, switch
// and select dispatch, break/continue/goto (labeled or not), returns into
// a synthetic Exit block and panics (plus the well-known terminating calls
// os.Exit, log.Fatal*, runtime.Goexit) into a synthetic Panic block.
// Deferred statements appear as ordinary nodes at their registration point:
// once a path executes `defer f()`, f runs on every exit from the function
// through that path, which is exactly how the span- and cancel-tracking
// analyzers interpret them.
//
// Function literals are separate functions: building the graph of an
// enclosing function does not descend into a FuncLit body, and analyzers
// build a separate graph per literal.
//
// The main query is Escapes: "starting after statement S, can control reach
// the normal function exit (or a forbidden statement) without first passing
// a sanctioned one?" — the shape of every must-release invariant (spans
// ended, child budgets cancelled, goroutines joined). Paths that leave
// through the Panic block are not escapes: the repository's libraries do
// not panic in shipped code (PR 3), and deferred releases still run during
// a panic unwind.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one straight-line run of statements.
type Block struct {
	// Index is the block's position in Graph.Blocks.
	Index int
	// Kind labels the block's role ("entry", "if.then", "for.head", ...)
	// for tests and debug dumps.
	Kind string
	// Nodes holds the statements and branch conditions executed in order.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic normal-exit block: every return statement and
	// the fall-through past the closing brace lead here.
	Exit *Block
	// Panic is the synthetic abnormal-exit block: panic calls and the
	// recognised terminating calls (os.Exit, log.Fatal*, runtime.Goexit)
	// lead here.
	Panic *Block
	// Blocks lists every block, Entry first.
	Blocks []*Block
	// End is the position of the body's closing brace, used as the witness
	// position for escapes through the implicit return.
	End token.Pos

	blockOf map[ast.Node]*Block
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{End: body.Rbrace, blockOf: map[ast.Node]*Block{}}
	b := &builder{g: g}
	g.Entry = b.newBlock("entry")
	g.Exit = b.newBlock("exit")
	g.Panic = b.newBlock("panic")
	b.cur = g.Entry
	b.stmts(body.List)
	// Fall-through past the closing brace is an implicit return.
	b.jump(g.Exit)
	b.patchGotos()
	return g
}

// BlockOf returns the block holding the statement-level node n, or nil when
// n is not a node of this graph (for example a node inside a FuncLit).
func (g *Graph) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// Escapes reports whether some execution path starting immediately after
// the statement `from` reaches the normal function exit — or a node
// matching bad — without first passing a node matching kill. It returns the
// position witnessing the first such escape (the offending return, the bad
// node, or the closing brace for the implicit return). Paths that end in
// the Panic block are ignored. bad may be nil.
func (g *Graph) Escapes(from ast.Node, kill, bad func(ast.Node) bool) (token.Pos, bool) {
	start := g.blockOf[from]
	if start == nil {
		return token.NoPos, false
	}
	// Scan the tail of the starting block, then flood the successors.
	tail := 0
	for i, n := range start.Nodes {
		if n == from {
			tail = i + 1
			break
		}
	}
	seen := map[*Block]bool{start: true}
	if pos, state := g.scan(start, tail, kill, bad); state != scanKilled {
		if state == scanEscaped {
			return pos, true
		}
		if pos, ok := g.flood(start, seen, kill, bad); ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

type scanState int

const (
	scanFellThrough scanState = iota // reached the end of the block
	scanKilled                       // hit a kill node: path satisfied
	scanEscaped                      // hit a bad node: escape witnessed
)

// scan walks one block's nodes from index i.
func (g *Graph) scan(b *Block, i int, kill, bad func(ast.Node) bool) (token.Pos, scanState) {
	for _, n := range b.Nodes[i:] {
		if kill != nil && kill(n) {
			return token.NoPos, scanKilled
		}
		if bad != nil && bad(n) {
			return n.Pos(), scanEscaped
		}
	}
	return token.NoPos, scanFellThrough
}

// flood explores the successors of b, scanning each reached block once.
func (g *Graph) flood(b *Block, seen map[*Block]bool, kill, bad func(ast.Node) bool) (token.Pos, bool) {
	for _, s := range b.Succs {
		if seen[s] {
			continue
		}
		seen[s] = true
		if s == g.Exit {
			// Escape through a return (the witness is the return statement
			// ending b, if any) or the implicit fall-through.
			pos := g.End
			if len(b.Nodes) > 0 {
				if r, ok := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt); ok {
					pos = r.Pos()
				}
			}
			return pos, true
		}
		if s == g.Panic {
			continue
		}
		pos, state := g.scan(s, 0, kill, bad)
		switch state {
		case scanEscaped:
			return pos, true
		case scanKilled:
			continue
		}
		if pos, ok := g.flood(s, seen, kill, bad); ok {
			return pos, true
		}
	}
	return token.NoPos, false
}

// Reachable reports whether block b is reachable from the entry.
func (g *Graph) Reachable(b *Block) bool {
	seen := map[*Block]bool{}
	var walk func(*Block) bool
	walk = func(c *Block) bool {
		if c == b {
			return true
		}
		if seen[c] {
			return false
		}
		seen[c] = true
		for _, s := range c.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(g.Entry)
}

// String renders the graph for debugging and tests.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "%d(%s):", b.Index, b.Kind)
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " ->%d", s.Index)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// builder incrementally assembles a Graph.
type builder struct {
	g   *Graph
	cur *Block
	// breakTo / continueTo are the innermost targets of unlabeled branch
	// statements; labels maps label names to their targets.
	breakTo    *Block
	continueTo *Block
	labels     map[string]*labelTargets
	// pendingLabel is the label naming the next loop/switch/select so its
	// break/continue targets register under it.
	pendingLabel string
	gotos        []pendingGoto
}

type labelTargets struct {
	breakTo    *Block
	continueTo *Block
	start      *Block // goto target
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add records a node in the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

// jump links the current block to target.
func (b *builder) jump(target *Block) {
	for _, s := range b.cur.Succs {
		if s == target {
			return
		}
	}
	b.cur.Succs = append(b.cur.Succs, target)
}

// startIn makes target the current block.
func (b *builder) startIn(target *Block) { b.cur = target }

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock("if.then")
		after := b.newBlock("if.after")
		b.jump(thenB)
		if s.Else != nil {
			elseB := b.newBlock("if.else")
			b.jump(elseB)
			b.startIn(elseB)
			b.stmt(s.Else)
			b.jump(after)
		} else {
			b.jump(after)
		}
		b.startIn(thenB)
		b.stmts(s.Body.List)
		b.jump(after)
		b.startIn(after)

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		body := b.newBlock("for.body")
		after := b.newBlock("for.after")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		b.jump(head)
		b.startIn(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.jump(after)
		}
		b.jump(body)
		continueTo := head
		if post != nil {
			continueTo = post
		}
		b.inLoop(after, continueTo, func() {
			b.startIn(body)
			b.stmts(s.Body.List)
			if post != nil {
				b.jump(post)
				b.startIn(post)
				b.add(s.Post)
			}
			b.jump(head)
		})
		b.startIn(after)

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		body := b.newBlock("range.body")
		after := b.newBlock("range.after")
		b.jump(head)
		b.startIn(head)
		b.add(s.X)
		b.jump(body)
		b.jump(after) // the range may be empty
		b.inLoop(after, head, func() {
			b.startIn(body)
			b.stmts(s.Body.List)
			b.jump(head)
		})
		b.startIn(after)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseDispatch(s.Body.List, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseDispatch(s.Body.List, false)

	case *ast.SelectStmt:
		b.caseDispatch(s.Body.List, true)

	case *ast.LabeledStmt:
		start := b.newBlock("label." + s.Label.Name)
		b.jump(start)
		b.startIn(start)
		if b.labels == nil {
			b.labels = map[string]*labelTargets{}
		}
		lt := &labelTargets{start: start}
		b.labels[s.Label.Name] = lt
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil && b.labels[s.Label.Name] != nil {
				target = b.labels[s.Label.Name].breakTo
			}
			if target != nil {
				b.jump(target)
			}
			b.startIn(b.newBlock("dead"))
		case token.CONTINUE:
			target := b.continueTo
			if s.Label != nil && b.labels[s.Label.Name] != nil {
				target = b.labels[s.Label.Name].continueTo
			}
			if target != nil {
				b.jump(target)
			}
			b.startIn(b.newBlock("dead"))
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: s.Label.Name})
			}
			b.startIn(b.newBlock("dead"))
		case token.FALLTHROUGH:
			// Handled by caseDispatch, which links the clause to its
			// successor; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)
		b.startIn(b.newBlock("dead"))

	case *ast.DeferStmt, *ast.GoStmt, *ast.DeclStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.SendStmt, *ast.EmptyStmt:
		b.add(s)

	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.jump(b.g.Panic)
			b.startIn(b.newBlock("dead"))
		}

	default:
		if s != nil {
			b.add(s)
		}
	}
}

// inLoop runs body with the unlabeled (and pending labeled) break/continue
// targets bound to the enclosing loop.
func (b *builder) inLoop(breakTo, continueTo *Block, body func()) {
	prevB, prevC := b.breakTo, b.continueTo
	b.breakTo, b.continueTo = breakTo, continueTo
	if b.pendingLabel != "" {
		lt := b.labels[b.pendingLabel]
		lt.breakTo, lt.continueTo = breakTo, continueTo
		b.pendingLabel = ""
	}
	body()
	b.breakTo, b.continueTo = prevB, prevC
}

// caseDispatch wires a switch / type switch / select body: each clause gets
// its own block branching from the current one, falls through to the next
// clause when its last statement is a fallthrough, and otherwise joins
// after. A switch without a default also branches directly to the join; a
// select without a default has no such edge (it blocks until a case fires —
// `select {}` with no clauses never proceeds at all).
func (b *builder) caseDispatch(clauses []ast.Stmt, isSelect bool) {
	after := b.newBlock("case.after")
	prevBreak := b.breakTo
	b.breakTo = after
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel].breakTo = after
		b.pendingLabel = ""
	}
	dispatch := b.cur
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock("case.body")
		dispatch.Succs = append(dispatch.Succs, blocks[i])
	}
	for i, cl := range clauses {
		b.startIn(blocks[i])
		var body []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(e)
			}
			body = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cl.Comm)
			}
			body = cl.Body
		}
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmts(body)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	if !hasDefault && !isSelect {
		dispatch.Succs = append(dispatch.Succs, after)
	}
	b.breakTo = prevBreak
	b.startIn(after)
}

// patchGotos resolves forward gotos once every label block exists.
func (b *builder) patchGotos() {
	for _, g := range b.gotos {
		if lt := b.labels[g.label]; lt != nil {
			g.from.Succs = append(g.from.Succs, lt.start)
		}
	}
}

// isTerminalCall recognises calls that never return: panic and the
// conventional process/goroutine terminators. The check is syntactic (the
// cfg package has no type information); a local function named os.Exit
// would be misclassified, which the repository does not contain.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fn.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fn.Sel.Name == "Exit"
		case "log":
			return strings.HasPrefix(fn.Sel.Name, "Fatal")
		case "runtime":
			return fn.Sel.Name == "Goexit"
		}
	}
	return false
}
