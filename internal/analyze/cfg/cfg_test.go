package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses src as the body of a function and returns its graph plus the
// fileset for position reporting.
func build(t *testing.T, src string) (*Graph, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fix.go", "package p\nfunc f() {\n"+src+"\n}", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return New(fn.Body), fset
}

// nodeMatching finds the first statement-level graph node whose source text
// contains substr.
func nodeMatching(t *testing.T, g *Graph, fset *token.FileSet, src, substr string) ast.Node {
	t.Helper()
	lines := strings.Split("package p\nfunc f() {\n"+src+"\n}", "\n")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			line := lines[fset.Position(n.Pos()).Line-1]
			if strings.Contains(line, substr) && n.Pos() != token.NoPos {
				if strings.Contains(line, substr) {
					return n
				}
			}
		}
	}
	t.Fatalf("no graph node on a line containing %q", substr)
	return nil
}

// matcher returns a predicate matching nodes whose source line contains
// substr.
func matcher(fset *token.FileSet, src, substr string) func(ast.Node) bool {
	lines := strings.Split("package p\nfunc f() {\n"+src+"\n}", "\n")
	return func(n ast.Node) bool {
		p := fset.Position(n.Pos())
		if !p.IsValid() || p.Line-1 >= len(lines) {
			return false
		}
		return strings.Contains(lines[p.Line-1], substr)
	}
}

// escapes is the test harness around Graph.Escapes keyed by line substrings.
func escapes(t *testing.T, src, from, kill string) bool {
	t.Helper()
	g, fset := build(t, src)
	start := nodeMatching(t, g, fset, src, from)
	_, esc := g.Escapes(start, matcher(fset, src, kill), nil)
	return esc
}

func TestStraightLine(t *testing.T) {
	src := "x := open()\nx.close()"
	if escapes(t, src, "open", "close") {
		t.Error("straight-line close reported as escaping")
	}
	src = "x := open()\nuse(x)"
	if !escapes(t, src, "open", "close") {
		t.Error("missing close not reported")
	}
}

func TestIfBranches(t *testing.T) {
	// Close on only one branch escapes via the other.
	src := "x := open()\nif c {\n\tx.close()\n}"
	if !escapes(t, src, "open", "close") {
		t.Error("if-only close: escape through the else path not found")
	}
	// Close on both branches covers every path.
	src = "x := open()\nif c {\n\tx.close()\n} else {\n\tx.close()\n}"
	if escapes(t, src, "open", "close") {
		t.Error("close on both branches still reported as escaping")
	}
	// Close after the join covers every path.
	src = "x := open()\nif c {\n\ty()\n}\nx.close()"
	if escapes(t, src, "open", "close") {
		t.Error("close after join reported as escaping")
	}
	// An early return inside the branch dodges the close after the join.
	src = "x := open()\nif c {\n\treturn\n}\nx.close()"
	if !escapes(t, src, "open", "close") {
		t.Error("early return before close not reported")
	}
}

func TestDefer(t *testing.T) {
	// A deferred close guards every later exit, including early returns.
	src := "x := open()\ndefer x.close()\nif c {\n\treturn\n}\ny()"
	if escapes(t, src, "open", "close") {
		t.Error("deferred close reported as escaping")
	}
	// A defer registered only on one branch leaves the other exposed.
	src = "x := open()\nif c {\n\tdefer x.close()\n\treturn\n}\ny()"
	if !escapes(t, src, "open", "close") {
		t.Error("branch-local defer: unguarded fall-through not reported")
	}
}

func TestLoops(t *testing.T) {
	// Close inside the loop body covers the loop's only way forward when
	// the loop is infinite except for a break after the close.
	src := "x := open()\nfor {\n\tif c {\n\t\tx.close()\n\t\tbreak\n\t}\n}\nreturn"
	if escapes(t, src, "open", "close") {
		t.Error("close-then-break in infinite loop reported as escaping")
	}
	// A conditional loop may run zero times: close only in the body leaks.
	src = "x := open()\nfor c {\n\tx.close()\n}\nreturn"
	if !escapes(t, src, "open", "close") {
		t.Error("zero-iteration conditional loop not reported")
	}
	// continue must pass through the post statement.
	src = "for i := 0; c; i = step() {\n\tif d {\n\t\tcontinue\n\t}\n}"
	g, fset := build(t, src)
	start := nodeMatching(t, g, fset, src, "continue")
	if _, esc := g.Escapes(start, matcher(fset, src, "step"), nil); esc {
		t.Error("continue skipped the loop post statement")
	}
	// Range loops may be empty.
	src = "x := open()\nfor range xs {\n\tx.close()\n}\nreturn"
	if !escapes(t, src, "open", "close") {
		t.Error("zero-iteration range loop not reported")
	}
}

func TestSwitch(t *testing.T) {
	// Close in every case incl. default covers all paths.
	src := "x := open()\nswitch v {\ncase 1:\n\tx.close()\ndefault:\n\tx.close()\n}"
	if escapes(t, src, "open", "close") {
		t.Error("exhaustive switch close reported as escaping")
	}
	// Without a default the dispatch can skip every case.
	src = "x := open()\nswitch v {\ncase 1:\n\tx.close()\n}"
	if !escapes(t, src, "open", "close") {
		t.Error("defaultless switch skip-path not reported")
	}
	// fallthrough runs the next clause.
	src = "x := open()\nswitch v {\ncase 1:\n\ty()\n\tfallthrough\ndefault:\n\tx.close()\n}"
	if escapes(t, src, "open", "close") {
		t.Error("fallthrough into closing clause reported as escaping")
	}
}

func TestSelect(t *testing.T) {
	// A select without default blocks until one case fires; close in every
	// case covers all paths.
	src := "x := open()\nselect {\ncase <-a:\n\tx.close()\ncase <-b:\n\tx.close()\n}"
	if escapes(t, src, "open", "close") {
		t.Error("exhaustive select close reported as escaping")
	}
	// A default clause without close escapes.
	src = "x := open()\nselect {\ncase <-a:\n\tx.close()\ndefault:\n}"
	if !escapes(t, src, "open", "close") {
		t.Error("select default path not reported")
	}
}

func TestPanicPaths(t *testing.T) {
	// Paths ending in panic are not escapes: deferred releases still run
	// during unwind and shipped code does not panic (PR 3).
	src := "x := open()\nif c {\n\tpanic(\"boom\")\n}\nx.close()"
	if escapes(t, src, "open", "close") {
		t.Error("panic path counted as an escape")
	}
	// The same goes for the conventional terminators.
	src = "x := open()\nif c {\n\tos.Exit(1)\n}\nx.close()"
	if escapes(t, src, "open", "close") {
		t.Error("os.Exit path counted as an escape")
	}
	// But a recover-style cleanup does not excuse a missing close on the
	// normal path.
	src = "x := open()\ndefer rec()\ny()"
	if !escapes(t, src, "open", "close") {
		t.Error("normal path without close not reported despite deferred recover")
	}
}

func TestGotoAndLabels(t *testing.T) {
	// goto jumps over the close.
	src := "x := open()\nif c {\n\tgoto out\n}\nx.close()\nout:\nreturn"
	if !escapes(t, src, "open", "close") {
		t.Error("goto skipping the close not reported")
	}
	// Labeled break exits both loops, skipping the inner close.
	src = "x := open()\nouter:\nfor {\n\tfor {\n\t\tif c {\n\t\t\tbreak outer\n\t\t}\n\t\tx.close()\n\t\treturn\n\t}\n}\nreturn"
	if !escapes(t, src, "open", "close") {
		t.Error("labeled break bypassing the close not reported")
	}
}

func TestBadNodes(t *testing.T) {
	// Escapes also witnesses "bad" nodes reached before a kill: here the
	// variable is reassigned before the close.
	src := "x := open()\nif c {\n\tx = open2()\n}\nx.close()"
	g, fset := build(t, src)
	start := nodeMatching(t, g, fset, src, "open()")
	pos, esc := g.Escapes(start, matcher(fset, src, "close"), matcher(fset, src, "open2"))
	if !esc {
		t.Fatal("reassignment before close not witnessed")
	}
	if got := fset.Position(pos).Line; got != 5 {
		t.Errorf("witness line = %d, want 5 (the reassignment)", got)
	}
}

func TestImplicitReturnWitness(t *testing.T) {
	src := "x := open()\ny()"
	g, fset := build(t, src)
	start := nodeMatching(t, g, fset, src, "open")
	pos, esc := g.Escapes(start, matcher(fset, src, "close"), nil)
	if !esc {
		t.Fatal("implicit-return escape not found")
	}
	if pos != g.End {
		t.Errorf("witness = %v, want the closing brace %v", fset.Position(pos), fset.Position(g.End))
	}
}

func TestReachable(t *testing.T) {
	src := "if c {\n\treturn\n}\ny()"
	g, _ := build(t, src)
	for _, b := range g.Blocks {
		if b.Kind == "dead" && g.Reachable(b) {
			t.Errorf("dead block %d reported reachable", b.Index)
		}
	}
	if !g.Reachable(g.Exit) {
		t.Error("exit not reachable")
	}
}

func TestFuncLitOpaque(t *testing.T) {
	// Nodes inside a function literal belong to the literal's own graph,
	// not the enclosing function's.
	src := "f := func() {\n\tinner()\n}\nf()"
	g, fset := build(t, src)
	lines := strings.Split("package p\nfunc f() {\n"+src+"\n}", "\n")
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			p := fset.Position(n.Pos())
			if p.IsValid() && strings.Contains(lines[p.Line-1], "inner") && !strings.Contains(lines[p.Line-1], "func") {
				t.Error("FuncLit body statement leaked into the enclosing graph")
			}
		}
	}
}
