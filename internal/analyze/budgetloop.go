package analyze

import (
	"go/ast"
	"strings"
)

// BudgetLoop enforces the resource-bound contract of the solver packages:
// a `for { ... }` loop with no condition never terminates on its own, so its
// body must poll the budget — Budget.Check, Charge or Cancelled — either
// directly or through a callee that (transitively, across packages) does.
// Without a poll, a pathological instance turns a bounded solve into a hang
// that the degradation ladder can never interrupt.
//
// The callee analysis uses the module-wide index (Module.PollsBudget), so a
// loop whose body only calls sched.runPipeline still counts as polling when
// runPipeline charges the budget three packages away. The check is scoped to
// the solver packages (sched, isk, milp, floorplan, lp, exact) plus the
// online engine, whose epoch re-plan loop runs a full solve per turn and must
// stay interruptible between epochs: elsewhere an unbounded loop is an
// ordinary event loop, not a solve.
var BudgetLoop = &Analyzer{
	Name: "budgetloop",
	Doc:  "unbounded loops in solver packages must poll the budget",
	Run:  runBudgetLoop,
}

// budgetLoopScope lists the packages (by final import-path element) whose
// unbounded loops must stay budget-aware: the solvers, and the online engine
// whose epoch loop dispatches a solve per iteration.
var budgetLoopScope = map[string]bool{
	"sched": true, "isk": true, "milp": true, "floorplan": true, "lp": true, "exact": true,
	"online": true,
}

func runBudgetLoop(pass *Pass) {
	path := pass.Pkg.Path()
	if !budgetLoopScope[LastPathElem(path)] && !strings.HasPrefix(path, "fixture/") {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Cond != nil {
				return true
			}
			if !loopPollsBudget(pass, loop) {
				pass.Reportf(loop.For,
					"unbounded loop never polls the budget: no Budget.Check, Charge or Cancelled reachable from the body (directly or through a module callee)")
			}
			return true
		})
	}
}

// loopPollsBudget scans the loop body (descending into nested statements and
// function literals, which the loop starts or invokes) for a direct poll or
// a call to a module function that transitively polls.
func loopPollsBudget(pass *Pass, loop *ast.ForStmt) bool {
	polled := false
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		if polled {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if IsBudgetPoll(pass.Info, call) {
			polled = true
			return false
		}
		if fn, ok := CalleeOf(pass.Info, call); ok && fn != nil && pass.Module.PollsBudget(fn) {
			polled = true
			return false
		}
		return true
	})
	return polled
}
