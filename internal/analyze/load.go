package analyze

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the package import path ("resched/internal/sched").
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the non-test source files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at dir (the directory containing go.mod). testdata, hidden and
// vendor directories are skipped, as are test files: the invariants guard
// shipped scheduler code, and tests legitimately use patterns (exact float
// expectations, ad-hoc maps) the analyzers would flag.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	ld := &loader{fset: fset, root: root, modPath: modPath, cache: map[string]*types.Package{}}
	var pkgs []*Package
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := check(fset, path, files, ld)
		if err != nil {
			return nil, err
		}
		pkg.Dir = dir
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Fixture tests use it to analyze testdata packages that the
// module walk deliberately skips.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	ld := &loader{fset: fset, cache: map[string]*types.Package{}}
	pkg, err := check(fset, path, files, ld)
	if err != nil {
		return nil, err
	}
	pkg.Dir = dir
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, sorted by name so analysis
// order (and therefore finding order) is reproducible.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks one package with full expression and object resolution.
func check(fset *token.FileSet, path string, files []*ast.File, ld *loader) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyze: no module line in %s/go.mod", root)
}

// loader resolves imports: module-local packages are type-checked from
// source on first use, everything else (the standard library — go.mod has
// no external dependencies) is delegated to the stdlib source importer so
// the analysis needs no pre-compiled export data.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	cache   map[string]*types.Package
	std     types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		files, err := parseDir(l.fset, dir)
		if err != nil {
			return nil, fmt.Errorf("analyze: importing %s: %w", path, err)
		}
		conf := types.Config{Importer: l}
		pkg, err := conf.Check(path, l.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("analyze: importing %s: %w", path, err)
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	if l.std == nil {
		l.std = importer.ForCompiler(l.fset, "source", nil)
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}
