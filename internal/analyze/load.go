package analyze

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the package import path ("resched/internal/sched").
	Path string
	// Dir is the package directory on disk.
	Dir  string
	Fset *token.FileSet
	// Files holds the non-test source files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadModule parses and type-checks every non-test package under the module
// rooted at dir (the directory containing go.mod). testdata, hidden and
// vendor directories are skipped, as are test files: the invariants guard
// shipped scheduler code, and tests legitimately use patterns (exact float
// expectations, ad-hoc maps) the analyzers would flag.
//
// Module-local packages are type-checked exactly once, with full expression
// and object resolution, whether they are reached as an import of another
// package or as a top-level directory of the walk: the loader keeps one
// shared cache of finished packages, so the old double work (an Info-less
// check for import resolution followed by a full check for analysis) is
// gone and import-heavy drivers like cmd/pasched reuse the same checked
// internal packages.
func LoadModule(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	ld := &loader{fset: fset, root: root, modPath: modPath,
		pkgs: map[string]*Package{}, std: map[string]*types.Package{}}
	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := ld.load(path, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil { // no Go files in dir
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. Fixture tests use it to analyze testdata packages that the
// module walk deliberately skips.
func LoadDir(dir, path string) (*Package, error) {
	fset := token.NewFileSet()
	ld := &loader{fset: fset, pkgs: map[string]*Package{}, std: map[string]*types.Package{}}
	pkg, err := ld.load(path, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analyze: no Go files in %s", dir)
	}
	return pkg, nil
}

// parseDir parses the non-test Go files of dir, sorted by name so analysis
// order (and therefore finding order) is reproducible.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyze: no module line in %s/go.mod", root)
}

// loader resolves and type-checks packages. Module-local packages are fully
// checked (with types.Info) exactly once and cached as *Package; standard
// library imports (go.mod has no external dependencies) are delegated to
// the stdlib source importer.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	pkgs    map[string]*Package       // finished module-local packages
	std     map[string]*types.Package // imported stdlib packages
	stdImp  types.Importer
}

// load returns the fully-checked package at path/dir, reusing the cache.
// It returns (nil, nil) when the directory holds no Go files.
func (l *loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyze: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer for the checker's dependency resolution.
func (l *loader) Import(path string) (*types.Package, error) {
	if l.modPath != "" && (path == l.modPath || strings.HasPrefix(path, l.modPath+"/")) {
		dir := filepath.Join(l.root, strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/"))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, fmt.Errorf("analyze: importing %s: %w", path, err)
		}
		if pkg == nil {
			return nil, fmt.Errorf("analyze: importing %s: no Go files in %s", path, dir)
		}
		return pkg.Types, nil
	}
	if pkg, ok := l.std[path]; ok {
		return pkg, nil
	}
	if l.stdImp == nil {
		l.stdImp = importer.ForCompiler(l.fset, "source", nil)
	}
	pkg, err := l.stdImp.Import(path)
	if err != nil {
		return nil, err
	}
	l.std[path] = pkg
	return pkg, nil
}
