package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawClock flags wall-clock deadline checks written against time.Now()
// directly: calls like now.After(deadline) / deadline.Before(time.Now())
// and ordered comparisons whose operands read time.Now() or time.Since(...).
// Three divergent deadline idioms once coexisted in the solvers; they are
// unified in internal/budget, which is the only package allowed to compare
// the clock to a limit (and the only one that honours injected test clocks
// and shared cancellation). Everything else must thread a *budget.Budget.
//
// Pure elapsed-time *measurement* — time.Since into a stats field, the obs
// package's monotonic span clock — never compares, so it is not flagged.
var RawClock = &Analyzer{
	Name: "rawclock",
	Doc:  "wall-clock deadline comparisons belong in internal/budget",
	Run:  runRawClock,
}

// budgetPkgPath is the sanctioned home of clock-versus-deadline logic.
const budgetPkgPath = "resched/internal/budget"

func runRawClock(pass *Pass) {
	if pass.Pkg != nil && pass.Pkg.Path() == budgetPkgPath {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "After" && sel.Sel.Name != "Before") || len(n.Args) != 1 {
					return true
				}
				// Methods named After/Before with a clock read on either
				// side; the time.Time receiver check is implicit in the
				// operands actually containing time.Now()/time.Since().
				if readsClock(pass.Info, sel.X) || readsClock(pass.Info, n.Args[0]) {
					pass.Reportf(n.Pos(),
						"deadline comparison against the raw wall clock; thread a *budget.Budget instead (internal/budget is the only package that may compare time.Now() to a limit)")
				}
			case *ast.BinaryExpr:
				switch n.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ:
				default:
					return true
				}
				if readsClock(pass.Info, n.X) || readsClock(pass.Info, n.Y) {
					pass.Reportf(n.OpPos,
						"ordered comparison on a raw wall-clock read; thread a *budget.Budget instead (internal/budget is the only package that may compare time.Now() to a limit)")
				}
			}
			return true
		})
	}
}

// readsClock reports whether the expression subtree contains a call to
// time.Now or time.Since.
func readsClock(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := qualifiedCall(info, call, "time"); ok && (name == "Now" || name == "Since") {
			found = true
			return false
		}
		return true
	})
	return found
}
