package analyze

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags statements that call an I/O method returning an error and
// silently discard it: Close on a written file loses the buffered-flush
// error, Encode/Write lose short writes, and the experiment artefacts
// (schedule JSON, SVG Gantt charts, benchmark suites) end up truncated with
// a zero exit status. Assigning the result explicitly (`_ = f.Close()`)
// documents intent and is not flagged; neither are strings.Builder and
// bytes.Buffer, whose writers are documented to never fail.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "errors from close/write/encode calls must not be silently discarded",
	Run:  runErrDrop,
}

// errDropMethods are the method names treated as I/O with meaningful
// errors.
var errDropMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Encode": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !errDropMethods[sel.Sel.Name] {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok {
				return true // qualified call, not a method
			}
			sig, ok := selection.Type().(*types.Signature)
			if !ok || !lastResultIsError(sig) {
				return true
			}
			if infallibleWriter(selection.Recv()) {
				return true
			}
			pass.Reportf(call.Pos(),
				"error returned by %s.%s is discarded; check it or assign it to _ explicitly",
				recvName(selection.Recv()), sel.Sel.Name)
			return true
		})
	}
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// infallibleWriter exempts receivers whose write methods are documented to
// always return a nil error.
func infallibleWriter(recv types.Type) bool {
	if ptr, ok := recv.Underlying().(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return pkg == "strings" && name == "Builder" || pkg == "bytes" && name == "Buffer"
}

// recvName renders the receiver type compactly for the finding message.
func recvName(recv types.Type) string {
	t := recv
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name()
		}
		return named.Obj().Name()
	}
	return recv.String()
}
