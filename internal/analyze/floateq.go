package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between two computed floating-point expressions.
// Efficiency indices, implementation costs and LP values are accumulated in
// float64; exact equality between two such computations depends on
// evaluation order and compiler fusion, so a tie-break or threshold written
// with == can flip between builds and break schedule reproducibility.
// Comparisons where either operand is a compile-time constant (the
// pervasive `x == 0` "option unset" test — exact by IEEE-754) are exempt.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no exact ==/!= between computed floating-point expressions",
	Run:  runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isComputedFloat(pass.Info, bin.X) || !isComputedFloat(pass.Info, bin.Y) {
				return true
			}
			pass.Reportf(bin.OpPos,
				"exact %s between computed float64 values; compare with an ordering (<, >) or an explicit tolerance", bin.Op)
			return true
		})
	}
}

// isComputedFloat reports whether expr is a non-constant floating-point
// expression.
func isComputedFloat(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
