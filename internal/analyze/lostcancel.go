package analyze

import "go/ast"

// LostCancel tracks child budgets the way the standard vet tracks contexts:
// a *Budget returned by WithTimeout must have Cancel called on every path to
// the normal function exit, or the child's deadline keeps ticking after the
// phase it bounded has finished. With the per-child cancel chain in
// internal/budget, Cancel detaches exactly the subtree the child governs, so
// the fix is always safe: `defer bud.Cancel()` right after the WithTimeout.
//
// Unlike spanleak, handing the child to a callee or storing it in an Options
// struct does not transfer the release duty — the creator still owns Cancel
// (callees merely poll). Only returning the child moves ownership to the
// caller, so only that use skips the definition.
var LostCancel = &Analyzer{
	Name: "lostcancel",
	Doc:  "WithTimeout child budgets must be cancelled on every path",
	Run:  runLostCancel,
}

func runLostCancel(pass *Pass) {
	runReleaseRule(pass, releaseRule{
		ctors:         map[string]bool{"WithTimeout": true},
		resultType:    "Budget",
		release:       "Cancel",
		what:          "child budget",
		reportDiscard: true,
		escapeIsTransfer: func(parent ast.Node, id *ast.Ident) bool {
			_, isReturn := parent.(*ast.ReturnStmt)
			return isReturn
		},
	})
}
