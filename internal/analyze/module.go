package analyze

import (
	"go/ast"
	"go/types"
	"strings"
	"sync"
)

// Module indexes every package of one Run so the flow-sensitive analyzers
// can resolve callees across package boundaries: budgetloop, for example,
// must see that a loop body calling sched.runPipeline transitively polls
// the budget even though the poll lives in another package. The index is
// built once per Run and is safe for concurrent passes.
type Module struct {
	// Pkgs lists the packages of this Run.
	Pkgs []*Package

	bodies map[*types.Func]*FuncBody

	pollOnce sync.Once
	polls    map[*types.Func]bool
}

// FuncBody pairs a function's declaration with the package that owns it
// (whose Info resolves the identifiers inside the body).
type FuncBody struct {
	Decl *ast.FuncDecl
	Pkg  *Package
}

// NewModule builds the index over pkgs.
func NewModule(pkgs []*Package) *Module {
	m := &Module{Pkgs: pkgs, bodies: map[*types.Func]*FuncBody{}}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					m.bodies[fn] = &FuncBody{Decl: fd, Pkg: pkg}
				}
			}
		}
	}
	return m
}

// Body returns the declaration of fn when it belongs to a package of this
// Run, or nil for external (standard library) and interface functions.
func (m *Module) Body(fn *types.Func) *FuncBody { return m.bodies[fn] }

// CalleeOf resolves a call expression to the *types.Func it invokes, using
// the owning package's type information: direct calls (pkg.Fn, Fn), method
// calls (x.M) and method expressions resolve; calls through function values
// and interface methods do not (nil, false).
func CalleeOf(info *types.Info, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn, true
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Interface method calls have no body anywhere; the caller
				// distinguishes via Body() == nil.
				return fn, true
			}
			return nil, false
		}
		// Qualified call: pkg.Fn.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn, true
		}
	}
	return nil, false
}

// PollsBudget reports whether fn — directly, or transitively through
// callees declared in this module — calls one of the budget polling points
// Check, Charge or Cancelled on a Budget value. Interface calls and
// function values are treated as not polling (the analysis is
// under-approximate in the caller's favour only when a poll hides behind an
// indirect call, which the solver packages avoid).
func (m *Module) PollsBudget(fn *types.Func) bool {
	m.pollOnce.Do(m.buildPolls)
	return m.polls[fn]
}

// buildPolls computes the transitive budget-polling set by fixpoint over
// the module's call edges.
func (m *Module) buildPolls() {
	m.polls = map[*types.Func]bool{}
	// Direct polls. Function literals declared in the body are credited to
	// the enclosing function: they run, at the latest, when the function
	// invokes (or spawns) them, and the solver packages only build literals
	// they immediately use.
	for fn, fb := range m.bodies {
		direct := false
		ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && IsBudgetPoll(fb.Pkg.Info, call) {
				direct = true
				return false
			}
			return true
		})
		// Budget's own methods are the polls themselves.
		if IsBudgetMethod(fn) {
			direct = true
		}
		if direct {
			m.polls[fn] = true
		}
	}
	// Propagate through call edges until stable. The module call graph is
	// small (a few hundred functions), so the quadratic fixpoint is cheap.
	for changed := true; changed; {
		changed = false
		for fn, fb := range m.bodies {
			if m.polls[fn] {
				continue
			}
			found := false
			// Function literals inside fn run (at the latest) when fn calls
			// them; polls inside them are conservatively credited to fn
			// only when the literal is invoked or started directly, which
			// ast.Inspect below approximates by descending into literals.
			ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee, ok := CalleeOf(fb.Pkg.Info, call); ok && m.polls[callee] {
					found = true
					return false
				}
				return true
			})
			if found {
				m.polls[fn] = true
				changed = true
			}
		}
	}
}

// IsBudgetPoll reports whether the call is Budget.Check, Budget.Charge or
// Budget.Cancelled. The receiver is matched by type name ("Budget", or a
// pointer to it) rather than import path so analyzer fixtures can declare a
// structural stand-in; the module contains exactly one such type.
func IsBudgetPoll(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := CalleeOf(info, call)
	return ok && fn != nil && IsBudgetMethod(fn)
}

// IsBudgetMethod reports whether fn is a polling method of a Budget type.
func IsBudgetMethod(fn *types.Func) bool {
	switch fn.Name() {
	case "Check", "Charge", "Cancelled":
	default:
		return false
	}
	return ReceiverTypeName(fn) == "Budget"
}

// ReceiverTypeName returns the name of fn's receiver type (through one
// pointer), or "" for plain functions.
func ReceiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// InspectNoFuncLit walks the AST below n without descending into function
// literals: a flow-sensitive analyzer examining one function's paths must
// not credit it with statements that execute in a different function.
func InspectNoFuncLit(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if c != nil {
			visit(c)
		}
		return true
	})
}

// FuncScopes yields every function body in the file along with the
// enclosing declaration's name: top-level functions and methods first, then
// each function literal as its own scope (flow analyses treat a literal as
// a separate function).
type FuncScope struct {
	// Name labels the scope in diagnostics ("RSchedule", "RSchedule.func").
	Name string
	// Body is the function body analyzed as one CFG.
	Body *ast.BlockStmt
	// Decl is the enclosing FuncDecl (also set for literals, for context).
	Decl *ast.FuncDecl
}

// FuncScopesOf collects the scopes of one file in source order.
func FuncScopesOf(file *ast.File) []FuncScope {
	var scopes []FuncScope
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		scopes = append(scopes, FuncScope{Name: fd.Name.Name, Body: fd.Body, Decl: fd})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				scopes = append(scopes, FuncScope{
					Name: fd.Name.Name + ".func", Body: lit.Body, Decl: fd,
				})
			}
			return true
		})
	}
	return scopes
}

// LastPathElem returns the final element of an import path.
func LastPathElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
