package analyze

import (
	"go/ast"
)

// GlobalRand flags uses of the package-global math/rand source. All
// randomness in the schedulers must flow through an explicitly seeded
// *rand.Rand (sched.Options.Rand / RandomOptions.Seed): the global source
// is process-wide state that other code can reseed or advance, which makes
// PA-R runs irreproducible and the convergence experiments unrepeatable.
// Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) are the
// sanctioned entry points and are not flagged.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "randomness must flow through an injected *rand.Rand, not the global source",
	Run:  runGlobalRand,
}

// globalRandFuncs are the math/rand package-level functions that draw from
// the shared global source.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint": true, "Uint32N": true, "Uint64N": true, "N": true,
}

func runGlobalRand(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if name, ok := qualifiedCall(pass.Info, call, path); ok && globalRandFuncs[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the process-global source; use the injected *rand.Rand (sched.Options.Rand) instead", name)
				}
			}
			return true
		})
	}
}
