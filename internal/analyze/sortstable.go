package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SortStable flags sort.Slice calls whose less function compares a single
// key that need not be unique (a struct field, a derived value). sort.Slice
// is an unstable pdqsort: elements with equal keys come out in an order
// that depends on the input permutation and on internal randomization
// across Go releases, so a schedule assembled from such a sort is not
// reproducible. The fix is sort.SliceStable or an explicit tie-break chain
// ending in a unique key, as (*state).hwOrder in internal/sched does.
//
// Comparing the elements themselves (`xs[i] < xs[j]` on a basic element
// type) is exempt: equal elements are indistinguishable, so instability
// cannot be observed.
var SortStable = &Analyzer{
	Name: "sortstable",
	Doc:  "sort.Slice needs a unique key, a tie-break, or sort.SliceStable",
	Run:  runSortStable,
}

func runSortStable(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			if name, ok := qualifiedCall(pass.Info, call, "sort"); !ok || name != "Slice" {
				return true
			}
			less, ok := call.Args[1].(*ast.FuncLit)
			if !ok {
				return true
			}
			// A tie-break needs more than one statement (or a chained
			// condition); a single `return a.X < b.X` cannot have one.
			if len(less.Body.List) != 1 {
				return true
			}
			ret, ok := less.Body.List[0].(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			bin, ok := ret.Results[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.LSS && bin.Op != token.GTR) {
				return true
			}
			if comparesWholeElement(pass.Info, call.Args[0], less, bin) {
				return true
			}
			pass.Reportf(call.Pos(),
				"sort.Slice with a single-key less func: equal keys keep an unpredictable order; use sort.SliceStable or add a tie-break on a unique key")
			return true
		})
	}
}

// comparesWholeElement recognises `xs[i] < xs[j]` where xs is the sorted
// slice, i and j are the less-func parameters, and the element type is a
// basic ordered type — the one single-comparison form that is deterministic
// regardless of sort stability.
func comparesWholeElement(info *types.Info, slice ast.Expr, less *ast.FuncLit, bin *ast.BinaryExpr) bool {
	sliceID, ok := slice.(*ast.Ident)
	if !ok {
		return false
	}
	sliceObj := info.Uses[sliceID]
	if sliceObj == nil {
		return false
	}
	params := less.Type.Params
	if params == nil || len(params.List) == 0 {
		return false
	}
	var paramObjs []types.Object
	for _, field := range params.List {
		for _, name := range field.Names {
			paramObjs = append(paramObjs, info.Defs[name])
		}
	}
	if len(paramObjs) != 2 {
		return false
	}
	side := func(e ast.Expr) (types.Object, bool) {
		ix, ok := e.(*ast.IndexExpr)
		if !ok {
			return nil, false
		}
		base, ok := ix.X.(*ast.Ident)
		if !ok || info.Uses[base] != sliceObj {
			return nil, false
		}
		id, ok := ix.Index.(*ast.Ident)
		if !ok {
			return nil, false
		}
		return info.Uses[id], true
	}
	l, ok := side(bin.X)
	if !ok {
		return false
	}
	r, ok := side(bin.Y)
	if !ok || l == r {
		return false
	}
	if !(l == paramObjs[0] && r == paramObjs[1] || l == paramObjs[1] && r == paramObjs[0]) {
		return false
	}
	basic, ok := info.Types[bin.X].Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsOrdered != 0
}
