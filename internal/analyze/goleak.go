package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"resched/internal/analyze/cfg"
)

// GoLeak requires every goroutine started in a library package to have a
// reachable join — a WaitGroup.Wait, a channel receive, or a range over a
// channel — on every path from the go statement to the function's normal
// exit. The PA-R portfolio and the experiment harness both follow the
// spawn/Wait idiom; a goroutine that can outlive the function that started
// it breaks the determinism story (it may still be appending to shared
// state while the caller reads the result) and leaks under repeated solves.
//
// main packages (cmd/...) own the process lifetime and examples are
// illustrative, so both are exempt. The join is matched structurally: any
// Wait method on a type named WaitGroup, any receive expression, any range
// over a value of channel type.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in library packages must be joined on every path",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, elem := range strings.Split(pass.Pkg.Path(), "/") {
		if elem == "cmd" || elem == "examples" {
			return
		}
	}
	for _, file := range pass.Files {
		for _, scope := range FuncScopesOf(file) {
			checkGoroutines(pass, scope)
		}
	}
}

func checkGoroutines(pass *Pass, scope FuncScope) {
	var spawns []*ast.GoStmt
	var deferredJoins []*ast.DeferStmt
	rangeHeads := map[ast.Node]bool{} // range-over-channel head expressions
	InspectNoFuncLit(scope.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.GoStmt:
			spawns = append(spawns, n)
		case *ast.DeferStmt:
			deferredJoins = append(deferredJoins, n)
		case *ast.RangeStmt:
			if tv, ok := pass.Info.Types[n.X]; ok {
				if _, ok := tv.Type.Underlying().(*types.Chan); ok {
					rangeHeads[n.X] = true
				}
			}
		}
	})
	if len(spawns) == 0 {
		return
	}
	graph := cfg.New(scope.Body)
	join := func(n ast.Node) bool { return isJoin(pass.Info, n, rangeHeads) }
	for _, g := range spawns {
		if graph.BlockOf(g) == nil {
			continue
		}
		// A deferred join registered before the spawn (the `defer wg.Wait()`
		// prologue idiom) runs on every exit the spawn can reach; Escapes
		// only scans forward from the go statement, so cover it here. The
		// source-order check over-approximates a defer inside an earlier
		// branch, which the spawn/Wait idiom does not produce.
		covered := false
		for _, d := range deferredJoins {
			if d.Pos() < g.Pos() && join(d) {
				covered = true
				break
			}
		}
		if covered {
			continue
		}
		if pos, escaped := graph.Escapes(g, join, nil); escaped {
			where := pass.Fset.Position(pos)
			pass.Reportf(g.Pos(),
				"goroutine is not joined on every path: control reaches line %d without a WaitGroup.Wait, channel receive or channel range",
				where.Line)
		}
	}
}

// isJoin reports whether the CFG node n synchronises with spawned
// goroutines: a WaitGroup.Wait call (including deferred), a channel receive,
// or the head of a range over a channel.
func isJoin(info *types.Info, n ast.Node, rangeHeads map[ast.Node]bool) bool {
	if rangeHeads[n] {
		return true
	}
	found := false
	InspectNoFuncLit(n, func(c ast.Node) {
		switch c := c.(type) {
		case *ast.CallExpr:
			if fn, ok := CalleeOf(info, c); ok && fn != nil &&
				fn.Name() == "Wait" && ReceiverTypeName(fn) == "WaitGroup" {
				found = true
			}
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				found = true
			}
		}
	})
	return found
}
