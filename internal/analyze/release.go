package analyze

import (
	"go/ast"
	"go/types"

	"resched/internal/analyze/cfg"
)

// releaseRule is one must-release invariant: a constructor method whose
// result must have its release method called on every path to the normal
// function exit. spanleak (Trace.Start/StartRoot → Span.End) and lostcancel
// (Budget.WithTimeout → Budget.Cancel) instantiate it.
type releaseRule struct {
	// ctors are the method names constructing the tracked value.
	ctors map[string]bool
	// resultType is the name of the pointed-to named result type ("Span").
	// Matching is structural — by type name, not import path — so analyzer
	// fixtures can declare stand-ins; the module has exactly one such type.
	resultType string
	// release is the method that must run on every path ("End").
	release string
	// transferParents lists the AST parent kinds through which a use of the
	// tracked variable transfers release responsibility elsewhere: when one
	// occurs the definition is skipped (conservative no-report). Uses whose
	// parent kind is not listed and not intrinsically sanctioned (method
	// receiver, assignment target, comparison) behave per escapeIsTransfer.
	escapeIsTransfer func(parent ast.Node, id *ast.Ident) bool
	// reportDiscard, when set, flags a constructor call whose result is not
	// bound to a variable at all.
	reportDiscard bool
	// what names the tracked value in messages ("span", "child budget").
	what string
}

// runReleaseRule checks every function scope of the package against the rule.
func runReleaseRule(pass *Pass, rule releaseRule) {
	for _, file := range pass.Files {
		for _, scope := range FuncScopesOf(file) {
			checkScope(pass, rule, scope)
		}
	}
}

func checkScope(pass *Pass, rule releaseRule, scope FuncScope) {
	var graph *cfg.Graph // built lazily: most scopes have no constructor call
	ensureGraph := func() *cfg.Graph {
		if graph == nil {
			graph = cfg.New(scope.Body)
		}
		return graph
	}

	InspectNoFuncLit(scope.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if rule.reportDiscard && rule.isCtor(pass.Info, n.X) {
				pass.Reportf(n.Pos(), "%s returned by %s is discarded and can never be %s-ed",
					rule.what, ctorName(n.X), rule.release)
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 || !rule.isCtor(pass.Info, n.Rhs[0]) {
				return
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				if ok && rule.reportDiscard {
					pass.Reportf(n.Pos(), "%s returned by %s is discarded and can never be %s-ed",
						rule.what, ctorName(n.Rhs[0]), rule.release)
				}
				return
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj == nil {
				return
			}
			checkDef(pass, rule, scope, ensureGraph(), n, id, obj)
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 || !rule.isCtor(pass.Info, vs.Values[0]) {
					continue
				}
				obj := pass.Info.Defs[vs.Names[0]]
				if obj == nil {
					continue
				}
				checkDef(pass, rule, scope, ensureGraph(), n, vs.Names[0], obj)
			}
		}
	})
}

// checkDef verifies one tracked definition: every path from def to the
// normal exit must pass a release (or register one with defer) before
// reaching the exit or a reassignment of the variable.
func checkDef(pass *Pass, rule releaseRule, scope FuncScope, graph *cfg.Graph, def ast.Node, id *ast.Ident, obj types.Object) {
	if graph.BlockOf(def) == nil {
		// The definition sits in a statement position the CFG does not
		// model (it should not happen); stay silent rather than guess.
		return
	}
	if transfersOwnership(pass.Info, rule, scope.Body, obj, def) {
		return
	}
	kill := func(n ast.Node) bool { return releases(pass.Info, rule, n, obj) }
	bad := func(n ast.Node) bool { return reassigns(pass.Info, n, obj, def) }
	if pos, escaped := graph.Escapes(def, kill, bad); escaped {
		where := pass.Fset.Position(pos)
		pass.Reportf(def.Pos(),
			"%s %q is not %s-ed on every path: control reaches line %d without %s.%s (call it on that path or defer it)",
			rule.what, id.Name, rule.release, where.Line, rule.resultType, rule.release)
	}
}

// isCtor matches a call to one of the rule's constructor methods returning
// a pointer to the rule's result type.
func (r releaseRule) isCtor(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !r.ctors[sel.Sel.Name] {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == r.resultType
}

// ctorName renders the constructor selector for messages.
func ctorName(e ast.Expr) string {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
	}
	return "constructor"
}

// releases reports whether CFG node n calls obj's release method, either
// directly, or inside a deferred function literal (defer func() { sp.End() }()).
func releases(info *types.Info, rule releaseRule, n ast.Node, obj types.Object) bool {
	found := false
	check := func(c ast.Node) {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != rule.release {
			return
		}
		if base, ok := sel.X.(*ast.Ident); ok && info.Uses[base] == obj {
			found = true
		}
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		// A deferred literal runs on every exit once registered: anything
		// inside it counts.
		ast.Inspect(d, func(c ast.Node) bool { check(c); return !found })
		return found
	}
	InspectNoFuncLit(n, check)
	return found
}

// reassigns reports whether CFG node n overwrites obj with a new value
// (other than the definition under scrutiny itself).
func reassigns(info *types.Info, n ast.Node, obj types.Object, def ast.Node) bool {
	if n == def {
		return false
	}
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if info.Uses[id] == obj || info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// transfersOwnership scans the whole scope for uses of obj that move the
// release responsibility out of this function (per the rule), in which case
// the definition is skipped rather than reported: the analysis stays
// conservative instead of second-guessing explicit hand-offs.
func transfersOwnership(info *types.Info, rule releaseRule, body *ast.BlockStmt, obj types.Object, def ast.Node) bool {
	transfer := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if transfer {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj && len(stack) > 0 {
			parent := stack[len(stack)-1]
			if !sanctionedUse(stack, id) && rule.escapeIsTransfer(parent, id) {
				transfer = true
			}
		}
		stack = append(stack, n)
		return true
	})
	return transfer
}

// sanctionedUse recognises the contexts that never move release
// responsibility: calling a method on the variable, assigning to it,
// declaring it, or comparing it.
func sanctionedUse(stack []ast.Node, id *ast.Ident) bool {
	parent := stack[len(stack)-1]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// Method call receiver: id.Method(...). Reading a field through the
		// variable is equally harmless.
		return p.X == id
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if lhs == id {
				return true
			}
		}
		return false
	case *ast.ValueSpec:
		for _, name := range p.Names {
			if name == id {
				return true
			}
		}
		return false
	case *ast.BinaryExpr:
		return true // comparisons (sp != nil) and the like
	}
	return false
}
