package analyze

import (
	"go/ast"
	"go/types"
)

// SeedShare flags goroutine launches (`go func() { ... }()`) whose function
// literal captures a *rand.Rand or rand.Source declared outside the literal.
// math/rand generators are not safe for concurrent use, and — worse for
// this repository — sharing one across goroutines makes the draw order
// depend on goroutine scheduling, which destroys PA-R's fixed-seed
// reproducibility. The parallel search derives a private generator per
// worker from mixSeed (internal/sched/parallel.go); new concurrent code
// must do the same.
var SeedShare = &Analyzer{
	Name: "seedshare",
	Doc:  "goroutines must own a private *rand.Rand, not capture a shared one",
	Run:  runSeedShare,
}

// seedShareExempt lists packages allowed to spawn goroutines without this
// check: no randomness flows through them, and their internal goroutines
// (budget timers, trace writers) would only produce noise findings.
var seedShareExempt = map[string]bool{
	"resched/internal/budget": true,
	"resched/internal/obs":    true,
}

func runSeedShare(pass *Pass) {
	if pass.Pkg != nil && seedShareExempt[pass.Pkg.Path()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			// One finding per captured variable per literal, at first use.
			reported := map[*types.Var]bool{}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pass.Info.Uses[id].(*types.Var)
				if !ok || reported[v] {
					return true
				}
				// Declared inside the literal (parameter or local): the
				// goroutine owns it.
				if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
					return true
				}
				if !isRandType(v.Type()) {
					return true
				}
				reported[v] = true
				pass.Reportf(id.Pos(),
					"goroutine captures %s (%s) declared outside the literal; a shared generator makes the draw order depend on goroutine scheduling — derive a private per-goroutine *rand.Rand instead (see mixSeed in internal/sched)",
					v.Name(), v.Type())
				return true
			})
			return true
		})
	}
}

// isRandType reports whether t is *rand.Rand, rand.Rand or a
// rand.Source/Source64 from math/rand or math/rand/v2.
func isRandType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
	default:
		return false
	}
	switch obj.Name() {
	case "Rand", "Source", "Source64":
		return true
	}
	return false
}
