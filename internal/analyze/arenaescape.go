package analyze

import (
	"go/ast"
	"go/types"
	"strings"
)

// ArenaEscape guards the scratch-arena discipline in the hot solver paths:
// types marked with a `//reschedvet:arena` directive on their declaration
// (sched's per-solve state, for example) own reusable backing storage that
// the next solve overwrites. A slice or map read out of an arena-marked
// value must therefore never leave the solve: returning it from an exported
// function, or storing it into a *Result / *Stats struct that outlives the
// call, publishes memory the arena will recycle — the classic "results
// changed after the next Schedule call" heisenbug.
//
// The analysis flags three sinks for arena-backed expressions (a field of
// reference type read from an arena value, possibly through a slice
// expression or an append whose destination aliases it):
//
//   - a return statement in an exported function or method;
//   - an assignment into a field of a struct type named ...Result/...Stats;
//   - a composite literal of such a type.
//
// Internal hand-offs between unexported helpers (sched's runPipeline
// returning a view that emit copies out) stay legal: the copy boundary is
// where the Result is built, which is exactly what the sinks police.
var ArenaEscape = &Analyzer{
	Name: "arenaescape",
	Doc:  "arena-backed slices and maps must not escape into results",
	Run:  runArenaEscape,
}

const arenaDirective = "//reschedvet:arena"

func runArenaEscape(pass *Pass) {
	arenas := arenaTypes(pass)
	if len(arenas) == 0 {
		return
	}
	backed := func(e ast.Expr) bool { return arenaBacked(pass.Info, arenas, e) }
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.IsExported() {
				InspectNoFuncLit(fd.Body, func(n ast.Node) {
					ret, ok := n.(*ast.ReturnStmt)
					if !ok {
						return
					}
					for _, res := range ret.Results {
						if backed(res) {
							pass.Reportf(res.Pos(),
								"returned expression aliases the scratch arena: exported %s publishes storage the next solve overwrites (copy it first)",
								fd.Name.Name)
						}
					}
				})
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) != len(n.Rhs) {
						return true
					}
					for i, lhs := range n.Lhs {
						if resultFieldStore(pass.Info, lhs) && backed(n.Rhs[i]) {
							pass.Reportf(n.Rhs[i].Pos(),
								"stored expression aliases the scratch arena: the Result/Stats struct outlives the solve (copy it first)")
						}
					}
				case *ast.CompositeLit:
					if !resultLikeType(pass.Info.Types[n].Type) {
						return true
					}
					for _, elt := range n.Elts {
						val := elt
						if kv, ok := elt.(*ast.KeyValueExpr); ok {
							val = kv.Value
						}
						if backed(val) {
							pass.Reportf(val.Pos(),
								"composite literal field aliases the scratch arena: the Result/Stats struct outlives the solve (copy it first)")
						}
					}
				}
				return true
			})
		}
	}
}

// arenaTypes collects the named types of this package whose declarations
// carry the //reschedvet:arena directive (on the type spec or its GenDecl).
func arenaTypes(pass *Pass) map[types.Object]bool {
	arenas := map[types.Object]bool{}
	hasDirective := func(groups ...*ast.CommentGroup) bool {
		for _, g := range groups {
			if g == nil {
				continue
			}
			for _, c := range g.List {
				if strings.HasPrefix(c.Text, arenaDirective) {
					return true
				}
			}
		}
		return false
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasDirective(gd.Doc, ts.Doc, ts.Comment) {
					if obj := pass.Info.Defs[ts.Name]; obj != nil {
						arenas[obj] = true
					}
				}
			}
		}
	}
	return arenas
}

// arenaBacked reports whether e aliases storage owned by an arena-marked
// type: a reference-typed field selected from an arena value, possibly
// wrapped in slice expressions or an append over such a field.
func arenaBacked(info *types.Info, arenas map[types.Object]bool, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return arenaBacked(info, arenas, e.X) // s.buf[:n] still aliases s.buf
	case *ast.IndexExpr:
		// s.rows[i] — an element of an arena-backed slice of slices still
		// aliases the arena when the element itself is a reference type.
		return refType(info.Types[e].Type) && arenaBacked(info, arenas, e.X)
	case *ast.CallExpr:
		// append(s.buf, ...) may return the same backing array when the
		// capacity suffices; treat it as aliasing its destination.
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" &&
			info.Uses[id] != nil && info.Uses[id].Pkg() == nil && len(e.Args) > 0 {
			return arenaBacked(info, arenas, e.Args[0])
		}
		return false
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok || sel.Kind() != types.FieldVal || !refType(sel.Type()) {
			return false
		}
		recv := sel.Recv()
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
		}
		named, ok := recv.(*types.Named)
		return ok && arenas[named.Obj()]
	}
	return false
}

// refType reports whether t shares backing storage when copied.
func refType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer:
		return true
	}
	return false
}

// resultFieldStore matches an assignment target of the form x.F where x's
// (possibly pointed-to) named type is Result- or Stats-suffixed.
func resultFieldStore(info *types.Info, lhs ast.Expr) bool {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return false
	}
	return resultLikeType(tv.Type)
}

// resultLikeType reports whether t names a published result carrier.
func resultLikeType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.HasSuffix(name, "Result") || strings.HasSuffix(name, "Stats")
}
