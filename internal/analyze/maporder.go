package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose body leaks the random
// iteration order into something ordered: appending to a slice that is
// never subsequently sorted in the same function, or writing formatted
// output. Map iteration order differs between runs (and deliberately so in
// the Go runtime), which silently breaks the byte-identical-schedule
// guarantee PA and seeded PA-R rely on. Ranging to aggregate (sums, maxima,
// membership tests) is order-insensitive and not flagged; appending keys
// and sorting the slice afterwards is the sanctioned pattern.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration order must not leak into slices or output",
	Run:  runMapOrder,
}

// isSortCall recognises the sorting entry points that launder an append
// target — calls whose first argument is the slice being ordered.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	if name, ok := qualifiedCall(info, call, "sort"); ok {
		switch name {
		case "Ints", "Strings", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
			return true
		}
	}
	if name, ok := qualifiedCall(info, call, "slices"); ok {
		switch name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapOrderFunc(pass, fn.Body)
		}
	}
}

func checkMapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	// Collect every sort call in the function with its position and target,
	// so "append then sort" is recognised wherever the sort sits.
	type sortOf struct {
		obj types.Object
		pos token.Pos
	}
	var sorts []sortOf
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || !isSortCall(pass.Info, call) {
			return true
		}
		if id, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.Info.Uses[id]; obj != nil {
				sorts = append(sorts, sortOf{obj, call.Pos()})
			}
		}
		return true
	})
	sortedAfter := func(obj types.Object, after token.Pos) bool {
		for _, s := range sorts {
			if s.obj == obj && s.pos > after {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, rng, sortedAfter)
		return true
	})
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, sortedAfter func(types.Object, token.Pos) bool) {
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.Info, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if obj == nil {
					continue
				}
				if sortedAfter(obj, rng.Pos()) {
					continue
				}
				pass.Reportf(rng.Pos(),
					"range over map appends to %q in nondeterministic order; sort the map keys first or sort %q afterwards", id.Name, id.Name)
				reported = true
				return false
			}
		case *ast.CallExpr:
			if isOrderedOutput(pass.Info, n) {
				pass.Reportf(rng.Pos(),
					"range over map writes output in nondeterministic order; iterate over sorted keys instead")
				reported = true
				return false
			}
		}
		return true
	})
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOrderedOutput recognises calls that emit ordered bytes: fmt printing
// and Write*/Encode methods (file writers, buffers, encoders alike — a
// buffer filled in map order is just deferred nondeterministic output).
func isOrderedOutput(info *types.Info, call *ast.CallExpr) bool {
	if name, ok := qualifiedCall(info, call, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Only method calls count; pkg.WriteX functions are caught above when
	// they matter (fmt), and qualified identifiers are not receivers.
	if _, isMethod := info.Selections[sel]; !isMethod {
		return false
	}
	name := sel.Sel.Name
	return name == "Encode" || len(name) >= 5 && name[:5] == "Write"
}
