// Package fixture seeds arenaescape violations: slices and maps backed by
// an arena-marked scratch type escaping into Result/Stats structs or out of
// exported functions. The //reschedvet:arena directive below is the same
// marker sched's state type carries.
package fixture

// scratch stands in for sched's per-solve state: reusable backing storage
// the next solve overwrites.
//
//reschedvet:arena
type scratch struct {
	buf   []int
	index map[string]int
	rows  [][]int
}

// SolveResult mirrors a published result carrier (suffix "Result").
type SolveResult struct {
	Placements []int
}

// SolveStats mirrors a published stats carrier (suffix "Stats").
type SolveStats struct {
	ByName map[string]int
}

// BadReturn publishes the arena's backing array from an exported function.
func BadReturn(s *scratch) []int {
	return s.buf // want "aliases the scratch arena"
}

// BadSliceReturn still aliases through a slice expression.
func BadSliceReturn(s *scratch, n int) []int {
	return s.buf[:n] // want "aliases the scratch arena"
}

// badStore parks arena storage in a struct that outlives the solve.
func badStore(s *scratch, r *SolveResult) {
	r.Placements = s.buf // want "aliases the scratch arena"
}

// badAppendAlias may reuse the arena's backing array when capacity suffices.
func badAppendAlias(s *scratch, r *SolveResult) {
	r.Placements = append(s.buf, 1) // want "aliases the scratch arena"
}

// badComposite builds a stats carrier directly over arena storage.
func badComposite(s *scratch) SolveStats {
	return SolveStats{ByName: s.index} // want "aliases the scratch arena"
}

// badRowAlias publishes one row of an arena-backed slice of slices.
func badRowAlias(s *scratch, r *SolveResult, i int) {
	r.Placements = s.rows[i] // want "aliases the scratch arena"
}

// GoodCopy copies out of the arena before publishing: the canonical fix.
func GoodCopy(s *scratch) []int {
	out := make([]int, len(s.buf))
	copy(out, s.buf)
	return out
}

// GoodAppendFresh rebases onto a nil destination: fresh backing array.
func GoodAppendFresh(s *scratch) []int {
	return append([]int(nil), s.buf...)
}

// GoodScalar reads a value, not a reference: no aliasing.
func GoodScalar(s *scratch) int {
	return s.buf[0]
}

// internalView hands an arena view to another unexported helper: legal, the
// copy boundary is where the Result is built.
func internalView(s *scratch, n int) []int {
	return s.buf[:n]
}

// SuppressedReturn shows the escape hatch for a documented zero-copy API.
func SuppressedReturn(s *scratch) []int {
	//reschedvet:ignore arenaescape fixture demonstrates the escape hatch
	return s.buf
}
