// Package fixture seeds budgetloop violations: condition-less loops that
// never poll the budget, in a package the analyzer treats as solver scope
// (every "fixture/..." path is in scope so this file can exercise the rule).
// Budget is declared locally and matched structurally by type name and the
// polling method names Check, Charge and Cancelled.
package fixture

// Budget stands in for budget.Budget.
type Budget struct{}

// Check mirrors budget.Budget.Check.
func (b *Budget) Check() error { return nil }

// Charge mirrors budget.Budget.Charge.
func (b *Budget) Charge(n int64) error { return nil }

// Cancelled mirrors budget.Budget.Cancelled.
func (b *Budget) Cancelled() bool { return false }

func step() bool { return false }

// pollingHelper polls the budget on the caller's behalf: loops calling it
// count as budget-aware through the module call-graph index.
func pollingHelper(b *Budget) bool { return b.Cancelled() }

// deepHelper polls transitively, two calls away from the loop.
func deepHelper(b *Budget) bool { return pollingHelper(b) }

// silentHelper does arbitrary work but never polls.
func silentHelper() bool { return step() }

// badSpin loops forever without ever consulting the budget.
func badSpin(b *Budget) {
	for { // want "never polls the budget"
		if step() {
			return
		}
	}
}

// badSilentCallee calls a helper, but the helper does not poll either.
func badSilentCallee(b *Budget) {
	for { // want "never polls the budget"
		if silentHelper() {
			return
		}
	}
}

// goodDirectPoll checks the budget at every turn of the loop.
func goodDirectPoll(b *Budget) {
	for {
		if b.Check() != nil {
			return
		}
		step()
	}
}

// goodChargePoll charges per unit of work, the branch-and-bound idiom.
func goodChargePoll(b *Budget) {
	for {
		if b.Charge(1) != nil {
			return
		}
		if step() {
			return
		}
	}
}

// goodTransitivePoll polls through two levels of module callees.
func goodTransitivePoll(b *Budget) {
	for {
		if deepHelper(b) {
			return
		}
	}
}

// goodBoundedLoop has a condition: termination does not rest on the budget.
func goodBoundedLoop(b *Budget) {
	for i := 0; i < 10; i++ {
		step()
	}
}

// suppressed shows the escape hatch for a loop whose termination is proven
// by other means.
func suppressed() {
	//reschedvet:ignore budgetloop fixture demonstrates the escape hatch
	for {
		if step() {
			return
		}
	}
}

// epoch mirrors the online engine's per-boundary re-plan step: it runs a
// whole solve, so the loop driving it must poll between epochs.
func epoch(b *Budget) bool { return step() }

// badEpochLoop drains an arrival queue one re-plan per turn but never
// consults the budget — a pathological trace would spin forever.
func badEpochLoop(b *Budget) {
	for { // want "never polls the budget"
		if epoch(b) {
			return
		}
	}
}

// goodEpochLoop is the online engine's shape: poll first, then re-plan.
func goodEpochLoop(b *Budget) {
	for {
		if b.Check() != nil {
			return
		}
		if epoch(b) {
			return
		}
	}
}
