// Package fixture seeds goleak violations: goroutines started in a library
// package with no reachable join on some path to the function exit.
// WaitGroup is declared locally and matched structurally (any Wait method on
// a type named WaitGroup); receives and channel ranges are recognised by
// type, so the fixture's channels are ordinary ones.
package fixture

// WaitGroup stands in for sync.WaitGroup.
type WaitGroup struct{}

// Add mirrors sync.WaitGroup.Add.
func (wg *WaitGroup) Add(n int) {}

// Done mirrors sync.WaitGroup.Done.
func (wg *WaitGroup) Done() {}

// Wait mirrors sync.WaitGroup.Wait.
func (wg *WaitGroup) Wait() {}

func work() {}

// badFireAndForget spawns and returns; the goroutine outlives the function.
func badFireAndForget() {
	go work() // want "not joined on every path"
}

// badConditionalJoin waits on the happy path but the early return escapes.
func badConditionalJoin(c bool, wg *WaitGroup) {
	wg.Add(1)
	go work() // want "not joined on every path"
	if c {
		return
	}
	wg.Wait()
}

// goodWaitGroup is the spawn/Wait idiom of the parallel searches.
func goodWaitGroup(wg *WaitGroup, workers int) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// goodDeferredWait registers the join before spawning; every exit after the
// spawn runs it.
func goodDeferredWait(wg *WaitGroup, c bool) {
	wg.Add(1)
	defer wg.Wait()
	go work()
	if c {
		return
	}
	work()
}

// goodChannelReceive joins by receiving the goroutine's completion signal.
func goodChannelReceive() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// goodRangeDrain joins by draining the goroutine's output channel.
func goodRangeDrain() {
	ch := make(chan int)
	go func() {
		defer close(ch)
		ch <- 1
	}()
	for range ch {
	}
}

// suppressed shows the escape hatch for a genuinely detached goroutine.
func suppressed() {
	//reschedvet:ignore goleak fixture demonstrates the escape hatch
	go work()
}

// The server shapes: a long-lived worker pool spawned by a constructor and
// joined by a separate drain method, the idiom of the serving tier's
// admission queue (internal/serve).

// server stands in for a serving tier owning a worker pool.
type server struct {
	wg    WaitGroup
	queue chan int
}

// badNewServer spawns lifetime workers and returns: per-function analysis
// has no way to see the join that lives in a drain method, so without a
// documented suppression the constructor is flagged.
func badNewServer(workers int) *server {
	s := &server{queue: make(chan int)}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		go func() { // want "not joined on every path"
			defer s.wg.Done()
			for range s.queue {
			}
		}()
	}
	return s
}

// suppressedNewServer is the sanctioned form of the same constructor: the
// suppression names the joining method, the convention pool constructors
// follow.
func suppressedNewServer(workers int) *server {
	s := &server{queue: make(chan int)}
	for w := 0; w < workers; w++ {
		s.wg.Add(1)
		//reschedvet:ignore goleak joined by (*server).drain
		go func() {
			defer s.wg.Done()
			for range s.queue {
			}
		}()
	}
	return s
}

// drain is the other half of the suppressed constructor: close the queue
// so the workers' range loops end, then join on every path — including the
// forced-cancel branch.
func (s *server) drain(forced bool) {
	close(s.queue)
	if forced {
		s.wg.Wait()
		return
	}
	s.wg.Wait()
}

// badDrainForgetsForcedPath joins the pool on the graceful path but leaks
// it on the forced-shutdown return.
func badDrainForgetsForcedPath(wg *WaitGroup, forced bool) {
	wg.Add(1)
	go work() // want "not joined on every path"
	if forced {
		return
	}
	wg.Wait()
}
