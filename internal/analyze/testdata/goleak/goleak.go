// Package fixture seeds goleak violations: goroutines started in a library
// package with no reachable join on some path to the function exit.
// WaitGroup is declared locally and matched structurally (any Wait method on
// a type named WaitGroup); receives and channel ranges are recognised by
// type, so the fixture's channels are ordinary ones.
package fixture

// WaitGroup stands in for sync.WaitGroup.
type WaitGroup struct{}

// Add mirrors sync.WaitGroup.Add.
func (wg *WaitGroup) Add(n int) {}

// Done mirrors sync.WaitGroup.Done.
func (wg *WaitGroup) Done() {}

// Wait mirrors sync.WaitGroup.Wait.
func (wg *WaitGroup) Wait() {}

func work() {}

// badFireAndForget spawns and returns; the goroutine outlives the function.
func badFireAndForget() {
	go work() // want "not joined on every path"
}

// badConditionalJoin waits on the happy path but the early return escapes.
func badConditionalJoin(c bool, wg *WaitGroup) {
	wg.Add(1)
	go work() // want "not joined on every path"
	if c {
		return
	}
	wg.Wait()
}

// goodWaitGroup is the spawn/Wait idiom of the parallel searches.
func goodWaitGroup(wg *WaitGroup, workers int) {
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// goodDeferredWait registers the join before spawning; every exit after the
// spawn runs it.
func goodDeferredWait(wg *WaitGroup, c bool) {
	wg.Add(1)
	defer wg.Wait()
	go work()
	if c {
		return
	}
	work()
}

// goodChannelReceive joins by receiving the goroutine's completion signal.
func goodChannelReceive() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// goodRangeDrain joins by draining the goroutine's output channel.
func goodRangeDrain() {
	ch := make(chan int)
	go func() {
		defer close(ch)
		ch <- 1
	}()
	for range ch {
	}
}

// suppressed shows the escape hatch for a genuinely detached goroutine.
func suppressed() {
	//reschedvet:ignore goleak fixture demonstrates the escape hatch
	go work()
}
