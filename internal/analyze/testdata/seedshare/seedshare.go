// Package fixture seeds seedshare violations and their sanctioned fixes.
package fixture

import (
	"math/rand"
	"sync"
)

func badSharedRand() {
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rng.Intn(10) // want "captures rng"
		}()
	}
	wg.Wait()
}

func badSharedSource() {
	src := rand.NewSource(7)
	done := make(chan struct{})
	go func() {
		_ = src.Int63() // want "captures src"
		close(done)
	}()
	<-done
}

func goodPrivatePerGoroutine() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			_ = rng.Intn(10)
		}(int64(w + 1))
	}
	wg.Wait()
}

func goodSameGoroutine() {
	// A generator used on the goroutine that created it is fine; only a
	// `go func` capture is a scheduling-dependent draw order.
	rng := rand.New(rand.NewSource(2))
	done := make(chan struct{})
	go func() { close(done) }()
	_ = rng.Intn(10)
	<-done
}

func suppressedDemo() {
	rng := rand.New(rand.NewSource(3))
	done := make(chan struct{})
	go func() {
		_ = rng.Intn(3) //reschedvet:ignore seedshare demonstration only
		close(done)
	}()
	<-done
}
