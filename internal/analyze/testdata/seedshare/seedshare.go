// Package fixture seeds seedshare violations and their sanctioned fixes.
package fixture

import (
	"math/rand"
	"sync"
)

func badSharedRand() {
	rng := rand.New(rand.NewSource(1))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = rng.Intn(10) // want "captures rng"
		}()
	}
	wg.Wait()
}

func badSharedSource() {
	src := rand.NewSource(7)
	done := make(chan struct{})
	go func() {
		_ = src.Int63() // want "captures src"
		close(done)
	}()
	<-done
}

func goodPrivatePerGoroutine() {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			_ = rng.Intn(10)
		}(int64(w + 1))
	}
	wg.Wait()
}

func goodSameGoroutine() {
	// A generator used on the goroutine that created it is fine; only a
	// `go func` capture is a scheduling-dependent draw order.
	rng := rand.New(rand.NewSource(2))
	done := make(chan struct{})
	go func() { close(done) }()
	_ = rng.Intn(10)
	<-done
}

func suppressedDemo() {
	rng := rand.New(rand.NewSource(3))
	done := make(chan struct{})
	go func() {
		_ = rng.Intn(3) //reschedvet:ignore seedshare demonstration only
		close(done)
	}()
	<-done
}

// --- obs v2 shapes: instrumented parallel workers -------------------------

// Trace stands in for obs.Trace. Sharing one trace across workers is the
// sanctioned v2 pattern — its instruments are commutative under a mutex —
// unlike sharing a generator, whose draw order is the schedule.
type Trace struct{}

// Observe mirrors obs.Trace.Observe.
func (t *Trace) Observe(name string, v float64) {}

// Event mirrors obs.Trace.Event.
func (t *Trace) Event(name string) {}

// badInstrumentedWorkers shares a generator across instrumented workers:
// capturing the trace is fine, capturing the rng is still a violation.
func badInstrumentedWorkers(tr *Trace) {
	rng := rand.New(rand.NewSource(9))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Observe("par.iteration_us", 1)
			_ = rng.Intn(10) // want "captures rng"
		}()
	}
	wg.Wait()
}

// goodInstrumentedWorkers is the PA-R v2 worker shape: a shared trace
// recording histograms and events, a private generator per worker.
func goodInstrumentedWorkers(tr *Trace) {
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			tr.Observe("par.iteration_us", float64(rng.Intn(10)))
			tr.Event("par.improved")
		}(int64(w + 1))
	}
	wg.Wait()
}

// suppressedInstrumentedReplay shows the escape hatch in the instrumented
// shape: a replay harness that provably draws once on one goroutine.
func suppressedInstrumentedReplay(tr *Trace) {
	rng := rand.New(rand.NewSource(11))
	done := make(chan struct{})
	go func() {
		tr.Observe("replay.draw", float64(rng.Intn(3))) //reschedvet:ignore seedshare replay harness draws exactly once
		close(done)
	}()
	<-done
}
