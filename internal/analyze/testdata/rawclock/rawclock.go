// Package fixture seeds rawclock violations and their sanctioned fixes.
package fixture

import "time"

type budgetLike struct{ deadline time.Time }

func (b *budgetLike) check() error { return nil }

func badNowAfter(deadline time.Time) bool {
	return time.Now().After(deadline) // want "deadline comparison"
}

func badDeadlineBefore(deadline time.Time) bool {
	return deadline.Before(time.Now()) // want "deadline comparison"
}

func badNotBefore(deadline time.Time) bool {
	return !time.Now().Before(deadline) // want "deadline comparison"
}

func badSinceCompare(start time.Time, limit time.Duration) bool {
	return time.Since(start) > limit // want "ordered comparison"
}

func badDerivedNow(deadline time.Time) bool {
	return time.Now().Add(time.Second).After(deadline) // want "deadline comparison"
}

func goodBudgetCheck(b *budgetLike) error {
	// The sanctioned form: route the limit through a budget and poll it.
	return b.check()
}

func goodElapsedMeasurement(start time.Time) time.Duration {
	// Measuring elapsed time without comparing it is fine — the solvers'
	// stats fields and the obs monotonic span clock do exactly this.
	return time.Since(start)
}

func goodDeadlineVsDeadline(a, b time.Time) bool {
	// Comparing two precomputed instants reads no clock.
	return a.Before(b)
}

func goodSuppressed(deadline time.Time) bool {
	//reschedvet:ignore rawclock demonstration of the escape hatch
	return time.Now().After(deadline)
}
