// Package fixture seeds solvecheck violations: a driver that hand-assembles
// the option carriers of several solver families instead of building one
// solve.Options and dispatching through the registry. The carrier types are
// declared locally (fixtures cannot import module packages) but mirror the
// real shape the analyzer matches on: a name ending in "Options" with both
// a Budget and a Trace field.
package fixture

// Budget and Trace stand in for the real cross-cutting concern types.
type Budget struct{}
type Trace struct{}

// Options mirrors a deterministic solver's carrier (sched.Options).
type Options struct {
	ModuleReuse bool
	Budget      *Budget
	Trace       *Trace
}

// RandomOptions mirrors a second family's carrier (sched.RandomOptions).
type RandomOptions struct {
	Seed   int64
	Budget *Budget
	Trace  *Trace
}

// LadderOptions mirrors a third family's carrier (sched.RobustOptions).
type LadderOptions struct {
	Retries int
	Budget  *Budget
	Trace   *Trace
}

// ReportOptions ends in "Options" but carries no cross-cutting concerns, so
// constructing it alongside one real carrier is fine.
type ReportOptions struct {
	Width int
}

// badHandRolledDriver assembles two distinct carriers — the per-algorithm
// dispatch the solve registry exists to centralise.
func badHandRolledDriver(bud *Budget, tr *Trace) (Options, RandomOptions) {
	po := Options{ModuleReuse: true, Budget: bud, Trace: tr} // want "more than one algorithm"
	ro := RandomOptions{Seed: 7, Budget: bud, Trace: tr}     // want "more than one algorithm"
	return po, ro
}

// goodRepeatedSameFamily re-uses a family already constructed above; only
// the first construction site of each distinct carrier is reported.
func goodRepeatedSameFamily() Options {
	return Options{ModuleReuse: false}
}

// goodNonCarrier constructs a type that merely ends in "Options"; without
// Budget and Trace fields it is not a cross-cutting carrier.
func goodNonCarrier() ReportOptions {
	return ReportOptions{Width: 80}
}

// suppressedDemo shows the escape hatch for a sanctioned translation site.
func suppressedDemo() LadderOptions {
	//reschedvet:ignore solvecheck sanctioned adapter demonstration
	return LadderOptions{Retries: 1}
}
