// Package fixture seeds errdrop violations and their sanctioned fixes.
package fixture

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
)

func badClose(f *os.File) {
	f.Close() // want "discarded"
}

func badEncode(enc *json.Encoder, v any) {
	enc.Encode(v) // want "discarded"
}

func badWriteString(f *os.File) {
	f.WriteString("partial") // want "discarded"
}

func badSync(f *os.File) {
	f.Sync() // want "discarded"
}

func goodChecked(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func goodExplicitDiscard(f *os.File) {
	_ = f.Close()
}

func goodBuilder(b *strings.Builder) {
	b.WriteString("builders never fail")
}

func goodBuffer(buf *bytes.Buffer) {
	buf.WriteByte('x')
}

func goodNoError(m map[int]bool) {
	delete(m, 1)
}

func suppressedBestEffort(f *os.File) {
	f.Close() //reschedvet:ignore errdrop best-effort cleanup on the error path
}
