// Package fixture seeds spanleak violations: spans obtained from
// Trace.Start/StartRoot that are not ended on every path to the function
// exit. Trace and Span are declared locally (fixtures cannot import module
// packages) but mirror the structural shape the analyzer matches on: a
// constructor named Start or StartRoot returning a *Span.
package fixture

// Trace stands in for obs.Trace.
type Trace struct{}

// Span stands in for obs.Span.
type Span struct{}

// Start mirrors obs.Trace.Start.
func (t *Trace) Start(name string) *Span { return &Span{} }

// StartRoot mirrors obs.Trace.StartRoot.
func (t *Trace) StartRoot(name string) *Span { return &Span{} }

// End mirrors obs.Span.End.
func (s *Span) End() {}

// Annotate is an arbitrary non-End method: calling it does not release.
func (s *Span) Annotate(k, v string) {}

// register stands in for any callee the span could be handed to.
func register(s *Span) {}

func work() {}

// badEarlyReturn ends the span on the happy path only: the early return
// escapes.
func badEarlyReturn(t *Trace, c bool) {
	sp := t.Start("phase") // want "not End-ed on every path"
	if c {
		return
	}
	sp.End()
}

// badBranchOnly ends the span on one branch; the fall-through leaks.
func badBranchOnly(t *Trace, c bool) {
	sp := t.StartRoot("solve") // want "not End-ed on every path"
	if c {
		sp.End()
	}
}

// badDiscarded never binds the span, so nothing can ever end it.
func badDiscarded(t *Trace) {
	t.Start("phase") // want "discarded"
}

// badReassignedBeforeEnd overwrites the first span before ending it; only
// the second one is released.
func badReassignedBeforeEnd(t *Trace) {
	sp := t.Start("a") // want "not End-ed on every path"
	sp = t.Start("b")
	sp.End()
}

// badDefaultlessSwitch can skip every case and reach the exit unreleased.
func badDefaultlessSwitch(t *Trace, v int) {
	sp := t.Start("phase") // want "not End-ed on every path"
	switch v {
	case 1:
		sp.End()
	}
}

// goodDeferred registers the release up front; every exit is covered.
func goodDeferred(t *Trace, c bool) {
	sp := t.Start("phase")
	defer sp.End()
	if c {
		return
	}
	work()
}

// goodDeferredClosure releases through a deferred function literal.
func goodDeferredClosure(t *Trace) {
	sp := t.Start("phase")
	defer func() {
		sp.End()
	}()
	work()
}

// goodBothBranches ends the span on every branch explicitly.
func goodBothBranches(t *Trace, c bool) {
	sp := t.Start("phase")
	if c {
		sp.End()
	} else {
		sp.End()
	}
}

// goodAfterJoin uses the span and ends it once past the branch join.
func goodAfterJoin(t *Trace, c bool) {
	sp := t.Start("phase")
	if c {
		sp.Annotate("k", "v")
	}
	sp.End()
}

// goodLoopEnd ends the span before the only way out of the loop.
func goodLoopEnd(t *Trace, c bool) {
	sp := t.Start("phase")
	for {
		if c {
			sp.End()
			break
		}
		work()
	}
}

// goodHandedOff passes the span to a callee: release responsibility moves
// with it, so the definition is skipped rather than guessed at.
func goodHandedOff(t *Trace) {
	sp := t.Start("phase")
	register(sp)
}

// goodPanicPath may panic before the End; panic unwind is not an escape.
func goodPanicPath(t *Trace, c bool) {
	sp := t.Start("phase")
	if c {
		panic("boom")
	}
	sp.End()
}

// suppressed shows the escape hatch for a span whose lifetime an outer
// mechanism genuinely owns.
func suppressed(t *Trace, c bool) {
	//reschedvet:ignore spanleak fixture demonstrates the escape hatch
	sp := t.Start("phase")
	if c {
		return
	}
	sp.End()
}

// --- obs v2 shapes: histograms and the flight recorder --------------------

// Observe mirrors obs.Trace.Observe, the v2 histogram entry point.
func (t *Trace) Observe(name string, v float64) {}

// Event mirrors obs.Trace.Event, the v2 flight-recorder entry point.
func (t *Trace) Event(name string) {}

// badObserveIsNotEnd records a histogram sample and an event between Start
// and the early return: Observe and Event are recording calls on the
// *Trace*, not releases of the span, so the span still leaks.
func badObserveIsNotEnd(t *Trace, c bool) {
	sp := t.Start("solve.pa") // want "not End-ed on every path"
	t.Observe("solve.pa.latency_us", 1)
	if c {
		t.Event("solve.budget_exhausted")
		return
	}
	sp.End()
}

// goodDecorator mirrors the solve-registry auto-instrumentation
// (internal/solve/instrument.go): a detached root span ended on both the
// error and success exits, with histogram and flight-recorder recording
// in between — silent for the analyzer.
func goodDecorator(t *Trace, fail bool) {
	sp := t.StartRoot("solve.par")
	t.Observe("solve.par.latency_us", 42)
	if fail {
		t.Event("solve.budget_exhausted")
		sp.End()
		return
	}
	sp.End()
}

// suppressedDetachedLifetime shows the v2 escape hatch on a detached root
// span whose End a longer-lived owner performs (the obshttp serve/Close
// lifecycle shape).
func suppressedDetachedLifetime(t *Trace, c bool) {
	//reschedvet:ignore spanleak ended by the owner's Close, not on this path
	sp := t.StartRoot("obshttp.serve")
	if c {
		return
	}
	sp.End()
}

// The server shapes: one root span per dispatched request, released on
// every outcome path (success, budget trip, contained panic), the idiom of
// the serving tier's dispatch (internal/serve).

// badDispatchRequest ends the request span only on the success path; the
// error return leaks it.
func badDispatchRequest(t *Trace, failed bool) {
	sp := t.StartRoot("serve.request") // want "not End-ed on every path"
	if failed {
		return
	}
	sp.End()
}

// goodDeferredOutcome is the serving-dispatch idiom: End deferred in a
// closure (so a late-bound outcome tag can ride along), covering every
// exit including panic unwinds contained by the worker.
func goodDeferredOutcome(t *Trace, failed bool) {
	sp := t.StartRoot("serve.request")
	defer func() { sp.End() }()
	if failed {
		return
	}
	work()
}
