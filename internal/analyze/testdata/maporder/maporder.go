// Package fixture seeds maporder violations and their sanctioned fixes.
package fixture

import (
	"fmt"
	"sort"
)

func badAppend(m map[int]string) []int {
	var keys []int
	for k := range m { // want "appends to"
		keys = append(keys, k)
	}
	return keys
}

func badOutput(m map[string]int) {
	for k, v := range m { // want "writes output"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badBufferedOutput(m map[string]int, sink interface{ WriteString(string) (int, error) }) {
	for k := range m { // want "writes output"
		if _, err := sink.WriteString(k); err != nil {
			return
		}
	}
}

func goodSortedAfter(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func goodSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func goodAggregate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func goodSliceRange(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

func suppressed(m map[int]string) []int {
	var keys []int
	//reschedvet:ignore maporder keys feed an order-insensitive set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
