// Package fixture seeds sortstable violations and their sanctioned fixes.
package fixture

import "sort"

type item struct {
	Key  int
	Name string
}

func badField(xs []item) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].Key < xs[j].Key }) // want "single-key"
}

func badDerived(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return len(xs[i]) > len(xs[j]) }) // want "single-key"
}

func goodTieBreak(xs []item) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Key != xs[j].Key {
			return xs[i].Key < xs[j].Key
		}
		return xs[i].Name < xs[j].Name
	})
}

func goodStable(xs []item) {
	sort.SliceStable(xs, func(i, j int) bool { return xs[i].Key < xs[j].Key })
}

func goodWholeElement(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

func goodWholeElementString(xs []string) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] > xs[j] })
}

func suppressedUniqueKey(xs []item) {
	// Key is unique by construction here, so instability is unobservable.
	sort.Slice(xs, func(i, j int) bool { return xs[i].Key < xs[j].Key }) //reschedvet:ignore sortstable keys are unique IDs
}
