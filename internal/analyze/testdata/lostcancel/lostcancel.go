// Package fixture seeds lostcancel violations: child budgets derived with
// WithTimeout that are not cancelled on every path. Budget is declared
// locally (fixtures cannot import module packages) but mirrors the
// structural shape the analyzer matches on: a constructor named WithTimeout
// returning a *Budget with a Cancel method.
package fixture

// Budget stands in for budget.Budget.
type Budget struct{}

// WithTimeout mirrors budget.Budget.WithTimeout (the timeout unit is
// irrelevant to the analyzer, which matches name and result type).
func (b *Budget) WithTimeout(ms int) *Budget { return &Budget{} }

// Cancel mirrors budget.Budget.Cancel.
func (b *Budget) Cancel() {}

// Check mirrors budget.Budget.Check.
func (b *Budget) Check() error { return nil }

// Options carries a budget into a callee, like sched.Options.
type Options struct{ Budget *Budget }

func solve(o Options) {}

// badNeverCancelled derives a child, hands it to a callee (which does not
// transfer the Cancel duty — the creator still owns it) and forgets Cancel.
func badNeverCancelled(b *Budget) {
	child := b.WithTimeout(100) // want "not Cancel-ed on every path"
	solve(Options{Budget: child})
}

// badErrorPathSkipsCancel cancels on the happy path but leaks through the
// early error return.
func badErrorPathSkipsCancel(b *Budget) error {
	child := b.WithTimeout(100) // want "not Cancel-ed on every path"
	if err := child.Check(); err != nil {
		return err
	}
	child.Cancel()
	return nil
}

// badDiscarded never binds the child at all.
func badDiscarded(b *Budget) {
	b.WithTimeout(100) // want "discarded"
}

// goodDeferred is the canonical fix: defer right after the derivation.
func goodDeferred(b *Budget) error {
	child := b.WithTimeout(100)
	defer child.Cancel()
	if err := child.Check(); err != nil {
		return err
	}
	solve(Options{Budget: child})
	return nil
}

// goodEveryBranch cancels explicitly on each path.
func goodEveryBranch(b *Budget, c bool) {
	child := b.WithTimeout(100)
	if c {
		child.Cancel()
		return
	}
	solve(Options{Budget: child})
	child.Cancel()
}

// goodReturned transfers ownership to the caller: returning the child is
// the one use that moves the Cancel duty out of this function.
func goodReturned(b *Budget) *Budget {
	child := b.WithTimeout(100)
	return child
}

// suppressed shows the escape hatch for a child whose cancellation an outer
// mechanism genuinely owns.
func suppressed(b *Budget) {
	//reschedvet:ignore lostcancel fixture demonstrates the escape hatch
	child := b.WithTimeout(100)
	solve(Options{Budget: child})
}
