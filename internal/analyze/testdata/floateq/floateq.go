// Package fixture seeds floateq violations and their sanctioned fixes.
package fixture

type myFloat float64

func badEq(a, b float64) bool {
	return a*2 == b+1 // want "exact =="
}

func badNeq(a, b float64) bool {
	return a != b // want "exact !="
}

func badNamed(a, b myFloat) bool {
	return a == b // want "exact =="
}

func goodConstZero(a float64) bool {
	return a == 0
}

func goodConstNeq(a float64) bool {
	return a != 1.5
}

func goodOrdering(a, b float64) bool {
	if a > b {
		return true
	}
	if b > a {
		return false
	}
	return true
}

func goodTolerance(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

func goodInts(a, b int) bool {
	return a == b
}

func suppressedBitExact(a, b float64) bool {
	return a == b //reschedvet:ignore floateq bit-exactness intended
}
