// Package fixture seeds globalrand violations and their sanctioned fixes.
package fixture

import "math/rand"

func badIntn() int {
	return rand.Intn(10) // want "process-global source"
}

func badFloat() float64 {
	return rand.Float64() // want "process-global source"
}

func badShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "process-global source"
}

func badPerm() []int {
	return rand.Perm(5) // want "process-global source"
}

func goodInjected(rng *rand.Rand) int {
	return rng.Intn(10)
}

func goodConstructor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func goodShadow() int {
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return n }}
	return rand.Intn(7)
}

func suppressedDemo() int {
	return rand.Intn(3) //reschedvet:ignore globalrand demonstration only
}
