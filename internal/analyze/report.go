package analyze

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// Report is the machine-readable form of one reschedvet run, consumed by CI
// and editor integrations. Field order and the root-relative, slash-
// separated file paths make the encoding byte-identical across machines and
// worker counts (the findings are already totally ordered by Run).
type Report struct {
	// Analyzers lists the analyzers that ran, in suite order.
	Analyzers []string `json:"analyzers"`
	// Errors and Warnings count findings by severity.
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	// Findings holds every finding in position order.
	Findings []ReportFinding `json:"findings"`
}

// ReportFinding is one finding with a portable file path.
type ReportFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// BuildReport assembles the report, rewriting file names relative to root
// (absolute paths outside root are kept as-is).
func BuildReport(root string, analyzers []*Analyzer, findings []Finding) Report {
	rep := Report{Analyzers: make([]string, 0, len(analyzers)),
		Findings: make([]ReportFinding, 0, len(findings))}
	for _, a := range analyzers {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	for _, f := range findings {
		file := f.Pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		switch f.Severity {
		case SevWarning:
			rep.Warnings++
		default:
			rep.Errors++
		}
		rep.Findings = append(rep.Findings, ReportFinding{
			File:     file,
			Line:     f.Pos.Line,
			Column:   f.Pos.Column,
			Analyzer: f.Analyzer,
			Severity: string(f.Severity),
			Message:  f.Message,
		})
	}
	return rep
}

// WriteJSON encodes the report with stable indentation and a trailing
// newline.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
