package analyze

import "go/ast"

// SpanLeak verifies the obs.Trace discipline flow-sensitively: a span
// obtained from Trace.Start or Trace.StartRoot must be ended on every path
// to the normal function exit. The v1 suite could only check this invariant
// by convention; the CFG makes it a theorem about the function's paths —
// an early return between Start and End is caught even when the happy path
// ends the span correctly.
//
// The check is per-definition: a deferred End (direct or inside a deferred
// function literal) covers every exit after its registration point; an End
// on only one branch of an if leaves the other branch exposed; reassigning
// the span variable before ending it is itself a leak. Passing the span to
// another function or storing it in a structure hands the End responsibility
// to code this analysis cannot see, so such definitions are skipped rather
// than guessed at.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc:  "obs spans must be ended on every path to the function exit",
	Run:  runSpanLeak,
}

func runSpanLeak(pass *Pass) {
	runReleaseRule(pass, releaseRule{
		ctors:         map[string]bool{"Start": true, "StartRoot": true},
		resultType:    "Span",
		release:       "End",
		what:          "span",
		reportDiscard: true,
		// Any non-sanctioned use — call argument, composite literal field,
		// return, channel send — moves the span out of this function's hands.
		escapeIsTransfer: func(parent ast.Node, id *ast.Ident) bool { return true },
	})
}
