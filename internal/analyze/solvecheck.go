package analyze

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SolveCheck flags packages that hand-assemble the cross-cutting option
// structs of more than one algorithm. A struct whose name ends in "Options"
// and that carries both a Budget and a Trace field is an option carrier for
// one solver family (sched.Options, sched.RandomOptions, isk.Options,
// solve.Options, ...); a package that builds two or more distinct carriers
// is re-implementing the dispatch the solve registry already centralises,
// and every such site is a place where a new cross-cutting concern (a budget
// kind, a trace field, a fault hook) must be threaded by hand. Drivers
// construct one solve.Options and call solve.Get(name).Solve; only the
// adapters in internal/solve (and the algorithm packages delegating to their
// own sub-solvers) translate between carriers.
var SolveCheck = &Analyzer{
	Name: "solvecheck",
	Doc:  "only the solve adapters may assemble cross-cutting option structs for more than one algorithm",
	Run:  runSolveCheck,
}

// solveCheckExempt lists the packages whose job is exactly this translation:
// the solve adapters themselves, and the algorithm packages that delegate to
// their own sub-solvers (sched.Robust runs PA and PA-R; the schedulers pass
// budgets and traces down into floorplan.Options).
var solveCheckExempt = map[string]bool{
	"resched/internal/solve": true,
	"resched/internal/sched": true,
	"resched/internal/isk":   true,
	"resched/internal/exact": true,
}

func runSolveCheck(pass *Pass) {
	if pass.Pkg != nil && solveCheckExempt[pass.Pkg.Path()] {
		return
	}
	// First construction site of each distinct carrier type, in file order,
	// so finding positions are reproducible.
	type site struct {
		pos  token.Pos
		name string
	}
	var order []site
	seen := map[string]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[lit]
			if !ok {
				return true
			}
			name, ok := optionCarrier(tv.Type)
			if !ok || seen[name] {
				return true
			}
			seen[name] = true
			order = append(order, site{lit.Pos(), name})
			return true
		})
	}
	if len(order) < 2 {
		return
	}
	names := make([]string, len(order))
	for i, s := range order {
		names[i] = s.name
	}
	for _, s := range order {
		pass.Reportf(s.pos,
			"package assembles cross-cutting option structs for more than one algorithm (%s); construct one solve.Options and dispatch through the solve registry instead",
			strings.Join(names, ", "))
	}
}

// optionCarrier reports whether t is a named struct type that carries
// cross-cutting solver options — its name ends in "Options" and it has both
// a Budget and a Trace field — returning its qualified display name.
func optionCarrier(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if !strings.HasSuffix(obj.Name(), "Options") {
		return "", false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	var hasBudget, hasTrace bool
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "Budget":
			hasBudget = true
		case "Trace":
			hasTrace = true
		}
	}
	if !hasBudget || !hasTrace {
		return "", false
	}
	name := obj.Name()
	if obj.Pkg() != nil {
		name = obj.Pkg().Name() + "." + name
	}
	return name, true
}
