package analyze_test

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"resched/internal/analyze"
)

// wantRe matches the fixture expectation syntax: a `// want "substr"`
// comment expects at least one finding on its line whose message contains
// the quoted substring.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

type expectation struct {
	substr  string
	matched bool
}

// TestAnalyzerFixtures runs every analyzer over its seeded fixture package
// under testdata/ and verifies the findings line up exactly with the `want`
// annotations: each annotated line is caught, each clean (fixed or
// suppressed) form is accepted.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range analyze.All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			pkg, err := analyze.LoadDir(dir, "fixture/"+a.Name)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			findings := analyze.Run([]*analyze.Package{pkg}, []*analyze.Analyzer{a})

			wants := map[string]*expectation{}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				path := filepath.Join(dir, e.Name())
				data, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				for i, line := range strings.Split(string(data), "\n") {
					if m := wantRe.FindStringSubmatch(line); m != nil {
						wants[fmt.Sprintf("%s:%d", path, i+1)] = &expectation{substr: m[1]}
					}
				}
			}
			if len(wants) == 0 {
				t.Fatalf("fixture %s has no want annotations; it proves nothing", dir)
			}

			for _, f := range findings {
				key := fmt.Sprintf("%s:%d", relToHere(t, f.Pos), f.Pos.Line)
				w, ok := wants[key]
				if !ok {
					t.Errorf("unexpected finding at %s: %s", key, f.Message)
					continue
				}
				if !strings.Contains(f.Message, w.substr) {
					t.Errorf("finding at %s: message %q does not contain %q", key, f.Message, w.substr)
					continue
				}
				w.matched = true
			}
			for key, w := range wants {
				if !w.matched {
					t.Errorf("expected a finding matching %q at %s, got none", w.substr, key)
				}
			}
		})
	}
}

// relToHere converts a finding position (absolute path) back to the
// test-relative path used as want-map key.
func relToHere(t *testing.T, pos token.Position) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(wd, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return rel
}

func TestFindingString(t *testing.T) {
	f := analyze.Finding{
		Pos:      token.Position{Filename: "x/y.go", Line: 12, Column: 3},
		Analyzer: "maporder",
		Message:  "boom",
	}
	if got, want := f.String(), "x/y.go:12: maporder: boom"; got != want {
		t.Errorf("Finding.String() = %q, want %q", got, want)
	}
}

func TestByName(t *testing.T) {
	as, err := analyze.ByName("maporder, floateq")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 2 || as[0].Name != "maporder" || as[1].Name != "floateq" {
		t.Errorf("ByName returned %v", as)
	}
	if _, err := analyze.ByName("nosuch"); err == nil {
		t.Error("ByName(nosuch) did not fail")
	}
}

// TestSuiteComplete pins the analyzer roster: removing an analyzer from
// All() would silently stop enforcing its invariant module-wide.
func TestSuiteComplete(t *testing.T) {
	want := []string{
		"maporder", "globalrand", "floateq", "sortstable", "errdrop",
		"rawclock", "seedshare", "solvecheck",
		"spanleak", "budgetloop", "lostcancel", "goleak", "arenaescape",
	}
	all := analyze.All()
	if len(all) != len(want) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
