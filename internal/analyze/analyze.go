// Package analyze is a self-contained static-analysis framework (standard
// library only: go/ast, go/parser, go/token, go/types) that enforces the
// determinism and correctness invariants this repository depends on.
//
// PA is a deterministic heuristic and PA-R's experimental value rests on
// reproducible seeded randomization (§V–§VI of the paper): two runs on the
// same graph and seed must produce byte-identical schedules, or the IS-k
// comparisons and the convergence experiments are meaningless. Go makes
// those guarantees easy to break silently — randomized map iteration order,
// the package-global math/rand source, exact float64 comparison and
// unstable sorts on non-unique keys are all one careless edit away. The
// analyzers in this package turn the invariants into machine-checked rules;
// cmd/reschedvet runs them over the module and TestReschedvetClean keeps
// `go test ./...` red while any violation exists.
//
// A finding can be suppressed by a line comment
//
//	//reschedvet:ignore <analyzer>[,<analyzer>...] [reason]
//
// placed either on the flagged line or alone on the line directly above it.
package analyze

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Severity ranks a finding. Errors fail the reschedvet gate (exit status 1
// and a red TestReschedvetClean); warnings are reported but advisory.
type Severity string

const (
	// SevError findings break the build gate.
	SevError Severity = "error"
	// SevWarning findings are advisory.
	SevWarning Severity = "warning"
)

// Finding is one rule violation at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Severity Severity
	Message  string
}

// String renders the canonical "file:line: analyzer: message" form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name identifies the analyzer in findings and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Severity ranks the analyzer's findings; the zero value means SevError.
	Severity Severity
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// severity resolves the analyzer's effective severity.
func (a *Analyzer) severity() Severity {
	if a.Severity == "" {
		return SevError
	}
	return a.Severity
}

// Pass gives an analyzer access to one type-checked package, plus the
// module-wide index the flow-sensitive analyzers use to resolve callees
// across package boundaries.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module indexes every package of this Run (the analyzed package
	// included), for cross-package callee resolution.
	Module *Module

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.severity(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in stable order: the v1 syntactic
// analyzers first, then the v2 flow-sensitive ones built on internal/analyze/cfg.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		GlobalRand,
		FloatEq,
		SortStable,
		ErrDrop,
		RawClock,
		SeedShare,
		SolveCheck,
		SpanLeak,
		BudgetLoop,
		LostCancel,
		GoLeak,
		ArenaEscape,
	}
}

// ByName resolves a comma-separated analyzer list ("maporder,floateq").
func ByName(names string) ([]*Analyzer, error) {
	all := All()
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == n {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages, drops suppressed findings,
// and returns the remainder sorted by position. Packages are analyzed
// concurrently on up to GOMAXPROCS workers; see RunParallel.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	return RunParallel(pkgs, analyzers, 0)
}

// RunParallel is Run with an explicit worker count (0 means GOMAXPROCS).
// Each package is one unit of work; findings are collected per package and
// merged under a total order (file, line, column, analyzer, message), so
// the report is byte-identical for any worker count and any interleaving.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, workers int) []Finding {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	mod := NewModule(pkgs)
	perPkg := make([][]Finding, len(pkgs))
	runOne := func(i int) {
		pkg := pkgs[i]
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Module:   mod,
				findings: &perPkg[i],
			}
			a.Run(pass)
		}
	}
	if workers == 1 {
		for i := range pkgs {
			runOne(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(pkgs) {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}
	var kept []Finding
	ign := ignoreIndex(pkgs)
	for _, findings := range perPkg {
		for _, f := range findings {
			if ign.suppressed(f) {
				continue
			}
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return kept
}

// ignoreDirective is the parsed form of one //reschedvet:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool // nil means "all analyzers"
}

func (d ignoreDirective) matches(analyzer string) bool {
	return d.analyzers == nil || d.analyzers[analyzer]
}

// ignores maps file → line → directive for every loaded package.
type ignores map[string]map[int]ignoreDirective

const ignorePrefix = "//reschedvet:ignore"

// parseIgnore extracts the directive from a comment text, or ok=false.
func parseIgnore(text string) (ignoreDirective, bool) {
	if !strings.HasPrefix(text, ignorePrefix) {
		return ignoreDirective{}, false
	}
	rest := text[len(ignorePrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return ignoreDirective{}, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		// Bare directive: suppress every analyzer on the line.
		return ignoreDirective{}, true
	}
	names := map[string]bool{}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names[n] = true
		}
	}
	return ignoreDirective{analyzers: names}, true
}

func ignoreIndex(pkgs []*Package) ignores {
	idx := ignores{}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					d, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Slash)
					m := idx[pos.Filename]
					if m == nil {
						m = map[int]ignoreDirective{}
						idx[pos.Filename] = m
					}
					m[pos.Line] = d
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a directive on the finding's line or on the
// line directly above covers the finding's analyzer.
func (idx ignores) suppressed(f Finding) bool {
	m := idx[f.Pos.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		if d, ok := m[line]; ok && d.matches(f.Analyzer) {
			return true
		}
	}
	return false
}

// pkgNameOf resolves an identifier to the import path of the package it
// names, or "" when the identifier is not a package name. Analyzers use it
// to recognise qualified calls like sort.Slice or rand.Intn without being
// fooled by local variables shadowing the package name.
func pkgNameOf(info *types.Info, id *ast.Ident) string {
	if obj, ok := info.Uses[id].(*types.PkgName); ok {
		return obj.Imported().Path()
	}
	return ""
}

// qualifiedCall matches call expressions of the form pkg.Fn(...) where pkg
// is an import of importPath, returning ok and the function name.
func qualifiedCall(info *types.Info, call *ast.CallExpr, importPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	if pkgNameOf(info, id) != importPath {
		return "", false
	}
	return sel.Sel.Name, true
}
