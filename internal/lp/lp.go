// Package lp provides a dense two-phase primal simplex solver for linear
// programs in the form
//
//	max/min c·x   s.t.   A x {≤,=,≥} b,   x ≥ 0
//
// It is the substrate of the MILP branch-and-bound solver (package milp)
// that replaces the Gurobi dependency of the paper's floorplanner (ref [3]).
// The implementation uses Bland's anti-cycling rule and is intended for the
// small, well-conditioned models produced by the floorplanner, not for
// industrial-scale programs.
package lp

import (
	"errors"
	"fmt"

	"resched/internal/budget"
)

// Op is a constraint relation.
type Op int

const (
	// LE is ≤.
	LE Op = iota
	// GE is ≥.
	GE
	// EQ is =.
	EQ
)

// String renders the relation symbol.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Constraint is one row a·x op rhs.
type Constraint struct {
	Coeffs []float64
	Op     Op
	RHS    float64
}

// Problem is a linear program over n non-negative variables.
type Problem struct {
	n           int
	objective   []float64
	maximize    bool
	constraints []Constraint
}

// NewProblem creates a problem with n variables, a zero objective and no
// constraints. All variables are implicitly ≥ 0.
func NewProblem(n int) *Problem {
	return &Problem{n: n, objective: make([]float64, n)}
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return p.n }

// NumConstraints returns the number of constraint rows.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// SetObjective installs the objective coefficients and direction.
func (p *Problem) SetObjective(coeffs []float64, maximize bool) error {
	if len(coeffs) != p.n {
		return fmt.Errorf("lp: objective has %d coefficients, want %d", len(coeffs), p.n)
	}
	p.objective = append([]float64(nil), coeffs...)
	p.maximize = maximize
	return nil
}

// AddConstraint appends the row coeffs·x op rhs. Coefficients beyond
// len(coeffs) are zero.
func (p *Problem) AddConstraint(coeffs []float64, op Op, rhs float64) error {
	if len(coeffs) > p.n {
		return fmt.Errorf("lp: constraint has %d coefficients, want ≤ %d", len(coeffs), p.n)
	}
	row := make([]float64, p.n)
	copy(row, coeffs)
	p.constraints = append(p.constraints, Constraint{Coeffs: row, Op: op, RHS: rhs})
	return nil
}

// AddSparse appends a constraint given as (index, coefficient) pairs.
func (p *Problem) AddSparse(idx []int, coef []float64, op Op, rhs float64) error {
	if len(idx) != len(coef) {
		return errors.New("lp: sparse index/coefficient length mismatch")
	}
	row := make([]float64, p.n)
	for k, i := range idx {
		if i < 0 || i >= p.n {
			return fmt.Errorf("lp: sparse index %d out of range [0,%d)", i, p.n)
		}
		row[i] += coef[k]
	}
	p.constraints = append(p.constraints, Constraint{Coeffs: row, Op: op, RHS: rhs})
	return nil
}

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal solution was found.
	Optimal Status = iota
	// Infeasible means the constraint set is empty.
	Infeasible
	// Unbounded means the objective is unbounded in its direction.
	Unbounded
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status Status
	// X holds the variable values (valid only for Optimal).
	X []float64
	// Objective is c·X in the problem's original direction.
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

const eps = 1e-9

// Solve runs the two-phase simplex method without a budget.
func (p *Problem) Solve() (*Solution, error) { return p.SolveBudget(nil) }

// SolveBudget runs the two-phase simplex method under a budget: every pivot
// polls the budget's cancellation flag, so a Cancel lands within one pivot
// even on a degenerate model. The poll is cancellation-only — no nodes are
// charged (node accounting belongs to the caller's granularity, one charge
// per branch-and-bound node in package milp) and the clock is not read (the
// deadline is enforced by the caller's strided Charge). A cancelled solve
// returns an error matching budget.ErrCancelled with no Solution; callers
// that treat exhaustion as a limit stop (milp does) translate it. A nil
// budget means unlimited and makes SolveBudget identical to Solve.
func (p *Problem) SolveBudget(bud *budget.Budget) (*Solution, error) {
	t := newTableau(p)
	sol := &Solution{}
	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		t.installPhase1Objective()
		if err := t.iterate(bud, &sol.Iterations); err != nil {
			return nil, err
		}
		if t.objectiveValue() > eps {
			sol.Status = Infeasible
			return sol, nil
		}
		if err := t.driveOutArtificials(&sol.Iterations); err != nil {
			return nil, err
		}
	}
	// Phase 2: original objective.
	t.installPhase2Objective(p)
	if err := t.iterate(bud, &sol.Iterations); err != nil {
		if errors.Is(err, errUnbounded) {
			sol.Status = Unbounded
			return sol, nil
		}
		return nil, err
	}
	sol.Status = Optimal
	sol.X = t.extract(p.n)
	sol.Objective = 0
	for i, c := range p.objective {
		sol.Objective += c * sol.X[i]
	}
	return sol, nil
}

// Clone returns an independent copy of the problem; constraints added to the
// clone do not affect the original. The MILP branch-and-bound solver uses
// this to derive node subproblems.
func (p *Problem) Clone() *Problem {
	c := &Problem{
		n:         p.n,
		objective: append([]float64(nil), p.objective...),
		maximize:  p.maximize,
	}
	c.constraints = make([]Constraint, len(p.constraints))
	for i, con := range p.constraints {
		c.constraints[i] = Constraint{
			Coeffs: append([]float64(nil), con.Coeffs...),
			Op:     con.Op,
			RHS:    con.RHS,
		}
	}
	return c
}

// Maximizing reports the objective direction.
func (p *Problem) Maximizing() bool { return p.maximize }

// Objective returns a copy of the objective coefficients.
func (p *Problem) Objective() []float64 { return append([]float64(nil), p.objective...) }
