package lp

import (
	"math"
	"math/rand"
	"testing"
)

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestClassicMax(t *testing.T) {
	// max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 → (2,6), z = 36.
	p := NewProblem(2)
	if err := p.SetObjective([]float64{3, 5}, true); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{1, 0}, LE, 4); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{0, 2}, LE, 12); err != nil {
		t.Fatal(err)
	}
	if err := p.AddConstraint([]float64{3, 2}, LE, 18); err != nil {
		t.Fatal(err)
	}
	sol := mustSolve(t, p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 36) || !approx(sol.X[0], 2) || !approx(sol.X[1], 6) {
		t.Errorf("got x=%v obj=%v, want (2,6) 36", sol.X, sol.Objective)
	}
}

func TestMinWithGE(t *testing.T) {
	// min 2x + 3y s.t. x + y ≥ 10, x ≤ 8 → (8,2), z = 22.
	p := NewProblem(2)
	p.SetObjective([]float64{2, 3}, false)
	p.AddConstraint([]float64{1, 1}, GE, 10)
	p.AddConstraint([]float64{1, 0}, LE, 8)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 22) {
		t.Fatalf("got %v obj=%v, want optimal 22", sol.Status, sol.Objective)
	}
}

func TestEquality(t *testing.T) {
	// max x s.t. x + y = 5 → x = 5.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 0}, true)
	p.AddConstraint([]float64{1, 1}, EQ, 5)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.X[0], 5) || !approx(sol.X[1], 0) {
		t.Fatalf("got %v x=%v", sol.Status, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.SetObjective([]float64{1}, true)
	p.AddConstraint([]float64{1}, LE, 1)
	p.AddConstraint([]float64{1}, GE, 2)
	sol := mustSolve(t, p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.AddConstraint([]float64{1, -1}, LE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalisation(t *testing.T) {
	// -x ≤ -3 is x ≥ 3; min x → 3.
	p := NewProblem(1)
	p.SetObjective([]float64{1}, false)
	p.AddConstraint([]float64{-1}, LE, -3)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.X[0], 3) {
		t.Fatalf("got %v x=%v, want x=3", sol.Status, sol.X)
	}
}

func TestDegenerateNoCycle(t *testing.T) {
	// Beale's classic cycling example (cycles under Dantzig's rule without
	// anti-cycling); Bland's rule must terminate at z = 0.05 (x4 = 1).
	p := NewProblem(4)
	p.SetObjective([]float64{0.75, -150, 0.02, -6}, true)
	p.AddConstraint([]float64{0.25, -60, -0.04, 9}, LE, 0)
	p.AddConstraint([]float64{0.5, -90, -0.02, 3}, LE, 0)
	p.AddConstraint([]float64{0, 0, 1, 0}, LE, 1)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 0.05) {
		t.Fatalf("got %v obj=%v, want optimal 0.05", sol.Status, sol.Objective)
	}
}

func TestZeroConstraintProblem(t *testing.T) {
	// min over no constraints: optimum at the origin.
	p := NewProblem(3)
	p.SetObjective([]float64{1, 2, 3}, false)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 0) {
		t.Fatalf("got %v obj=%v", sol.Status, sol.Objective)
	}
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows exercise redundant-row removal in phase 1.
	p := NewProblem(2)
	p.SetObjective([]float64{1, 1}, true)
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{1, 1}, EQ, 4)
	p.AddConstraint([]float64{2, 2}, EQ, 8)
	sol := mustSolve(t, p)
	if sol.Status != Optimal || !approx(sol.Objective, 4) {
		t.Fatalf("got %v obj=%v, want optimal 4", sol.Status, sol.Objective)
	}
}

func TestAddSparse(t *testing.T) {
	p := NewProblem(5)
	p.SetObjective([]float64{0, 0, 1, 0, 0}, true)
	if err := p.AddSparse([]int{2, 4}, []float64{1, 1}, LE, 7); err != nil {
		t.Fatal(err)
	}
	if err := p.AddSparse([]int{9}, []float64{1}, LE, 7); err == nil {
		t.Error("out-of-range sparse index accepted")
	}
	if err := p.AddSparse([]int{1, 2}, []float64{1}, LE, 7); err == nil {
		t.Error("length mismatch accepted")
	}
	sol := mustSolve(t, p)
	if !approx(sol.Objective, 7) {
		t.Fatalf("obj = %v, want 7", sol.Objective)
	}
}

func TestArgumentErrors(t *testing.T) {
	p := NewProblem(2)
	if err := p.SetObjective([]float64{1}, true); err == nil {
		t.Error("short objective accepted")
	}
	if err := p.AddConstraint([]float64{1, 2, 3}, LE, 1); err == nil {
		t.Error("long constraint accepted")
	}
	if p.NumVars() != 2 || p.NumConstraints() != 0 {
		t.Error("accessors wrong")
	}
}

func TestOpAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("op strings")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("status strings")
	}
}

// TestRandom2DAgainstVertexEnumeration cross-checks the simplex on random
// two-variable LPs with ≤ constraints against exhaustive vertex enumeration.
func TestRandom2DAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		m := 2 + rng.Intn(5)
		type row struct{ a, b, r float64 }
		rows := make([]row, 0, m+2)
		for i := 0; i < m; i++ {
			rows = append(rows, row{rng.Float64()*4 - 1, rng.Float64()*4 - 1, rng.Float64() * 10})
		}
		// Bounding box keeps the problem bounded.
		rows = append(rows, row{1, 0, 20}, row{0, 1, 20})
		cx, cy := rng.Float64()*4-2, rng.Float64()*4-2

		p := NewProblem(2)
		p.SetObjective([]float64{cx, cy}, true)
		for _, r := range rows {
			p.AddConstraint([]float64{r.a, r.b}, LE, r.r)
		}
		sol := mustSolve(t, p)

		// Vertex enumeration including the axes x=0, y=0.
		type line struct{ a, b, r float64 }
		lines := []line{{1, 0, 0}, {0, 1, 0}} // axes as equalities at 0
		for _, r := range rows {
			lines = append(lines, line(r))
		}
		feasible := func(x, y float64) bool {
			if x < -1e-7 || y < -1e-7 {
				return false
			}
			for _, r := range rows {
				if r.a*x+r.b*y > r.r+1e-7 {
					return false
				}
			}
			return true
		}
		best := math.Inf(-1)
		anyFeasible := false
		for i := 0; i < len(lines); i++ {
			for j := i + 1; j < len(lines); j++ {
				l1, l2 := lines[i], lines[j]
				det := l1.a*l2.b - l2.a*l1.b
				if math.Abs(det) < 1e-12 {
					continue
				}
				x := (l1.r*l2.b - l2.r*l1.b) / det
				y := (l1.a*l2.r - l2.a*l1.r) / det
				if feasible(x, y) {
					anyFeasible = true
					if v := cx*x + cy*y; v > best {
						best = v
					}
				}
			}
		}
		if !anyFeasible {
			// Origin is always feasible here since rhs ≥ 0.
			t.Fatalf("trial %d: vertex enumeration found nothing", trial)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if math.Abs(sol.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: simplex %v vs vertices %v", trial, sol.Objective, best)
		}
	}
}

// TestRandomBoxed checks that with a separable box LP the solver recovers
// the analytic optimum Σ max(c_i,0)·u_i.
func TestRandomBoxed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		c := make([]float64, n)
		u := make([]float64, n)
		want := 0.0
		p := NewProblem(n)
		for i := range c {
			c[i] = rng.Float64()*10 - 5
			u[i] = rng.Float64() * 10
			row := make([]float64, n)
			row[i] = 1
			p.AddConstraint(row, LE, u[i])
			if c[i] > 0 {
				want += c[i] * u[i]
			}
		}
		p.SetObjective(c, true)
		sol := mustSolve(t, p)
		if sol.Status != Optimal || math.Abs(sol.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: got %v %v, want %v", trial, sol.Status, sol.Objective, want)
		}
	}
}
