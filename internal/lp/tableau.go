package lp

import (
	"errors"

	"resched/internal/budget"
)

var errUnbounded = errors.New("lp: unbounded")

// tableau is a dense simplex tableau in standard form: every original
// constraint is normalised to a non-negative right-hand side, then LE rows
// receive a slack variable, GE rows a surplus plus an artificial variable,
// and EQ rows an artificial variable. Artificial variables occupy the last
// columns and are never allowed to enter the basis.
type tableau struct {
	total         int // structural + slack/surplus + artificial variables
	artStart      int // first artificial column
	numArtificial int
	rows          [][]float64 // m × (total+1); last column is the RHS
	obj           []float64   // reduced-cost row; obj[total] = -z (minimisation)
	basis         []int       // basic variable of each row
}

func newTableau(p *Problem) *tableau {
	m := len(p.constraints)
	// Count auxiliary columns.
	slack, art := 0, 0
	for _, c := range p.constraints {
		op, rhs := c.Op, c.RHS
		if rhs < 0 { // normalisation flips the relation
			op = flip(op)
		}
		switch op {
		case LE:
			slack++
		case GE:
			slack++ // surplus
			art++
		case EQ:
			art++
		}
	}
	t := &tableau{
		total:         p.n + slack + art,
		artStart:      p.n + slack,
		numArtificial: art,
		rows:          make([][]float64, m),
		basis:         make([]int, m),
	}
	nextSlack, nextArt := p.n, t.artStart
	for i, c := range p.constraints {
		row := make([]float64, t.total+1)
		copy(row, c.Coeffs)
		rhs, op := c.RHS, c.Op
		if rhs < 0 {
			for j := range row[:p.n] {
				row[j] = -row[j]
			}
			rhs = -rhs
			op = flip(op)
		}
		row[t.total] = rhs
		switch op {
		case LE:
			row[nextSlack] = 1
			t.basis[i] = nextSlack
			nextSlack++
		case GE:
			row[nextSlack] = -1
			nextSlack++
			row[nextArt] = 1
			t.basis[i] = nextArt
			nextArt++
		case EQ:
			row[nextArt] = 1
			t.basis[i] = nextArt
			nextArt++
		}
		t.rows[i] = row
	}
	t.obj = make([]float64, t.total+1)
	return t
}

func flip(op Op) Op {
	switch op {
	case LE:
		return GE
	case GE:
		return LE
	default:
		return EQ
	}
}

// installPhase1Objective sets up min Σ artificials as the reduced-cost row.
func (t *tableau) installPhase1Objective() {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j := t.artStart; j < t.total; j++ {
		t.obj[j] = 1
	}
	// Zero the reduced costs of the basic artificial columns.
	for i, b := range t.basis {
		if b >= t.artStart {
			for j := range t.obj {
				t.obj[j] -= t.rows[i][j]
			}
		}
	}
}

// installPhase2Objective sets up the caller's objective (as minimisation).
func (t *tableau) installPhase2Objective(p *Problem) {
	for j := range t.obj {
		t.obj[j] = 0
	}
	for j, c := range p.objective {
		if p.maximize {
			t.obj[j] = -c
		} else {
			t.obj[j] = c
		}
	}
	for i, b := range t.basis {
		if cb := t.obj[b]; cb != 0 {
			for j := range t.obj {
				t.obj[j] -= cb * t.rows[i][j]
			}
			// Restore exact zero on the basic column to fight drift.
			t.obj[b] = 0
		}
	}
}

// objectiveValue returns the current z of the minimisation.
func (t *tableau) objectiveValue() float64 { return -t.obj[t.total] }

// iterate pivots until optimality (no negative reduced cost) using Bland's
// rule, or reports unboundedness. Each pivot polls the budget's cancellation
// flag (a few atomic loads; the clock is never read here) so a cooperative
// Cancel interrupts even a pivot-heavy phase promptly.
func (t *tableau) iterate(bud *budget.Budget, pivots *int) error {
	for {
		if bud.Cancelled() {
			return budget.ErrCancelled
		}
		// Entering column: smallest index with negative reduced cost;
		// artificial columns never enter.
		enter := -1
		for j := 0; j < t.artStart; j++ {
			if t.obj[j] < -eps {
				enter = j
				break
			}
		}
		if enter < 0 {
			return nil
		}
		// Ratio test with Bland tie-breaking on the leaving basic variable.
		leave, best := -1, 0.0
		for i, row := range t.rows {
			a := row[enter]
			if a <= eps {
				continue
			}
			ratio := row[t.total] / a
			if leave < 0 || ratio < best-eps || (ratio < best+eps && t.basis[i] < t.basis[leave]) {
				leave, best = i, ratio
			}
		}
		if leave < 0 {
			return errUnbounded
		}
		t.pivot(leave, enter)
		*pivots++
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	row := t.rows[leave]
	p := row[enter]
	for j := range row {
		row[j] /= p
	}
	row[enter] = 1 // exact
	for i, other := range t.rows {
		if i == leave {
			continue
		}
		if f := other[enter]; f != 0 {
			for j := range other {
				other[j] -= f * row[j]
			}
			other[enter] = 0
		}
	}
	if f := t.obj[enter]; f != 0 {
		for j := range t.obj {
			t.obj[j] -= f * row[j]
		}
		t.obj[enter] = 0
	}
	t.basis[leave] = enter
}

// driveOutArtificials removes artificial variables left basic (at value 0)
// after phase 1, pivoting them out where possible and dropping redundant
// rows otherwise.
func (t *tableau) driveOutArtificials(pivots *int) error {
	for i := 0; i < len(t.rows); i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find a non-artificial column to pivot in.
		enter := -1
		for j := 0; j < t.artStart; j++ {
			if a := t.rows[i][j]; a > eps || a < -eps {
				enter = j
				break
			}
		}
		if enter >= 0 {
			t.pivot(i, enter)
			*pivots++
			continue
		}
		// Redundant row: drop it.
		last := len(t.rows) - 1
		t.rows[i] = t.rows[last]
		t.basis[i] = t.basis[last]
		t.rows = t.rows[:last]
		t.basis = t.basis[:last]
		i--
	}
	return nil
}

// extract reads the first n variable values from the basis.
func (t *tableau) extract(n int) []float64 {
	x := make([]float64, n)
	for i, b := range t.basis {
		if b < n {
			v := t.rows[i][t.total]
			if v < 0 && v > -eps {
				v = 0
			}
			x[b] = v
		}
	}
	return x
}
