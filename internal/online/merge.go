package online

import (
	"fmt"

	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// buildGlobal merges the jobs into one global graph in plan order. Task IDs
// are job-local IDs shifted by the job's offset, so appending a job never
// renumbers earlier ones — the property that lets an epoch reuse the
// previous epoch's frozen set verbatim.
func buildGlobal(jobs []Job) (*taskgraph.Graph, []int, []int64, error) {
	g := taskgraph.New("online")
	var offsets []int
	var arrival []int64
	for _, job := range jobs {
		off := g.N()
		offsets = append(offsets, off)
		for _, t := range job.Graph.Tasks {
			g.AddTask(job.Name+"/"+t.Name, t.Impls...)
			arrival = append(arrival, job.Arrival)
		}
		for _, ed := range job.Graph.Edges() {
			if err := g.AddEdgeComm(off+ed[0], off+ed[1], job.Graph.EdgeComm(ed[0], ed[1])); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	return g, offsets, arrival, nil
}

// buildTail extracts the unfrozen subgraph: tail task i is the i-th
// unfrozen global task in ID order. Frozen-to-unfrozen data edges do not
// appear here — Freeze already folded them into release floors.
func buildTail(global *taskgraph.Graph, frozen []bool, T int64) (*taskgraph.Graph, []int, []int, error) {
	tailOf := make([]int, global.N())
	var tailToGlobal []int
	for gt := range tailOf {
		if frozen[gt] {
			tailOf[gt] = -1
			continue
		}
		tailOf[gt] = len(tailToGlobal)
		tailToGlobal = append(tailToGlobal, gt)
	}
	tg := taskgraph.New(fmt.Sprintf("%s@%d", global.Name, T))
	for _, gt := range tailToGlobal {
		tg.AddTask(global.Tasks[gt].Name, global.Tasks[gt].Impls...)
	}
	for _, ed := range global.Edges() {
		u, v := tailOf[ed[0]], tailOf[ed[1]]
		if u < 0 || v < 0 {
			continue
		}
		if err := tg.AddEdgeComm(u, v, global.EdgeComm(ed[0], ed[1])); err != nil {
			return nil, nil, nil, err
		}
	}
	if err := tg.Validate(); err != nil {
		return nil, nil, nil, err
	}
	return tg, tailToGlobal, tailOf, nil
}

// warmState folds the arrival floors of the epoch's tasks into the
// horizon's warm platform state. All times are relative to the commit
// boundary T; a first (cold) epoch yields an Empty state, which every
// solver treats bit-identically to the historical t=0 solve.
func warmState(h *schedule.Horizon, tailToGlobal, tailOf []int, arrival []int64, T int64) (*schedule.PlatformState, error) {
	ps := &schedule.PlatformState{}
	if h != nil {
		ps = h.Platform.Clone()
	}
	// Freeze pins tasks by their global IDs; the tail plan (and CheckAgainst)
	// speak tail IDs. A pinned task is unstarted by definition, so it always
	// has one.
	for i := range ps.Regions {
		wr := &ps.Regions[i]
		if wr.Pinned < 0 {
			continue
		}
		if wr.Pinned >= len(tailOf) || tailOf[wr.Pinned] < 0 {
			return nil, fmt.Errorf("warm region %d pins frozen task %d", i, wr.Pinned)
		}
		wr.Pinned = tailOf[wr.Pinned]
	}
	rel := make([]int64, len(tailToGlobal))
	for i, gt := range tailToGlobal {
		var f int64
		if h != nil && gt < len(h.Platform.Release) {
			f = h.Platform.Release[gt]
		}
		if ar := arrival[gt] - T; ar > f {
			f = ar
		}
		rel[i] = f
	}
	ps.Release = rel
	return ps, nil
}

// mergeEpoch stitches a tail plan (times relative to commit T, task IDs in
// tail space, region i = warm region i) onto the frozen prefix of the
// previous plan, producing one absolute-time schedule over the global
// graph. The merged region set is the tail's: warm regions keep their
// identity by construction, frozen references are remapped through the
// horizon, and boundary reconfigurations (InTask < 0) reconnect to the last
// frozen task of their region.
func mergeEpoch(prev *schedule.Schedule, h *schedule.Horizon, global *taskgraph.Graph,
	tail *schedule.Schedule, tailOf, tailToGlobal []int, T int64) (*schedule.Schedule, error) {

	m := schedule.New(global, tail.Arch)
	m.ModuleReuse = tail.ModuleReuse
	m.Algorithm = "online(" + tail.Algorithm + ")"
	for _, r := range tail.Regions {
		m.AddRegion(r.Res)
	}

	var warmOf map[int]int // previous schedule's region ID -> warm (= merged) ID
	if h != nil {
		warmOf = make(map[int]int, len(h.RegionID))
		for w, old := range h.RegionID {
			warmOf[old] = w
		}
	}

	for gt := range m.Tasks {
		if ti := tailOf[gt]; ti >= 0 {
			a := tail.Tasks[ti]
			a.Start += T
			a.End += T
			m.Tasks[gt] = a
			continue
		}
		a := prev.Tasks[gt]
		if a.Target.Kind == schedule.OnRegion {
			w, ok := warmOf[a.Target.Index]
			if !ok {
				return nil, fmt.Errorf("frozen task %d sits in region %d the horizon does not carry", gt, a.Target.Index)
			}
			a.Target.Index = w
		}
		m.Tasks[gt] = a
	}

	if h != nil {
		for i, rc := range prev.Reconfs {
			if !h.FrozenReconf[i] {
				continue
			}
			w, ok := warmOf[rc.Region]
			if !ok {
				return nil, fmt.Errorf("frozen reconfiguration %d targets region %d the horizon does not carry", i, rc.Region)
			}
			rc.Region = w
			m.Reconfs = append(m.Reconfs, rc)
		}
	}
	for _, rc := range tail.Reconfs {
		rc.Start += T
		rc.End += T
		if rc.OutTask >= 0 {
			rc.OutTask = tailToGlobal[rc.OutTask]
		}
		if rc.InTask >= 0 {
			rc.InTask = tailToGlobal[rc.InTask]
		} else if h != nil && rc.Region < len(h.LastFrozenTask) {
			rc.InTask = h.LastFrozenTask[rc.Region]
		}
		m.Reconfs = append(m.Reconfs, rc)
	}
	m.ComputeMakespan()
	return m, nil
}
