package online

import (
	"fmt"
	"sort"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/schedule"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// Config parameterises an Engine. Arch is required; everything else has a
// working zero value.
type Config struct {
	// Arch is the target platform (required).
	Arch *arch.Architecture
	// Solver names the registered solver re-planning every epoch tail
	// (default "pa"). An epoch whose solver fails degrades to the "robust"
	// ladder, which bottoms out in the always-feasible software-only rung.
	Solver string
	// Workers and Seed drive the randomized solvers exactly as in solve:
	// the epoch sequence is a pure function of (trace, Config) for "pa" and
	// of (trace, Config minus Workers) for "par".
	Workers int
	Seed    int64
	// MaxIterations caps each epoch's randomized inner runs (default 8 so
	// an unconfigured "par" epoch terminates without a time budget).
	MaxIterations int
	// ModuleReuse enables module-reuse semantics in every epoch plan.
	ModuleReuse bool
	// DisablePrefetch retimes every epoch tail so reconfigurations are
	// issued only once the data of the task they load is ready — the
	// issue-at-dispatch baseline online systems without prefetching run.
	// The default (prefetching on) keeps the solvers' early issue times.
	DisablePrefetch bool
	// EpochNodes, when positive, caps each epoch's re-plan at that many
	// search nodes on a fresh per-epoch budget. When zero, epochs share
	// Budget below.
	EpochNodes int64
	// Budget, when non-nil, bounds the whole run: the epoch loop polls it
	// between epochs and (unless EpochNodes overrides) the solvers poll it
	// inside each re-plan.
	Budget *budget.Budget
	// Faults drives deterministic fault injection: late arrivals here,
	// solver faults inside the re-plans.
	Faults *faultinject.Set
	// Trace records the online.* span/counter taxonomy; nil is a no-op.
	Trace *obs.Trace
	// PolishIterations, when positive, runs one final PA-R pass over the
	// last epoch's tail with the stitched plan as incumbent, adopting the
	// result only when it strictly improves the global makespan.
	PolishIterations int
	// Clairvoyant, when set, additionally solves the whole trace offline
	// with full knowledge of all arrivals and reports the makespan gap the
	// online engine pays for not knowing the future.
	Clairvoyant bool
}

func (c Config) withDefaults() Config {
	if c.Solver == "" {
		c.Solver = "pa"
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 8
	}
	return c
}

// EpochStats is the per-epoch record of one commit-boundary re-plan.
type EpochStats struct {
	// Commit is the boundary instant the epoch re-planned at.
	Commit int64
	// NewJobs counts the jobs that arrived at this boundary.
	NewJobs int
	// FrozenTasks and TailTasks split the global task set at the boundary.
	FrozenTasks, TailTasks int
	// Degraded reports that the configured solver failed and the robust
	// ladder planned this epoch instead.
	Degraded bool
	// Makespan is the stitched global makespan after this epoch.
	Makespan int64
	// PrefetchIssued counts tail reconfigurations issued before the data of
	// the task they load was ready; Hits hid the whole load latency, Misses
	// still exposed some of it.
	PrefetchIssued, PrefetchHits, PrefetchMisses int
	// Stall is the total exposed reconfiguration latency of the tail;
	// StallHidden is how much of the issue-at-dispatch baseline's exposure
	// the early issue times hid (baseline minus Stall).
	Stall, StallHidden int64
	// ReplanTime is the wall-clock cost of the re-plan. It is measurement,
	// not output: every other field is deterministic for a fixed config,
	// this one is not.
	ReplanTime time.Duration
}

// Result is the outcome of a finished run.
type Result struct {
	// Schedule is the stitched global schedule over Graph; nil when no job
	// was ever submitted.
	Schedule *schedule.Schedule
	// Graph is the merged global task graph (all jobs, IDs in plan order).
	Graph *taskgraph.Graph
	// Jobs are the planned jobs in plan order with effective (post-fault,
	// post-clamp) arrival times.
	Jobs []Job
	// Release[t] is the effective arrival floor of global task t — the
	// replay floors for sim.ExecuteFrom.
	Release []int64
	// Epochs are the per-epoch records in commit order.
	Epochs []EpochStats
	// JobEnds[j] is the completion time of job j in the stitched schedule;
	// MissedDeadlines lists the jobs (by index) that finished past their
	// deadline.
	JobEnds         []int64
	MissedDeadlines []int
	// LateArrivals counts submissions delayed by an armed late-arrival
	// fault.
	LateArrivals int
	// PolishImproved reports that the final polish pass beat the last
	// epoch's plan and was adopted.
	PolishImproved bool
	// ClairvoyantMakespan and ClairvoyantGap are filled when
	// Config.Clairvoyant is set: the makespan of the offline solve that
	// knew every arrival in advance, and how far the online result is
	// behind it.
	ClairvoyantMakespan, ClairvoyantGap int64
}

// epochCtx is what Finalize's polish pass needs to re-solve and re-stitch
// the last epoch.
type epochCtx struct {
	commit       int64
	h            *schedule.Horizon
	prev         *schedule.Schedule
	global       *taskgraph.Graph
	tailG        *taskgraph.Graph
	ps           *schedule.PlatformState
	tail         *schedule.Schedule
	tailOf       []int
	tailToGlobal []int
}

// Engine is the rolling-horizon driver. It is not safe for concurrent use;
// serving tiers serialise access per session.
type Engine struct {
	cfg     Config
	pending []Job
	jobs    []Job // planned jobs, plan order
	offsets []int // offsets[j] = first global task ID of jobs[j]
	global  *taskgraph.Graph
	arrival []int64 // effective arrival per global task
	plan    *schedule.Schedule
	commit  int64
	epochs  []EpochStats
	last    *epochCtx
	late    int
}

// New validates the config and returns an idle engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Arch == nil {
		return nil, fmt.Errorf("online: Config.Arch is required")
	}
	cfg = cfg.withDefaults()
	if _, err := solve.Get(cfg.Solver); err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}
	return &Engine{cfg: cfg}, nil
}

// Submit queues one job for the next Run. An armed late-arrival fault
// delays the job past its nominal arrival; arrivals in the committed past
// are clamped to the current commit boundary at plan time (the platform
// cannot retroactively have known about them).
func (e *Engine) Submit(j Job) error {
	if j.Graph == nil {
		return fmt.Errorf("online: job %q has no graph", j.Name)
	}
	if err := j.Graph.Validate(); err != nil {
		return fmt.Errorf("online: job %q: %w", j.Name, err)
	}
	if j.Arrival < 0 {
		return fmt.Errorf("online: job %q arrives at negative time %d", j.Name, j.Arrival)
	}
	if d, ok := e.cfg.Faults.LateArrival(); ok {
		j.Arrival += d
		e.late++
		e.cfg.Trace.Count("online.late_arrivals", 1)
	}
	e.pending = append(e.pending, j)
	return nil
}

// SubmitTrace submits every job of a trace.
func (e *Engine) SubmitTrace(tr *Trace) error {
	for _, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			return err
		}
	}
	return nil
}

// Run drains the pending queue: jobs are grouped by effective arrival and
// each distinct arrival instant becomes one epoch — freeze the current plan
// at the boundary, re-plan the tail from the warm platform state, stitch.
// Run may be called repeatedly as more jobs are submitted.
func (e *Engine) Run() error {
	sort.SliceStable(e.pending, func(i, j int) bool {
		return e.pending[i].Arrival < e.pending[j].Arrival
	})
	queue := e.pending
	e.pending = nil
	i := 0
	for { // one epoch per iteration; the run budget is polled every pass
		if err := e.cfg.Budget.Check(); err != nil {
			e.pending = append(queue[i:], e.pending...)
			return fmt.Errorf("online: run stopped after %d epoch(s): %w", len(e.epochs), err)
		}
		if i >= len(queue) {
			return nil
		}
		T := queue[i].Arrival
		if T < e.commit {
			T = e.commit
		}
		var group []Job
		for i < len(queue) {
			a := queue[i].Arrival
			if a < e.commit {
				a = e.commit
			}
			if a != T {
				break
			}
			j := queue[i]
			j.Arrival = a
			group = append(group, j)
			i++
		}
		if err := e.epoch(T, group); err != nil {
			e.pending = append(queue[i:], e.pending...)
			return err
		}
	}
}

// epoch freezes the plan at commit instant T, folds the newly arrived jobs
// into the global graph, re-plans the tail from the warm platform state and
// stitches the result back onto the frozen prefix.
func (e *Engine) epoch(T int64, newJobs []Job) error {
	span := e.cfg.Trace.Start("online.epoch",
		obs.Int("commit", T), obs.Int("new_jobs", int64(len(newJobs))))
	defer span.End()
	began := time.Now()

	var h *schedule.Horizon
	prev := e.plan
	if prev != nil {
		var err error
		h, err = schedule.Freeze(prev, T)
		if err != nil {
			return fmt.Errorf("online: epoch at %d: %w", T, err)
		}
	}

	jobs := append(append([]Job(nil), e.jobs...), newJobs...)
	global, offsets, arrival, err := buildGlobal(jobs)
	if err != nil {
		return fmt.Errorf("online: epoch at %d: %w", T, err)
	}
	n := global.N()
	frozen := make([]bool, n)
	if h != nil {
		// Job appends keep old global task IDs stable, so the horizon's
		// frozen set indexes the prefix of the rebuilt graph directly.
		copy(frozen, h.Frozen)
	}
	tailG, tailToGlobal, tailOf, err := buildTail(global, frozen, T)
	if err != nil {
		return fmt.Errorf("online: epoch at %d: %w", T, err)
	}
	ps, err := warmState(h, tailToGlobal, tailOf, arrival, T)
	if err != nil {
		return fmt.Errorf("online: epoch at %d: %w", T, err)
	}

	tail, degraded, err := e.solveTail(tailG, ps)
	if err != nil {
		return fmt.Errorf("online: epoch at %d: %w", T, err)
	}
	if errs := schedule.CheckAgainst(ps, tail); len(errs) > 0 {
		return fmt.Errorf("online: epoch at %d planned an invalid tail: %v", T, errs[0])
	}
	if e.cfg.DisablePrefetch {
		tail, err = retimeNoPrefetch(tail, ps)
		if err != nil {
			return fmt.Errorf("online: epoch at %d: %w", T, err)
		}
		if errs := schedule.CheckAgainst(ps, tail); len(errs) > 0 {
			return fmt.Errorf("online: epoch at %d: no-prefetch retime broke the tail: %v", T, errs[0])
		}
	}
	st := stallStats(tail, ps)

	merged, err := mergeEpoch(prev, h, global, tail, tailOf, tailToGlobal, T)
	if err != nil {
		return fmt.Errorf("online: epoch at %d: %w", T, err)
	}
	if errs := schedule.Check(merged); len(errs) > 0 {
		return fmt.Errorf("online: epoch at %d stitched an invalid schedule: %v", T, errs[0])
	}

	e.jobs, e.offsets, e.global, e.arrival = jobs, offsets, global, arrival
	e.plan, e.commit = merged, T
	e.last = &epochCtx{
		commit: T, h: h, prev: prev, global: global, tailG: tailG,
		ps: ps, tail: tail, tailOf: tailOf, tailToGlobal: tailToGlobal,
	}

	es := EpochStats{
		Commit:         T,
		NewJobs:        len(newJobs),
		FrozenTasks:    n - tailG.N(),
		TailTasks:      tailG.N(),
		Degraded:       degraded,
		Makespan:       merged.Makespan,
		PrefetchIssued: st.issued, PrefetchHits: st.hits, PrefetchMisses: st.misses,
		Stall: st.stall, StallHidden: st.baseline - st.stall,
		ReplanTime: time.Since(began),
	}
	e.epochs = append(e.epochs, es)

	tr := e.cfg.Trace
	tr.Count("online.epochs", 1)
	tr.Observe("online.replan_us", float64(es.ReplanTime.Microseconds()))
	tr.Count("online.prefetch_issued", int64(st.issued))
	tr.Count("online.prefetch_hits", int64(st.hits))
	tr.Count("online.prefetch_misses", int64(st.misses))
	span.End(obs.Int("tail_tasks", int64(tailG.N())), obs.Int("makespan", merged.Makespan))
	return nil
}

// solveTail re-plans one epoch tail from the warm state. A failure of the
// configured solver degrades to the robust ladder so an epoch never leaves
// the platform without a plan.
func (e *Engine) solveTail(g *taskgraph.Graph, ps *schedule.PlatformState) (*schedule.Schedule, bool, error) {
	sv, err := solve.Get(e.cfg.Solver)
	if err != nil {
		return nil, false, err
	}
	eb := e.cfg.Budget
	if e.cfg.EpochNodes > 0 {
		eb = budget.New(budget.Options{MaxNodes: e.cfg.EpochNodes, Trace: e.cfg.Trace})
	}
	req := &solve.Request{Graph: g, Arch: e.cfg.Arch, Options: solve.Options{
		ModuleReuse:   e.cfg.ModuleReuse,
		SkipFloorplan: true,
		Seed:          e.cfg.Seed,
		Workers:       e.cfg.Workers,
		MaxIterations: e.cfg.MaxIterations,
		Budget:        eb,
		Faults:        e.cfg.Faults,
		Trace:         e.cfg.Trace,
		Initial:       ps,
	}}
	res, err := sv.Solve(req)
	if err == nil {
		return res.Schedule, false, nil
	}
	if e.cfg.Solver == "robust" {
		return nil, false, err
	}
	e.cfg.Trace.Count("online.degraded_epochs", 1)
	rb, rerr := solve.Get("robust")
	if rerr != nil {
		return nil, false, err
	}
	res, rerr = rb.Solve(req)
	if rerr != nil {
		return nil, false, fmt.Errorf("%v (robust fallback: %w)", err, rerr)
	}
	return res.Schedule, true, nil
}

// Plan returns the current stitched schedule (nil before the first epoch).
func (e *Engine) Plan() *schedule.Schedule { return e.plan }

// Commit returns the current commit boundary.
func (e *Engine) Commit() int64 { return e.commit }

// Epochs returns a copy of the per-epoch records so far.
func (e *Engine) Epochs() []EpochStats { return append([]EpochStats(nil), e.epochs...) }

// Finalize drains any pending jobs, optionally polishes the last epoch and
// scores the stitched schedule (deadlines, clairvoyant gap). The engine can
// keep running afterwards; Finalize is a checkpoint, not a terminator.
func (e *Engine) Finalize() (*Result, error) {
	if len(e.pending) > 0 {
		if err := e.Run(); err != nil {
			return nil, err
		}
	}
	res := &Result{
		Epochs:       append([]EpochStats(nil), e.epochs...),
		LateArrivals: e.late,
	}
	if e.plan == nil {
		return res, nil
	}
	if e.cfg.PolishIterations > 0 && e.last != nil {
		res.PolishImproved = e.polish()
	}
	res.Schedule, res.Graph = e.plan, e.global
	res.Jobs = append([]Job(nil), e.jobs...)
	res.Release = append([]int64(nil), e.arrival...)
	res.Epochs = append([]EpochStats(nil), e.epochs...)
	res.JobEnds = make([]int64, len(e.jobs))
	for j, job := range e.jobs {
		var end int64
		for t := e.offsets[j]; t < e.offsets[j]+job.Graph.N(); t++ {
			if e.plan.Tasks[t].End > end {
				end = e.plan.Tasks[t].End
			}
		}
		res.JobEnds[j] = end
		if job.Deadline > 0 && end > job.Deadline {
			res.MissedDeadlines = append(res.MissedDeadlines, j)
		}
	}
	if len(res.MissedDeadlines) > 0 {
		e.cfg.Trace.Count("online.deadline_misses", int64(len(res.MissedDeadlines)))
	}
	if e.cfg.Clairvoyant {
		cm, err := e.clairvoyant()
		if err != nil {
			return nil, fmt.Errorf("online: clairvoyant bound: %w", err)
		}
		res.ClairvoyantMakespan = cm
		res.ClairvoyantGap = e.plan.Makespan - cm
		e.cfg.Trace.SetGauge("online.clairvoyant_gap", float64(res.ClairvoyantGap))
	}
	return res, nil
}

// polish re-runs the randomized search over the last epoch's tail with that
// tail as incumbent and adopts the stitched result only when it strictly
// improves the global makespan and survives every check.
func (e *Engine) polish() bool {
	c := e.last
	sv, err := solve.Get("par")
	if err != nil {
		return false
	}
	req := &solve.Request{Graph: c.tailG, Arch: e.cfg.Arch, Options: solve.Options{
		ModuleReuse:      e.cfg.ModuleReuse,
		SkipFloorplan:    true,
		Seed:             e.cfg.Seed + 1,
		Workers:          e.cfg.Workers,
		MaxIterations:    e.cfg.PolishIterations,
		Budget:           e.cfg.Budget,
		Faults:           e.cfg.Faults,
		Trace:            e.cfg.Trace,
		Initial:          c.ps,
		InitialIncumbent: c.tail,
	}}
	res, err := sv.Solve(req)
	if err != nil || res.Schedule == nil || res.Schedule.Makespan >= c.tail.Makespan {
		return false
	}
	if errs := schedule.CheckAgainst(c.ps, res.Schedule); len(errs) > 0 {
		return false
	}
	merged, err := mergeEpoch(c.prev, c.h, c.global, res.Schedule, c.tailOf, c.tailToGlobal, c.commit)
	if err != nil {
		return false
	}
	if errs := schedule.Check(merged); len(errs) > 0 {
		return false
	}
	if merged.Makespan >= e.plan.Makespan {
		return false
	}
	e.plan = merged
	c.tail = res.Schedule
	if len(e.epochs) > 0 {
		e.epochs[len(e.epochs)-1].Makespan = merged.Makespan
	}
	e.cfg.Trace.Count("online.polish_improved", 1)
	return true
}

// clairvoyant solves the whole merged instance offline with every arrival
// known in advance (arrivals become plain release floors at t=0) — the
// bound an omniscient scheduler reaches.
func (e *Engine) clairvoyant() (int64, error) {
	sv, err := solve.Get(e.cfg.Solver)
	if err != nil {
		return 0, err
	}
	req := &solve.Request{Graph: e.global, Arch: e.cfg.Arch, Options: solve.Options{
		ModuleReuse:   e.cfg.ModuleReuse,
		SkipFloorplan: true,
		Seed:          e.cfg.Seed,
		Workers:       e.cfg.Workers,
		MaxIterations: e.cfg.MaxIterations,
		Budget:        e.cfg.Budget,
		Faults:        e.cfg.Faults,
		Trace:         e.cfg.Trace,
		Initial:       &schedule.PlatformState{Release: append([]int64(nil), e.arrival...)},
	}}
	res, err := sv.Solve(req)
	if err != nil {
		return 0, err
	}
	return res.Schedule.Makespan, nil
}
