package online

import (
	"fmt"
	"sort"

	"resched/internal/schedule"
)

// Reconfiguration prefetching (IS-k's idea, ref [8]): the solvers issue a
// region load as early as the controllers and the region allow, which hides
// load latency behind unrelated execution. This file measures how much that
// buys per epoch and, for Config.DisablePrefetch, rewrites a tail to the
// issue-at-dispatch baseline: no load may be issued before the data of the
// task it serves is ready.

// stalls is the per-epoch prefetch accounting of one tail plan.
type stalls struct {
	issued, hits, misses int
	// stall is the exposed load latency: reconfiguration end past the
	// served task's data-ready instant, summed. baseline is what the
	// issue-at-dispatch policy would expose for the same decisions.
	stall, baseline int64
}

// dataReady is the instant every input of tail task out is available: its
// release floor (arrival + frozen predecessors) joined with its tail
// predecessors' ends plus communication.
func dataReady(tail *schedule.Schedule, ps *schedule.PlatformState, out int) int64 {
	var dr int64
	if ps != nil && out < len(ps.Release) {
		dr = ps.Release[out]
	}
	for _, p := range tail.Graph.Pred(out) {
		if f := tail.Tasks[p].End + tail.Graph.EdgeComm(p, out); f > dr {
			dr = f
		}
	}
	return dr
}

// stallStats scores a tail's reconfigurations: a load issued before its
// task's data is ready is a prefetch; one that finishes by then hid the
// whole latency (hit), one that did not still exposed some (miss). The
// baseline charges each load max(duration, exposure) — what issuing at
// data-ready would expose — so baseline - stall is the latency prefetching
// hid.
func stallStats(tail *schedule.Schedule, ps *schedule.PlatformState) stalls {
	var st stalls
	for _, rc := range tail.Reconfs {
		if rc.OutTask < 0 {
			continue
		}
		dr := dataReady(tail, ps, rc.OutTask)
		dur := rc.End - rc.Start
		exposed := rc.End - dr
		if exposed < 0 {
			exposed = 0
		}
		st.stall += exposed
		if exposed > dur {
			st.baseline += exposed
		} else {
			st.baseline += dur
		}
		if rc.Start < dr {
			st.issued++
			if exposed == 0 {
				st.hits++
			} else {
				st.misses++
			}
		}
	}
	return st
}

// retimeNoPrefetch rewrites a tail plan to the issue-at-dispatch baseline:
// every decision (implementations, targets, orders) is kept, but each
// reconfiguration additionally waits for the data of the task it loads.
//
// The baseline timeline is produced by a deterministic event simulation, not
// a constraint-network fixpoint: a fixed channel-to-load assignment derived
// from the planned (prefetching) start order can genuinely cycle against the
// data clamps (the load a channel serves first may depend on data produced
// behind the load it would serve second). The simulator sidesteps that whole
// class by granting controllers dynamically — each load takes the earliest
// free channel at its dispatch instant — so the only ordering it preserves
// from the plan is the per-processor and per-region occupancy order, which
// is acyclic with the application graph by construction (the plan passed
// schedule.Check).
func retimeNoPrefetch(tail *schedule.Schedule, ps *schedule.PlatformState) (*schedule.Schedule, error) {
	s := tail.Clone()
	n := s.Graph.N()
	nch := s.Arch.ReconfiguratorCount()
	if nch == 0 && len(s.Reconfs) > 0 {
		return nil, fmt.Errorf("no-prefetch baseline: %d reconfigurations but no reconfiguration controller", len(s.Reconfs))
	}

	// One item per task execution and per reconfiguration, threaded into
	// resource chains: processor items chain in planned processor order,
	// region items chain in planned region order with each reconfiguration
	// slotted immediately before the task it loads. A chain head carries the
	// warm-platform availability floor of its resource.
	type item struct {
		task, rc int   // exactly one is >= 0
		prev     int   // chain predecessor item, or -1 for a chain head
		floor    int64 // warm availability floor (chain heads only)
		dur      int64
	}
	items := make([]item, 0, n+len(s.Reconfs))
	add := func(it item) int {
		items = append(items, it)
		return len(items) - 1
	}

	placed := 0
	for p := 0; p < s.Arch.Processors; p++ {
		prev, floor := -1, int64(0)
		if ps != nil && p < len(ps.ProcAvail) {
			floor = ps.ProcAvail[p]
		}
		for _, t := range s.ProcessorTasks(p) {
			prev = add(item{task: t, rc: -1, prev: prev, floor: floor, dur: s.Impl(t).Time})
			floor = 0
			placed++
		}
	}
	for r := range s.Regions {
		q := s.RegionTasks(r)
		pos := make(map[int]int, len(q))
		for i, t := range q {
			pos[t] = i
		}
		// buckets[i] holds the reconfigurations that precede task q[i] in
		// the region's exclusive timeline; bucket len(q) holds trailing
		// loads that serve no task of this plan.
		buckets := make([][]int, len(q)+1)
		for i, rc := range s.Reconfs {
			if rc.Region != r {
				continue
			}
			b := len(q)
			if rc.OutTask >= 0 {
				j, ok := pos[rc.OutTask]
				if !ok {
					return nil, fmt.Errorf("no-prefetch baseline: reconfiguration %d loads task %d, which does not run in region %d", i, rc.OutTask, r)
				}
				b = j
			} else {
				// A load serving no task keeps its planned slot in the
				// region's occupancy order.
				b = 0
				for _, t := range q {
					if s.Tasks[t].Start < rc.Start {
						b++
					}
				}
			}
			buckets[b] = append(buckets[b], i)
		}
		for _, bk := range buckets {
			sort.SliceStable(bk, func(a, b int) bool {
				return s.Reconfs[bk[a]].Start < s.Reconfs[bk[b]].Start
			})
		}
		prev, floor := -1, int64(0)
		if ps != nil && r < len(ps.Regions) {
			floor = ps.Regions[r].Avail
		}
		for b := 0; b <= len(q); b++ {
			for _, i := range buckets[b] {
				prev = add(item{task: -1, rc: i, prev: prev, floor: floor, dur: s.Reconfs[i].End - s.Reconfs[i].Start})
				floor = 0
			}
			if b < len(q) {
				prev = add(item{task: q[b], rc: -1, prev: prev, floor: floor, dur: s.Impl(q[b]).Time})
				floor = 0
				placed++
			}
		}
	}
	if placed != n {
		return nil, fmt.Errorf("no-prefetch baseline: %d of %d tasks hold a processor or region slot", placed, n)
	}

	// Event simulation by ready-scan: each round commits the uncommitted
	// item with the earliest feasible start among those whose chain
	// predecessor and data producers have all committed. Commits come out in
	// nondecreasing start order (an item unlocked by a commit can start no
	// earlier than that commit's end), so channel grants match a true event
	// calendar; ties break on item index, which is deterministic because the
	// chains are built in resource order.
	start := make([]int64, len(items))
	done := make([]bool, len(items))
	taskEnd := make([]int64, n)
	taskDone := make([]bool, n)
	chFree := make([]int64, nch)
	if ps != nil {
		for c := 0; c < nch && c < len(ps.ReconfAvail); c++ {
			chFree[c] = ps.ReconfAvail[c]
		}
	}
	// dataAt is the instant task t's inputs are all available under the
	// baseline timeline: its release floor joined with the committed ends of
	// its predecessors plus communication. ok is false while a predecessor
	// is still uncommitted.
	dataAt := func(t int) (int64, bool) {
		var dr int64
		if ps != nil && t < len(ps.Release) {
			dr = ps.Release[t]
		}
		for _, p := range s.Graph.Pred(t) {
			if !taskDone[p] {
				return 0, false
			}
			if f := taskEnd[p] + s.Graph.EdgeComm(p, t); f > dr {
				dr = f
			}
		}
		return dr, true
	}
	for committed := 0; committed < len(items); committed++ {
		best, bestAt, bestCh := -1, int64(0), -1
		for i, it := range items {
			if done[i] {
				continue
			}
			if it.prev >= 0 && !done[it.prev] {
				continue
			}
			at := it.floor
			if it.prev >= 0 {
				if e := start[it.prev] + items[it.prev].dur; e > at {
					at = e
				}
			}
			ch := -1
			if it.task >= 0 {
				dr, ok := dataAt(it.task)
				if !ok {
					continue
				}
				if dr > at {
					at = dr
				}
			} else {
				if out := s.Reconfs[it.rc].OutTask; out >= 0 {
					// The no-prefetch clamp: the load waits for the data
					// of the task it serves.
					dr, ok := dataAt(out)
					if !ok {
						continue
					}
					if dr > at {
						at = dr
					}
				}
				ch = 0
				for c := 1; c < nch; c++ {
					if chFree[c] < chFree[ch] {
						ch = c
					}
				}
				if chFree[ch] > at {
					at = chFree[ch]
				}
			}
			if best < 0 || at < bestAt {
				best, bestAt, bestCh = i, at, ch
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("no-prefetch baseline: dependency deadlock — the tail's occupancy order contradicts its task graph")
		}
		it := items[best]
		start[best], done[best] = bestAt, true
		if it.task >= 0 {
			taskDone[it.task] = true
			taskEnd[it.task] = bestAt + it.dur
		} else {
			chFree[bestCh] = bestAt + it.dur
		}
	}

	for i, it := range items {
		if it.task >= 0 {
			s.Tasks[it.task].Start = start[i]
			s.Tasks[it.task].End = start[i] + it.dur
		} else {
			s.Reconfs[it.rc].Start = start[i]
			s.Reconfs[it.rc].End = start[i] + it.dur
		}
	}
	s.ComputeMakespan()
	return s, nil
}
