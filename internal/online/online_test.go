package online

import (
	"reflect"
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/schedule"
	"resched/internal/sim"
	"resched/internal/solve"
)

func runTrace(t *testing.T, cfg Config, tr *Trace) *Result {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func genTrace(t *testing.T, tc TraceConfig) *Trace {
	t.Helper()
	tr, err := GenTrace(tc)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// stripTimes zeroes the wall-clock fields so epoch records compare
// deterministically.
func stripTimes(es []EpochStats) []EpochStats {
	out := append([]EpochStats(nil), es...)
	for i := range out {
		out[i].ReplanTime = 0
	}
	return out
}

// TestStitchedScheduleProperty is the end-to-end invariant over many seeded
// traces: every run's stitched schedule is one valid global schedule, the
// arrival-driven simulator replays it within the planned makespan, and no
// task starts before its effective arrival.
func TestStitchedScheduleProperty(t *testing.T) {
	a := arch.ZedBoard()
	for seed := int64(0); seed < 50; seed++ {
		tr := genTrace(t, TraceConfig{Jobs: 4, TasksPerJob: 8, Seed: seed, MeanGap: 700, CommMax: 40})
		res := runTrace(t, Config{Arch: a, Seed: seed, ModuleReuse: seed%2 == 0}, tr)
		if res.Schedule == nil {
			t.Fatalf("seed %d: no schedule", seed)
		}
		if errs := schedule.Check(res.Schedule); len(errs) > 0 {
			t.Errorf("seed %d: stitched schedule invalid: %v", seed, errs[0])
			continue
		}
		for v, r := range res.Release {
			if res.Schedule.Tasks[v].Start < r {
				t.Errorf("seed %d: task %d starts at %d before its arrival %d",
					seed, v, res.Schedule.Tasks[v].Start, r)
			}
		}
		ex, err := sim.ExecuteFrom(res.Schedule, res.Release)
		if err != nil {
			t.Errorf("seed %d: replay failed: %v", seed, err)
			continue
		}
		if ex.Makespan > res.Schedule.Makespan {
			t.Errorf("seed %d: executed makespan %d exceeds planned %d",
				seed, ex.Makespan, res.Schedule.Makespan)
		}
		if len(res.Epochs) == 0 {
			t.Errorf("seed %d: no epochs recorded", seed)
		}
	}
}

// TestDeterminism pins the epoch-sequence contract: a fixed (trace, config)
// reproduces the stitched schedule and epoch records bit-identically across
// runs, PA is invariant under the worker count, and PA-R is reproducible at
// a fixed worker count.
func TestDeterminism(t *testing.T) {
	a := arch.ZedBoard()
	tc := TraceConfig{Jobs: 5, TasksPerJob: 10, Seed: 42, MeanGap: 600, CommMax: 25}

	base := runTrace(t, Config{Arch: a, Seed: 7}, genTrace(t, tc))
	for run := 0; run < 2; run++ {
		r := runTrace(t, Config{Arch: a, Seed: 7}, genTrace(t, tc))
		if !reflect.DeepEqual(r.Schedule, base.Schedule) {
			t.Fatalf("run %d: stitched schedule differs from the first run", run)
		}
		if !reflect.DeepEqual(stripTimes(r.Epochs), stripTimes(base.Epochs)) {
			t.Fatalf("run %d: epoch records differ from the first run", run)
		}
	}
	for _, w := range []int{1, 2, 4} {
		r := runTrace(t, Config{Arch: a, Seed: 7, Workers: w}, genTrace(t, tc))
		if !reflect.DeepEqual(r.Schedule, base.Schedule) {
			t.Fatalf("pa with %d workers produced a different stitched schedule", w)
		}
	}

	par := Config{Arch: a, Solver: "par", Seed: 7, Workers: 3, MaxIterations: 6}
	p1 := runTrace(t, par, genTrace(t, tc))
	p2 := runTrace(t, par, genTrace(t, tc))
	if !reflect.DeepEqual(p1.Schedule, p2.Schedule) {
		t.Fatal("par at fixed workers is not reproducible across runs")
	}
	if !reflect.DeepEqual(stripTimes(p1.Epochs), stripTimes(p2.Epochs)) {
		t.Fatal("par epoch records are not reproducible across runs")
	}
}

// TestEmptyAndSingleJob covers the degenerate traces: no jobs at all, and
// one job arriving at t=0, which must match the plain offline solve.
func TestEmptyAndSingleJob(t *testing.T) {
	a := arch.ZedBoard()
	e, err := New(Config{Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != nil || len(res.Epochs) != 0 {
		t.Fatalf("empty trace produced a schedule: %+v", res)
	}

	tr := genTrace(t, TraceConfig{Jobs: 1, TasksPerJob: 12, Seed: 3})
	res = runTrace(t, Config{Arch: a}, tr)
	if len(res.Epochs) != 1 {
		t.Fatalf("single job planned in %d epochs, want 1", len(res.Epochs))
	}
	sv, err := solve.Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	off, err := sv.Solve(&solve.Request{Graph: tr.Jobs[0].Graph, Arch: a,
		Options: solve.Options{SkipFloorplan: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule.Makespan != off.Schedule.Makespan {
		t.Fatalf("single job at t=0: online makespan %d, offline %d",
			res.Schedule.Makespan, off.Schedule.Makespan)
	}
}

// TestLateArrivalFault arms the counted late-arrival fault and checks the
// delayed jobs are re-planned at their delayed instants with the stitched
// schedule still valid end to end.
func TestLateArrivalFault(t *testing.T) {
	a := arch.ZedBoard()
	fa := faultinject.New()
	fa.ForceLateArrival(2, 5000)
	tr := genTrace(t, TraceConfig{Jobs: 4, TasksPerJob: 8, Seed: 11, MeanGap: 500})

	e, err := New(Config{Arch: a, Faults: fa})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitTrace(tr); err != nil {
		t.Fatal(err)
	}
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.LateArrivals != 2 || fa.Fired(faultinject.FaultLateArrival) != 2 {
		t.Fatalf("late arrivals: result %d, fired %d, want 2 and 2",
			res.LateArrivals, fa.Fired(faultinject.FaultLateArrival))
	}
	if errs := schedule.Check(res.Schedule); len(errs) > 0 {
		t.Fatalf("stitched schedule invalid after late arrivals: %v", errs[0])
	}
	if _, err := sim.ExecuteFrom(res.Schedule, res.Release); err != nil {
		t.Fatalf("replay failed after late arrivals: %v", err)
	}
	// The first two submissions were delayed by 5000; their effective
	// arrivals must show it.
	delayed := 0
	for _, j := range res.Jobs {
		for _, orig := range tr.Jobs {
			if j.Name == orig.Name && j.Arrival == orig.Arrival+5000 {
				delayed++
			}
		}
	}
	if delayed != 2 {
		t.Fatalf("found %d jobs delayed by the fault, want 2", delayed)
	}
}

// TestDeadlineScoring checks deadline misses are detected from the stitched
// completion times.
func TestDeadlineScoring(t *testing.T) {
	a := arch.ZedBoard()
	tr := genTrace(t, TraceConfig{Jobs: 3, TasksPerJob: 8, Seed: 5, MeanGap: 400})
	tr.Jobs[0].Deadline = 1       // impossible
	tr.Jobs[1].Deadline = 1 << 40 // trivially met
	res := runTrace(t, Config{Arch: a}, tr)
	if !reflect.DeepEqual(res.MissedDeadlines, []int{0}) {
		t.Fatalf("missed deadlines %v, want [0]", res.MissedDeadlines)
	}
	if res.JobEnds[0] <= 1 || res.JobEnds[1] <= 0 {
		t.Fatalf("implausible job completion times %v", res.JobEnds)
	}
}

// TestNoPrefetchExposesMoreStall pins the prefetch benefit on a committed
// trace: with prefetching disabled no load is issued early, and the total
// exposed reconfiguration latency strictly grows.
func TestNoPrefetchExposesMoreStall(t *testing.T) {
	a := arch.ZedBoard()
	tc := TraceConfig{Jobs: 4, TasksPerJob: 10, Seed: 2, MeanGap: 900, CommMax: 30}
	with := runTrace(t, Config{Arch: a}, genTrace(t, tc))
	without := runTrace(t, Config{Arch: a, DisablePrefetch: true}, genTrace(t, tc))

	var issuedWith, stallWith, stallWithout, issuedWithout int64
	for _, es := range with.Epochs {
		issuedWith += int64(es.PrefetchIssued)
		stallWith += es.Stall
	}
	for _, es := range without.Epochs {
		issuedWithout += int64(es.PrefetchIssued)
		stallWithout += es.Stall
	}
	if issuedWithout != 0 {
		t.Fatalf("no-prefetch run still issued %d early loads", issuedWithout)
	}
	if issuedWith == 0 {
		t.Fatal("prefetch run issued no early loads on this trace; pick a different seed")
	}
	if stallWith >= stallWithout {
		t.Fatalf("prefetching did not reduce stall: %d with vs %d without", stallWith, stallWithout)
	}
	t.Logf("prefetch: %d early loads, stall %d ticks vs %d without (hidden %d), makespan %d vs %d",
		issuedWith, stallWith, stallWithout, stallWithout-stallWith,
		with.Schedule.Makespan, without.Schedule.Makespan)
	if errs := schedule.Check(without.Schedule); len(errs) > 0 {
		t.Fatalf("no-prefetch stitched schedule invalid: %v", errs[0])
	}
	if _, err := sim.ExecuteFrom(without.Schedule, without.Release); err != nil {
		t.Fatalf("no-prefetch replay failed: %v", err)
	}
}

// TestPolishAndClairvoyant exercises the finalization extras: the polish
// pass may only improve the plan, and the clairvoyant bound is reported.
func TestPolishAndClairvoyant(t *testing.T) {
	a := arch.ZedBoard()
	tc := TraceConfig{Jobs: 4, TasksPerJob: 10, Seed: 6, MeanGap: 700}
	plain := runTrace(t, Config{Arch: a, Seed: 9}, genTrace(t, tc))
	extra := runTrace(t, Config{Arch: a, Seed: 9, PolishIterations: 6, Clairvoyant: true}, genTrace(t, tc))
	if errs := schedule.Check(extra.Schedule); len(errs) > 0 {
		t.Fatalf("polished schedule invalid: %v", errs[0])
	}
	if extra.Schedule.Makespan > plain.Schedule.Makespan {
		t.Fatalf("polish made the plan worse: %d > %d",
			extra.Schedule.Makespan, plain.Schedule.Makespan)
	}
	if extra.ClairvoyantMakespan <= 0 {
		t.Fatalf("clairvoyant makespan not computed: %d", extra.ClairvoyantMakespan)
	}
	if got := extra.Schedule.Makespan - extra.ClairvoyantMakespan; got != extra.ClairvoyantGap {
		t.Fatalf("clairvoyant gap %d inconsistent with makespans (want %d)", extra.ClairvoyantGap, got)
	}
}

// TestDegradeToRobust drives the per-epoch fallback: the exact reference
// rejects warm platform states, so every warm epoch must degrade to the
// robust ladder and still stitch a valid schedule.
func TestDegradeToRobust(t *testing.T) {
	a := arch.ZedBoard()
	tr := genTrace(t, TraceConfig{Jobs: 2, TasksPerJob: 5, Seed: 1})
	tr.Jobs[1].Arrival = 1 // mid-flight: the second epoch starts warm
	res := runTrace(t, Config{Arch: a, Solver: "exact", EpochNodes: 200000}, tr)
	if errs := schedule.Check(res.Schedule); len(errs) > 0 {
		t.Fatalf("stitched schedule invalid: %v", errs[0])
	}
	degraded := 0
	for _, es := range res.Epochs {
		if es.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no epoch degraded although the exact solver rejects warm states")
	}
}

// TestRunStopsOnCancelledBudget checks the epoch loop polls the run budget.
func TestRunStopsOnCancelledBudget(t *testing.T) {
	a := arch.ZedBoard()
	b := budget.New(budget.Options{})
	b.Cancel()
	e, err := New(Config{Arch: a, Budget: b})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitTrace(genTrace(t, TraceConfig{Jobs: 2, TasksPerJob: 6, Seed: 8})); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(); err == nil || !strings.Contains(err.Error(), "stopped") {
		t.Fatalf("cancelled budget did not stop the run: %v", err)
	}
	if e.Plan() != nil {
		t.Fatal("cancelled run still committed a plan")
	}
}

// TestOnlineMetrics checks the online.* counter taxonomy lands in obs.
func TestOnlineMetrics(t *testing.T) {
	a := arch.ZedBoard()
	tr := obs.New()
	trace := genTrace(t, TraceConfig{Jobs: 3, TasksPerJob: 8, Seed: 4, MeanGap: 500})
	e, err := New(Config{Arch: a, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitTrace(trace); err != nil {
		t.Fatal(err)
	}
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	snap := tr.Snapshot()
	if got := snap.Counters["online.epochs"]; got != int64(len(res.Epochs)) {
		t.Fatalf("online.epochs = %d, want %d", got, len(res.Epochs))
	}
	if _, ok := snap.Histograms["online.replan_us"]; !ok {
		t.Fatal("online.replan_us histogram missing")
	}
	var issued int64
	for _, es := range res.Epochs {
		issued += int64(es.PrefetchIssued)
	}
	if got := snap.Counters["online.prefetch_issued"]; got != issued {
		t.Fatalf("online.prefetch_issued = %d, want %d", got, issued)
	}
}

// TestIncrementalRuns checks Run can be called repeatedly as jobs keep
// arriving: late submissions in the committed past are clamped to the
// commit boundary and the stitched schedule stays valid throughout.
func TestIncrementalRuns(t *testing.T) {
	a := arch.ZedBoard()
	tr := genTrace(t, TraceConfig{Jobs: 4, TasksPerJob: 7, Seed: 13, MeanGap: 600})
	e, err := New(Config{Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range tr.Jobs {
		if err := e.Submit(j); err != nil {
			t.Fatal(err)
		}
		if err := e.Run(); err != nil {
			t.Fatalf("run after job %d: %v", i, err)
		}
		if errs := schedule.Check(e.Plan()); len(errs) > 0 {
			t.Fatalf("after job %d the stitched schedule is invalid: %v", i, errs[0])
		}
	}
	res, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != len(tr.Jobs) {
		t.Fatalf("planned %d jobs, want %d", len(res.Jobs), len(tr.Jobs))
	}
	// Jobs arrived one Run at a time, each clamped forward: epochs must be
	// in nondecreasing commit order.
	for i := 1; i < len(res.Epochs); i++ {
		if res.Epochs[i].Commit < res.Epochs[i-1].Commit {
			t.Fatalf("commit boundaries regressed: %d after %d",
				res.Epochs[i].Commit, res.Epochs[i-1].Commit)
		}
	}
	if _, err := sim.ExecuteFrom(res.Schedule, res.Release); err != nil {
		t.Fatalf("replay failed: %v", err)
	}
}
