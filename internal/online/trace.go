// Package online is the rolling-horizon scheduling engine: jobs (task
// graphs) arrive over time, and at every commit boundary the engine freezes
// what the platform has already started (schedule.Freeze), re-plans the
// remaining work from the warm platform state with any registered solver,
// and stitches the tail back onto the frozen prefix. The stitched result is
// at all times one valid global schedule (schedule.Check) that also honours
// every commitment the platform made before each boundary
// (schedule.CheckAgainst).
//
// The offline core the paper evaluates (§V–§VII) solves one graph from a
// cold platform; the online engine turns that core into a service loop:
// epoch e's re-plan sees region loadouts, busy-until floors, in-flight
// reconfigurations and cross-boundary data dependencies as a
// schedule.PlatformState, so PA, PA-R, IS-k and the robust ladder schedule
// epoch tails exactly as they schedule offline instances. Reconfiguration
// prefetching (ref [8]) carries over: planned reconfigurations start as
// early as the controllers allow, hiding load latency behind execution, and
// the engine accounts how much stall that hides versus an issue-at-dispatch
// baseline.
package online

import (
	"fmt"
	"math/rand"

	"resched/internal/benchgen"
	"resched/internal/taskgraph"
)

// Job is one unit of arriving work: a task graph that becomes known to the
// scheduler at Arrival.
type Job struct {
	// Name labels the job in the merged global graph.
	Name string
	// Graph is the job's task graph (owned by the engine after Submit).
	Graph *taskgraph.Graph
	// Arrival is the absolute instant the job becomes known. The engine
	// re-plans at every distinct arrival instant; tasks of the job can
	// never start earlier.
	Arrival int64
	// Deadline, when positive, is the absolute completion deadline the
	// engine scores the stitched schedule against (online.deadline_misses).
	Deadline int64
}

// Trace is a replayable arrival sequence.
type Trace struct {
	Jobs []Job
}

// TraceConfig parameterises GenTrace. Equal configs generate equal traces.
type TraceConfig struct {
	// Jobs is the number of arriving jobs (default 6).
	Jobs int
	// TasksPerJob sizes each job's graph (default 12).
	TasksPerJob int
	// Seed drives all randomness.
	Seed int64
	// MeanGap is the mean inter-arrival gap in ticks (default 2000); actual
	// gaps are uniform in [0, 2*MeanGap].
	MeanGap int64
	// DeadlineSlack, when positive, assigns every job the deadline
	// arrival + slack * L, where L is the job's critical-path lower bound
	// (longest chain of minimal execution times). 0 means no deadlines.
	DeadlineSlack float64
	// CommMax is forwarded to benchgen (communication-annotated edges).
	CommMax int64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Jobs == 0 {
		c.Jobs = 6
	}
	if c.TasksPerJob == 0 {
		c.TasksPerJob = 12
	}
	if c.MeanGap == 0 {
		c.MeanGap = 2000
	}
	return c
}

// GenTrace builds a seeded arrival trace: each job is a benchgen graph with
// its own derived seed, arrivals accumulate uniform gaps, and deadlines (if
// requested) scale each job's critical-path lower bound.
func GenTrace(cfg TraceConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{}
	var at int64
	for j := 0; j < cfg.Jobs; j++ {
		g, err := benchgen.Generate(benchgen.Config{
			Tasks:   cfg.TasksPerJob,
			Seed:    cfg.Seed + int64(j)*7919, // distinct stream per job
			CommMax: cfg.CommMax,
		})
		if err != nil {
			return nil, fmt.Errorf("online: trace job %d: %w", j, err)
		}
		job := Job{Name: fmt.Sprintf("job%d", j), Graph: g, Arrival: at}
		if cfg.DeadlineSlack > 0 {
			job.Deadline = at + int64(cfg.DeadlineSlack*float64(criticalLB(g)))
		}
		tr.Jobs = append(tr.Jobs, job)
		at += rng.Int63n(2*cfg.MeanGap + 1)
	}
	return tr, nil
}

// criticalLB is the longest chain of minimal execution times through the
// graph — the tightest completion bound any scheduler can reach.
func criticalLB(g *taskgraph.Graph) int64 {
	topo, err := g.TopoOrder()
	if err != nil {
		return 0
	}
	down := make([]int64, g.N())
	var best int64
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, w := range g.Succ(v) {
			if c := down[w] + g.EdgeComm(v, w); c > down[v] {
				down[v] = c
			}
		}
		down[v] += g.Tasks[v].MinTime()
		if down[v] > best {
			best = down[v]
		}
	}
	return best
}
