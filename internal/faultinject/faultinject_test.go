package faultinject

import (
	"reflect"
	"testing"
	"time"
)

func TestNilSetIsInert(t *testing.T) {
	var s *Set
	if s.FloorplanSolve() || s.MILPSolve() {
		t.Fatal("nil set fired a fault")
	}
	if got := s.Armed(); len(got) != 0 {
		t.Fatalf("nil set Armed = %v", got)
	}
	if s.Fired(FaultMILPLimit) != 0 {
		t.Fatal("nil set reports fired faults")
	}
}

func TestForceFloorplanInfeasibleCountsDown(t *testing.T) {
	s := New()
	s.ForceFloorplanInfeasible(2)
	if !s.FloorplanSolve() || !s.FloorplanSolve() {
		t.Fatal("armed solves not stolen")
	}
	if s.FloorplanSolve() {
		t.Fatal("third solve stolen after arming 2")
	}
	if n := s.Fired(FaultFloorplanInfeasible); n != 2 {
		t.Fatalf("Fired = %d, want 2", n)
	}
}

func TestForceForever(t *testing.T) {
	s := New()
	s.ForceFloorplanInfeasible(-1)
	for i := 0; i < 10; i++ {
		if !s.FloorplanSolve() {
			t.Fatalf("solve %d not stolen with n=-1", i)
		}
	}
	if s.MILPSolve() {
		t.Fatal("milp solve stolen without arming")
	}
}

func TestForceMILPLimit(t *testing.T) {
	s := New()
	s.ForceMILPLimit(1)
	if !s.MILPSolve() {
		t.Fatal("armed milp solve not stolen")
	}
	if s.MILPSolve() {
		t.Fatal("second milp solve stolen after arming 1")
	}
}

func TestSolverLatencyAdvancesClock(t *testing.T) {
	clk := NewClock()
	start := clk.Now()
	s := New()
	s.SetSolverLatency(50*time.Millisecond, clk)
	s.FloorplanSolve()
	s.MILPSolve()
	if got := clk.Now().Sub(start); got != 100*time.Millisecond {
		t.Fatalf("clock advanced %v, want 100ms", got)
	}
	if n := s.Fired(FaultSolverLatency); n != 2 {
		t.Fatalf("latency fired %d times, want 2", n)
	}
}

func TestClockDeterministicEpochAndAdvance(t *testing.T) {
	a, b := NewClock(), NewClock()
	if !a.Now().Equal(b.Now()) {
		t.Fatal("two fresh clocks disagree")
	}
	a.Advance(time.Second)
	if got := a.Now().Sub(b.Now()); got != time.Second {
		t.Fatalf("advance moved clock by %v, want 1s", got)
	}
	a.Advance(-time.Hour)
	if a.Now().Before(b.Now()) {
		t.Fatal("negative advance moved the clock backward")
	}
}

func TestArmedIsSortedAndLive(t *testing.T) {
	s := New()
	clk := NewClock()
	s.SetSolverLatency(time.Millisecond, clk)
	s.ForceMILPLimit(1)
	s.ForceFloorplanInfeasible(3)
	want := []string{FaultFloorplanInfeasible, FaultMILPLimit, FaultSolverLatency}
	if got := s.Armed(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Armed = %v, want %v", got, want)
	}
	s.MILPSolve() // consumes the single armed milp fault
	want = []string{FaultFloorplanInfeasible, FaultSolverLatency}
	if got := s.Armed(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Armed after consuming milp fault = %v, want %v", got, want)
	}
}

func TestServeDispatchForcesQueueFull(t *testing.T) {
	var nilSet *Set
	if nilSet.ServeDispatch() {
		t.Fatal("nil set forced queue-full")
	}
	s := New()
	if s.ServeDispatch() {
		t.Fatal("unarmed set forced queue-full")
	}
	s.ForceQueueFull(2)
	if !s.ServeDispatch() || !s.ServeDispatch() {
		t.Fatal("armed admissions not stolen")
	}
	if s.ServeDispatch() {
		t.Fatal("third admission stolen after arming 2")
	}
	if n := s.Fired(FaultServeQueueFull); n != 2 {
		t.Fatalf("Fired = %d, want 2", n)
	}
}

func TestServeLatencyAdvancesOwnClock(t *testing.T) {
	clk := NewClock()
	s := New()
	s.SetServeLatency(7*time.Millisecond, clk)
	before := clk.Now()
	if s.ServeDispatch() {
		t.Fatal("latency-only set forced queue-full")
	}
	if got := clk.Now().Sub(before); got != 7*time.Millisecond {
		t.Fatalf("serve latency advanced clock by %v, want 7ms", got)
	}
	// The serving-path latency is independent of the solver-side hook.
	if s.FloorplanSolve() {
		t.Fatal("floorplan solve stolen")
	}
	if got := clk.Now().Sub(before); got != 7*time.Millisecond {
		t.Fatalf("solver hook advanced the serve clock: %v", got)
	}
	if n := s.Fired(FaultServeLatency); n != 1 {
		t.Fatalf("Fired(serve-latency) = %d, want 1", n)
	}
}

func TestArmedIncludesServeFaults(t *testing.T) {
	s := New()
	s.ForceQueueFull(1)
	s.SetServeLatency(time.Millisecond, NewClock())
	want := []string{FaultServeLatency, FaultServeQueueFull}
	if got := s.Armed(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Armed = %v, want %v", got, want)
	}
}
