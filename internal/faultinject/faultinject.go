// Package faultinject provides deterministic fault hooks for driving the
// resilience paths of the scheduling pipeline on demand: forcing the next N
// floorplan solves to report infeasible, forcing MILP solves to stop with a
// Limit status, and injecting artificial solver latency on a hand-advanced
// clock. A Set is plugged through milp.Options, floorplan.Options,
// sched.Options/RandomOptions and isk.Options, so a test (or a pasched
// -fault-* flag) can exercise every rung of the sched.Robust degradation
// ladder and every cancellation path without constructing a pathological
// instance.
//
// Every fault is counted, never random: "next 3 solves" means exactly the
// next 3 solves in the solver's deterministic call order, which keeps
// fault-injected runs as reproducible as clean ones. A nil *Set is a valid
// receiver meaning "no faults armed" (the obs idiom), so the hooks are
// called unconditionally from solver hot paths.
package faultinject

import (
	"sort"
	"sync"
	"time"

	"resched/internal/obs"
)

// Clock is a hand-advanced time source for budget.Options.Clock and for
// latency injection: Advance moves time forward explicitly, so deadline
// trips happen at the exact solver call a test arranged, independent of
// machine speed.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// clockEpoch is the fixed origin of every fault-injection clock. Its value
// is arbitrary; fixing it keeps fake-clock runs byte-identical.
var clockEpoch = time.Unix(1_000_000_000, 0)

// NewClock returns a clock frozen at a fixed epoch.
func NewClock() *Clock { return &Clock{now: clockEpoch} }

// Now returns the current fake time; pass the method value as a
// budget.Clock.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (backward moves are ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// Fault names used by Armed and Fired.
const (
	FaultFloorplanInfeasible = "floorplan-infeasible"
	FaultMILPLimit           = "milp-limit"
	FaultSolverLatency       = "solver-latency"
	FaultServeLatency        = "serve-latency"
	FaultServeQueueFull      = "serve-queue-full"
	FaultLateArrival         = "late-arrival"
)

// Set is an armed collection of deterministic faults. The zero value (and
// nil) has nothing armed; arm faults with the Force/Set methods. Safe for
// concurrent use.
type Set struct {
	mu           sync.Mutex
	fpInfeasible int // remaining forced-infeasible floorplan solves; <0 = every solve
	milpLimit    int // remaining forced-Limit MILP solves; <0 = every solve
	queueFull    int // remaining forced queue-full admissions; <0 = every admission
	lateArrival  int // remaining forced-late job arrivals; <0 = every arrival
	lateDelay    int64
	latency      time.Duration
	clock        *Clock
	serveLatency time.Duration
	serveClock   *Clock
	fired        map[string]int
	trace        *obs.Trace
}

// New returns an empty fault set.
func New() *Set { return &Set{} }

// ForceFloorplanInfeasible arms the next n floorplan solves to report
// infeasible (unproven) without searching; n < 0 means every solve.
func (s *Set) ForceFloorplanInfeasible(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fpInfeasible = n
}

// ForceMILPLimit arms the next n MILP solves to stop immediately with a
// Limit status; n < 0 means every solve.
func (s *Set) ForceMILPLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.milpLimit = n
}

// SetTrace routes every subsequent fault firing into tr's flight recorder
// as a "fault.injected" event tagged with the fault name and its running
// count, so a degraded run's event tail shows which rung failures were
// injected rather than organic. A nil trace (the default) records nothing.
func (s *Set) SetTrace(tr *obs.Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trace = tr
}

// SetSolverLatency makes every floorplan and MILP solve advance clk by d,
// simulating a slow solver against budget deadlines on the same clock.
func (s *Set) SetSolverLatency(d time.Duration, clk *Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latency = d
	s.clock = clk
}

// ForceQueueFull arms the next n serving-path admissions to behave as if
// the request queue were full (the 429 load-shed path) without actually
// filling it; n < 0 means every admission. This is the chaos hook for the
// admission-control state machine: a test drives the shed path without
// needing to wedge real workers behind slow solves.
func (s *Set) ForceQueueFull(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queueFull = n
}

// ForceLateArrival arms the next n online job arrivals to land delay time
// units later than their trace says; n < 0 means every arrival. This drives
// the online engine's re-plan paths — a late job invalidates the epoch plan
// that assumed its trace arrival time — deterministically: "next 2 arrivals"
// means exactly the next 2 in the engine's arrival order.
func (s *Set) ForceLateArrival(n int, delay int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lateArrival = n
	s.lateDelay = delay
}

// LateArrival is the hook the online engine consumes once per job arrival:
// it reports the armed delay to add to the arrival time, and false when the
// arrival lands on time. Nil-safe.
func (s *Set) LateArrival() (int64, bool) {
	if s == nil {
		return 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lateArrival == 0 {
		return 0, false
	}
	if s.lateArrival > 0 {
		s.lateArrival--
	}
	s.recordLocked(FaultLateArrival)
	return s.lateDelay, true
}

// SetServeLatency makes every serving-path dispatch advance clk by d before
// the request reaches admission control, simulating a slow ingress against
// per-request budget deadlines on the same clock. It is independent of
// SetSolverLatency so ingress and solver slowness compose.
func (s *Set) SetServeLatency(d time.Duration, clk *Clock) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.serveLatency = d
	s.serveClock = clk
}

// ServeDispatch is the serving-path hook, consumed once per request before
// admission control: it applies armed ingress latency and reports whether
// the admission must be treated as queue-full. Solver-side hooks
// (FloorplanSolve, MILPSolve) stay untouched, so chaos tests exercise the
// serving path without reaching into solver options. Nil-safe.
func (s *Set) ServeDispatch() (forceQueueFull bool) {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serveLatency > 0 && s.serveClock != nil {
		s.serveClock.Advance(s.serveLatency)
		s.recordLocked(FaultServeLatency)
	}
	if s.queueFull == 0 {
		return false
	}
	if s.queueFull > 0 {
		s.queueFull--
	}
	s.recordLocked(FaultServeQueueFull)
	return true
}

// FloorplanSolve is the hook consumed at the top of every floorplan solve.
// It applies armed latency and reports whether the solve must be forced
// infeasible. Nil-safe.
func (s *Set) FloorplanSolve() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLatencyLocked()
	if s.fpInfeasible == 0 {
		return false
	}
	if s.fpInfeasible > 0 {
		s.fpInfeasible--
	}
	s.recordLocked(FaultFloorplanInfeasible)
	return true
}

// MILPSolve is the hook consumed at the top of every MILP solve. It applies
// armed latency and reports whether the solve must stop with Limit status.
// Nil-safe.
func (s *Set) MILPSolve() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyLatencyLocked()
	if s.milpLimit == 0 {
		return false
	}
	if s.milpLimit > 0 {
		s.milpLimit--
	}
	s.recordLocked(FaultMILPLimit)
	return true
}

func (s *Set) applyLatencyLocked() {
	if s.latency > 0 && s.clock != nil {
		s.clock.Advance(s.latency)
		s.recordLocked(FaultSolverLatency)
	}
}

func (s *Set) recordLocked(name string) {
	if s.fired == nil {
		s.fired = make(map[string]int)
	}
	s.fired[name]++
	// The trace's mutex nests strictly inside s.mu here; obs never calls
	// back into faultinject, so the order cannot invert.
	s.trace.Event("fault.injected",
		obs.Str("fault", name), obs.Int("fired", int64(s.fired[name])))
}

// Armed returns the sorted names of the currently armed faults, for obs
// span tags. Nil-safe; empty when nothing is armed.
func (s *Set) Armed() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var names []string
	if s.fpInfeasible != 0 {
		names = append(names, FaultFloorplanInfeasible)
	}
	if s.milpLimit != 0 {
		names = append(names, FaultMILPLimit)
	}
	if s.latency > 0 && s.clock != nil {
		names = append(names, FaultSolverLatency)
	}
	if s.serveLatency > 0 && s.serveClock != nil {
		names = append(names, FaultServeLatency)
	}
	if s.queueFull != 0 {
		names = append(names, FaultServeQueueFull)
	}
	if s.lateArrival != 0 {
		names = append(names, FaultLateArrival)
	}
	sort.Strings(names)
	return names
}

// Fired returns how many times the named fault has actually fired.
func (s *Set) Fired(name string) int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fired[name]
}
