package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/online"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// Session mode exposes the rolling-horizon engine (internal/online) over
// HTTP: a session is one long-lived online.Engine, jobs stream in over
// /session/submit, every submit re-plans the tail from the committed prefix,
// and /session/close finalizes the stitched schedule. Unlike /solve — one
// stateless request per problem — a session accumulates platform state
// across requests, which is exactly what the commit-boundary model is for.
//
//	POST /session/open     create a session            (engine parameters)
//	POST /session/submit   submit a job and re-plan    (returns epoch stats)
//	POST /session/close    finalize and tear down      (returns the run)
//
// Sessions live outside the solve worker pool: each submit re-plans
// synchronously in its handler goroutine, serialized per session (the engine
// is not concurrency-safe), so a slow session never holds a solve worker.
// The engine's budget is the server root budget — a forced drain cancels
// in-flight session re-plans exactly like in-flight solves.

// session is one live rolling-horizon engine plus its serialization lock.
type session struct {
	mu     sync.Mutex
	eng    *online.Engine
	solver string
	arch   string
	jobs   int
}

// SessionOpenRequest is the JSON body of POST /session/open: the engine
// parameters shared by every epoch of the session.
type SessionOpenRequest struct {
	// Solver re-plans every epoch tail (default "pa"; failures degrade to
	// the robust ladder automatically).
	Solver string `json:"solver,omitempty"`
	// Arch names a board preset; empty means the server's default.
	Arch string `json:"arch,omitempty"`
	Seed int64  `json:"seed,omitempty"`
	// Workers is the in-solver parallelism (default 1 on the serving path,
	// as for /solve).
	Workers       int  `json:"workers,omitempty"`
	MaxIterations int  `json:"max_iterations,omitempty"`
	ModuleReuse   bool `json:"module_reuse,omitempty"`
	// DisablePrefetch retimes every epoch to the issue-at-dispatch
	// baseline (see online.Config).
	DisablePrefetch bool `json:"disable_prefetch,omitempty"`
	// EpochNodes caps each epoch re-plan at a node budget; 0 leaves epochs
	// on the server root budget only.
	EpochNodes int64 `json:"epoch_nodes,omitempty"`
	// PolishIterations enables the final PA-R polish pass on close.
	PolishIterations int `json:"polish_iterations,omitempty"`
}

// SessionOpenResponse answers /session/open.
type SessionOpenResponse struct {
	Session string `json:"session"`
	Solver  string `json:"solver"`
	Arch    string `json:"arch"`
}

// SessionSubmitRequest is the JSON body of POST /session/submit: one
// arriving job.
type SessionSubmitRequest struct {
	Session string `json:"session"`
	// Name labels the job in the merged schedule (default "jobN").
	Name string `json:"name,omitempty"`
	// Graph is the job's task graph in the taskgraph JSON schema.
	Graph json.RawMessage `json:"graph"`
	// Arrival is the job's logical arrival instant on the session
	// timeline; instants before the current commit boundary are clamped to
	// it (the platform cannot learn about work in its own past).
	Arrival int64 `json:"arrival,omitempty"`
	// Deadline, when positive, scores the job on close.
	Deadline int64 `json:"deadline,omitempty"`
}

// EpochSummary is the wire view of one online.EpochStats record.
// ReplanTime is deliberately absent: it is wall-clock measurement, and the
// wire contract only carries the deterministic fields.
type EpochSummary struct {
	Commit         int64 `json:"commit"`
	NewJobs        int   `json:"new_jobs"`
	FrozenTasks    int   `json:"frozen_tasks"`
	TailTasks      int   `json:"tail_tasks"`
	Degraded       bool  `json:"degraded,omitempty"`
	Makespan       int64 `json:"makespan"`
	PrefetchIssued int   `json:"prefetch_issued"`
	PrefetchHits   int   `json:"prefetch_hits"`
	PrefetchMisses int   `json:"prefetch_misses"`
	Stall          int64 `json:"stall"`
	StallHidden    int64 `json:"stall_hidden"`
}

// SessionSubmitResponse answers /session/submit with the state of the plan
// after the re-plan the submission triggered.
type SessionSubmitResponse struct {
	Session  string `json:"session"`
	Jobs     int    `json:"jobs"`
	Epochs   int    `json:"epochs"`
	Commit   int64  `json:"commit"`
	Makespan int64  `json:"makespan"`
	// LastEpoch is the epoch this submission triggered (nil when the
	// engine coalesced it into a later boundary).
	LastEpoch *EpochSummary `json:"last_epoch,omitempty"`
}

// SessionCloseRequest is the JSON body of POST /session/close.
type SessionCloseRequest struct {
	Session string `json:"session"`
	// IncludeSchedule asks for the stitched schedule JSON in the response.
	IncludeSchedule bool `json:"include_schedule,omitempty"`
}

// SessionCloseResponse is the finalized run: the online.Result summary.
type SessionCloseResponse struct {
	Session         string          `json:"session"`
	Epochs          []EpochSummary  `json:"epochs"`
	Makespan        int64           `json:"makespan"`
	JobEnds         []int64         `json:"job_ends,omitempty"`
	MissedDeadlines []int           `json:"missed_deadlines,omitempty"`
	LateArrivals    int             `json:"late_arrivals,omitempty"`
	PolishImproved  bool            `json:"polish_improved,omitempty"`
	Schedule        json.RawMessage `json:"schedule,omitempty"`
}

func epochSummary(st online.EpochStats) EpochSummary {
	return EpochSummary{
		Commit:         st.Commit,
		NewJobs:        st.NewJobs,
		FrozenTasks:    st.FrozenTasks,
		TailTasks:      st.TailTasks,
		Degraded:       st.Degraded,
		Makespan:       st.Makespan,
		PrefetchIssued: st.PrefetchIssued,
		PrefetchHits:   st.PrefetchHits,
		PrefetchMisses: st.PrefetchMisses,
		Stall:          st.Stall,
		StallHidden:    st.StallHidden,
	}
}

// handleSessionOpen creates a session: a rolling-horizon engine bound to the
// server root budget, serialized by its own lock.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	var req SessionOpenRequest
	if !s.decodeSessionBody(w, r, &req) {
		return
	}
	if req.Solver == "" {
		req.Solver = "pa"
	}
	if _, err := solve.Get(req.Solver); err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), req.Solver)
		return
	}
	name := req.Arch
	if name == "" {
		name = s.cfg.DefaultArch
	}
	a, err := arch.Preset(name)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), req.Solver)
		return
	}
	workers := req.Workers
	if workers == 0 {
		workers = 1
	}
	eng, err := online.New(online.Config{
		Arch:             a,
		Solver:           req.Solver,
		Workers:          workers,
		Seed:             req.Seed,
		MaxIterations:    req.MaxIterations,
		ModuleReuse:      req.ModuleReuse,
		DisablePrefetch:  req.DisablePrefetch,
		EpochNodes:       req.EpochNodes,
		PolishIterations: req.PolishIterations,
		Budget:           s.root,
		Faults:           s.cfg.Faults,
		Trace:            s.cfg.Trace,
	})
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), req.Solver)
		return
	}

	s.mu.Lock()
	accepting := s.state == stateAccepting
	s.mu.Unlock()
	if !accepting {
		s.reject(w, http.StatusServiceUnavailable, "draining", "request not admitted: draining", req.Solver)
		return
	}
	s.sessMu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.sessMu.Unlock()
		s.reject(w, http.StatusTooManyRequests, "session-limit",
			fmt.Sprintf("request not admitted: %d sessions already open", s.cfg.MaxSessions), req.Solver)
		return
	}
	s.sessSeq++
	id := fmt.Sprintf("s%d", s.sessSeq)
	s.sessions[id] = &session{eng: eng, solver: req.Solver, arch: name}
	s.sessMu.Unlock()

	s.cfg.Trace.Count("serve.session.open", 1)
	writeJSON(w, http.StatusOK, SessionOpenResponse{Session: id, Solver: req.Solver, Arch: name})
}

// handleSessionSubmit admits one job into a session and re-plans
// synchronously: the response carries the epoch the submission triggered.
func (s *Server) handleSessionSubmit(w http.ResponseWriter, r *http.Request) {
	var req SessionSubmitRequest
	if !s.decodeSessionBody(w, r, &req) {
		return
	}
	sess, ok := s.lookupSession(w, req.Session)
	if !ok {
		return
	}
	if len(req.Graph) == 0 {
		s.reject(w, http.StatusBadRequest, "bad-request", "request has no graph", sess.solver)
		return
	}
	g, err := taskgraph.Read(bytes.NewReader(req.Graph))
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), sess.solver)
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	name := req.Name
	if name == "" {
		name = fmt.Sprintf("job%d", sess.jobs)
	}
	job := online.Job{Name: name, Graph: g, Arrival: req.Arrival, Deadline: req.Deadline}
	before := len(sess.eng.Epochs())
	if err := sess.eng.Submit(job); err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), sess.solver)
		return
	}
	sess.jobs++
	if err := sess.eng.Run(); err != nil {
		s.sessionFail(w, sess, err)
		return
	}
	epochs := sess.eng.Epochs()
	resp := SessionSubmitResponse{
		Session: req.Session,
		Jobs:    sess.jobs,
		Epochs:  len(epochs),
		Commit:  sess.eng.Commit(),
	}
	if plan := sess.eng.Plan(); plan != nil {
		resp.Makespan = plan.Makespan
	}
	if len(epochs) > before {
		es := epochSummary(epochs[len(epochs)-1])
		resp.LastEpoch = &es
	}
	s.cfg.Trace.Count("serve.session.submit", 1)
	writeJSON(w, http.StatusOK, resp)
}

// handleSessionClose finalizes a session (draining anything still pending,
// polishing when configured) and removes it.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	var req SessionCloseRequest
	if !s.decodeSessionBody(w, r, &req) {
		return
	}
	s.sessMu.Lock()
	sess := s.sessions[req.Session]
	delete(s.sessions, req.Session)
	s.sessMu.Unlock()
	if sess == nil {
		s.reject(w, http.StatusNotFound, "no-session", "unknown session "+req.Session, "")
		return
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	res, err := sess.eng.Finalize()
	if err != nil {
		s.sessionFail(w, sess, err)
		return
	}
	resp := SessionCloseResponse{
		Session:         req.Session,
		Epochs:          make([]EpochSummary, 0, len(res.Epochs)),
		JobEnds:         res.JobEnds,
		MissedDeadlines: res.MissedDeadlines,
		LateArrivals:    res.LateArrivals,
		PolishImproved:  res.PolishImproved,
	}
	for _, st := range res.Epochs {
		resp.Epochs = append(resp.Epochs, epochSummary(st))
	}
	if res.Schedule != nil {
		resp.Makespan = res.Schedule.Makespan
		if req.IncludeSchedule {
			var buf bytes.Buffer
			if err := res.Schedule.WriteJSON(&buf); err != nil {
				s.reject(w, http.StatusInternalServerError, "internal", err.Error(), sess.solver)
				return
			}
			resp.Schedule = json.RawMessage(buf.Bytes())
		}
	}
	s.cfg.Trace.Count("serve.session.close", 1)
	writeJSON(w, http.StatusOK, resp)
}

// decodeSessionBody is the shared session-endpoint prologue: POST only,
// bounded body, strict JSON.
func (s *Server) decodeSessionBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("decoding request: %v", err), "")
		return false
	}
	return true
}

// lookupSession resolves a session ID, writing the 404 itself on a miss.
func (s *Server) lookupSession(w http.ResponseWriter, id string) (*session, bool) {
	s.sessMu.Lock()
	sess := s.sessions[id]
	s.sessMu.Unlock()
	if sess == nil {
		s.reject(w, http.StatusNotFound, "no-session", "unknown session "+id, "")
		return nil, false
	}
	return sess, true
}

// sessionFail maps an engine error onto the wire: budget exhaustion (the
// root budget tripping during a drain, or an epoch node cap) is 504 like a
// solve timeout, anything else is internal.
func (s *Server) sessionFail(w http.ResponseWriter, sess *session, err error) {
	status, reason := http.StatusInternalServerError, "internal"
	if errors.Is(err, budget.ErrExhausted) {
		status, reason = http.StatusGatewayTimeout, budgetReason(err)
	}
	s.reject(w, status, reason, err.Error(), sess.solver)
}

// sessionCount is the /healthz view.
func (s *Server) sessionCount() int {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	return len(s.sessions)
}
