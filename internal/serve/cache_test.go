package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"resched/internal/obs"
)

// TestCacheHitOnRepeat: the second POST of an identical body must come
// back tagged "cache": "hit" with the same makespan, and /healthz must
// show the counters moving.
func TestCacheHitOnRepeat(t *testing.T) {
	s := newServer(t, Config{Trace: obs.New()})
	h := s.Handler()
	payload := body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 16, 7)})

	var first SolveResponse
	if code := postRec(t, h, payload, &first); code != http.StatusOK {
		t.Fatalf("first solve = %d", code)
	}
	if first.Cache != "miss" {
		t.Fatalf("first solve cache = %q, want miss", first.Cache)
	}
	var second SolveResponse
	if code := postRec(t, h, payload, &second); code != http.StatusOK {
		t.Fatalf("second solve = %d", code)
	}
	if second.Cache != "hit" {
		t.Fatalf("second solve cache = %q, want hit", second.Cache)
	}
	if second.Makespan != first.Makespan {
		t.Fatalf("hit makespan %d != miss makespan %d", second.Makespan, first.Makespan)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var health Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Cache == nil {
		t.Fatal("healthz has no cache block with caching enabled")
	}
	if health.Cache.Hits != 1 || health.Cache.Entries != 1 {
		t.Fatalf("cache health = %+v, want 1 hit / 1 entry", health.Cache)
	}
}

// TestCacheWarmStartAcrossSolvers: solving the same instance with pa and
// then robust must warm-start the ladder from the cached PA result.
func TestCacheWarmStartAcrossSolvers(t *testing.T) {
	s := newServer(t, Config{Trace: obs.New()})
	h := s.Handler()
	graph := graphJSON(t, 16, 7)

	var pa SolveResponse
	if code := postRec(t, h, body(t, map[string]any{"solver": "pa", "graph": graph}), &pa); code != http.StatusOK {
		t.Fatalf("pa solve = %d", code)
	}
	var robust SolveResponse
	if code := postRec(t, h, body(t, map[string]any{"solver": "robust", "graph": graph}), &robust); code != http.StatusOK {
		t.Fatalf("robust solve = %d", code)
	}
	if robust.Cache != "warm" {
		t.Fatalf("robust cache = %q, want warm", robust.Cache)
	}
	st := s.cache.Stats()
	if st.WarmStarts != 1 {
		t.Fatalf("warm starts = %d, want 1", st.WarmStarts)
	}
}

// TestCacheDisabled: a negative CacheEntries must leave responses and
// /healthz free of any cache surface.
func TestCacheDisabled(t *testing.T) {
	s := newServer(t, Config{CacheEntries: -1, Trace: obs.New()})
	h := s.Handler()
	payload := body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 16, 7)})

	for i := 0; i < 2; i++ {
		var resp SolveResponse
		if code := postRec(t, h, payload, &resp); code != http.StatusOK {
			t.Fatalf("solve %d = %d", i, code)
		}
		if resp.Cache != "" {
			t.Fatalf("solve %d cache = %q with caching disabled", i, resp.Cache)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var health Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Cache != nil {
		t.Fatal("healthz reports cache counters with caching disabled")
	}
}
