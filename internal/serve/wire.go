package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"resched/internal/arch"
	"resched/internal/solve"
	"resched/internal/taskgraph"
)

// SolveRequest is the JSON body of POST /solve: one scheduling problem
// instance plus the subset of solve.Options that makes sense over the wire.
// The architecture travels by preset name (arch.PresetNames) rather than by
// value: the daemon owns its hardware model, clients only pick one.
type SolveRequest struct {
	// Solver is a registered solver name (solve.List); empty means "robust",
	// the rung ladder — the right default for a service that must degrade
	// rather than fail.
	Solver string `json:"solver,omitempty"`
	// Arch names a board preset ("zedboard", "microzed", "zc706"); empty
	// means the server's default.
	Arch string `json:"arch,omitempty"`
	// Graph is the task graph in the taskgraph JSON schema.
	Graph json.RawMessage `json:"graph"`

	ModuleReuse   bool  `json:"module_reuse,omitempty"`
	SkipFloorplan bool  `json:"skip_floorplan,omitempty"`
	Seed          int64 `json:"seed,omitempty"`
	// SearchWorkers is PA-R's in-solver parallelism. It defaults to 1 on
	// the serving path — the pool parallelises across requests, and a
	// single request must not commandeer every core.
	SearchWorkers int `json:"search_workers,omitempty"`
	MaxIterations int `json:"max_iterations,omitempty"`
	// TimeBudgetMS is PA-R's wall-clock search budget in milliseconds.
	TimeBudgetMS int64 `json:"time_budget_ms,omitempty"`
	MaxNodes     int   `json:"max_nodes,omitempty"`
	// TimeoutMS is the per-request budget in milliseconds, clamped by the
	// server's MaxBudget; 0 means "the server's MaxBudget".
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IncludeSchedule asks for the full schedule JSON in the response;
	// by default only the summary fields come back.
	IncludeSchedule bool `json:"include_schedule,omitempty"`

	// Decoded instance, populated by decodeRequest so the worker never
	// re-parses the body. Not part of the wire schema.
	graph *taskgraph.Graph
	arch  *arch.Architecture
}

// SolveResponse is the JSON body of a successful solve (HTTP 200), and —
// as the Partial field of ErrorResponse — of the degraded fallback a 504
// carries.
type SolveResponse struct {
	// Solver is the solver that actually ran; when the admission
	// controller shed the request to a cheaper rung this differs from the
	// requested one, Degraded is set and ShedFrom names the original.
	Solver   string `json:"solver"`
	Degraded bool   `json:"degraded,omitempty"`
	ShedFrom string `json:"shed_from,omitempty"`
	// Rung is the degradation-ladder rung that produced the schedule
	// (robust solver only).
	Rung string `json:"rung,omitempty"`

	// Cache reports how the server's schedule cache participated: "hit"
	// (stored result, no solver run), "warm" (a cached neighbor warm-started
	// the solve) or "miss". Omitted when the cache is disabled or the
	// request bypassed it, so pre-cache clients see unchanged bodies.
	Cache string `json:"cache,omitempty"`

	Makespan     int64 `json:"makespan"`
	SchedulingUS int64 `json:"scheduling_us"`
	FloorplanUS  int64 `json:"floorplan_us"`
	Retries      int   `json:"retries"`
	Iterations   int   `json:"iterations"`

	// Schedule is the full schedule JSON when the request asked for it.
	Schedule json.RawMessage `json:"schedule,omitempty"`
}

// ErrorResponse is the JSON body of every non-200 response.
type ErrorResponse struct {
	// Error is the human-readable failure.
	Error string `json:"error"`
	// Reason classifies it for machines: "queue-full", "draining",
	// "deadline passed", "cancelled", "node cap reached", "infeasible",
	// "panic", "bad-request".
	Reason string `json:"reason"`
	// Solver is the solver that was (or would have been) dispatched.
	Solver string `json:"solver,omitempty"`
	// RetryAfterMS mirrors the Retry-After header on 429/503 responses.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Partial carries the guaranteed all-software fallback schedule on a
	// 504: the requested solve did not finish inside its budget, but the
	// client still gets a valid (if conservative) schedule to run, the
	// same bottom rung the robust ladder degrades to.
	Partial *SolveResponse `json:"partial,omitempty"`
}

// decodeRequest parses and validates a wire request into a dispatchable
// instance. The graph is validated on decode (taskgraph.Read semantics), so
// workers never see a malformed instance.
func decodeRequest(body []byte, defaultArch string) (*SolveRequest, *taskgraph.Graph, *arch.Architecture, error) {
	var req SolveRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, nil, nil, fmt.Errorf("decoding request: %w", err)
	}
	if req.Solver == "" {
		req.Solver = "robust"
	}
	if len(req.Graph) == 0 {
		return nil, nil, nil, fmt.Errorf("request has no graph")
	}
	g, err := taskgraph.Read(bytes.NewReader(req.Graph))
	if err != nil {
		return nil, nil, nil, err
	}
	name := req.Arch
	if name == "" {
		name = defaultArch
	}
	a, err := arch.Preset(name)
	if err != nil {
		return nil, nil, nil, err
	}
	return &req, g, a, nil
}

// options assembles the solver options for a request. Budget, Faults,
// Trace and Arena are owned by the dispatch layer and wired there.
func (r *SolveRequest) options() solve.Options {
	workers := r.SearchWorkers
	if workers == 0 {
		workers = 1
	}
	return solve.Options{
		ModuleReuse:   r.ModuleReuse,
		SkipFloorplan: r.SkipFloorplan,
		Seed:          r.Seed,
		Workers:       workers,
		TimeBudget:    time.Duration(r.TimeBudgetMS) * time.Millisecond,
		MaxIterations: r.MaxIterations,
		MaxNodes:      r.MaxNodes,
	}
}

// buildResponse normalizes a solve.Result onto the wire. degraded is the
// admission controller's verdict: it covers both a solver swap (shedFrom
// non-empty) and an in-place budget clamp (robust under pressure).
func buildResponse(req *SolveRequest, ranSolver, shedFrom string, degraded bool, res *solve.Result) (*SolveResponse, error) {
	resp := &SolveResponse{
		Solver:       ranSolver,
		Degraded:     degraded,
		ShedFrom:     shedFrom,
		Cache:        res.Cache,
		Makespan:     res.Makespan,
		SchedulingUS: res.SchedulingTime.Microseconds(),
		FloorplanUS:  res.FloorplanTime.Microseconds(),
		Retries:      res.Retries,
		Iterations:   res.Iterations,
	}
	if res.Ladder != nil {
		resp.Rung = res.Ladder.Rung.String()
	}
	if req.IncludeSchedule && res.Schedule != nil {
		var buf bytes.Buffer
		if err := res.Schedule.WriteJSON(&buf); err != nil {
			return nil, err
		}
		resp.Schedule = json.RawMessage(buf.Bytes())
	}
	return resp, nil
}
