// Package serve is the scheduling-as-a-service tier: a stdlib-only HTTP
// layer over the unified solver engine (internal/solve) built so the engine
// survives hostile traffic — the robustness machinery is the headline, not
// an afterthought.
//
//	POST /solve     solve a (graph, arch, options) instance, JSON in/out
//	GET  /healthz   admission-control state and live counters
//	GET  /metrics   flat metrics JSON            (internal/obs/obshttp)
//	GET  /debug/*   trace, events, summary, pprof (internal/obs/obshttp)
//
// The serving discipline, end to end:
//
//   - Admission control. Requests pass through a bounded queue in front of
//     a fixed worker pool. Occupancy drives a three-level ladder: below
//     DegradeAt the request runs as asked; between DegradeAt and RejectAt
//     it is shed to a cheaper solver rung (exact/is5 → is1 → pa, par → pa,
//     robust keeps its ladder but with clamped search budgets) and the
//     response says so; at RejectAt — or when the queue is hard-full, or
//     when a forced queue-full fault is armed — the request is refused with
//     429 and a Retry-After, never silently dropped. Degrading before
//     rejecting is the same philosophy as sched.Robust, applied at the
//     front door: under pressure every client still gets a schedule,
//     just a cheaper one.
//
//   - Budget ownership. Every dispatched request gets its own
//     *budget.Budget, derived from the server's root budget with
//     min(request timeout, MaxBudget) — the server-side clamp means no
//     client can buy an unbounded solve. The request's HTTP context is
//     bridged one-way into the budget (context.AfterFunc → Budget.Cancel),
//     so a client disconnect or net/http deadline cancels the solve within
//     microseconds; solver layers only ever borrow the budget, the serving
//     tier owns its lifetime. Budget exhaustion surfaces as 504 with a
//     partial-result body: the guaranteed all-software schedule, the same
//     bottom rung the robust ladder lands on.
//
//   - Panic isolation. A panicking solver converts to a 500 plus a
//     "serve.panic" flight-recorder event; the worker, its arena and the
//     daemon survive.
//
//   - Graceful drain. Drain stops admission (late requests get 503),
//     lets queued and in-flight work finish under a drain budget, and
//     cancels whatever outlives it through the root budget — every
//     admitted request gets a response, every worker goroutine is joined.
//
// Workers reuse one sched.Arena each (the PR-4 scratch arenas), so a
// long-lived daemon keeps the allocation diet of the batch pipeline across
// millions of requests. Deterministic fault injection reaches the serving
// path through faultinject.ServeDispatch (ingress latency, forced
// queue-full) without touching solver options, and the whole admission
// machine runs on an injectable clock, so every behaviour above has a
// hand-advanced, repeatable test.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/obs/obshttp"
	"resched/internal/sched"
	"resched/internal/schedcache"
	"resched/internal/solve"
)

// Config tunes the serving tier. The zero value of every field has a
// production-shaped default.
type Config struct {
	// Workers is the solver pool size (default 2). Each worker owns one
	// reusable sched.Arena.
	Workers int
	// QueueDepth bounds the admission queue (default 16).
	QueueDepth int
	// DegradeAt and RejectAt are queue-occupancy fractions: at DegradeAt
	// (default 0.5) requests are shed to cheaper solver rungs, at RejectAt
	// (default 0.9) they are refused with 429.
	DegradeAt float64
	RejectAt  float64
	// DegradedIterations caps the robust ladder's PA-R rung when a robust
	// request is degraded under pressure (default 4).
	DegradedIterations int
	// MaxBudget clamps every per-request budget (default 30s): a request
	// may ask for less, never more.
	MaxBudget time.Duration
	// DrainBudget bounds Drain (default 10s): in-flight work past it is
	// cancelled through the root budget.
	DrainBudget time.Duration
	// RetryAfter is the backoff hint on 429/503 responses (default 1s).
	RetryAfter time.Duration
	// DefaultArch names the board preset used when a request names none
	// (default "zedboard").
	DefaultArch string
	// MaxSessions bounds the concurrently open rolling-horizon sessions
	// (default 8): each holds a live online.Engine and its growing global
	// schedule, so the bound is a memory guard, not a throughput knob.
	MaxSessions int
	// CacheEntries bounds the server-owned schedule cache (default 256
	// entries); a negative value disables caching entirely. The cache is
	// wired per-server via schedcache.Wrap in the dispatch path — the
	// server must never also Install a process-global cache, or requests
	// would consult two.
	CacheEntries int

	// Clock is the budget time source (nil = wall clock); tests inject a
	// faultinject.Clock so deadline behaviour is hand-advanced.
	Clock budget.Clock
	// Sleep is the drain poll wait (nil = time.Sleep); tests advance the
	// fake clock here to make drain timeouts deterministic.
	Sleep func(time.Duration)
	// Faults, when armed, drives deterministic failure injection on the
	// serving path (ServeDispatch) and in every dispatched solver.
	Faults *faultinject.Set
	// Trace records the serve.* span/metric/event taxonomy and feeds the
	// /metrics and /debug surfaces. Nil disables recording (and leaves
	// the debug surface serving empty documents).
	Trace *obs.Trace
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DegradeAt <= 0 {
		c.DegradeAt = 0.5
	}
	if c.RejectAt <= 0 {
		c.RejectAt = 0.9
	}
	if c.DegradedIterations <= 0 {
		c.DegradedIterations = 4
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.DrainBudget <= 0 {
		c.DrainBudget = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultArch == "" {
		c.DefaultArch = "zedboard"
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 8
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Admission-control states. Transitions are one-way:
// accepting → draining → stopped.
const (
	stateAccepting = iota
	stateDraining
	stateStopped
)

// stateName maps the admission state onto /healthz.
func stateName(s int) string {
	switch s {
	case stateAccepting:
		return "accepting"
	case stateDraining:
		return "draining"
	default:
		return "stopped"
	}
}

// shedTo maps each solver to the next-cheaper rung of the serve-side
// degradation ladder. Solvers not listed (pa, robust) have no cheaper
// registered solver: pa is the cheapest search rung already, and robust
// degrades internally (its search budgets are clamped instead).
var shedTo = map[string]string{
	"exact": "is1",
	"is5":   "is1",
	"is1":   "pa",
	"par":   "pa",
}

// maxBodyBytes bounds a request body; a graph big enough to exceed it is
// far beyond anything the solvers accept.
const maxBodyBytes = 16 << 20

// drainPoll is the drain loop's wait between progress checks.
const drainPoll = time.Millisecond

// job is one admitted request travelling from the handler through the
// queue to a worker and back.
type job struct {
	req      *SolveRequest
	ctx      context.Context
	solver   string // solver to dispatch (post-degradation)
	shedFrom string // original solver when admission swapped it
	degraded bool
	enqueued time.Time

	// Outcome, written by the worker before done is closed.
	status int
	body   any
	done   chan struct{}
}

// Server is the scheduling service: admission control, the worker pool and
// the drain machinery. Construct with New; serve via Handler; stop with
// Drain (or Close).
type Server struct {
	cfg              Config
	degradeThreshold int
	rejectThreshold  int

	mu    sync.Mutex // guards state and queue admission vs. close
	state int
	queue chan *job

	// Rolling-horizon sessions (session.go). sessMu guards the registry;
	// each session serializes its own engine.
	sessMu   sync.Mutex
	sessions map[string]*session
	sessSeq  int64

	root *budget.Budget // ancestor of every request budget; Cancel = abort all

	// cache is the server-owned schedule cache (nil when disabled): exact
	// request repeats skip the solver, near-misses warm-start it.
	cache *schedcache.Cache

	wg      sync.WaitGroup
	exited  atomic.Int64 // workers that have left their loop
	stopped chan struct{}

	inflight  atomic.Int64
	accepted  atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
	refused   atomic.Int64
	degraded  atomic.Int64
	panics    atomic.Int64
}

// New builds the server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *job, cfg.QueueDepth),
		root:     budget.New(budget.Options{Clock: cfg.Clock, Trace: cfg.Trace}),
		stopped:  make(chan struct{}),
		sessions: make(map[string]*session),
	}
	if cfg.CacheEntries > 0 {
		s.cache = schedcache.New(cfg.CacheEntries)
	}
	s.degradeThreshold = threshold(cfg.DegradeAt, cfg.QueueDepth)
	s.rejectThreshold = threshold(cfg.RejectAt, cfg.QueueDepth)
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		// Workers live for the server's lifetime and are joined by Drain,
		// which closes the queue and waits for every loop to exit.
		//reschedvet:ignore goleak joined by (*Server).Drain, not by New's return
		go s.worker(sched.NewArena())
	}
	return s
}

// threshold converts an occupancy fraction into a queue-length trigger,
// clamped to [1, depth] so a tiny queue still has a working ladder.
func threshold(frac float64, depth int) int {
	t := int(frac * float64(depth))
	if t < 1 {
		t = 1
	}
	if t > depth {
		t = depth
	}
	return t
}

// Handler returns the service mux: /solve and /healthz from this package,
// /metrics and /debug/* from the obshttp debug surface, all on one mux so
// the daemon exposes a single port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/solve", s.handleSolve)
	mux.HandleFunc("/session/open", s.handleSessionOpen)
	mux.HandleFunc("/session/submit", s.handleSessionSubmit)
	mux.HandleFunc("/session/close", s.handleSessionClose)
	mux.HandleFunc("/healthz", s.handleHealth)
	debug := obshttp.Handler(s.cfg.Trace)
	mux.Handle("/metrics", debug)
	mux.Handle("/debug/", debug)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "resched scheduling service\n\n"+
			"POST /solve     solve a task-graph instance (JSON)\n"+
			"POST /session/open    open a rolling-horizon session\n"+
			"POST /session/submit  submit a job and re-plan the tail\n"+
			"POST /session/close   finalize the stitched schedule\n"+
			"GET  /healthz   admission state and counters\n"+
			"GET  /metrics   flat metrics JSON\n"+
			"GET  /debug/    trace, events, summary, pprof\n")
	})
	return mux
}

// Health is the /healthz document.
type Health struct {
	State      string `json:"state"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	InFlight   int64  `json:"in_flight"`
	Accepted   int64  `json:"accepted"`
	Completed  int64  `json:"completed"`
	Shed       int64  `json:"shed"`
	Refused    int64  `json:"refused_draining"`
	Degraded   int64  `json:"degraded"`
	Panics     int64  `json:"panics"`
	// Sessions counts the open rolling-horizon sessions.
	Sessions int `json:"sessions"`
	// Cache reports the schedule-cache counters; omitted when disabled.
	Cache *CacheHealth `json:"cache,omitempty"`
}

// CacheHealth is the /healthz view of the schedule cache.
type CacheHealth struct {
	Entries    int   `json:"entries"`
	Hits       int64 `json:"hits"`
	Misses     int64 `json:"misses"`
	WarmStarts int64 `json:"warm_starts"`
	Evictions  int64 `json:"evictions"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	state, queued := s.state, len(s.queue)
	s.mu.Unlock()
	var cacheHealth *CacheHealth
	if s.cache != nil {
		st := s.cache.Stats()
		cacheHealth = &CacheHealth{
			Entries:    st.Entries,
			Hits:       st.Hits,
			Misses:     st.Misses,
			WarmStarts: st.WarmStarts,
			Evictions:  st.Evictions,
		}
	}
	writeJSON(w, http.StatusOK, Health{
		State:      stateName(state),
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		Queued:     queued,
		InFlight:   s.inflight.Load(),
		Accepted:   s.accepted.Load(),
		Completed:  s.completed.Load(),
		Shed:       s.shed.Load(),
		Refused:    s.refused.Load(),
		Degraded:   s.degraded.Load(),
		Panics:     s.panics.Load(),
		Sessions:   s.sessionCount(),
		Cache:      cacheHealth,
	})
}

// handleSolve is the admission path: fault hook, decode, the shed ladder,
// enqueue, then wait for the worker's verdict. The handler goroutine is the
// only writer of the HTTP response; workers communicate through the job.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// The serving-path fault hook runs before admission so chaos tests
	// exercise ingress latency and forced queue-full without touching
	// solver options.
	forceFull := s.cfg.Faults.ServeDispatch()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", fmt.Sprintf("reading body: %v", err), "")
		return
	}
	req, g, a, err := decodeRequest(body, s.cfg.DefaultArch)
	if err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), "")
		return
	}
	if _, err := solve.Get(req.Solver); err != nil {
		s.reject(w, http.StatusBadRequest, "bad-request", err.Error(), req.Solver)
		return
	}

	j := &job{req: req, ctx: r.Context(), solver: req.Solver, done: make(chan struct{})}
	j.req.graph, j.req.arch = g, a
	if status, reason := s.admit(j, forceFull); status != 0 {
		s.reject(w, status, reason, "request not admitted: "+reason, req.Solver)
		return
	}
	<-j.done
	writeJSON(w, j.status, j.body)
	s.cfg.Trace.Count("serve.status."+strconv.Itoa(j.status), 1)
}

// admit runs the admission ladder under the state lock: refuse while
// draining, shed at the reject threshold (or on a forced queue-full fault,
// or a hard-full queue), degrade at the degrade threshold, else enqueue.
func (s *Server) admit(j *job, forceFull bool) (status int, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != stateAccepting {
		s.refused.Add(1)
		s.cfg.Trace.Count("serve.refused_draining", 1)
		return http.StatusServiceUnavailable, "draining"
	}
	occ := len(s.queue)
	if forceFull || occ >= s.rejectThreshold {
		s.shed.Add(1)
		s.cfg.Trace.Count("serve.shed", 1)
		s.cfg.Trace.Event("serve.shed",
			obs.Str("solver", j.solver), obs.Int("queued", int64(occ)),
			obs.Bool("forced", forceFull))
		return http.StatusTooManyRequests, "queue-full"
	}
	if occ >= s.degradeThreshold {
		s.degrade(j)
	}
	j.enqueued = time.Now()
	select {
	case s.queue <- j:
		s.accepted.Add(1)
		s.cfg.Trace.Count("serve.accepted", 1)
		return 0, ""
	default:
		// The reject threshold normally fires first; this is the backstop
		// for thresholds tuned to the hard limit.
		s.shed.Add(1)
		s.cfg.Trace.Count("serve.shed", 1)
		return http.StatusTooManyRequests, "queue-full"
	}
}

// degrade sheds the job one rung down the serve ladder: cheaper registered
// solver where one exists, clamped search budgets for the robust ladder.
// The cheapest rung (pa) passes through untouched.
func (s *Server) degrade(j *job) {
	switch {
	case shedTo[j.solver] != "":
		j.shedFrom, j.solver = j.solver, shedTo[j.solver]
		j.degraded = true
	case j.solver == "robust":
		if j.req.MaxIterations == 0 || j.req.MaxIterations > s.cfg.DegradedIterations {
			j.req.MaxIterations = s.cfg.DegradedIterations
		}
		j.req.TimeBudgetMS = 0
		j.degraded = true
	default:
		return
	}
	s.degraded.Add(1)
	s.cfg.Trace.Count("serve.degraded", 1)
	s.cfg.Trace.Event("serve.degraded",
		obs.Str("from", firstNonEmpty(j.shedFrom, j.solver)), obs.Str("to", j.solver))
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}

// reject writes an admission-path error response (the worker never saw the
// request). 429 and 503 carry Retry-After, the explicit load-shed contract.
func (s *Server) reject(w http.ResponseWriter, status int, reason, msg, solver string) {
	resp := ErrorResponse{Error: msg, Reason: reason, Solver: solver}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		resp.RetryAfterMS = s.cfg.RetryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(int64(s.cfg.RetryAfter.Seconds()+0.5), 10))
	}
	writeJSON(w, status, resp)
	s.cfg.Trace.Count("serve.status."+strconv.Itoa(status), 1)
}

// worker is one pool goroutine: it owns a reusable scheduling arena and
// drains the queue until Drain closes it.
func (s *Server) worker(arena *sched.Arena) {
	defer s.wg.Done()
	defer s.exited.Add(1)
	for j := range s.queue {
		s.inflight.Add(1)
		s.dispatch(j, arena)
		s.inflight.Add(-1)
		s.completed.Add(1)
		close(j.done)
	}
}

// dispatch solves one admitted job. It never panics (solver panics are
// contained) and always leaves a response on the job.
func (s *Server) dispatch(j *job, arena *sched.Arena) {
	tr := s.cfg.Trace
	outcome := "ok"
	sp := tr.StartRoot("serve.request", obs.Str("solver", j.solver))
	defer func() { sp.End(obs.Str("outcome", outcome)) }()
	tr.Observe("serve.queue_wait_us", float64(time.Since(j.enqueued).Nanoseconds())/1e3)
	begin := time.Now()

	// The request budget: a child of the server root (so drain can cancel
	// every in-flight solve at once), clamped to MaxBudget, bridged from
	// the request context so a client disconnect cancels the solve.
	bud := s.requestBudget(j.req.TimeoutMS)
	defer bud.Cancel()
	stop := context.AfterFunc(j.ctx, bud.Cancel)
	defer stop()

	opts := j.req.options()
	opts.Arena = arena
	opts.Budget = bud
	opts.Faults = s.cfg.Faults
	opts.Trace = tr

	res, err := s.safeSolve(j, &solve.Request{Graph: j.req.graph, Arch: j.req.arch, Options: opts})
	tr.Observe("serve.request_us", float64(time.Since(begin).Nanoseconds())/1e3)
	if err != nil {
		outcome = s.fail(j, err)
		return
	}
	resp, err := buildResponse(j.req, j.solver, j.shedFrom, j.degraded, res)
	if err != nil {
		outcome = s.fail(j, err)
		return
	}
	j.status, j.body = http.StatusOK, resp
}

// requestBudget derives the per-request budget: min(request timeout,
// MaxBudget) on the server clock, as a child of the root so cancellation
// composes. The caller owns the child and must Cancel it.
func (s *Server) requestBudget(timeoutMS int64) *budget.Budget {
	d := s.cfg.MaxBudget
	if t := time.Duration(timeoutMS) * time.Millisecond; t > 0 && t < d {
		d = t
	}
	return s.root.WithTimeout(d)
}

// errPanicked marks a contained solver panic.
type errPanicked struct{ val any }

func (e *errPanicked) Error() string { return fmt.Sprintf("solver panicked: %v", e.val) }

// safeSolve runs the solver with panic containment: a panicking solver is
// converted into an error (and a flight-recorder event), never a dead
// worker or daemon.
func (s *Server) safeSolve(j *job, req *solve.Request) (res *solve.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.cfg.Trace.Count("serve.panics", 1)
			s.cfg.Trace.Event("serve.panic",
				obs.Str("solver", j.solver), obs.Str("value", fmt.Sprint(p)))
			err = &errPanicked{val: p}
			res = nil
		}
	}()
	solver, err := solve.Get(j.solver)
	if err != nil {
		return nil, err
	}
	// The cache decorates the solver per request: exact repeats return the
	// stored result, near-misses warm-start the solve. Wrap is a no-op on a
	// nil cache, and uncacheable requests (armed faults, wall-clock search
	// budgets) pass through inside the decorator.
	return schedcache.Wrap(solver, s.cache).Solve(req)
}

// fail maps a dispatch error onto the wire: status, machine reason, and —
// for budget exhaustion — the all-software partial result. Returns the
// span outcome tag.
func (s *Server) fail(j *job, err error) (outcome string) {
	resp := ErrorResponse{Error: err.Error(), Solver: j.solver}
	var pe *errPanicked
	switch {
	case errors.Is(err, budget.ErrExhausted):
		j.status = http.StatusGatewayTimeout
		resp.Reason = budgetReason(err)
		resp.Partial = s.partialResult(j)
		outcome = "budget"
	case errors.Is(err, sched.ErrFloorplanInfeasible),
		errors.Is(err, sched.ErrNoSoftwareFallback):
		j.status = http.StatusUnprocessableEntity
		resp.Reason = "infeasible"
		outcome = "infeasible"
	case errors.As(err, &pe):
		j.status = http.StatusInternalServerError
		resp.Reason = "panic"
		outcome = "panic"
	default:
		j.status = http.StatusInternalServerError
		resp.Reason = "internal"
		outcome = "error"
	}
	j.body = resp
	return outcome
}

// budgetReason extracts the specific exhaustion reason from a budget error
// chain.
func budgetReason(err error) string {
	var be *budget.Error
	if errors.As(err, &be) {
		return be.Reason.String()
	}
	return "exhausted"
}

// partialResult builds the 504 partial-result body: the guaranteed
// all-software list schedule, which needs no search, no fabric and no
// budget — the serving tier's own bottom rung. Nil when even that is
// impossible (a graph violating §III's software-implementation assumption).
func (s *Server) partialResult(j *job) *SolveResponse {
	sch, err := sched.SoftwareOnlySchedule(j.req.graph, j.req.arch)
	if err != nil {
		return nil
	}
	return &SolveResponse{
		Solver:   j.solver,
		Degraded: true,
		ShedFrom: firstNonEmpty(j.shedFrom, j.solver),
		Rung:     sched.SoftwareOnly.String(),
		Makespan: sch.Makespan,
	}
}

// writeJSON writes one JSON response. An encode error means the client went
// away; the headers are gone, so there is nothing left to report.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return
	}
}

// DrainReport summarises a drain.
type DrainReport struct {
	// Queued and InFlight count the work outstanding when the drain began.
	Queued   int
	InFlight int64
	// Forced reports that the drain budget expired and the remaining
	// in-flight solves were cancelled through the root budget (they still
	// produced 504 responses; nothing was dropped).
	Forced bool
}

// Drain executes the graceful-shutdown state machine: stop admitting
// (late requests are refused with 503), let queued and in-flight requests
// finish under DrainBudget, cancel stragglers through the root budget, and
// join every worker. Idempotent; concurrent callers block until the first
// drain completes.
func (s *Server) Drain() DrainReport {
	s.mu.Lock()
	if s.state != stateAccepting {
		s.mu.Unlock()
		<-s.stopped
		return DrainReport{}
	}
	s.state = stateDraining
	rep := DrainReport{Queued: len(s.queue), InFlight: s.inflight.Load()}
	// Closing under the lock is safe: admission enqueues under the same
	// lock and the accepting check above now fails, so no send can race
	// the close. Workers drain what is already queued, then exit.
	close(s.queue)
	s.mu.Unlock()

	tr := s.cfg.Trace
	tr.Event("serve.drain_begin",
		obs.Int("queued", int64(rep.Queued)), obs.Int("in_flight", rep.InFlight))
	dbud := budget.New(budget.Options{Timeout: s.cfg.DrainBudget, Clock: s.cfg.Clock})
	for s.exited.Load() < int64(s.cfg.Workers) {
		if !rep.Forced && dbud.Check() != nil {
			// Out of drain budget: trip every in-flight request budget.
			// Solvers poll their budgets (the budgetloop analyzer's
			// invariant), so each in-flight solve returns within
			// microseconds of search and answers 504.
			s.root.Cancel()
			rep.Forced = true
			tr.Event("serve.drain_forced", obs.Int("in_flight", s.inflight.Load()))
		}
		s.cfg.Sleep(drainPoll)
	}
	s.wg.Wait()

	s.mu.Lock()
	s.state = stateStopped
	s.mu.Unlock()
	tr.Event("serve.drain_end",
		obs.Int("completed", s.completed.Load()), obs.Bool("forced", rep.Forced))
	close(s.stopped)
	return rep
}

// Close drains the server; it exists so callers can `defer srv.Close()`.
func (s *Server) Close() error {
	s.Drain()
	return nil
}
