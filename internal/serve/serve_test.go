package serve

// The robustness matrix: every serving-tier failure path exercised
// deterministically — injected clocks move time, faultinject forces the
// shed path, and two purpose-built registry solvers (test-block,
// test-panic) put the worker pool into the exact states the admission and
// drain machinery must survive. No test here sleeps to "wait for load";
// blocking solvers signal when they hold a worker, and drain timeouts run
// on a hand-advanced clock.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/solve"
)

// blockControl steers the test-block solver for one test at a time.
type blockControl struct {
	started chan struct{} // one signal per solve that has captured a worker
	release chan struct{} // closed to let captured solves finish
}

var blockCtl atomic.Pointer[blockControl]

// arm installs a fresh control and returns it.
func arm() *blockControl {
	ctl := &blockControl{started: make(chan struct{}, 16), release: make(chan struct{})}
	blockCtl.Store(ctl)
	return ctl
}

type stubSolver struct {
	name string
	fn   func(*solve.Request) (*solve.Result, error)
}

func (s *stubSolver) Name() string                                  { return s.name }
func (s *stubSolver) Solve(r *solve.Request) (*solve.Result, error) { return s.fn(r) }

var registerOnce sync.Once

// registerTestSolvers adds the two adversarial solvers the matrix needs:
// test-block holds a worker until released (or until its budget cancels —
// the budgetloop discipline real solvers follow), test-panic dies outright.
func registerTestSolvers() {
	registerOnce.Do(func() {
		solve.Register(&stubSolver{name: "test-block", fn: func(r *solve.Request) (*solve.Result, error) {
			ctl := blockCtl.Load()
			if ctl == nil {
				return nil, fmt.Errorf("test-block: no control armed")
			}
			ctl.started <- struct{}{}
			for {
				select {
				case <-ctl.release:
					sch, err := sched.SoftwareOnlySchedule(r.Graph, r.Arch)
					if err != nil {
						return nil, err
					}
					return &solve.Result{Schedule: sch, Makespan: sch.Makespan}, nil
				default:
				}
				if r.Options.Budget.Cancelled() {
					return nil, fmt.Errorf("test-block: %w", budget.ErrCancelled)
				}
				time.Sleep(50 * time.Microsecond)
			}
		}})
		solve.Register(&stubSolver{name: "test-panic", fn: func(r *solve.Request) (*solve.Result, error) {
			panic("deliberate test-panic")
		}})
	})
}

// graphJSON returns a seeded benchgen graph as wire JSON.
func graphJSON(t *testing.T, tasks int, seed int64) json.RawMessage {
	t.Helper()
	g, err := benchgen.Generate(benchgen.Config{Tasks: tasks, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// body marshals a wire request.
func body(t *testing.T, req map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postRec drives the handler directly with a recorder (no network, no
// real-server goroutines) and decodes the response into out.
func postRec(t *testing.T, h http.Handler, payload []byte, out any) int {
	t.Helper()
	return postRecCtx(t, h, payload, out, context.Background())
}

func postRecCtx(t *testing.T, h http.Handler, payload []byte, out any, ctx context.Context) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(payload)).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", rec.Body.String(), err)
		}
	}
	return rec.Code
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	registerTestSolvers()
	s := New(cfg)
	t.Cleanup(func() { s.Drain() })
	return s
}

func TestSolveHappyPath(t *testing.T) {
	s := newServer(t, Config{Trace: obs.New()})
	h := s.Handler()
	payload := body(t, map[string]any{
		"solver": "pa", "graph": graphJSON(t, 16, 7), "include_schedule": true,
	})
	var resp SolveResponse
	if code := postRec(t, h, payload, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Solver != "pa" || resp.Degraded || resp.Makespan <= 0 {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if len(resp.Schedule) == 0 {
		t.Fatal("include_schedule did not return the schedule")
	}
	// The same request is bit-deterministic across dispatches (arena reuse
	// on the worker must not bleed state between requests).
	var again SolveResponse
	if code := postRec(t, h, payload, &again); code != http.StatusOK {
		t.Fatalf("second status %d", code)
	}
	if again.Makespan != resp.Makespan || !bytes.Equal(again.Schedule, resp.Schedule) {
		t.Fatal("repeated request diverged: arena state leaked between requests")
	}

	var health Health
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.State != "accepting" || health.Accepted != 2 || health.Completed != 2 {
		t.Fatalf("healthz: %+v", health)
	}
}

func TestBadRequestsAreRejectedAtAdmission(t *testing.T) {
	s := newServer(t, Config{})
	h := s.Handler()
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty body", []byte("")},
		{"no graph", body(t, map[string]any{"solver": "pa"})},
		{"unknown field", []byte(`{"solver":"pa","graph":{},"bogus":1}`)},
		{"unknown solver", body(t, map[string]any{"solver": "nope", "graph": graphJSON(t, 8, 1)})},
		{"unknown arch", body(t, map[string]any{"arch": "nope", "graph": graphJSON(t, 8, 1)})},
		{"malformed graph", []byte(`{"graph":{"tasks":"x"}}`)},
	}
	for _, tc := range cases {
		var er ErrorResponse
		if code := postRec(t, h, tc.payload, &er); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if er.Reason != "bad-request" {
			t.Errorf("%s: reason %q", tc.name, er.Reason)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/solve", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /solve: status %d", rec.Code)
	}
}

// TestDeadlineBudget504 is the deadline-propagation row: a 5ms request
// budget on a hand-advanced clock, a solver whose floorplan step injects
// 10ms of latency and one forced-infeasible retry. The budget check at the
// retry boundary trips ErrDeadline mid-solve, and the client gets a 504
// whose body still carries a valid all-software schedule.
func TestDeadlineBudget504(t *testing.T) {
	fc := faultinject.NewClock()
	faults := faultinject.New()
	faults.SetSolverLatency(10*time.Millisecond, fc)
	faults.ForceFloorplanInfeasible(1)
	s := newServer(t, Config{Clock: fc.Now, Faults: faults, Trace: obs.New()})

	payload := body(t, map[string]any{
		"solver": "pa", "graph": graphJSON(t, 16, 7), "timeout_ms": 5,
	})
	var er ErrorResponse
	if code := postRec(t, s.Handler(), payload, &er); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if er.Reason != "deadline passed" {
		t.Fatalf("reason %q, want \"deadline passed\"", er.Reason)
	}
	if er.Partial == nil || er.Partial.Makespan <= 0 || er.Partial.Rung != sched.SoftwareOnly.String() {
		t.Fatalf("504 must carry the all-software partial result, got %+v", er.Partial)
	}
}

// TestMaxBudgetClampsRequests: a client asking for an hour still runs under
// the server's MaxBudget. Same latency trap as above, but the request asks
// for a huge timeout and the 5ms server clamp is what trips.
func TestMaxBudgetClampsRequests(t *testing.T) {
	fc := faultinject.NewClock()
	faults := faultinject.New()
	faults.SetSolverLatency(10*time.Millisecond, fc)
	faults.ForceFloorplanInfeasible(1)
	s := newServer(t, Config{Clock: fc.Now, Faults: faults, MaxBudget: 5 * time.Millisecond})

	payload := body(t, map[string]any{
		"solver": "pa", "graph": graphJSON(t, 16, 7), "timeout_ms": 3_600_000,
	})
	var er ErrorResponse
	if code := postRec(t, s.Handler(), payload, &er); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 via server clamp", code)
	}
	if er.Reason != "deadline passed" {
		t.Fatalf("reason %q", er.Reason)
	}
}

// TestClientCancelPropagates is the disconnect row: the request context is
// already cancelled, context.AfterFunc trips the request budget, and the
// in-flight solver (which polls its budget, like every real solver) unwinds
// into a 504/cancelled with the partial result attached.
func TestClientCancelPropagates(t *testing.T) {
	s := newServer(t, Config{})
	arm() // release stays open: the cancelled budget is the solver's only exit

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	payload := body(t, map[string]any{"solver": "test-block", "graph": graphJSON(t, 8, 3)})
	var er ErrorResponse
	if code := postRecCtx(t, s.Handler(), payload, &er, ctx); code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", code)
	}
	if er.Reason != "cancelled" {
		t.Fatalf("reason %q, want \"cancelled\"", er.Reason)
	}
	if er.Partial == nil || er.Partial.Makespan <= 0 {
		t.Fatalf("cancelled request must still carry the partial result, got %+v", er.Partial)
	}
}

// TestQueueFullFault429 is the load-shed row driven by the chaos hook: a
// forced queue-full admission sheds with 429 + Retry-After while the very
// next request sails through.
func TestQueueFullFault429(t *testing.T) {
	faults := faultinject.New()
	faults.ForceQueueFull(1)
	s := newServer(t, Config{Faults: faults, RetryAfter: 2 * time.Second, Trace: obs.New()})
	h := s.Handler()

	payload := body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 12, 5)})
	req := httptest.NewRequest(http.MethodPost, "/solve", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After %q, want \"2\"", got)
	}
	var er ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Reason != "queue-full" || er.RetryAfterMS != 2000 {
		t.Fatalf("shed body: %+v", er)
	}
	if faults.Fired(faultinject.FaultServeQueueFull) != 1 {
		t.Fatal("fault did not fire")
	}

	var resp SolveResponse
	if code := postRec(t, h, payload, &resp); code != http.StatusOK {
		t.Fatalf("post-shed status %d", code)
	}
	if s.shed.Load() != 1 || s.accepted.Load() != 1 {
		t.Fatalf("counters: shed=%d accepted=%d", s.shed.Load(), s.accepted.Load())
	}
}

// TestPressureDegradesThenSheds is the admission-ladder row under real
// queue pressure: one worker wedged by test-block, the queue filled to the
// degrade threshold, then past the reject threshold. Requests admitted
// above the degrade line run one rung cheaper (is5 → is1) and say so;
// requests above the reject line get 429.
func TestPressureDegradesThenSheds(t *testing.T) {
	s := newServer(t, Config{
		Workers: 1, QueueDepth: 4, DegradeAt: 0.5, RejectAt: 1.0, Trace: obs.New(),
	})
	h := s.Handler()
	ctl := arm()

	// Wedge the single worker.
	blockPayload := body(t, map[string]any{"solver": "test-block", "graph": graphJSON(t, 8, 2)})
	results := make(chan int, 8)
	var wg sync.WaitGroup
	launch := func(payload []byte, resp any) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results <- postRec(t, h, payload, resp)
		}()
	}
	launch(blockPayload, nil)
	<-ctl.started // the worker is now held

	// Two requests below the degrade threshold (admitted at occupancy 0
	// and 1; the wedged blocker already counts as accepted #1).
	is5 := body(t, map[string]any{"solver": "is5", "graph": graphJSON(t, 10, 4)})
	var b, c SolveResponse
	launch(is5, &b)
	waitCounter(t, &s.accepted, 2)
	launch(is5, &c)
	waitCounter(t, &s.accepted, 3)

	// Occupancy 2 ≥ degrade threshold: these two are shed one rung down.
	var d, e SolveResponse
	launch(is5, &d)
	waitCounter(t, &s.accepted, 4)
	launch(is5, &e)
	waitCounter(t, &s.accepted, 5)

	// Occupancy 4 ≥ reject threshold: refused outright, synchronously.
	var er ErrorResponse
	if code := postRec(t, h, is5, &er); code != http.StatusTooManyRequests {
		t.Fatalf("over-threshold status %d, want 429", code)
	}
	if er.Reason != "queue-full" {
		t.Fatalf("reason %q", er.Reason)
	}

	close(ctl.release)
	wg.Wait()
	close(results)
	for code := range results {
		if code != http.StatusOK {
			t.Fatalf("an admitted request answered %d", code)
		}
	}
	for name, r := range map[string]*SolveResponse{"b": &b, "c": &c} {
		if r.Degraded || r.Solver != "is5" {
			t.Errorf("%s admitted below the degrade line but ran %q degraded=%v", name, r.Solver, r.Degraded)
		}
	}
	for name, r := range map[string]*SolveResponse{"d": &d, "e": &e} {
		if !r.Degraded || r.Solver != "is1" || r.ShedFrom != "is5" {
			t.Errorf("%s should have been shed is5→is1, got %+v", name, r)
		}
	}
	if s.degraded.Load() != 2 || s.shed.Load() != 1 {
		t.Fatalf("counters: degraded=%d shed=%d", s.degraded.Load(), s.shed.Load())
	}
}

// waitCounter spins until an atomic counter reaches want; progress is
// guaranteed (the handler goroutines only need scheduler time), so this is
// a join, not a timing assumption.
func waitCounter(t *testing.T, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Load() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d, want %d", c.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestDegradeLadderMapping pins the whole shed ladder, including the
// robust in-place clamp that has no cheaper registered solver to move to.
func TestDegradeLadderMapping(t *testing.T) {
	s := newServer(t, Config{DegradedIterations: 4})
	cases := []struct {
		from, to string
	}{
		{"exact", "is1"}, {"is5", "is1"}, {"is1", "pa"}, {"par", "pa"},
	}
	for _, tc := range cases {
		j := &job{solver: tc.from, req: &SolveRequest{}}
		s.degrade(j)
		if j.solver != tc.to || j.shedFrom != tc.from || !j.degraded {
			t.Errorf("degrade(%s) = %s (shedFrom %s, degraded %v), want %s",
				tc.from, j.solver, j.shedFrom, j.degraded, tc.to)
		}
	}
	j := &job{solver: "robust", req: &SolveRequest{MaxIterations: 100, TimeBudgetMS: 5000}}
	s.degrade(j)
	if j.solver != "robust" || !j.degraded || j.req.MaxIterations != 4 || j.req.TimeBudgetMS != 0 {
		t.Errorf("robust clamp: %+v", j.req)
	}
	pa := &job{solver: "pa", req: &SolveRequest{}}
	s.degrade(pa)
	if pa.degraded {
		t.Error("pa is the cheapest rung and must pass through undegraded")
	}
}

// TestPanicIsolation: a panicking solver answers 500 and the daemon keeps
// serving on the same worker pool.
func TestPanicIsolation(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Trace: obs.New()})
	h := s.Handler()
	var er ErrorResponse
	payload := body(t, map[string]any{"solver": "test-panic", "graph": graphJSON(t, 8, 9)})
	if code := postRec(t, h, payload, &er); code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if er.Reason != "panic" || !strings.Contains(er.Error, "deliberate test-panic") {
		t.Fatalf("panic body: %+v", er)
	}
	// The single worker survived; a normal request still completes on it.
	var resp SolveResponse
	ok := body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 12, 5)})
	if code := postRec(t, h, ok, &resp); code != http.StatusOK {
		t.Fatalf("post-panic status %d", code)
	}
	if s.panics.Load() != 1 {
		t.Fatalf("panics counter %d", s.panics.Load())
	}
}

// TestGracefulDrain: with a worker wedged and one request queued, Drain
// refuses late arrivals with 503, finishes everything already admitted and
// joins the pool without forcing.
func TestGracefulDrain(t *testing.T) {
	s := newServer(t, Config{Workers: 1, Trace: obs.New()})
	h := s.Handler()
	ctl := arm()

	var wedged, queued SolveResponse
	codes := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		codes <- postRec(t, h, body(t, map[string]any{"solver": "test-block", "graph": graphJSON(t, 8, 2)}), &wedged)
	}()
	<-ctl.started
	go func() {
		defer wg.Done()
		codes <- postRec(t, h, body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 12, 5)}), &queued)
	}()
	waitCounter(t, &s.accepted, 2)

	var rep DrainReport
	drained := make(chan struct{})
	go func() { rep = s.Drain(); close(drained) }()
	waitState(t, s, stateDraining)

	// A late request is refused, not dropped on the floor.
	var er ErrorResponse
	late := body(t, map[string]any{"solver": "pa", "graph": graphJSON(t, 8, 1)})
	if code := postRec(t, h, late, &er); code != http.StatusServiceUnavailable {
		t.Fatalf("late request status %d, want 503", code)
	}
	if er.Reason != "draining" || er.RetryAfterMS == 0 {
		t.Fatalf("late body: %+v", er)
	}

	close(ctl.release)
	<-drained
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("admitted request answered %d during drain", code)
		}
	}
	if rep.Forced || rep.InFlight != 1 || rep.Queued != 1 {
		t.Fatalf("drain report: %+v", rep)
	}
	if s.state != stateStopped {
		t.Fatal("server not stopped after drain")
	}
	// Drain is idempotent: a concurrent/second call returns immediately.
	s.Drain()
}

// TestDrainForcedCancel: the drain budget runs on the injected clock; when
// it expires the root budget cancels every in-flight request, which still
// answers (504), and the pool joins. Nothing is dropped even in a forced
// drain.
func TestDrainForcedCancel(t *testing.T) {
	fc := faultinject.NewClock()
	s := newServer(t, Config{
		Workers:     1,
		Clock:       fc.Now,
		DrainBudget: 5 * time.Millisecond,
		Sleep: func(d time.Duration) {
			fc.Advance(d)
			time.Sleep(50 * time.Microsecond) // yield so the wedged solver polls
		},
	})
	ctl := arm() // release stays open: only budget cancel can free the solver

	var er ErrorResponse
	code := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		code <- postRec(t, s.Handler(), body(t, map[string]any{"solver": "test-block", "graph": graphJSON(t, 8, 2)}), &er)
	}()
	<-ctl.started

	rep := s.Drain()
	wg.Wait()
	if got := <-code; got != http.StatusGatewayTimeout {
		t.Fatalf("force-cancelled request answered %d, want 504", got)
	}
	if er.Reason != "cancelled" {
		t.Fatalf("reason %q, want \"cancelled\"", er.Reason)
	}
	if !rep.Forced {
		t.Fatal("drain should have been forced by the expired drain budget")
	}
}

// TestSeededLoadAgainstFaultyServer is the acceptance run in miniature:
// concurrent seeded clients against a daemon with queue-full and
// floorplan-infeasible faults armed. Every request must end in a definite
// answer — 200 (robust absorbs the solver faults) or a retried 429 — with
// zero panics and a clean drain.
func TestSeededLoadAgainstFaultyServer(t *testing.T) {
	faults := faultinject.New()
	faults.ForceQueueFull(5)
	faults.ForceFloorplanInfeasible(8)
	s := newServer(t, Config{Workers: 2, QueueDepth: 8, Faults: faults, Trace: obs.New()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	graphs := [][]byte{
		body(t, map[string]any{"graph": graphJSON(t, 12, 21)}),
		body(t, map[string]any{"graph": graphJSON(t, 16, 22)}),
		body(t, map[string]any{"graph": graphJSON(t, 20, 23)}),
	}
	const clients, total = 4, 24
	var next, ok, shedRetries atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				payload := graphs[int(i)%len(graphs)]
				for attempt := 0; ; attempt++ {
					resp, err := http.Post(srv.URL+"/solve", "application/json", bytes.NewReader(payload))
					if err != nil {
						t.Error(err)
						return
					}
					status := resp.StatusCode
					_ = resp.Body.Close()
					if status == http.StatusOK {
						ok.Add(1)
						break
					}
					if status == http.StatusTooManyRequests && attempt < 20 {
						shedRetries.Add(1)
						time.Sleep(time.Duration(1+i%3) * time.Millisecond)
						continue
					}
					t.Errorf("request %d: status %d after %d attempts", i, status, attempt+1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if ok.Load() != total {
		t.Fatalf("%d/%d requests succeeded", ok.Load(), total)
	}
	if s.panics.Load() != 0 {
		t.Fatalf("panics under load: %d", s.panics.Load())
	}
	if faults.Fired(faultinject.FaultServeQueueFull) != 5 {
		t.Fatalf("queue-full fault fired %d times, want 5", faults.Fired(faultinject.FaultServeQueueFull))
	}
	if shedRetries.Load() < 5 {
		t.Fatalf("expected every forced shed to be retried, saw %d retries", shedRetries.Load())
	}
	rep := s.Drain()
	if rep.Forced {
		t.Fatal("idle drain must not force")
	}
}

// waitState spins until the server reaches the given admission state.
func waitState(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		st := s.state
		s.mu.Unlock()
		if st == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("state stuck at %s, want %s", stateName(st), stateName(want))
		}
		time.Sleep(100 * time.Microsecond)
	}
}
