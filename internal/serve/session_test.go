package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"resched/internal/arch"
	"resched/internal/obs"
	"resched/internal/online"
	"resched/internal/taskgraph"
)

// postPath drives the handler at an arbitrary path with a recorder.
func postPath(t *testing.T, h http.Handler, path string, payload []byte, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %q: %v", rec.Body.String(), err)
		}
	}
	return rec.Code
}

// openSession opens a session and returns its ID.
func openSession(t *testing.T, h http.Handler, req map[string]any) string {
	t.Helper()
	var resp SessionOpenResponse
	if code := postPath(t, h, "/session/open", body(t, req), &resp); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}
	if resp.Session == "" {
		t.Fatal("open returned no session ID")
	}
	return resp.Session
}

func TestSessionLifecycle(t *testing.T) {
	s := newServer(t, Config{})
	h := s.Handler()
	id := openSession(t, h, map[string]any{"solver": "pa", "seed": int64(3)})

	// Three jobs streaming in at increasing arrivals: every submit re-plans
	// and reports the plan state.
	var lastMakespan int64
	for i, arrival := range []int64{0, 400, 900} {
		var resp SessionSubmitResponse
		code := postPath(t, h, "/session/submit", body(t, map[string]any{
			"session": id, "graph": graphJSON(t, 8, int64(10+i)), "arrival": arrival,
		}), &resp)
		if code != http.StatusOK {
			t.Fatalf("submit %d status %d", i, code)
		}
		if resp.Jobs != i+1 {
			t.Fatalf("submit %d: jobs = %d", i, resp.Jobs)
		}
		if resp.Epochs == 0 || resp.LastEpoch == nil {
			t.Fatalf("submit %d triggered no epoch: %+v", i, resp)
		}
		if resp.Makespan <= 0 {
			t.Fatalf("submit %d: makespan %d", i, resp.Makespan)
		}
		if resp.Commit > resp.LastEpoch.Commit {
			t.Fatalf("submit %d: commit %d behind epoch boundary %d", i, resp.Commit, resp.LastEpoch.Commit)
		}
		lastMakespan = resp.Makespan
	}

	var closed SessionCloseResponse
	code := postPath(t, h, "/session/close", body(t, map[string]any{
		"session": id, "include_schedule": true,
	}), &closed)
	if code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	if closed.Makespan != lastMakespan {
		t.Fatalf("close makespan %d, last submit reported %d", closed.Makespan, lastMakespan)
	}
	if len(closed.Epochs) == 0 || len(closed.JobEnds) != 3 {
		t.Fatalf("close summary: %d epochs, %d job ends", len(closed.Epochs), len(closed.JobEnds))
	}
	// The stitched schedule comes back as a JSON document (the engine
	// already validated it with schedule.Check before committing it).
	var schDoc map[string]any
	if err := json.Unmarshal(closed.Schedule, &schDoc); err != nil || len(schDoc) == 0 {
		t.Fatalf("close schedule not a JSON document: %v", err)
	}

	// The session is gone: submit and close now 404.
	if code := postPath(t, h, "/session/submit", body(t, map[string]any{
		"session": id, "graph": graphJSON(t, 6, 1),
	}), nil); code != http.StatusNotFound {
		t.Fatalf("submit after close: status %d", code)
	}
	if code := postPath(t, h, "/session/close", body(t, map[string]any{"session": id}), nil); code != http.StatusNotFound {
		t.Fatalf("double close: status %d", code)
	}
}

func TestSessionBadRequests(t *testing.T) {
	s := newServer(t, Config{})
	h := s.Handler()

	cases := []struct {
		name, path string
		payload    []byte
		want       int
	}{
		{"unknown solver", "/session/open", body(t, map[string]any{"solver": "nope"}), http.StatusBadRequest},
		{"unknown arch", "/session/open", body(t, map[string]any{"arch": "nope"}), http.StatusBadRequest},
		{"unknown session", "/session/submit", body(t, map[string]any{"session": "zz", "graph": graphJSON(t, 6, 1)}), http.StatusNotFound},
		{"no graph", "/session/submit", nil, http.StatusNotFound}, // empty session resolves first
		{"bad json", "/session/open", []byte("{"), http.StatusBadRequest},
	}
	for _, tc := range cases {
		if tc.payload == nil {
			tc.payload = body(t, map[string]any{"session": "zz"})
		}
		if code := postPath(t, h, tc.path, tc.payload, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// GET is not a session verb.
	req := httptest.NewRequest(http.MethodGet, "/session/open", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /session/open: status %d", rec.Code)
	}

	// A job with no graph on a live session is a 400.
	id := openSession(t, h, map[string]any{})
	if code := postPath(t, h, "/session/submit", body(t, map[string]any{"session": id}), nil); code != http.StatusBadRequest {
		t.Fatalf("graphless submit: status %d", code)
	}
	// A malformed graph too (a task with no implementations violates the
	// §III software-implementation assumption).
	if code := postPath(t, h, "/session/submit", body(t, map[string]any{
		"session": id, "graph": json.RawMessage(`{"name":"x","tasks":[{"name":"t"}]}`),
	}), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed graph submit: status %d", code)
	}
}

func TestSessionLimitAndHealth(t *testing.T) {
	tr := obs.New()
	s := newServer(t, Config{MaxSessions: 2, Trace: tr})
	h := s.Handler()

	openSession(t, h, map[string]any{})
	id2 := openSession(t, h, map[string]any{})
	if code := postPath(t, h, "/session/open", body(t, map[string]any{}), nil); code != http.StatusTooManyRequests {
		t.Fatalf("third open: status %d", code)
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var health Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Sessions != 2 {
		t.Fatalf("healthz sessions = %d, want 2", health.Sessions)
	}

	// Closing one frees a slot.
	if code := postPath(t, h, "/session/close", body(t, map[string]any{"session": id2}), nil); code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	openSession(t, h, map[string]any{})

	if got := tr.Snapshot().Counters["serve.session.open"]; got != 3 {
		t.Fatalf("serve.session.open = %d, want 3", got)
	}
}

func TestSessionMetricsFlow(t *testing.T) {
	tr := obs.New()
	s := newServer(t, Config{Trace: tr})
	h := s.Handler()
	id := openSession(t, h, map[string]any{"seed": int64(5)})
	for i := 0; i < 2; i++ {
		if code := postPath(t, h, "/session/submit", body(t, map[string]any{
			"session": id, "graph": graphJSON(t, 8, int64(20+i)), "arrival": int64(i * 500),
		}), nil); code != http.StatusOK {
			t.Fatalf("submit %d failed", i)
		}
	}
	if code := postPath(t, h, "/session/close", body(t, map[string]any{"session": id}), nil); code != http.StatusOK {
		t.Fatal("close failed")
	}
	snap := tr.Snapshot()
	// The engine's own taxonomy flows through the server trace: the online
	// counters the smoke gate requires are visible on /metrics.
	if snap.Counters["online.epochs"] == 0 {
		t.Fatal("online.epochs never counted through the session path")
	}
	if snap.Counters["serve.session.submit"] != 2 || snap.Counters["serve.session.close"] != 1 {
		t.Fatalf("session counters off: %+v", snap.Counters)
	}
}

func TestSessionRefusedWhileDraining(t *testing.T) {
	s := newServer(t, Config{})
	h := s.Handler()
	s.Drain()
	if code := postPath(t, h, "/session/open", body(t, map[string]any{}), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("open while drained: status %d", code)
	}
}

// TestSessionMatchesDirectEngine pins the wire path to the library: the
// session submits must produce the same stitched makespan as driving
// online.Engine directly with the same jobs.
func TestSessionMatchesDirectEngine(t *testing.T) {
	s := newServer(t, Config{})
	h := s.Handler()
	id := openSession(t, h, map[string]any{"solver": "pa", "seed": int64(11)})

	arrivals := []int64{0, 300}
	var last SessionSubmitResponse
	for i, at := range arrivals {
		if code := postPath(t, h, "/session/submit", body(t, map[string]any{
			"session": id, "name": "j", "graph": graphJSON(t, 8, int64(40+i)), "arrival": at,
		}), &last); code != http.StatusOK {
			t.Fatalf("submit %d failed", i)
		}
	}

	a, err := arch.Preset("zedboard")
	if err != nil {
		t.Fatal(err)
	}
	// Mirror the session defaults: pa, one worker, default iterations.
	eng, err := online.New(online.Config{Arch: a, Solver: "pa", Workers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, at := range arrivals {
		g, err := taskgraph.Read(bytes.NewReader(graphJSON(t, 8, int64(40+i))))
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.Submit(online.Job{Name: "j", Graph: g, Arrival: at}); err != nil {
			t.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if plan := eng.Plan(); plan == nil || plan.Makespan != last.Makespan {
		t.Fatalf("wire makespan %d, direct engine %v", last.Makespan, plan)
	}
}
