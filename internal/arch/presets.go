package arch

import (
	"fmt"
	"sort"
	"strings"

	"resched/internal/resources"
)

// ColumnSpec is one run of identical columns in a fabric pattern.
type ColumnSpec struct {
	Kind  resources.Kind
	Count int
}

// NewColumnFabric builds a fabric from a column pattern replicated over the
// given number of clock-region rows, with the 7-series cell contents
// (100 slices, 10 RAMB36 or 20 DSP48 per cell).
func NewColumnFabric(rows int, pattern []ColumnSpec) *Fabric {
	f := &Fabric{Rows: rows}
	f.UnitsPerCell[resources.CLB] = 100
	f.UnitsPerCell[resources.BRAM] = 10
	f.UnitsPerCell[resources.DSP] = 20
	for _, p := range pattern {
		for i := 0; i < p.Count; i++ {
			f.Columns = append(f.Columns, p.Kind)
		}
	}
	return f
}

// interleave builds a pattern of clb CLB columns with bram BRAM and dsp DSP
// columns spread as evenly as possible between CLB runs, approximating the
// alternating stripes of real 7-series devices.
func interleave(clb, bram, dsp int) []ColumnSpec {
	special := bram + dsp
	var pattern []ColumnSpec
	if special == 0 {
		return []ColumnSpec{{resources.CLB, clb}}
	}
	per := clb / (special + 1)
	extra := clb % (special + 1)
	nextSpecial := func(i int) resources.Kind {
		// Alternate BRAM and DSP while both remain, matching their ratio.
		if i%2 == 0 && bram > 0 {
			bram--
			return resources.BRAM
		}
		if dsp > 0 {
			dsp--
			return resources.DSP
		}
		bram--
		return resources.BRAM
	}
	for i := 0; i < special; i++ {
		run := per
		if i < extra {
			run++
		}
		if run > 0 {
			pattern = append(pattern, ColumnSpec{resources.CLB, run})
		}
		pattern = append(pattern, ColumnSpec{nextSpecial(i), 1})
	}
	if per > 0 || extra > special {
		pattern = append(pattern, ColumnSpec{resources.CLB, per})
	}
	return pattern
}

// preset assembles an architecture from a fabric with standard ICAP
// throughput and bitstream constants.
func preset(name string, processors, rows, clbCols, bramCols, dspCols int) *Architecture {
	fabric := NewColumnFabric(rows, interleave(clbCols, bramCols, dspCols))
	return &Architecture{
		Name:       name,
		Processors: processors,
		RecFreq:    3200,
		Bits:       resources.DefaultBits,
		MaxRes:     fabric.Capacity(),
		Fabric:     fabric,
	}
}

// presets maps the stable wire names of the board presets to their
// constructors, so frontends that receive an architecture by name (the
// scheduling daemon's JSON requests, CLI flags) resolve it in one place.
// Constructors, not instances: every lookup returns a fresh Architecture,
// so callers may mutate (e.g. Shrunk) without aliasing.
var presets = map[string]func() *Architecture{
	"zedboard": ZedBoard,
	"microzed": MicroZed7010,
	"zc706":    ZC706_7045,
}

// Preset returns a fresh instance of the named board preset. The empty
// name resolves to the paper's ZedBoard. The error enumerates the valid
// names so wire-level typos are self-explanatory.
func Preset(name string) (*Architecture, error) {
	if name == "" {
		name = "zedboard"
	}
	ctor, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("arch: unknown preset %q (have %s)", name, strings.Join(PresetNames(), ", "))
	}
	return ctor(), nil
}

// PresetNames returns the preset names in stable (sorted) order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MicroZed7010 models the Zynq XC7Z010 found on MicroZed boards: a single
// clock-region-pair fabric with ~4 400 slices, 60 RAMB36 and 80 DSP48.
// 2 rows × 22 CLB columns × 100 = 4 400 slices, 2×3×10 = 60 BRAM,
// 2×2×20 = 80 DSP.
func MicroZed7010() *Architecture {
	return preset("MicroZed XC7Z010", 2, 2, 22, 3, 2)
}

// ZC706_7045 models the Zynq XC7Z045 of the ZC706 board: ~54 650 slices,
// 545 RAMB36, 900 DSP48. 5 rows × 109 CLB columns × 100 = 54 500 slices,
// 5×11×10 = 550 BRAM, 5×9×20 = 900 DSP.
func ZC706_7045() *Architecture {
	return preset("ZC706 XC7Z045", 2, 5, 109, 11, 9)
}

// ScaledZedBoard returns a ZedBoard-like architecture whose fabric is
// scaled to approximately factor× the XC7Z020 capacity (factor in
// (0, 8]); used by the contention-sweep experiment to vary device pressure
// with everything else fixed.
func ScaledZedBoard(factor float64) (*Architecture, error) {
	if factor <= 0 || factor > 8 {
		return nil, fmt.Errorf("arch: scale factor %v out of (0, 8]", factor)
	}
	base := 44.0 * factor
	clb := int(base + 0.5)
	if clb < 2 {
		clb = 2
	}
	bram := int(5*factor + 0.5)
	if bram < 1 {
		bram = 1
	}
	dsp := int(4*factor + 0.5)
	if dsp < 1 {
		dsp = 1
	}
	a := preset(fmt.Sprintf("ZedBoard×%.2f", factor), 2, 3, clb, bram, dsp)
	return a, nil
}
