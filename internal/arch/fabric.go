package arch

import (
	"fmt"
	"strings"

	"resched/internal/resources"
)

// Fabric is the physical layout of the reconfigurable logic as a grid of
// resource columns replicated over clock-region rows, following the
// Xilinx 7-series organisation: the device is split into horizontal clock
// regions, each containing the same left-to-right sequence of columns, and
// every column in a clock region holds a fixed number of units of a single
// resource kind.
//
// Partial-reconfiguration constraints (ref [3] of the paper) restrict
// reconfigurable regions to rectangles of whole columns spanning whole
// clock-region rows, which is exactly the placement space the floorplanner
// enumerates.
type Fabric struct {
	// Rows is the number of clock-region rows.
	Rows int
	// Columns lists the resource kind of each column, left to right.
	Columns []resources.Kind
	// UnitsPerCell[k] is the number of units of kind k contained in one
	// (column, row) cell of a column of kind k.
	UnitsPerCell [resources.NumKinds]int
}

// Validate checks the fabric description.
func (f *Fabric) Validate() error {
	if f.Rows <= 0 {
		return fmt.Errorf("fabric: non-positive row count %d", f.Rows)
	}
	if len(f.Columns) == 0 {
		return fmt.Errorf("fabric: no columns")
	}
	for i, k := range f.Columns {
		if k < 0 || k >= resources.NumKinds {
			return fmt.Errorf("fabric: column %d has invalid kind %d", i, k)
		}
		if f.UnitsPerCell[k] <= 0 {
			return fmt.Errorf("fabric: kind %v appears in column %d but has no units per cell", k, i)
		}
	}
	return nil
}

// Width returns the number of columns.
func (f *Fabric) Width() int { return len(f.Columns) }

// CellResources returns the resource content of a single cell of column x.
func (f *Fabric) CellResources(x int) resources.Vector {
	var v resources.Vector
	k := f.Columns[x]
	v[k] = f.UnitsPerCell[k]
	return v
}

// Capacity returns the total device resources (maxRes_r).
func (f *Fabric) Capacity() resources.Vector {
	var v resources.Vector
	for x := range f.Columns {
		v = v.Add(f.CellResources(x).Scale(f.Rows))
	}
	return v
}

// RectResources returns the resources contained in the rectangle of columns
// [x0, x1) spanning rows [y0, y1).
func (f *Fabric) RectResources(x0, x1, y0, y1 int) resources.Vector {
	var v resources.Vector
	for x := x0; x < x1; x++ {
		v = v.Add(f.CellResources(x))
	}
	return v.Scale(y1 - y0)
}

// String renders the column pattern compactly, e.g. "3 rows: C×4 B C×4 D".
func (f *Fabric) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d rows:", f.Rows)
	abbrev := map[resources.Kind]string{resources.CLB: "C", resources.BRAM: "B", resources.DSP: "D"}
	i := 0
	for i < len(f.Columns) {
		j := i
		for j < len(f.Columns) && f.Columns[j] == f.Columns[i] {
			j++
		}
		if n := j - i; n > 1 {
			fmt.Fprintf(&b, " %s×%d", abbrev[f.Columns[i]], n)
		} else {
			fmt.Fprintf(&b, " %s", abbrev[f.Columns[i]])
		}
		i = j
	}
	return b.String()
}

// NewZynqFabric builds the 7-series style fabric used for the ZedBoard
// preset: three clock-region rows whose column sequence interleaves BRAM and
// DSP columns among CLB columns, mirroring the XC7Z020 floorplan. A CLB
// column cell holds 100 slices (50 CLBs × 2 slices), a BRAM column cell 10
// RAMB36, a DSP column cell 20 DSP48.
//
// Totals: 44 CLB columns × 3 rows × 100 = 13 200 slices, 5 BRAM columns ×
// 3 × 10 = 150 RAMB36, 4 DSP columns × 3 × 20 = 240 DSP48 — within a few
// percent of the real XC7Z020 (13 300 / 140 / 220).
func NewZynqFabric() *Fabric {
	f := &Fabric{Rows: 3}
	f.UnitsPerCell[resources.CLB] = 100
	f.UnitsPerCell[resources.BRAM] = 10
	f.UnitsPerCell[resources.DSP] = 20
	// Column pattern: groups of CLB columns separated by BRAM/DSP columns,
	// like the alternating CLB/BRAM/CLB/DSP stripes of 7-series devices.
	pattern := []struct {
		kind  resources.Kind
		count int
	}{
		{resources.CLB, 5}, {resources.BRAM, 1},
		{resources.CLB, 5}, {resources.DSP, 1},
		{resources.CLB, 5}, {resources.BRAM, 1},
		{resources.CLB, 6}, {resources.DSP, 1},
		{resources.CLB, 6}, {resources.BRAM, 1},
		{resources.CLB, 6}, {resources.DSP, 1},
		{resources.CLB, 5}, {resources.BRAM, 1},
		{resources.CLB, 6}, {resources.DSP, 1},
		{resources.BRAM, 1},
	}
	for _, p := range pattern {
		for i := 0; i < p.count; i++ {
			f.Columns = append(f.Columns, p.kind)
		}
	}
	return f
}

// ZedBoard returns the architecture preset used throughout the paper's
// evaluation (§VII-A): a Zynq-7000 XC7Z020 with a dual-core ARM Cortex-A9.
// The reconfiguration throughput models the ICAP: 32 bits at 100 MHz =
// 3 200 bits per µs tick.
func ZedBoard() *Architecture {
	fabric := NewZynqFabric()
	return &Architecture{
		Name:       "ZedBoard XC7Z020",
		Processors: 2,
		RecFreq:    3200,
		Bits:       resources.DefaultBits,
		MaxRes:     fabric.Capacity(),
		Fabric:     fabric,
	}
}
