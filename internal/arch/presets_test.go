package arch

import (
	"reflect"
	"testing"

	"resched/internal/resources"
)

func TestPresetsValid(t *testing.T) {
	cases := []struct {
		name string
		a    *Architecture
		clb  [2]int // expected range
		bram [2]int
		dsp  [2]int
	}{
		{"7010", MicroZed7010(), [2]int{4000, 4800}, [2]int{50, 70}, [2]int{70, 90}},
		{"7045", ZC706_7045(), [2]int{52000, 57000}, [2]int{500, 600}, [2]int{850, 950}},
	}
	for _, c := range cases {
		if err := c.a.Validate(); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		got := c.a.MaxRes
		if got[resources.CLB] < c.clb[0] || got[resources.CLB] > c.clb[1] {
			t.Errorf("%s: CLB %d outside [%d,%d]", c.name, got[resources.CLB], c.clb[0], c.clb[1])
		}
		if got[resources.BRAM] < c.bram[0] || got[resources.BRAM] > c.bram[1] {
			t.Errorf("%s: BRAM %d outside [%d,%d]", c.name, got[resources.BRAM], c.bram[0], c.bram[1])
		}
		if got[resources.DSP] < c.dsp[0] || got[resources.DSP] > c.dsp[1] {
			t.Errorf("%s: DSP %d outside [%d,%d]", c.name, got[resources.DSP], c.dsp[0], c.dsp[1])
		}
	}
	// Size ordering: 7010 < 7020 < 7045.
	if !(MicroZed7010().MaxRes[resources.CLB] < ZedBoard().MaxRes[resources.CLB] &&
		ZedBoard().MaxRes[resources.CLB] < ZC706_7045().MaxRes[resources.CLB]) {
		t.Error("preset sizes not ordered")
	}
}

func TestScaledZedBoard(t *testing.T) {
	ref := ZedBoard().MaxRes[resources.CLB]
	for _, f := range []float64{0.25, 0.5, 1.0, 2.0} {
		a, err := ScaledZedBoard(f)
		if err != nil {
			t.Fatalf("factor %v: %v", f, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("factor %v: %v", f, err)
		}
		got := float64(a.MaxRes[resources.CLB])
		want := f * float64(ref)
		if got < want*0.8 || got > want*1.25 {
			t.Errorf("factor %v: CLB %v, want ≈ %v", f, got, want)
		}
	}
	if _, err := ScaledZedBoard(0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := ScaledZedBoard(100); err == nil {
		t.Error("huge factor accepted")
	}
}

func TestInterleaveConservesColumns(t *testing.T) {
	for _, c := range []struct{ clb, bram, dsp int }{
		{10, 2, 1}, {44, 5, 4}, {7, 0, 0}, {3, 5, 5}, {1, 1, 0},
	} {
		pattern := interleave(c.clb, c.bram, c.dsp)
		var got [resources.NumKinds]int
		for _, p := range pattern {
			got[p.Kind] += p.Count
		}
		if got[resources.CLB] != c.clb || got[resources.BRAM] != c.bram || got[resources.DSP] != c.dsp {
			t.Errorf("interleave(%d,%d,%d) conserved %v", c.clb, c.bram, c.dsp, got)
		}
	}
}

func TestPresetRegistry(t *testing.T) {
	names := PresetNames()
	want := []string{"microzed", "zc706", "zedboard"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("PresetNames = %v, want %v", names, want)
	}
	for _, name := range names {
		a, err := Preset(name)
		if err != nil {
			t.Fatalf("Preset(%q): %v", name, err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("Preset(%q) invalid: %v", name, err)
		}
	}
	// The empty name defaults to the paper's board; instances are fresh.
	a, err := Preset("")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Preset("zedboard")
	if a.Name != b.Name {
		t.Fatalf("default preset %q, want %q", a.Name, b.Name)
	}
	a.Processors = 99
	if b2, _ := Preset("zedboard"); b2.Processors == 99 {
		t.Fatal("Preset returned an aliased instance")
	}
	if _, err := Preset("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
}
