// Package arch describes the target architecture of the scheduling problem:
// a set of identical processor cores tightly coupled with a partially
// reconfigurable FPGA (§III of the paper). It provides the ZedBoard
// (Zynq XC7Z020) preset used in the paper's evaluation and a column-based
// fabric geometry consumed by the floorplanner.
package arch

import (
	"errors"
	"fmt"

	"resched/internal/resources"
)

// Architecture is the full description of the target platform.
//
// The single reconfiguration controller of the paper (ICAP) is implicit:
// schedulers must never overlap two reconfigurations in time.
type Architecture struct {
	// Name identifies the platform (e.g. "ZedBoard XC7Z020").
	Name string
	// Processors is |P|, the number of identical processor cores.
	Processors int
	// Reconfigurators is the number of independent reconfiguration
	// controllers. The paper's architecture has exactly one (the ICAP);
	// ref [8] generalises to several, which this model supports as an
	// extension. Zero means one.
	Reconfigurators int
	// RecFreq is the reconfiguration throughput in bits per tick
	// (recFreq of the paper; 1 tick = 1 µs).
	RecFreq int64
	// Bits is the per-resource-unit configuration size table (bit_r).
	Bits resources.BitsPerUnit
	// MaxRes is the device resource capacity (maxRes_r). When the
	// architecture carries a Fabric, MaxRes must equal Fabric.Capacity().
	MaxRes resources.Vector
	// Fabric is the physical column layout used for floorplanning.
	// It may be nil for purely capacity-based experiments.
	Fabric *Fabric
}

// Validate checks internal consistency of the architecture description.
func (a *Architecture) Validate() error {
	if a.Processors < 0 {
		return fmt.Errorf("arch %q: negative processor count %d", a.Name, a.Processors)
	}
	if a.RecFreq <= 0 {
		return fmt.Errorf("arch %q: non-positive reconfiguration frequency %d", a.Name, a.RecFreq)
	}
	if a.Reconfigurators < 0 {
		return fmt.Errorf("arch %q: negative reconfigurator count %d", a.Name, a.Reconfigurators)
	}
	if !a.MaxRes.NonNegative() {
		return fmt.Errorf("arch %q: negative resource capacity %v", a.Name, a.MaxRes)
	}
	if a.Fabric != nil {
		if err := a.Fabric.Validate(); err != nil {
			return fmt.Errorf("arch %q: %w", a.Name, err)
		}
		if got := a.Fabric.Capacity(); got != a.MaxRes {
			return fmt.Errorf("arch %q: MaxRes %v does not match fabric capacity %v", a.Name, a.MaxRes, got)
		}
	}
	return nil
}

// BitstreamBits estimates the partial bitstream size for a region with the
// given resource requirements (eq. (1)).
func (a *Architecture) BitstreamBits(v resources.Vector) int64 {
	return a.Bits.BitstreamBits(v)
}

// ReconfTime estimates the reconfiguration time in ticks for a region with
// the given requirements (eq. (2)), rounding up to a whole tick.
func (a *Architecture) ReconfTime(v resources.Vector) int64 {
	bits := a.BitstreamBits(v)
	if bits == 0 {
		return 0
	}
	return (bits + a.RecFreq - 1) / a.RecFreq
}

// Shrunk returns a copy of the architecture whose resource capacity has been
// virtually reduced by the given factor in (0, 1]. The paper's deterministic
// scheduler restarts with a shrunk device whenever the floorplanner cannot
// place the regions (§V-H). The fabric is preserved: floorplanning always
// runs against the physical device.
func (a *Architecture) Shrunk(factor float64) *Architecture {
	c := *a
	for k := range c.MaxRes {
		c.MaxRes[k] = int(float64(c.MaxRes[k]) * factor)
	}
	return &c
}

// ReconfiguratorCount returns the effective number of reconfiguration
// controllers (at least one).
func (a *Architecture) ReconfiguratorCount() int {
	if a.Reconfigurators <= 1 {
		return 1
	}
	return a.Reconfigurators
}

var errNoFabric = errors.New("arch: architecture has no fabric")

// RequireFabric returns the fabric or an error when the architecture is
// capacity-only.
func (a *Architecture) RequireFabric() (*Fabric, error) {
	if a.Fabric == nil {
		return nil, errNoFabric
	}
	return a.Fabric, nil
}
