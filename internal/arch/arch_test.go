package arch

import (
	"strings"
	"testing"
	"testing/quick"

	"resched/internal/resources"
)

func TestZedBoardPreset(t *testing.T) {
	a := ZedBoard()
	if err := a.Validate(); err != nil {
		t.Fatalf("ZedBoard invalid: %v", err)
	}
	if a.Processors != 2 {
		t.Errorf("Processors = %d, want 2 (dual-core Cortex-A9)", a.Processors)
	}
	// Capacities should be within a few percent of the real XC7Z020.
	want := resources.Vec(13200, 150, 240)
	if a.MaxRes != want {
		t.Errorf("MaxRes = %v, want %v", a.MaxRes, want)
	}
	if a.Fabric == nil {
		t.Fatal("ZedBoard has no fabric")
	}
	if got := a.Fabric.Capacity(); got != a.MaxRes {
		t.Errorf("fabric capacity %v != MaxRes %v", got, a.MaxRes)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Architecture {
		a := ZedBoard()
		a.Fabric = nil
		return a
	}
	cases := []struct {
		name string
		mut  func(*Architecture)
	}{
		{"negative processors", func(a *Architecture) { a.Processors = -1 }},
		{"zero recfreq", func(a *Architecture) { a.RecFreq = 0 }},
		{"negative capacity", func(a *Architecture) { a.MaxRes[0] = -5 }},
	}
	for _, c := range cases {
		a := base()
		c.mut(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid architecture", c.name)
		}
	}
	// Fabric/MaxRes mismatch.
	a := ZedBoard()
	a.MaxRes[0]++
	if err := a.Validate(); err == nil {
		t.Error("Validate accepted MaxRes/fabric mismatch")
	}
}

func TestReconfTime(t *testing.T) {
	a := ZedBoard()
	if got := a.ReconfTime(resources.Vector{}); got != 0 {
		t.Errorf("ReconfTime(zero) = %d, want 0", got)
	}
	// One CLB slice: 2327 bits at 3200 bits/tick → ceil = 1 tick.
	if got := a.ReconfTime(resources.Vec(1, 0, 0)); got != 1 {
		t.Errorf("ReconfTime(1 CLB) = %d, want 1", got)
	}
	// 1000 slices: 2 327 000 bits / 3200 = 727.18… → 728 ticks.
	if got := a.ReconfTime(resources.Vec(1000, 0, 0)); got != 728 {
		t.Errorf("ReconfTime(1000 CLB) = %d, want 728", got)
	}
}

// Property: reconfiguration time is monotone in the region requirements and
// sub-additive relative to splitting a region in two (ceil rounding).
func TestReconfTimeMonotone(t *testing.T) {
	a := ZedBoard()
	clamp := func(v resources.Vector) resources.Vector {
		for k := range v {
			c := v[k] % 4096
			if c < 0 {
				c = -c
			}
			v[k] = c
		}
		return v
	}
	f := func(v, d resources.Vector) bool {
		v, d = clamp(v), clamp(d)
		return a.ReconfTime(v.Add(d)) >= a.ReconfTime(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShrunk(t *testing.T) {
	a := ZedBoard()
	s := a.Shrunk(0.5)
	if s.MaxRes != resources.Vec(6600, 75, 120) {
		t.Errorf("Shrunk(0.5).MaxRes = %v", s.MaxRes)
	}
	if s.Fabric != a.Fabric {
		t.Error("Shrunk must preserve the physical fabric")
	}
	if a.MaxRes != ZedBoard().MaxRes {
		t.Error("Shrunk mutated the original architecture")
	}
}

func TestRequireFabric(t *testing.T) {
	a := ZedBoard()
	if _, err := a.RequireFabric(); err != nil {
		t.Errorf("RequireFabric on ZedBoard: %v", err)
	}
	a.Fabric = nil
	if _, err := a.RequireFabric(); err == nil {
		t.Error("RequireFabric accepted a fabric-less architecture")
	}
}

func TestFabricRectResources(t *testing.T) {
	f := NewZynqFabric()
	// Whole device rectangle equals capacity.
	if got := f.RectResources(0, f.Width(), 0, f.Rows); got != f.Capacity() {
		t.Errorf("full-rect resources %v != capacity %v", got, f.Capacity())
	}
	// Empty rectangles contain nothing.
	if got := f.RectResources(3, 3, 0, f.Rows); !got.Zero() {
		t.Errorf("empty-width rect has resources %v", got)
	}
	if got := f.RectResources(0, 2, 1, 1); !got.Zero() {
		t.Errorf("empty-height rect has resources %v", got)
	}
}

// Property: rectangle resources are additive when splitting on a column.
func TestRectResourcesAdditive(t *testing.T) {
	f := NewZynqFabric()
	w, r := f.Width(), f.Rows
	check := func(x0, xm, x1, y0, y1 uint8) bool {
		a, m, b := int(x0)%w, int(xm)%w, int(x1)%w
		if a > m {
			a, m = m, a
		}
		if m > b {
			m, b = b, m
		}
		if a > m {
			a, m = m, a
		}
		lo, hi := int(y0)%r, int(y1)%r
		if lo > hi {
			lo, hi = hi, lo
		}
		hi++ // non-empty row span
		left := f.RectResources(a, m, lo, hi)
		right := f.RectResources(m, b, lo, hi)
		return left.Add(right) == f.RectResources(a, b, lo, hi)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFabricValidate(t *testing.T) {
	f := NewZynqFabric()
	if err := f.Validate(); err != nil {
		t.Fatalf("valid fabric rejected: %v", err)
	}
	bad := *f
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero rows accepted")
	}
	bad = *f
	bad.Columns = nil
	if err := bad.Validate(); err == nil {
		t.Error("empty columns accepted")
	}
	bad = *f
	bad.Columns = append([]resources.Kind{resources.Kind(7)}, f.Columns...)
	if err := bad.Validate(); err == nil {
		t.Error("invalid column kind accepted")
	}
	bad = *f
	bad.UnitsPerCell[resources.BRAM] = 0
	if err := bad.Validate(); err == nil {
		t.Error("kind with zero units per cell accepted")
	}
}

func TestFabricString(t *testing.T) {
	f := &Fabric{Rows: 2, Columns: []resources.Kind{resources.CLB, resources.CLB, resources.BRAM, resources.DSP}}
	f.UnitsPerCell[resources.CLB] = 100
	f.UnitsPerCell[resources.BRAM] = 10
	f.UnitsPerCell[resources.DSP] = 20
	s := f.String()
	for _, frag := range []string{"2 rows:", "C×2", "B", "D"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}
