package isk

import (
	"fmt"

	"resched/internal/budget"
	"resched/internal/schedule"
)

// optKind discriminates the mapping choice of one window decision.
type optKind int

const (
	optSW        optKind = iota // software on a processor
	optNewRegion                // hardware in a freshly created region
	optExisting                 // hardware in an existing region (reconfigure)
	optReuse                    // hardware in an existing region (module reuse)
)

// option is one candidate decision for a window task, replayable against
// the timeline state it was generated from.
type option struct {
	task   int
	impl   int
	kind   optKind
	proc   int // optSW
	region int // optExisting / optReuse: region id
}

// applied captures everything needed to undo an option application.
type applied struct {
	undo func()
}

// options enumerates the candidate decisions for task t under the current
// timeline. To keep the window search tractable the existing-region choices
// are restricted to the most promising candidates per implementation: the
// module-reuse match and the two regions yielding the earliest task end.
// (Ref [6]'s MILP considers all regions; the shortlist preserves the
// decisions that matter — competition between window tasks for the same
// region is still explored because each task carries its own shortlist.)
func (st *timeline) options(t int) []option {
	if p, ok := st.pins[t]; ok {
		// The committed prefix already reconfigured a region for t: the only
		// legal decision is executing there with the committed implementation
		// (module reuse semantics — no new reconfiguration).
		return []option{{task: t, impl: p.impl, kind: optReuse, region: p.region}}
	}
	var out []option
	task := st.g.Tasks[t]
	// Software choices: the earliest-free processor per SW implementation
	// (cores are identical, so the earliest-free one dominates).
	if st.a.Processors > 0 {
		best := 0
		for p := 1; p < st.a.Processors; p++ {
			if st.procFree[p] < st.procFree[best] {
				best = p
			}
		}
		for _, i := range task.SWImpls() {
			out = append(out, option{task: t, impl: i, kind: optSW, proc: best})
		}
	}
	ready := st.ready(t)
	for _, i := range task.HWImpls() {
		im := task.Impls[i]
		if st.usedRes.Add(st.footprint(im.Res)).Fits(st.maxRes) {
			out = append(out, option{task: t, impl: i, kind: optNewRegion})
		}
		// Existing regions: shortlist by resulting end time.
		type cand struct {
			opt option
			end int64
		}
		var reuse *cand
		var best1, best2 *cand
		for _, r := range st.regions {
			if !im.Res.Fits(r.res) || st.locked(r) {
				continue
			}
			if st.moduleReuse && r.loaded == im.Name {
				s := ready
				if r.freeAt > s {
					s = r.freeAt
				}
				c := &cand{opt: option{task: t, impl: i, kind: optReuse, region: r.id}, end: s + im.Time}
				if reuse == nil || c.end < reuse.end {
					reuse = c
				}
				continue
			}
			_, rs := st.slotFor(st.reconfLowerBound(r, ready), r.reconfTime)
			s := rs + r.reconfTime
			if ready > s {
				s = ready
			}
			c := &cand{opt: option{task: t, impl: i, kind: optExisting, region: r.id}, end: s + im.Time}
			switch {
			case best1 == nil || c.end < best1.end:
				best1, best2 = c, best1
			case best2 == nil || c.end < best2.end:
				best2 = c
			}
		}
		if st.exhaustive {
			// Exact mode: every compatible region is a candidate.
			for _, r := range st.regions {
				if !im.Res.Fits(r.res) || st.locked(r) {
					continue
				}
				if st.moduleReuse && r.loaded == im.Name {
					out = append(out, option{task: t, impl: i, kind: optReuse, region: r.id})
				} else {
					out = append(out, option{task: t, impl: i, kind: optExisting, region: r.id})
				}
			}
			continue
		}
		for _, c := range []*cand{reuse, best1, best2} {
			if c != nil {
				out = append(out, c.opt)
			}
		}
	}
	return out
}

// apply executes an option on the timeline and returns its undo record.
// When commit is true the reconfiguration record (if any) is appended for
// the final schedule. An option with an unknown kind — impossible for
// options produced by the enumerator — is reported as an error, not a
// panic, so a corrupted plan cannot crash a library caller.
func (st *timeline) apply(o option, commit bool) (applied, error) {
	im := st.g.Tasks[o.task].Impls[o.impl]
	ready := st.ready(o.task)
	oldMak, oldSum, oldLB := st.makespan, st.sumEnds, st.lb

	finish := func(start int64, extraUndo func()) applied {
		st.impl[o.task] = o.impl
		st.start[o.task] = start
		st.end[o.task] = start + im.Time
		st.sumEnds += st.end[o.task]
		if st.end[o.task] > st.makespan {
			st.makespan = st.end[o.task]
		}
		if st.tails != nil {
			if c := st.end[o.task] + st.tails[o.task]; c > st.lb {
				st.lb = c
			}
		}
		return applied{undo: func() {
			if extraUndo != nil {
				extraUndo()
			}
			st.impl[o.task] = -1
			st.makespan, st.sumEnds, st.lb = oldMak, oldSum, oldLB
		}}
	}

	switch o.kind {
	case optSW:
		oldFree := st.procFree[o.proc]
		start := ready
		if oldFree > start {
			start = oldFree
		}
		st.target[o.task] = schedule.Target{Kind: schedule.OnProcessor, Index: o.proc}
		st.procFree[o.proc] = start + im.Time
		return finish(start, func() { st.procFree[o.proc] = oldFree }), nil

	case optNewRegion:
		fp := st.footprint(im.Res)
		r := &iskRegion{
			id:         len(st.regions),
			res:        im.Res,
			reconfTime: st.a.ReconfTime(im.Res),
			loaded:     im.Name,
			lastTask:   o.task,
			pinned:     -1,
		}
		st.regions = append(st.regions, r)
		st.usedRes = st.usedRes.Add(fp)
		start := ready
		r.freeAt = start + im.Time
		st.target[o.task] = schedule.Target{Kind: schedule.OnRegion, Index: r.id}
		return finish(start, func() {
			st.regions = st.regions[:len(st.regions)-1]
			st.usedRes = st.usedRes.Sub(fp)
		}), nil

	case optReuse:
		r := st.regions[o.region]
		oldFree, oldLast := r.freeAt, r.lastTask
		start := ready
		if r.freeAt > start {
			start = r.freeAt
		}
		r.freeAt = start + im.Time
		r.lastTask = o.task
		st.target[o.task] = schedule.Target{Kind: schedule.OnRegion, Index: r.id}
		return finish(start, func() { r.freeAt, r.lastTask = oldFree, oldLast }), nil

	case optExisting:
		r := st.regions[o.region]
		oldFree, oldLast, oldLoaded := r.freeAt, r.lastTask, r.loaded
		// Earliest controller slot after the region falls idle; with
		// prefetching this may lie well before the task is ready.
		ch, rs := st.slotFor(st.reconfLowerBound(r, ready), r.reconfTime)
		slotIdx := st.insertSlot(ch, rs, r.reconfTime)
		start := rs + r.reconfTime
		if ready > start {
			start = ready
		}
		if commit {
			st.reconfs = append(st.reconfs, schedule.Reconfiguration{
				Region:  r.id,
				InTask:  oldLast,
				OutTask: o.task,
				Start:   rs,
				End:     rs + r.reconfTime,
			})
		}
		r.freeAt = start + im.Time
		r.lastTask = o.task
		r.loaded = im.Name
		st.target[o.task] = schedule.Target{Kind: schedule.OnRegion, Index: r.id}
		return finish(start, func() {
			st.removeSlot(ch, slotIdx)
			r.freeAt, r.lastTask, r.loaded = oldFree, oldLast, oldLoaded
		}), nil
	}
	return applied{}, fmt.Errorf("isk: unknown option kind %d", o.kind)
}

// solveWindow finds the window decisions minimising (makespan, Σ ends) by
// exhaustive branch and bound over task orders and options, then commits
// the best plan to the timeline. The budget is charged per explored node;
// on exhaustion the search stops with a typed error (matching
// budget.ErrExhausted) — a half-solved window cannot be emitted, so unlike
// the per-window node cap there is no incumbent to fall back on.
func (st *timeline) solveWindow(window []int, maxNodes int, nodes *int, bud *budget.Budget) error {
	inWindow := make(map[int]bool, len(window))
	for _, t := range window {
		inWindow[t] = true
	}
	var (
		bestPlan   []option
		bestMak    int64
		bestSum    int64
		cur        []option
		nodeBudget = maxNodes
	)

	// ready-in-window: all predecessors scheduled (committed or within the
	// current partial plan).
	readyTasks := func() []int {
		var out []int
		for _, t := range window {
			if st.impl[t] >= 0 {
				continue
			}
			ok := true
			for _, p := range st.g.Pred(t) {
				if st.impl[p] < 0 {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, t)
			}
		}
		return out
	}

	var dfs func(remaining int) error
	dfs = func(remaining int) error {
		if remaining == 0 {
			if bestPlan == nil || st.lb < bestMak ||
				(st.lb == bestMak && st.sumEnds < bestSum) {
				bestPlan = append(bestPlan[:0], cur...)
				bestMak, bestSum = st.lb, st.sumEnds
			}
			return nil
		}
		if nodeBudget <= 0 {
			return nil
		}
		for _, t := range readyTasks() {
			opts := st.options(t)
			if len(opts) == 0 {
				return fmt.Errorf("isk: task %d has no feasible mapping (no processors and no device capacity)", t)
			}
			for _, o := range opts {
				nodeBudget--
				*nodes++
				if err := bud.Charge(1); err != nil {
					return fmt.Errorf("isk: window search aborted: %w", err)
				}
				ap, err := st.apply(o, false)
				if err != nil {
					return err
				}
				prune := bestPlan != nil && (st.lb > bestMak ||
					(st.lb == bestMak && st.sumEnds >= bestSum))
				if !prune {
					cur = append(cur, o)
					if err := dfs(remaining - 1); err != nil {
						ap.undo()
						return err
					}
					cur = cur[:len(cur)-1]
				}
				ap.undo()
				if nodeBudget <= 0 {
					break
				}
			}
		}
		return nil
	}
	if err := dfs(len(window)); err != nil {
		return err
	}
	if bestPlan == nil {
		return fmt.Errorf("isk: window search found no feasible plan (node budget %d)", maxNodes)
	}
	// Commit the winning plan.
	for _, o := range bestPlan {
		if _, err := st.apply(o, true); err != nil {
			return err
		}
	}
	return nil
}
