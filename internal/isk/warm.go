package isk

import (
	"fmt"

	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// pin records the forced mapping of a task whose reconfiguration the
// committed prefix already performed: the task must execute first in its
// warm region with the committed implementation.
type pin struct {
	region int
	impl   int
}

// seedWarm initialises the timeline from a committed platform state: warm
// regions become committed regions 0..len(ps.Regions)-1 (preserving the
// index mapping CheckAgainst validates), busy-until floors seed the region,
// processor and controller timelines, and release floors feed ready().
// A nil or empty state leaves the timeline untouched.
func (st *timeline) seedWarm(ps *schedule.PlatformState) error {
	if ps == nil || ps.Empty() {
		return nil
	}
	if len(ps.ReconfAvail) > len(st.slots) {
		return fmt.Errorf("isk: initial state carries %d in-flight reconfigurations, architecture has %d controllers",
			len(ps.ReconfAvail), len(st.slots))
	}
	// In-flight reconfigurations occupy their controllers from the epoch
	// start: a busy slot [0, floor) makes slotOn skip past them.
	for c, f := range ps.ReconfAvail {
		if f > 0 {
			st.insertSlot(c, 0, f)
		}
	}
	for p, f := range ps.ProcAvail {
		if p < len(st.procFree) && f > st.procFree[p] {
			st.procFree[p] = f
		}
	}
	for t, f := range ps.Release {
		if t >= st.g.N() {
			break
		}
		if f > 0 {
			if st.release == nil {
				st.release = make([]int64, st.g.N())
			}
			st.release[t] = f
		}
	}
	for i := range ps.Regions {
		wr := &ps.Regions[i]
		r := &iskRegion{
			id:         i,
			res:        wr.Res,
			reconfTime: st.a.ReconfTime(wr.Res),
			freeAt:     wr.Avail,
			loaded:     wr.Loaded,
			lastTask:   -1,
			pinned:     -1,
		}
		if wr.Pinned >= 0 {
			t := wr.Pinned
			if t >= st.g.N() {
				return fmt.Errorf("isk: warm region %d pins task %d, graph has %d tasks", i, t, st.g.N())
			}
			task := st.g.Tasks[t]
			if wr.PinnedImpl < 0 || wr.PinnedImpl >= len(task.Impls) {
				return fmt.Errorf("isk: warm region %d pins task %d to implementation %d, task has %d", i, t, wr.PinnedImpl, len(task.Impls))
			}
			im := task.Impls[wr.PinnedImpl]
			if im.Kind != taskgraph.HW {
				return fmt.Errorf("isk: warm region %d pins task %d to software impl %q", i, t, im.Name)
			}
			if !im.Res.Fits(wr.Res) {
				return fmt.Errorf("isk: warm region %d (%v) cannot hold pinned impl %q (%v)", i, wr.Res, im.Name, im.Res)
			}
			r.pinned = t
			if st.pins == nil {
				st.pins = make(map[int]pin)
			}
			st.pins[t] = pin{region: i, impl: wr.PinnedImpl}
		}
		st.regions = append(st.regions, r)
		st.usedRes = st.usedRes.Add(st.footprint(wr.Res))
	}
	return nil
}

// locked reports whether region r is reserved for a pinned task that has
// not been scheduled yet: until the pin executes, no other task may enter
// the region (the commit-boundary contract requires the pinned task first).
func (st *timeline) locked(r *iskRegion) bool {
	return r.pinned >= 0 && st.impl[r.pinned] < 0
}
