package isk

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func sw(name string, t int64) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.SW, Time: t}
}

func hw(name string, t int64, clb int) taskgraph.Implementation {
	return taskgraph.Implementation{Name: name, Kind: taskgraph.HW, Time: t, Res: resources.Vec(clb, 0, 0)}
}

func mustRun(t *testing.T, g *taskgraph.Graph, a *arch.Architecture, opts Options) (*schedule.Schedule, *Stats) {
	t.Helper()
	sch, stats, err := Schedule(g, a, opts)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if errs := schedule.Check(sch); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
		t.Fatalf("invalid %s schedule", sch.Algorithm)
	}
	return sch, stats
}

func TestSingleTask(t *testing.T) {
	g := taskgraph.New("one")
	g.AddTask("t0", sw("s", 1000), hw("h", 100, 500))
	sch, stats := mustRun(t, g, arch.ZedBoard(), Options{K: 1})
	if sch.Makespan != 100 || sch.Algorithm != "IS-1" {
		t.Errorf("got %s", sch.Summary())
	}
	if stats.Windows != 1 {
		t.Errorf("windows = %d", stats.Windows)
	}
}

func TestGreedyPicksFastImplementation(t *testing.T) {
	// §IV: IS-1 greedily picks the locally fastest implementation even
	// when it hogs the device.
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(1000, 10, 10),
	}
	g := taskgraph.New("greedy")
	g.AddTask("t1", sw("t1_sw", 100000), hw("t1_big", 300, 900), hw("t1_small", 500, 450))
	sch, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true})
	if got := sch.Impl(0).Name; got != "t1_big" {
		t.Errorf("IS-1 picked %q, want the locally fastest t1_big", got)
	}
}

func TestChainSharesRegionWithReconfigs(t *testing.T) {
	// Unlike PA's window heuristics, IS-k time-shares a region for a chain
	// when no second region fits, paying reconfigurations.
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 5, 5),
	}
	g := taskgraph.New("chain")
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 50000), hw("h", 100, 600))
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	sch, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true})
	if sch.HWTaskCount() != 3 || len(sch.Regions) != 1 {
		t.Fatalf("want 3 HW tasks in one region: %s", sch.Summary())
	}
	if len(sch.Reconfs) != 2 {
		t.Fatalf("want 2 reconfigurations, got %d", len(sch.Reconfs))
	}
	rt := a.ReconfTime(resources.Vec(600, 0, 0))
	if want := 3*100 + 2*rt; sch.Makespan != want {
		t.Errorf("makespan = %d, want %d", sch.Makespan, want)
	}
}

func TestModuleReuseSkipsReconfig(t *testing.T) {
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 5, 5),
	}
	g := taskgraph.New("reuse")
	shared := hw("shared", 100, 600)
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 50000), shared)
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	sch, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true, ModuleReuse: true})
	if sch.HWTaskCount() != 3 || len(sch.Reconfs) != 0 {
		t.Fatalf("module reuse should drop all reconfigurations: %s", sch.Summary())
	}
	if sch.Makespan != 300 {
		t.Errorf("makespan = %d, want 300", sch.Makespan)
	}
}

func TestPrefetching(t *testing.T) {
	// Two region-sharing HW tasks separated by a long software task: the
	// reconfiguration must be prefetched during the software execution,
	// hiding its latency entirely.
	a := &arch.Architecture{
		Name: "small", Processors: 1, RecFreq: 3200, Bits: resources.DefaultBits,
		MaxRes: resources.Vec(700, 5, 5),
	}
	g := taskgraph.New("prefetch")
	g.AddTask("t0", sw("s0", 50000), hw("h0", 100, 600))
	g.AddTask("t1", sw("s1", 2000))
	g.AddTask("t2", sw("s2", 50000), hw("h2", 100, 600))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	sch, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true, Prefetch: true})
	if sch.Makespan != 2200 {
		t.Errorf("makespan = %d, want 2200 (reconfiguration hidden)", sch.Makespan)
	}
	// Without prefetching the reconfiguration waits for t1 to finish and
	// lands on the critical path.
	noPf, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true})
	rt := a.ReconfTime(resources.Vec(600, 0, 0))
	if noPf.Makespan != 2200+rt {
		t.Errorf("no-prefetch makespan = %d, want %d", noPf.Makespan, 2200+rt)
	}
	if len(sch.Reconfs) != 1 {
		t.Fatalf("want 1 reconfiguration, got %d", len(sch.Reconfs))
	}
	rc := sch.Reconfs[0]
	if rc.Start < sch.Tasks[0].End || rc.End > sch.Tasks[2].Start {
		t.Errorf("reconfiguration [%d,%d) not prefetched between t0 and t2", rc.Start, rc.End)
	}
}

func TestIS5AtLeastAsGoodAsIS1(t *testing.T) {
	a := arch.ZedBoard()
	badCases := 0
	for seed := int64(0); seed < 5; seed++ {
		g := genGraph(t, benchgen.Config{Tasks: 25, Seed: 300 + seed})
		s1, _ := mustRun(t, g, a, Options{K: 1, SkipFloorplan: true})
		s5, _ := mustRun(t, g, a, Options{K: 5, SkipFloorplan: true})
		if s5.Makespan > s1.Makespan {
			badCases++
		}
	}
	// The window optimum sees k tasks at once; it should essentially never
	// lose to pure greedy (the iterative scheme is not globally monotone,
	// so allow a rare exception).
	if badCases > 1 {
		t.Errorf("IS-5 worse than IS-1 on %d/5 instances", badCases)
	}
}

func TestSuiteValidity(t *testing.T) {
	a := arch.ZedBoard()
	for _, n := range []int{10, 40, 80} {
		for idx := 0; idx < 2; idx++ {
			g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(500 + n + idx)})
			for _, k := range []int{1, 5} {
				sch, _ := mustRun(t, g, a, Options{K: k, SkipFloorplan: true, ModuleReuse: true})
				if sch.Makespan <= 0 {
					t.Fatalf("n=%d k=%d: empty schedule", n, k)
				}
			}
		}
	}
}

func TestFloorplannedRun(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 77})
	sch, stats := mustRun(t, g, a, Options{K: 1})
	if len(stats.Placements) != len(sch.Regions) {
		t.Fatalf("placements %d for %d regions", len(stats.Placements), len(sch.Regions))
	}
}

func TestDeterminism(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 12})
	s1, _ := mustRun(t, g, a, Options{K: 5, SkipFloorplan: true})
	s2, _ := mustRun(t, g, a, Options{K: 5, SkipFloorplan: true})
	if s1.Makespan != s2.Makespan {
		t.Error("IS-k not deterministic")
	}
}

func TestInvalidInputs(t *testing.T) {
	g := taskgraph.New("bad")
	g.AddTask("t")
	if _, _, err := Schedule(g, arch.ZedBoard(), Options{}); err == nil {
		t.Error("invalid graph accepted")
	}
	g2 := taskgraph.New("ok")
	g2.AddTask("t", sw("s", 10))
	noProc := arch.ZedBoard()
	noProc.Processors = 0
	if _, _, err := Schedule(g2, noProc, Options{SkipFloorplan: true}); err == nil {
		t.Error("SW task with zero processors accepted")
	}
}
