package isk

import (
	"sort"

	"resched/internal/arch"
	"resched/internal/floorplan"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// iskRegion is one reconfigurable region of the partial schedule.
type iskRegion struct {
	id         int
	res        resources.Vector
	reconfTime int64
	// freeAt is when the last execution in the region ends.
	freeAt int64
	// loaded is the implementation name currently configured.
	loaded string
	// lastTask is the last task executed here (-1 right after creation).
	lastTask int
	// pinned is the task the committed prefix reserved this region for
	// (its reconfiguration already ran), -1 when unreserved. Until the
	// pinned task is scheduled no other task may enter the region.
	pinned int
}

// interval is a busy slot on the single reconfiguration controller.
type interval struct{ start, end int64 }

// timeline is the committed partial schedule IS-k extends window by window.
type timeline struct {
	g           *taskgraph.Graph
	a           *arch.Architecture
	maxRes      resources.Vector
	cellSize    resources.Vector
	moduleReuse bool
	prefetch    bool
	exhaustive  bool

	impl   []int // -1 while unscheduled
	target []schedule.Target
	start  []int64
	end    []int64
	// release[t], when non-nil, is the earliest start the committed prefix
	// allows for t (cross-boundary data dependencies); folded into ready().
	release []int64
	// pins maps a task to its forced warm-region mapping (see seedWarm).
	pins map[int]pin

	regions    []*iskRegion
	procFree   []int64
	usedRes    resources.Vector
	footprints map[resources.Vector]resources.Vector
	makespan   int64
	sumEnds    int64
	// tails[t] is the longest chain of minimal execution times strictly
	// below t; lower bounds the schedule completion when t ends at end[t].
	tails []int64
	// lb is the window-search objective: max over scheduled tasks of
	// end[t] + tails[t] — the completion lower bound ref [6]'s MILP
	// effectively minimises when optimising overall execution time.
	lb int64

	// busy slots per reconfiguration controller, each sorted by start.
	slots [][]interval
	// committed reconfiguration records.
	reconfs []schedule.Reconfiguration
}

func newTimeline(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector, moduleReuse, prefetch bool) *timeline {
	n := g.N()
	st := &timeline{
		g:           g,
		a:           a,
		maxRes:      maxRes,
		moduleReuse: moduleReuse,
		prefetch:    prefetch,
		impl:        make([]int, n),
		target:      make([]schedule.Target, n),
		start:       make([]int64, n),
		end:         make([]int64, n),
		procFree:    make([]int64, a.Processors),
	}
	for k := range st.cellSize {
		st.cellSize[k] = 1
		if a.Fabric != nil && a.Fabric.UnitsPerCell[k] > 0 {
			st.cellSize[k] = a.Fabric.UnitsPerCell[k]
		}
	}
	for t := range st.impl {
		st.impl[t] = -1
	}
	st.slots = make([][]interval, a.ReconfiguratorCount())
	return st
}

// footprint estimates the capacity a region will consume once placed (see
// sched.state.footprint for the rationale): the content of the minimal-area
// placement rectangle when a fabric is known, cell-rounded counts otherwise.
func (st *timeline) footprint(res resources.Vector) resources.Vector {
	if st.a.Fabric != nil {
		if fp, ok := st.footprints[res]; ok {
			return fp
		}
		fp := floorplan.PlacementFootprint(st.a.Fabric, res)
		if st.footprints == nil {
			st.footprints = make(map[resources.Vector]resources.Vector)
		}
		st.footprints[res] = fp
		return fp
	}
	for k, c := range res {
		cell := st.cellSize[k]
		res[k] = (c + cell - 1) / cell * cell
	}
	return res
}

// ready returns the dependency-induced earliest start of t, including the
// communication time of each incoming edge.
func (st *timeline) ready(t int) int64 {
	var r int64
	if st.release != nil {
		r = st.release[t]
	}
	for _, p := range st.g.Pred(t) {
		if st.impl[p] < 0 {
			return -1 // predecessor not scheduled yet
		}
		if f := st.end[p] + st.g.EdgeComm(p, t); f > r {
			r = f
		}
	}
	return r
}

// reconfLowerBound gives the earliest instant a reconfiguration of region r
// for a task with the given ready time may begin: the region must be idle,
// and without prefetching the reconfiguration is issued only at task
// dispatch, i.e. once the task's dependencies have completed.
func (st *timeline) reconfLowerBound(r *iskRegion, ready int64) int64 {
	lo := r.freeAt
	if !st.prefetch && ready > lo {
		lo = ready
	}
	return lo
}

// slotOn finds the earliest start ≥ lo of a free slot of the given length
// on controller c.
func (st *timeline) slotOn(c int, lo, dur int64) int64 {
	s := lo
	for _, iv := range st.slots[c] {
		if iv.end <= s {
			continue
		}
		if iv.start >= s+dur {
			break
		}
		s = iv.end
	}
	return s
}

// slotFor finds the earliest start ≥ lo of a free slot of the given length
// across all reconfiguration controllers, returning the controller too.
func (st *timeline) slotFor(lo, dur int64) (int, int64) {
	bestC, bestS := 0, st.slotOn(0, lo, dur)
	for c := 1; c < len(st.slots); c++ {
		if s := st.slotOn(c, lo, dur); s < bestS {
			bestC, bestS = c, s
		}
	}
	return bestC, bestS
}

// insertSlot reserves [start, start+dur) on controller c and returns the
// insertion index for undo.
func (st *timeline) insertSlot(c int, start, dur int64) int {
	tl := st.slots[c]
	i := sort.Search(len(tl), func(k int) bool { return tl[k].start >= start })
	tl = append(tl, interval{})
	copy(tl[i+1:], tl[i:])
	tl[i] = interval{start, start + dur}
	st.slots[c] = tl
	return i
}

// removeSlot undoes insertSlot on controller c.
func (st *timeline) removeSlot(c, i int) {
	tl := st.slots[c]
	copy(tl[i:], tl[i+1:])
	st.slots[c] = tl[:len(tl)-1]
}

// emit converts the committed timeline into a schedule.
func (st *timeline) emit(algorithm string, moduleReuse bool) *schedule.Schedule {
	sch := schedule.New(st.g, st.a)
	sch.Algorithm = algorithm
	sch.ModuleReuse = moduleReuse
	for _, r := range st.regions {
		sch.AddRegion(r.res)
	}
	for t := 0; t < st.g.N(); t++ {
		sch.Tasks[t] = schedule.Assignment{
			Impl:   st.impl[t],
			Target: st.target[t],
			Start:  st.start[t],
			End:    st.end[t],
		}
	}
	sch.Reconfs = append([]schedule.Reconfiguration(nil), st.reconfs...)
	sch.ComputeMakespan()
	return sch
}
