// Package isk implements the IS-k baseline scheduler the paper compares
// against (Deiana et al., ReConFig 2015 — ref [6]): an iterative approach
// that optimally schedules the next k tasks at a time, given all previous
// decisions, on an architecture with processor cores and a partially
// reconfigurable FPGA. The original uses a Gurobi MILP per iteration; this
// implementation substitutes an exact branch-and-bound over the window's
// decisions (implementation choice, region/processor mapping, execution
// order), which returns the same window optima without the external solver.
//
// Supported features mirror ref [6]: reconfigurations as explicit tasks on
// a single reconfiguration controller, reconfiguration prefetching (a
// region may be reconfigured any time between its previous execution and
// the next task's start), module reuse (consecutive tasks in a region
// sharing an implementation skip the reconfiguration), and per-task
// implementation menus spanning hardware and software.
package isk

import (
	"fmt"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// Options configure an IS-k run.
type Options struct {
	// K is the window size (IS-1, IS-5, ... of the paper). Default 1.
	K int
	// ModuleReuse enables reuse of loaded modules (the paper's §VII-A
	// notes IS-k exploits it on the shared-implementation suite).
	ModuleReuse bool
	// Prefetch allows a reconfiguration to be scheduled before the
	// outgoing task's dependencies complete, exploiting idle ICAP slots.
	// Ref [6] (the IS-k the paper compares against) does not claim this
	// feature — the paper attributes it to ref [8] — so it defaults to
	// off; it is kept as an option for ablation studies.
	Prefetch bool
	// MaxWindowNodes caps the branch-and-bound nodes per window; on
	// overflow the best incumbent is kept (0 = 50 000). The cap plays the
	// role of the MILP time limit in ref [6].
	MaxWindowNodes int
	// Exhaustive disables the per-implementation region shortlist so the
	// window search enumerates every compatible region. Package exact uses
	// this with K = |T| to search the whole non-delay schedule space.
	Exhaustive bool
	// SkipFloorplan omits the floorplanning feasibility loop.
	SkipFloorplan bool
	// Floorplan configures the feasibility query.
	Floorplan floorplan.Options
	// Initial, when non-nil and non-empty, is the warm platform state the
	// run schedules from (schedule.PlatformState, produced by
	// schedule.Freeze): warm regions become committed regions 0..n-1, their
	// busy-until floors seed the timelines, release floors feed ready(),
	// and pinned tasks execute first in their regions with the committed
	// implementation. A nil or Empty state is the historical t=0 run.
	Initial *schedule.PlatformState
	// MaxRetries bounds the shrink-and-restart loop (default 20), the
	// same §V-H policy the paper applies around its schedulers.
	MaxRetries int
	// ShrinkFactor is the virtual capacity reduction per retry
	// (default 0.93: retries are cheap, so shrink gently).
	ShrinkFactor float64
	// Budget, when non-nil, bounds the whole run: it is checked at every
	// attempt boundary, charged per node inside the window branch-and-bound
	// and inside floorplan queries, so a cancel lands in milliseconds. On
	// exhaustion Schedule returns an error matching budget.ErrExhausted.
	Budget *budget.Budget
	// Faults, when armed, is forwarded to the floorplanner (and its MILP
	// engine) to drive failure paths deterministically in tests.
	Faults *faultinject.Set
	// Trace, when non-nil, records spans for the run, each shrink-retry
	// attempt and each window solve (with its branch-and-bound node count),
	// plus window/node counters (package obs). A nil trace is a no-op and
	// recording never perturbs the window search.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = 1
	}
	if o.MaxWindowNodes == 0 {
		o.MaxWindowNodes = 50000
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 20
	}
	if o.ShrinkFactor == 0 {
		o.ShrinkFactor = 0.93
	}
	return o
}

// Stats describes an IS-k run.
type Stats struct {
	// Windows is the number of k-task windows solved.
	Windows int
	// Nodes is the total branch-and-bound nodes across windows.
	Nodes int
	// SchedulingTime and FloorplanTime split the runtime as in Table I.
	SchedulingTime time.Duration
	FloorplanTime  time.Duration
	// Retries counts shrink-and-restart rounds.
	Retries int
	// Placements is the verified floorplan (empty when SkipFloorplan).
	Placements []floorplan.Placement
}

// Schedule runs IS-k on the instance.
func Schedule(g *taskgraph.Graph, a *arch.Architecture, opts Options) (*schedule.Schedule, *Stats, error) {
	opts = opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}
	runSpan := opts.Trace.Start("isk.run", obs.Int("k", int64(opts.K)))
	defer runSpan.End()
	if opts.Floorplan.Trace == nil {
		opts.Floorplan.Trace = opts.Trace
	}
	if opts.Floorplan.Budget == nil {
		opts.Floorplan.Budget = opts.Budget
	}
	if opts.Floorplan.Faults == nil {
		opts.Floorplan.Faults = opts.Faults
	}
	stats := &Stats{}
	maxRes := a.MaxRes
	for attempt := 0; ; attempt++ {
		if err := opts.Budget.Check(); err != nil {
			return nil, nil, fmt.Errorf("isk: attempt %d: %w", attempt, err)
		}
		var att *obs.Span
		if opts.Trace.Enabled() {
			att = opts.Trace.Start("isk.attempt",
				obs.Int("attempt", int64(attempt)), obs.Str("maxres", maxRes.String()))
		}
		begin := time.Now()
		sch, err := run(g, a, maxRes, opts, stats)
		stats.SchedulingTime += time.Since(begin)
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		if opts.SkipFloorplan {
			att.End(obs.Str("outcome", "unfloorplanned"))
			return sch, stats, nil
		}
		fabric, err := a.RequireFabric()
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, fmt.Errorf("isk: floorplanning requested: %w", err)
		}
		regionRes := make([]resources.Vector, len(sch.Regions))
		for i, r := range sch.Regions {
			regionRes[i] = r.Res
		}
		fp := opts.Trace.Start("isk.floorplan")
		fpBegin := time.Now()
		res, err := floorplan.Solve(fabric, regionRes, opts.Floorplan)
		stats.FloorplanTime += time.Since(fpBegin)
		fp.End()
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		if res.Feasible {
			stats.Placements = res.Placements
			att.End(obs.Str("outcome", "feasible"))
			return sch, stats, nil
		}
		if attempt >= opts.MaxRetries {
			att.End(obs.Str("outcome", "infeasible"))
			return nil, nil, fmt.Errorf("isk: %w after %d shrink retries", floorplan.ErrInfeasible, attempt)
		}
		stats.Retries++
		opts.Trace.Count("isk.retries", 1)
		att.End(obs.Str("outcome", "infeasible-shrink"))
		for k := range maxRes {
			maxRes[k] = int(float64(maxRes[k]) * opts.ShrinkFactor)
		}
	}
}

// run executes the iterative scheme on a fixed virtual capacity.
func run(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector, opts Options, stats *Stats) (*schedule.Schedule, error) {
	st := newTimeline(g, a, maxRes, opts.ModuleReuse, opts.Prefetch)
	st.exhaustive = opts.Exhaustive
	st.tails = tails(g)
	if err := st.seedWarm(opts.Initial); err != nil {
		return nil, err
	}
	order, err := priorityOrder(g)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < len(order); lo += opts.K {
		hi := lo + opts.K
		if hi > len(order) {
			hi = len(order)
		}
		window := order[lo:hi]
		stats.Windows++
		opts.Trace.Count("isk.windows", 1)
		w := opts.Trace.Start("isk.window",
			obs.Int("window", int64(lo/opts.K)), obs.Int("tasks", int64(len(window))))
		nodesBefore := stats.Nodes
		if err := st.solveWindow(window, opts.MaxWindowNodes, &stats.Nodes, opts.Budget); err != nil {
			w.End(obs.Str("outcome", "error"))
			return nil, err
		}
		w.End(obs.Int("nodes", int64(stats.Nodes-nodesBefore)))
		opts.Trace.Count("isk.nodes", int64(stats.Nodes-nodesBefore))
		// The per-window node distribution is the tail-latency signal for
		// IS-k: one hard window dominates the runtime long before the total
		// node counter shows it.
		opts.Trace.Observe("isk.window_nodes", float64(stats.Nodes-nodesBefore))
	}
	return st.emit(fmt.Sprintf("IS-%d", opts.K), opts.ModuleReuse), nil
}

// tails computes, for every task, the longest chain of minimal execution
// times strictly below it in the DAG.
func tails(g *taskgraph.Graph) []int64 {
	topo, err := g.TopoOrder()
	if err != nil {
		return make([]int64, g.N()) // validated earlier; defensive
	}
	out := make([]int64, g.N())
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, w := range g.Succ(v) {
			if c := out[w] + g.Tasks[w].MinTime() + g.EdgeComm(v, w); c > out[v] {
				out[v] = c
			}
		}
	}
	return out
}

// priorityOrder lists the tasks in the order windows consume them: by
// longest-path depth, ties broken by a larger downstream critical length
// first, then by ID — the usual list-scheduling priority of ref [6].
func priorityOrder(g *taskgraph.Graph) ([]int, error) {
	depth, err := g.Depth()
	if err != nil {
		return nil, err
	}
	// Downstream rank with minimal execution times.
	topo, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	rank := make([]int64, g.N())
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		for _, w := range g.Succ(v) {
			if r := rank[w]; r > rank[v] {
				rank[v] = r
			}
		}
		rank[v] += g.Tasks[v].MinTime()
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			x, y := order[j], order[j-1]
			less := depth[x] < depth[y] ||
				(depth[x] == depth[y] && rank[x] > rank[y]) ||
				(depth[x] == depth[y] && rank[x] == rank[y] && x < y)
			if !less {
				break
			}
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order, nil
}
