package isk

import (
	"reflect"
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// TestWarmEmptyIdentical pins the offline-unchanged contract for IS-k.
func TestWarmEmptyIdentical(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 8, Seed: 4})
	a := arch.ZedBoard()
	cold, _, err := Schedule(g, a, Options{K: 2, SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, _, err := Schedule(g, a, Options{K: 2, SkipFloorplan: true, Initial: &schedule.PlatformState{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Error("empty initial state changed the IS-k schedule")
	}
}

// TestWarmPinnedAndFloors drives a pin, a release floor, a processor floor
// and an in-flight controller slot through one warm IS-1 run and validates
// the stitched contract with CheckAgainst.
func TestWarmPinnedAndFloors(t *testing.T) {
	g := taskgraph.New("warm")
	g.AddTask("t0", sw("s0", 500), hw("h0", 60, 400))
	g.AddTask("t1", sw("s1", 80))
	a := arch.ZedBoard()
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{
			Res: resources.Vec(400, 0, 0), Avail: 90, Loaded: "h0",
			Pinned: 0, PinnedImpl: 1,
		}},
		ProcAvail:   make([]int64, a.Processors),
		ReconfAvail: []int64{120},
		Release:     []int64{0, 40},
	}
	for p := range ps.ProcAvail {
		ps.ProcAvail[p] = 30
	}
	sch, _, err := Schedule(g, a, Options{K: 1, SkipFloorplan: true, Initial: ps})
	if err != nil {
		t.Fatal(err)
	}
	if errs := schedule.CheckAgainst(ps, sch); len(errs) > 0 {
		t.Fatalf("warm IS-1 schedule invalid: %v", errs)
	}
	if sch.Tasks[0].Target.Kind != schedule.OnRegion || sch.Tasks[0].Target.Index != 0 {
		t.Fatalf("pinned task not in warm region 0: %+v", sch.Tasks[0])
	}
	if sch.Tasks[0].Impl != 1 || sch.Tasks[0].Start != 90 {
		t.Errorf("pinned task %+v, want impl 1 starting at 90", sch.Tasks[0])
	}
	if sch.Tasks[1].Start < 40 {
		t.Errorf("t1 starts at %d, release floor is 40", sch.Tasks[1].Start)
	}
	for _, rc := range sch.Reconfs {
		if rc.Start < 120 {
			t.Errorf("reconfiguration %+v overlaps the in-flight slot [0,120)", rc)
		}
	}
}

// TestWarmBoundaryReconfEmitted forces a tail task into an unpinned warm
// region holding a stale module: the plan must carry InTask = -1.
func TestWarmBoundaryReconfEmitted(t *testing.T) {
	g := taskgraph.New("boundary")
	// Software is so slow the window optimum always lands on hardware.
	g.AddTask("t0", sw("s0", 5000000), hw("h0", 100, 400))
	a := arch.ZedBoard()
	a.MaxRes = resources.Vec(450, 0, 0) // only the warm region fits
	a.Fabric = nil
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{Res: resources.Vec(400, 0, 0), Avail: 25, Loaded: "other", Pinned: -1}},
	}
	sch, _, err := Schedule(g, a, Options{K: 1, SkipFloorplan: true, Initial: ps})
	if err != nil {
		t.Fatal(err)
	}
	if errs := schedule.CheckAgainst(ps, sch); len(errs) > 0 {
		t.Fatalf("warm schedule invalid: %v", errs)
	}
	if len(sch.Reconfs) != 1 || sch.Reconfs[0].InTask != -1 {
		t.Fatalf("expected one boundary reconfiguration, got %v", sch.Reconfs)
	}
	if sch.Reconfs[0].Start < 25 {
		t.Errorf("boundary reconfiguration %+v starts before the region falls idle at 25", sch.Reconfs[0])
	}
}

// TestWarmPinValidation rejects a malformed pin.
func TestWarmPinValidation(t *testing.T) {
	g := taskgraph.New("bad")
	g.AddTask("t0", sw("s0", 10))
	ps := &schedule.PlatformState{
		Regions: []schedule.WarmRegion{{Res: resources.Vec(400, 0, 0), Pinned: 0, PinnedImpl: 0}},
	}
	_, _, err := Schedule(g, arch.ZedBoard(), Options{SkipFloorplan: true, Initial: ps})
	if err == nil || !strings.Contains(err.Error(), "software impl") {
		t.Fatalf("want software-pin rejection, got %v", err)
	}
}
