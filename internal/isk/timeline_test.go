package isk

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func testTimeline(t *testing.T, prefetch bool) *timeline {
	t.Helper()
	g := taskgraph.New("g")
	g.AddTask("a", sw("a_sw", 100), hw("a_hw", 50, 500))
	g.AddTask("b", sw("b_sw", 100), hw("b_hw", 50, 500))
	mustEdge(t, g, 0, 1)
	a := arch.ZedBoard()
	return newTimeline(g, a, a.MaxRes, false, prefetch)
}

func TestSlotOperations(t *testing.T) {
	st := testTimeline(t, true)
	// Empty reconfigurator: first fit at the lower bound.
	if _, got := st.slotFor(10, 5); got != 10 {
		t.Errorf("slotFor on empty = %d", got)
	}
	i1 := st.insertSlot(0, 10, 5) // [10,15)
	i2 := st.insertSlot(0, 20, 5) // [20,25)
	if i1 != 0 || i2 != 1 {
		t.Errorf("insertion indices %d, %d", i1, i2)
	}
	// Gap between the slots fits exactly 5.
	if _, got := st.slotFor(10, 5); got != 15 {
		t.Errorf("slotFor gap = %d, want 15", got)
	}
	// Too long for the gap: lands after the second slot.
	if _, got := st.slotFor(10, 6); got != 25 {
		t.Errorf("slotFor long = %d, want 25", got)
	}
	// Insert into the gap, then remove it again.
	i3 := st.insertSlot(0, 15, 5)
	if i3 != 1 {
		t.Errorf("gap insertion index = %d", i3)
	}
	st.removeSlot(0, i3)
	if len(st.slots[0]) != 2 || st.slots[0][0].start != 10 || st.slots[0][1].start != 20 {
		t.Errorf("removeSlot broke the timeline: %+v", st.slots[0])
	}
}

func TestSlotForMultiController(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", sw("a_sw", 100))
	a := arch.ZedBoard()
	a.Reconfigurators = 2
	st := newTimeline(g, a, a.MaxRes, false, true)
	if len(st.slots) != 2 {
		t.Fatalf("expected 2 controller timelines, got %d", len(st.slots))
	}
	// Fill controller 0 at [0, 100): the second request lands on
	// controller 1 at the lower bound instead of queueing.
	st.insertSlot(0, 0, 100)
	c, s := st.slotFor(0, 50)
	if c != 1 || s != 0 {
		t.Errorf("slotFor = controller %d at %d, want controller 1 at 0", c, s)
	}
}

func TestReconfLowerBound(t *testing.T) {
	pf := testTimeline(t, true)
	r := &iskRegion{freeAt: 100}
	// Prefetching: bounded by the region only.
	if got := pf.reconfLowerBound(r, 500); got != 100 {
		t.Errorf("prefetch lower bound = %d, want 100", got)
	}
	nopf := testTimeline(t, false)
	// No prefetching: also waits for the task's readiness.
	if got := nopf.reconfLowerBound(r, 500); got != 500 {
		t.Errorf("no-prefetch lower bound = %d, want 500", got)
	}
	if got := nopf.reconfLowerBound(r, 50); got != 100 {
		t.Errorf("no-prefetch bound below freeAt = %d, want 100", got)
	}
}

func TestReadyWithComm(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", sw("a_sw", 100))
	g.AddTask("b", sw("b_sw", 100))
	if err := g.AddEdgeComm(0, 1, 77); err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	st := newTimeline(g, a, a.MaxRes, false, false)
	if got := st.ready(1); got != -1 {
		t.Errorf("ready before predecessor scheduled = %d", got)
	}
	st.impl[0] = 0
	st.end[0] = 250
	if got := st.ready(1); got != 327 {
		t.Errorf("ready = %d, want 327 (end 250 + comm 77)", got)
	}
}

func TestApplyUndoRoundTrip(t *testing.T) {
	st := testTimeline(t, true)
	snapshot := func() (int, resources.Vector, int64, int64) {
		return len(st.regions), st.usedRes, st.makespan, st.sumEnds
	}
	r0, u0, m0, s0 := snapshot()

	opts := st.options(0)
	if len(opts) == 0 {
		t.Fatal("no options for task 0")
	}
	for _, o := range opts {
		ap, err := st.apply(o, false)
		if err != nil {
			t.Fatalf("apply: %v", err)
		}
		if st.impl[0] != o.impl {
			t.Fatalf("apply did not set impl")
		}
		ap.undo()
		if st.impl[0] != -1 {
			t.Fatalf("undo did not clear impl")
		}
		r1, u1, m1, s1 := snapshot()
		if r0 != r1 || u0 != u1 || m0 != m1 || s0 != s1 {
			t.Fatalf("undo left state dirty for option %+v", o)
		}
		for c := range st.slots {
			if len(st.slots[c]) != 0 {
				t.Fatalf("undo left controller slots: %+v", st.slots[c])
			}
		}
	}
}

func TestOptionsShortlist(t *testing.T) {
	// With many compatible regions, the per-implementation shortlist keeps
	// only the reuse match and the two earliest-finishing candidates.
	g := taskgraph.New("g")
	g.AddTask("seed0", sw("x_sw", 100), hw("mod_a", 50, 500))
	g.AddTask("seed1", sw("y_sw", 100), hw("mod_b", 50, 500))
	g.AddTask("seed2", sw("z_sw", 100), hw("mod_c", 50, 500))
	g.AddTask("cand", sw("c_sw", 100), hw("mod_a", 50, 400))
	a := arch.ZedBoard()
	st := newTimeline(g, a, a.MaxRes, true, true)
	st.tails = make([]int64, g.N())
	// Seed three regions by applying new-region options for tasks 0–2.
	for task := 0; task < 3; task++ {
		st.apply(option{task: task, impl: 1, kind: optNewRegion}, false)
	}
	if len(st.regions) != 3 {
		t.Fatalf("%d regions seeded", len(st.regions))
	}
	opts := st.options(3)
	var existing, reuse, newRegion, swOpts int
	for _, o := range opts {
		switch o.kind {
		case optExisting:
			existing++
		case optReuse:
			reuse++
		case optNewRegion:
			newRegion++
		case optSW:
			swOpts++
		}
	}
	if reuse != 1 {
		t.Errorf("reuse options = %d, want 1 (region loaded with mod_a)", reuse)
	}
	if existing > 2 {
		t.Errorf("existing options = %d, want ≤ 2 (shortlist)", existing)
	}
	if newRegion != 1 || swOpts != 1 {
		t.Errorf("option mix: new=%d sw=%d", newRegion, swOpts)
	}
}

func TestPriorityOrderRespectsDepth(t *testing.T) {
	g := taskgraph.New("g")
	for i := 0; i < 4; i++ {
		g.AddTask("t", sw("s", 100))
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	// Task 3 independent.
	order, err := priorityOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, 4)
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[0] < pos[1] && pos[1] < pos[2]) {
		t.Errorf("depth order violated: %v", order)
	}
}

func TestTailsComputation(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", sw("s", 100))
	g.AddTask("b", sw("s", 200))
	g.AddTask("c", sw("s", 300))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	ts := tails(g)
	// tail(a) = 200 + 300, tail(b) = 300, tail(c) = 0.
	if ts[0] != 500 || ts[1] != 300 || ts[2] != 0 {
		t.Errorf("tails = %v", ts)
	}
	// With communication on the edges the tails include it.
	g2 := taskgraph.New("g2")
	g2.AddTask("a", sw("s", 100))
	g2.AddTask("b", sw("s", 200))
	if err := g2.AddEdgeComm(0, 1, 40); err != nil {
		t.Fatal(err)
	}
	if ts := tails(g2); ts[0] != 240 {
		t.Errorf("comm tail = %v", ts)
	}
}

func TestEmitRoundTrip(t *testing.T) {
	st := testTimeline(t, true)
	st.tails = make([]int64, st.g.N())
	var nodes int
	if err := st.solveWindow([]int{0}, 1000, &nodes, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.solveWindow([]int{1}, 1000, &nodes, nil); err != nil {
		t.Fatal(err)
	}
	sch := st.emit("IS-1", false)
	if errs := schedule.Check(sch); len(errs) > 0 {
		t.Fatalf("emitted schedule invalid: %v", errs)
	}
	if sch.Algorithm != "IS-1" || sch.Makespan != 100 {
		t.Errorf("emit: %s", sch.Summary())
	}
}
