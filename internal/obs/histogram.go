package obs

import "sort"

// Histograms use one fixed, logarithmic bucket ladder shared by every
// metric: the classic 1-2-5 decade sequence (1, 2, 5, 10, 20, 50, ...)
// spanning twelve decades. Fixed boundaries keep merged and double-run
// histograms comparable bucket-for-bucket — two runs observing the same
// values produce DeepEqual snapshots, which is what lets
// TestTracingDeterminism extend to distributions — and the 1-2-5 ladder
// bounds quantile interpolation error to the bucket ratio (at most 2.5×)
// while needing only 37 buckets for anything from single nodes to hours of
// microseconds.
//
// Values are assigned to buckets by binary search over the precomputed
// boundaries, never by floating-point logarithms, so bucket placement is
// bit-reproducible across platforms.
var bucketBounds = func() []float64 {
	var bounds []float64
	decade := 1.0
	for d := 0; d < 12; d++ {
		bounds = append(bounds, decade, 2*decade, 5*decade)
		decade *= 10
	}
	bounds = append(bounds, decade)
	return bounds
}()

// histogram is the internal accumulator behind Trace.Observe: exact
// count/sum/min/max plus the fixed-boundary bucket counts. Guarded by the
// trace mutex.
type histogram struct {
	count    int64
	sum      float64
	min, max float64
	// buckets[i] counts observations v with bucketBounds[i-1] <= v <
	// bucketBounds[i] (bucket 0 is v < bucketBounds[0]); the final slot
	// counts overflow beyond the last boundary.
	buckets []int64
}

func (h *histogram) observe(v float64) {
	if h.buckets == nil {
		h.buckets = make([]int64, len(bucketBounds)+1)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	i := sort.SearchFloat64s(bucketBounds, v)
	// SearchFloat64s returns the first boundary >= v; a value sitting on a
	// boundary belongs to the bucket above it (lower bound inclusive), so
	// step past boundaries not strictly greater than v.
	if i < len(bucketBounds) && bucketBounds[i] <= v {
		i++
	}
	h.buckets[i]++
}

// Bucket is one populated histogram bucket in a snapshot: Count
// observations fell in [previous boundary, Le), with Le = +Inf represented
// by the Overflow flag on the last boundary.
type Bucket struct {
	// Le is the bucket's exclusive upper boundary. For the overflow bucket
	// it is the largest finite boundary and Overflow is set.
	Le float64 `json:"le"`
	// Count is the number of observations in this bucket.
	Count int64 `json:"count"`
	// Overflow marks the bucket of values at or beyond the last boundary.
	Overflow bool `json:"overflow,omitempty"`
}

// HistogramSnapshot is the exported view of one named distribution: exact
// count/sum/min/max and the populated buckets of the fixed log ladder, in
// ascending boundary order. Two runs observing the same values yield
// DeepEqual snapshots.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	// Buckets lists only the populated buckets (sparse), ascending.
	Buckets []Bucket `json:"buckets"`
}

// snapshot renders the sparse exported form of the accumulator.
func (h *histogram) snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		b := Bucket{Count: c}
		if i >= len(bucketBounds) {
			b.Le = bucketBounds[len(bucketBounds)-1]
			b.Overflow = true
		} else {
			b.Le = bucketBounds[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the q-th observation, clamped to
// the exact observed [Min, Max]. With no observations it returns 0. The
// estimate is deterministic: it depends only on the bucket counts and the
// fixed boundaries.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	// rank is the 1-based index of the target observation.
	rank := int64(q*float64(s.Count)) + 1
	if rank > s.Count {
		rank = s.Count
	}
	var seen int64
	for _, b := range s.Buckets {
		if seen+b.Count < rank {
			seen += b.Count
			continue
		}
		lo, hi := 0.0, b.Le
		if b.Overflow {
			// The overflow bucket spans [last boundary, Max].
			lo, hi = b.Le, s.Max
		} else if i := sort.SearchFloat64s(bucketBounds, b.Le); i > 0 {
			lo = bucketBounds[i-1]
		}
		frac := float64(rank-seen) / float64(b.Count)
		v := lo + (hi-lo)*frac
		// Clamp to the exact extrema: interpolation cannot know the true
		// values inside the bucket, but no estimate should leave [Min, Max].
		if v < s.Min {
			v = s.Min
		}
		if v > s.Max {
			v = s.Max
		}
		return v
	}
	return s.Max
}

// Observe records one value of the named distribution. Typical streams are
// per-window branch-and-bound node counts, per-run attempt counts and
// request latencies; by convention names ending in "_us" hold wall-clock
// microseconds, which Snapshot.Canonical reduces to counts when comparing
// runs (the values are real time and legitimately differ between
// repetitions). A nil trace ignores the observation at the cost of one
// pointer comparison.
func (t *Trace) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.histograms[name]
	if h == nil {
		h = &histogram{}
		t.histograms[name] = h
	}
	h.observe(v)
}
