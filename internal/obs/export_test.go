package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTrace builds the fixed workload behind the golden-file test: a PA
// run shape with two phases, a nested floorplan call, counters, histogram
// observations, and flight-recorder events.
func goldenTrace() *Trace {
	tr := fakeClock(100 * time.Microsecond)
	run := tr.Start("pa.run")
	att := tr.Start("pa.attempt", Int("attempt", 0), Str("maxres", "{53200 220 140}"))
	p1 := tr.Start("pa.phase1.implselect")
	p1.End()
	p8 := tr.Start("pa.phase8.floorplan")
	fp := tr.Start("floorplan.solve", Str("method", "backtracking"), Int("regions", 3))
	tr.Event("par.improved", Int("iteration", 4), Float("makespan", 1180))
	fp.End(Str("outcome", "feasible"), Int("nodes", 17))
	p8.End()
	att.End(Str("outcome", "feasible"))
	run.End()
	tr.Count("pa.retries", 0)
	tr.Count("floorplan.calls", 1)
	tr.SetGauge("par.capacity_factor", 1)
	for _, nodes := range []float64{3, 17, 44, 17, 260} {
		tr.Observe("isk.window_nodes", nodes)
	}
	tr.Observe("pa.attempts", 1)
	tr.Event("budget.exhausted", Str("reason", "node-cap"))
	return tr
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -run Golden -update ./internal/obs): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "chrome.golden.json", buf.Bytes())

	// Independently of the exact bytes, the export must be a valid
	// trace-event document: parse it back and check the span events.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var complete int
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			complete++
			if ev.Dur <= 0 {
				t.Errorf("event %s has non-positive dur %v", ev.Name, ev.Dur)
			}
		}
	}
	if complete != 5 {
		t.Errorf("%d complete events, want 5 (one per span)", complete)
	}
}

func TestMetricsJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.json", buf.Bytes())

	var doc MetricsDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Counters["floorplan.calls"] != 1 {
		t.Errorf("floorplan.calls = %d, want 1", doc.Counters["floorplan.calls"])
	}
	if doc.Spans["pa.run"].Count != 1 {
		t.Errorf("pa.run aggregate missing: %+v", doc.Spans)
	}
}

func TestMetricsExportDeterminism(t *testing.T) {
	// Two identical workloads must export byte-identical metrics: map key
	// order must not leak (encoding/json sorts keys, this pins it).
	render := func() string {
		var buf bytes.Buffer
		if err := goldenTrace().WriteMetricsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("metrics export is not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestWriteSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pa.run", "floorplan.solve", "pa.retries", "par.capacity_factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary lacks %q:\n%s", want, out)
		}
	}
	// Longest span first: the root must precede the leaf phases.
	if strings.Index(out, "pa.run") > strings.Index(out, "pa.phase1.implselect") {
		t.Errorf("summary not sorted by total time:\n%s", out)
	}
}
