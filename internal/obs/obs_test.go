package obs

import (
	"strings"
	"testing"
	"time"
)

// fakeClock returns a trace whose clock advances by step on every reading,
// starting at step. Deterministic clocks make span timestamps, and thus the
// exporters' output, exactly reproducible.
func fakeClock(step time.Duration) *Trace {
	tr := New()
	var now time.Duration
	tr.clock = func() time.Duration {
		now += step
		return now
	}
	return tr
}

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	run := tr.Start("run", Str("algo", "pa"))
	p1 := tr.Start("phase1")
	p1.End()
	p2 := tr.Start("phase2")
	inner := tr.Start("phase2.inner")
	inner.End()
	p2.End(Str("outcome", "ok"))
	run.End()

	snap := tr.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(snap.Spans))
	}
	wantNames := []string{"run", "phase1", "phase2", "phase2.inner"}
	wantParents := []int{-1, 0, 0, 2}
	wantDepths := []int{0, 1, 1, 2}
	for i, sp := range snap.Spans {
		if sp.Name != wantNames[i] {
			t.Errorf("span %d: name %q, want %q (spans are in start order)", i, sp.Name, wantNames[i])
		}
		if sp.Parent != wantParents[i] {
			t.Errorf("span %d (%s): parent %d, want %d", i, sp.Name, sp.Parent, wantParents[i])
		}
		if sp.Depth != wantDepths[i] {
			t.Errorf("span %d (%s): depth %d, want %d", i, sp.Name, sp.Depth, wantDepths[i])
		}
		if sp.End < sp.Start {
			t.Errorf("span %d (%s): end %v before start %v", i, sp.Name, sp.End, sp.Start)
		}
	}
	// The root span must contain all children.
	root := snap.Spans[0]
	for _, sp := range snap.Spans[1:] {
		if sp.Start < root.Start || sp.End > root.End {
			t.Errorf("span %s [%v,%v] escapes root [%v,%v]", sp.Name, sp.Start, sp.End, root.Start, root.End)
		}
	}
	if got := snap.Spans[2].Args; len(got) != 1 || got[0].Key != "outcome" || got[0].Val != "ok" {
		t.Errorf("phase2 args = %v, want the End annotation outcome=ok", got)
	}
	if got := snap.Spans[0].Args; len(got) != 1 || got[0].Key != "algo" {
		t.Errorf("run args = %v, want algo=pa", got)
	}
}

func TestEndSweepsOpenDescendants(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	run := tr.Start("run")
	tr.Start("leaked") // never ended explicitly
	run.End()
	next := tr.Start("next")
	next.End()

	snap := tr.Snapshot()
	leaked := snap.Spans[1]
	if leaked.End != snap.Spans[0].End {
		t.Errorf("leaked span end %v, want swept to parent end %v", leaked.End, snap.Spans[0].End)
	}
	if got := snap.Spans[2]; got.Parent != -1 || got.Depth != 0 {
		t.Errorf("span after sweep: parent %d depth %d, want a fresh root span", got.Parent, got.Depth)
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	sp := tr.Start("s")
	sp.End()
	end := tr.Snapshot().Spans[0].End
	sp.End(Str("late", "ignored-timestamp"))
	snap := tr.Snapshot()
	if snap.Spans[0].End != end {
		t.Errorf("second End moved the timestamp: %v -> %v", end, snap.Spans[0].End)
	}
}

func TestNilTraceIsNoop(t *testing.T) {
	var tr *Trace
	if tr.Enabled() {
		t.Error("nil trace reports Enabled")
	}
	sp := tr.Start("ignored", Str("k", "v"))
	if sp != nil {
		t.Fatalf("nil trace Start returned %v, want nil", sp)
	}
	sp.End()
	sp.Annotate(Int("n", 1))
	tr.Count("c", 1)
	tr.SetGauge("g", 1.5)
	tr.Observe("h", 42)
	tr.Event("e", Str("k", "v"))
	snap := tr.Snapshot()
	if len(snap.Spans) != 0 || len(snap.Counters) != 0 || len(snap.Gauges) != 0 ||
		len(snap.Histograms) != 0 || len(snap.Events) != 0 || snap.EventsSeen != 0 {
		t.Errorf("nil trace snapshot not empty: %+v", snap)
	}
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
	sb.Reset()
	if err := tr.WriteMetricsJSON(&sb); err != nil {
		t.Errorf("nil WriteMetricsJSON: %v", err)
	}
	sb.Reset()
	if err := tr.WriteSummary(&sb); err != nil {
		t.Errorf("nil WriteSummary: %v", err)
	}
	sb.Reset()
	if err := tr.WriteEventsJSON(&sb); err != nil {
		t.Errorf("nil WriteEventsJSON: %v", err)
	}
}

func TestCountersAndGauges(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	tr.Count("retries", 1)
	tr.Count("retries", 2)
	tr.Count("windows", 5)
	tr.SetGauge("capacity", 1.0)
	tr.SetGauge("capacity", 0.92)
	snap := tr.Snapshot()
	if snap.Counters["retries"] != 3 {
		t.Errorf("retries = %d, want 3", snap.Counters["retries"])
	}
	if snap.Counters["windows"] != 5 {
		t.Errorf("windows = %d, want 5", snap.Counters["windows"])
	}
	if snap.Gauges["capacity"] != 0.92 {
		t.Errorf("capacity = %v, want latest value 0.92", snap.Gauges["capacity"])
	}
}

func TestSnapshotReportsOpenSpans(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	tr.Start("still-open")
	snap := tr.Snapshot()
	sp := snap.Spans[0]
	if sp.End != snap.Taken {
		t.Errorf("open span end %v, want snapshot instant %v", sp.End, snap.Taken)
	}
	if sp.Duration() <= 0 {
		t.Errorf("open span duration %v, want > 0", sp.Duration())
	}
}

func TestMetricsAggregation(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	for i := 0; i < 3; i++ {
		tr.Start("iter").End()
	}
	doc := tr.Metrics()
	st, ok := doc.Spans["iter"]
	if !ok {
		t.Fatal("no aggregate for span name iter")
	}
	if st.Count != 3 {
		t.Errorf("count = %d, want 3", st.Count)
	}
	// Every fake-clock span lasts exactly one step (1ms = 1000µs).
	if st.MinUS != 1000 || st.MaxUS != 1000 || st.TotalUS != 3000 {
		t.Errorf("aggregate = %+v, want min/max 1000µs, total 3000µs", st)
	}
}
