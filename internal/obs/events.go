package obs

import (
	"encoding/json"
	"io"
	"time"
)

// defaultEventCapacity bounds the flight recorder: the ring keeps the most
// recent events and counts the rest as dropped. 1024 events cover minutes
// of rung transitions, budget trips and incumbent improvements at a few
// bytes each, while a runaway event source cannot grow the trace without
// bound.
const defaultEventCapacity = 1024

// EventInfo is one recorded flight-recorder event.
type EventInfo struct {
	// Time is the monotonic offset from the trace epoch at which the event
	// was recorded.
	Time time.Duration
	// Seq is the 0-based global sequence number across the whole trace,
	// including events already evicted from the ring.
	Seq int64
	// Name labels the event (e.g. "budget.exhausted", "robust.rung").
	Name string
	// Args holds the annotations in attachment order.
	Args []Arg
}

// Event appends a structured event to the trace's bounded flight recorder:
// a timestamped, annotated record of a discrete occurrence — a budget
// trip, a degradation-ladder rung transition, an injected fault, an
// incumbent improvement — kept in a fixed-size ring so a hung or slow run
// can explain its recent history after the fact. When the ring is full the
// oldest event is evicted (Snapshot reports how many). A nil trace ignores
// the event at the cost of one pointer comparison.
func (t *Trace) Event(name string, args ...Arg) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := eventRecord{time: t.clock(), seq: t.eventSeq, name: name, args: args}
	t.eventSeq++
	if len(t.events) < defaultEventCapacity {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.eventHead] = ev
	t.eventHead = (t.eventHead + 1) % len(t.events)
}

// eventRecord is the internal storage of one event.
type eventRecord struct {
	time time.Duration
	seq  int64
	name string
	args []Arg
}

// eventsLocked renders the ring oldest-first. Caller holds t.mu.
func (t *Trace) eventsLocked() []EventInfo {
	out := make([]EventInfo, 0, len(t.events))
	for i := 0; i < len(t.events); i++ {
		rec := t.events[(t.eventHead+i)%len(t.events)]
		out = append(out, EventInfo{
			Time: rec.time,
			Seq:  rec.seq,
			Name: rec.name,
			Args: append([]Arg(nil), rec.args...),
		})
	}
	return out
}

// eventsDoc is the JSON document WriteEventsJSON emits.
type eventsDoc struct {
	// Seen counts every event recorded over the trace's lifetime; Dropped
	// is how many of those the bounded ring has already evicted.
	Seen    int64       `json:"seen"`
	Dropped int64       `json:"dropped"`
	Events  []eventJSON `json:"events"`
}

type eventJSON struct {
	TUS  float64        `json:"t_us"`
	Seq  int64          `json:"seq"`
	Name string         `json:"name"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteEventsJSON exports the flight recorder's current content as JSON,
// oldest event first, with timestamps in microseconds since the trace
// epoch. A nil trace writes a valid empty document.
func (t *Trace) WriteEventsJSON(w io.Writer) error {
	snap := t.Snapshot()
	doc := eventsDoc{
		Seen:    snap.EventsSeen,
		Dropped: snap.EventsSeen - int64(len(snap.Events)),
		Events:  make([]eventJSON, 0, len(snap.Events)),
	}
	for _, ev := range snap.Events {
		ej := eventJSON{TUS: micros(ev.Time), Seq: ev.Seq, Name: ev.Name}
		if len(ev.Args) > 0 {
			ej.Args = make(map[string]any, len(ev.Args))
			for _, a := range ev.Args {
				ej.Args[a.Key] = a.Val
			}
		}
		doc.Events = append(doc.Events, ej)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
