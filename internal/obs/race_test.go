package obs

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// raceWorkload drives one trace the way a parallel solver does: N workers
// concurrently recording commutative instruments (counters, gauges,
// histograms, detached root spans) with per-worker deterministic values,
// then — after the join, exactly like the PA-R merge — a single goroutine
// emitting the flight-recorder events in a fixed order.
func raceWorkload(workers, perWorker int) *Trace {
	tr := New()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.StartRoot("race.iteration", Int("worker", int64(w)))
				tr.Count("race.total", 1)
				tr.Count(fmt.Sprintf("race.worker.%d", w), 1)
				tr.SetGauge(fmt.Sprintf("race.gauge.%d", w), float64(w))
				tr.Observe("race.values", float64(w*perWorker+i))
				sp.End(Str("outcome", "ok"))
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		tr.Event("race.done", Int("worker", int64(w)))
	}
	return tr
}

// TestConcurrentRecordingDeterminism is the -race coverage for obs v2: all
// instruments are hammered from concurrent workers, and because every
// recorded value is commutative (and events are deferred to after the
// join), two repetitions of the same workload must produce identical
// canonical snapshots regardless of goroutine interleaving.
func TestConcurrentRecordingDeterminism(t *testing.T) {
	const workers, perWorker = 8, 200
	first := raceWorkload(workers, perWorker).Snapshot().Canonical()
	second := raceWorkload(workers, perWorker).Snapshot().Canonical()

	if got := first.Counters["race.total"]; got != workers*perWorker {
		t.Errorf("race.total = %d, want %d", got, workers*perWorker)
	}
	if got := first.Histograms["race.values"].Count; got != workers*perWorker {
		t.Errorf("race.values count = %d, want %d", got, workers*perWorker)
	}
	if got := len(first.Events); got != workers {
		t.Errorf("recorded %d events, want %d", got, workers)
	}
	// Canonical drops the spans (their count is interleaving-independent but
	// their order is not) and event wall-clock times; everything left must
	// match bit for bit.
	if !reflect.DeepEqual(first, second) {
		t.Errorf("canonical snapshots differ across identical concurrent runs:\n%+v\nvs\n%+v",
			first, second)
	}
}

// TestConcurrentEventsCountAll covers the flight-recorder ring itself under
// contention: when events *are* emitted concurrently their order is
// arrival order (not asserted), but none may be lost and the ring must
// stay coherent — EventsSeen counts all, the ring holds the last capacity.
func TestConcurrentEventsCountAll(t *testing.T) {
	tr := New()
	const workers, perWorker = 8, 300 // workers*perWorker > ring capacity
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Event("race.event", Int("worker", int64(w)), Int("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	snap := tr.Snapshot()
	if snap.EventsSeen != workers*perWorker {
		t.Errorf("EventsSeen = %d, want %d", snap.EventsSeen, workers*perWorker)
	}
	if len(snap.Events) != defaultEventCapacity {
		t.Errorf("ring holds %d events, want capacity %d", len(snap.Events), defaultEventCapacity)
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].Seq <= snap.Events[i-1].Seq {
			t.Fatalf("ring not in seq order at %d: %d then %d",
				i, snap.Events[i-1].Seq, snap.Events[i].Seq)
		}
	}
}
