package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array. Timestamps and durations are microseconds, the unit the format
// specifies.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	// S scopes instant ("i") events; "t" renders them as thread-local
	// markers in the viewer.
	S    string         `json:"s,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container flavour of the format, which
// chrome://tracing and Perfetto both load directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the trace as Chrome trace-event JSON: one
// complete ("X") event per span and one instant ("i") event per
// flight-recorder entry, all on a single pid/tid so viewers infer the span
// hierarchy from time containment and render the events as markers on the
// same track. A nil or empty trace writes a valid file with no events.
// Counters, gauges and histograms are not part of the event stream;
// WriteMetricsJSON carries them.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	snap := t.Snapshot()
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(snap.Spans)+len(snap.Events)+1),
		DisplayTimeUnit: "ms",
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  1,
		Tid:  1,
		Args: map[string]any{"name": "resched"},
	})
	argMap := func(args []Arg) map[string]any {
		if len(args) == 0 {
			return nil
		}
		out := make(map[string]any, len(args))
		for _, a := range args {
			out[a.Key] = a.Val
		}
		return out
	}
	for _, sp := range snap.Spans {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   micros(sp.Start),
			Dur:  micros(sp.End - sp.Start),
			Pid:  1,
			Tid:  1,
			Args: argMap(sp.Args),
		})
	}
	for _, ev := range snap.Events {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: ev.Name,
			Ph:   "i",
			S:    "t",
			Ts:   micros(ev.Time),
			Pid:  1,
			Tid:  1,
			Args: argMap(ev.Args),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// SpanStats aggregates every span sharing one name. The quantiles are
// exact, computed by sorting every recorded duration at export time — spans
// are bounded per run, so the sort is cheap relative to serialisation.
type SpanStats struct {
	Count   int64   `json:"count"`
	TotalUS float64 `json:"total_us"`
	MinUS   float64 `json:"min_us"`
	MaxUS   float64 `json:"max_us"`
	P50US   float64 `json:"p50_us"`
	P90US   float64 `json:"p90_us"`
	P99US   float64 `json:"p99_us"`
}

// HistogramStats is the exported per-distribution aggregate in MetricsDoc:
// the snapshot's exact count/sum/min/max and sparse buckets plus the three
// interpolated quantiles the dashboards read.
type HistogramStats struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// MetricsDoc is the flat metrics document WriteMetricsJSON emits: the
// counters and gauges verbatim, per-name span aggregates, per-name
// histogram aggregates, and the flight-recorder totals. Maps serialise
// with sorted keys (encoding/json guarantees this), so the export is
// byte-stable across runs of a deterministic workload.
type MetricsDoc struct {
	Counters   map[string]int64          `json:"counters"`
	Gauges     map[string]float64        `json:"gauges"`
	Spans      map[string]SpanStats      `json:"spans"`
	Histograms map[string]HistogramStats `json:"histograms"`
	// EventsSeen and EventsDropped summarise the flight recorder; the event
	// bodies themselves are WriteEventsJSON's document.
	EventsSeen    int64 `json:"events_seen"`
	EventsDropped int64 `json:"events_dropped"`
}

// exactQuantile reads the q-th quantile from an ascending-sorted slice
// using the nearest-rank method (1-based rank ceil(q*n), matching the
// histogram's rank convention).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))) + 1
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Metrics computes the flat metrics view of the trace.
func (t *Trace) Metrics() MetricsDoc {
	snap := t.Snapshot()
	doc := MetricsDoc{
		Counters:      snap.Counters,
		Gauges:        snap.Gauges,
		Spans:         make(map[string]SpanStats, 16),
		Histograms:    make(map[string]HistogramStats, len(snap.Histograms)),
		EventsSeen:    snap.EventsSeen,
		EventsDropped: snap.EventsSeen - int64(len(snap.Events)),
	}
	durs := make(map[string][]float64, 16)
	for _, sp := range snap.Spans {
		us := micros(sp.End - sp.Start)
		st, ok := doc.Spans[sp.Name]
		if !ok {
			st = SpanStats{MinUS: us, MaxUS: us}
		}
		st.Count++
		st.TotalUS += us
		if us < st.MinUS {
			st.MinUS = us
		}
		if us > st.MaxUS {
			st.MaxUS = us
		}
		doc.Spans[sp.Name] = st
		durs[sp.Name] = append(durs[sp.Name], us)
	}
	for name, ds := range durs {
		sort.Float64s(ds)
		st := doc.Spans[name]
		st.P50US = exactQuantile(ds, 0.50)
		st.P90US = exactQuantile(ds, 0.90)
		st.P99US = exactQuantile(ds, 0.99)
		doc.Spans[name] = st
	}
	for name, h := range snap.Histograms {
		doc.Histograms[name] = HistogramStats{
			Count:   h.Count,
			Sum:     h.Sum,
			Min:     h.Min,
			Max:     h.Max,
			P50:     h.Quantile(0.50),
			P90:     h.Quantile(0.90),
			P99:     h.Quantile(0.99),
			Buckets: h.Buckets,
		}
	}
	return doc
}

// WriteMetricsJSON exports the flat metrics document. A nil trace writes an
// empty (but valid) document.
func (t *Trace) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Metrics())
}

// WriteSummary renders a human-readable table of the span aggregates
// (sorted by total time, longest first) followed by the histogram
// distributions, the counters and gauges in name order, and the tail of
// the flight recorder (the most recent events, newest last).
func (t *Trace) WriteSummary(w io.Writer) error {
	snap := t.Snapshot()
	doc := t.Metrics()
	names := make([]string, 0, len(doc.Spans))
	for name := range doc.Spans {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := doc.Spans[names[i]], doc.Spans[names[j]]
		if a.TotalUS > b.TotalUS {
			return true
		}
		if b.TotalUS > a.TotalUS {
			return false
		}
		return names[i] < names[j]
	})
	if _, err := fmt.Fprintf(w, "%-28s %8s %12s %12s %12s %12s\n",
		"span", "count", "total", "mean", "min", "max"); err != nil {
		return err
	}
	usDur := func(us float64) time.Duration {
		return time.Duration(us * 1e3).Round(time.Microsecond)
	}
	for _, name := range names {
		st := doc.Spans[name]
		if _, err := fmt.Fprintf(w, "%-28s %8d %12v %12v %12v %12v\n",
			name, st.Count, usDur(st.TotalUS), usDur(st.TotalUS/float64(st.Count)),
			usDur(st.MinUS), usDur(st.MaxUS)); err != nil {
			return err
		}
	}
	var hists []string
	for name := range doc.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	if len(hists) > 0 {
		if _, err := fmt.Fprintf(w, "%-28s %8s %12s %12s %12s %12s %12s\n",
			"histogram", "count", "p50", "p90", "p99", "min", "max"); err != nil {
			return err
		}
	}
	for _, name := range hists {
		h := doc.Histograms[name]
		if _, err := fmt.Fprintf(w, "%-28s %8d %12.3f %12.3f %12.3f %12.3f %12.3f\n",
			name, h.Count, h.P50, h.P90, h.P99, h.Min, h.Max); err != nil {
			return err
		}
	}
	var ctrs []string
	for name := range doc.Counters {
		ctrs = append(ctrs, name)
	}
	sort.Strings(ctrs)
	for _, name := range ctrs {
		if _, err := fmt.Fprintf(w, "%-28s %8d\n", name, doc.Counters[name]); err != nil {
			return err
		}
	}
	var gs []string
	for name := range doc.Gauges {
		gs = append(gs, name)
	}
	sort.Strings(gs)
	for _, name := range gs {
		if _, err := fmt.Fprintf(w, "%-28s %8.3f\n", name, doc.Gauges[name]); err != nil {
			return err
		}
	}
	// Flight-recorder tail: the most recent events, newest last, so a hung
	// run's summary ends with what it was doing.
	const summaryEventTail = 10
	events := snap.Events
	if len(events) > summaryEventTail {
		events = events[len(events)-summaryEventTail:]
	}
	if len(events) > 0 {
		if _, err := fmt.Fprintf(w, "events (last %d of %d):\n",
			len(events), snap.EventsSeen); err != nil {
			return err
		}
	}
	for _, ev := range events {
		line := fmt.Sprintf("  %12v #%d %s", ev.Time.Round(time.Microsecond), ev.Seq, ev.Name)
		for _, a := range ev.Args {
			line += fmt.Sprintf(" %s=%v", a.Key, a.Val)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
