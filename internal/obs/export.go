package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format's traceEvents
// array. Timestamps and durations are microseconds, the unit the format
// specifies.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container flavour of the format, which
// chrome://tracing and Perfetto both load directly.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace exports the spans as Chrome trace-event JSON: one
// complete ("X") event per span, all on a single pid/tid so viewers infer
// the hierarchy from time containment. A nil or empty trace writes a valid
// file with no events. Counters and gauges are not part of the event
// stream; WriteMetricsJSON carries them.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	snap := t.Snapshot()
	doc := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(snap.Spans)+1),
		DisplayTimeUnit: "ms",
	}
	doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
		Name: "process_name",
		Ph:   "M",
		Pid:  1,
		Tid:  1,
		Args: map[string]any{"name": "resched"},
	})
	for _, sp := range snap.Spans {
		ev := chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   micros(sp.Start),
			Dur:  micros(sp.End - sp.Start),
			Pid:  1,
			Tid:  1,
		}
		if len(sp.Args) > 0 {
			ev.Args = make(map[string]any, len(sp.Args))
			for _, a := range sp.Args {
				ev.Args[a.Key] = a.Val
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// SpanStats aggregates every span sharing one name.
type SpanStats struct {
	Count   int64   `json:"count"`
	TotalUS float64 `json:"total_us"`
	MinUS   float64 `json:"min_us"`
	MaxUS   float64 `json:"max_us"`
}

// MetricsDoc is the flat metrics document WriteMetricsJSON emits: the
// counters and gauges verbatim plus per-name span aggregates. Maps serialise
// with sorted keys (encoding/json guarantees this), so the export is
// byte-stable across runs of a deterministic workload.
type MetricsDoc struct {
	Counters map[string]int64     `json:"counters"`
	Gauges   map[string]float64   `json:"gauges"`
	Spans    map[string]SpanStats `json:"spans"`
}

// Metrics computes the flat metrics view of the trace.
func (t *Trace) Metrics() MetricsDoc {
	snap := t.Snapshot()
	doc := MetricsDoc{
		Counters: snap.Counters,
		Gauges:   snap.Gauges,
		Spans:    make(map[string]SpanStats, 16),
	}
	for _, sp := range snap.Spans {
		us := micros(sp.End - sp.Start)
		st, ok := doc.Spans[sp.Name]
		if !ok {
			st = SpanStats{MinUS: us, MaxUS: us}
		}
		st.Count++
		st.TotalUS += us
		if us < st.MinUS {
			st.MinUS = us
		}
		if us > st.MaxUS {
			st.MaxUS = us
		}
		doc.Spans[sp.Name] = st
	}
	return doc
}

// WriteMetricsJSON exports the flat metrics document. A nil trace writes an
// empty (but valid) document.
func (t *Trace) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Metrics())
}

// WriteSummary renders a human-readable table of the span aggregates
// (sorted by total time, longest first) followed by the counters and gauges
// in name order.
func (t *Trace) WriteSummary(w io.Writer) error {
	doc := t.Metrics()
	names := make([]string, 0, len(doc.Spans))
	for name := range doc.Spans {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := doc.Spans[names[i]], doc.Spans[names[j]]
		if a.TotalUS > b.TotalUS {
			return true
		}
		if b.TotalUS > a.TotalUS {
			return false
		}
		return names[i] < names[j]
	})
	if _, err := fmt.Fprintf(w, "%-28s %8s %12s %12s %12s %12s\n",
		"span", "count", "total", "mean", "min", "max"); err != nil {
		return err
	}
	usDur := func(us float64) time.Duration {
		return time.Duration(us * 1e3).Round(time.Microsecond)
	}
	for _, name := range names {
		st := doc.Spans[name]
		if _, err := fmt.Fprintf(w, "%-28s %8d %12v %12v %12v %12v\n",
			name, st.Count, usDur(st.TotalUS), usDur(st.TotalUS/float64(st.Count)),
			usDur(st.MinUS), usDur(st.MaxUS)); err != nil {
			return err
		}
	}
	var ctrs []string
	for name := range doc.Counters {
		ctrs = append(ctrs, name)
	}
	sort.Strings(ctrs)
	for _, name := range ctrs {
		if _, err := fmt.Fprintf(w, "%-28s %8d\n", name, doc.Counters[name]); err != nil {
			return err
		}
	}
	var gs []string
	for name := range doc.Gauges {
		gs = append(gs, name)
	}
	sort.Strings(gs)
	for _, name := range gs {
		if _, err := fmt.Fprintf(w, "%-28s %8.3f\n", name, doc.Gauges[name]); err != nil {
			return err
		}
	}
	return nil
}
