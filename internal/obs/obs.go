// Package obs is a zero-dependency observability layer for the scheduling
// pipeline: hierarchical spans on a monotonic clock, named counters and
// gauges, fixed-boundary log-bucket histograms with interpolated quantiles
// (Observe), a bounded flight recorder of structured events (Event), and
// exporters for the Chrome trace-event format (loadable in Perfetto or
// chrome://tracing), a flat metrics JSON with a human-readable summary
// table, and an events JSON. The sibling package obshttp mounts all of the
// exporters on a live net/http surface.
//
// The package is built for optional instrumentation of deterministic code:
// a nil *Trace is a valid receiver for every method and turns the whole
// layer into a no-op costing one pointer comparison, so hot paths can be
// instrumented unconditionally. Recording only observes wall-clock time and
// event counts — it never feeds back into scheduling decisions, which keeps
// traced and untraced runs byte-identical (TestTracingDeterminism at the
// repository root asserts this).
//
// Span taxonomy used by the schedulers: a root span per run (pa.run,
// par.run, isk.run), one child span per shrink-retry attempt or search
// iteration, and grandchildren for the individual phases, floorplan solver
// invocations and IS-k windows. See DESIGN.md §8.
package obs

import (
	"strings"
	"sync"
	"time"
)

// Arg is one key/value annotation attached to a span. Values are restricted
// by the constructors to strings, int64s, float64s and bools so every span
// serialises cleanly to JSON.
type Arg struct {
	Key string
	Val any
}

// Str annotates a span with a string value.
func Str(key, val string) Arg { return Arg{Key: key, Val: val} }

// Int annotates a span with an integer value.
func Int(key string, val int64) Arg { return Arg{Key: key, Val: val} }

// Float annotates a span with a float value.
func Float(key string, val float64) Arg { return Arg{Key: key, Val: val} }

// Bool annotates a span with a boolean value.
func Bool(key string, val bool) Arg { return Arg{Key: key, Val: val} }

// Trace accumulates spans, counters, gauges, histograms and flight-recorder
// events for one run. The zero value is not usable; construct with New (or
// NewWithClock for deterministic exports). All methods are safe on a nil
// receiver and safe for concurrent use.
type Trace struct {
	mu sync.Mutex
	// clock returns the monotonic time since the trace epoch. time.Since
	// on the epoch captured by New reads the monotonic clock, so spans are
	// immune to wall-clock adjustments; tests substitute a fake clock for
	// reproducible exports.
	clock      func() time.Duration
	spans      []spanRecord
	open       int // index of the innermost open span, -1 at root
	counters   map[string]int64
	gauges     map[string]float64
	histograms map[string]*histogram
	// events is the flight-recorder ring (see events.go): append-grown to
	// defaultEventCapacity, then overwritten oldest-first with eventHead
	// pointing at the oldest record. eventSeq counts every event ever seen.
	events    []eventRecord
	eventHead int
	eventSeq  int64
}

// spanRecord is the internal storage of one span, indexed by start order.
type spanRecord struct {
	name   string
	parent int // index into spans, -1 for root spans
	depth  int
	start  time.Duration
	end    time.Duration // negative while open
	args   []Arg
	// detached marks a span opened with StartRoot: it never participates
	// in the open-span chain, so concurrent goroutines can record spans
	// without corrupting the single-stack nesting.
	detached bool
}

// Span is a handle to an in-flight span. A nil *Span (returned by a nil
// trace) accepts every method as a no-op.
type Span struct {
	tr *Trace
	id int
}

// New returns an empty trace whose clock starts now.
func New() *Trace {
	epoch := time.Now()
	return NewWithClock(func() time.Duration { return time.Since(epoch) })
}

// NewWithClock returns an empty trace reading monotonic offsets from the
// given clock instead of the real one. Injected clocks make every exporter
// byte-reproducible — the obshttp golden tests and the flight-recorder
// replay tooling depend on this — and must be monotone non-decreasing.
func NewWithClock(clock func() time.Duration) *Trace {
	return &Trace{
		clock:      clock,
		open:       -1,
		counters:   make(map[string]int64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*histogram),
	}
}

// Enabled reports whether the trace records anything; callers use it to
// skip expensive argument construction (formatting a resource vector, say)
// when tracing is off.
func (t *Trace) Enabled() bool { return t != nil }

// Start opens a span nested under the innermost open span. It returns nil
// (a valid no-op handle) when the trace is nil.
func (t *Trace) Start(name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	parent, depth := t.open, 0
	if parent >= 0 {
		depth = t.spans[parent].depth + 1
	}
	id := len(t.spans)
	t.spans = append(t.spans, spanRecord{
		name:   name,
		parent: parent,
		depth:  depth,
		start:  t.clock(),
		end:    -1,
		args:   args,
	})
	t.open = id
	return &Span{tr: t, id: id}
}

// StartRoot opens a span at the root of the trace, bypassing the open-span
// stack: the new span has no parent and does not become the parent of
// subsequent Start calls. This is the entry point for concurrent recording —
// parallel workers (PA-R's worker pool, the experiment harness's instance
// pool) each record their spans as detached roots, because the nesting stack
// is a single sequential chain and interleaved Start/End pairs from several
// goroutines would corrupt it. It returns nil (a valid no-op handle) when
// the trace is nil.
func (t *Trace) StartRoot(name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := len(t.spans)
	t.spans = append(t.spans, spanRecord{
		name:     name,
		parent:   -1,
		depth:    0,
		start:    t.clock(),
		end:      -1,
		args:     args,
		detached: true,
	})
	return &Span{tr: t, id: id}
}

// End closes the span, attaching any final annotations (an outcome tag,
// say). Open descendants that were never ended explicitly are closed at the
// same instant, so an early return that skips an inner End cannot corrupt
// the nesting. Ending a span twice is a no-op.
func (s *Span) End(args ...Arg) {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := &t.spans[s.id]
	if rec.end >= 0 {
		return
	}
	now := t.clock()
	if rec.detached {
		// Detached spans never sit on the open chain; close in place.
		rec.end = now
		rec.args = append(rec.args, args...)
		return
	}
	// Close the open chain from the innermost span up to (and including)
	// this one. The chain walk is bounded by the nesting depth.
	for cur := t.open; cur >= 0; cur = t.spans[cur].parent {
		if t.spans[cur].end < 0 {
			t.spans[cur].end = now
		}
		if cur == s.id {
			t.open = t.spans[cur].parent
			break
		}
	}
	if rec.end < 0 {
		// The span was not on the open chain (its parent ended first and
		// swept the stack past it); close it in place.
		rec.end = now
	}
	rec.args = append(rec.args, args...)
}

// Annotate attaches additional key/value pairs to an open span.
func (s *Span) Annotate(args ...Arg) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	rec := &s.tr.spans[s.id]
	rec.args = append(rec.args, args...)
}

// Count adds delta to the named counter.
func (t *Trace) Count(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counters[name] += delta
}

// SetGauge records the latest value of the named gauge.
func (t *Trace) SetGauge(name string, val float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.gauges[name] = val
}

// SpanInfo is the read-only view of one recorded span.
type SpanInfo struct {
	// Name is the span label (e.g. "pa.phase3.regions").
	Name string
	// Parent is the index of the enclosing span in the snapshot slice, -1
	// for root spans.
	Parent int
	// Depth is the nesting level (0 for root spans).
	Depth int
	// Start and End are monotonic offsets from the trace epoch; End equals
	// the snapshot instant for spans still open when the snapshot is taken.
	Start, End time.Duration
	// Args holds the annotations in attachment order.
	Args []Arg
}

// Duration is the span length.
func (s SpanInfo) Duration() time.Duration { return s.End - s.Start }

// Snapshot is a consistent copy of a trace's content.
type Snapshot struct {
	// Spans lists every span in start order.
	Spans []SpanInfo
	// Counters and Gauges are copies of the named metrics.
	Counters map[string]int64
	Gauges   map[string]float64
	// Histograms holds the named distributions recorded through Observe.
	Histograms map[string]HistogramSnapshot
	// Events is the flight recorder's current content, oldest first;
	// EventsSeen counts every event recorded over the trace's lifetime, so
	// EventsSeen - len(Events) is the number already evicted from the ring.
	Events     []EventInfo
	EventsSeen int64
	// Taken is the clock offset at which the snapshot was captured; spans
	// still open are reported as ending here.
	Taken time.Duration
}

// Snapshot captures the current trace content. A nil trace yields an empty
// snapshot.
func (t *Trace) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{
			Counters:   map[string]int64{},
			Gauges:     map[string]float64{},
			Histograms: map[string]HistogramSnapshot{},
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	out := Snapshot{
		Spans:      make([]SpanInfo, len(t.spans)),
		Counters:   make(map[string]int64, len(t.counters)),
		Gauges:     make(map[string]float64, len(t.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(t.histograms)),
		Events:     t.eventsLocked(),
		EventsSeen: t.eventSeq,
		Taken:      now,
	}
	for i, rec := range t.spans {
		end := rec.end
		if end < 0 {
			end = now
		}
		out.Spans[i] = SpanInfo{
			Name:   rec.name,
			Parent: rec.parent,
			Depth:  rec.depth,
			Start:  rec.start,
			End:    end,
			Args:   append([]Arg(nil), rec.args...),
		}
	}
	for k, v := range t.counters {
		out.Counters[k] = v
	}
	for k, v := range t.gauges {
		out.Gauges[k] = v
	}
	for k, h := range t.histograms {
		out.Histograms[k] = h.snapshot()
	}
	return out
}

// Canonical strips everything in the snapshot that legitimately varies
// between two repetitions of the same deterministic workload, leaving
// exactly the content the determinism gates may compare with
// reflect.DeepEqual:
//
//   - spans are dropped entirely (their timestamps are wall-clock, and a
//     parallel search records its detached iteration spans in goroutine
//     arrival order);
//   - the snapshot instant and every event timestamp are zeroed, keeping
//     event order, names, sequence numbers and args;
//   - histograms whose name ends in "_us" — the naming convention for
//     wall-clock microsecond distributions — are reduced to their
//     observation count, since the recorded durations are real time.
//
// Counters, gauges and value histograms (node counts, attempt counts,
// reconfiguration counts) pass through untouched: for a fixed seed and
// worker count they must be bit-identical across runs, and
// TestTracingDeterminism at the repository root asserts exactly that.
func (s Snapshot) Canonical() Snapshot {
	out := Snapshot{
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
		Events:     make([]EventInfo, len(s.Events)),
		EventsSeen: s.EventsSeen,
	}
	for k, h := range s.Histograms {
		if strings.HasSuffix(k, "_us") {
			out.Histograms[k] = HistogramSnapshot{Count: h.Count}
			continue
		}
		out.Histograms[k] = h
	}
	for i, ev := range s.Events {
		ev.Time = 0
		out.Events[i] = ev
	}
	return out
}
