// Package obshttp mounts a live debug surface over an obs.Trace using only
// the standard library:
//
//	GET /metrics        flat metrics JSON (counters, gauges, spans, histograms)
//	GET /debug/trace    Chrome trace-event JSON of the current snapshot
//	GET /debug/events   the flight recorder's current content
//	GET /debug/summary  the human-readable summary table
//	GET /debug/pprof/*  net/http/pprof (profile, heap, goroutine, ...)
//
// Every endpoint renders a fresh snapshot per request, so a long sweep can
// be watched while it runs — curl the /metrics endpoint mid-solve and the
// histograms reflect the work done so far. The handler is what the
// scheduling daemon (ROADMAP item 1) mounts; today cmd/pasched and
// cmd/experiments expose it behind -serve-debug.
//
// Handlers only read snapshots; they never write to the trace, so mounting
// the surface cannot perturb a deterministic run.
package obshttp

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"resched/internal/obs"
)

// Handler returns the debug mux for the trace. A nil trace is valid: every
// endpoint serves the empty documents the exporters produce for it.
func Handler(tr *obs.Trace) http.Handler {
	mux := http.NewServeMux()
	serve := func(contentType string, write func(http.ResponseWriter) error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet && r.Method != http.MethodHead {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", contentType)
			if err := write(w); err != nil {
				// Headers are gone; all we can do is log nothing and drop
				// the connection mid-body. Export errors here mean the
				// client went away.
				return
			}
		}
	}
	mux.HandleFunc("/metrics", serve("application/json", func(w http.ResponseWriter) error {
		return tr.WriteMetricsJSON(w)
	}))
	mux.HandleFunc("/debug/trace", serve("application/json", func(w http.ResponseWriter) error {
		return tr.WriteChromeTrace(w)
	}))
	mux.HandleFunc("/debug/events", serve("application/json", func(w http.ResponseWriter) error {
		return tr.WriteEventsJSON(w)
	}))
	mux.HandleFunc("/debug/summary", serve("text/plain; charset=utf-8", func(w http.ResponseWriter) error {
		return tr.WriteSummary(w)
	}))
	// net/http/pprof registers on http.DefaultServeMux from its init; mount
	// the same handlers explicitly so this mux works standalone and the
	// surface carries no global state.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "resched debug surface\n\n"+
			"/metrics        flat metrics JSON\n"+
			"/debug/trace    Chrome trace-event JSON\n"+
			"/debug/events   flight recorder JSON\n"+
			"/debug/summary  summary table\n"+
			"/debug/pprof/   runtime profiles\n")
	})
	return mux
}

// Server is a running debug surface with a joinable lifecycle: Close shuts
// the listener down and waits for the serve goroutine to exit, so callers
// (and the goroutine-leak gates) see a clean join.
type Server struct {
	srv  *http.Server
	addr net.Addr
	done chan struct{}
	err  error
}

// Serve binds addr (":0" picks a free port) and serves the trace's debug
// surface until Close.
func Serve(addr string, tr *obs.Trace) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obshttp: %w", err)
	}
	s := &Server{
		srv:  &http.Server{Handler: Handler(tr)},
		addr: ln.Addr(),
		done: make(chan struct{}),
	}
	// The serve goroutine outlives this function by design — the surface
	// runs until Close, which joins it via the done channel.
	//reschedvet:ignore goleak joined by (*Server).Close, not by Serve's return
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.err = err
		}
	}()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.addr.String() }

// URL returns the http base URL of the surface.
func (s *Server) URL() string { return "http://" + s.addr.String() }

// Close stops the server and joins the serve goroutine. Safe to call once;
// it returns any error the listener died with.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	if err != nil {
		return err
	}
	return s.err
}
