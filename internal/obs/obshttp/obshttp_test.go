package obshttp

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"resched/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// cannedTrace is the fixed workload behind the endpoint goldens: an
// injected clock (obs.NewWithClock) advancing 100µs per reading makes every
// span timestamp, and therefore every exported byte, reproducible.
func cannedTrace() *obs.Trace {
	var now time.Duration
	tr := obs.NewWithClock(func() time.Duration {
		now += 100 * time.Microsecond
		return now
	})
	run := tr.Start("pa.run")
	att := tr.Start("pa.attempt", obs.Int("attempt", 0))
	fp := tr.Start("pa.phase8.floorplan")
	fp.End(obs.Str("outcome", "feasible"))
	att.End(obs.Str("outcome", "feasible"))
	run.End()
	tr.Count("pa.retries", 1)
	tr.SetGauge("par.capacity_factor", 0.92)
	for _, v := range []float64{2, 4, 4, 9, 31} {
		tr.Observe("isk.window_nodes", v)
	}
	tr.Observe("pa.attempts", 2)
	tr.Event("robust.rung_failed", obs.Str("rung", "full"), obs.Str("reason", "floorplan infeasible"))
	tr.Event("robust.rung_selected", obs.Str("rung", "retried"), obs.Int("failures_above", 1))
	return tr
}

func get(t *testing.T, h http.Handler, path string) (*http.Response, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	res := rec.Result()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res, body
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with go test -update ./internal/obs/obshttp): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestEndpointGoldens(t *testing.T) {
	h := Handler(cannedTrace())
	for _, tc := range []struct {
		path, golden, contentType string
	}{
		{"/metrics", "metrics.golden.json", "application/json"},
		{"/debug/trace", "trace.golden.json", "application/json"},
		{"/debug/events", "events.golden.json", "application/json"},
		{"/debug/summary", "summary.golden.txt", "text/plain; charset=utf-8"},
	} {
		res, body := get(t, h, tc.path)
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", tc.path, res.StatusCode)
			continue
		}
		if ct := res.Header.Get("Content-Type"); ct != tc.contentType {
			t.Errorf("%s: Content-Type %q, want %q", tc.path, ct, tc.contentType)
		}
		checkGolden(t, tc.golden, body)
	}
}

func TestEndpointsServeFreshSnapshots(t *testing.T) {
	// The surface is live: work recorded between two requests must show up
	// in the second response.
	tr := cannedTrace()
	h := Handler(tr)
	_, before := get(t, h, "/metrics")
	tr.Count("pa.retries", 41)
	_, after := get(t, h, "/metrics")
	if bytes.Equal(before, after) {
		t.Error("second /metrics response identical to the first despite new work")
	}
	if !bytes.Contains(after, []byte(`"pa.retries": 42`)) {
		t.Errorf("updated counter missing from /metrics:\n%s", after)
	}
}

func TestIndexAndErrors(t *testing.T) {
	h := Handler(cannedTrace())
	res, body := get(t, h, "/")
	if res.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("/debug/trace")) {
		t.Errorf("index: status %d body %q", res.StatusCode, body)
	}
	if res, _ := get(t, h, "/nope"); res.StatusCode != http.StatusNotFound {
		t.Errorf("/nope: status %d, want 404", res.StatusCode)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("{}")))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics: status %d, want 405", rec.Code)
	}
}

func TestPprofMounted(t *testing.T) {
	h := Handler(nil)
	res, body := get(t, h, "/debug/pprof/")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/: status %d", res.StatusCode)
	}
	if !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("pprof index lacks profile listing:\n%s", body)
	}
}

func TestNilTraceEndpoints(t *testing.T) {
	h := Handler(nil)
	for _, path := range []string{"/metrics", "/debug/trace", "/debug/events", "/debug/summary"} {
		res, _ := get(t, h, path)
		if res.StatusCode != http.StatusOK {
			t.Errorf("%s on nil trace: status %d", path, res.StatusCode)
		}
	}
}

func TestServeLifecycle(t *testing.T) {
	tr := cannedTrace()
	s, err := Serve("127.0.0.1:0", tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil || res.StatusCode != http.StatusOK {
		t.Fatalf("live /metrics: status %d err %v", res.StatusCode, err)
	}
	if !bytes.Contains(body, []byte("isk.window_nodes")) {
		t.Errorf("live /metrics lacks histogram:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(s.URL() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
