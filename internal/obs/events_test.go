package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestEventRecordingOrderAndArgs(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	tr.Event("budget.exhausted", Str("reason", "node-cap"))
	tr.Event("robust.rung", Int("rung", 1), Str("name", "degraded"))
	snap := tr.Snapshot()
	if snap.EventsSeen != 2 || len(snap.Events) != 2 {
		t.Fatalf("seen=%d len=%d, want 2/2", snap.EventsSeen, len(snap.Events))
	}
	for i, ev := range snap.Events {
		if ev.Seq != int64(i) {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i)
		}
	}
	if snap.Events[0].Name != "budget.exhausted" || snap.Events[1].Name != "robust.rung" {
		t.Errorf("event order wrong: %+v", snap.Events)
	}
	if snap.Events[1].Time <= snap.Events[0].Time {
		t.Errorf("event times not increasing: %v then %v", snap.Events[0].Time, snap.Events[1].Time)
	}
	if args := snap.Events[1].Args; len(args) != 2 || args[0].Val != int64(1) {
		t.Errorf("robust.rung args = %+v", args)
	}
}

func TestEventRingEvictsOldestFirst(t *testing.T) {
	tr := fakeClock(time.Microsecond)
	total := defaultEventCapacity + 50
	for i := 0; i < total; i++ {
		tr.Event(fmt.Sprintf("e%d", i))
	}
	snap := tr.Snapshot()
	if snap.EventsSeen != int64(total) {
		t.Errorf("seen = %d, want %d", snap.EventsSeen, total)
	}
	if len(snap.Events) != defaultEventCapacity {
		t.Fatalf("ring holds %d, want capacity %d", len(snap.Events), defaultEventCapacity)
	}
	// The ring keeps the newest capacity events: the oldest surviving event
	// is number total - capacity, and order is oldest first.
	for i, ev := range snap.Events {
		wantSeq := int64(total - defaultEventCapacity + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d: seq %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Name != fmt.Sprintf("e%d", wantSeq) {
			t.Fatalf("event %d: name %q, want e%d", i, ev.Name, wantSeq)
		}
	}
}

func TestWriteEventsJSON(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	tr.Event("fault.injected", Str("fault", "region-loss"), Int("region", 2))
	tr.Event("budget.exhausted", Str("reason", "deadline"))
	var buf bytes.Buffer
	if err := tr.WriteEventsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Seen    int64 `json:"seen"`
		Dropped int64 `json:"dropped"`
		Events  []struct {
			TUS  float64        `json:"t_us"`
			Seq  int64          `json:"seq"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Seen != 2 || doc.Dropped != 0 || len(doc.Events) != 2 {
		t.Fatalf("doc totals = %d/%d/%d events, want 2/0/2", doc.Seen, doc.Dropped, len(doc.Events))
	}
	if doc.Events[0].Name != "fault.injected" || doc.Events[0].Args["fault"] != "region-loss" {
		t.Errorf("first event = %+v", doc.Events[0])
	}
	if doc.Events[1].TUS <= doc.Events[0].TUS {
		t.Errorf("timestamps not increasing: %v then %v", doc.Events[0].TUS, doc.Events[1].TUS)
	}
}

func TestSummaryIncludesEventTail(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	for i := 0; i < 15; i++ {
		tr.Event(fmt.Sprintf("ev%d", i))
	}
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !bytes.Contains(buf.Bytes(), []byte("events (last 10 of 15):")) {
		t.Errorf("summary lacks the event tail header:\n%s", out)
	}
	// Newest last: ev14 present, ev4 (11th newest) cut.
	if !bytes.Contains(buf.Bytes(), []byte("ev14")) {
		t.Errorf("summary tail lacks the newest event:\n%s", out)
	}
	if bytes.Contains(buf.Bytes(), []byte("ev4\n")) {
		t.Errorf("summary tail includes an event beyond the last 10:\n%s", out)
	}
}
