package obs

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"time"
)

func TestBucketBoundsAreSortedAndCover12Decades(t *testing.T) {
	if !sort.Float64sAreSorted(bucketBounds) {
		t.Fatalf("bucket boundaries not ascending: %v", bucketBounds)
	}
	if len(bucketBounds) != 37 {
		t.Fatalf("got %d boundaries, want 37 (12 decades of 1-2-5 plus the cap)", len(bucketBounds))
	}
	if bucketBounds[0] != 1 {
		t.Errorf("first boundary = %v, want 1", bucketBounds[0])
	}
	if bucketBounds[len(bucketBounds)-1] != 1e12 {
		t.Errorf("last boundary = %v, want 1e12", bucketBounds[len(bucketBounds)-1])
	}
}

func TestObserveExactAggregates(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	vals := []float64{3, 0.5, 17, 17, 260, 9999}
	for _, v := range vals {
		tr.Observe("nodes", v)
	}
	h, ok := tr.Snapshot().Histograms["nodes"]
	if !ok {
		t.Fatal("no histogram named nodes in snapshot")
	}
	if h.Count != int64(len(vals)) {
		t.Errorf("count = %d, want %d", h.Count, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(h.Sum-sum) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum, sum)
	}
	if h.Min != 0.5 || h.Max != 9999 {
		t.Errorf("min/max = %v/%v, want 0.5/9999", h.Min, h.Max)
	}
	var bucketTotal int64
	for _, b := range h.Buckets {
		bucketTotal += b.Count
	}
	if bucketTotal != h.Count {
		t.Errorf("bucket counts sum to %d, want %d", bucketTotal, h.Count)
	}
}

func TestObserveBucketPlacement(t *testing.T) {
	// A value on a boundary belongs to the bucket above it (lower bound
	// inclusive): 20 must land in the (20, 50] slot, i.e. Le=50.
	tr := fakeClock(time.Millisecond)
	tr.Observe("v", 20)
	h := tr.Snapshot().Histograms["v"]
	if len(h.Buckets) != 1 {
		t.Fatalf("got %d buckets, want 1: %+v", len(h.Buckets), h.Buckets)
	}
	if h.Buckets[0].Le != 50 {
		t.Errorf("boundary value 20 landed in bucket le=%v, want 50", h.Buckets[0].Le)
	}

	// Values beyond the last boundary go to the overflow bucket.
	tr.Observe("big", 5e12)
	hb := tr.Snapshot().Histograms["big"]
	if len(hb.Buckets) != 1 || !hb.Buckets[0].Overflow {
		t.Errorf("5e12 not in overflow bucket: %+v", hb.Buckets)
	}

	// Values below the first boundary go to the underflow bucket (le=1).
	tr.Observe("small", 0.25)
	hs := tr.Snapshot().Histograms["small"]
	if len(hs.Buckets) != 1 || hs.Buckets[0].Le != 1 {
		t.Errorf("0.25 not in the le=1 underflow bucket: %+v", hs.Buckets)
	}
}

func TestQuantileInterpolationAndClamping(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	for i := 1; i <= 100; i++ {
		tr.Observe("u", float64(i))
	}
	h := tr.Snapshot().Histograms["u"]
	// The estimate can be off by at most the bucket width; with the 1-2-5
	// ladder the p50 of uniform 1..100 (true value 50) must land in (20, 100].
	if p50 := h.Quantile(0.50); p50 <= 20 || p50 > 100 {
		t.Errorf("p50 = %v, want within (20, 100]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < h.Quantile(0.50) {
		t.Errorf("p99 %v below p50 %v", p99, h.Quantile(0.50))
	}
	// Quantiles never escape the exact observed extrema.
	if q := h.Quantile(0); q != 1 {
		t.Errorf("q0 = %v, want exact min 1", q)
	}
	if q := h.Quantile(1); q != 100 {
		t.Errorf("q1 = %v, want exact max 100", q)
	}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < h.Min || v > h.Max {
			t.Errorf("Quantile(%v) = %v escapes [%v, %v]", q, v, h.Min, h.Max)
		}
	}

	// Empty histogram: quantiles are 0 by definition.
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}

	// Single observation: every quantile is that value.
	tr.Observe("one", 7)
	ho := tr.Snapshot().Histograms["one"]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := ho.Quantile(q); v != 7 {
			t.Errorf("single-value Quantile(%v) = %v, want 7", q, v)
		}
	}
}

func TestHistogramSnapshotsDeepEqualAcrossRuns(t *testing.T) {
	build := func() map[string]HistogramSnapshot {
		tr := fakeClock(time.Millisecond)
		for _, v := range []float64{3, 17, 17, 44, 260, 0.5, 9999} {
			tr.Observe("nodes", v)
		}
		return tr.Snapshot().Histograms
	}
	if a, b := build(), build(); !reflect.DeepEqual(a, b) {
		t.Errorf("identical observation streams yield different snapshots:\n%+v\nvs\n%+v", a, b)
	}
}

func TestCanonicalReducesWallClockHistograms(t *testing.T) {
	tr := fakeClock(time.Millisecond)
	tr.Observe("solve.pa.latency_us", 812.5)
	tr.Observe("solve.pa.latency_us", 1710.0)
	tr.Observe("pa.attempts", 2)
	tr.Event("par.improved", Int("iteration", 3))
	canon := tr.Snapshot().Canonical()
	lat := canon.Histograms["solve.pa.latency_us"]
	if lat.Count != 2 || lat.Sum != 0 || len(lat.Buckets) != 0 {
		t.Errorf("_us histogram not reduced to count-only: %+v", lat)
	}
	if att := canon.Histograms["pa.attempts"]; att.Sum != 2 {
		t.Errorf("value histogram was altered by Canonical: %+v", att)
	}
	if len(canon.Spans) != 0 {
		t.Errorf("Canonical kept %d spans, want 0", len(canon.Spans))
	}
	if len(canon.Events) != 1 || canon.Events[0].Time != 0 {
		t.Errorf("Canonical events not time-zeroed: %+v", canon.Events)
	}
	if canon.Taken != 0 {
		t.Errorf("Canonical kept snapshot instant %v", canon.Taken)
	}
}
