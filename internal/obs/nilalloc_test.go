package obs

import "testing"

// TestNilTraceZeroAllocs pins the nil-trace overhead contract: every
// recording call on a nil *Trace must be a single pointer comparison with
// zero heap allocations, so production code can call the instruments
// unconditionally. The one caveat is documented here as an assertion:
// constructing event args (the variadic []Arg and the interface boxing
// inside Str/Int/Float) is the *caller's* cost and happens before the nil
// check can run — hot paths that attach args guard with Enabled(), and
// that guarded idiom is zero-alloc too.
func TestNilTraceZeroAllocs(t *testing.T) {
	var tr *Trace
	for name, fn := range map[string]func(){
		"Count":     func() { tr.Count("x", 1) },
		"SetGauge":  func() { tr.SetGauge("x", 0.5) },
		"Observe":   func() { tr.Observe("x", 17) },
		"Event":     func() { tr.Event("x") },
		"StartEnd":  func() { sp := tr.Start("x"); sp.End() },
		"StartRoot": func() { sp := tr.StartRoot("x"); sp.End() },
		"Enabled":   func() { _ = tr.Enabled() },
		"EnabledGuardedEvent": func() {
			if tr.Enabled() {
				tr.Event("x", Str("a", "b"), Int("c", 3))
			}
		},
	} {
		if got := testing.AllocsPerRun(100, fn); got != 0 {
			t.Errorf("nil trace %s: %v allocs/op, want 0", name, got)
		}
	}
}
