package taskgraph

import (
	"bytes"
	"testing"

	"resched/internal/resources"
)

// FuzzLoadGraphJSON fuzzes the JSON loader with arbitrary bytes. Two
// properties are enforced: the loader never panics, and any graph it accepts
// satisfies Validate (the §III structural assumptions) and survives a
// marshal/reload round trip unchanged in shape. The checked-in seed corpus
// under testdata/fuzz runs as part of the ordinary test suite.
func FuzzLoadGraphJSON(f *testing.F) {
	// A small valid graph, produced by the marshaller itself.
	g := New("seed")
	g.AddTask("a",
		Implementation{Name: "a_sw", Kind: SW, Time: 100},
		Implementation{Name: "a_hw", Kind: HW, Time: 10, Res: resources.Vec(100, 1, 0)})
	g.AddTask("b", Implementation{Name: "b_sw", Kind: SW, Time: 200})
	if err := g.AddEdgeComm(0, 1, 7); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x","tasks":[{"name":"t","impls":[{"name":"i","kind":"XX","time":1}]}]}`))
	f.Add([]byte(`{"name":"x","tasks":[],"edges":[[0,1]]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is "no panic"
		}
		if verr := loaded.Validate(); verr != nil {
			t.Fatalf("Read accepted a graph that fails Validate: %v", verr)
		}
		var out bytes.Buffer
		if werr := loaded.Write(&out); werr != nil {
			t.Fatalf("accepted graph does not marshal: %v", werr)
		}
		again, rerr := Read(&out)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if again.N() != loaded.N() || len(again.Edges()) != len(loaded.Edges()) {
			t.Fatalf("round trip changed shape: %d/%d tasks, %d/%d edges",
				loaded.N(), again.N(), len(loaded.Edges()), len(again.Edges()))
		}
	})
}
