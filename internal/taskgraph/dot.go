package taskgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection. Each
// node is labelled with the task name and its implementation menu.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n", g.Name)
	for _, t := range g.Tasks {
		var impls []string
		for _, im := range t.Impls {
			if im.Kind == HW {
				impls = append(impls, fmt.Sprintf("%s %s t=%d %v", im.Name, im.Kind, im.Time, im.Res))
			} else {
				impls = append(impls, fmt.Sprintf("%s %s t=%d", im.Name, im.Kind, im.Time))
			}
		}
		fmt.Fprintf(&b, "  t%d [label=\"%s\\n%s\"];\n", t.ID, t.Name, strings.Join(impls, "\\n"))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  t%d -> t%d;\n", e[0], e[1])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
