package taskgraph

import "fmt"

// TopoOrder returns a topological ordering of the task IDs (Kahn's
// algorithm, smallest-ID-first for determinism) or an error naming a task on
// a cycle when the graph is not acyclic.
func (g *Graph) TopoOrder() ([]int, error) {
	order, err := TopoOrderAdj(len(g.Tasks), g.succ, g.pred)
	if err != nil {
		return nil, fmt.Errorf("taskgraph %q: %w", g.Name, err)
	}
	return order, nil
}

// TopoOrderAdj computes a deterministic topological order for an arbitrary
// adjacency-list DAG with n nodes. Schedulers use it on augmented graphs
// (application edges plus sequencing edges). pred may be nil, in which case
// it is derived from succ.
func TopoOrderAdj(n int, succ, pred [][]int) ([]int, error) {
	var ts TopoScratch
	return ts.OrderAdj(n, succ, pred)
}

// TopoScratch holds the working buffers of repeated topological sorts so hot
// paths (the scheduler re-times its combined graph after every sequencing
// edge) stop reallocating them. The zero value is ready to use; the scratch
// grows to the largest n it has seen. Not safe for concurrent use — give
// each worker its own scratch.
type TopoScratch struct {
	indeg []int
	heap  []int
	order []int
}

// grow ensures the buffers hold n nodes.
func (ts *TopoScratch) grow(n int) {
	if cap(ts.indeg) < n {
		ts.indeg = make([]int, n)
		ts.heap = make([]int, 0, n)
		ts.order = make([]int, 0, n)
	}
}

// OrderAdj is TopoOrderAdj reusing the scratch buffers. The returned slice
// aliases the scratch and is valid until the next call.
func (ts *TopoScratch) OrderAdj(n int, succ, pred [][]int) ([]int, error) {
	ts.grow(n)
	indeg := ts.indeg[:n]
	if pred != nil {
		for v := range indeg {
			indeg[v] = len(pred[v])
		}
	} else {
		for v := range indeg {
			indeg[v] = 0
		}
		for _, ss := range succ {
			for _, v := range ss {
				indeg[v]++
			}
		}
	}
	// Min-heap on node ID for deterministic orders.
	heap := ts.heap[:0]
	push := func(v int) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int {
		v := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && heap[l] < heap[small] {
				small = l
			}
			if r < last && heap[r] < heap[small] {
				small = r
			}
			if small == i {
				break
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
		return v
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(v)
		}
	}
	order := ts.order[:0]
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, w := range succ[v] {
			indeg[w]--
			if indeg[w] == 0 {
				push(w)
			}
		}
	}
	if len(order) != n {
		for v, d := range indeg {
			if d > 0 {
				return nil, fmt.Errorf("cycle detected through task %d", v)
			}
		}
		return nil, fmt.Errorf("cycle detected")
	}
	return order, nil
}

// Reachable returns the set of tasks reachable from start following
// successor edges (start itself excluded).
func (g *Graph) Reachable(start int) map[int]bool {
	seen := make(map[int]bool)
	stack := append([]int(nil), g.succ[start]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, g.succ[v]...)
	}
	return seen
}

// Depth returns, for every task, the length (in edges) of the longest path
// from any source to the task. Sources have depth 0.
func (g *Graph) Depth() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, g.N())
	for _, v := range order {
		for _, p := range g.pred[v] {
			if depth[p]+1 > depth[v] {
				depth[v] = depth[p] + 1
			}
		}
	}
	return depth, nil
}
