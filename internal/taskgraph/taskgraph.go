// Package taskgraph models the application of the scheduling problem: a
// Directed Acyclic Graph G = (T, E) of tasks (§III of the paper), where each
// task offers one or more software implementations and zero or more hardware
// implementations with heterogeneous resource requirements.
package taskgraph

import (
	"fmt"
	"sort"

	"resched/internal/resources"
)

// ImplKind distinguishes hardware from software implementations.
type ImplKind int

const (
	// HW marks an implementation mapped to a reconfigurable region.
	HW ImplKind = iota
	// SW marks an implementation executed on a processor core.
	SW
)

// String returns "HW" or "SW".
func (k ImplKind) String() string {
	switch k {
	case HW:
		return "HW"
	case SW:
		return "SW"
	default:
		return fmt.Sprintf("ImplKind(%d)", int(k))
	}
}

// Implementation is one way of executing a task (an element of I_t).
type Implementation struct {
	// Name identifies the implementation. Distinct tasks may share an
	// implementation name: two HW tasks with the same Name produce the
	// same partial bitstream, enabling module reuse (§VII-A).
	Name string
	// Kind is HW or SW.
	Kind ImplKind
	// Time is the execution time time_i in ticks. Data transfer time is
	// folded into Time per §III.
	Time int64
	// Res is res_{i,r}: the region resource requirement of a HW
	// implementation. It must be zero for SW implementations.
	Res resources.Vector
}

// Task is a node t ∈ T of the application DAG.
type Task struct {
	// ID is the task's index within its Graph (assigned by AddTask).
	ID int
	// Name is a human-readable label.
	Name string
	// Impls lists the available implementations I_t.
	Impls []Implementation
}

// HWImpls returns the indices into Impls of the hardware implementations.
func (t *Task) HWImpls() []int { return t.implsOf(HW) }

// SWImpls returns the indices into Impls of the software implementations.
func (t *Task) SWImpls() []int { return t.implsOf(SW) }

func (t *Task) implsOf(k ImplKind) []int {
	var out []int
	for i, im := range t.Impls {
		if im.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// FastestSW returns the index of the software implementation with the lowest
// execution time, or -1 when the task has none.
func (t *Task) FastestSW() int {
	best := -1
	for i, im := range t.Impls {
		if im.Kind != SW {
			continue
		}
		if best < 0 || im.Time < t.Impls[best].Time {
			best = i
		}
	}
	return best
}

// MinTime returns min_{i ∈ I_t} time_i, used by maxT in eq. (3).
func (t *Task) MinTime() int64 {
	if len(t.Impls) == 0 {
		return 0
	}
	m := t.Impls[0].Time
	for _, im := range t.Impls[1:] {
		if im.Time < m {
			m = im.Time
		}
	}
	return m
}

// Graph is the application task graph.
type Graph struct {
	// Name labels the application.
	Name string
	// Tasks holds the nodes; Tasks[i].ID == i.
	Tasks []*Task

	succ  [][]int
	pred  [][]int
	edges map[[2]int]int64 // dependency → communication time in ticks
}

// New creates an empty task graph.
func New(name string) *Graph {
	return &Graph{Name: name, edges: make(map[[2]int]int64)}
}

// AddTask appends a task and returns it. The implementations are copied.
func (g *Graph) AddTask(name string, impls ...Implementation) *Task {
	t := &Task{ID: len(g.Tasks), Name: name, Impls: append([]Implementation(nil), impls...)}
	g.Tasks = append(g.Tasks, t)
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return t
}

// AddEdge inserts the dependency (from, to) ∈ E with no communication
// cost. Duplicate edges are ignored; self-loops and out-of-range IDs are
// rejected.
func (g *Graph) AddEdge(from, to int) error { return g.AddEdgeComm(from, to, 0) }

// AddEdgeComm inserts the dependency (from, to) ∈ E annotated with a
// communication time in ticks that must elapse between the producer's end
// and the consumer's start (the paper's §VIII future-work extension: §III
// folds transfer time into execution times, which this models explicitly).
// Adding an existing edge keeps the larger communication time.
func (g *Graph) AddEdgeComm(from, to int, comm int64) error {
	if from < 0 || from >= len(g.Tasks) || to < 0 || to >= len(g.Tasks) {
		return fmt.Errorf("taskgraph %q: edge (%d,%d) out of range [0,%d)", g.Name, from, to, len(g.Tasks))
	}
	if from == to {
		return fmt.Errorf("taskgraph %q: self-loop on task %d", g.Name, from)
	}
	if comm < 0 {
		return fmt.Errorf("taskgraph %q: edge (%d,%d) has negative communication time %d", g.Name, from, to, comm)
	}
	key := [2]int{from, to}
	if old, ok := g.edges[key]; ok {
		if comm > old {
			g.edges[key] = comm
		}
		return nil
	}
	g.edges[key] = comm
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// EdgeComm returns the communication time of edge (from, to), or 0 when
// the edge does not exist.
func (g *Graph) EdgeComm(from, to int) int64 { return g.edges[[2]int{from, to}] }

// N returns |T|.
func (g *Graph) N() int { return len(g.Tasks) }

// Succ returns the successor task IDs of t. The slice must not be modified.
func (g *Graph) Succ(t int) []int { return g.succ[t] }

// Pred returns the predecessor task IDs of t. The slice must not be modified.
func (g *Graph) Pred(t int) []int { return g.pred[t] }

// HasEdge reports whether (from, to) ∈ E.
func (g *Graph) HasEdge(from, to int) bool {
	_, ok := g.edges[[2]int{from, to}]
	return ok
}

// Edges returns all edges sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, len(g.edges))
	for e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Validate checks the structural assumptions of §III: the graph is acyclic,
// every task has at least one implementation with positive execution time,
// SW implementations carry no resource requirements, and (per the paper's
// stated assumption) every task has at least one software implementation.
func (g *Graph) Validate() error {
	for _, t := range g.Tasks {
		if len(t.Impls) == 0 {
			return fmt.Errorf("taskgraph %q: task %d (%s) has no implementations", g.Name, t.ID, t.Name)
		}
		hasSW := false
		for i, im := range t.Impls {
			if im.Time <= 0 {
				return fmt.Errorf("taskgraph %q: task %d impl %d (%s) has non-positive time %d", g.Name, t.ID, i, im.Name, im.Time)
			}
			switch im.Kind {
			case SW:
				hasSW = true
				if !im.Res.Zero() {
					return fmt.Errorf("taskgraph %q: task %d SW impl %d (%s) has resource requirements %v", g.Name, t.ID, i, im.Name, im.Res)
				}
			case HW:
				if im.Res.Zero() {
					return fmt.Errorf("taskgraph %q: task %d HW impl %d (%s) has no resource requirements", g.Name, t.ID, i, im.Name)
				}
				if !im.Res.NonNegative() {
					return fmt.Errorf("taskgraph %q: task %d HW impl %d (%s) has negative requirements %v", g.Name, t.ID, i, im.Name, im.Res)
				}
			default:
				return fmt.Errorf("taskgraph %q: task %d impl %d (%s) has invalid kind %d", g.Name, t.ID, i, im.Name, im.Kind)
			}
		}
		if !hasSW {
			return fmt.Errorf("taskgraph %q: task %d (%s) has no software implementation", g.Name, t.ID, t.Name)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Clone returns a deep copy of the graph. The adjacency is copied
// structurally — including successor/predecessor order, which AddEdgeComm
// replays could only reproduce with care — so cloning needs no validation
// and cannot fail.
func (g *Graph) Clone() *Graph {
	c := New(g.Name)
	for _, t := range g.Tasks {
		c.AddTask(t.Name, t.Impls...)
	}
	for i := range g.Tasks {
		c.succ[i] = append([]int(nil), g.succ[i]...)
		c.pred[i] = append([]int(nil), g.pred[i]...)
	}
	for e, comm := range g.edges {
		c.edges[e] = comm
	}
	return c
}

// Sources returns the IDs of tasks without predecessors.
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.Tasks {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns the IDs of tasks without successors.
func (g *Graph) Sinks() []int {
	var out []int
	for i := range g.Tasks {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}
