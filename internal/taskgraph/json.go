package taskgraph

import (
	"encoding/json"
	"fmt"
	"io"

	"resched/internal/resources"
)

// jsonGraph is the on-disk representation of a Graph.
type jsonGraph struct {
	Name  string     `json:"name"`
	Tasks []jsonTask `json:"tasks"`
	Edges [][2]int   `json:"edges"`
	// Comm holds per-edge communication times parallel to Edges; omitted
	// when every edge communicates for free.
	Comm []int64 `json:"comm,omitempty"`
}

type jsonTask struct {
	Name  string     `json:"name"`
	Impls []jsonImpl `json:"impls"`
}

type jsonImpl struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Time int64  `json:"time"`
	CLB  int    `json:"clb,omitempty"`
	BRAM int    `json:"bram,omitempty"`
	DSP  int    `json:"dsp,omitempty"`
}

// MarshalJSON encodes the graph as a stable JSON document.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Edges: g.Edges()}
	if jg.Edges == nil {
		jg.Edges = [][2]int{}
	}
	anyComm := false
	for _, e := range jg.Edges {
		if g.EdgeComm(e[0], e[1]) > 0 {
			anyComm = true
			break
		}
	}
	if anyComm {
		jg.Comm = make([]int64, len(jg.Edges))
		for i, e := range jg.Edges {
			jg.Comm[i] = g.EdgeComm(e[0], e[1])
		}
	}
	for _, t := range g.Tasks {
		jt := jsonTask{Name: t.Name}
		for _, im := range t.Impls {
			jt.Impls = append(jt.Impls, jsonImpl{
				Name: im.Name,
				Kind: im.Kind.String(),
				Time: im.Time,
				CLB:  im.Res[resources.CLB],
				BRAM: im.Res[resources.BRAM],
				DSP:  im.Res[resources.DSP],
			})
		}
		jg.Tasks = append(jg.Tasks, jt)
	}
	return json.Marshal(jg)
}

// UnmarshalJSON decodes a graph previously produced by MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = *New(jg.Name)
	for _, jt := range jg.Tasks {
		var impls []Implementation
		for _, ji := range jt.Impls {
			var kind ImplKind
			switch ji.Kind {
			case "HW":
				kind = HW
			case "SW":
				kind = SW
			default:
				return fmt.Errorf("taskgraph: unknown impl kind %q", ji.Kind)
			}
			impls = append(impls, Implementation{
				Name: ji.Name,
				Kind: kind,
				Time: ji.Time,
				Res:  resources.Vec(ji.CLB, ji.BRAM, ji.DSP),
			})
		}
		g.AddTask(jt.Name, impls...)
	}
	if jg.Comm != nil && len(jg.Comm) != len(jg.Edges) {
		return fmt.Errorf("taskgraph: %d comm entries for %d edges", len(jg.Comm), len(jg.Edges))
	}
	for i, e := range jg.Edges {
		var comm int64
		if jg.Comm != nil {
			comm = jg.Comm[i]
		}
		if err := g.AddEdgeComm(e[0], e[1], comm); err != nil {
			return err
		}
	}
	return nil
}

// Write encodes the graph as indented JSON to w.
func (g *Graph) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Read decodes a graph from JSON and validates it: any graph Read accepts
// satisfies the §III structural assumptions (Validate), so schedulers can
// consume loaded instances without re-checking.
func Read(r io.Reader) (*Graph, error) {
	var g Graph
	if err := json.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("taskgraph: decoding: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("taskgraph: loaded graph invalid: %w", err)
	}
	return &g, nil
}
