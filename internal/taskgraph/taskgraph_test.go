package taskgraph

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"resched/internal/resources"
)

func swImpl(name string, t int64) Implementation {
	return Implementation{Name: name, Kind: SW, Time: t}
}

func hwImpl(name string, t int64, clb, bram, dsp int) Implementation {
	return Implementation{Name: name, Kind: HW, Time: t, Res: resources.Vec(clb, bram, dsp)}
}

// diamond builds the classic 4-task diamond a→{b,c}→d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	for _, n := range []string{"a", "b", "c", "d"} {
		g.AddTask(n, swImpl(n+"_sw", 100), hwImpl(n+"_hw", 10, 50, 1, 2))
	}
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g
}

func TestAddTaskAssignsIDs(t *testing.T) {
	g := New("g")
	for i := 0; i < 5; i++ {
		task := g.AddTask("t", swImpl("s", 1))
		if task.ID != i {
			t.Errorf("task %d got ID %d", i, task.ID)
		}
	}
	if g.N() != 5 {
		t.Errorf("N() = %d, want 5", g.N())
	}
}

func TestAddEdge(t *testing.T) {
	g := diamond(t)
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge direction wrong")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Errorf("duplicate edge rejected: %v", err)
	}
	if len(g.Succ(0)) != 2 {
		t.Errorf("duplicate edge duplicated adjacency: %v", g.Succ(0))
	}
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(-1, 2); err == nil {
		t.Error("negative ID accepted")
	}
	if err := g.AddEdge(0, 99); err == nil {
		t.Error("out-of-range ID accepted")
	}
}

func TestSuccPred(t *testing.T) {
	g := diamond(t)
	if got := g.Succ(0); len(got) != 2 {
		t.Errorf("Succ(0) = %v", got)
	}
	if got := g.Pred(3); len(got) != 2 {
		t.Errorf("Pred(3) = %v", got)
	}
	if got := g.Sources(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Sinks = %v", got)
	}
}

func TestTopoOrder(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, g.N())
	for i, v := range order {
		pos[v] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated by order %v", e, order)
		}
	}
	// Deterministic: smallest-ID-first Kahn on the diamond gives 0,1,2,3.
	want := []int{0, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New("cyc")
	g.AddTask("a", swImpl("s", 1))
	g.AddTask("b", swImpl("s", 1))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 0)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

// Property: on random DAGs (edges only from lower to higher ID), TopoOrder
// succeeds and respects every edge.
func TestTopoOrderRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		g := New("rand")
		for i := 0; i < n; i++ {
			g.AddTask("t", swImpl("s", 1))
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					mustEdge(t, g, i, j)
				}
			}
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for _, e := range g.Edges() {
			if pos[e[0]] >= pos[e[1]] {
				t.Fatalf("trial %d: edge %v violated", trial, e)
			}
		}
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func() *Graph {
		g := New("v")
		g.AddTask("a", swImpl("s", 10), hwImpl("h", 2, 10, 0, 0))
		return g
	}
	g := mk()
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	g = New("no-impl")
	g.AddTask("a")
	if err := g.Validate(); err == nil {
		t.Error("task without implementations accepted")
	}

	g = New("no-sw")
	g.AddTask("a", hwImpl("h", 2, 10, 0, 0))
	if err := g.Validate(); err == nil {
		t.Error("task without SW implementation accepted")
	}

	g = New("bad-time")
	g.AddTask("a", swImpl("s", 0))
	if err := g.Validate(); err == nil {
		t.Error("zero execution time accepted")
	}

	g = New("sw-res")
	g.AddTask("a", Implementation{Name: "s", Kind: SW, Time: 5, Res: resources.Vec(1, 0, 0)})
	if err := g.Validate(); err == nil {
		t.Error("SW implementation with resources accepted")
	}

	g = New("hw-zero")
	g.AddTask("a", swImpl("s", 5), Implementation{Name: "h", Kind: HW, Time: 5})
	if err := g.Validate(); err == nil {
		t.Error("HW implementation without resources accepted")
	}

	g = New("bad-kind")
	g.AddTask("a", Implementation{Name: "x", Kind: ImplKind(9), Time: 5})
	if err := g.Validate(); err == nil {
		t.Error("invalid impl kind accepted")
	}
}

func TestTaskHelpers(t *testing.T) {
	task := &Task{Impls: []Implementation{
		swImpl("s1", 100), hwImpl("h1", 20, 1, 0, 0), swImpl("s2", 50), hwImpl("h2", 10, 2, 0, 0),
	}}
	if got := task.HWImpls(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("HWImpls = %v", got)
	}
	if got := task.SWImpls(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("SWImpls = %v", got)
	}
	if got := task.FastestSW(); got != 2 {
		t.Errorf("FastestSW = %d, want 2", got)
	}
	if got := task.MinTime(); got != 10 {
		t.Errorf("MinTime = %d, want 10", got)
	}
	empty := &Task{}
	if got := empty.FastestSW(); got != -1 {
		t.Errorf("FastestSW on empty = %d, want -1", got)
	}
	if got := empty.MinTime(); got != 0 {
		t.Errorf("MinTime on empty = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	if c.N() != g.N() || len(c.Edges()) != len(g.Edges()) {
		t.Fatal("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	c.AddTask("extra", swImpl("s", 1))
	mustEdge(t, c, 3, 4)
	if g.N() != 4 || g.HasEdge(3, 4) {
		t.Error("clone mutation leaked into original")
	}
	// Implementations are copied by value.
	c.Tasks[0].Impls[0].Time = 9999
	if g.Tasks[0].Impls[0].Time == 9999 {
		t.Error("clone shares implementation storage")
	}
}

func TestReachable(t *testing.T) {
	g := diamond(t)
	r := g.Reachable(0)
	if len(r) != 3 || !r[1] || !r[2] || !r[3] {
		t.Errorf("Reachable(0) = %v", r)
	}
	if len(g.Reachable(3)) != 0 {
		t.Error("sink should reach nothing")
	}
}

func TestDepth(t *testing.T) {
	g := diamond(t)
	d, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i := range want {
		if d[i] != want[i] {
			t.Errorf("Depth[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.N() != g.N() {
		t.Fatalf("round trip lost shape: %s %d", back.Name, back.N())
	}
	for i, task := range g.Tasks {
		bt := back.Tasks[i]
		if bt.Name != task.Name || len(bt.Impls) != len(task.Impls) {
			t.Fatalf("task %d mismatch", i)
		}
		for j := range task.Impls {
			if bt.Impls[j] != task.Impls[j] {
				t.Errorf("task %d impl %d: %+v != %+v", i, j, bt.Impls[j], task.Impls[j])
			}
		}
	}
	ge, be := g.Edges(), back.Edges()
	if len(ge) != len(be) {
		t.Fatalf("edge count %d != %d", len(be), len(ge))
	}
	for i := range ge {
		if ge[i] != be[i] {
			t.Errorf("edge %d: %v != %v", i, be[i], ge[i])
		}
	}
}

func TestJSONRejectsBadKind(t *testing.T) {
	doc := `{"name":"x","tasks":[{"name":"a","impls":[{"name":"i","kind":"FPGA","time":3}]}],"edges":[]}`
	var g Graph
	if err := json.Unmarshal([]byte(doc), &g); err == nil {
		t.Error("unknown impl kind accepted")
	}
}

func TestJSONRejectsBadEdge(t *testing.T) {
	doc := `{"name":"x","tasks":[{"name":"a","impls":[{"name":"i","kind":"SW","time":3}]}],"edges":[[0,5]]}`
	var g Graph
	if err := json.Unmarshal([]byte(doc), &g); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, frag := range []string{"digraph", "t0 -> t1", "t2 -> t3", "a_hw"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, s)
		}
	}
}

func TestTopoOrderAdjWithoutPred(t *testing.T) {
	succ := [][]int{{1, 2}, {3}, {3}, nil}
	order, err := TopoOrderAdj(4, succ, nil)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 0 || order[3] != 3 {
		t.Errorf("order = %v", order)
	}
}

func TestImplKindString(t *testing.T) {
	if HW.String() != "HW" || SW.String() != "SW" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(ImplKind(7).String(), "7") {
		t.Error("unknown kind string")
	}
}

func TestAddEdgeComm(t *testing.T) {
	g := New("comm")
	g.AddTask("a", swImpl("s", 1))
	g.AddTask("b", swImpl("s", 1))
	if err := g.AddEdgeComm(0, 1, 40); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeComm(0, 1); got != 40 {
		t.Errorf("EdgeComm = %d, want 40", got)
	}
	if got := g.EdgeComm(1, 0); got != 0 {
		t.Errorf("missing edge comm = %d, want 0", got)
	}
	// Re-adding keeps the larger communication time.
	if err := g.AddEdgeComm(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeComm(0, 1); got != 40 {
		t.Errorf("smaller re-add lowered comm to %d", got)
	}
	if err := g.AddEdgeComm(0, 1, 90); err != nil {
		t.Fatal(err)
	}
	if got := g.EdgeComm(0, 1); got != 90 {
		t.Errorf("larger re-add ignored: %d", got)
	}
	if len(g.Succ(0)) != 1 {
		t.Errorf("duplicate adjacency after re-adds: %v", g.Succ(0))
	}
	if err := g.AddEdgeComm(0, 1, -5); err == nil {
		t.Error("negative communication accepted")
	}
}

func TestCommJSONRoundTrip(t *testing.T) {
	g := New("comm")
	for i := 0; i < 3; i++ {
		g.AddTask("t", swImpl("s", 10))
	}
	if err := g.AddEdgeComm(0, 1, 123); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, 1, 2) // zero-comm edge
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"comm\"") {
		t.Errorf("comm array missing from JSON:\n%s", buf.String())
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.EdgeComm(0, 1) != 123 || back.EdgeComm(1, 2) != 0 {
		t.Errorf("round trip lost comm: %d, %d", back.EdgeComm(0, 1), back.EdgeComm(1, 2))
	}
	// Graphs without comm omit the array entirely.
	plain := New("plain")
	plain.AddTask("a", swImpl("s", 1))
	plain.AddTask("b", swImpl("s", 1))
	mustEdge(t, plain, 0, 1)
	buf.Reset()
	if err := plain.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"comm\"") {
		t.Error("comm array emitted for a comm-free graph")
	}
}

func TestCommJSONLengthMismatch(t *testing.T) {
	doc := `{"name":"x","tasks":[{"name":"a","impls":[{"name":"i","kind":"SW","time":3}]},
	 {"name":"b","impls":[{"name":"i","kind":"SW","time":3}]}],
	 "edges":[[0,1]],"comm":[1,2]}`
	var g Graph
	if err := json.Unmarshal([]byte(doc), &g); err == nil {
		t.Error("comm/edges length mismatch accepted")
	}
}

func TestClonePreservesComm(t *testing.T) {
	g := New("c")
	g.AddTask("a", swImpl("s", 1))
	g.AddTask("b", swImpl("s", 1))
	if err := g.AddEdgeComm(0, 1, 55); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if c.EdgeComm(0, 1) != 55 {
		t.Errorf("clone comm = %d", c.EdgeComm(0, 1))
	}
}

// mustEdge adds a dependency or fails the test; the library itself no longer
// panics on construction errors.
func mustEdge(tb testing.TB, g *Graph, from, to int) {
	tb.Helper()
	if err := g.AddEdge(from, to); err != nil {
		tb.Fatal(err)
	}
}
