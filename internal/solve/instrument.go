package solve

import (
	"errors"
	"time"

	"resched/internal/budget"
	"resched/internal/obs"
)

// instrumented decorates a registered solver with the uniform observability
// every frontend gets for free: a detached root span and a request-latency
// histogram per solve, request/error counters, the ladder-rung counter for
// the robust solver, and a budget-exhaustion flight-recorder event. The
// decorator is applied once, at Register time, so per-solver wiring cannot
// drift — any solver reachable through Get/List is instrumented.
//
// All recording goes through the request's Trace: with a nil Trace the
// decorator is a single branch and the wrapped solver runs untouched, and
// because package obs never feeds back into scheduling, instrumented and
// uninstrumented runs produce identical schedules (TestTracingDeterminism).
type instrumented struct {
	inner Solver
}

// sizedInstrumented additionally forwards the optional MaxTasks ceiling
// that generic registry drivers type-assert for (the exhaustive reference
// declares one); wrapping must not hide it.
type sizedInstrumented struct {
	instrumented
	sized interface{ MaxTasks() int }
}

// MaxTasks forwards the wrapped solver's instance-size ceiling.
func (s sizedInstrumented) MaxTasks() int { return s.sized.MaxTasks() }

// instrument wraps a solver for registration, preserving the MaxTasks
// type-assertion surface when the solver has one.
func instrument(s Solver) Solver {
	w := instrumented{inner: s}
	if sized, ok := s.(interface{ MaxTasks() int }); ok {
		return sizedInstrumented{instrumented: w, sized: sized}
	}
	return w
}

// Name forwards the registry name of the wrapped solver.
func (w instrumented) Name() string { return w.inner.Name() }

// Solve runs the wrapped solver and records the uniform metrics. The span
// is a detached root (StartRoot) so concurrent Solve calls sharing one
// trace — the experiments harness's instance pool — cannot corrupt the
// sequential nesting stack of the solver's own spans.
func (w instrumented) Solve(req *Request) (*Result, error) {
	tr := req.Trace
	if tr == nil {
		return w.inner.Solve(req)
	}
	name := w.inner.Name()
	prefix := "solve." + name
	sp := tr.StartRoot(prefix)
	begin := time.Now()
	res, err := w.inner.Solve(req)
	elapsed := time.Since(begin)
	tr.Observe(prefix+".latency_us", float64(elapsed.Nanoseconds())/1e3)
	tr.Count(prefix+".requests", 1)
	if err != nil {
		tr.Count(prefix+".errors", 1)
		if errors.Is(err, budget.ErrExhausted) {
			tr.Event("solve.budget_exhausted",
				obs.Str("solver", name), obs.Str("reason", budgetReason(err)))
		}
		sp.End(obs.Str("outcome", "error"))
		return res, err
	}
	if res.Ladder != nil {
		tr.Count(prefix+".rung."+res.Ladder.Rung.String(), 1)
	}
	sp.End(obs.Str("outcome", "ok"))
	return res, err
}

// budgetReason extracts the specific exhaustion reason from a budget error
// chain ("cancelled", "deadline passed", "node cap reached").
func budgetReason(err error) string {
	var be *budget.Error
	if errors.As(err, &be) {
		return be.Reason.String()
	}
	return "exhausted"
}
