package solve

import (
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/schedule"
)

// TestWarmStateForwarded verifies the warm platform state reaches every
// solver that supports it: a uniform processor floor must shift the whole
// schedule, and the result must validate against the state.
func TestWarmStateForwarded(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 8, Seed: 2})
	a := arch.ZedBoard()
	floors := make([]int64, a.Processors)
	for p := range floors {
		floors[p] = 75
	}
	rel := make([]int64, g.N())
	for v := range rel {
		rel[v] = 75
	}
	ps := &schedule.PlatformState{ProcAvail: floors, Release: rel}
	for _, name := range []string{"pa", "par", "is1", "is5", "robust"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Solve(&Request{Graph: g, Arch: a, Options: Options{
			SkipFloorplan: true, MaxIterations: 4, Initial: ps,
		}})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		for v, asg := range res.Schedule.Tasks {
			if asg.Start < 75 {
				t.Errorf("%s: task %d starts at %d, release floor is 75", name, v, asg.Start)
				break
			}
		}
		if errs := schedule.CheckAgainst(ps, res.Schedule); len(errs) > 0 {
			t.Errorf("%s: warm schedule invalid: %v", name, errs)
		}
	}
}

// TestWarmStateExactRejected pins the exact reference's contract: it
// enumerates cold schedules only.
func TestWarmStateExactRejected(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 4, Seed: 1})
	a := arch.ZedBoard()
	s, err := Get("exact")
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Solve(&Request{Graph: g, Arch: a, Options: Options{
		Initial: &schedule.PlatformState{Release: []int64{5, 0, 0, 0}},
	}})
	if err == nil || !strings.Contains(err.Error(), "cold schedules only") {
		t.Fatalf("want cold-only rejection, got %v", err)
	}
	// An empty state is not a warm start: the exact solver must accept it.
	if _, err := s.Solve(&Request{Graph: g, Arch: a, Options: Options{
		Initial: &schedule.PlatformState{},
	}}); err != nil {
		t.Fatalf("empty state rejected: %v", err)
	}
}
