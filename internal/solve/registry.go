package solve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry maps stable solver names to implementations. The built-in
// solvers register from this package's init, so every importer sees the
// same roster; additional solvers may register at program init time.
var (
	registryMu sync.RWMutex
	registry   = map[string]Solver{}

	wrapperMu sync.RWMutex
	wrapper   func(Solver) Solver
)

// SetWrapper installs a process-wide decorator applied to every solver Get
// returns, outside the observability wrapper — the hook the schedule cache
// (internal/schedcache) uses so every registry frontend (CLI, experiments
// harness, serving tier) benefits without per-frontend wiring. The wrapper
// must preserve the Solver contract (stateless dispatch, concurrent-safe
// Solve) and should forward the optional MaxTasks surface. Passing nil
// uninstalls it. List is unaffected: it names solvers, not instances.
func SetWrapper(w func(Solver) Solver) {
	wrapperMu.Lock()
	wrapper = w
	wrapperMu.Unlock()
}

// Register adds a solver under its Name, decorated with the uniform
// observability wrapper (see instrument.go): every solver reachable
// through Get or List records request latency, result/error counters and
// budget-exhaustion events on the request's Trace without per-solver
// wiring. Register panics on an empty name or a duplicate registration:
// both are programmer errors at init time, and a silently replaced solver
// would make dispatch ambiguous.
func Register(s Solver) {
	name := s.Name()
	if name == "" {
		panic("solve: Register with empty solver name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("solve: Register called twice for solver %q", name))
	}
	registry[name] = instrument(s)
}

// Get resolves a solver by name. The error enumerates the registered
// names so CLI typos are self-explanatory.
func Get(name string) (Solver, error) {
	registryMu.RLock()
	s, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("solve: unknown solver %q (have %s)", name, strings.Join(List(), ", "))
	}
	wrapperMu.RLock()
	w := wrapper
	wrapperMu.RUnlock()
	if w != nil {
		s = w(s)
	}
	return s, nil
}

// List returns the registered solver names in stable (sorted) order, the
// order every generated help text and registry iteration uses.
func List() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
