package solve

import (
	"errors"
	"strconv"

	"resched/internal/exact"
	"resched/internal/isk"
	"resched/internal/sched"
)

// The built-in roster: every scheduling algorithm in the repository,
// registered under the names the paper's evaluation uses. The adapters
// below are the only place a raw per-algorithm option struct is assembled
// from the cross-cutting Options (enforced by the solvecheck analyzer).
func init() {
	Register(paSolver{})
	Register(parSolver{})
	Register(iskSolver{k: 1})
	Register(iskSolver{k: 5})
	Register(exactSolver{})
	Register(robustSolver{})
}

// paSolver adapts the deterministic PA heuristic (sched.Schedule, §V).
type paSolver struct{}

func (paSolver) Name() string { return "pa" }

func (paSolver) Solve(req *Request) (*Result, error) {
	sch, stats, err := sched.Schedule(req.Graph, req.Arch, sched.Options{
		ModuleReuse:   req.ModuleReuse,
		SkipFloorplan: req.SkipFloorplan,
		Floorplan:     req.Floorplan,
		Arena:         req.Arena,
		Initial:       req.Initial,
		FloorplanHint: req.FloorplanHint,
		Budget:        req.Budget,
		Faults:        req.Faults,
		Trace:         req.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:       sch,
		Makespan:       sch.Makespan,
		Placements:     stats.Placements,
		SchedulingTime: stats.SchedulingTime,
		FloorplanTime:  stats.FloorplanTime,
		Retries:        stats.Retries,
		Iterations:     stats.Attempts,
	}, nil
}

// parSolver adapts the randomized PA-R search (sched.RSchedule, §VI).
type parSolver struct{}

func (parSolver) Name() string { return "par" }

func (parSolver) Solve(req *Request) (*Result, error) {
	sch, stats, err := sched.RSchedule(req.Graph, req.Arch, sched.RandomOptions{
		TimeBudget:       req.TimeBudget,
		MaxIterations:    req.MaxIterations,
		Seed:             req.Seed,
		Workers:          req.Workers,
		ModuleReuse:      req.ModuleReuse,
		Floorplan:        req.Floorplan,
		Initial:          req.Initial,
		InitialIncumbent: req.InitialIncumbent,
		Budget:           req.Budget,
		Faults:           req.Faults,
		Trace:            req.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:       sch,
		Makespan:       sch.Makespan,
		SchedulingTime: stats.SchedulingTime,
		FloorplanTime:  stats.FloorplanTime,
		Retries:        stats.Discarded,
		Iterations:     stats.Iterations,
		Search: &SearchStats{
			FloorplanCalls: stats.FloorplanCalls,
			Discarded:      stats.Discarded,
			Improvements:   len(stats.History),
			CapacityFactor: stats.CapacityFactor,
			History:        stats.History,
			Elapsed:        stats.Elapsed,
		},
	}, nil
}

// iskSolver adapts the IS-k baseline (isk.Schedule, ref [6]); one instance
// per window size is registered ("is1", "is5").
type iskSolver struct{ k int }

func (s iskSolver) Name() string { return "is" + strconv.Itoa(s.k) }

func (s iskSolver) Solve(req *Request) (*Result, error) {
	sch, stats, err := isk.Schedule(req.Graph, req.Arch, isk.Options{
		K:              s.k,
		ModuleReuse:    req.ModuleReuse,
		SkipFloorplan:  req.SkipFloorplan,
		Floorplan:      req.Floorplan,
		MaxWindowNodes: req.MaxNodes,
		Initial:        req.Initial,
		Budget:         req.Budget,
		Faults:         req.Faults,
		Trace:          req.Trace,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:       sch,
		Makespan:       sch.Makespan,
		Placements:     stats.Placements,
		SchedulingTime: stats.SchedulingTime,
		FloorplanTime:  stats.FloorplanTime,
		Retries:        stats.Retries,
		Iterations:     stats.Windows,
		Window: &WindowStats{
			Windows: stats.Windows,
			Nodes:   stats.Nodes,
		},
	}, nil
}

// exactSolver adapts the exhaustive non-delay reference (exact.Schedule).
type exactSolver struct{}

func (exactSolver) Name() string { return "exact" }

// MaxTasks exposes the instance-size ceiling of the exhaustive search so
// generic registry drivers (tests, sweeps) can pick a graph it accepts.
func (exactSolver) MaxTasks() int { return exact.MaxTasks }

func (exactSolver) Solve(req *Request) (*Result, error) {
	if req.Initial != nil && !req.Initial.Empty() {
		return nil, errors.New("solve: the exact reference enumerates cold schedules only; it cannot start from a warm platform state")
	}
	sch, stats, err := exact.Schedule(req.Graph, req.Arch, exact.Options{
		ModuleReuse: req.ModuleReuse,
		MaxNodes:    req.MaxNodes,
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		Schedule:       sch,
		Makespan:       sch.Makespan,
		SchedulingTime: stats.Elapsed,
		Iterations:     1,
		Exact: &ExactStats{
			Nodes:  stats.Nodes,
			Proven: stats.Proven,
		},
	}, nil
}

// robustSolver adapts the degradation ladder (sched.Robust).
type robustSolver struct{}

func (robustSolver) Name() string { return "robust" }

func (robustSolver) Solve(req *Request) (*Result, error) {
	res, err := sched.Robust(req.Graph, req.Arch, sched.RobustOptions{
		ModuleReuse:      req.ModuleReuse,
		Floorplan:        req.Floorplan,
		RandomIterations: req.MaxIterations,
		RandomTime:       req.TimeBudget,
		RandomSeed:       req.Seed,
		Arena:            req.Arena,
		Initial:          req.Initial,
		FloorplanHint:    req.FloorplanHint,
		InitialIncumbent: req.InitialIncumbent,
		Budget:           req.Budget,
		Faults:           req.Faults,
		Trace:            req.Trace,
	})
	if err != nil {
		return nil, err
	}
	out := &Result{
		Schedule:   res.Schedule,
		Makespan:   res.Schedule.Makespan,
		Placements: res.Placements,
		Ladder: &LadderStats{
			Rung:     res.Rung,
			Degraded: len(res.Reasons) > 0,
			Reasons:  res.ReasonSummary(),
		},
	}
	if res.Stats != nil {
		out.SchedulingTime = res.Stats.SchedulingTime
		out.FloorplanTime = res.Stats.FloorplanTime
		out.Retries = res.Stats.Retries
		out.Iterations = res.Stats.Attempts
	}
	return out, nil
}
