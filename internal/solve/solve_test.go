package solve

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/exact"
	"resched/internal/isk"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

func genGraph(tb testing.TB, cfg benchgen.Config) *taskgraph.Graph {
	tb.Helper()
	g, err := benchgen.Generate(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// TestRegistryRoster pins the built-in solver roster: every algorithm the
// paper evaluates is reachable by name, and List is sorted so -algo help
// text and test iteration order are stable.
func TestRegistryRoster(t *testing.T) {
	want := []string{"exact", "is1", "is5", "pa", "par", "robust"}
	got := List()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("List() = %v, want %v", got, want)
	}
	if !sort.StringsAreSorted(got) {
		t.Errorf("List() is not sorted: %v", got)
	}
	for _, name := range want {
		s, err := Get(name)
		if err != nil {
			t.Errorf("Get(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("Get(%q).Name() = %q", name, s.Name())
		}
	}
}

// TestGetUnknown locks the error contract: a typo'd -algo value produces an
// error that enumerates the valid names.
func TestGetUnknown(t *testing.T) {
	_, err := Get("milp")
	if err == nil {
		t.Fatal("Get(\"milp\") succeeded")
	}
	for _, name := range List() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention registered solver %q", err, name)
		}
	}
}

// TestRegisterRejects pins the registration failure modes: empty names and
// duplicates panic at init time instead of shadowing silently.
func TestRegisterRejects(t *testing.T) {
	mustPanic := func(name string, s Solver) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("Register(%q) did not panic", name)
			}
		}()
		Register(s)
	}
	mustPanic("", nameOnly(""))
	mustPanic("pa", nameOnly("pa")) // already taken by the built-in roster
}

// nameOnly is a Solver stub for registration tests.
type nameOnly string

func (n nameOnly) Name() string                    { return string(n) }
func (n nameOnly) Solve(*Request) (*Result, error) { return nil, nil }

// TestAdaptersMatchDirectCalls is the refactor's core acceptance criterion:
// for fixed seeds, solving through the registry must return exactly the
// schedule the underlying package API returns when called directly — the
// adapters translate options and stats but never perturb the computation.
func TestAdaptersMatchDirectCalls(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 2016})
	small := genGraph(t, benchgen.Config{Tasks: 9, Seed: 2016})
	opts := Options{Seed: 7, MaxIterations: 30, Workers: 1, ModuleReuse: true}

	via := func(name string, g *taskgraph.Graph) *schedule.Schedule {
		t.Helper()
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve(&Request{Graph: g, Arch: a, Options: opts})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Makespan != r.Schedule.Makespan {
			t.Errorf("%s: Result.Makespan %d != Schedule.Makespan %d", name, r.Makespan, r.Schedule.Makespan)
		}
		return r.Schedule
	}

	check := func(name string, direct *schedule.Schedule, err error, g *taskgraph.Graph) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s direct: %v", name, err)
		}
		if got := via(name, g); !reflect.DeepEqual(got, direct) {
			t.Errorf("%s: registry schedule differs from direct %s call", name, name)
		}
	}

	pa, _, err := sched.Schedule(g, a, sched.Options{ModuleReuse: true})
	check("pa", pa, err, g)

	par, _, err := sched.RSchedule(g, a, sched.RandomOptions{
		Seed: 7, MaxIterations: 30, Workers: 1, ModuleReuse: true,
	})
	check("par", par, err, g)

	is1, _, err := isk.Schedule(g, a, isk.Options{K: 1, ModuleReuse: true})
	check("is1", is1, err, g)

	is5, _, err := isk.Schedule(g, a, isk.Options{K: 5, ModuleReuse: true})
	check("is5", is5, err, g)

	ex, _, err := exact.Schedule(small, a, exact.Options{ModuleReuse: true})
	check("exact", ex, err, small)

	rob, err := sched.Robust(g, a, sched.RobustOptions{
		ModuleReuse: true, RandomIterations: 30, RandomSeed: 7,
	})
	check("robust", rob.Schedule, err, g)
}
