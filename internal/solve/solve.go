// Package solve is the unified solver engine: one Request/Solver/Result
// contract in front of every scheduling algorithm in the repository — the
// deterministic PA heuristic (§V), the randomized PA-R search (§VI), the
// IS-k MILP baseline (ref [6]), the exhaustive non-delay reference and the
// robust degradation ladder.
//
// The paper evaluates its schedulers head-to-head on identical problem
// instances; the related integrated-optimization line treats "which solver"
// as a pluggable policy over a fixed instance. This package encodes that
// view: a solve.Request carries the instance (graph + architecture) plus
// one Options struct with every cross-cutting concern (budget, tracing,
// fault injection, seed, workers, iteration and node caps), a solve.Solver
// turns a Request into a solve.Result, and a deterministic registry maps
// stable names ("pa", "par", "is1", "is5", "exact", "robust") to solvers so
// frontends — the pasched CLI, the experiments harness, batch servers,
// sharded sweeps — dispatch by name instead of re-implementing a switch
// over five package APIs.
//
// The algorithm packages (internal/sched, internal/isk, internal/exact)
// keep their native APIs; the solvers here are thin adapters that translate
// Options into each package's option struct and normalize the heterogeneous
// stats into one Result. Constructing more than one algorithm's raw option
// struct outside this package is a solvecheck violation (internal/analyze):
// dispatch lives here, once.
package solve

import (
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/sched"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// Options carries every cross-cutting solver knob. Each solver reads the
// subset it understands and ignores the rest, so one Options value can
// drive any registered solver over the same instance — the property the
// experiments harness and the CLI dispatch rely on. The zero value asks
// for the historical defaults of every algorithm.
type Options struct {
	// ModuleReuse enables module reuse in every solver that supports it.
	ModuleReuse bool
	// SkipFloorplan omits the floorplan feasibility loop in the solvers
	// that run one (PA, IS-k). PA-R always floorplans improving solutions
	// and the exact reference never floorplans; both ignore it.
	SkipFloorplan bool
	// Floorplan configures the feasibility queries of the floorplanning
	// solvers. Its Budget/Faults/Trace fields default to the ones below.
	Floorplan floorplan.Options

	// Seed drives the seeded randomization of PA-R (and the robust
	// ladder's PA-R rung). Deterministic solvers ignore it.
	Seed int64
	// Workers sets PA-R's search parallelism (0 = GOMAXPROCS,
	// 1 = sequential). Other solvers ignore it.
	Workers int
	// TimeBudget is PA-R's wall-clock search budget (timeToRun of
	// Algorithm 1) and the robust ladder's PA-R rung budget.
	TimeBudget time.Duration
	// MaxIterations caps PA-R's inner runs (and the ladder's PA-R rung);
	// 0 means unlimited (TimeBudget or Budget must then bound the search).
	MaxIterations int
	// MaxNodes caps the exhaustive searches: branch-and-bound nodes per
	// IS-k window and total nodes of the exact reference (0 = each
	// algorithm's historical default).
	MaxNodes int

	// Arena, when non-nil, is a caller-owned reusable scratch space for
	// the deterministic PA pipeline (PA itself and the robust ladder's PA
	// rung). Long-lived dispatchers — the serving tier's worker pool —
	// keep one arena per worker so buffer reuse spans requests. It must
	// never be shared between concurrent Solve calls; solvers that do not
	// run the PA pipeline ignore it.
	Arena *sched.Arena
	// Budget, when non-nil, bounds the whole solve: deadline, cumulative
	// node cap and cooperative cancellation thread through every solver
	// layer that supports them.
	Budget *budget.Budget
	// Faults, when armed, drives deterministic failure injection through
	// the floorplanner and MILP engine of every solver.
	Faults *faultinject.Set
	// Trace, when non-nil, records the solver's span taxonomy (package
	// obs). A nil trace is a no-op and tracing never perturbs schedules.
	Trace *obs.Trace

	// Initial, when non-nil and non-empty, is the warm platform state the
	// solve starts from: region loadout, busy-until floors, in-flight
	// reconfigurations and per-task release floors left behind by a
	// committed schedule prefix (schedule.PlatformState, produced by
	// schedule.Freeze). PA, PA-R, IS-k and the robust ladder schedule the
	// tail from this state; the exact reference rejects a non-empty state
	// (it enumerates cold schedules only). A nil or Empty state is the
	// historical t=0 solve, bit-identical to omitting the field.
	Initial *schedule.PlatformState

	// InitialIncumbent warm-starts the randomized search (PA-R and the
	// robust ladder's PA-R rung) with a known-good schedule of this exact
	// instance: candidates must beat its makespan before any floorplan
	// query is spent (sched.RandomOptions.InitialIncumbent). Deterministic
	// solvers ignore it. internal/schedcache injects it on near-miss cache
	// lookups; callers setting it by hand own the compatibility claim.
	InitialIncumbent *schedule.Schedule
	// FloorplanHint warm-starts the phase-8 feasibility check of the
	// floorplanning solvers that run the PA pipeline (pa, and the robust
	// ladder's PA rung): a hint that verifies against the run's regions
	// skips the floorplan search; one that does not is ignored
	// (sched.Options.FloorplanHint). Other solvers ignore it.
	FloorplanHint []floorplan.Placement
}

// Request is one scheduling problem instance plus the unified options.
type Request struct {
	Graph *taskgraph.Graph
	Arch  *arch.Architecture
	Options
}

// Solver turns a Request into a Result. Implementations must be stateless
// and safe for concurrent Solve calls: every registered solver is a pure
// function of the request (plus the seed for the randomized ones).
type Solver interface {
	// Name is the stable registry name ("pa", "is5", ...).
	Name() string
	// Solve runs the algorithm on the instance.
	Solve(*Request) (*Result, error)
}
