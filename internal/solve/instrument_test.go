package solve

import (
	"errors"
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/obs"
)

// TestRegistryAutoInstrumentation asserts the decorator applied at Register
// time: solving through the registry with a trace records the uniform
// latency histogram, request counter and per-rung counter without any
// per-solver wiring, and records nothing with a nil trace.
func TestRegistryAutoInstrumentation(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 2016})
	for _, name := range []string{"pa", "par", "is1", "robust"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.New()
		req := &Request{Graph: g, Arch: a, Options: Options{
			Seed: 7, MaxIterations: 5, Workers: 1, Trace: tr,
		}}
		res, err := s.Solve(req)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snap := tr.Snapshot()
		lat, ok := snap.Histograms["solve."+name+".latency_us"]
		if !ok || lat.Count != 1 {
			t.Errorf("%s: latency histogram missing or wrong count: %+v", name, snap.Histograms)
		}
		if snap.Counters["solve."+name+".requests"] != 1 {
			t.Errorf("%s: requests counter = %d, want 1", name, snap.Counters["solve."+name+".requests"])
		}
		if c := snap.Counters["solve."+name+".errors"]; c != 0 {
			t.Errorf("%s: errors counter = %d, want 0", name, c)
		}
		if name == "robust" {
			rung := "solve.robust.rung." + res.Ladder.Rung.String()
			if snap.Counters[rung] != 1 {
				t.Errorf("robust: rung counter %q = %d, want 1 (counters: %v)",
					rung, snap.Counters[rung], snap.Counters)
			}
		}
		var found bool
		for _, sp := range snap.Spans {
			if sp.Name == "solve."+name {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no solve.%s span recorded", name, name)
		}
	}
}

// TestInstrumentationPreservesMaxTasks pins the type-assertion surface the
// generic registry drivers rely on: wrapping must not hide the exhaustive
// reference's instance-size ceiling.
func TestInstrumentationPreservesMaxTasks(t *testing.T) {
	s, err := Get("exact")
	if err != nil {
		t.Fatal(err)
	}
	sized, ok := s.(interface{ MaxTasks() int })
	if !ok {
		t.Fatal("registry exact solver no longer exposes MaxTasks()")
	}
	if sized.MaxTasks() <= 0 {
		t.Errorf("MaxTasks() = %d, want > 0", sized.MaxTasks())
	}
	for _, name := range []string{"pa", "par", "robust"} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := s.(interface{ MaxTasks() int }); ok {
			t.Errorf("%s: wrapper invented a MaxTasks method the solver lacks", name)
		}
	}
}

// TestBudgetExhaustionEvent asserts the flight recorder sees every budget
// trip crossing the registry boundary, with the specific reason attached.
func TestBudgetExhaustionEvent(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 2016})
	s, err := Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.New()
	b := budget.New(budget.Options{MaxNodes: 1})
	_, err = s.Solve(&Request{Graph: g, Arch: a, Options: Options{Budget: b, Trace: tr}})
	if !errors.Is(err, budget.ErrExhausted) {
		t.Fatalf("expected a budget-exhausted error, got %v", err)
	}
	snap := tr.Snapshot()
	if snap.Counters["solve.pa.errors"] != 1 {
		t.Errorf("errors counter = %d, want 1", snap.Counters["solve.pa.errors"])
	}
	var ev *obs.EventInfo
	for i := range snap.Events {
		if snap.Events[i].Name == "solve.budget_exhausted" {
			ev = &snap.Events[i]
		}
	}
	if ev == nil {
		t.Fatalf("no solve.budget_exhausted event in %+v", snap.Events)
	}
	args := map[string]any{}
	for _, arg := range ev.Args {
		args[arg.Key] = arg.Val
	}
	if args["solver"] != "pa" {
		t.Errorf("event solver arg = %v, want pa", args["solver"])
	}
	if args["reason"] != budget.ErrNodeCap.Reason.String() {
		t.Errorf("event reason arg = %v, want %q", args["reason"], budget.ErrNodeCap.Reason.String())
	}
}

// TestNilTracePassthrough asserts the decorator's fast path: with no trace
// the wrapped solver's result is returned untouched and the solve is
// byte-identical to an instrumented one (the determinism contract).
func TestNilTracePassthrough(t *testing.T) {
	a := arch.ZedBoard()
	g := genGraph(t, benchgen.Config{Tasks: 20, Seed: 2016})
	s, err := Get("pa")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := s.Solve(&Request{Graph: g, Arch: a})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := s.Solve(&Request{Graph: g, Arch: a, Options: Options{Trace: obs.New()}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Schedule, traced.Schedule) {
		t.Error("instrumented and uninstrumented solves disagree on the schedule")
	}
	if plain.Makespan != traced.Makespan {
		t.Errorf("makespan %d with nil trace, %d with trace", plain.Makespan, traced.Makespan)
	}
}
