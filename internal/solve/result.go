package solve

import (
	"fmt"
	"io"
	"time"

	"resched/internal/floorplan"
	"resched/internal/sched"
	"resched/internal/schedule"
)

// Result normalizes the heterogeneous per-algorithm statistics
// (sched.Stats, sched.RandomStats, isk.Stats, exact.Stats, sched.Result)
// into one shape: the schedule itself, the uniform Table-I report fields
// every solver shares, and one optional detail block per solver family.
type Result struct {
	// Schedule is the solver's output; non-nil whenever the error is nil.
	Schedule *schedule.Schedule
	// Makespan mirrors Schedule.Makespan for report assembly without
	// chasing the pointer.
	Makespan int64
	// Placements holds the verified floorplan of the schedule's regions
	// (empty when floorplanning was skipped or the solver never ran one).
	Placements []floorplan.Placement

	// The uniform report: the scheduling/floorplanning runtime split of
	// Table I plus the retry and iteration counts every solver exposes
	// (PA: shrink retries and attempts; PA-R: discards and inner runs;
	// IS-k: shrink retries and windows; exact: the single search).
	SchedulingTime time.Duration
	FloorplanTime  time.Duration
	Retries        int
	Iterations     int

	// Search is the randomized-search detail (PA-R); nil otherwise.
	Search *SearchStats
	// Window is the windowed-search detail (IS-k); nil otherwise.
	Window *WindowStats
	// Exact is the exhaustive-reference detail; nil otherwise.
	Exact *ExactStats
	// Ladder is the degradation-ladder detail (robust); nil otherwise.
	Ladder *LadderStats

	// Cache reports how the schedule cache participated when a caching
	// decorator (internal/schedcache) handled the request: "hit" (the
	// stored result was returned without running the solver), "warm" (a
	// cached neighbor warm-started a fresh solve) or "miss" (a fresh solve,
	// now stored). Empty when no cache was in the path — the zero value
	// keeps uncached reports byte-identical to their pre-cache output.
	Cache string
}

// SearchStats describes a PA-R search.
type SearchStats struct {
	// FloorplanCalls, Discarded and Improvements count feasibility
	// queries, rejected improving schedules and accepted improvements.
	FloorplanCalls int
	Discarded      int
	Improvements   int
	// CapacityFactor is the final virtual-capacity scaling (minimum
	// across workers in a parallel search).
	CapacityFactor float64
	// History records every accepted improvement, for the convergence
	// analysis of Fig. 6.
	History []sched.ImprovementPoint
	// Elapsed is the total search time.
	Elapsed time.Duration
}

// WindowStats describes an IS-k run.
type WindowStats struct {
	// Windows solved and total branch-and-bound nodes across them.
	Windows int
	Nodes   int
}

// ExactStats describes the exhaustive reference search.
type ExactStats struct {
	// Nodes explored; Proven is true when the search completed within
	// its node budget (the result is the best non-delay schedule).
	Nodes  int
	Proven bool
}

// LadderStats describes a robust degradation-ladder run.
type LadderStats struct {
	// Rung tells which ladder level produced the schedule.
	Rung sched.Rung
	// Degraded reports that at least one rung above the final one failed;
	// Reasons is the compact failure-chain summary.
	Degraded bool
	Reasons  string
}

// WriteReport renders the user-facing run report: the solver-specific
// detail lines followed by the uniform scheduling/floorplanning/retries/
// iterations line. This is the single renderer behind cmd/pasched and the
// experiments harness; its output is byte-for-byte the report the CLI
// printed before the solve layer existed.
func (r *Result) WriteReport(w io.Writer) error {
	if r.Cache != "" {
		if _, err := fmt.Fprintf(w, "cache: %s\n", r.Cache); err != nil {
			return err
		}
	}
	if l := r.Ladder; l != nil {
		if _, err := fmt.Fprintf(w, "rung: %s\n", l.Rung); err != nil {
			return err
		}
		if l.Reasons != "" {
			if _, err := fmt.Fprintf(w, "degraded: %s\n", l.Reasons); err != nil {
				return err
			}
		}
	}
	if s := r.Search; s != nil {
		if _, err := fmt.Fprintf(w, "floorplan calls %d, discarded %d, improvements %d\n",
			s.FloorplanCalls, s.Discarded, s.Improvements); err != nil {
			return err
		}
	}
	if wd := r.Window; wd != nil {
		if _, err := fmt.Fprintf(w, "windows %d, nodes %d\n", wd.Windows, wd.Nodes); err != nil {
			return err
		}
	}
	if e := r.Exact; e != nil {
		if _, err := fmt.Fprintf(w, "nodes %d, proven %v\n", e.Nodes, e.Proven); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "scheduling %v, floorplanning %v, retries %d, iterations %d\n",
		r.SchedulingTime.Round(time.Microsecond),
		r.FloorplanTime.Round(time.Microsecond),
		r.Retries, r.Iterations)
	return err
}

// Seconds renders a duration with three decimals, the Table-I convention
// shared by every aggregate report.
func Seconds(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
