// Package milp implements a small mixed-integer linear programming solver:
// branch and bound over LP relaxations solved by package lp. It stands in
// for the Gurobi dependency of the paper's MILP-based floorplanner (ref [3])
// and is adequate for the 0/1 placement-selection models that floorplanner
// produces.
package milp

import (
	"errors"
	"fmt"
	"math"

	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/lp"
)

// Problem is a linear program in which a subset of the variables is
// restricted to integer (optionally 0/1) values.
type Problem struct {
	// LP is the underlying relaxation. Variables are non-negative.
	LP *lp.Problem
	// integer[i] marks variable i as integral.
	integer []bool
	// upper[i] is an optional explicit upper bound (NaN when absent);
	// binary variables receive upper bound 1.
	upper []float64
}

// New creates a MILP over n non-negative continuous variables; mark
// integrality with SetInteger / SetBinary.
func New(n int) *Problem {
	up := make([]float64, n)
	for i := range up {
		up[i] = math.NaN()
	}
	return &Problem{LP: lp.NewProblem(n), integer: make([]bool, n), upper: up}
}

// SetInteger restricts variable i to non-negative integers.
func (p *Problem) SetInteger(i int) { p.integer[i] = true }

// SetBinary restricts variable i to {0, 1}.
func (p *Problem) SetBinary(i int) {
	p.integer[i] = true
	p.upper[i] = 1
}

// SetUpper bounds variable i from above.
func (p *Problem) SetUpper(i int, u float64) { p.upper[i] = u }

// Integer reports whether variable i is integral.
func (p *Problem) Integer(i int) bool { return p.integer[i] }

// Status is the outcome of a MILP solve.
type Status int

const (
	// Optimal: proved optimal integral solution.
	Optimal Status = iota
	// Infeasible: no integral solution exists.
	Infeasible
	// Unbounded: the relaxation is unbounded.
	Unbounded
	// Feasible: search limit hit; best incumbent returned without proof.
	Feasible
	// Limit: search limit hit with no incumbent found.
	Limit
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case Feasible:
		return "feasible"
	case Limit:
		return "limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tune the branch-and-bound search.
type Options struct {
	// MaxNodes caps explored nodes in this solve (0 = unlimited).
	MaxNodes int
	// Budget, when non-nil, is charged one unit per explored node; when it
	// is exhausted (deadline, shared node cap, or cancellation) the search
	// stops and returns the incumbent as Feasible — never Optimal — or
	// Limit when no incumbent exists. Replaces the old Deadline field.
	Budget *budget.Budget
	// Faults, when armed, can steal the solve: a forced MILP limit returns
	// Status Limit immediately without searching.
	Faults *faultinject.Set
	// FirstIncumbent stops at the first integral solution. Feasibility
	// queries (such as the floorplanner's) use this.
	FirstIncumbent bool
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
}

const intTol = 1e-6

// node is one subproblem: the base LP plus integer bound tightenings.
type node struct {
	lo, hi []float64 // per-variable extra bounds (NaN = none)
}

// Solve runs depth-first branch and bound.
func (p *Problem) Solve(opt Options) (*Solution, error) {
	if opt.Faults.MILPSolve() {
		return &Solution{Status: Limit}, nil
	}
	n := p.LP.NumVars()
	root := node{lo: make([]float64, n), hi: make([]float64, n)}
	for i := range root.lo {
		root.lo[i] = math.NaN()
		root.hi[i] = p.upper[i]
	}
	sol := &Solution{Status: Limit}
	var best []float64
	bestObj := math.Inf(-1)
	if !p.LP.Maximizing() {
		bestObj = math.Inf(1)
	}
	better := func(a, b float64) bool {
		if p.LP.Maximizing() {
			return a > b+1e-9
		}
		return a < b-1e-9
	}

	stack := []node{root}
	for len(stack) > 0 {
		if opt.MaxNodes > 0 && sol.Nodes >= opt.MaxNodes {
			return p.finish(sol, best, bestObj, false), nil
		}
		if err := opt.Budget.Charge(1); err != nil {
			// Budget exhaustion is a limit stop, not a failure: the caller
			// gets the incumbent (unproven) or Limit, exactly as with
			// MaxNodes, and inspects the budget itself for the reason.
			return p.finish(sol, best, bestObj, false), nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sol.Nodes++

		relax := p.LP.Clone()
		row := make([]float64, n)
		for i := 0; i < n; i++ {
			if !math.IsNaN(nd.lo[i]) {
				row[i] = 1
				relax.AddConstraint(row, lp.GE, nd.lo[i])
				row[i] = 0
			}
			if !math.IsNaN(nd.hi[i]) {
				row[i] = 1
				relax.AddConstraint(row, lp.LE, nd.hi[i])
				row[i] = 0
			}
		}
		rsol, err := relax.SolveBudget(opt.Budget)
		if err != nil {
			if errors.Is(err, budget.ErrExhausted) {
				// A cancel that lands mid-relaxation is the same limit stop
				// as one caught by the Charge above: return the incumbent.
				return p.finish(sol, best, bestObj, false), nil
			}
			return nil, fmt.Errorf("milp: node relaxation: %w", err)
		}
		switch rsol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			// An unbounded relaxation at the root means the MILP itself is
			// unbounded (or its boundedness cannot be established).
			sol.Status = Unbounded
			return sol, nil
		}
		// Bound: prune when the relaxation cannot beat the incumbent.
		if best != nil && !better(rsol.Objective, bestObj) {
			continue
		}
		// Find the most fractional integral variable.
		branch, frac := -1, 0.0
		for i := 0; i < n; i++ {
			if !p.integer[i] {
				continue
			}
			f := rsol.X[i] - math.Floor(rsol.X[i])
			d := math.Min(f, 1-f)
			if d > intTol && d > frac {
				branch, frac = i, d
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			x := append([]float64(nil), rsol.X...)
			for i := 0; i < n; i++ {
				if p.integer[i] {
					x[i] = math.Round(x[i])
				}
			}
			if best == nil || better(rsol.Objective, bestObj) {
				best, bestObj = x, rsol.Objective
			}
			if opt.FirstIncumbent {
				return p.finish(sol, best, bestObj, false), nil
			}
			continue
		}
		// Branch on x_branch ≤ floor and x_branch ≥ ceil. Push the
		// floor-branch last so DFS dives toward small values first, which
		// suits 0/1 selection models.
		up := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		dn := node{lo: append([]float64(nil), nd.lo...), hi: append([]float64(nil), nd.hi...)}
		fl := math.Floor(rsol.X[branch])
		up.lo[branch] = fl + 1
		dn.hi[branch] = fl
		stack = append(stack, up, dn)
	}
	if best == nil {
		// The whole tree was explored without an integral solution.
		sol.Status = Infeasible
		return sol, nil
	}
	return p.finish(sol, best, bestObj, true), nil
}

// finish packages the incumbent (if any) with the right status.
func (p *Problem) finish(sol *Solution, best []float64, bestObj float64, proved bool) *Solution {
	if best == nil {
		sol.Status = Limit
		return sol
	}
	sol.X = best
	sol.Objective = bestObj
	if proved {
		sol.Status = Optimal
	} else {
		sol.Status = Feasible
	}
	return sol
}
