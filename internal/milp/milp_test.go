package milp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10x0 + 13x1 + 7x2, 3x0 + 4x1 + 2x2 ≤ 6, binary → x0=x2=1, z=17...
	// check by brute force below; expected optimum: {x0,x2}: w=5 z=17,
	// {x1,x2}: w=6 z=20 → best is 20.
	p := New(3)
	for i := 0; i < 3; i++ {
		p.SetBinary(i)
	}
	p.LP.SetObjective([]float64{10, 13, 7}, true)
	p.LP.AddConstraint([]float64{3, 4, 2}, lp.LE, 6)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-20) > 1e-6 {
		t.Fatalf("got %v obj=%v, want optimal 20", sol.Status, sol.Objective)
	}
	if math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 || math.Round(sol.X[0]) != 0 {
		t.Errorf("X = %v, want (0,1,1)", sol.X)
	}
}

func TestIntegerInfeasibleLPFeasible(t *testing.T) {
	// 2x = 1 has the LP solution x = 0.5 but no integral solution.
	p := New(1)
	p.SetInteger(0)
	p.LP.SetObjective([]float64{1}, true)
	p.LP.AddConstraint([]float64{2}, lp.EQ, 1)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := New(1)
	p.SetBinary(0)
	p.LP.AddConstraint([]float64{1}, lp.GE, 2)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := New(1)
	p.SetInteger(0)
	p.LP.SetObjective([]float64{1}, true)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// max x + y with x integer, x ≤ 2.5, y ≤ 0.5 → x=2, y=0.5.
	p := New(2)
	p.SetInteger(0)
	p.LP.SetObjective([]float64{1, 1}, true)
	p.LP.AddConstraint([]float64{1, 0}, lp.LE, 2.5)
	p.LP.AddConstraint([]float64{0, 1}, lp.LE, 0.5)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-2.5) > 1e-6 {
		t.Fatalf("got %v obj=%v, want 2.5", sol.Status, sol.Objective)
	}
}

func TestExactCoverFeasibility(t *testing.T) {
	// Pick exactly one placement per region; placements 0&2 conflict.
	// Region A: {0,1}; Region B: {2}; conflict x0 + x2 ≤ 1.
	// Only assignment: x1 = 1, x2 = 1.
	p := New(3)
	for i := 0; i < 3; i++ {
		p.SetBinary(i)
	}
	p.LP.AddConstraint([]float64{1, 1, 0}, lp.EQ, 1)
	p.LP.AddConstraint([]float64{0, 0, 1}, lp.EQ, 1)
	p.LP.AddConstraint([]float64{1, 0, 1}, lp.LE, 1)
	sol, err := p.Solve(Options{FirstIncumbent: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal && sol.Status != Feasible {
		t.Fatalf("status = %v", sol.Status)
	}
	if math.Round(sol.X[0]) != 0 || math.Round(sol.X[1]) != 1 || math.Round(sol.X[2]) != 1 {
		t.Errorf("X = %v, want (0,1,1)", sol.X)
	}
}

func TestMaxNodesLimit(t *testing.T) {
	// A tiny limit on a non-trivial problem must return Limit or Feasible
	// without error.
	p := New(6)
	for i := 0; i < 6; i++ {
		p.SetBinary(i)
	}
	p.LP.SetObjective([]float64{3, 5, 7, 11, 13, 17}, true)
	p.LP.AddConstraint([]float64{2, 3, 5, 7, 9, 11}, lp.LE, 16)
	sol, err := p.Solve(Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == Optimal {
		t.Fatalf("one node cannot prove optimality here: %v", sol.Status)
	}
}

func TestBudgetDeadline(t *testing.T) {
	p := New(4)
	for i := 0; i < 4; i++ {
		p.SetBinary(i)
	}
	p.LP.SetObjective([]float64{1, 2, 3, 4}, true)
	p.LP.AddConstraint([]float64{1, 1, 1, 1}, lp.LE, 2)
	// An already-expired deadline on a fake clock trips on the first
	// charge, so the solve stops before exploring anything.
	clk := faultinject.NewClock()
	bud := budget.New(budget.Options{Deadline: clk.Now().Add(-time.Second), Clock: clk.Now})
	sol, err := p.Solve(Options{Budget: bud})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Limit && sol.Status != Feasible {
		t.Fatalf("status = %v, want limit/feasible", sol.Status)
	}
	if sol.Status == Limit && sol.Nodes != 0 {
		t.Fatalf("expired budget still explored %d nodes", sol.Nodes)
	}
}

func TestStatusString(t *testing.T) {
	names := map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible", Unbounded: "unbounded",
		Feasible: "feasible", Limit: "limit",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Status(42).String() == "" {
		t.Error("unknown status empty")
	}
}

func TestIntegerAccessor(t *testing.T) {
	p := New(2)
	p.SetInteger(1)
	if p.Integer(0) || !p.Integer(1) {
		t.Error("Integer accessor wrong")
	}
	p.SetUpper(0, 5)
	p.LP.SetObjective([]float64{1, 0}, true)
	sol, err := p.Solve(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-5) > 1e-6 {
		t.Fatalf("upper bound ignored: %v %v", sol.Status, sol.Objective)
	}
}

// TestRandomKnapsacksAgainstBruteForce cross-checks B&B against exhaustive
// enumeration on random 0/1 knapsacks with up to 10 items.
func TestRandomKnapsacksAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		val := make([]float64, n)
		wgt := make([]float64, n)
		for i := 0; i < n; i++ {
			val[i] = float64(1 + rng.Intn(20))
			wgt[i] = float64(1 + rng.Intn(10))
		}
		capacity := float64(5 + rng.Intn(20))

		p := New(n)
		for i := 0; i < n; i++ {
			p.SetBinary(i)
		}
		p.LP.SetObjective(val, true)
		p.LP.AddConstraint(wgt, lp.LE, capacity)
		sol, err := p.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var v, w float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += val[i]
					w += wgt[i]
				}
			}
			if w <= capacity && v > best {
				best = v
			}
		}
		if math.Abs(sol.Objective-best) > 1e-6 {
			t.Fatalf("trial %d: milp %v, brute force %v", trial, sol.Objective, best)
		}
		// The reported X must itself be feasible and match the objective.
		var v, w float64
		for i := 0; i < n; i++ {
			xi := math.Round(sol.X[i])
			if xi != 0 && xi != 1 {
				t.Fatalf("trial %d: non-binary x[%d]=%v", trial, i, sol.X[i])
			}
			v += val[i] * xi
			w += wgt[i] * xi
		}
		if w > capacity+1e-6 || math.Abs(v-sol.Objective) > 1e-6 {
			t.Fatalf("trial %d: reported X infeasible or inconsistent", trial)
		}
	}
}

// TestRandomEqualityIPs cross-checks small integer equality systems.
func TestRandomEqualityIPs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		// Construct a feasible 0/1 assignment, then pose Σ a_i x_i = rhs.
		a := make([]float64, n)
		rhs := 0.0
		want := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = float64(1 + rng.Intn(7))
			if rng.Intn(2) == 1 {
				want[i] = 1
				rhs += a[i]
			}
		}
		p := New(n)
		for i := 0; i < n; i++ {
			p.SetBinary(i)
		}
		p.LP.SetObjective(make([]float64, n), true)
		p.LP.AddConstraint(a, lp.EQ, rhs)
		sol, err := p.Solve(Options{FirstIncumbent: true})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal && sol.Status != Feasible {
			t.Fatalf("trial %d: constructed-feasible system reported %v", trial, sol.Status)
		}
		got := 0.0
		for i := 0; i < n; i++ {
			got += a[i] * math.Round(sol.X[i])
		}
		if math.Abs(got-rhs) > 1e-6 {
			t.Fatalf("trial %d: solution violates equality: %v vs %v", trial, got, rhs)
		}
	}
}

// TestBudgetInterplay exercises the three budget limits — node cap,
// deadline and cancellation — through one solver, including how they
// interact when a single budget is shared across consecutive solves.
func TestBudgetInterplay(t *testing.T) {
	// A 6-variable knapsack whose root LP relaxation is fractional, so the
	// solver must branch (TestMaxNodesLimit shows one node cannot prove
	// optimality on this instance).
	newKnapsack := func() *Problem {
		p := New(6)
		for i := 0; i < 6; i++ {
			p.SetBinary(i)
		}
		p.LP.SetObjective([]float64{3, 5, 7, 11, 13, 17}, true)
		p.LP.AddConstraint([]float64{2, 3, 5, 7, 9, 11}, lp.LE, 16)
		return p
	}

	t.Run("node cap stops mid-search without a proof", func(t *testing.T) {
		bud := budget.New(budget.Options{MaxNodes: 2})
		sol, err := newKnapsack().Solve(Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status == Optimal || sol.Status == Infeasible {
			t.Fatalf("capped solve claimed a proof: %v", sol.Status)
		}
		if sol.Nodes > 2 {
			t.Errorf("explored %d nodes past a cap of 2", sol.Nodes)
		}
	})

	t.Run("node accounting is cumulative across solves", func(t *testing.T) {
		// The first solve drains the shared cap; the second must stop on
		// its first charge with nothing explored.
		bud := budget.New(budget.Options{MaxNodes: 3})
		if _, err := newKnapsack().Solve(Options{Budget: bud}); err != nil {
			t.Fatal(err)
		}
		sol, err := newKnapsack().Solve(Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Limit || sol.Nodes != 0 {
			t.Fatalf("drained budget still searched: status=%v nodes=%d", sol.Status, sol.Nodes)
		}
		// Charge counts the node before rejecting it, so each of the two
		// solves may overshoot the shared tally by one rejected charge —
		// but no rejected node is ever actually explored.
		if bud.Nodes() > 3+2 {
			t.Errorf("budget recorded %d nodes against a cap of 3", bud.Nodes())
		}
	})

	t.Run("deadline flips between solves on a fake clock", func(t *testing.T) {
		clk := faultinject.NewClock()
		bud := budget.New(budget.Options{
			Deadline: clk.Now().Add(time.Minute), Clock: clk.Now,
		})
		sol, err := newKnapsack().Solve(Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Optimal {
			t.Fatalf("frozen clock inside the deadline: status=%v, want optimal", sol.Status)
		}
		clk.Advance(2 * time.Minute)
		sol, err = newKnapsack().Solve(Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Limit && sol.Status != Feasible {
			t.Fatalf("expired deadline: status=%v, want limit/feasible", sol.Status)
		}
		if sol.Status == Limit && sol.Nodes != 0 {
			t.Errorf("expired deadline still explored %d nodes", sol.Nodes)
		}
	})

	t.Run("cancellation overrides remaining headroom", func(t *testing.T) {
		// Plenty of nodes and time left — a cancel must still stop the
		// solve before it explores anything.
		clk := faultinject.NewClock()
		bud := budget.New(budget.Options{
			MaxNodes: 1 << 20, Deadline: clk.Now().Add(time.Hour), Clock: clk.Now,
		})
		bud.Cancel()
		sol, err := newKnapsack().Solve(Options{Budget: bud})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != Limit || sol.Nodes != 0 {
			t.Fatalf("cancelled budget still searched: status=%v nodes=%d", sol.Status, sol.Nodes)
		}
		if err := bud.Check(); !errors.Is(err, budget.ErrCancelled) {
			t.Errorf("Check() = %v, want ErrCancelled", err)
		}
	})
}
