package schedule

import (
	"fmt"
	"sort"

	"resched/internal/resources"
)

// This file defines the epoch model of the online scheduling engine: a
// schedule is split at a commit instant into a frozen prefix (placements and
// reconfigurations that have started — facts the platform is already
// executing) and a re-plannable tail. Freeze derives the warm platform state
// the prefix leaves behind; CheckAgainst validates a tail schedule against
// that state the same way Check validates an offline schedule against an
// empty platform.

// WarmRegion is the state one reconfigurable region carries across a commit
// boundary: its footprint, when it falls idle, which module is then
// resident, and — when a frozen reconfiguration already loads the module of
// a not-yet-started task — the task that is pinned to run there first.
type WarmRegion struct {
	// Res is the region's resource requirement (it exists on the device,
	// so it keeps counting against capacity).
	Res resources.Vector
	// Avail is the earliest instant (relative to the commit time) at which
	// the region can start a new execution or reconfiguration: the end of
	// its last frozen execution or in-flight reconfiguration.
	Avail int64
	// Loaded names the implementation resident at Avail ("" when unknown).
	Loaded string
	// Pinned is the task that must execute first in this region, or -1.
	// A pin records a frozen reconfiguration whose outgoing task has not
	// started yet: the bitstream is (being) loaded, so the plan must keep
	// that task here or the committed reconfiguration dangles.
	Pinned int
	// PinnedImpl is the implementation index the frozen reconfiguration
	// loaded for Pinned (meaningful only when Pinned >= 0).
	PinnedImpl int
}

// PlatformState is the warm initial state a re-plan starts from. All times
// are relative to the commit boundary (0 = "now"); the zero value and nil
// both describe the cold platform of an offline solve, and every solver
// treats them identically to the historical t=0 start.
type PlatformState struct {
	// Regions are the regions with frozen content, in a stable order the
	// re-plan must preserve: tail region i is warm region i.
	Regions []WarmRegion
	// ProcAvail[p] is the earliest start on processor p (missing entries
	// and short slices mean 0: the processor is free).
	ProcAvail []int64
	// ReconfAvail[c] is the earliest start on reconfiguration controller c
	// (ends of in-flight reconfigurations, sorted descending).
	ReconfAvail []int64
	// Release[t] is the externally imposed earliest start of task t — job
	// arrival times and data from frozen predecessors. Indexed by the task
	// IDs of the graph being re-planned; nil means no floors.
	Release []int64
}

// Empty reports whether the state imposes nothing beyond a cold platform.
func (ps *PlatformState) Empty() bool {
	if ps == nil {
		return true
	}
	if len(ps.Regions) > 0 {
		return false
	}
	for _, v := range ps.ProcAvail {
		if v != 0 {
			return false
		}
	}
	for _, v := range ps.ReconfAvail {
		if v != 0 {
			return false
		}
	}
	for _, v := range ps.Release {
		if v != 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy.
func (ps *PlatformState) Clone() *PlatformState {
	if ps == nil {
		return nil
	}
	c := &PlatformState{}
	c.Regions = append([]WarmRegion(nil), ps.Regions...)
	c.ProcAvail = append([]int64(nil), ps.ProcAvail...)
	c.ReconfAvail = append([]int64(nil), ps.ReconfAvail...)
	c.Release = append([]int64(nil), ps.Release...)
	return c
}

// Horizon is the commit boundary of a schedule: everything that started
// strictly before Commit is frozen, and Platform is the warm state the
// frozen prefix leaves for the tail re-plan (times relative to Commit).
type Horizon struct {
	// Commit is the boundary instant in the schedule's absolute time.
	Commit int64
	// Frozen[t] reports whether task t started before Commit.
	Frozen []bool
	// FrozenReconf[i] reports whether reconfiguration i started before
	// Commit (parallel to the schedule's Reconfs slice).
	FrozenReconf []bool
	// RegionID[i] is the schedule-level region index warm region i
	// corresponds to; regions without frozen content are not listed (the
	// tail plan is free to re-create or drop them).
	RegionID []int
	// LastFrozenTask[i] is the last frozen task executed in warm region i,
	// or -1 when the region only carries a frozen initial reconfiguration.
	LastFrozenTask []int
	// Platform is the warm state, relative to Commit. Release holds the
	// frozen-predecessor floors of every unstarted task (indexed by the
	// schedule's task IDs); callers fold arrival times in on top.
	Platform PlatformState
}

// Freeze splits a complete schedule at the commit instant and derives the
// warm platform state of its frozen prefix. The schedule must be valid
// (schedule.Check); Freeze itself only guards against structural breakage.
func Freeze(s *Schedule, commit int64) (*Horizon, error) {
	n := s.Graph.N()
	if len(s.Tasks) != n {
		return nil, fmt.Errorf("schedule: freeze: schedule covers %d tasks, graph has %d", len(s.Tasks), n)
	}
	h := &Horizon{
		Commit:       commit,
		Frozen:       make([]bool, n),
		FrozenReconf: make([]bool, len(s.Reconfs)),
	}
	for t, a := range s.Tasks {
		h.Frozen[t] = a.Start < commit
	}
	for i, rc := range s.Reconfs {
		h.FrozenReconf[i] = rc.Start < commit
	}

	// Per-region frozen content: last execution end, last frozen
	// reconfiguration, resident module.
	type regAcc struct {
		hasContent bool
		avail      int64 // max end of frozen events
		loaded     string
		loadedAt   int64 // event end that set loaded
		lastTask   int
		lastTaskAt int64
		pinned     int
		pinnedImpl int
	}
	acc := make([]regAcc, len(s.Regions))
	for i := range acc {
		acc[i].lastTask = -1
		acc[i].pinned = -1
	}
	for t, a := range s.Tasks {
		if !h.Frozen[t] || a.Target.Kind != OnRegion {
			continue
		}
		r := &acc[a.Target.Index]
		r.hasContent = true
		if a.End > r.avail {
			r.avail = a.End
		}
		// An execution implies its module was resident for its whole slot.
		if a.End > r.loadedAt {
			r.loaded, r.loadedAt = s.Impl(t).Name, a.End
		}
		if a.End > r.lastTaskAt || (a.End == r.lastTaskAt && t > r.lastTask) {
			r.lastTask, r.lastTaskAt = t, a.End
		}
	}
	for i, rc := range s.Reconfs {
		if !h.FrozenReconf[i] {
			continue
		}
		if rc.Region < 0 || rc.Region >= len(s.Regions) {
			return nil, fmt.Errorf("schedule: freeze: reconfiguration %d region %d out of range", i, rc.Region)
		}
		r := &acc[rc.Region]
		r.hasContent = true
		if rc.End > r.avail {
			r.avail = rc.End
		}
		if rc.End > r.loadedAt {
			r.loaded, r.loadedAt = s.Impl(rc.OutTask).Name, rc.End
		}
		// A frozen reconfiguration whose outgoing task has not started pins
		// that task: the bitstream is committed, the plan must honour it.
		// At most one such reconfiguration can exist per region (each later
		// reconfiguration requires the previous outgoing task to have run).
		if rc.OutTask >= 0 && rc.OutTask < n && !h.Frozen[rc.OutTask] {
			if r.pinned >= 0 {
				return nil, fmt.Errorf("schedule: freeze: region %d has two frozen reconfigurations with unstarted outgoing tasks (%d and %d)", rc.Region, r.pinned, rc.OutTask)
			}
			r.pinned = rc.OutTask
			r.pinnedImpl = s.Tasks[rc.OutTask].Impl
		}
	}
	for i, r := range acc {
		if !r.hasContent {
			continue
		}
		avail := r.avail - commit
		if avail < 0 {
			avail = 0
		}
		h.RegionID = append(h.RegionID, i)
		h.LastFrozenTask = append(h.LastFrozenTask, r.lastTask)
		h.Platform.Regions = append(h.Platform.Regions, WarmRegion{
			Res:        s.Regions[i].Res,
			Avail:      avail,
			Loaded:     r.loaded,
			Pinned:     r.pinned,
			PinnedImpl: r.pinnedImpl,
		})
	}

	// Processor floors: end of the last frozen task on each core.
	h.Platform.ProcAvail = make([]int64, s.Arch.Processors)
	for t, a := range s.Tasks {
		if !h.Frozen[t] || a.Target.Kind != OnProcessor {
			continue
		}
		if v := a.End - commit; v > h.Platform.ProcAvail[a.Target.Index] {
			h.Platform.ProcAvail[a.Target.Index] = v
		}
	}

	// Controller floors: ends of in-flight frozen reconfigurations, sorted
	// descending and assigned to the controllers in order. Only the
	// multiset matters for capacity, so the assignment is canonical.
	var inflight []int64
	for i, rc := range s.Reconfs {
		if h.FrozenReconf[i] && rc.End > commit {
			inflight = append(inflight, rc.End-commit)
		}
	}
	sort.Slice(inflight, func(a, b int) bool { return inflight[a] > inflight[b] })
	cap := s.Arch.ReconfiguratorCount()
	if len(inflight) > cap {
		return nil, fmt.Errorf("schedule: freeze: %d reconfigurations in flight at commit %d, architecture has %d controller(s)", len(inflight), commit, cap)
	}
	h.Platform.ReconfAvail = make([]int64, cap)
	copy(h.Platform.ReconfAvail, inflight)

	// Frozen-predecessor release floors for every unstarted task.
	h.Platform.Release = make([]int64, n)
	for _, e := range s.Graph.Edges() {
		u, v := e[0], e[1]
		if !h.Frozen[u] || h.Frozen[v] {
			continue
		}
		if f := s.Tasks[u].End + s.Graph.EdgeComm(u, v) - commit; f > 0 && f > h.Platform.Release[v] {
			h.Platform.Release[v] = f
		}
	}
	return h, nil
}

// CheckAgainst validates a tail schedule against a frozen prefix: the usual
// offline conditions (Check) plus the warm-platform constraints the prefix
// imposes — release floors, busy processors, regions mid-reconfiguration,
// pinned tasks and controller floors. The tail's times are relative to the
// commit boundary, its task IDs index its own (tail) graph, and tail region
// i must be warm region i. A nil or empty state degenerates to plain Check.
func CheckAgainst(ps *PlatformState, tail *Schedule) []error {
	errs := Check(tail)
	if ps.Empty() {
		return errs
	}
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}
	if len(errs) > 0 {
		// Structural breakage makes the warm checks unreliable.
		return errs
	}

	// Release floors.
	for t, a := range tail.Tasks {
		if t < len(ps.Release) && a.Start < ps.Release[t] {
			bad("warm: task %d starts at %d before its release %d", t, a.Start, ps.Release[t])
		}
	}
	// Processor floors.
	for t, a := range tail.Tasks {
		if a.Target.Kind == OnProcessor && a.Target.Index < len(ps.ProcAvail) {
			if fl := ps.ProcAvail[a.Target.Index]; a.Start < fl {
				bad("warm: task %d starts at %d on processor %d busy until %d", t, a.Start, a.Target.Index, fl)
			}
		}
	}
	// Warm regions: identity, floors, pins and boundary reconfigurations.
	if len(tail.Regions) < len(ps.Regions) {
		bad("warm: tail has %d regions, prefix carries %d warm regions", len(tail.Regions), len(ps.Regions))
		return errs
	}
	// Index the tail's boundary reconfigurations (InTask < 0) by region.
	boundary := make(map[int]*Reconfiguration)
	for i := range tail.Reconfs {
		rc := &tail.Reconfs[i]
		if rc.InTask < 0 {
			boundary[rc.Region] = rc
		}
	}
	for i, wr := range ps.Regions {
		if tail.Regions[i].Res != wr.Res {
			bad("warm: tail region %d has footprint %v, warm region needs %v", i, tail.Regions[i].Res, wr.Res)
			continue
		}
		tasks := tail.RegionTasks(i)
		for _, t := range tasks {
			if tail.Tasks[t].Start < wr.Avail {
				bad("warm: task %d starts at %d in region %d busy until %d", t, tail.Tasks[t].Start, i, wr.Avail)
			}
		}
		for _, rc := range tail.Reconfs {
			if rc.Region == i && rc.Start < wr.Avail {
				bad("warm: reconfiguration of region %d starts at %d before the region falls idle at %d", i, rc.Start, wr.Avail)
			}
		}
		if wr.Pinned >= 0 {
			if len(tasks) == 0 {
				bad("warm: region %d pins task %d but the tail schedules nothing there", i, wr.Pinned)
				continue
			}
			first := tasks[0]
			if first != wr.Pinned {
				bad("warm: region %d pins task %d first, tail runs task %d first", i, wr.Pinned, first)
			}
			if a := tail.Tasks[wr.Pinned]; a.Target.Kind != OnRegion || a.Target.Index != i {
				bad("warm: pinned task %d not assigned to region %d", wr.Pinned, i)
			} else if a.Impl != wr.PinnedImpl {
				bad("warm: pinned task %d uses impl %d, committed reconfiguration loaded impl %d", wr.Pinned, a.Impl, wr.PinnedImpl)
			}
			continue
		}
		if len(tasks) == 0 {
			continue
		}
		// Unpinned warm region: the first tail task needs a boundary
		// reconfiguration unless module reuse lets it keep the resident
		// bitstream.
		first := tasks[0]
		if tail.ModuleReuse && wr.Loaded != "" && tail.Impl(first).Name == wr.Loaded {
			continue
		}
		rc, ok := boundary[i]
		if !ok {
			bad("warm: region %d holds %q, first tail task %d (%q) has no boundary reconfiguration", i, wr.Loaded, first, tail.Impl(first).Name)
			continue
		}
		if rc.OutTask != first {
			bad("warm: region %d boundary reconfiguration loads task %d, first tail task is %d", i, rc.OutTask, first)
		}
	}
	// Controller capacity including in-flight floors: model each floor as a
	// busy interval [0, floor).
	if len(tail.Reconfs) > 0 {
		type endpoint struct {
			t     int64
			delta int
		}
		var pts []endpoint
		for _, rc := range tail.Reconfs {
			pts = append(pts, endpoint{rc.Start, 1}, endpoint{rc.End, -1})
		}
		for _, fl := range ps.ReconfAvail {
			if fl > 0 {
				pts = append(pts, endpoint{0, 1}, endpoint{fl, -1})
			}
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].t != pts[j].t {
				return pts[i].t < pts[j].t
			}
			return pts[i].delta < pts[j].delta
		})
		inFlight, worst := 0, 0
		var worstAt int64
		for _, p := range pts {
			inFlight += p.delta
			if inFlight > worst {
				worst, worstAt = inFlight, p.t
			}
		}
		if cap := tail.Arch.ReconfiguratorCount(); worst > cap {
			bad("warm: %d reconfigurations in flight at t=%d including committed ones, architecture has %d controller(s)", worst, worstAt, cap)
		}
	}
	return errs
}
