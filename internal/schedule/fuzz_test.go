package schedule

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// FuzzCheckSchedule decodes arbitrary bytes into a (usually corrupt)
// schedule over a fixed three-task instance and runs the independent checker
// on it. The single property is that Check never panics: it must report
// out-of-range implementation indices, targets, regions and reconfiguration
// task references as violations, not crash on them. The checked-in seed
// corpus under testdata/fuzz runs as part of the ordinary test suite; one
// seed pins the historical InTask out-of-range crash.
func FuzzCheckSchedule(f *testing.F) {
	f.Add([]byte{})
	// A plausible encoding: one region, three tasks, one reconfiguration
	// whose InTask (100) is far out of range — the historical checker crash.
	f.Add([]byte{
		1, 10, 1, 0, 4, // 1 region: Res(100,1,0), reconf time 4
		1, 1, 0, 0, 4, // task 0: impl 1 on region 0, [0,4)
		0, 0, 0, 10, 20, // task 1: impl 0 on processor 0, [10,20)
		0, 0, 1, 0, 15, // task 2: impl 0 on processor 1, [0,15)
		1, 0, 100, 0, 5, 9, // reconf: region 0, InTask 100, OutTask 0, [5,9)
		20, 1, // makespan 20, module reuse on
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := scheduleFromBytes(data)
		_ = Check(s) // must not panic, whatever the bytes decode to
	})
}

// scheduleFromBytes deterministically decodes fuzz bytes into a schedule for
// a fixed instance: tasks a→b plus an independent c on a ZedBoard. Values
// are used raw (no clamping), so indices and time slots routinely fall out
// of range — exactly the corruption Check must survive.
func scheduleFromBytes(data []byte) *Schedule {
	g := taskgraph.New("fuzz")
	g.AddTask("a",
		taskgraph.Implementation{Name: "a_sw", Kind: taskgraph.SW, Time: 10},
		taskgraph.Implementation{Name: "a_hw", Kind: taskgraph.HW, Time: 4, Res: resources.Vec(100, 1, 0)})
	g.AddTask("b",
		taskgraph.Implementation{Name: "b_sw", Kind: taskgraph.SW, Time: 10},
		taskgraph.Implementation{Name: "b_hw", Kind: taskgraph.HW, Time: 4, Res: resources.Vec(100, 1, 0)})
	g.AddTask("c", taskgraph.Implementation{Name: "c_sw", Kind: taskgraph.SW, Time: 15})
	if err := g.AddEdge(0, 1); err != nil {
		panic(err) // fixed literal instance; unreachable
	}
	a := arch.ZedBoard()
	s := New(g, a)
	s.Algorithm = "fuzz"

	cur := 0
	next := func() int {
		if cur >= len(data) {
			return 0
		}
		b := int(data[cur])
		cur++
		return b
	}
	// Signed-ish small values: bytes ≥ 200 map below zero so negative
	// indices and times are reachable.
	val := func() int {
		b := next()
		if b >= 200 {
			return 200 - b - 1
		}
		return b
	}

	nRegions := next() % 5
	for i := 0; i < nRegions; i++ {
		s.Regions = append(s.Regions, Region{
			ID:         i,
			Res:        resources.Vec(val()*10, val(), val()),
			ReconfTime: int64(val()),
		})
	}
	for t := range s.Tasks {
		s.Tasks[t] = Assignment{
			Impl:   val(),
			Target: Target{Kind: TargetKind(next() % 3), Index: val()},
			Start:  int64(val()),
			End:    int64(val()),
		}
	}
	nReconfs := next() % 5
	for i := 0; i < nReconfs; i++ {
		s.Reconfs = append(s.Reconfs, Reconfiguration{
			Region:  val(),
			InTask:  val(),
			OutTask: val(),
			Start:   int64(val()),
			End:     int64(val()),
		})
	}
	s.Makespan = int64(val())
	s.ModuleReuse = next()%2 == 1
	return s
}
