package schedule

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stats summarises how a schedule uses the platform.
type Stats struct {
	// Makespan mirrors the schedule's execution time.
	Makespan int64
	// HWTasks and SWTasks count tasks by mapping.
	HWTasks, SWTasks int
	// Regions is |S|.
	Regions int
	// Reconfigurations is |RT| and ReconfTime their cumulative duration.
	Reconfigurations int
	ReconfTime       int64
	// BusyProcessor[p] is the total execution time on processor p;
	// BusyRegion[r] likewise per region.
	BusyProcessor []int64
	BusyRegion    []int64
	// ProcessorUtil, RegionUtil and ReconfiguratorUtil are busy-time
	// fractions of the makespan in [0, 1].
	ProcessorUtil, RegionUtil, ReconfiguratorUtil float64
	// CriticalResource names the resource kind with the highest fraction
	// of the device consumed by regions.
	CriticalResource string
}

// ComputeStats derives utilisation statistics from a schedule.
func ComputeStats(s *Schedule) *Stats {
	st := &Stats{
		Makespan:         s.Makespan,
		Regions:          len(s.Regions),
		Reconfigurations: len(s.Reconfs),
		ReconfTime:       s.TotalReconfTime(),
		BusyProcessor:    make([]int64, s.Arch.Processors),
		BusyRegion:       make([]int64, len(s.Regions)),
	}
	for t, a := range s.Tasks {
		d := s.Impl(t).Time
		switch a.Target.Kind {
		case OnProcessor:
			st.SWTasks++
			if a.Target.Index >= 0 && a.Target.Index < len(st.BusyProcessor) {
				st.BusyProcessor[a.Target.Index] += d
			}
		case OnRegion:
			st.HWTasks++
			if a.Target.Index >= 0 && a.Target.Index < len(st.BusyRegion) {
				st.BusyRegion[a.Target.Index] += d
			}
		}
	}
	if s.Makespan > 0 {
		var pb, rb int64
		for _, b := range st.BusyProcessor {
			pb += b
		}
		for _, b := range st.BusyRegion {
			rb += b
		}
		if n := int64(s.Arch.Processors); n > 0 {
			st.ProcessorUtil = float64(pb) / float64(n*s.Makespan)
		}
		if n := int64(len(s.Regions)); n > 0 {
			st.RegionUtil = float64(rb) / float64(n*s.Makespan)
		}
		st.ReconfiguratorUtil = float64(st.ReconfTime) / float64(s.Makespan)
	}
	// Resource pressure per kind.
	best, bestFrac := "", -1.0
	tot := s.TotalRegionResources()
	for k, c := range tot {
		if s.Arch.MaxRes[k] == 0 {
			continue
		}
		if f := float64(c) / float64(s.Arch.MaxRes[k]); f > bestFrac {
			bestFrac = f
			best = fmt.Sprint(kindName(k))
		}
	}
	st.CriticalResource = best
	return st
}

func kindName(k int) string {
	switch k {
	case 0:
		return "CLB"
	case 1:
		return "BRAM"
	case 2:
		return "DSP"
	default:
		return fmt.Sprintf("kind%d", k)
	}
}

// WriteReport renders a human-readable utilisation report.
func (st *Stats) WriteReport(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "makespan         %d ticks\n", st.Makespan)
	fmt.Fprintf(&b, "tasks            %d hardware, %d software\n", st.HWTasks, st.SWTasks)
	fmt.Fprintf(&b, "regions          %d (%d reconfigurations, %d ticks on the ICAP, %.0f%% busy)\n",
		st.Regions, st.Reconfigurations, st.ReconfTime, 100*st.ReconfiguratorUtil)
	fmt.Fprintf(&b, "processor util   %.0f%%\n", 100*st.ProcessorUtil)
	fmt.Fprintf(&b, "region util      %.0f%%\n", 100*st.RegionUtil)
	if st.CriticalResource != "" {
		fmt.Fprintf(&b, "scarcest kind    %s\n", st.CriticalResource)
	}
	// Per-unit busy times, busiest first.
	type row struct {
		name string
		busy int64
	}
	var rows []row
	for p, busyTime := range st.BusyProcessor {
		rows = append(rows, row{fmt.Sprintf("cpu%d", p), busyTime})
	}
	for r, busyTime := range st.BusyRegion {
		rows = append(rows, row{fmt.Sprintf("region%d", r), busyTime})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].busy > rows[j].busy })
	for _, r := range rows {
		if r.busy == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s busy %d ticks\n", r.name, r.busy)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
