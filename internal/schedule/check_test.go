package schedule

import (
	"bytes"
	"strings"
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// tinyArch returns a fabric-less architecture with easy numbers: a region of
// 10 CLB has bitstream 1000 bits → reconfiguration time 10 ticks.
func tinyArch() *arch.Architecture {
	return &arch.Architecture{
		Name:       "tiny",
		Processors: 1,
		RecFreq:    100,
		Bits:       resources.BitsPerUnit{resources.CLB: 100, resources.BRAM: 1000, resources.DSP: 500},
		MaxRes:     resources.Vec(100, 10, 10),
	}
}

// fixture builds a valid schedule:
//
//	graph: t0 → t1 (both SW 50 / HW 20 @10 CLB), t2 independent (SW 50)
//	region0 (10 CLB, reconf 10): t0 [0,20), reconf [20,30), t1 [30,50)
//	cpu0: t2 [0,50)
func fixture(t *testing.T) *Schedule {
	t.Helper()
	g := taskgraph.New("fix")
	sw := taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50}
	hw0 := taskgraph.Implementation{Name: "hw0", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)}
	hw1 := taskgraph.Implementation{Name: "hw1", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)}
	g.AddTask("t0", sw, hw0)
	g.AddTask("t1", sw, hw1)
	g.AddTask("t2", sw)
	mustEdge(t, g, 0, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	s := New(g, tinyArch())
	s.Algorithm = "fixture"
	r0 := s.AddRegion(resources.Vec(10, 0, 0))
	s.Tasks[0] = Assignment{Impl: 1, Target: Target{OnRegion, r0}, Start: 0, End: 20}
	s.Tasks[1] = Assignment{Impl: 1, Target: Target{OnRegion, r0}, Start: 30, End: 50}
	s.Tasks[2] = Assignment{Impl: 0, Target: Target{OnProcessor, 0}, Start: 0, End: 50}
	s.Reconfs = []Reconfiguration{{Region: r0, InTask: 0, OutTask: 1, Start: 20, End: 30}}
	s.ComputeMakespan()
	return s
}

func TestFixtureValid(t *testing.T) {
	s := fixture(t)
	if errs := Check(s); len(errs) > 0 {
		t.Fatalf("fixture invalid: %v", errs)
	}
	if err := Valid(s); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 50 {
		t.Errorf("makespan = %d, want 50", s.Makespan)
	}
}

// mutate applies f to a fresh fixture and expects the checker to complain
// with a message containing frag.
func mutate(t *testing.T, frag string, f func(*Schedule)) {
	t.Helper()
	s := fixture(t)
	f(s)
	errs := Check(s)
	if len(errs) == 0 {
		t.Fatalf("%s: mutation accepted", frag)
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Fatalf("%s: no matching violation in %v", frag, errs)
}

func TestCheckViolations(t *testing.T) {
	mutate(t, "impl index", func(s *Schedule) { s.Tasks[0].Impl = 7 })
	mutate(t, "negative start", func(s *Schedule) { s.Tasks[2].Start = -1; s.Tasks[2].End = 49 })
	mutate(t, "does not match impl time", func(s *Schedule) { s.Tasks[2].End = 60 })
	mutate(t, "HW impl", func(s *Schedule) {
		s.Tasks[0].Target = Target{OnProcessor, 0}
		s.Tasks[0].Start, s.Tasks[0].End = 60, 80 // avoid masking with overlap errors
	})
	mutate(t, "SW impl", func(s *Schedule) { s.Tasks[2].Target = Target{OnRegion, 0} })
	mutate(t, "processor 5 out of range", func(s *Schedule) { s.Tasks[2].Target.Index = 5 })
	mutate(t, "region 3 out of range", func(s *Schedule) { s.Tasks[0].Target.Index = 3 })
	mutate(t, "invalid target kind", func(s *Schedule) { s.Tasks[2].Target.Kind = TargetKind(9) })
	mutate(t, "region 0 offers", func(s *Schedule) { s.Regions[0].Res = resources.Vec(5, 0, 0) })
	mutate(t, "edge 0→1 violated", func(s *Schedule) {
		s.Tasks[1].Start, s.Tasks[1].End = 10, 30
		s.Reconfs = nil
	})
	mutate(t, "device offers", func(s *Schedule) {
		s.Regions[0].Res = resources.Vec(200, 0, 0)
	})
	mutate(t, "no reconfiguration between tasks 0 and 1", func(s *Schedule) { s.Reconfs = nil })
	mutate(t, "makespan", func(s *Schedule) { s.Makespan = 1 })
}

func TestCheckOverlaps(t *testing.T) {
	// Processor overlap: move t2 to overlap with a second SW task.
	s := fixture(t)
	g := s.Graph
	g.AddTask("t3", taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50})
	s.Tasks = append(s.Tasks, Assignment{Impl: 0, Target: Target{OnProcessor, 0}, Start: 25, End: 75})
	s.ComputeMakespan()
	errs := Check(s)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "processor 0") && strings.Contains(e.Error(), "overlap") {
			found = true
		}
	}
	if !found {
		t.Fatalf("processor overlap not caught: %v", errs)
	}

	// Region overlap.
	mutate(t, "region 0: tasks", func(s *Schedule) {
		s.Tasks[1].Start, s.Tasks[1].End = 10, 30
		s.Tasks[0].Start, s.Tasks[0].End = 0, 20
		s.Graph = s.Graph.Clone()
		// remove the edge effect by making t1 independent is not possible;
		// instead shift t0 earlier so precedence holds but region overlaps.
		s.Reconfs = nil
	})
}

func TestCheckReconfRules(t *testing.T) {
	mutate(t, "duration", func(s *Schedule) { s.Reconfs[0].End = 25 })
	mutate(t, "negative start", func(s *Schedule) {
		s.Reconfs[0].Start, s.Reconfs[0].End = -5, 5
		s.Tasks[0].Start, s.Tasks[0].End = 60, 80 // keep out of the way
		s.Tasks[1].Start, s.Tasks[1].End = 90, 110
		s.Reconfs[0].InTask = -1
		s.ComputeMakespan()
	})
	mutate(t, "outgoing task 9 out of range", func(s *Schedule) { s.Reconfs[0].OutTask = 9 })
	mutate(t, "not in region", func(s *Schedule) { s.Reconfs[0].OutTask = 2 })
	mutate(t, "after outgoing task", func(s *Schedule) {
		s.Reconfs[0].Start, s.Reconfs[0].End = 25, 35
	})
	mutate(t, "before ingoing task", func(s *Schedule) {
		s.Reconfs[0].Start, s.Reconfs[0].End = 15, 25
	})
	mutate(t, "region 7 out of range", func(s *Schedule) { s.Reconfs[0].Region = 7 })

	// Overlapping reconfigurations on the single reconfigurator.
	s := fixture(t)
	r1 := s.AddRegion(resources.Vec(10, 0, 0))
	g := s.Graph
	g.AddTask("t3", taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50},
		taskgraph.Implementation{Name: "hw3", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)})
	g.AddTask("t4", taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50},
		taskgraph.Implementation{Name: "hw4", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)})
	s.Tasks = append(s.Tasks,
		Assignment{Impl: 1, Target: Target{OnRegion, r1}, Start: 0, End: 20},
		Assignment{Impl: 1, Target: Target{OnRegion, r1}, Start: 40, End: 60})
	s.Reconfs = append(s.Reconfs, Reconfiguration{Region: r1, InTask: 3, OutTask: 4, Start: 25, End: 35})
	s.ComputeMakespan()
	errs := Check(s)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "in flight") {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlapping reconfigurations accepted: %v", errs)
	}
	// The same schedule is legal on an architecture with two controllers
	// (the ref [8] extension).
	s.Arch.Reconfigurators = 2
	if errs := Check(s); len(errs) > 0 {
		t.Fatalf("two controllers rejected concurrent reconfigurations: %v", errs)
	}
}

// TestCheckArbitratesCorruptedSchedule corrupts one schedule with three
// independent violations at once — precedence (condition 5), region mutual
// exclusion (condition 6) and reconfigurator capacity (condition 9) — and
// asserts Check reports every one of them in a single pass. The checker
// arbitrates between scheduler implementations, so it must enumerate all
// violations rather than stop at the first.
func TestCheckArbitratesCorruptedSchedule(t *testing.T) {
	s := fixture(t)
	// Second region with two HW tasks and a reconfiguration whose slot
	// [25,35) overlaps region 0's reconfiguration [20,30) on the single
	// reconfigurator (condition 9).
	r1 := s.AddRegion(resources.Vec(10, 0, 0))
	g := s.Graph
	g.AddTask("t3", taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50},
		taskgraph.Implementation{Name: "hw3", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)})
	g.AddTask("t4", taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50},
		taskgraph.Implementation{Name: "hw4", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)})
	s.Tasks = append(s.Tasks,
		Assignment{Impl: 1, Target: Target{OnRegion, r1}, Start: 0, End: 20},
		Assignment{Impl: 1, Target: Target{OnRegion, r1}, Start: 40, End: 60})
	s.Reconfs = append(s.Reconfs, Reconfiguration{Region: r1, InTask: 3, OutTask: 4, Start: 25, End: 35})
	// Pull t1 forward so it starts before its predecessor t0 ends
	// (condition 5) and its slot [10,30) overlaps t0's [0,20) in region 0
	// (condition 6).
	s.Tasks[1].Start, s.Tasks[1].End = 10, 30
	s.ComputeMakespan()

	errs := Check(s)
	for _, want := range []string{
		"edge 0→1 violated",                              // 5: end(t0)=20 > start(t1)=10
		"region 0: tasks 0 [0,20) and 1 [10,30) overlap", // 6
		"in flight", // 9: two reconfigurations on one controller
	} {
		found := false
		for _, e := range errs {
			if strings.Contains(e.Error(), want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("corrupted schedule: no violation matching %q in %v", want, errs)
		}
	}
}

func TestReconfOverlapsRegionTask(t *testing.T) {
	// A reconfiguration that overlaps an execution in its own region, with
	// the consecutive-pair requirement still satisfied by a second entry.
	s := fixture(t)
	s.Reconfs = append(s.Reconfs, Reconfiguration{Region: 0, InTask: -1, OutTask: 1, Start: 5, End: 15})
	errs := Check(s)
	found := false
	for _, e := range errs {
		if strings.Contains(e.Error(), "overlaps task") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reconfiguration overlapping region execution accepted: %v", errs)
	}
}

func TestModuleReuseWaivesReconf(t *testing.T) {
	s := fixture(t)
	s.Reconfs = nil
	// Same implementation name on both tasks + ModuleReuse ⇒ no
	// reconfiguration needed.
	s.Graph.Tasks[1].Impls[1].Name = "hw0"
	s.ModuleReuse = true
	if errs := Check(s); len(errs) > 0 {
		t.Fatalf("module reuse schedule rejected: %v", errs)
	}
	// Without the flag the same schedule must fail.
	s.ModuleReuse = false
	if errs := Check(s); len(errs) == 0 {
		t.Fatal("missing reconfiguration accepted without module reuse")
	}
}

func TestInitialConfigurationOptional(t *testing.T) {
	// An explicit initial configuration (InTask = -1) before the first task
	// of a region is allowed.
	s := fixture(t)
	s.Tasks[0].Start, s.Tasks[0].End = 15, 35
	s.Tasks[1].Start, s.Tasks[1].End = 50, 70
	s.Reconfs = []Reconfiguration{
		{Region: 0, InTask: -1, OutTask: 0, Start: 0, End: 10},
		{Region: 0, InTask: 0, OutTask: 1, Start: 36, End: 46},
	}
	s.ComputeMakespan()
	if errs := Check(s); len(errs) > 0 {
		t.Fatalf("initial configuration rejected: %v", errs)
	}
}

func TestAccessors(t *testing.T) {
	s := fixture(t)
	if got := s.RegionTasks(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("RegionTasks = %v", got)
	}
	if got := s.ProcessorTasks(0); len(got) != 1 || got[0] != 2 {
		t.Errorf("ProcessorTasks = %v", got)
	}
	if got := s.TotalRegionResources(); got != resources.Vec(10, 0, 0) {
		t.Errorf("TotalRegionResources = %v", got)
	}
	if got := s.TotalReconfTime(); got != 10 {
		t.Errorf("TotalReconfTime = %d", got)
	}
	if got := s.HWTaskCount(); got != 2 {
		t.Errorf("HWTaskCount = %d", got)
	}
	if got := s.Impl(0).Name; got != "hw0" {
		t.Errorf("Impl(0) = %q", got)
	}
}

func TestClone(t *testing.T) {
	s := fixture(t)
	c := s.Clone()
	c.Tasks[0].Start = 999
	c.Regions[0].Res = resources.Vec(1, 1, 1)
	c.Reconfs[0].Start = 999
	if s.Tasks[0].Start == 999 || s.Regions[0].Res == resources.Vec(1, 1, 1) || s.Reconfs[0].Start == 999 {
		t.Error("Clone shares storage with original")
	}
}

func TestWriteGanttAndSummary(t *testing.T) {
	s := fixture(t)
	var buf bytes.Buffer
	if err := s.WriteGantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"cpu0", "region0", "reconf", "#", "makespan=50"} {
		if !strings.Contains(out, frag) {
			t.Errorf("gantt missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(s.Summary(), "makespan=50") {
		t.Errorf("Summary = %q", s.Summary())
	}
	// Degenerate widths and empty schedules must not panic.
	empty := New(taskgraph.New("e"), tinyArch())
	if err := empty.WriteGantt(&buf, 0); err != nil {
		t.Fatal(err)
	}
}

func TestTargetKindString(t *testing.T) {
	if OnProcessor.String() != "processor" || OnRegion.String() != "region" {
		t.Error("target kind strings")
	}
	if !strings.Contains(TargetKind(5).String(), "5") {
		t.Error("unknown target kind string")
	}
}

func TestCheckTaskCountMismatch(t *testing.T) {
	s := fixture(t)
	s.Tasks = s.Tasks[:2]
	if errs := Check(s); len(errs) == 0 {
		t.Fatal("task count mismatch accepted")
	}
}
