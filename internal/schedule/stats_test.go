package schedule

import (
	"bytes"
	"strings"
	"testing"

	"resched/internal/taskgraph"
)

func TestComputeStats(t *testing.T) {
	s := fixture(t)
	st := ComputeStats(s)
	if st.Makespan != 50 {
		t.Errorf("Makespan = %d", st.Makespan)
	}
	if st.HWTasks != 2 || st.SWTasks != 1 {
		t.Errorf("task split = %d/%d, want 2/1", st.HWTasks, st.SWTasks)
	}
	if st.Regions != 1 || st.Reconfigurations != 1 || st.ReconfTime != 10 {
		t.Errorf("region stats wrong: %+v", st)
	}
	// cpu0 busy 50/50 = 100 %.
	if st.ProcessorUtil != 1.0 {
		t.Errorf("ProcessorUtil = %v, want 1", st.ProcessorUtil)
	}
	// region0 busy 40/50 = 80 %.
	if st.RegionUtil != 0.8 {
		t.Errorf("RegionUtil = %v, want 0.8", st.RegionUtil)
	}
	// ICAP busy 10/50 = 20 %.
	if st.ReconfiguratorUtil != 0.2 {
		t.Errorf("ReconfiguratorUtil = %v, want 0.2", st.ReconfiguratorUtil)
	}
	if st.BusyProcessor[0] != 50 || st.BusyRegion[0] != 40 {
		t.Errorf("busy vectors wrong: %v %v", st.BusyProcessor, st.BusyRegion)
	}
	// Region uses 10/100 CLB vs 0 of other kinds → CLB is the scarcest.
	if st.CriticalResource != "CLB" {
		t.Errorf("CriticalResource = %q", st.CriticalResource)
	}
}

func TestStatsEmptySchedule(t *testing.T) {
	s := New(fixture(t).Graph, tinyArch())
	// Unscheduled (zero) assignments: stats must not divide by zero.
	st := ComputeStats(s)
	if st.Makespan != 0 || st.ProcessorUtil != 0 || st.ReconfiguratorUtil != 0 {
		t.Errorf("zero schedule produced nonzero stats: %+v", st)
	}
}

func TestWriteReport(t *testing.T) {
	s := fixture(t)
	var buf bytes.Buffer
	if err := ComputeStats(s).WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"makespan", "2 hardware, 1 software", "cpu0", "region0", "scarcest"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

func TestKindName(t *testing.T) {
	if kindName(0) != "CLB" || kindName(1) != "BRAM" || kindName(2) != "DSP" {
		t.Error("kind names")
	}
	if !strings.Contains(kindName(9), "9") {
		t.Error("unknown kind name")
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := fixture(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf, s.Graph, s.Arch)
	if err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != s.Algorithm || back.Makespan != s.Makespan ||
		back.ModuleReuse != s.ModuleReuse {
		t.Errorf("metadata lost: %+v", back)
	}
	if len(back.Regions) != len(s.Regions) || len(back.Reconfs) != len(s.Reconfs) {
		t.Fatalf("shape lost")
	}
	for i := range s.Tasks {
		if back.Tasks[i] != s.Tasks[i] {
			t.Errorf("task %d assignment differs", i)
		}
	}
	for i := range s.Regions {
		if back.Regions[i] != s.Regions[i] {
			t.Errorf("region %d differs: %+v vs %+v", i, back.Regions[i], s.Regions[i])
		}
	}
}

func TestScheduleJSONRejections(t *testing.T) {
	s := fixture(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()

	// Wrong graph.
	other := taskgraph.New("other")
	if _, err := ReadJSON(strings.NewReader(doc), other, s.Arch); err == nil {
		t.Error("wrong graph accepted")
	}
	// Corrupted JSON.
	if _, err := ReadJSON(strings.NewReader("{"), s.Graph, s.Arch); err == nil {
		t.Error("corrupt JSON accepted")
	}
	// Tampered schedule failing the checker.
	tampered := strings.Replace(doc, "\"makespan\": 50", "\"makespan\": 1", 1)
	if tampered == doc {
		t.Fatal("tamper marker not found")
	}
	if _, err := ReadJSON(strings.NewReader(tampered), s.Graph, s.Arch); err == nil {
		t.Error("invalid schedule accepted on load")
	}
	// Unknown target kind.
	bad := strings.Replace(doc, "\"on\": \"processor\"", "\"on\": \"gpu\"", 1)
	if _, err := ReadJSON(strings.NewReader(bad), s.Graph, s.Arch); err == nil {
		t.Error("unknown target kind accepted")
	}
}

func TestWriteSVG(t *testing.T) {
	s := fixture(t)
	var buf bytes.Buffer
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"<svg", "</svg>", "cpu0", "region0", "icap0", "makespan 50"} {
		if !strings.Contains(out, frag) {
			t.Errorf("SVG missing %q", frag)
		}
	}
	// Escaping: a task name with XML metacharacters must not break out.
	s.Graph.Tasks[0].Name = `<evil&"name">`
	buf.Reset()
	if err := s.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `<evil`) {
		t.Error("XML metacharacters not escaped")
	}
	// Empty schedules render without division by zero.
	empty := New(taskgraph.New("e"), tinyArch())
	buf.Reset()
	if err := empty.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Two controllers produce two ICAP rows.
	s2 := fixture(t)
	s2.Arch.Reconfigurators = 2
	buf.Reset()
	if err := s2.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "icap1") {
		t.Error("second controller row missing")
	}
}

func TestClipAndEscapeHelpers(t *testing.T) {
	if clip("abcdef", 3) != "abc" || clip("ab", 5) != "ab" || clip("ab", 0) != "" {
		t.Error("clip")
	}
	if xmlEscape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Errorf("xmlEscape = %q", xmlEscape(`a<b>&"c"`))
	}
}
