package schedule

import (
	"encoding/json"
	"fmt"
	"io"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// jsonSchedule is the on-disk representation of a schedule. The task graph
// and architecture are referenced by name, not embedded: a schedule is only
// meaningful next to its instance, which the loader receives explicitly.
type jsonSchedule struct {
	Algorithm   string       `json:"algorithm"`
	Graph       string       `json:"graph"`
	Arch        string       `json:"arch"`
	Makespan    int64        `json:"makespan"`
	ModuleReuse bool         `json:"moduleReuse,omitempty"`
	Regions     []jsonRegion `json:"regions"`
	Tasks       []jsonAssign `json:"tasks"`
	Reconfs     []jsonReconf `json:"reconfs"`
}

type jsonRegion struct {
	CLB  int `json:"clb"`
	BRAM int `json:"bram,omitempty"`
	DSP  int `json:"dsp,omitempty"`
}

type jsonAssign struct {
	Impl  int    `json:"impl"`
	Kind  string `json:"on"` // "processor" or "region"
	Index int    `json:"index"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
}

type jsonReconf struct {
	Region  int   `json:"region"`
	InTask  int   `json:"in"`
	OutTask int   `json:"out"`
	Start   int64 `json:"start"`
	End     int64 `json:"end"`
}

// WriteJSON encodes the schedule as indented JSON.
func (s *Schedule) WriteJSON(w io.Writer) error {
	js := jsonSchedule{
		Algorithm:   s.Algorithm,
		Graph:       s.Graph.Name,
		Arch:        s.Arch.Name,
		Makespan:    s.Makespan,
		ModuleReuse: s.ModuleReuse,
		Regions:     []jsonRegion{},
		Tasks:       []jsonAssign{},
		Reconfs:     []jsonReconf{},
	}
	for _, r := range s.Regions {
		js.Regions = append(js.Regions, jsonRegion{
			CLB: r.Res[resources.CLB], BRAM: r.Res[resources.BRAM], DSP: r.Res[resources.DSP],
		})
	}
	for _, a := range s.Tasks {
		js.Tasks = append(js.Tasks, jsonAssign{
			Impl: a.Impl, Kind: a.Target.Kind.String(), Index: a.Target.Index,
			Start: a.Start, End: a.End,
		})
	}
	for _, rc := range s.Reconfs {
		js.Reconfs = append(js.Reconfs, jsonReconf{
			Region: rc.Region, InTask: rc.InTask, OutTask: rc.OutTask,
			Start: rc.Start, End: rc.End,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(js)
}

// ReadJSON decodes a schedule against its instance (graph + architecture)
// and re-validates it with the independent checker.
func ReadJSON(r io.Reader, g *taskgraph.Graph, a *arch.Architecture) (*Schedule, error) {
	var js jsonSchedule
	if err := json.NewDecoder(r).Decode(&js); err != nil {
		return nil, fmt.Errorf("schedule: decoding: %w", err)
	}
	if js.Graph != g.Name {
		return nil, fmt.Errorf("schedule: built for graph %q, loading against %q", js.Graph, g.Name)
	}
	if len(js.Tasks) != g.N() {
		return nil, fmt.Errorf("schedule: %d assignments for %d tasks", len(js.Tasks), g.N())
	}
	s := New(g, a)
	s.Algorithm = js.Algorithm
	s.ModuleReuse = js.ModuleReuse
	s.Makespan = js.Makespan
	for _, jr := range js.Regions {
		s.AddRegion(resources.Vec(jr.CLB, jr.BRAM, jr.DSP))
	}
	for t, ja := range js.Tasks {
		var kind TargetKind
		switch ja.Kind {
		case "processor":
			kind = OnProcessor
		case "region":
			kind = OnRegion
		default:
			return nil, fmt.Errorf("schedule: task %d has unknown target kind %q", t, ja.Kind)
		}
		s.Tasks[t] = Assignment{
			Impl:   ja.Impl,
			Target: Target{Kind: kind, Index: ja.Index},
			Start:  ja.Start,
			End:    ja.End,
		}
	}
	for _, jr := range js.Reconfs {
		s.Reconfs = append(s.Reconfs, Reconfiguration{
			Region: jr.Region, InTask: jr.InTask, OutTask: jr.OutTask,
			Start: jr.Start, End: jr.End,
		})
	}
	if errs := Check(s); len(errs) > 0 {
		return nil, fmt.Errorf("schedule: loaded schedule invalid: %w", errs[0])
	}
	return s, nil
}
