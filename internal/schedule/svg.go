package schedule

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// svg layout constants (pixels).
const (
	svgRowHeight   = 26
	svgRowGap      = 6
	svgLabelWidth  = 90
	svgChartWidth  = 900
	svgTopMargin   = 34
	svgAxisHeight  = 26
	svgTaskFill    = "#4e79a7"
	svgSWFill      = "#59a14f"
	svgReconfFill  = "#e15759"
	svgTextColour  = "#222222"
	svgTrackColour = "#f0f0f2"
)

// WriteSVG renders the schedule as an SVG Gantt chart: one row per
// processor, one per region and one per reconfiguration controller. The
// output is self-contained and viewable in any browser.
func (s *Schedule) WriteSVG(w io.Writer) error {
	horizon := s.Makespan
	for _, rc := range s.Reconfs {
		if rc.End > horizon {
			horizon = rc.End
		}
	}
	if horizon <= 0 {
		horizon = 1
	}
	x := func(t int64) float64 {
		return svgLabelWidth + float64(t)/float64(horizon)*svgChartWidth
	}

	type row struct {
		label string
		bars  []bar
	}
	var rows []row
	for p := 0; p < s.Arch.Processors; p++ {
		r := row{label: fmt.Sprintf("cpu%d", p)}
		for _, t := range s.ProcessorTasks(p) {
			a := s.Tasks[t]
			r.bars = append(r.bars, bar{a.Start, a.End, s.Graph.Tasks[t].Name, svgSWFill})
		}
		rows = append(rows, r)
	}
	for reg := range s.Regions {
		r := row{label: fmt.Sprintf("region%d", reg)}
		for _, t := range s.RegionTasks(reg) {
			a := s.Tasks[t]
			r.bars = append(r.bars, bar{a.Start, a.End, s.Graph.Tasks[t].Name, svgTaskFill})
		}
		rows = append(rows, r)
	}
	// Reconfigurations on one row per controller, partitioned greedily by
	// scheduled start (matching the simulator's channel assignment).
	nICAP := s.Arch.ReconfiguratorCount()
	icapRows := make([][]bar, nICAP)
	rcOrder := make([]int, len(s.Reconfs))
	for i := range rcOrder {
		rcOrder[i] = i
	}
	sort.SliceStable(rcOrder, func(a, b int) bool { return s.Reconfs[rcOrder[a]].Start < s.Reconfs[rcOrder[b]].Start })
	free := make([]int64, nICAP)
	for _, idx := range rcOrder {
		rc := s.Reconfs[idx]
		best := 0
		for c := 1; c < nICAP; c++ {
			if free[c] < free[best] {
				best = c
			}
		}
		icapRows[best] = append(icapRows[best], bar{rc.Start, rc.End,
			fmt.Sprintf("→%s", s.Graph.Tasks[rc.OutTask].Name), svgReconfFill})
		free[best] = rc.End
	}
	for c := 0; c < nICAP; c++ {
		rows = append(rows, row{label: fmt.Sprintf("icap%d", c), bars: icapRows[c]})
	}

	height := svgTopMargin + len(rows)*(svgRowHeight+svgRowGap) + svgAxisHeight
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="monospace" font-size="11">`+"\n",
		svgLabelWidth+svgChartWidth+20, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" fill="%s" font-size="13">%s — makespan %d ticks, %d regions, %d reconfigurations</text>`+"\n",
		svgLabelWidth, svgTextColour, xmlEscape(s.Algorithm), s.Makespan, len(s.Regions), len(s.Reconfs))
	y := svgTopMargin
	for _, r := range rows {
		fmt.Fprintf(&b, `<text x="4" y="%d" fill="%s">%s</text>`+"\n", y+svgRowHeight-9, svgTextColour, xmlEscape(r.label))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s"/>`+"\n",
			svgLabelWidth, y, svgChartWidth, svgRowHeight, svgTrackColour)
		for _, bar := range r.bars {
			x0, x1 := x(bar.start), x(bar.end)
			if x1-x0 < 1 {
				x1 = x0 + 1
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="%s"><title>%s [%d,%d)</title></rect>`+"\n",
				x0, y+2, x1-x0, svgRowHeight-4, bar.fill, xmlEscape(bar.label), bar.start, bar.end)
			if x1-x0 > 34 {
				fmt.Fprintf(&b, `<text x="%.1f" y="%d" fill="#ffffff">%s</text>`+"\n",
					x0+3, y+svgRowHeight-9, xmlEscape(clip(bar.label, int((x1-x0)/7))))
			}
		}
		y += svgRowHeight + svgRowGap
	}
	// Time axis.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s"/>`+"\n",
		svgLabelWidth, y, svgLabelWidth+svgChartWidth, y, svgTextColour)
	for i := 0; i <= 10; i++ {
		tx := svgLabelWidth + svgChartWidth*i/10
		fmt.Fprintf(&b, `<text x="%d" y="%d" fill="%s">%d</text>`+"\n",
			tx, y+16, svgTextColour, horizon*int64(i)/10)
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

type bar struct {
	start, end int64
	label      string
	fill       string
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func clip(s string, n int) string {
	if n < 1 {
		return ""
	}
	if len(s) <= n {
		return s
	}
	return s[:n]
}
