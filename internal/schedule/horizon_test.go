package schedule

import (
	"strings"
	"testing"

	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// TestFreezeFixture splits the canonical fixture mid-reconfiguration:
//
//	region0: t0 [0,20), reconf [20,30), t1 [30,50)   cpu0: t2 [0,50)
//
// at commit 25 — t0/t2 frozen, the reconfiguration in flight, t1 pinned.
func TestFreezeFixture(t *testing.T) {
	s := fixture(t)
	h, err := Freeze(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := h.Frozen, []bool{true, false, true}; got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Frozen = %v, want %v", got, want)
	}
	if len(h.FrozenReconf) != 1 || !h.FrozenReconf[0] {
		t.Errorf("FrozenReconf = %v, want [true]", h.FrozenReconf)
	}
	if len(h.Platform.Regions) != 1 || len(h.RegionID) != 1 || h.RegionID[0] != 0 {
		t.Fatalf("warm regions = %v (ids %v), want one for region 0", h.Platform.Regions, h.RegionID)
	}
	wr := h.Platform.Regions[0]
	if wr.Avail != 5 { // reconf ends at 30, commit 25
		t.Errorf("Avail = %d, want 5", wr.Avail)
	}
	if wr.Loaded != "hw1" {
		t.Errorf("Loaded = %q, want hw1 (the in-flight reconfiguration's module)", wr.Loaded)
	}
	if wr.Pinned != 1 || wr.PinnedImpl != 1 {
		t.Errorf("Pinned = %d impl %d, want task 1 impl 1", wr.Pinned, wr.PinnedImpl)
	}
	if h.LastFrozenTask[0] != 0 {
		t.Errorf("LastFrozenTask = %d, want 0", h.LastFrozenTask[0])
	}
	if got := h.Platform.ProcAvail; len(got) != 1 || got[0] != 25 {
		t.Errorf("ProcAvail = %v, want [25]", got)
	}
	if got := h.Platform.ReconfAvail; len(got) != 1 || got[0] != 5 {
		t.Errorf("ReconfAvail = %v, want [5]", got)
	}
	// Edge 0→1 ended at 20 < commit: no positive release floor survives.
	for v, r := range h.Platform.Release {
		if r != 0 {
			t.Errorf("Release[%d] = %d, want 0", v, r)
		}
	}
	if h.Platform.Empty() {
		t.Error("warm state reported empty")
	}
}

// TestFreezeBeforeStart freezes at commit 0: nothing frozen, cold state.
func TestFreezeBeforeStart(t *testing.T) {
	s := fixture(t)
	h, err := Freeze(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for t2, f := range h.Frozen {
		if f {
			t.Errorf("task %d frozen at commit 0", t2)
		}
	}
	if !h.Platform.Empty() {
		t.Errorf("platform not empty: %+v", h.Platform)
	}
}

// TestFreezeAfterEnd freezes past the makespan: everything frozen, warm
// floors positive, no pin (the reconfiguration's outgoing task ran).
func TestFreezeAfterEnd(t *testing.T) {
	s := fixture(t)
	h, err := Freeze(s, 60)
	if err != nil {
		t.Fatal(err)
	}
	for t2, f := range h.Frozen {
		if !f {
			t.Errorf("task %d not frozen at commit 60", t2)
		}
	}
	wr := h.Platform.Regions[0]
	if wr.Pinned != -1 {
		t.Errorf("Pinned = %d, want -1", wr.Pinned)
	}
	if wr.Avail != 0 { // region idle since t=50 < commit
		t.Errorf("Avail = %d, want 0", wr.Avail)
	}
	if wr.Loaded != "hw1" {
		t.Errorf("Loaded = %q, want hw1", wr.Loaded)
	}
	if h.LastFrozenTask[0] != 1 {
		t.Errorf("LastFrozenTask = %d, want 1", h.LastFrozenTask[0])
	}
}

// TestFreezeReleaseFloor verifies frozen-predecessor communication edges
// produce release floors on unstarted successors.
func TestFreezeReleaseFloor(t *testing.T) {
	g := taskgraph.New("rel")
	sw := taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 10}
	g.AddTask("a", sw)
	g.AddTask("b", sw)
	if err := g.AddEdgeComm(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	s := New(g, tinyArch())
	s.Tasks[0] = Assignment{Impl: 0, Target: Target{OnProcessor, 0}, Start: 0, End: 10}
	s.Tasks[1] = Assignment{Impl: 0, Target: Target{OnProcessor, 0}, Start: 17, End: 27}
	s.ComputeMakespan()
	if errs := Check(s); len(errs) > 0 {
		t.Fatalf("fixture invalid: %v", errs)
	}
	h, err := Freeze(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	// a ends at 10, comm 7 → b cannot start before 17 = commit 12 + 5.
	if got := h.Platform.Release[1]; got != 5 {
		t.Errorf("Release[1] = %d, want 5", got)
	}
	if got := h.Platform.ProcAvail[0]; got != 0 {
		t.Errorf("ProcAvail[0] = %d, want 0 (a ended before commit)", got)
	}
}

// tailFixture builds a tail graph/schedule compatible with a warm platform
// whose region 0 holds "hw0" and falls idle at 5, with cpu0 busy until 25
// and one controller occupied until 5:
//
//	region0: boundary reconf [5,15), t0 [15,35)   cpu0: t1 [25,75)
func tailFixture(t *testing.T) (*PlatformState, *Schedule) {
	t.Helper()
	g := taskgraph.New("tail")
	sw := taskgraph.Implementation{Name: "sw", Kind: taskgraph.SW, Time: 50}
	hw1 := taskgraph.Implementation{Name: "hw1", Kind: taskgraph.HW, Time: 20, Res: resources.Vec(10, 0, 0)}
	g.AddTask("t0", sw, hw1)
	g.AddTask("t1", sw)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := New(g, tinyArch())
	s.Algorithm = "fixture"
	r0 := s.AddRegion(resources.Vec(10, 0, 0))
	s.Tasks[0] = Assignment{Impl: 1, Target: Target{OnRegion, r0}, Start: 15, End: 35}
	s.Tasks[1] = Assignment{Impl: 0, Target: Target{OnProcessor, 0}, Start: 25, End: 75}
	s.Reconfs = []Reconfiguration{{Region: r0, InTask: -1, OutTask: 0, Start: 5, End: 15}}
	s.ComputeMakespan()

	ps := &PlatformState{
		Regions:     []WarmRegion{{Res: resources.Vec(10, 0, 0), Avail: 5, Loaded: "hw0", Pinned: -1}},
		ProcAvail:   []int64{25},
		ReconfAvail: []int64{5},
		Release:     []int64{5, 0},
	}
	return ps, s
}

func TestCheckAgainstValid(t *testing.T) {
	ps, s := tailFixture(t)
	if errs := CheckAgainst(ps, s); len(errs) > 0 {
		t.Fatalf("valid tail rejected: %v", errs)
	}
}

// TestCheckAgainstEmptyState verifies nil and zero states degrade to Check.
func TestCheckAgainstEmptyState(t *testing.T) {
	s := fixture(t)
	if errs := CheckAgainst(nil, s); len(errs) > 0 {
		t.Fatalf("nil state: %v", errs)
	}
	if errs := CheckAgainst(&PlatformState{}, s); len(errs) > 0 {
		t.Fatalf("zero state: %v", errs)
	}
	s.Tasks[2].End = 60 // structural breakage still caught
	if errs := CheckAgainst(nil, s); len(errs) == 0 {
		t.Fatal("nil state accepted a broken schedule")
	}
}

// mutateWarm applies f to the tail fixture and expects a violation whose
// message contains frag.
func mutateWarm(t *testing.T, frag string, f func(*PlatformState, *Schedule)) {
	t.Helper()
	ps, s := tailFixture(t)
	f(ps, s)
	errs := CheckAgainst(ps, s)
	if len(errs) == 0 {
		t.Fatalf("%s: mutation accepted", frag)
	}
	for _, e := range errs {
		if strings.Contains(e.Error(), frag) {
			return
		}
	}
	t.Fatalf("%s: no matching violation in %v", frag, errs)
}

func TestCheckAgainstViolations(t *testing.T) {
	mutateWarm(t, "before its release", func(ps *PlatformState, s *Schedule) {
		ps.Release[1] = 30
	})
	mutateWarm(t, "busy until", func(ps *PlatformState, s *Schedule) {
		ps.ProcAvail[0] = 40
	})
	mutateWarm(t, "region 0 busy until", func(ps *PlatformState, s *Schedule) {
		ps.Regions[0].Avail = 20 // t0 starts at 15 (and the reconf at 5)
	})
	mutateWarm(t, "before the region falls idle", func(ps *PlatformState, s *Schedule) {
		ps.Regions[0].Avail = 8 // boundary reconf starts at 5
	})
	mutateWarm(t, "footprint", func(ps *PlatformState, s *Schedule) {
		ps.Regions[0].Res = resources.Vec(20, 0, 0)
	})
	mutateWarm(t, "warm: tail has", func(ps *PlatformState, s *Schedule) {
		ps.Regions = append(ps.Regions, WarmRegion{Res: resources.Vec(5, 0, 0), Pinned: -1})
	})
	mutateWarm(t, "no boundary reconfiguration", func(ps *PlatformState, s *Schedule) {
		// Drop the boundary reconfiguration; region holds hw0, task needs hw1.
		s.Reconfs = nil
	})
	mutateWarm(t, "in flight", func(ps *PlatformState, s *Schedule) {
		// Push the controller floor past the boundary reconfiguration's
		// start: two overlapping loads on a single controller.
		ps.ReconfAvail[0] = 12
	})
}

func TestCheckAgainstPins(t *testing.T) {
	// Pinned task scheduled first with the committed impl: valid, and the
	// boundary reconfiguration is unnecessary (the frozen one loads it).
	ps, s := tailFixture(t)
	ps.Regions[0].Pinned, ps.Regions[0].PinnedImpl = 0, 1
	ps.Regions[0].Loaded = "hw1"
	s.Reconfs = nil
	s.Tasks[0].Start, s.Tasks[0].End = 5, 25
	s.ComputeMakespan()
	if errs := CheckAgainst(ps, s); len(errs) > 0 {
		t.Fatalf("pinned tail rejected: %v", errs)
	}

	mutateWarm(t, "pins task", func(ps *PlatformState, s *Schedule) {
		// Pin an unrelated task: t0 runs first instead.
		ps.Regions[0].Pinned, ps.Regions[0].PinnedImpl = 1, 0
	})
	mutateWarm(t, "committed reconfiguration loaded impl", func(ps *PlatformState, s *Schedule) {
		ps.Regions[0].Pinned, ps.Regions[0].PinnedImpl = 0, 0 // frozen load was impl 0, tail uses 1
	})
}

func TestCheckAgainstModuleReuse(t *testing.T) {
	// With module reuse and the matching module resident, the first tail
	// task needs no boundary reconfiguration.
	ps, s := tailFixture(t)
	ps.Regions[0].Loaded = "hw1"
	ps.ReconfAvail[0] = 0
	s.ModuleReuse = true
	s.Reconfs = nil
	s.Tasks[0].Start, s.Tasks[0].End = 5, 25
	s.ComputeMakespan()
	if errs := CheckAgainst(ps, s); len(errs) > 0 {
		t.Fatalf("module-reuse tail rejected: %v", errs)
	}
}

func TestFreezeRoundTrip(t *testing.T) {
	// Freeze the fixture, rebuild the tail (t1 only, relabelled into the
	// same graph IDs), and verify it against the derived platform state.
	s := fixture(t)
	h, err := Freeze(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The tail keeps the frozen schedule's region and re-times the two
	// unfrozen events relative to commit: t1 runs [5,25) right as the
	// in-flight reconfiguration completes; t2 is frozen so the tail in
	// this round-trip is expressed over the full graph with frozen tasks
	// shifted out of the way — instead, validate the pin logic directly.
	wr := h.Platform.Regions[0]
	if wr.Pinned != 1 {
		t.Fatalf("Pinned = %d, want 1", wr.Pinned)
	}
	if wr.Avail != 5 {
		t.Fatalf("Avail = %d, want 5", wr.Avail)
	}
}

func TestPlatformStateClone(t *testing.T) {
	ps, _ := tailFixture(t)
	c := ps.Clone()
	c.Regions[0].Avail = 99
	c.ProcAvail[0] = 99
	c.Release[0] = 99
	if ps.Regions[0].Avail == 99 || ps.ProcAvail[0] == 99 || ps.Release[0] == 99 {
		t.Fatal("Clone shares memory with original")
	}
	var nilPS *PlatformState
	if nilPS.Clone() != nil || !nilPS.Empty() {
		t.Fatal("nil Clone/Empty misbehaved")
	}
}

func TestFreezeInFlightOverCapacity(t *testing.T) {
	// Two in-flight reconfigurations on a single-controller architecture
	// is structurally impossible; Freeze must refuse rather than emit an
	// unsatisfiable platform state.
	s := fixture(t)
	r1 := s.AddRegion(resources.Vec(10, 0, 0))
	s.Reconfs = append(s.Reconfs, Reconfiguration{Region: r1, InTask: -1, OutTask: 1, Start: 22, End: 32})
	if _, err := Freeze(s, 25); err == nil {
		t.Fatal("Freeze accepted over-capacity in-flight reconfigurations")
	}
}
