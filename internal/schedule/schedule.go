// Package schedule defines the output of the scheduling algorithms (§III of
// the paper): the set of reconfigurable regions, the mapping of every task
// to an implementation and an execution unit, the time slot of every task,
// and the set of reconfigurations with their time slots. It also provides an
// independent validity checker used by tests and by the randomized scheduler
// and a textual Gantt renderer.
package schedule

import (
	"fmt"
	"sort"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// TargetKind says where a task executes.
type TargetKind int

const (
	// OnProcessor marks software execution on a processor core.
	OnProcessor TargetKind = iota
	// OnRegion marks hardware execution in a reconfigurable region.
	OnRegion
)

// String returns "processor" or "region".
func (k TargetKind) String() string {
	switch k {
	case OnProcessor:
		return "processor"
	case OnRegion:
		return "region"
	default:
		return fmt.Sprintf("TargetKind(%d)", int(k))
	}
}

// Target is the execution unit a task is mapped to.
type Target struct {
	Kind  TargetKind
	Index int // processor index or region ID
}

// Region is a reconfigurable region s ∈ S with its resource requirement
// res_{s,r} and derived reconfiguration time reconf_s (eq. (2)).
type Region struct {
	ID         int
	Res        resources.Vector
	ReconfTime int64
}

// Assignment is the placement of one task.
type Assignment struct {
	// Impl indexes the chosen implementation in the task's Impls.
	Impl int
	// Target is the execution unit.
	Target Target
	// Start and End delimit the execution slot; End-Start equals the
	// implementation's execution time.
	Start, End int64
}

// Reconfiguration is a reconfiguration task rt ∈ RT: it loads the partial
// bitstream of the outgoing task's implementation into a region between two
// subsequent executions in that region (§V-G).
type Reconfiguration struct {
	Region int
	// InTask is the preceding (ingoing) task in the region, or -1 when
	// this is the initial configuration of the region (regions are assumed
	// pre-loaded with their first module at time 0, so initial entries are
	// optional and only appear when a scheduler models them explicitly).
	InTask int
	// OutTask is the task whose bitstream is being loaded.
	OutTask    int
	Start, End int64
}

// Schedule is a complete solution to a problem instance.
type Schedule struct {
	Graph   *taskgraph.Graph
	Arch    *arch.Architecture
	Regions []Region
	// Tasks is indexed by task ID.
	Tasks   []Assignment
	Reconfs []Reconfiguration
	// Makespan is the overall application execution time (max task end).
	Makespan int64
	// ModuleReuse records whether the schedule relies on module-reuse
	// semantics: consecutive tasks in a region sharing an implementation
	// name need no reconfiguration between them.
	ModuleReuse bool
	// Algorithm names the scheduler that produced the solution.
	Algorithm string
}

// New allocates an empty schedule for the given instance.
func New(g *taskgraph.Graph, a *arch.Architecture) *Schedule {
	return &Schedule{Graph: g, Arch: a, Tasks: make([]Assignment, g.N())}
}

// AddRegion appends a region with the given requirements and returns its ID.
func (s *Schedule) AddRegion(res resources.Vector) int {
	id := len(s.Regions)
	s.Regions = append(s.Regions, Region{ID: id, Res: res, ReconfTime: s.Arch.ReconfTime(res)})
	return id
}

// ComputeMakespan recomputes and stores the makespan from task end times.
func (s *Schedule) ComputeMakespan() int64 {
	var m int64
	for _, a := range s.Tasks {
		if a.End > m {
			m = a.End
		}
	}
	s.Makespan = m
	return m
}

// RegionTasks returns the task IDs assigned to region r sorted by start
// time (ties broken by task ID).
func (s *Schedule) RegionTasks(r int) []int {
	var out []int
	for t, a := range s.Tasks {
		if a.Target.Kind == OnRegion && a.Target.Index == r {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := s.Tasks[out[i]], s.Tasks[out[j]]
		if ai.Start != aj.Start {
			return ai.Start < aj.Start
		}
		return out[i] < out[j]
	})
	return out
}

// ProcessorTasks returns the task IDs assigned to processor p sorted by
// start time.
func (s *Schedule) ProcessorTasks(p int) []int {
	var out []int
	for t, a := range s.Tasks {
		if a.Target.Kind == OnProcessor && a.Target.Index == p {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ai, aj := s.Tasks[out[i]], s.Tasks[out[j]]
		if ai.Start != aj.Start {
			return ai.Start < aj.Start
		}
		return out[i] < out[j]
	})
	return out
}

// TotalRegionResources returns Σ_{s∈S} res_{s,r}.
func (s *Schedule) TotalRegionResources() resources.Vector {
	var v resources.Vector
	for _, r := range s.Regions {
		v = v.Add(r.Res)
	}
	return v
}

// TotalReconfTime returns the cumulative time spent reconfiguring.
func (s *Schedule) TotalReconfTime() int64 {
	var t int64
	for _, rc := range s.Reconfs {
		t += rc.End - rc.Start
	}
	return t
}

// HWTaskCount returns how many tasks execute in hardware.
func (s *Schedule) HWTaskCount() int {
	n := 0
	for _, a := range s.Tasks {
		if a.Target.Kind == OnRegion {
			n++
		}
	}
	return n
}

// Impl returns the implementation chosen for task t.
func (s *Schedule) Impl(t int) taskgraph.Implementation {
	return s.Graph.Tasks[t].Impls[s.Tasks[t].Impl]
}

// Clone returns a deep copy sharing the graph and architecture.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Regions = append([]Region(nil), s.Regions...)
	c.Tasks = append([]Assignment(nil), s.Tasks...)
	c.Reconfs = append([]Reconfiguration(nil), s.Reconfs...)
	return &c
}
