package schedule

import (
	"fmt"
	"sort"

	"resched/internal/taskgraph"
)

// Check independently verifies every validity condition the problem
// statement imposes on a schedule (§III) and returns all violations found.
// It is deliberately written against the definition rather than any
// scheduler's internals so that it can arbitrate between implementations.
//
// Checked conditions:
//  1. structural sanity (valid impl indices, targets, non-negative slots);
//  2. task slots match the chosen implementation's execution time;
//  3. implementation kind matches the target kind (HW↔region, SW↔processor);
//  4. HW implementations fit their region's resources;
//  5. precedence: every edge (a,b) has end(a) + comm(a,b) ≤ start(b);
//  6. mutual exclusion on every processor and every region;
//  7. Σ region resources ≤ device capacity;
//  8. a reconfiguration of length reconf_s separates consecutive tasks in a
//     region (waived for the first task of a region, and — when module reuse
//     is enabled — for consecutive tasks sharing an implementation name);
//  9. reconfigurations never overlap each other (single reconfigurator) and
//     never overlap executions in their own region;
//
// 10. the recorded makespan equals the maximum task end time.
func Check(s *Schedule) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	n := s.Graph.N()
	if len(s.Tasks) != n {
		bad("schedule covers %d tasks, graph has %d", len(s.Tasks), n)
		return errs
	}

	// 1–4: per-task structure.
	for t, a := range s.Tasks {
		task := s.Graph.Tasks[t]
		if a.Impl < 0 || a.Impl >= len(task.Impls) {
			bad("task %d: impl index %d out of range", t, a.Impl)
			continue
		}
		im := task.Impls[a.Impl]
		if a.Start < 0 {
			bad("task %d: negative start %d", t, a.Start)
		}
		if a.End-a.Start != im.Time {
			bad("task %d: slot [%d,%d) does not match impl time %d", t, a.Start, a.End, im.Time)
		}
		switch a.Target.Kind {
		case OnProcessor:
			if im.Kind != taskgraph.SW {
				bad("task %d: HW impl %q on a processor", t, im.Name)
			}
			if a.Target.Index < 0 || a.Target.Index >= s.Arch.Processors {
				bad("task %d: processor %d out of range [0,%d)", t, a.Target.Index, s.Arch.Processors)
			}
		case OnRegion:
			if im.Kind != taskgraph.HW {
				bad("task %d: SW impl %q in a region", t, im.Name)
			}
			if a.Target.Index < 0 || a.Target.Index >= len(s.Regions) {
				bad("task %d: region %d out of range [0,%d)", t, a.Target.Index, len(s.Regions))
				continue
			}
			if !im.Res.Fits(s.Regions[a.Target.Index].Res) {
				bad("task %d: impl %q needs %v, region %d offers %v",
					t, im.Name, im.Res, a.Target.Index, s.Regions[a.Target.Index].Res)
			}
		default:
			bad("task %d: invalid target kind %d", t, a.Target.Kind)
		}
	}
	if len(errs) > 0 {
		// Structural breakage makes the remaining checks unreliable.
		return errs
	}

	// 5: precedence including per-edge communication time.
	for _, e := range s.Graph.Edges() {
		comm := s.Graph.EdgeComm(e[0], e[1])
		if s.Tasks[e[0]].End+comm > s.Tasks[e[1]].Start {
			bad("edge %d→%d violated: end %d + comm %d > start %d",
				e[0], e[1], s.Tasks[e[0]].End, comm, s.Tasks[e[1]].Start)
		}
	}

	// 6: mutual exclusion per execution unit.
	for p := 0; p < s.Arch.Processors; p++ {
		checkDisjoint(s, s.ProcessorTasks(p), fmt.Sprintf("processor %d", p), &errs)
	}
	for r := range s.Regions {
		checkDisjoint(s, s.RegionTasks(r), fmt.Sprintf("region %d", r), &errs)
	}

	// 7: device capacity.
	if tot := s.TotalRegionResources(); !tot.Fits(s.Arch.MaxRes) {
		bad("regions need %v, device offers %v", tot, s.Arch.MaxRes)
	}

	// Region reconfiguration structure (8, part of 9).
	checkReconfs(s, &errs)

	// 9: reconfigurator capacity — at most ReconfiguratorCount
	// reconfigurations may be in flight at any instant (exactly one in the
	// paper's single-ICAP architecture).
	if cap := s.Arch.ReconfiguratorCount(); len(s.Reconfs) > 0 {
		type endpoint struct {
			t     int64
			delta int
		}
		pts := make([]endpoint, 0, 2*len(s.Reconfs))
		for _, rc := range s.Reconfs {
			pts = append(pts, endpoint{rc.Start, 1}, endpoint{rc.End, -1})
		}
		sort.Slice(pts, func(i, j int) bool {
			if pts[i].t != pts[j].t {
				return pts[i].t < pts[j].t
			}
			return pts[i].delta < pts[j].delta // ends before starts at ties
		})
		inFlight, worst := 0, 0
		var worstAt int64
		for _, p := range pts {
			inFlight += p.delta
			if inFlight > worst {
				worst = inFlight
				worstAt = p.t
			}
		}
		if worst > cap {
			bad("%d reconfigurations in flight at t=%d, architecture has %d controller(s)", worst, worstAt, cap)
		}
	}

	// 10: makespan.
	var m int64
	for _, a := range s.Tasks {
		if a.End > m {
			m = a.End
		}
	}
	if s.Makespan != m {
		bad("recorded makespan %d, computed %d", s.Makespan, m)
	}
	return errs
}

// Valid returns the first violation, or nil for a valid schedule.
func Valid(s *Schedule) error {
	if errs := Check(s); len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// checkDisjoint verifies that the (start-sorted) tasks never overlap on one
// execution unit.
func checkDisjoint(s *Schedule, tasks []int, unit string, errs *[]error) {
	for i := 1; i < len(tasks); i++ {
		prev, cur := s.Tasks[tasks[i-1]], s.Tasks[tasks[i]]
		if prev.End > cur.Start {
			*errs = append(*errs, fmt.Errorf("%s: tasks %d [%d,%d) and %d [%d,%d) overlap",
				unit, tasks[i-1], prev.Start, prev.End, tasks[i], cur.Start, cur.End))
		}
	}
}

// checkReconfs validates condition 8 and the region side of condition 9.
func checkReconfs(s *Schedule, errs *[]error) {
	bad := func(format string, args ...any) {
		*errs = append(*errs, fmt.Errorf(format, args...))
	}
	// Index reconfigurations by (region, outTask).
	type key struct{ region, out int }
	byOut := make(map[key]*Reconfiguration)
	for i := range s.Reconfs {
		rc := &s.Reconfs[i]
		if rc.Region < 0 || rc.Region >= len(s.Regions) {
			bad("reconfiguration %d: region %d out of range", i, rc.Region)
			continue
		}
		reg := s.Regions[rc.Region]
		if got := rc.End - rc.Start; got != reg.ReconfTime {
			bad("reconfiguration %d: duration %d, region %d needs %d", i, got, rc.Region, reg.ReconfTime)
		}
		if rc.Start < 0 {
			bad("reconfiguration %d: negative start %d", i, rc.Start)
		}
		if rc.OutTask < 0 || rc.OutTask >= s.Graph.N() {
			bad("reconfiguration %d: outgoing task %d out of range", i, rc.OutTask)
			continue
		}
		out := s.Tasks[rc.OutTask]
		if out.Target.Kind != OnRegion || out.Target.Index != rc.Region {
			bad("reconfiguration %d: outgoing task %d not in region %d", i, rc.OutTask, rc.Region)
			continue
		}
		if rc.End > out.Start {
			bad("reconfiguration %d: ends at %d after outgoing task %d starts at %d", i, rc.End, rc.OutTask, out.Start)
		}
		if rc.InTask >= s.Graph.N() {
			bad("reconfiguration %d: ingoing task %d out of range", i, rc.InTask)
			continue
		}
		if rc.InTask >= 0 {
			in := s.Tasks[rc.InTask]
			if in.Target.Kind != OnRegion || in.Target.Index != rc.Region {
				bad("reconfiguration %d: ingoing task %d not in region %d", i, rc.InTask, rc.Region)
			} else if rc.Start < in.End {
				bad("reconfiguration %d: starts at %d before ingoing task %d ends at %d", i, rc.Start, rc.InTask, in.End)
			}
		}
		byOut[key{rc.Region, rc.OutTask}] = rc
	}
	// Every consecutive pair in a region needs its reconfiguration.
	for r := range s.Regions {
		tasks := s.RegionTasks(r)
		for i := 1; i < len(tasks); i++ {
			tin, tout := tasks[i-1], tasks[i]
			if s.ModuleReuse && s.Impl(tin).Name == s.Impl(tout).Name {
				continue // same bitstream already loaded
			}
			rc, ok := byOut[key{r, tout}]
			if !ok {
				bad("region %d: no reconfiguration between tasks %d and %d", r, tin, tout)
				continue
			}
			if rc.Start < s.Tasks[tin].End {
				bad("region %d: reconfiguration for task %d starts at %d before task %d ends at %d",
					r, tout, rc.Start, tin, s.Tasks[tin].End)
			}
		}
	}
	// Reconfigurations must not overlap executions inside their region.
	for i := range s.Reconfs {
		rc := &s.Reconfs[i]
		if rc.Region < 0 || rc.Region >= len(s.Regions) {
			continue
		}
		for _, t := range s.RegionTasks(rc.Region) {
			a := s.Tasks[t]
			if rc.Start < a.End && a.Start < rc.End {
				bad("region %d: reconfiguration [%d,%d) overlaps task %d [%d,%d)",
					rc.Region, rc.Start, rc.End, t, a.Start, a.End)
			}
		}
	}
}
