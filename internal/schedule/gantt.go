package schedule

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteGantt renders the schedule as a textual Gantt chart with one row per
// processor, per region and for the reconfigurator, scaled to the given
// width in character cells. It is meant for examples and debugging output.
func (s *Schedule) WriteGantt(w io.Writer, width int) error {
	if width < 10 {
		width = 10
	}
	horizon := s.Makespan
	for _, rc := range s.Reconfs {
		if rc.End > horizon {
			horizon = rc.End
		}
	}
	if horizon == 0 {
		horizon = 1
	}
	cell := func(t int64) int {
		c := int(t * int64(width) / horizon)
		if c >= width {
			c = width - 1
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  makespan=%d ticks  regions=%d  reconf-total=%d ticks\n",
		s.Algorithm, s.Makespan, len(s.Regions), s.TotalReconfTime())
	row := func(label string, spans []span) {
		line := []byte(strings.Repeat(".", width))
		for _, sp := range spans {
			lo, hi := cell(sp.start), cell(sp.end-1)
			for c := lo; c <= hi && c < width; c++ {
				line[c] = sp.glyph
			}
		}
		fmt.Fprintf(&b, "%-12s|%s|\n", label, line)
	}
	glyphFor := func(t int) byte {
		return "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"[t%62]
	}
	for p := 0; p < s.Arch.Processors; p++ {
		var spans []span
		for _, t := range s.ProcessorTasks(p) {
			a := s.Tasks[t]
			spans = append(spans, span{a.Start, a.End, glyphFor(t)})
		}
		row(fmt.Sprintf("cpu%d", p), spans)
	}
	for r := range s.Regions {
		var spans []span
		for _, t := range s.RegionTasks(r) {
			a := s.Tasks[t]
			spans = append(spans, span{a.Start, a.End, glyphFor(t)})
		}
		row(fmt.Sprintf("region%d", r), spans)
	}
	var rcs []span
	rcSorted := append([]Reconfiguration(nil), s.Reconfs...)
	sort.Slice(rcSorted, func(i, j int) bool {
		if rcSorted[i].Start != rcSorted[j].Start {
			return rcSorted[i].Start < rcSorted[j].Start
		}
		if rcSorted[i].Region != rcSorted[j].Region {
			return rcSorted[i].Region < rcSorted[j].Region
		}
		return rcSorted[i].OutTask < rcSorted[j].OutTask
	})
	for _, rc := range rcSorted {
		rcs = append(rcs, span{rc.Start, rc.End, '#'})
	}
	row("reconf", rcs)
	fmt.Fprintln(&b, "legend: task glyphs A..Z by ID, # = reconfiguration")
	_, err := io.WriteString(w, b.String())
	return err
}

type span struct {
	start, end int64
	glyph      byte
}

// Summary returns a one-line description of the schedule.
func (s *Schedule) Summary() string {
	return fmt.Sprintf("%s: makespan=%d regions=%d hwTasks=%d/%d reconfs=%d reconfTime=%d",
		s.Algorithm, s.Makespan, len(s.Regions), s.HWTaskCount(), s.Graph.N(), len(s.Reconfs), s.TotalReconfTime())
}
