package sched

import (
	"math"
	"math/rand"
	"testing"

	"resched/internal/arch"
	"resched/internal/resources"
	"resched/internal/taskgraph"
)

// newTestState builds a state over the given graph on the ZedBoard.
func newTestState(t *testing.T, g *taskgraph.Graph) *state {
	t.Helper()
	a := arch.ZedBoard()
	s := newState(g, a, a.MaxRes)
	s.selectImplementations()
	if err := s.retime(); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaxT(t *testing.T) {
	g := taskgraph.New("g")
	g.AddTask("a", sw("s", 100), hw("h", 40, 10, 0, 0))
	g.AddTask("b", sw("s", 70))
	s := newTestState(t, g)
	// Σ min times = 40 + 70.
	if got := s.maxT(); got != 110 {
		t.Errorf("maxT = %d, want 110", got)
	}
}

func TestImplCostFormula(t *testing.T) {
	// Hand-checked eq. (3) on the ZedBoard: weights from eq. (4),
	// denominator Σ weight·maxRes.
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	g.AddTask("a", sw("s", 1000), hw("h", 500, 1000, 10, 20))
	s := newState(g, a, a.MaxRes)
	s.selectImplementations()

	w := resources.WeightsFor(a.MaxRes)
	im := g.Tasks[0].Impls[1]
	wantRes := w.Weighted(im.Res) / w.Weighted(a.MaxRes)
	wantTime := float64(im.Time) / float64(g.Tasks[0].MinTime()) // maxT = min time of the only task
	got := s.implCost(im, s.maxT())
	if math.Abs(got-(wantRes+wantTime)) > 1e-12 {
		t.Errorf("implCost = %v, want %v", got, wantRes+wantTime)
	}
}

func TestImplCostDegenerateDevice(t *testing.T) {
	// A zero-capacity device must not divide by zero.
	g := taskgraph.New("g")
	g.AddTask("a", sw("s", 10), hw("h", 5, 1, 0, 0))
	a := &arch.Architecture{Name: "zero", Processors: 1, RecFreq: 1, MaxRes: resources.Vector{}}
	s := newState(g, a, a.MaxRes)
	if c := s.implCost(g.Tasks[0].Impls[1], 0); math.IsNaN(c) || math.IsInf(c, 0) {
		t.Errorf("implCost degenerate = %v", c)
	}
}

func TestEfficiencyOrdering(t *testing.T) {
	// eff = time / weighted res: the small-slow implementation of a menu
	// must have the higher efficiency index.
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	g.AddTask("a", sw("s", 10000),
		hw("fast", 100, 2000, 10, 20),
		hw("small", 260, 600, 3, 6))
	s := newState(g, a, a.MaxRes)
	fast, small := g.Tasks[0].Impls[1], g.Tasks[0].Impls[2]
	if !(s.efficiency(small) > s.efficiency(fast)) {
		t.Errorf("efficiency(small)=%v should exceed efficiency(fast)=%v",
			s.efficiency(small), s.efficiency(fast))
	}
	// Zero-resource implementations are infinitely efficient.
	free := taskgraph.Implementation{Name: "free", Kind: taskgraph.HW, Time: 5}
	if !math.IsInf(s.efficiency(free), 1) {
		t.Errorf("efficiency of zero-area impl = %v", s.efficiency(free))
	}
}

func TestSelectImplementationsPrefersFasterOf(t *testing.T) {
	g := taskgraph.New("g")
	// HW faster than SW → HW selected.
	g.AddTask("hwwin", sw("s", 1000), hw("h", 100, 200, 0, 0))
	// SW faster than best HW → SW selected.
	g.AddTask("swwin", sw("s", 50), hw("h", 100, 200, 0, 0))
	s := newTestState(t, g)
	if !s.isHW(0) {
		t.Error("task 0 should select hardware")
	}
	if s.isHW(1) {
		t.Error("task 1 should select software")
	}
}

func TestHWOrderCriticalFirst(t *testing.T) {
	// Diamond with one long branch: the short-branch task is non-critical
	// and must come after all critical tasks regardless of efficiency.
	g := taskgraph.New("g")
	g.AddTask("src", sw("s", 10000), hw("h", 100, 500, 0, 0))
	g.AddTask("long", sw("s", 10000), hw("h", 900, 500, 0, 0))
	g.AddTask("short", sw("s", 10000), hw("h", 100, 100, 0, 0)) // tiny → high eff
	g.AddTask("sink", sw("s", 10000), hw("h", 100, 500, 0, 0))
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 3)
	mustEdge(t, g, 2, 3)
	s := newTestState(t, g)
	isCritical := make([]bool, g.N())
	for i := range isCritical {
		isCritical[i] = s.critical(i)
	}
	if isCritical[2] {
		t.Fatal("short branch unexpectedly critical")
	}
	order := s.hwOrder(isCritical, nil)
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	// Task 2 (the only non-critical one) must be last despite having the
	// highest efficiency index.
	if order[3] != 2 {
		t.Errorf("non-critical task not last: %v", order)
	}
}

func TestHWOrderRandomPermutesOnlyNonCritical(t *testing.T) {
	g := taskgraph.New("g")
	for i := 0; i < 6; i++ {
		g.AddTask("t", sw("s", 10000), hw("h", 100+int64(i), 100+10*i, 0, 0))
	}
	// Chain 0→1→2 critical; 3,4,5 isolated non-critical (shorter).
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	s := newTestState(t, g)
	isCritical := make([]bool, g.N())
	for i := range isCritical {
		isCritical[i] = s.critical(i)
	}
	det := s.hwOrder(isCritical, nil)
	rng := rand.New(rand.NewSource(9))
	rnd := s.hwOrder(isCritical, rng)
	// The critical prefix is identical; the suffix is a permutation of the
	// same non-critical set.
	nc := 0
	for _, c := range isCritical {
		if !c {
			nc++
		}
	}
	prefix := len(det) - nc
	for i := 0; i < prefix; i++ {
		if det[i] != rnd[i] {
			t.Fatalf("critical prefix differs at %d: %v vs %v", i, det, rnd)
		}
	}
	seen := map[int]bool{}
	for _, v := range rnd[prefix:] {
		seen[v] = true
	}
	for _, v := range det[prefix:] {
		if !seen[v] {
			t.Fatalf("random order lost task %d", v)
		}
	}
}

func TestInsertionStartCases(t *testing.T) {
	// Region with one occupant [100, 200); region reconf time derived from
	// its 500-slice requirement.
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	g.AddTask("busy", sw("s", 100000), hw("h", 100, 500, 0, 0))
	g.AddTask("cand", sw("s", 100000), hw("h", 50, 400, 0, 0))
	s := newState(g, a, a.MaxRes)
	s.selectImplementations()
	if err := s.retime(); err != nil {
		t.Fatal(err)
	}
	r := s.newRegion(resources.Vec(500, 0, 0))
	// Pin the occupant at [100, 200) via a release.
	if err := s.delay(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.assignToRegion(0, r); err != nil {
		t.Fatal(err)
	}

	// Candidate window is wide (independent task): [0, makespan].
	// Without a gap requirement the earliest fit is before the occupant
	// when it fits, else right after.
	st := s.insertionStart(r, 1, 50, false, -1)
	if st != 0 {
		t.Errorf("insertion before occupant: start = %d, want 0", st)
	}
	// A 150-tick execution does not fit before the occupant (only 100
	// free); within the candidate's own window (lft = makespan = 200) no
	// position exists, so the insertion is rejected...
	st = s.insertionStart(r, 1, 150, false, -1)
	if st != -1 {
		t.Errorf("window-bounded insertion accepted at %d", st)
	}
	// ...but a wider horizon (the software-balancing case) places it right
	// after the occupant.
	st = s.insertionStart(r, 1, 150, false, 1000)
	if st != 200 {
		t.Errorf("horizon insertion after occupant: start = %d, want 200", st)
	}
	// With the reconfiguration gap the fit before the occupant must also
	// leave r.reconf before the occupant's start.
	st = s.insertionStart(r, 1, 50, true, -1)
	if st != -1 && st != 200+r.reconf {
		// Either rejected entirely or placed after with the gap.
		t.Errorf("gap insertion start = %d (reconf %d)", st, r.reconf)
	}
	// A horizon below the required end rejects the insertion.
	if got := s.insertionStart(r, 1, int64(1<<40), false, -1); got != -1 {
		t.Errorf("oversized insertion accepted at %d", got)
	}
}

func TestTotalReconfTime(t *testing.T) {
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 100000), hw("h", 100, 500, 0, 0))
	}
	s := newState(g, a, a.MaxRes)
	s.selectImplementations()
	if err := s.retime(); err != nil {
		t.Fatal(err)
	}
	r := s.newRegion(resources.Vec(500, 0, 0))
	if got := s.totalReconfTime(); got != 0 {
		t.Errorf("empty region contributes %d", got)
	}
	r.tasks = []int{0}
	if got := s.totalReconfTime(); got != 0 {
		t.Errorf("single-task region contributes %d", got)
	}
	r.tasks = []int{0, 1, 2}
	if got := s.totalReconfTime(); got != 2*r.reconf {
		t.Errorf("totalReconfTime = %d, want %d", got, 2*r.reconf)
	}
}

func TestRegionTasksByStartOrdering(t *testing.T) {
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	for i := 0; i < 3; i++ {
		g.AddTask("t", sw("s", 1000))
	}
	s := newState(g, a, a.MaxRes)
	s.selectImplementations()
	if err := s.retime(); err != nil {
		t.Fatal(err)
	}
	r := &regionState{tasks: []int{2, 0, 1}}
	// Give distinct starts via releases.
	s.release[0] = 50
	s.release[1] = 20
	s.release[2] = 90
	if err := s.retime(); err != nil {
		t.Fatal(err)
	}
	got := s.regionTasksByStart(r)
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFootprintRounding(t *testing.T) {
	a := arch.ZedBoard()
	g := taskgraph.New("g")
	g.AddTask("t", sw("s", 10))
	s := newState(g, a, a.MaxRes)
	// On the Zynq fabric a 450-slice request occupies at least 5 CLB cells.
	fp := s.footprint(resources.Vec(450, 0, 0))
	if fp[resources.CLB] < 500 {
		t.Errorf("footprint CLB = %d, want ≥ 500", fp[resources.CLB])
	}
	// Caching returns the identical value.
	if fp2 := s.footprint(resources.Vec(450, 0, 0)); fp2 != fp {
		t.Errorf("footprint cache mismatch: %v vs %v", fp2, fp)
	}
	// Without a fabric, rounding is per-kind cell granularity (cells of 1).
	b := &arch.Architecture{Name: "b", Processors: 1, RecFreq: 1, MaxRes: resources.Vec(100, 10, 10)}
	s2 := newState(g, b, b.MaxRes)
	if fp := s2.footprint(resources.Vec(7, 1, 2)); fp != resources.Vec(7, 1, 2) {
		t.Errorf("fabric-less footprint = %v", fp)
	}
}
