package sched

import (
	"reflect"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/schedule"
)

// TestFloorplanHintShortCircuit: a hint that verifies against the run's
// regions must be adopted verbatim — same schedule as a hint-free run,
// placements equal to the hint, and the floorplan search skipped (counted
// via the trace).
func TestFloorplanHintShortCircuit(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	base, baseStats, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseStats.Placements) == 0 {
		t.Fatal("baseline run produced no placements; hint test needs them")
	}

	trace := obs.New()
	sch, stats, err := Schedule(g, a, Options{
		FloorplanHint: baseStats.Placements,
		Trace:         trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sch.Tasks, base.Tasks) {
		t.Fatal("hinted run changed the schedule")
	}
	if sch.Makespan != base.Makespan {
		t.Fatalf("hinted makespan %d != base %d", sch.Makespan, base.Makespan)
	}
	if !reflect.DeepEqual(stats.Placements, baseStats.Placements) {
		t.Fatal("hinted run did not adopt the hint placements")
	}
	if got := trace.Metrics().Counters["pa.floorplan_hint_used"]; got != 1 {
		t.Fatalf("pa.floorplan_hint_used = %d, want 1", got)
	}
}

// TestFloorplanHintRejected: an unverifiable hint must be ignored — the
// run falls back to the regular floorplan search and ends bit-identical
// to a hint-free run.
func TestFloorplanHintRejected(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	base, baseStats, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Right length, wrong content: every region stacked on the same cell
	// overlaps and cannot verify.
	bad := make([]floorplan.Placement, len(baseStats.Placements))
	for i := range bad {
		bad[i] = floorplan.Placement{X0: 0, X1: 1, Y0: 0, Y1: 1}
	}
	trace := obs.New()
	sch, stats, err := Schedule(g, a, Options{FloorplanHint: bad, Trace: trace})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sch.Tasks, base.Tasks) || sch.Makespan != base.Makespan {
		t.Fatal("rejected hint still changed the schedule")
	}
	if !reflect.DeepEqual(stats.Placements, baseStats.Placements) {
		t.Fatal("rejected hint changed the floorplan result")
	}
	if got := trace.Metrics().Counters["pa.floorplan_hint_rejected"]; got != 1 {
		t.Fatalf("pa.floorplan_hint_rejected = %d, want 1", got)
	}
}

// TestSequentialIncumbentStands: when no sequential PA-R iteration beats
// the warm-start incumbent, the incumbent itself is returned.
func TestSequentialIncumbentStands(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	// An unbeatable incumbent: makespan 1 with the right task count.
	inc := schedule.New(g, a)
	inc.Makespan = 1
	sch, stats, err := RSchedule(g, a, RandomOptions{
		Seed: 1, Workers: 1, MaxIterations: 4, InitialIncumbent: inc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sch != inc {
		t.Fatal("unbeaten incumbent was not returned as-is")
	}
	if len(stats.History) != 0 {
		t.Fatalf("incumbent produced %d History entries, want 0", len(stats.History))
	}
	if stats.FloorplanCalls != 0 {
		t.Fatalf("unbeatable incumbent still allowed %d floorplan calls", stats.FloorplanCalls)
	}
}

// TestParallelIncumbent: the parallel search with an incumbent stays
// deterministic (double-run identical) and never returns anything worse
// than the incumbent.
func TestParallelIncumbent(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	inc, _, err := Schedule(g, a, Options{})
	if err != nil {
		t.Fatal(err)
	}

	run := func() *schedule.Schedule {
		sch, _, err := RSchedule(g, a, RandomOptions{
			Seed: 1, Workers: 3, MaxIterations: 12, InitialIncumbent: inc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sch
	}
	x, y := run(), run()
	if x.Makespan != y.Makespan || !reflect.DeepEqual(x.Tasks, y.Tasks) {
		t.Fatal("parallel warm-started double-run differs")
	}
	if x.Makespan > inc.Makespan {
		t.Fatalf("warm result %d worse than incumbent %d", x.Makespan, inc.Makespan)
	}

	// Unbeatable incumbent: every worker is gated by the bar, so the
	// incumbent itself must come back.
	unbeatable := schedule.New(g, a)
	unbeatable.Makespan = 1
	sch, stats, err := RSchedule(g, a, RandomOptions{
		Seed: 1, Workers: 3, MaxIterations: 12, InitialIncumbent: unbeatable,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sch != unbeatable {
		t.Fatal("parallel search did not return the unbeaten incumbent")
	}
	if stats.FloorplanCalls != 0 {
		t.Fatalf("bar did not gate floorplan calls: %d", stats.FloorplanCalls)
	}
}

// TestUsableIncumbentGuards: incompatible incumbents are ignored, not
// trusted.
func TestUsableIncumbentGuards(t *testing.T) {
	g, err := benchgen.Generate(benchgen.Config{Tasks: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	other, err := benchgen.Generate(benchgen.Config{Tasks: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.ZedBoard()
	wrongSize := schedule.New(other, a)
	wrongSize.Makespan = 1
	if usableIncumbent(wrongSize, g) {
		t.Fatal("incumbent with wrong task count accepted")
	}
	zero := schedule.New(g, a)
	if usableIncumbent(zero, g) {
		t.Fatal("incumbent with zero makespan accepted")
	}
	if usableIncumbent(nil, g) {
		t.Fatal("nil incumbent accepted")
	}
	good := schedule.New(g, a)
	good.Makespan = 5
	if !usableIncumbent(good, g) {
		t.Fatal("valid incumbent rejected")
	}
}
