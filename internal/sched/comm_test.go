package sched

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// TestCommChainDelaysStart verifies the §VIII communication-overhead
// extension end to end: a producer–consumer pair with an explicit transfer
// time must be separated by at least that time in PA's schedule.
func TestCommChainDelaysStart(t *testing.T) {
	g := taskgraph.New("comm")
	g.AddTask("produce", sw("p_sw", 400), hw("p_hw", 100, 500, 0, 0))
	g.AddTask("consume", sw("c_sw", 400), hw("c_hw", 100, 500, 0, 0))
	if err := g.AddEdgeComm(0, 1, 250); err != nil {
		t.Fatal(err)
	}
	sch, _ := mustSchedule(t, g, arch.ZedBoard(), Options{})
	if got := sch.Tasks[1].Start - sch.Tasks[0].End; got < 250 {
		t.Errorf("consumer starts %d ticks after producer, want ≥ 250", got)
	}
	// With both tasks in hardware the makespan is exactly
	// 100 + 250 + 100.
	if sch.HWTaskCount() == 2 && sch.Makespan != 450 {
		t.Errorf("makespan = %d, want 450", sch.Makespan)
	}
}

// TestCommZeroMatchesPlainEdge checks that a zero-communication edge
// behaves exactly like a plain AddEdge.
func TestCommZeroMatchesPlainEdge(t *testing.T) {
	build := func(withComm bool) *taskgraph.Graph {
		g := taskgraph.New("z")
		g.AddTask("a", sw("a_sw", 300), hw("a_hw", 80, 400, 0, 0))
		g.AddTask("b", sw("b_sw", 300), hw("b_hw", 80, 400, 0, 0))
		if withComm {
			if err := g.AddEdgeComm(0, 1, 0); err != nil {
				t.Fatal(err)
			}
		} else {
			mustEdge(t, g, 0, 1)
		}
		return g
	}
	a := arch.ZedBoard()
	s1, _ := mustSchedule(t, build(false), a, Options{SkipFloorplan: true})
	s2, _ := mustSchedule(t, build(true), a, Options{SkipFloorplan: true})
	if s1.Makespan != s2.Makespan {
		t.Errorf("zero comm changed the schedule: %d vs %d", s1.Makespan, s2.Makespan)
	}
}

// TestCommSuiteAllSchedulersValid runs every scheduler on communication-
// annotated synthetic instances and validates the results with the
// independent checker (which enforces end + comm ≤ start per edge).
func TestCommSuiteAllSchedulersValid(t *testing.T) {
	a := arch.ZedBoard()
	for _, n := range []int{15, 35} {
		g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(700 + n), CommMax: 300})
		// Sanity: the generator produced at least one positive comm.
		any := false
		for _, e := range g.Edges() {
			if g.EdgeComm(e[0], e[1]) > 0 {
				any = true
				break
			}
		}
		if !any {
			t.Fatalf("n=%d: generator produced no communication times", n)
		}

		pa, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
		par, _, err := RSchedule(g, a, RandomOptions{MaxIterations: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if errs := schedule.Check(par); len(errs) > 0 {
			t.Fatalf("n=%d: PA-R schedule invalid: %v", n, errs[0])
		}
		is1, _, err := isk.Schedule(g, a, isk.Options{K: 1, SkipFloorplan: true})
		if err != nil {
			t.Fatal(err)
		}
		if errs := schedule.Check(is1); len(errs) > 0 {
			t.Fatalf("n=%d: IS-1 schedule invalid: %v", n, errs[0])
		}
		is5, _, err := isk.Schedule(g, a, isk.Options{K: 5, SkipFloorplan: true})
		if err != nil {
			t.Fatal(err)
		}
		if errs := schedule.Check(is5); len(errs) > 0 {
			t.Fatalf("n=%d: IS-5 schedule invalid: %v", n, errs[0])
		}
		// The makespan is bounded below by the longest comm-weighted path
		// with minimal execution times.
		var lb int64
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		longest := make([]int64, g.N())
		for _, v := range order {
			longest[v] = g.Tasks[v].MinTime()
			for _, p := range g.Pred(v) {
				if c := longest[p] + g.EdgeComm(p, v) + g.Tasks[v].MinTime(); c > longest[v] {
					longest[v] = c
				}
			}
			if longest[v] > lb {
				lb = longest[v]
			}
		}
		if pa.Makespan < lb {
			t.Errorf("n=%d: makespan %d below comm-weighted critical path %d", n, pa.Makespan, lb)
		}
	}
}

// TestCommSoftwarePath exercises communication between software tasks on
// different processors.
func TestCommSoftwarePath(t *testing.T) {
	a := &arch.Architecture{
		Name: "cpuonly", Processors: 2, RecFreq: 3200,
		Bits: resources.DefaultBits, MaxRes: resources.Vec(10, 0, 0),
	}
	g := taskgraph.New("sw-comm")
	g.AddTask("a", sw("a_sw", 100))
	g.AddTask("b", sw("b_sw", 100))
	g.AddTask("c", sw("c_sw", 100))
	if err := g.AddEdgeComm(0, 2, 500); err != nil {
		t.Fatal(err)
	}
	mustEdge(t, g, 1, 2)
	sch, _ := mustSchedule(t, g, a, Options{SkipFloorplan: true})
	// c must wait for a's data: 100 + 500 + 100.
	if sch.Makespan != 700 {
		t.Errorf("makespan = %d, want 700", sch.Makespan)
	}
}
