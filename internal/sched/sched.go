// Package sched implements the paper's contribution: PA, a deterministic
// eight-phase scheduling heuristic for task graphs on partially
// reconfigurable FPGA-based SoCs (§V), and PA-R, its randomized variant
// (§VI). Both produce schedules validated by package schedule and
// floorplanned by package floorplan.
package sched

import (
	"fmt"
	"math/rand"
	"time"

	"resched/internal/arch"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/floorplan"
	"resched/internal/obs"
	"resched/internal/resources"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// Options tune a single deterministic scheduling run.
type Options struct {
	// ModuleReuse enables the paper's future-work extension: consecutive
	// tasks in a region sharing an implementation name skip the
	// reconfiguration between them.
	ModuleReuse bool
	// SkipFloorplan omits the feasibility check (phase 8). The randomized
	// scheduler uses this for its inner runs and floorplans only promising
	// solutions (Algorithm 1).
	SkipFloorplan bool
	// Floorplan configures the phase-8 feasibility query.
	Floorplan floorplan.Options
	// MaxRetries bounds the shrink-and-restart loop of §V-H (default 20).
	MaxRetries int
	// ShrinkFactor is the virtual capacity reduction applied per retry
	// (default 0.93: retries are cheap, so shrink gently).
	ShrinkFactor float64
	// Rand, when non-nil, randomizes the non-critical task order in the
	// regions-definition phase (the PA-R inner run).
	Rand *rand.Rand
	// StrictWindows switches region compatibility to the literal
	// window-disjointness reading of §V-C instead of the default
	// slot-insertion test; kept for ablation studies.
	StrictWindows bool
	// NoSWBalance disables the software-task-balancing phase (§V-D);
	// kept for ablation studies.
	NoSWBalance bool
	// Budget, when non-nil, bounds the whole run: it is checked at every
	// attempt and phase boundary and charged per node inside the phase-8
	// floorplan search, so a cancel or deadline lands in milliseconds. On
	// exhaustion Schedule returns an error matching ErrBudgetExhausted.
	Budget *budget.Budget
	// Faults, when armed, is forwarded to the floorplanner (and its MILP
	// engine) to drive failure paths deterministically in tests.
	Faults *faultinject.Set
	// Trace, when non-nil, records spans for the run, each shrink-retry
	// attempt (annotated with the shrunk capacity vector) and each of the
	// eight phases, plus retry counters (package obs). A nil trace is a
	// no-op, and recording never influences scheduling decisions: traced
	// and untraced runs produce identical schedules.
	Trace *obs.Trace

	// Initial, when non-nil and non-empty, is the warm platform state an
	// epoch re-plan starts from: release floors from frozen predecessors,
	// busy-until times on processors and reconfiguration controllers, and
	// pre-existing regions (possibly mid-reconfiguration with a pinned
	// task). Tail region i of the result corresponds to Initial.Regions[i].
	// A nil or empty state reproduces the historical t=0 solve exactly.
	// The state is only read, never retained or mutated.
	Initial *schedule.PlatformState

	// FloorplanHint, when non-empty, is a warm-start candidate for phase 8:
	// before searching, the hint rectangles are verified against the run's
	// region requirements (floorplan.Verify), and when they fit, the
	// floorplan search is skipped entirely and the hint becomes the
	// placement. A hint that does not verify — wrong region count, overlap,
	// short on resources — is ignored and the normal search runs, so the
	// hint can only change *which* feasible placement is returned, never
	// whether the schedule is feasible. The scheduling phases 1–7 do not
	// read it: task assignments and the makespan are hint-independent.
	// The hint slice is only read, never retained or mutated.
	FloorplanHint []floorplan.Placement

	// Arena, when non-nil, is the caller-owned reusable scratch space the
	// run executes in, so long-lived callers (a serving worker solving a
	// stream of requests) amortise the working buffers across runs. The
	// arena must not be shared between goroutines or concurrent runs.
	Arena *Arena

	// scratch, when non-nil, is the reusable working arena the pipeline
	// runs in. Repeat callers (shrink retries inside Schedule, PA-R
	// iterations) set it once so buffers survive across runs; a nil scratch
	// makes runPipeline allocate a fresh one. A scratch must never be
	// shared between goroutines.
	scratch *state
}

func (o Options) withDefaults() Options {
	if o.MaxRetries == 0 {
		o.MaxRetries = 20
	}
	if o.ShrinkFactor == 0 {
		o.ShrinkFactor = 0.93
	}
	return o
}

// Stats reports how a scheduling run went; Table I of the paper splits PA's
// execution time into scheduling and floorplanning, which these fields
// regenerate.
type Stats struct {
	// SchedulingTime is the time spent in phases 1–7.
	SchedulingTime time.Duration
	// FloorplanTime is the time spent in phase 8 across all retries.
	FloorplanTime time.Duration
	// Retries counts shrink-and-restart rounds taken (0 = first try).
	Retries int
	// Attempts counts scheduling runs (Retries + 1 on success): the
	// iteration count that makes the CLI report uniform across PA, PA-R
	// and IS-k.
	Attempts int
	// Placements holds the floorplan found for the final schedule's
	// regions (empty when SkipFloorplan).
	Placements []floorplan.Placement
}

// Schedule runs the deterministic PA heuristic on the instance and returns
// a complete, floorplan-feasible schedule.
func Schedule(g *taskgraph.Graph, a *arch.Architecture, opts Options) (*schedule.Schedule, *Stats, error) {
	opts = opts.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, nil, err
	}
	run := opts.Trace.Start("pa.run")
	defer run.End()
	if opts.Floorplan.Trace == nil {
		opts.Floorplan.Trace = opts.Trace
	}
	if opts.Floorplan.Budget == nil {
		opts.Floorplan.Budget = opts.Budget
	}
	if opts.Floorplan.Faults == nil {
		opts.Floorplan.Faults = opts.Faults
	}
	stats := &Stats{}
	if opts.scratch == nil {
		if opts.Arena != nil {
			opts.scratch = &opts.Arena.s
		} else {
			opts.scratch = &state{}
		}
	}
	// observeRun records the run's distributions on success: how many
	// shrink-retry attempts the instance needed and how many
	// reconfigurations the accepted schedule carries. Values, not times —
	// they must be bit-identical across repeated runs.
	observeRun := func(sch *schedule.Schedule) {
		opts.Trace.Observe("pa.attempts", float64(stats.Attempts))
		opts.Trace.Observe("pa.reconfigurations", float64(len(sch.Reconfs)))
	}
	maxRes := a.MaxRes
	for attempt := 0; ; attempt++ {
		if err := opts.Budget.Check(); err != nil {
			return nil, nil, fmt.Errorf("sched: PA attempt %d: %w", attempt, err)
		}
		var att *obs.Span
		if opts.Trace.Enabled() {
			att = opts.Trace.Start("pa.attempt",
				obs.Int("attempt", int64(attempt)), obs.Str("maxres", maxRes.String()))
		}
		stats.Attempts++
		begin := time.Now()
		sch, regionRes, err := runPipeline(g, a, maxRes, opts)
		stats.SchedulingTime += time.Since(begin)
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		if opts.SkipFloorplan {
			att.End(obs.Str("outcome", "unfloorplanned"))
			observeRun(sch)
			return sch, stats, nil
		}
		fabric, err := a.RequireFabric()
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, fmt.Errorf("sched: floorplanning requested: %w", err)
		}
		if len(opts.FloorplanHint) > 0 && len(opts.FloorplanHint) == len(regionRes) {
			hintBegin := time.Now()
			hintErr := floorplan.Verify(fabric, regionRes, opts.FloorplanHint)
			stats.FloorplanTime += time.Since(hintBegin)
			if hintErr == nil {
				// The hint verified against this run's regions: adopt it as
				// the placement. Copying detaches the result from the
				// caller-owned hint slice.
				stats.Placements = append([]floorplan.Placement(nil), opts.FloorplanHint...)
				opts.Trace.Count("pa.floorplan_hint_used", 1)
				att.End(obs.Str("outcome", "feasible-hint"))
				observeRun(sch)
				return sch, stats, nil
			}
			opts.Trace.Count("pa.floorplan_hint_rejected", 1)
		}
		p8 := opts.Trace.Start("pa.phase8.floorplan")
		fpBegin := time.Now()
		res, err := floorplan.Solve(fabric, regionRes, opts.Floorplan)
		stats.FloorplanTime += time.Since(fpBegin)
		p8.End()
		if err != nil {
			att.End(obs.Str("outcome", "error"))
			return nil, nil, err
		}
		if res.Feasible {
			stats.Placements = res.Placements
			att.End(obs.Str("outcome", "feasible"))
			observeRun(sch)
			return sch, stats, nil
		}
		if attempt >= opts.MaxRetries {
			att.End(obs.Str("outcome", "infeasible"))
			return nil, nil, fmt.Errorf("sched: %w after %d shrink retries", ErrFloorplanInfeasible, attempt)
		}
		// §V-H: restart with virtually reduced FPGA resources.
		stats.Retries++
		opts.Trace.Count("pa.retries", 1)
		att.End(obs.Str("outcome", "infeasible-shrink"))
		for k := range maxRes {
			maxRes[k] = int(float64(maxRes[k]) * opts.ShrinkFactor)
		}
	}
}

// runPipeline executes phases 1–7 and assembles the schedule. The returned
// regionRes slice aliases the scratch arena and is only valid until the next
// pipeline run on the same scratch (the caller hands it to the floorplanner
// before retrying).
func runPipeline(g *taskgraph.Graph, a *arch.Architecture, maxRes resources.Vector, opts Options) (*schedule.Schedule, []resources.Vector, error) {
	s := opts.scratch
	if s == nil {
		s = &state{}
	}
	s.reset(g, a, maxRes)
	s.strict = opts.StrictWindows
	warm := opts.Initial != nil && !opts.Initial.Empty()
	if warm {
		if err := s.seedWarm(opts.Initial); err != nil {
			return nil, nil, err
		}
	}

	// checkBudget bounds how late a cancel can land: one phase at most.
	// The check never influences scheduling decisions — it either aborts
	// the run or changes nothing — so determinism is preserved.
	checkBudget := func() error {
		if err := opts.Budget.Check(); err != nil {
			return fmt.Errorf("sched: pipeline aborted: %w", err)
		}
		return nil
	}

	// Phase 1: implementation selection.
	sp := opts.Trace.Start("pa.phase1.implselect")
	s.selectImplementations()
	if warm {
		// Committed reconfigurations already load specific bitstreams:
		// pinned tasks keep them regardless of the cost model.
		s.applyPins()
	}
	sp.End()
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	// Phase 2: critical path extraction.
	sp = opts.Trace.Start("pa.phase2.criticalpath")
	if err := s.retime(); err != nil {
		sp.End()
		return nil, nil, err
	}
	if cap(s.critBuf) < g.N() {
		s.critBuf = make([]bool, g.N())
	}
	isCritical := s.critBuf[:g.N()]
	for t := range isCritical {
		isCritical[t] = s.critical(t)
	}
	sp.End()
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	if warm {
		// Pinned tasks are frozen facts, not decisions: commit them into
		// their warm regions before the regions-definition walk.
		if err := s.placePinned(); err != nil {
			return nil, nil, err
		}
	}
	// Phase 3: regions definition.
	sp = opts.Trace.Start("pa.phase3.regions")
	if err := s.defineRegions(s.hwOrder(isCritical, opts.Rand), isCritical); err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End(obs.Int("regions", int64(len(s.regions))))
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	// Phase 4: software task balancing.
	if !opts.NoSWBalance {
		sp = opts.Trace.Start("pa.phase4.swbalance")
		if err := s.balanceSoftware(); err != nil {
			sp.End()
			return nil, nil, err
		}
		sp.End()
	}
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	// Phase 5 is implicit: retime fixes T_START = T_MIN (§V-E).
	sp = opts.Trace.Start("pa.phase5.starttimes")
	if err := s.retime(); err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End()
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	// Phase 6: software task mapping.
	sp = opts.Trace.Start("pa.phase6.swmap")
	if err := s.mapSoftware(); err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End()
	if err := checkBudget(); err != nil {
		return nil, nil, err
	}
	// Phase 7: reconfigurations scheduling.
	sp = opts.Trace.Start("pa.phase7.reconf")
	rts, err := s.scheduleReconfigs(opts.ModuleReuse)
	if err != nil {
		sp.End()
		return nil, nil, err
	}
	sp.End(obs.Int("reconfigurations", int64(len(rts))))
	sch := s.emit(rts, opts)
	regionRes := s.regionResBuf[:0]
	for _, r := range s.regions {
		regionRes = append(regionRes, r.res)
	}
	s.regionResBuf = regionRes
	return sch, regionRes, nil
}

// emit assembles the schedule.Schedule from the final state.
func (s *state) emit(rts []*reconfTask, opts Options) *schedule.Schedule {
	sch := schedule.New(s.g, s.a)
	if opts.Rand != nil {
		sch.Algorithm = "PA-R"
	} else {
		sch.Algorithm = "PA"
	}
	sch.ModuleReuse = opts.ModuleReuse
	for _, r := range s.regions {
		sch.AddRegion(r.res)
	}
	for t := 0; t < s.g.N(); t++ {
		target := schedule.Target{Kind: schedule.OnProcessor, Index: s.procOf[t]}
		if s.isHW(t) {
			target = schedule.Target{Kind: schedule.OnRegion, Index: s.regionOf[t]}
		}
		sch.Tasks[t] = schedule.Assignment{
			Impl:   s.impl[t],
			Target: target,
			Start:  s.start(t),
			End:    s.end(t),
		}
	}
	for _, rt := range rts {
		sch.Reconfs = append(sch.Reconfs, schedule.Reconfiguration{
			Region:  rt.region.id,
			InTask:  rt.in,
			OutTask: rt.out,
			Start:   rt.start,
			End:     rt.end,
		})
	}
	sch.ComputeMakespan()
	return sch
}
