package sched

import (
	"errors"
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/budget"
	"resched/internal/faultinject"
	"resched/internal/schedule"
	"resched/internal/taskgraph"
)

// validOrFatal fails the test on the first checker violation.
func validOrFatal(t *testing.T, s *schedule.Schedule) {
	t.Helper()
	if errs := schedule.Check(s); len(errs) > 0 {
		t.Fatalf("invalid schedule: %v", errs[0])
	}
}

func TestRobustFullRung(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 11})
	a := arch.ZedBoard()
	res, err := Robust(g, a, RobustOptions{ModuleReuse: true})
	if err != nil {
		t.Fatal(err)
	}
	validOrFatal(t, res.Schedule)
	if res.Rung != Full && res.Rung != Retried {
		t.Fatalf("clean run landed on rung %v, want full/retried", res.Rung)
	}
	if res.Rung == Full && len(res.Reasons) != 0 {
		t.Errorf("full rung recorded failure reasons: %v", res.Reasons)
	}
	if res.Stats == nil {
		t.Error("PA rung fired but Stats is nil")
	}
	if len(res.Schedule.Regions) > 0 && len(res.Placements) == 0 {
		t.Error("schedule uses regions but no placements were returned")
	}
}

// TestRobustSoftwareOnlyUnderTotalFloorplanFailure is the ladder's core
// guarantee: with every floorplan solve forced infeasible, the search rungs
// all fail, yet Robust still returns a checker-valid schedule — the
// all-software rung — with a nil error and a reason chain explaining the
// degradation.
func TestRobustSoftwareOnlyUnderTotalFloorplanFailure(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 5})
	a := arch.ZedBoard()
	faults := faultinject.New()
	faults.ForceFloorplanInfeasible(-1)

	res, err := Robust(g, a, RobustOptions{
		ModuleReuse: true, RandomIterations: 8, Faults: faults,
	})
	if err != nil {
		t.Fatalf("ladder must not fail on a full-SW-coverage graph: %v", err)
	}
	validOrFatal(t, res.Schedule)
	if res.Rung != SoftwareOnly {
		t.Fatalf("rung = %v, want software-only", res.Rung)
	}
	if len(res.Schedule.Regions) != 0 || len(res.Schedule.Reconfs) != 0 {
		t.Errorf("software-only schedule still uses %d regions / %d reconfigurations",
			len(res.Schedule.Regions), len(res.Schedule.Reconfs))
	}
	for tk, asg := range res.Schedule.Tasks {
		if asg.Target.Kind != schedule.OnProcessor {
			t.Fatalf("task %d not on a processor in the software-only rung", tk)
		}
	}
	if len(res.Placements) != 0 {
		t.Errorf("software-only rung returned %d placements", len(res.Placements))
	}
	// Both search rungs must have been tried and must blame the floorplan.
	if len(res.Reasons) < 2 {
		t.Fatalf("reason chain too short: %v", res.Reasons)
	}
	for _, reason := range res.Reasons {
		if !errors.Is(reason, ErrFloorplanInfeasible) {
			t.Errorf("reason %v does not match ErrFloorplanInfeasible", reason)
		}
	}
	if faults.Fired(faultinject.FaultFloorplanInfeasible) == 0 {
		t.Error("armed floorplan fault never fired")
	}
}

// TestRobustNoSoftwareFallback hands the ladder the one graph it cannot
// rescue: a task with no software implementation (violating §III's
// assumption). Such graphs are rejected by taskgraph.Read, so it is built
// programmatically here.
func TestRobustNoSoftwareFallback(t *testing.T) {
	g := taskgraph.New("hw-only")
	g.AddTask("pre", taskgraph.Implementation{Name: "pre_sw", Kind: taskgraph.SW, Time: 10})
	g.AddTask("filter", taskgraph.Implementation{
		Name: "filter_hw", Kind: taskgraph.HW, Time: 5,
	})
	mustEdge(t, g, 0, 1)

	res, err := Robust(g, arch.ZedBoard(), RobustOptions{})
	if !errors.Is(err, ErrNoSoftwareFallback) {
		t.Fatalf("err = %v, want ErrNoSoftwareFallback", err)
	}
	if res.Schedule != nil {
		t.Error("failed ladder still returned a schedule")
	}
	if len(res.Reasons) == 0 {
		t.Error("failed ladder returned no reasons")
	}
}

// TestRobustCancelledBudget cancels the budget before the ladder starts:
// the search rungs are skipped with typed budget reasons and the
// software-only rung — which needs no search — still delivers.
func TestRobustCancelledBudget(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 25, Seed: 3})
	a := arch.ZedBoard()
	bud := budget.New(budget.Options{})
	bud.Cancel()

	res, err := Robust(g, a, RobustOptions{ModuleReuse: true, Budget: bud})
	if err != nil {
		t.Fatalf("cancelled budget must degrade, not fail: %v", err)
	}
	validOrFatal(t, res.Schedule)
	if res.Rung != SoftwareOnly {
		t.Fatalf("rung = %v, want software-only", res.Rung)
	}
	foundBudget := false
	for _, reason := range res.Reasons {
		if errors.Is(reason, ErrBudgetExhausted) {
			foundBudget = true
			if !errors.Is(reason, budget.ErrCancelled) {
				t.Errorf("budget reason %v does not carry the cancellation cause", reason)
			}
		}
	}
	if !foundBudget {
		t.Errorf("no reason matches ErrBudgetExhausted: %v", res.Reasons)
	}
}

// TestRScheduleBudgetReturnsIncumbent exhausts the shared node cap
// mid-search, after an incumbent exists, and verifies PA-R returns that
// incumbent rather than an error. The cap is calibrated from a reference
// run with the same seed: PA-R's node consumption is deterministic, so a
// cap one node above the reference consumption replays the reference
// search exactly — incumbent included — and trips on the very next charge.
func TestRScheduleBudgetReturnsIncumbent(t *testing.T) {
	g := genGraph(t, benchgen.Config{Tasks: 40, Seed: 8})
	a := arch.ZedBoard()
	opts := RandomOptions{MaxIterations: 3, Seed: 4, ModuleReuse: true}

	ref := budget.New(budget.Options{})
	refOpts := opts
	refOpts.Budget = ref
	refSch, refStats, err := RSchedule(g, a, refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(refStats.History) == 0 {
		t.Fatal("reference run accepted no improvement; pick another seed")
	}

	bud := budget.New(budget.Options{MaxNodes: ref.Nodes() + 1})
	capped := opts
	capped.MaxIterations = 60 // backstop; the node cap is the intended stop
	capped.Budget = bud
	sch, stats, err := RSchedule(g, a, capped)
	if err != nil {
		t.Fatalf("node-cap expiry with an incumbent must not fail: %v", err)
	}
	validOrFatal(t, sch)
	if sch.Algorithm != "PA-R" {
		t.Errorf("algorithm = %q, want PA-R", sch.Algorithm)
	}
	if len(stats.History) == 0 {
		t.Fatal("capped run accepted no improvement")
	}
	if sch.Makespan != refSch.Makespan {
		t.Errorf("incumbent makespan %d, reference found %d", sch.Makespan, refSch.Makespan)
	}
}
