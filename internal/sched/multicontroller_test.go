package sched

import (
	"testing"

	"resched/internal/arch"
	"resched/internal/benchgen"
	"resched/internal/isk"
	"resched/internal/schedule"
	"resched/internal/sim"
)

// TestMultiControllerSchedulesValid runs PA and IS-k on architectures with
// several reconfiguration controllers (the ref [8] extension) and validates
// the schedules both statically and on the discrete-event simulator.
func TestMultiControllerSchedulesValid(t *testing.T) {
	for _, controllers := range []int{1, 2, 3} {
		a := arch.ZedBoard()
		a.Reconfigurators = controllers
		for _, n := range []int{20, 40} {
			g := genGraph(t, benchgen.Config{Tasks: n, Seed: int64(1100 + n)})
			pa, _, err := Schedule(g, a, Options{SkipFloorplan: true})
			if err != nil {
				t.Fatalf("controllers=%d n=%d PA: %v", controllers, n, err)
			}
			if errs := schedule.Check(pa); len(errs) > 0 {
				t.Fatalf("controllers=%d n=%d PA invalid: %v", controllers, n, errs[0])
			}
			if _, err := sim.Execute(pa); err != nil {
				t.Fatalf("controllers=%d n=%d PA simulation: %v", controllers, n, err)
			}
			is1, _, err := isk.Schedule(g, a, isk.Options{K: 1, SkipFloorplan: true})
			if err != nil {
				t.Fatalf("controllers=%d n=%d IS-1: %v", controllers, n, err)
			}
			if errs := schedule.Check(is1); len(errs) > 0 {
				t.Fatalf("controllers=%d n=%d IS-1 invalid: %v", controllers, n, errs[0])
			}
			if _, err := sim.Execute(is1); err != nil {
				t.Fatalf("controllers=%d n=%d IS-1 simulation: %v", controllers, n, err)
			}
		}
	}
}

// TestSecondControllerHelpsOnReconfBoundInstance builds an instance whose
// makespan is dominated by serialized reconfigurations and checks that a
// second controller shortens PA's schedule.
func TestSecondControllerHelpsOnReconfBoundInstance(t *testing.T) {
	// Two independent chains, each forced to time-share its own region on
	// a device sized for exactly two regions: the four reconfigurations
	// serialize on one ICAP but pair up on two.
	g := genGraph(t, benchgen.Config{Tasks: 30, Seed: 77})
	single := arch.ZedBoard()
	dual := arch.ZedBoard()
	dual.Reconfigurators = 2

	s1, _, err := Schedule(g, single, Options{SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Schedule(g, dual, Options{SkipFloorplan: true})
	if err != nil {
		t.Fatal(err)
	}
	if errs := schedule.Check(s2); len(errs) > 0 {
		t.Fatalf("dual-controller schedule invalid: %v", errs[0])
	}
	// More controllers never hurt PA on the same ordering, and usually
	// help when reconfigurations contend; require no regression.
	if s2.Makespan > s1.Makespan {
		t.Errorf("second controller worsened the makespan: %d vs %d", s2.Makespan, s1.Makespan)
	}
}
